#include "sched/native_executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/rng.hpp"

namespace obliv::sched {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int t = 0; t < 100; ++t) {
    tasks.push_back([&] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.run_all(std::move(tasks));
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, NestedParallelismDoesNotDeadlock) {
  ThreadPool pool(2);  // fewer threads than nested groups
  std::atomic<int> leaves{0};
  std::vector<std::function<void()>> outer;
  for (int t = 0; t < 8; ++t) {
    outer.push_back([&] {
      std::vector<std::function<void()>> inner;
      for (int s = 0; s < 8; ++s) {
        inner.push_back(
            [&] { leaves.fetch_add(1, std::memory_order_relaxed); });
      }
      pool.run_all(std::move(inner));
    });
  }
  pool.run_all(std::move(outer));
  EXPECT_EQ(leaves.load(), 64);
}

TEST(ThreadPool, SingleThreadStillWorks) {
  ThreadPool pool(1);
  int x = 0;
  pool.run_all({[&] { x = 1; }, [&] { x += 2; }});
  EXPECT_EQ(x, 3);
}

TEST(NativeExecutor, PforCoversRangeOnceUnderContention) {
  NativeExecutor ex(4, /*grain=*/64);
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  ex.cgc_pfor(0, n, 1, [&](std::uint64_t a, std::uint64_t b) {
    for (std::uint64_t k = a; k < b; ++k) {
      hits[k].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t k = 0; k < n; ++k) {
    ASSERT_EQ(hits[k].load(), 1) << k;
  }
}

TEST(NativeExecutor, SmallTasksRunInline) {
  // Tasks below the grain run sequentially on the calling thread: result
  // identical, no fork.
  NativeExecutor ex(4, /*grain=*/1 << 20);
  int order = 0;
  ex.sb_parallel2(
      10, [&] { EXPECT_EQ(order++, 0); },  // sequential => ordered
      10, [&] { EXPECT_EQ(order++, 1); });
  EXPECT_EQ(order, 2);
}

TEST(NativeExecutor, CgcSbPforExecutesEveryTask) {
  NativeExecutor ex(3, 8);
  std::vector<std::atomic<int>> hits(500);
  for (auto& h : hits) h.store(0);
  ex.cgc_sb_pfor(hits.size(), 1 << 16, [&](std::uint64_t s) {
    hits[s].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(NativeExecutor, DeepRecursiveForkJoin) {
  NativeExecutor ex(4, 1);
  std::atomic<std::uint64_t> sum{0};
  // Binary recursion summing 1..1024 via leaf tasks.
  std::function<void(std::uint64_t, std::uint64_t)> rec =
      [&](std::uint64_t lo, std::uint64_t hi) {
        if (hi - lo == 1) {
          sum.fetch_add(lo, std::memory_order_relaxed);
          return;
        }
        const std::uint64_t mid = (lo + hi) / 2;
        ex.sb_parallel2((hi - lo) * 8, [&] { rec(lo, mid); },
                        (hi - lo) * 8, [&] { rec(mid, hi); });
      };
  rec(1, 1025);
  EXPECT_EQ(sum.load(), 1024u * 1025 / 2);
}

TEST(NativeExecutor, StressRepeatedParallelSections) {
  NativeExecutor ex(4, 1);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> n{0};
    std::vector<SbTask> tasks;
    for (int t = 0; t < 8; ++t) {
      tasks.push_back(SbTask{
          1 << 12, [&] { n.fetch_add(1, std::memory_order_relaxed); }});
    }
    ex.sb_parallel(std::move(tasks));
    ASSERT_EQ(n.load(), 8) << "round " << round;
  }
}

}  // namespace
}  // namespace obliv::sched
