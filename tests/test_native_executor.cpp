#include "sched/native_executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <numeric>
#include <thread>
#include <vector>

#include "sched/ws_deque.hpp"
#include "util/rng.hpp"

namespace obliv::sched {
namespace {

// ---------------------------------------------------------------------------
// WsDeque
// ---------------------------------------------------------------------------

TEST(WsDeque, OwnerLifoThiefFifo) {
  WsDeque<int*> dq(4);  // small capacity: exercises grow()
  int vals[100];
  for (int i = 0; i < 100; ++i) dq.push_bottom(&vals[i]);
  EXPECT_EQ(dq.steal_top(), &vals[0]);   // FIFO from the top
  EXPECT_EQ(dq.pop_bottom(), &vals[99]);  // LIFO from the bottom
  EXPECT_EQ(dq.steal_top(), &vals[1]);
  EXPECT_EQ(dq.pop_bottom(), &vals[98]);
  for (int i = 0; i < 96; ++i) EXPECT_NE(dq.pop_bottom(), nullptr);
  EXPECT_EQ(dq.pop_bottom(), nullptr);
  EXPECT_TRUE(dq.empty());
}

TEST(WsDeque, EveryElementTakenExactlyOnceUnderConcurrentSteals) {
  constexpr int kN = 20000;
  WsDeque<int*> dq(8);
  std::vector<int> vals(kN);
  std::vector<std::atomic<int>> taken(kN);
  for (auto& t : taken) t.store(0);
  for (int i = 0; i < kN; ++i) vals[i] = i;

  std::atomic<bool> go{false};
  std::atomic<int> total{0};
  auto thief = [&] {
    while (!go.load()) {
    }
    for (;;) {
      if (int* p = dq.steal_top()) {
        taken[*p].fetch_add(1, std::memory_order_relaxed);
        total.fetch_add(1, std::memory_order_acq_rel);
      } else if (total.load(std::memory_order_acquire) == kN) {
        return;
      }
    }
  };
  std::thread t1(thief), t2(thief);
  go.store(true);
  // Owner interleaves pushes and pops.
  int pushed = 0;
  while (pushed < kN) {
    for (int burst = 0; burst < 64 && pushed < kN; ++burst) {
      dq.push_bottom(&vals[pushed++]);
    }
    if (int* p = dq.pop_bottom()) {
      taken[*p].fetch_add(1, std::memory_order_relaxed);
      total.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  while (total.load(std::memory_order_acquire) != kN) {
    if (int* p = dq.pop_bottom()) {
      taken[*p].fetch_add(1, std::memory_order_relaxed);
      total.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  t1.join();
  t2.join();
  for (int i = 0; i < kN; ++i) ASSERT_EQ(taken[i].load(), 1) << i;
}

// ---------------------------------------------------------------------------
// WorkStealingPool
// ---------------------------------------------------------------------------

TEST(WorkStealingPool, RunsAllTasks) {
  WorkStealingPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int t = 0; t < 100; ++t) {
    tasks.push_back([&] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.run_all(std::move(tasks));
  EXPECT_EQ(count.load(), 100);
}

TEST(WorkStealingPool, NestedParallelismDoesNotDeadlock) {
  WorkStealingPool pool(2);  // fewer threads than nested groups
  std::atomic<int> leaves{0};
  std::vector<std::function<void()>> outer;
  for (int t = 0; t < 8; ++t) {
    outer.push_back([&] {
      std::vector<std::function<void()>> inner;
      for (int s = 0; s < 8; ++s) {
        inner.push_back(
            [&] { leaves.fetch_add(1, std::memory_order_relaxed); });
      }
      pool.run_all(std::move(inner));
    });
  }
  pool.run_all(std::move(outer));
  EXPECT_EQ(leaves.load(), 64);
}

TEST(WorkStealingPool, SingleThreadStillWorks) {
  WorkStealingPool pool(1);
  int x = 0;
  pool.run_all({[&] { x = 1; }, [&] { x += 2; }});
  EXPECT_EQ(x, 3);
}

TEST(WorkStealingPool, RepeatedRootEntriesReuseSleepingWorkers) {
  WorkStealingPool pool(4);
  for (int round = 0; round < 300; ++round) {
    std::atomic<int> n{0};
    std::vector<std::function<void()>> tasks;
    for (int t = 0; t < 16; ++t) {
      tasks.push_back([&] { n.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.run_all(std::move(tasks));
    ASSERT_EQ(n.load(), 16) << "round " << round;
  }
}

// The legacy shared-queue baseline must keep working: bench_wallclock
// measures the rewrite against it.
TEST(SharedQueuePool, RunsAllTasksAndNests) {
  SharedQueuePool pool(3);
  std::atomic<int> leaves{0};
  std::vector<std::function<void()>> outer;
  for (int t = 0; t < 4; ++t) {
    outer.push_back([&] {
      std::vector<std::function<void()>> inner;
      for (int s = 0; s < 4; ++s) {
        inner.push_back(
            [&] { leaves.fetch_add(1, std::memory_order_relaxed); });
      }
      pool.run_all(std::move(inner));
    });
  }
  pool.run_all(std::move(outer));
  EXPECT_EQ(leaves.load(), 16);
}

// ---------------------------------------------------------------------------
// NativeExecutor -- parameterized over both scheduler backends.
// ---------------------------------------------------------------------------

class NativeExecutorBothSched : public ::testing::TestWithParam<SchedMode> {};

INSTANTIATE_TEST_SUITE_P(Backends, NativeExecutorBothSched,
                         ::testing::Values(SchedMode::kWorkSteal,
                                           SchedMode::kSharedQueue),
                         [](const auto& param_info) {
                           return param_info.param == SchedMode::kWorkSteal
                                      ? "WorkSteal"
                                      : "SharedQueue";
                         });

TEST_P(NativeExecutorBothSched, PforCoversRangeOnceUnderContention) {
  NativeExecutor ex(4, /*grain=*/64, GetParam());
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  ex.cgc_pfor(0, n, 1, [&](std::uint64_t a, std::uint64_t b) {
    for (std::uint64_t k = a; k < b; ++k) {
      hits[k].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t k = 0; k < n; ++k) {
    ASSERT_EQ(hits[k].load(), 1) << k;
  }
}

TEST_P(NativeExecutorBothSched, SmallTasksRunInline) {
  // Tasks below the grain run sequentially on the calling thread: result
  // identical, no fork.
  NativeExecutor ex(4, /*grain=*/1 << 20, GetParam());
  int order = 0;
  ex.sb_parallel2(
      10, [&] { EXPECT_EQ(order++, 0); },  // sequential => ordered
      10, [&] { EXPECT_EQ(order++, 1); });
  EXPECT_EQ(order, 2);
}

TEST_P(NativeExecutorBothSched, SingleChunkPforRunsInlineOnCallingThread) {
  // A range that collapses to one chunk must not round-trip the queue.
  NativeExecutor ex(4, /*grain=*/1 << 12, GetParam());
  const auto caller = std::this_thread::get_id();
  int calls = 0;
  ex.cgc_pfor(0, 100, 1, [&](std::uint64_t a, std::uint64_t b) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 100u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  // Same for CGC=>SB when all subtasks fit one grain batch.
  int sb_calls = 0;
  ex.cgc_sb_pfor(8, /*space=*/16, [&](std::uint64_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++sb_calls;
  });
  EXPECT_EQ(sb_calls, 8);
}

TEST_P(NativeExecutorBothSched, OneThreadExecutorRunsEverythingInline) {
  NativeExecutor ex(1, /*grain=*/1, GetParam());
  const auto caller = std::this_thread::get_id();
  std::uint64_t sum = 0;
  ex.cgc_pfor(0, 5000, 1, [&](std::uint64_t a, std::uint64_t b) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    for (std::uint64_t k = a; k < b; ++k) sum += k;
  });
  EXPECT_EQ(sum, 5000ull * 4999 / 2);
  std::uint64_t hits = 0;
  ex.cgc_sb_pfor(1000, 1 << 20, [&](std::uint64_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++hits;
  });
  EXPECT_EQ(hits, 1000u);
}

TEST_P(NativeExecutorBothSched, CgcSbPforExecutesEveryTask) {
  NativeExecutor ex(3, 8, GetParam());
  std::vector<std::atomic<int>> hits(500);
  for (auto& h : hits) h.store(0);
  ex.cgc_sb_pfor(hits.size(), 1 << 16, [&](std::uint64_t s) {
    hits[s].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(NativeExecutorBothSched, DeepRecursiveForkJoin) {
  NativeExecutor ex(4, 1, GetParam());
  std::atomic<std::uint64_t> sum{0};
  // Binary recursion summing 1..1024 via leaf tasks.
  std::function<void(std::uint64_t, std::uint64_t)> rec =
      [&](std::uint64_t lo, std::uint64_t hi) {
        if (hi - lo == 1) {
          sum.fetch_add(lo, std::memory_order_relaxed);
          return;
        }
        const std::uint64_t mid = (lo + hi) / 2;
        ex.sb_parallel2((hi - lo) * 8, [&] { rec(lo, mid); },
                        (hi - lo) * 8, [&] { rec(mid, hi); });
      };
  rec(1, 1025);
  EXPECT_EQ(sum.load(), 1024u * 1025 / 2);
}

TEST_P(NativeExecutorBothSched, StressRepeatedParallelSections) {
  NativeExecutor ex(4, 1, GetParam());
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> n{0};
    std::vector<SbTask> tasks;
    for (int t = 0; t < 8; ++t) {
      tasks.push_back(SbTask{
          1 << 12, [&] { n.fetch_add(1, std::memory_order_relaxed); }});
    }
    ex.sb_parallel(std::move(tasks));
    ASSERT_EQ(n.load(), 8) << "round " << round;
  }
}

TEST(NativeExecutor, MixedSpaceBoundsKeepSmallTasksLocal) {
  // Below-grain siblings of an above-grain task still run (on some thread),
  // exactly once each.
  NativeExecutor ex(4, /*grain=*/1 << 10, SchedMode::kWorkSteal);
  std::atomic<int> big{0}, small{0};
  std::vector<SbTask> tasks;
  tasks.push_back(
      SbTask{1 << 20, [&] { big.fetch_add(1, std::memory_order_relaxed); }});
  for (int i = 0; i < 6; ++i) {
    tasks.push_back(
        SbTask{8, [&] { small.fetch_add(1, std::memory_order_relaxed); }});
  }
  tasks.push_back(
      SbTask{1 << 20, [&] { big.fetch_add(1, std::memory_order_relaxed); }});
  ex.sb_parallel(std::move(tasks));
  EXPECT_EQ(big.load(), 2);
  EXPECT_EQ(small.load(), 6);
}

TEST(NativeExecutor, EnvVarSelectsSharedQueueBackend) {
  ::setenv("OBLIV_SCHED", "sharedq", 1);
  NativeExecutor legacy(2);
  EXPECT_FALSE(legacy.work_stealing());
  ::setenv("OBLIV_SCHED", "steal", 1);
  NativeExecutor ws(2);
  EXPECT_TRUE(ws.work_stealing());
  ::unsetenv("OBLIV_SCHED");
  NativeExecutor dflt(2);
  EXPECT_TRUE(dflt.work_stealing());
}

}  // namespace
}  // namespace obliv::sched
