// Standalone sanitizer smoke for the serving front-end (src/serve).
//
// Built under TSan and ASan by tests/CMakeLists.txt (serve_tsan /
// serve_asan): the server's admission queue, dispatcher hand-off, job
// completion handshake, and drain paths are the newest cross-thread
// machinery in the tree, so every ctest run sweeps them for data races
// (client threads vs dispatcher vs workers) and leaks / use-after-frees
// (handles outliving servers, destroy-while-jobs-inflight).  No gtest:
// the sanitizer runtime is the checker; the scenario asserts only keep
// the workload honest.  Mirrors tsan_sched_main.cpp.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "obs/trace.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"

namespace obliv::serve {
namespace {

int failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAILED: %s\n", what);
    ++failures;
  }
}

sched::NatRef<std::uint64_t> ref_of(std::vector<std::uint64_t>& v) {
  return sched::NatRef<std::uint64_t>(v.data(), v.size());
}

/// Client buffers for one sort job, kept alive past server destruction.
struct SortJob {
  std::vector<std::uint64_t> keys;
  JobHandle handle;
};

SortJob make_sort_job(util::Xoshiro256& rng, std::size_t max_n = 2048) {
  SortJob j;
  j.keys.resize(1 + rng.below(max_n));
  for (auto& x : j.keys) x = rng();
  return j;
}

/// Many clients submitting concurrently, all jobs waited and verified.
void submit_storm() {
  ServerOptions o;
  o.threads = 4;
  o.space_budget_words = 1 << 14;  // force queuing pressure
  o.queue_capacity = 256;
  Server srv(o);
  std::vector<std::thread> clients;
  std::atomic<int> sorted{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      util::Xoshiro256 rng(1000 + std::uint64_t(c));
      std::vector<SortJob> mine;
      mine.reserve(16);
      for (int i = 0; i < 16; ++i) {
        mine.push_back(make_sort_job(rng));
        auto r = srv.submit(SortRequest{ref_of(mine.back().keys)});
        check(r.ok(), "submit_storm: submit accepted");
        if (r.ok()) mine.back().handle = r.value();
      }
      for (auto& j : mine) {
        if (!j.handle.valid()) continue;
        check(j.handle.wait().ok(), "submit_storm: job ok");
        if (std::is_sorted(j.keys.begin(), j.keys.end())) {
          sorted.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  check(sorted.load() == 4 * 16, "submit_storm: all results sorted");
  const ServerStats st = srv.stats();
  check(st.space_peak_words <= st.space_budget_words,
        "submit_storm: space budget respected");
}

/// Cancels race admission from a second thread per client.
void cancel_storm() {
  ServerOptions o;
  o.threads = 2;
  o.space_budget_words = 1 << 13;
  o.queue_capacity = 512;
  Server srv(o);
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      util::Xoshiro256 rng(2000 + std::uint64_t(c));
      std::vector<SortJob> mine;
      std::vector<JobHandle> to_cancel;
      for (int i = 0; i < 24; ++i) {
        mine.push_back(make_sort_job(rng, 1024));
        auto r = srv.submit(SortRequest{ref_of(mine.back().keys)});
        if (!r.ok()) continue;
        mine.back().handle = r.value();
        if (i % 2 == 0) to_cancel.push_back(r.value());
      }
      // Second thread races the dispatcher for the queued entries.
      std::thread canceller([&to_cancel] {
        for (auto& h : to_cancel) h.cancel();
      });
      canceller.join();
      for (auto& j : mine) {
        if (!j.handle.valid()) continue;
        const Status s = j.handle.wait();
        check(s.ok() || s.code() == ErrorCode::kCancelled,
              "cancel_storm: typed outcome");
        if (s.ok()) {
          check(std::is_sorted(j.keys.begin(), j.keys.end()),
                "cancel_storm: ran jobs sorted");
        }
      }
    });
  }
  for (auto& t : clients) t.join();
}

/// shutdown() races live submitters; handles must resolve either way.
void shutdown_storm() {
  for (int round = 0; round < 8; ++round) {
    ServerOptions o;
    o.threads = 2;
    Server srv(o);
    std::vector<std::thread> clients;
    std::vector<std::vector<SortJob>> jobs(2);
    for (int c = 0; c < 2; ++c) {
      clients.emplace_back([&, c] {
        util::Xoshiro256 rng(3000 + std::uint64_t(round) * 17 +
                             std::uint64_t(c));
        for (int i = 0; i < 8; ++i) {
          jobs[c].push_back(make_sort_job(rng, 512));
          auto r = srv.submit(SortRequest{ref_of(jobs[c].back().keys)});
          if (r.ok()) {
            jobs[c].back().handle = r.value();
          } else {
            check(r.status().code() == ErrorCode::kUnavailable,
                  "shutdown_storm: rejection is kUnavailable");
            jobs[c].pop_back();
          }
        }
      });
    }
    if (round % 2 == 0) std::this_thread::yield();
    srv.shutdown();
    for (auto& t : clients) t.join();
    for (auto& mine : jobs) {
      for (auto& j : mine) {
        check(j.handle.wait().ok(), "shutdown_storm: accepted job drained");
      }
    }
  }
}

/// ~Server with jobs still in flight: the drain inside the destructor
/// must complete them, and handles kept past the scope stay usable
/// (ASan: no use-after-free on the shared core).
void destroy_while_inflight() {
  util::Xoshiro256 rng(4000);
  for (int round = 0; round < 8; ++round) {
    std::vector<SortJob> jobs;
    {
      ServerOptions o;
      o.threads = 2;
      o.space_budget_words = 1 << 13;
      Server srv(o);
      for (int i = 0; i < 12; ++i) {
        jobs.push_back(make_sort_job(rng, 1024));
        auto r = srv.submit(SortRequest{ref_of(jobs.back().keys)});
        check(r.ok(), "destroy_while_inflight: submit accepted");
        if (r.ok()) jobs.back().handle = r.value();
      }
    }  // destructor drains with most jobs still queued or running
    for (auto& j : jobs) {
      if (!j.handle.valid()) continue;
      check(j.handle.wait().ok(), "destroy_while_inflight: job completed");
      check(std::is_sorted(j.keys.begin(), j.keys.end()),
            "destroy_while_inflight: result sorted");
    }
  }
}

/// Full-instrumentation pass: tracer attached and schedule chaos active
/// while multiple clients run — the emission paths (per-worker rings,
/// relaxed histogram counters) are what TSan vets here.
void traced_chaos_storm() {
  fault::FaultPlan plan(0xBEEF, fault::FaultOptions::chaos());
  ServerOptions o;
  o.threads = 4;
  o.space_budget_words = 1 << 14;
  obs::Tracer tracer(o.threads, 1 << 12);
  {
    Server srv(o);
    srv.set_tracer(&tracer);
    srv.set_fault_plan(&plan);
    std::vector<std::thread> clients;
    for (int c = 0; c < 3; ++c) {
      clients.emplace_back([&, c] {
        util::Xoshiro256 rng(5000 + std::uint64_t(c));
        std::vector<SortJob> mine;
        for (int i = 0; i < 12; ++i) {
          mine.push_back(make_sort_job(rng, 1024));
          auto r = srv.submit(SortRequest{ref_of(mine.back().keys)});
          check(r.ok(), "traced_chaos_storm: submit accepted");
          if (r.ok()) mine.back().handle = r.value();
        }
        for (auto& j : mine) {
          if (j.handle.valid()) {
            check(j.handle.wait().ok(), "traced_chaos_storm: job ok");
          }
        }
      });
    }
    for (auto& t : clients) t.join();
    srv.shutdown();
    srv.set_fault_plan(nullptr);
  }
  check(plan.decisions() > 0, "traced_chaos_storm: chaos engaged");
  check(tracer.counters().value("serve.jobs_completed_ok") == 3 * 12,
        "traced_chaos_storm: all jobs in counters");
}

}  // namespace
}  // namespace obliv::serve

int main() {
  obliv::serve::submit_storm();
  obliv::serve::cancel_storm();
  obliv::serve::shutdown_storm();
  obliv::serve::destroy_while_inflight();
  obliv::serve::traced_chaos_storm();
  if (obliv::serve::failures != 0) {
    std::fprintf(stderr, "%d serve smoke failure(s)\n",
                 obliv::serve::failures);
    return 1;
  }
  std::printf("serve sanitizer smoke: all scenarios clean\n");
  return 0;
}
