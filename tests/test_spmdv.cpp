#include "algo/spmdv.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "algo/graphgen.hpp"
#include "hm/config.hpp"
#include "sched/native_executor.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

namespace obliv::algo {
namespace {

using sched::SimExecutor;

std::vector<double> run_mo_spmdv_sim(const SparseMatrix& a,
                                     const std::vector<double>& x,
                                     sched::RunMetrics* metrics = nullptr) {
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto av = ex.make_buf<SpmEntry>(a.nnz());
  auto a0 = ex.make_buf<std::uint64_t>(a.n + 1);
  auto xv = ex.make_buf<double>(a.n);
  auto yv = ex.make_buf<double>(a.n);
  av.raw() = a.av;
  a0.raw() = a.a0;
  xv.raw() = x;
  auto m = ex.run(4 * a.n, [&] {
    mo_spmdv(ex, av.ref(), a0.ref(), xv.ref(), yv.ref());
  });
  if (metrics) *metrics = m;
  return yv.raw();
}

TEST(SparseMatrix, GeneratorsProduceValidMatrices) {
  EXPECT_TRUE(grid_matrix(7).valid());
  EXPECT_TRUE(grid_matrix_reordered(8).valid());
  EXPECT_TRUE(tree_matrix(100).valid());
  EXPECT_TRUE(tree_matrix_reordered(100).valid());
  EXPECT_TRUE(random_matrix(100).valid());
}

TEST(SparseMatrix, GridHasFivePointStencilStructure) {
  const std::uint64_t side = 5, n = side * side;
  SparseMatrix m = grid_matrix(side);
  EXPECT_EQ(m.n, n);
  // Interior vertices have degree 4 + diagonal = 5 entries.
  const std::uint64_t mid = 2 * side + 2;
  EXPECT_EQ(m.a0[mid + 1] - m.a0[mid], 5u);
  // Corner vertex: 2 neighbors + diagonal.
  EXPECT_EQ(m.a0[1] - m.a0[0], 3u);
}

TEST(SparseMatrix, PermuteIsSimilarityTransform) {
  // Permuted matrix times permuted vector equals permuted product.
  const std::uint64_t side = 6, n = side * side;
  SparseMatrix m = grid_matrix(side);
  auto order = grid_separator_order(side);
  SparseMatrix pm = permute_matrix(m, order);
  ASSERT_TRUE(pm.valid());
  util::Xoshiro256 rng(4);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform();
  std::vector<double> px(n);
  for (std::uint64_t p = 0; p < n; ++p) px[p] = x[order[p]];
  const auto y = spmdv_reference(m, x);
  const auto py = spmdv_reference(pm, px);
  for (std::uint64_t p = 0; p < n; ++p) {
    EXPECT_NEAR(py[p], y[order[p]], 1e-12);
  }
}

TEST(SparseMatrix, SeparatorOrdersArePermutations) {
  for (std::uint64_t side : {1u, 2u, 5u, 16u}) {
    auto order = grid_separator_order(side);
    std::set<std::uint64_t> s(order.begin(), order.end());
    EXPECT_EQ(order.size(), side * side);
    EXPECT_EQ(s.size(), side * side);
  }
  std::vector<std::uint64_t> parent;
  tree_matrix(257, 3, &parent);
  auto torder = tree_separator_order(parent);
  std::set<std::uint64_t> s(torder.begin(), torder.end());
  EXPECT_EQ(torder.size(), 257u);
  EXPECT_EQ(s.size(), 257u);
}

class SpmdvMatrices : public ::testing::TestWithParam<int> {};

TEST_P(SpmdvMatrices, MoSpmdvMatchesReference) {
  SparseMatrix a;
  switch (GetParam()) {
    case 0: a = grid_matrix_reordered(13); break;
    case 1: a = grid_matrix(16); break;  // unreordered is still correct
    case 2: a = tree_matrix_reordered(300); break;
    case 3: a = random_matrix(500, 6); break;
    case 4: a = grid_matrix_reordered(1); break;  // 1x1
  }
  ASSERT_TRUE(a.valid());
  util::Xoshiro256 rng(GetParam());
  std::vector<double> x(a.n);
  for (auto& v : x) v = rng.uniform() - 0.5;
  const auto expect = spmdv_reference(a, x);
  const auto got = run_mo_spmdv_sim(a, x);
  for (std::uint64_t i = 0; i < a.n; ++i) {
    ASSERT_NEAR(got[i], expect[i], 1e-12) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Matrices, SpmdvMatrices, ::testing::Range(0, 5));

TEST(Spmdv, FlatBaselineMatchesReference) {
  SparseMatrix a = grid_matrix_reordered(10);
  util::Xoshiro256 rng(8);
  std::vector<double> x(a.n);
  for (auto& v : x) v = rng.uniform();
  const auto expect = spmdv_reference(a, x);
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto av = ex.make_buf<SpmEntry>(a.nnz());
  auto a0 = ex.make_buf<std::uint64_t>(a.n + 1);
  auto xv = ex.make_buf<double>(a.n);
  auto yv = ex.make_buf<double>(a.n);
  av.raw() = a.av;
  a0.raw() = a.a0;
  xv.raw() = x;
  ex.run(4 * a.n, [&] {
    spmdv_flat(ex, av.ref(), a0.ref(), xv.ref(), yv.ref());
  });
  for (std::uint64_t i = 0; i < a.n; ++i) {
    ASSERT_NEAR(yv.raw()[i], expect[i], 1e-12);
  }
}

TEST(Spmdv, NativeExecutorMatchesReference) {
  SparseMatrix a = grid_matrix_reordered(40);
  util::Xoshiro256 rng(15);
  std::vector<double> x(a.n);
  for (auto& v : x) v = rng.uniform();
  const auto expect = spmdv_reference(a, x);
  sched::NativeExecutor ex(4);
  auto av = ex.make_buf<SpmEntry>(a.nnz());
  auto a0 = ex.make_buf<std::uint64_t>(a.n + 1);
  auto xv = ex.make_buf<double>(a.n);
  auto yv = ex.make_buf<double>(a.n);
  av.raw() = a.av;
  a0.raw() = a.a0;
  xv.raw() = x;
  mo_spmdv(ex, av.ref(), a0.ref(), xv.ref(), yv.ref());
  for (std::uint64_t i = 0; i < a.n; ++i) {
    ASSERT_NEAR(yv.raw()[i], expect[i], 1e-12);
  }
}

TEST(Spmdv, SeparatorReorderingReducesMisses) {
  // Theorem 4's premise: with separator-tree reordering, x-reads outside
  // the anchored window are bounded by separator size; a random (row-major)
  // order scatters them.  Compare L1 misses on the same grid.
  const std::uint64_t side = 96;  // n = 9216 words >> C_1 = 2048
  SparseMatrix good = grid_matrix_reordered(side, 2);
  SparseMatrix bad = grid_matrix(side, 2);
  // Scramble `bad`'s order randomly to destroy locality entirely.
  std::vector<std::uint64_t> scramble(bad.n);
  for (std::uint64_t i = 0; i < bad.n; ++i) scramble[i] = i;
  util::Xoshiro256 rng(6);
  for (std::uint64_t i = bad.n; i > 1; --i) {
    std::swap(scramble[i - 1], scramble[rng.below(i)]);
  }
  bad = permute_matrix(bad, scramble);
  std::vector<double> x(good.n, 1.0);
  sched::RunMetrics mg, mb;
  run_mo_spmdv_sim(good, x, &mg);
  run_mo_spmdv_sim(bad, x, &mb);
  EXPECT_LT(mg.level_max_misses[0] * 3, mb.level_max_misses[0] * 2)
      << "separator order should save at least a third of L1 misses";
}

}  // namespace
}  // namespace obliv::algo
