// Unit tests of the NO layer's building blocks: move_block's message
// generation, columnsort geometry, and D-BSP configuration.
#include <gtest/gtest.h>

#include <map>

#include "no/colsort.hpp"
#include "no/machine.hpp"
#include "no/ngep.hpp"

namespace obliv::no {
namespace {

/// Captures every message of one superstep via a p = N, B = 1 fold.
struct MoveProbe {
  NoMachine mach;
  explicit MoveProbe(std::uint64_t pes)
      : mach(pes, {{static_cast<std::uint32_t>(pes), 1}}) {}
};

TEST(MoveBlock, ConservesWords) {
  // Moving w words between distributions declares exactly w words (minus
  // the self-sends, which are free but still part of the block).
  for (std::uint64_t words : {1u, 7u, 64u, 1000u}) {
    for (auto [sq, dq] : {std::pair{4u, 1u}, {1u, 4u}, {4u, 2u}, {3u, 5u}}) {
      NoMachine mach(16, {{16, 1}});
      move_block(mach, words, 0, sq, 8, dq);  // disjoint src/dst groups
      mach.end_superstep();
      EXPECT_EQ(mach.total_message_words(), words)
          << words << " " << sq << "->" << dq;
    }
  }
}

TEST(MoveBlock, BalancesAcrossDestination) {
  // Each destination PE receives ~words/d_q.
  const std::uint64_t words = 1024, dq = 8;
  NoMachine mach(16, {{16, 1}});
  move_block(mach, words, 0, 4, 8, dq);
  mach.end_superstep();
  // h = max per-processor blocks; balanced means ~words/dq at B=1 on the
  // receive side and ~words/4 on the send side (the max).
  EXPECT_LE(mach.communication(0), words / 4 + 1);
  EXPECT_GE(mach.communication(0), words / 4 - 1);
}

TEST(MoveBlock, SameGroupIsFree) {
  NoMachine mach(8, {{8, 1}});
  move_block(mach, 500, 2, 4, 2, 4);  // identical distribution
  mach.end_superstep();
  EXPECT_EQ(mach.communication(0), 0u);
}

TEST(MoveBlock, ZeroWordsIsNoop) {
  NoMachine mach(8, {{8, 1}});
  move_block(mach, 0, 0, 4, 4, 4);
  mach.end_superstep();
  EXPECT_EQ(mach.supersteps(), 0u);
}

class ColsortShapes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ColsortShapes, GeometryInvariants) {
  const std::uint64_t n = GetParam();
  const ColsortShape sh = colsort_shape(n);
  EXPECT_GE(sh.r * sh.s, n);
  EXPECT_EQ(sh.padded, sh.r * sh.s);
  if (sh.s > 1) {
    EXPECT_GE(sh.r, 2 * (sh.s - 1) * (sh.s - 1));  // Leighton's condition
  }
  // Padding stays within one extra "row band" of the input size.
  EXPECT_LE(sh.padded, std::max<std::uint64_t>(4, 4 * n));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ColsortShapes,
                         ::testing::Values(1, 2, 3, 17, 64, 100, 999, 4096,
                                           100000, 1000000));

TEST(Dbsp, MeshLikeConfigIsWellFormed) {
  for (std::uint32_t P : {2u, 8u, 64u}) {
    const DbspConfig cfg = DbspConfig::mesh_like(P);
    EXPECT_EQ(cfg.P, P);
    ASSERT_EQ(cfg.g.size(), cfg.B.size());
    ASSERT_GE(cfg.g.size(), 1u);
    // g decreases with cluster level (smaller clusters are cheaper).
    for (std::size_t i = 1; i < cfg.g.size(); ++i) {
      EXPECT_LE(cfg.g[i], cfg.g[i - 1]);
      EXPECT_GE(cfg.B[i - 1], cfg.B[i]);
    }
  }
}

TEST(NGepSchedules, DStarUsesEachUVQuadrantOncePerRound) {
  // Structural check of Table I: count (a,k) and (k,b) pairs per round.
  using detail::Round;
  auto check = [](const std::vector<Round>& sched, bool expect_unique) {
    for (const Round& round : sched) {
      if (round.size() != 4) continue;  // only the D-type rounds
      std::map<std::pair<int, int>, int> u_uses, v_uses;
      for (const auto& [a, b, k] : round) {
        u_uses[{a, k}]++;
        v_uses[{k, b}]++;
      }
      for (const auto& [q, cnt] : u_uses) {
        if (expect_unique) {
          EXPECT_EQ(cnt, 1) << "U" << q.first << q.second;
        }
      }
      if (!expect_unique) {
        int max_use = 0;
        for (const auto& [q, cnt] : u_uses) max_use = std::max(max_use, cnt);
        EXPECT_EQ(max_use, 2);  // D uses U quadrants twice per round
      }
    }
  };
  check(detail::schedule_dstar(), true);
  check(detail::schedule_d(), false);
}

TEST(NGepSchedules, TableIVerbatimRecursiveCallOrder) {
  // Table I of the paper, literally: D's two rounds fix the K half and
  // enumerate X quadrants in row-major order; D* permutes the (a, b) -> k
  // assignment so each U/V quadrant appears exactly once per round.  The
  // structural tests above survive reorderings Table I does not allow, so
  // this pins the exact recursive call order.
  using detail::Child;
  using detail::Round;
  const std::vector<Round> d_expected = {
      {Child{0, 0, 0}, Child{0, 1, 0}, Child{1, 0, 0}, Child{1, 1, 0}},
      {Child{0, 0, 1}, Child{0, 1, 1}, Child{1, 0, 1}, Child{1, 1, 1}}};
  const std::vector<Round> dstar_expected = {
      {Child{0, 0, 0}, Child{0, 1, 1}, Child{1, 0, 1}, Child{1, 1, 0}},
      {Child{0, 0, 1}, Child{0, 1, 0}, Child{1, 0, 0}, Child{1, 1, 1}}};
  EXPECT_EQ(detail::schedule_d(), d_expected);
  EXPECT_EQ(detail::schedule_dstar(), dstar_expected);
}

TEST(NGepSchedules, EveryXQuadrantGetsBothKHalves) {
  // Completeness: across the two rounds of D / D*, each X quadrant (a, b)
  // must be updated with k = 0 and k = 1 exactly once each.
  for (const auto* sched : {&detail::schedule_d(), &detail::schedule_dstar()}) {
    std::map<std::tuple<int, int, int>, int> seen;
    for (const auto& round : *sched) {
      for (const auto& [a, b, k] : round) seen[{a, b, k}]++;
    }
    EXPECT_EQ(seen.size(), 8u);
    for (const auto& [key, cnt] : seen) EXPECT_EQ(cnt, 1);
  }
}

}  // namespace
}  // namespace obliv::no
