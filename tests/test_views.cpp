#include "sched/views.hpp"

#include <gtest/gtest.h>

#include "hm/config.hpp"
#include "sched/native_executor.hpp"
#include "sched/sim_executor.hpp"

namespace obliv::sched {
namespace {

template <class Buf>
void fill_identity(Buf& buf, std::size_t n) {
  for (std::size_t i = 0; i < n * n; ++i) {
    buf.raw()[i] = static_cast<double>(i);
  }
}

TEST(MatView, LoadStoreRoundTrip) {
  NativeExecutor ex(1);
  auto buf = ex.make_buf<double>(16);
  auto m = MatView<NatRef<double>>::full(buf.ref(), 4, 4);
  m.store(2, 3, 42.0);
  EXPECT_EQ(m.load(2, 3), 42.0);
  EXPECT_EQ(buf.raw()[2 * 4 + 3], 42.0);
}

TEST(MatView, QuadrantsPartitionTheMatrix) {
  NativeExecutor ex(1);
  const std::size_t n = 8;
  auto buf = ex.make_buf<double>(n * n);
  fill_identity(buf, n);
  auto m = MatView<NatRef<double>>::full(buf.ref(), n, n);
  // Paper notation: quad(0,0)=X11, quad(0,1)=X12, quad(1,0)=X21,
  // quad(1,1)=X22.
  EXPECT_EQ(m.quad(0, 0).load(0, 0), 0.0);
  EXPECT_EQ(m.quad(0, 1).load(0, 0), 4.0);
  EXPECT_EQ(m.quad(1, 0).load(0, 0), 32.0);
  EXPECT_EQ(m.quad(1, 1).load(0, 0), 36.0);
  EXPECT_EQ(m.quad(1, 1).load(3, 3), 63.0);
  EXPECT_EQ(m.quad(0, 0).rows(), n / 2);
}

TEST(MatView, NestedSubViews) {
  NativeExecutor ex(1);
  const std::size_t n = 16;
  auto buf = ex.make_buf<double>(n * n);
  fill_identity(buf, n);
  auto m = MatView<NatRef<double>>::full(buf.ref(), n, n);
  auto inner = m.sub(4, 8, 8, 4).sub(2, 1, 2, 2);
  // (4+2, 8+1) in the original.
  EXPECT_EQ(inner.load(0, 0), double(6 * n + 9));
  EXPECT_EQ(inner.load(1, 1), double(7 * n + 10));
}

TEST(MatView, RowSliceIsContiguous) {
  NativeExecutor ex(1);
  const std::size_t n = 8;
  auto buf = ex.make_buf<double>(n * n);
  fill_identity(buf, n);
  auto m = MatView<NatRef<double>>::full(buf.ref(), n, n);
  auto q = m.quad(1, 1);
  auto row = q.row(1);  // global row 5, columns 4..7
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row.load(0), double(5 * n + 4));
  EXPECT_EQ(row.load(3), double(5 * n + 7));
  row.store(2, -1.0);
  EXPECT_EQ(buf.raw()[5 * n + 6], -1.0);
}

TEST(MatView, SameRegionDetectsAliases) {
  NativeExecutor ex(1);
  auto buf = ex.make_buf<double>(64);
  auto m = MatView<NatRef<double>>::full(buf.ref(), 8, 8);
  EXPECT_TRUE(m.quad(0, 1).same_region(m.sub(0, 4, 4, 4)));
  EXPECT_FALSE(m.quad(0, 1).same_region(m.quad(1, 0)));
}

TEST(MatView, InstrumentedAccessesAreCounted) {
  SimExecutor ex(hm::MachineConfig::sequential());
  auto buf = ex.make_buf<double>(64);
  auto m = MatView<SimRef<double>>::full(buf.ref(), 8, 8);
  const auto metrics = ex.run(64, [&] {
    for (int i = 0; i < 8; ++i) {
      for (int j = 0; j < 8; ++j) m.store(i, j, 1.0);
    }
  });
  EXPECT_EQ(metrics.work, 64u);  // one word per store
  EXPECT_EQ(metrics.level_max_misses[0], 64 / 8u);  // 8 blocks of B=8
}

TEST(SimRef, SliceAddressesStayConsistent) {
  SimExecutor ex(hm::MachineConfig::sequential());
  auto buf = ex.make_buf<double>(100);
  auto whole = buf.ref();
  auto part = whole.slice(40, 20);
  EXPECT_EQ(part.addr(), whole.addr() + 40);
  part.store(0, 7.0);
  EXPECT_EQ(whole.load(40), 7.0);
}

TEST(SimExecutorAlloc, BuffersAreBlockAligned) {
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto a = ex.make_buf<double>(3);
  auto b = ex.make_buf<double>(5);
  const std::uint64_t align = ex.config().block(ex.config().cache_levels());
  EXPECT_EQ(a.addr() % align, 0u);
  EXPECT_EQ(b.addr() % align, 0u);
  EXPECT_GE(b.addr(), a.addr() + 3);  // disjoint allocations
}

}  // namespace
}  // namespace obliv::sched
