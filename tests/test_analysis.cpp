// Trace analytics (obs/analysis.hpp): hand-computed golden DAG, report
// determinism, ring-drop refusal, histogram metrics, and the paper-facing
// assertions -- Table I's D vs D* schedules have equal critical paths, and
// scan/FFT parallelism grows with n the way Table II's span bounds predict
// (serial while the problem fits one L1, then saturating at p).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "algo/fft.hpp"
#include "algo/gep.hpp"
#include "algo/scan.hpp"
#include "hm/config.hpp"
#include "obs/analysis.hpp"
#include "obs/trace.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

namespace obliv {
namespace {

using obs::Event;
using obs::EventKind;

Event ev(EventKind kind, std::uint64_t ts, std::uint64_t a, std::uint64_t b,
         std::uint64_t c, std::uint32_t tid = 0, std::uint8_t detail = 0) {
  Event e;
  e.kind = kind;
  e.ts = ts;
  e.a = a;
  e.b = b;
  e.c = c;
  e.tid = tid;
  e.detail = detail;
  return e;
}

// ---------------------------------------------------------------------------
// A hand-built 16-task trace exercising every scheduling construct.
//
// Root (id 0, anchored at L2) interleaves 10 units of exclusive work with
// three constructs; task 3 nests an SB pair of its own:
//
//   work 4
//   CGC  [1 @(1,0) w6 (2 L1 misses, 1 evict), 2 @(1,1) w9,
//         3 @(1,2): w2, SB [4 @(1,0) w5, 5 @(1,0) w7 (1 L2 miss)], w1]
//   work 3
//   CGC=>SB [6 @(1,0) w4, 7 @(1,1) w6, 8 @(1,0) w3, 9 @(1,1) w2]
//   work 1
//   SB   [10 @(1,0) w2, 11 @(1,1) w3, 12 @(1,2) w4, 13 @(1,3) w1,
//         14 @(1,0) w5, 15 @(2,0) w6 (1 L1 + 1 L2 miss)]
//   work 2
//
// Hand computation (executor composition rules):
//   task 3 span   = 2+1 + [SB: (1,0): 5+7 = 12]              = 15
//   CGC group     = max(6, 9, 15)                            = 15
//   CGC=>SB group = max((1,0): 4+3, (1,1): 6+2)              = 8
//   SB group      = max((1,0): 2+5, 3, 4, 1, (2,0): 6)       = 7
//   root span     = 10 + 15 + 8 + 7                          = 40
//   total work    = 76, parallelism = 76/40 = 1.9
// Miss-weighted (default weights L1=4, L2=16):
//   task 1 -> 6+8 = 14, task 5 -> 7+16 = 23, task 15 -> 6+4+16 = 26
//   task 3 -> 3 + (5+23) = 31; groups 31 / 8 / max(7, 26) = 26
//   mem span = 10+31+8+26 = 75; mem work = 76 + 3*4 + 2*16 = 120
// ---------------------------------------------------------------------------
obs::TraceData synthetic_dag16() {
  constexpr std::uint64_t kNone = obs::kNoEviction;
  constexpr auto kCgc = std::uint8_t{0};
  constexpr auto kSb = std::uint8_t{1};
  constexpr auto kCgcSb = std::uint8_t{2};
  constexpr auto rFit = std::uint8_t(obs::AnchorReason::kSbFit);
  constexpr auto rQueued = std::uint8_t(obs::AnchorReason::kSbQueued);
  constexpr auto rSeg = std::uint8_t(obs::AnchorReason::kCgcSegment);
  constexpr auto rSpread = std::uint8_t(obs::AnchorReason::kCgcSbSpread);

  obs::TraceData t;
  auto& E = t.events;
  E.push_back(ev(EventKind::kTaskBegin, 0, 0, 2, 0));
  E.push_back(ev(EventKind::kHintDispatch, 4, 3, 0, 1, 0, kCgc));
  E.push_back(ev(EventKind::kAnchor, 4, 64, 1, 1, 100, rSeg));
  E.push_back(ev(EventKind::kTaskBegin, 4, 1, 1, 0));
  E.push_back(ev(EventKind::kMiss, 6, 111, kNone, 1, 100, 1));
  E.push_back(ev(EventKind::kMiss, 8, 112, 333, 1, 100, 1));
  E.push_back(ev(EventKind::kTaskEnd, 10, 1, 6, 0));
  E.push_back(ev(EventKind::kAnchor, 10, 64, 1, 2, 101, rSeg));
  E.push_back(ev(EventKind::kTaskBegin, 10, 2, 1, 0));
  E.push_back(ev(EventKind::kTaskEnd, 19, 2, 9, 0));
  E.push_back(ev(EventKind::kAnchor, 19, 64, 1, 3, 102, rSeg));
  E.push_back(ev(EventKind::kTaskBegin, 19, 3, 1, 0));
  E.push_back(ev(EventKind::kHintDispatch, 21, 2, 0, 4, 0, kSb));
  E.push_back(ev(EventKind::kAnchor, 21, 32, 1, 4, 100, rFit));
  E.push_back(ev(EventKind::kTaskBegin, 21, 4, 1, 3));
  E.push_back(ev(EventKind::kTaskEnd, 26, 4, 5, 3));
  E.push_back(ev(EventKind::kAnchor, 26, 32, 1, 5, 100, rFit));
  E.push_back(ev(EventKind::kTaskBegin, 26, 5, 1, 3));
  E.push_back(ev(EventKind::kMiss, 30, 211, kNone, 5, 200, 2));
  E.push_back(ev(EventKind::kTaskEnd, 33, 5, 7, 3));
  E.push_back(ev(EventKind::kTaskEnd, 34, 3, 15, 0));
  E.push_back(ev(EventKind::kHintDispatch, 37, 4, 0, 6, 0, kCgcSb));
  E.push_back(ev(EventKind::kAnchor, 37, 16, 1, 6, 100, rSpread));
  E.push_back(ev(EventKind::kTaskBegin, 37, 6, 1, 0));
  E.push_back(ev(EventKind::kTaskEnd, 41, 6, 4, 0));
  E.push_back(ev(EventKind::kAnchor, 41, 16, 1, 7, 101, rSpread));
  E.push_back(ev(EventKind::kTaskBegin, 41, 7, 1, 0));
  E.push_back(ev(EventKind::kTaskEnd, 47, 7, 6, 0));
  E.push_back(ev(EventKind::kAnchor, 47, 16, 1, 8, 100, rSpread));
  E.push_back(ev(EventKind::kTaskBegin, 47, 8, 1, 0));
  E.push_back(ev(EventKind::kTaskEnd, 50, 8, 3, 0));
  E.push_back(ev(EventKind::kAnchor, 50, 16, 1, 9, 101, rSpread));
  E.push_back(ev(EventKind::kTaskBegin, 50, 9, 1, 0));
  E.push_back(ev(EventKind::kTaskEnd, 52, 9, 2, 0));
  E.push_back(ev(EventKind::kHintDispatch, 53, 6, 0, 10, 0, kSb));
  E.push_back(ev(EventKind::kAnchor, 53, 8, 1, 10, 100, rFit));
  E.push_back(ev(EventKind::kTaskBegin, 53, 10, 1, 0));
  E.push_back(ev(EventKind::kTaskEnd, 55, 10, 2, 0));
  E.push_back(ev(EventKind::kAnchor, 55, 8, 1, 11, 101, rFit));
  E.push_back(ev(EventKind::kTaskBegin, 55, 11, 1, 0));
  E.push_back(ev(EventKind::kTaskEnd, 58, 11, 3, 0));
  E.push_back(ev(EventKind::kAnchor, 58, 8, 1, 12, 102, rFit));
  E.push_back(ev(EventKind::kTaskBegin, 58, 12, 1, 0));
  E.push_back(ev(EventKind::kTaskEnd, 62, 12, 4, 0));
  E.push_back(ev(EventKind::kAnchor, 62, 8, 1, 13, 103, rFit));
  E.push_back(ev(EventKind::kTaskBegin, 62, 13, 1, 0));
  E.push_back(ev(EventKind::kTaskEnd, 63, 13, 1, 0));
  E.push_back(ev(EventKind::kAnchor, 63, 8, 1, 14, 100, rFit));
  E.push_back(ev(EventKind::kTaskBegin, 63, 14, 1, 0));
  E.push_back(ev(EventKind::kTaskEnd, 68, 14, 5, 0));
  E.push_back(ev(EventKind::kAnchor, 68, 8, 2, 15, 200, rQueued));
  E.push_back(ev(EventKind::kTaskBegin, 68, 15, 2, 0));
  E.push_back(ev(EventKind::kMiss, 70, 311, kNone, 15, 100, 1));
  E.push_back(ev(EventKind::kMiss, 71, 312, kNone, 15, 200, 2));
  E.push_back(ev(EventKind::kTaskEnd, 74, 15, 6, 0));
  E.push_back(ev(EventKind::kTaskEnd, 76, 0, 40, 0));
  t.rings.push_back({E.size(), 0});
  return t;
}

TEST(Analysis, HandComputed16TaskDag) {
  const auto trace = synthetic_dag16();
  auto runs = obs::analyze(trace);
  ASSERT_TRUE(runs.ok()) << runs.status().to_string();
  ASSERT_EQ(runs.value().size(), 1u);
  const obs::RunAnalysis& r = runs.value()[0];

  ASSERT_EQ(r.tasks.size(), 16u);
  EXPECT_EQ(r.work, 76u);
  EXPECT_EQ(r.span, 40u);
  EXPECT_EQ(r.recorded_span, 40u);
  EXPECT_TRUE(r.span_matches_recorded);
  EXPECT_EQ(r.span_mismatches, 0u);
  EXPECT_DOUBLE_EQ(r.parallelism, 1.9);
  EXPECT_EQ(r.levels, 2u);
  EXPECT_EQ(r.max_depth, 2u);

  // Default synthetic miss weights and the miss-weighted critical path.
  ASSERT_EQ(r.miss_weights, (std::vector<std::uint64_t>{4, 16}));
  EXPECT_EQ(r.mem_work, 120u);
  EXPECT_EQ(r.mem_span, 75u);
  EXPECT_DOUBLE_EQ(r.mem_parallelism, 1.6);

  // Totals and attribution.
  EXPECT_EQ(r.total_misses, (std::vector<std::uint64_t>{3, 2}));
  EXPECT_EQ(r.total_evictions, (std::vector<std::uint64_t>{1, 0}));

  // Per-task spot checks against the hand computation.
  EXPECT_EQ(r.tasks[3].work_excl, 3u);
  EXPECT_EQ(r.tasks[3].span, 15u);
  EXPECT_EQ(r.tasks[3].span_mem, 31u);
  EXPECT_EQ(r.tasks[5].depth, 2u);
  EXPECT_EQ(r.tasks[5].misses, (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(r.tasks[15].span_mem, 26u);
  EXPECT_EQ(r.tasks[15].anchor_level, 2u);
  EXPECT_EQ(r.tasks[15].anchor_idx, 0u);
  EXPECT_EQ(std::uint32_t(r.tasks[15].anchor_reason),
            std::uint32_t(obs::AnchorReason::kSbQueued));
  ASSERT_EQ(r.tasks[0].constructs.size(), 3u);
  EXPECT_EQ(r.tasks[0].constructs[1].first_child, 6u);

  // Depth rollup: depth 1 holds tasks 1,2,3,6..9,10..15; misses from
  // tasks 1 (2x L1) and 15 (1x L1, 1x L2); depth 2 holds 4,5 with 5's L2
  // miss.
  ASSERT_EQ(r.rollup_depth.size(), 3u);
  EXPECT_EQ(r.rollup_depth[1][0].tasks, 13u);
  EXPECT_EQ(r.rollup_depth[1][0].misses, 3u);
  EXPECT_EQ(r.rollup_depth[1][0].evictions, 1u);
  EXPECT_EQ(r.rollup_depth[1][1].misses, 1u);
  EXPECT_EQ(r.rollup_depth[2][0].tasks, 2u);
  EXPECT_EQ(r.rollup_depth[2][1].misses, 1u);

  // Anchor-reason rollup (the per-phase table): sb-fit = 4,5,10..14,
  // sb-queued = 15, cgc-segment = 1,2,3, cgc-sb-spread = 6..9, root = 0.
  const auto reason_tasks = [&](obs::AnchorReason a) {
    return r.rollup_reason[std::uint32_t(a)][0].tasks;
  };
  EXPECT_EQ(reason_tasks(obs::AnchorReason::kSbFit), 7u);
  EXPECT_EQ(reason_tasks(obs::AnchorReason::kSbQueued), 1u);
  EXPECT_EQ(reason_tasks(obs::AnchorReason::kCgcSegment), 3u);
  EXPECT_EQ(reason_tasks(obs::AnchorReason::kCgcSbSpread), 4u);
  EXPECT_EQ(r.rollup_reason[obs::RunAnalysis::kReasonRoot][0].tasks, 1u);
  EXPECT_EQ(r.rollup_reason[std::uint32_t(obs::AnchorReason::kSbQueued)][1]
                .misses,
            1u);

  // Brent rows: W/(W/p + S).
  ASSERT_EQ(r.speedups.size(), 7u);
  EXPECT_EQ(r.speedups[0].p, 1u);
  EXPECT_DOUBLE_EQ(r.speedups[0].predicted_speedup, 76.0 / 116.0);
  EXPECT_DOUBLE_EQ(r.speedups[2].predicted_speedup, 76.0 / (19.0 + 40.0));
}

TEST(Analysis, GoldenReportFor16TaskDag) {
  const auto trace = synthetic_dag16();
  auto runs = obs::analyze(trace);
  ASSERT_TRUE(runs.ok());
  const std::string got = obs::render_report(runs.value()[0], "dag16");
  // The full report, golden: any formatting or math drift fails here.
  const std::string want =
      "== span report: dag16 ==\n"
      "tasks 16  max depth 2  cache levels 2\n"
      "work 76  span 40  parallelism 1.900\n"
      "span check: recomputed == executor-recorded for all 16 tasks\n"
      "mem-weighted (miss weights L1=4,L2=16): work 120  span 75  "
      "parallelism 1.600\n"
      "predicted speedup (Brent: T_p = W/p + S):\n"
      "       p    work-clock  mem-weighted\n"
      "       1         0.655         0.615\n"
      "       2         0.974         0.889\n"  // 76/(38+40), 120/(60+75)
      "       4         1.288         1.143\n"
      "       8         1.535         1.333\n"
      "      16         1.698         1.455\n"
      "      32         1.794         1.524\n"
      "      64         1.845         1.561\n"
      "miss attribution by recursion depth:\n"
      "  depth   tasks  L1.miss  L1.evict  L2.miss  L2.evict\n"
      "      0       1        0         0        0         0\n"
      "      1      13        3         1        1         0\n"
      "      2       2        0         0        1         0\n"
      "miss attribution at L1 by anchor reason (phase):\n"
      "  sb-fit                tasks      7  miss        0  evict        0\n"
      "  sb-queued-at-anchor   tasks      1  miss        1  evict        0\n"
      "  cgc-segment           tasks      3  miss        2  evict        1\n"
      "  cgcsb-spread          tasks      4  miss        0  evict        0\n"
      "  root                  tasks      1  miss        0  evict        0\n"
      "miss attribution at L2 by anchor reason (phase):\n"
      "  sb-fit                tasks      7  miss        1  evict        0\n"
      "  sb-queued-at-anchor   tasks      1  miss        1  evict        0\n"
      "  cgc-segment           tasks      3  miss        0  evict        0\n"
      "  cgcsb-spread          tasks      4  miss        0  evict        0\n"
      "  root                  tasks      1  miss        0  evict        0\n";
  EXPECT_EQ(got, want);
}

TEST(Analysis, RefusesDroppedTraces) {
  auto trace = synthetic_dag16();
  trace.dropped_events = 1;
  trace.rings[0].dropped = 1;
  const auto runs = obs::analyze(trace);
  ASSERT_FALSE(runs.ok());
  EXPECT_EQ(runs.status().code(), ErrorCode::kInvalidArgument);

  // Live path: a deliberately tiny ring overflows and is refused too.
  obs::Tracer tiny(1, 16);
  const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);
  sched::SimExecutor ex(cfg);
  ex.set_tracer(&tiny);
  const std::uint64_t n = 1 << 12;
  auto buf = ex.make_buf<std::int64_t>(n);
  for (auto& v : buf.raw()) v = 1;
  ex.run(2 * n, [&] { algo::mo_prefix_sum(ex, buf.ref()); });
  ex.set_tracer(nullptr);
  ASSERT_GT(tiny.events_dropped(), 0u);
  EXPECT_FALSE(obs::analyze_tracer(tiny).ok());
}

// The analyzer, report, and histogram rendering are pure functions of the
// (machine, workload): two independent traced runs must match byte for
// byte.  This is the in-test form of BENCH_span.json's determinism.
TEST(Analysis, ReportAndHistogramsByteIdenticalAcrossRuns) {
  const auto render_once = [](std::string& report, std::string& hists) {
    const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);
    obs::Tracer tracer(1, 1u << 18);
    sched::SimExecutor ex(cfg);
    ex.set_tracer(&tracer);
    const std::uint64_t n = 1 << 12;
    auto buf = ex.make_buf<std::int64_t>(n);
    for (auto& v : buf.raw()) v = 1;
    ex.run(2 * n, [&] { algo::mo_prefix_sum(ex, buf.ref()); });
    ex.set_tracer(nullptr);
    auto runs = obs::analyze_tracer(tracer);
    ASSERT_TRUE(runs.ok());
    ASSERT_EQ(runs.value().size(), 1u);
    report = obs::render_report(runs.value()[0], "scan");
    hists = obs::render_histograms(tracer.counters());
  };
  std::string report1, hists1, report2, hists2;
  render_once(report1, hists1);
  render_once(report2, hists2);
  EXPECT_EQ(report1, report2);
  EXPECT_EQ(hists1, hists2);
  EXPECT_FALSE(report1.empty());
  EXPECT_FALSE(hists1.empty());
  // And the exported-trace round trip reproduces the live-capture report.
  const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);
  obs::Tracer tracer(1, 1u << 18);
  sched::SimExecutor ex(cfg);
  ex.set_tracer(&tracer);
  const std::uint64_t n = 1 << 12;
  auto buf = ex.make_buf<std::int64_t>(n);
  for (auto& v : buf.raw()) v = 1;
  ex.run(2 * n, [&] { algo::mo_prefix_sum(ex, buf.ref()); });
  ex.set_tracer(nullptr);
  auto parsed = obs::parse_chrome_trace(obs::chrome_trace_json(tracer));
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  auto runs = obs::analyze(parsed.value());
  ASSERT_TRUE(runs.ok());
  EXPECT_EQ(obs::render_report(runs.value()[0], "scan"), report1);
}

// ---------------------------------------------------------------------------
// Paper-facing assertions
// ---------------------------------------------------------------------------

// Table I: the I-GEP computation runs the same 8 subproblems per node in
// two rounds of four whether scheduled as D or as the permuted D*; only
// *which* round a subproblem lands in changes.  Equal work and an equal
// critical path -- a span ratio of exactly 1 -- measured here from the
// reconstructed DAG (not from the executor's own counters).
TEST(Analysis, TableIDvsDstarSpanRatio) {
  const auto analyze_sched = [](algo::GepSchedule sched) {
    const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);
    obs::Tracer tracer(1, 1u << 20);
    sched::SimExecutor ex(cfg);
    ex.set_tracer(&tracer);
    const std::uint64_t n = 64;  // n^2 words > C_1: root anchors at L2
    auto buf = ex.make_buf<double>(n * n);
    util::Xoshiro256 rng(19);
    for (auto& v : buf.raw()) v = rng.uniform() + 0.1;
    using Mat = sched::MatView<sched::SimRef<double>>;
    ex.run(n * n, [&] {
      algo::igep<algo::FloydWarshallInstance>(ex, Mat::full(buf.ref(), n, n),
                                              8, sched);
    });
    ex.set_tracer(nullptr);
    EXPECT_EQ(tracer.events_dropped(), 0u);
    auto runs = obs::analyze_tracer(tracer);
    EXPECT_TRUE(runs.ok());
    return runs.value().at(0);
  };
  const obs::RunAnalysis d = analyze_sched(algo::GepSchedule::kD);
  const obs::RunAnalysis dstar = analyze_sched(algo::GepSchedule::kDstar);

  // Identical work, identical DAG shape, and the analyzer's recomputed
  // span agrees with the executor for both schedules.
  EXPECT_EQ(d.work, dstar.work);
  EXPECT_EQ(d.tasks.size(), dstar.tasks.size());
  EXPECT_TRUE(d.span_matches_recorded);
  EXPECT_TRUE(dstar.span_matches_recorded);
  ASSERT_GT(dstar.span, 0u);
  EXPECT_EQ(d.span, dstar.span) << "Table I: D and D* must have the same "
                                   "critical path (ratio 1)";
  EXPECT_DOUBLE_EQ(double(d.span) / double(dstar.span), 1.0);
  // The schedules are genuinely different executions, not one trace
  // analyzed twice: the work-clock placement of the rounds differs.
  EXPECT_GT(d.span, d.work / 4);  // sanity: span within Brent's range
  EXPECT_LE(d.span, d.work);
}

// Table II shape: scan and FFT parallelism W/S is ~1 while the problem
// fits a single L1 (the SB root correctly serializes into one cache) and
// saturates toward p = 4 once it spills, growing monotonically with n.
TEST(Analysis, ScanAndFftParallelismGrowWithN) {
  const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);

  const auto parallelism_of = [&](auto&& workload) {
    obs::Tracer tracer(1, 1u << 20);
    sched::SimExecutor ex(cfg);
    ex.set_tracer(&tracer);
    workload(ex);
    ex.set_tracer(nullptr);
    EXPECT_EQ(tracer.events_dropped(), 0u);
    auto runs = obs::analyze_tracer(tracer);
    EXPECT_TRUE(runs.ok());
    EXPECT_TRUE(runs.value().at(0).span_matches_recorded);
    return runs.value().at(0).parallelism;
  };

  std::vector<double> scan_par;
  for (std::uint64_t n : {1u << 10, 1u << 12, 1u << 14}) {
    scan_par.push_back(parallelism_of([&](sched::SimExecutor& ex) {
      auto buf = ex.make_buf<std::int64_t>(n);
      for (auto& v : buf.raw()) v = 1;
      ex.run(2 * n, [&] { algo::mo_prefix_sum(ex, buf.ref()); });
    }));
  }
  std::vector<double> fft_par;
  for (std::uint64_t n : {1u << 8, 1u << 10, 1u << 12}) {
    fft_par.push_back(parallelism_of([&](sched::SimExecutor& ex) {
      auto buf = ex.make_buf<algo::cplx>(n);
      util::Xoshiro256 rng(13);
      for (auto& v : buf.raw()) v = algo::cplx(rng.uniform(), 0.0);
      ex.run(6 * n, [&] { algo::mo_fft(ex, buf.ref()); });
    }));
  }
  for (const auto& par : {scan_par, fft_par}) {
    ASSERT_EQ(par.size(), 3u);
    EXPECT_GE(par[1], par[0]);
    EXPECT_GE(par[2], par[1]);
    EXPECT_GT(par[2], par[0]) << "parallelism must grow with n";
    EXPECT_GT(par[2], 3.5) << "large n must saturate toward p = 4";
    EXPECT_LE(par[2], 4.0 + 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Histogram metrics
// ---------------------------------------------------------------------------

TEST(Histogram, CountSumExtremaAndPercentiles) {
  obs::Histogram h;
  EXPECT_EQ(h.percentile(50), 0u);  // empty
  for (std::uint64_t v : {1u, 1u, 2u, 3u, 100u}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 107u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  // Log2 buckets: p50 -> rank ceil(0.5*5)=3 -> bucket of {2,3} (values
  // 2..3), upper edge 3.  p99 -> rank 5 -> bucket of 100 (65..128),
  // clamped to the observed max.
  EXPECT_EQ(h.percentile(50), 3u);
  EXPECT_EQ(h.percentile(99), 100u);
  EXPECT_EQ(h.percentile(0), 1u);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

TEST(Histogram, RegistryRoundTripAndClear) {
  obs::CounterRegistry reg;
  auto& h = reg.histogram("test.h");
  EXPECT_EQ(&h, &reg.histogram("test.h"));  // same name, same histogram
  h.record(7);
  EXPECT_EQ(reg.find_histogram("test.h")->count(), 1u);
  reg.clear();
  // Cleared in place: same object, zeroed -- cached pointers stay valid.
  EXPECT_EQ(&h, &reg.histogram("test.h"));
  EXPECT_EQ(h.count(), 0u);
  std::vector<std::string> names;
  reg.for_each_histogram(
      [&](std::string_view name, const obs::Histogram&) {
        names.emplace_back(name);
      });
  EXPECT_EQ(names, (std::vector<std::string>{"test.h"}));
}

TEST(Histogram, SimExecutorRecordsGrainAnchorAndAccessDistributions) {
  const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);
  obs::Tracer tracer(1, 1u << 18);
  sched::SimExecutor ex(cfg);
  ex.set_tracer(&tracer);
  const std::uint64_t n = 1 << 12;
  auto buf = ex.make_buf<std::int64_t>(n);
  for (auto& v : buf.raw()) v = 1;
  ex.run(2 * n, [&] { algo::mo_prefix_sum(ex, buf.ref()); });
  ex.set_tracer(nullptr);
  const obs::Histogram* grain =
      tracer.counters().find_histogram("sim.grain.cgc_iters");
  const obs::Histogram* anchor =
      tracer.counters().find_histogram("sim.anchor.space_words");
  const obs::Histogram* access =
      tracer.counters().find_histogram("sim.access.run_words");
  ASSERT_NE(grain, nullptr);
  ASSERT_NE(anchor, nullptr);
  ASSERT_NE(access, nullptr);
  EXPECT_GT(grain->count(), 0u);
  EXPECT_GT(anchor->count(), 0u);
  EXPECT_GT(access->count(), 0u);
  // The scan's work is its access volume: the access histogram's sum is
  // exactly the run's total work.
  auto runs = obs::analyze_tracer(tracer);
  ASSERT_TRUE(runs.ok());
  EXPECT_EQ(access->sum(), runs.value()[0].work);
}

}  // namespace
}  // namespace obliv
