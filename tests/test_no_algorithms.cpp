#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "algo/fft.hpp"
#include "algo/gep.hpp"
#include "no/colsort.hpp"
#include "no/fft.hpp"
#include "no/ngep.hpp"
#include "no/transpose.hpp"
#include "no/wrappers.hpp"
#include "util/rng.hpp"

namespace obliv::no {
namespace {

TEST(NoTranspose, CorrectAndOneSuperstep) {
  const std::uint64_t n = 16;
  NoMachine mach(n * n, {{16, 4}});
  util::Xoshiro256 rng(1);
  std::vector<double> a(n * n), out;
  for (auto& v : a) v = rng.uniform();
  no_transpose(mach, a, out, n);
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      ASSERT_EQ(out[i * n + j], a[j * n + i]);
    }
  }
  EXPECT_EQ(mach.supersteps(), 1u);
}

TEST(NoTranspose, CommunicationMatchesN2OverBp) {
  // Theta(n^2/(Bp)): each processor holds n^2/p elements; all but the
  // diagonal-block fraction must move.
  const std::uint64_t n = 32;
  const std::uint32_t p = 16;
  const std::uint64_t B = 4;
  NoMachine mach(n * n, {{p, B}});
  std::vector<double> a(n * n, 1.0), out;
  no_transpose(mach, a, out, n);
  const double model = double(n * n) / (double(B) * p);
  EXPECT_GT(double(mach.communication(0)), 0.2 * model);
  EXPECT_LT(double(mach.communication(0)), 5.0 * model);
}

TEST(NoFft, MatchesNaiveDft) {
  for (std::uint64_t n : {4u, 16u, 64u, 256u}) {
    NoMachine mach(n, {{4, 2}});
    util::Xoshiro256 rng(n);
    std::vector<algo::cplx> x(n);
    for (auto& v : x) v = algo::cplx(rng.uniform() - 0.5, rng.uniform());
    const auto expect = algo::naive_dft(x);
    no_fft(mach, x);
    double err = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      err = std::max(err, std::abs(x[i] - expect[i]));
    }
    EXPECT_LT(err, 1e-9 * n) << "n=" << n;
  }
}

TEST(NoFft, ParallelismReducesComputation) {
  // Computation complexity on M(p, B) must drop roughly with p.
  const std::uint64_t n = 1 << 10;
  NoMachine mach(n, {{1, 1}, {16, 1}});
  std::vector<algo::cplx> x(n, algo::cplx(1.0, 0.0));
  no_fft(mach, x);
  const double ratio = double(mach.computation(0)) /
                       double(std::max<std::uint64_t>(1, mach.computation(1)));
  EXPECT_GT(ratio, 4.0);  // at least 4x speedup on 16 processors
}

// ---- Columnsort ----

TEST(Colsort, ShapeIsValid) {
  for (std::uint64_t n : {10u, 100u, 1000u, 50000u}) {
    const ColsortShape sh = colsort_shape(n);
    EXPECT_GE(sh.r * sh.s, n);
    if (sh.s > 1) {
      EXPECT_GE(sh.r, 2 * (sh.s - 1) * (sh.s - 1));
    }
  }
}

class ColsortSizes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ColsortSizes, SortsRandomKeys) {
  const std::uint64_t n = GetParam();
  const ColsortShape sh = colsort_shape(n);
  NoMachine mach(sh.s + 1, {{std::min<std::uint32_t>(2, sh.s + 1), 4}});
  util::Xoshiro256 rng(n);
  std::vector<std::int64_t> data(n);
  for (auto& v : data) v = static_cast<std::int64_t>(rng.below(1u << 30));
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  no_columnsort(mach, data, std::numeric_limits<std::int64_t>::min(),
                std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(data, expect);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ColsortSizes,
                         ::testing::Values(1, 2, 10, 100, 1000, 4096, 20000));

TEST(Colsort, DuplicateKeys) {
  const std::uint64_t n = 5000;
  const ColsortShape sh = colsort_shape(n);
  NoMachine mach(sh.s + 1, {{2, 4}});
  util::Xoshiro256 rng(3);
  std::vector<std::int64_t> data(n);
  for (auto& v : data) v = static_cast<std::int64_t>(rng.below(7));
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  no_columnsort(mach, data, std::numeric_limits<std::int64_t>::min(),
                std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(data, expect);
}

// ---- N-GEP ----

/// Non-commutative GEP function: f(f(y,a),b) != f(f(y,b),a) (the halving
/// weights earlier updates differently), with bounded magnitude so results
/// stay finite and comparable.
struct NonCommutativeInstance {
  using value_type = double;
  static double f(double y, double u, double v, double /*w*/) {
    const double t = u * v;
    return 0.5 * y + t / (1.0 + std::abs(t));
  }
  static bool in_sigma(std::uint64_t, std::uint64_t, std::uint64_t) {
    return true;
  }
  static bool intersects(algo::Interval, algo::Interval, algo::Interval) {
    return true;
  }
};

std::vector<double> random_matrix_host(std::uint64_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<double> x(n * n);
  for (auto& v : x) v = rng.uniform() + 0.1;
  return x;
}

TEST(NGep, DStarMatchesIgepForCommutativeInstances) {
  const std::uint64_t n = 32;
  auto x = random_matrix_host(n, 5);
  auto expect = x;
  algo::gep_reference<algo::FloydWarshallInstance>(expect, n);
  NoMachine mach(16, {{16, 4}});
  n_gep<algo::FloydWarshallInstance>(mach, x, n, /*use_dstar=*/true);
  for (std::uint64_t i = 0; i < n * n; ++i) {
    ASSERT_NEAR(x[i], expect[i], 1e-12) << i;
  }
}

TEST(NGep, DOrderAlsoCorrect) {
  const std::uint64_t n = 16;
  auto x = random_matrix_host(n, 6);
  auto expect = x;
  algo::gep_reference<algo::FloydWarshallInstance>(expect, n);
  NoMachine mach(16, {{16, 4}});
  n_gep<algo::FloydWarshallInstance>(mach, x, n, /*use_dstar=*/false);
  for (std::uint64_t i = 0; i < n * n; ++i) {
    ASSERT_NEAR(x[i], expect[i], 1e-12) << i;
  }
}

TEST(NGep, GaussianMatchesReference) {
  const std::uint64_t n = 16;
  auto x = random_matrix_host(n, 7);
  for (std::uint64_t i = 0; i < n; ++i) x[i * n + i] += double(n);
  auto expect = x;
  algo::gep_reference<algo::GaussianInstance>(expect, n);
  NoMachine mach(16, {{4, 4}});
  n_gep<algo::GaussianInstance>(mach, x, n, true);
  for (std::uint64_t i = 0; i < n * n; ++i) {
    ASSERT_NEAR(x[i], expect[i], 1e-9) << i;
  }
}

TEST(NGep, DStarDivergesOnNonCommutativeInstance) {
  // The commutativity requirement is real: with a non-commutative f the
  // D* reordering produces a different (wrong) result while D agrees with
  // the reference.  (Magnitudes explode as 2^(n^3) updates double y, so we
  // compare patterns at tiny n.)
  // n and the base cutoff are chosen so the recursion reaches D-type calls
  // that themselves recurse (only there do D and D* order k-halves
  // differently per X quadrant).
  const std::uint64_t n = 16;
  auto x0 = random_matrix_host(n, 8);
  auto ref = x0;
  algo::gep_reference<NonCommutativeInstance>(ref, n);
  auto xd = x0;
  {
    NoMachine mach(4, {{4, 4}});
    n_gep<NonCommutativeInstance>(mach, xd, n, /*use_dstar=*/false, 2);
  }
  auto xs = x0;
  {
    NoMachine mach(4, {{4, 4}});
    n_gep<NonCommutativeInstance>(mach, xs, n, /*use_dstar=*/true, 2);
  }
  // D follows I-GEP's order.  I-GEP itself only guarantees GEP-equivalence
  // under the paper's conditions, but D vs D* must differ from each other
  // here, demonstrating that ordering matters without commutativity.
  bool differs = false;
  for (std::uint64_t i = 0; i < n * n; ++i) {
    if (std::abs(xd[i] - xs[i]) >
        1e-9 * std::max(std::abs(xd[i]), 1.0)) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(NGep, DStarCommunicatesLessThanD) {
  // Table I's point: D duplicates U/V quadrants within rounds; D* does not.
  const std::uint64_t n = 64;
  const std::uint32_t pes = 64;
  std::uint64_t comm_d, comm_dstar;
  {
    auto x = random_matrix_host(n, 9);
    NoMachine mach(pes, {{pes, 4}});
    n_gep<algo::FloydWarshallInstance>(mach, x, n, false);
    comm_d = mach.communication(0);
  }
  {
    auto x = random_matrix_host(n, 9);
    NoMachine mach(pes, {{pes, 4}});
    n_gep<algo::FloydWarshallInstance>(mach, x, n, true);
    comm_dstar = mach.communication(0);
  }
  EXPECT_LT(comm_dstar, comm_d);
}

// ---- NO wrappers (NO-LR, NO-CC, NO prefix sums) ----

TEST(NoWrappers, PrefixSumCorrect) {
  const std::uint64_t n = 3000;
  NoMachine mach(16, {{16, 4}});
  std::vector<std::uint64_t> xs(n, 1);
  auto got = no_prefix_sum(mach, xs);
  for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(got[i], i + 1);
  EXPECT_GT(mach.communication(0), 0u);
}

TEST(NoWrappers, ListRankCorrect) {
  const std::uint64_t n = 2000;
  // Random-order list.
  std::vector<std::uint64_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  util::Xoshiro256 rng(12);
  for (std::uint64_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.below(i)]);
  }
  std::vector<std::uint64_t> succ(n, algo::kNil), pred(n, algo::kNil),
      expect(n);
  for (std::uint64_t t = 0; t < n; ++t) {
    expect[perm[t]] = n - 1 - t;
    if (t + 1 < n) {
      succ[perm[t]] = perm[t + 1];
      pred[perm[t + 1]] = perm[t];
    }
  }
  NoMachine mach(8, {{8, 4}});
  EXPECT_EQ(no_list_rank(mach, succ, pred), expect);
}

TEST(NoWrappers, ConnectedComponentsCorrect) {
  algo::EdgeList g;
  g.n = 300;
  util::Xoshiro256 rng(13);
  for (int e = 0; e < 350; ++e) {
    g.edges.emplace_back(static_cast<std::uint32_t>(rng.below(g.n)),
                         static_cast<std::uint32_t>(rng.below(g.n)));
  }
  NoMachine mach(8, {{8, 4}});
  const auto got = no_connected_components(mach, g);
  const auto ref = algo::cc_bfs_reference(g);
  // Same partition check.
  for (std::uint64_t u = 0; u < g.n; ++u) {
    for (std::uint64_t v = u + 1; v < std::min<std::uint64_t>(g.n, u + 40);
         ++v) {
      ASSERT_EQ(got[u] == got[v], ref[u] == ref[v])
          << u << "," << v;
    }
  }
}

}  // namespace
}  // namespace obliv::no
