#include "algo/scan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "hm/config.hpp"
#include "sched/native_executor.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

namespace obliv::algo {
namespace {

using sched::SimExecutor;

class ScanSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanSizes, InclusivePrefixSumMatchesStdOnSim) {
  const std::size_t n = GetParam();
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto buf = ex.make_buf<std::int64_t>(n);
  util::Xoshiro256 rng(n);
  std::vector<std::int64_t> expect(n);
  for (std::size_t i = 0; i < n; ++i) {
    buf.raw()[i] = static_cast<std::int64_t>(rng.below(1000)) - 500;
    expect[i] = buf.raw()[i];
  }
  std::partial_sum(expect.begin(), expect.end(), expect.begin());
  ex.run(2 * n, [&] { mo_prefix_sum(ex, buf.ref()); });
  EXPECT_EQ(buf.raw(), expect);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScanSizes,
                         ::testing::Values(1, 2, 3, 7, 8, 64, 100, 1000, 4096,
                                           12345));

TEST(Scan, MaxOperatorWorks) {
  const std::size_t n = 513;
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto buf = ex.make_buf<std::int64_t>(n);
  util::Xoshiro256 rng(7);
  std::vector<std::int64_t> expect(n);
  for (std::size_t i = 0; i < n; ++i) {
    buf.raw()[i] = static_cast<std::int64_t>(rng.below(1u << 20));
    expect[i] = std::max(buf.raw()[i], i ? expect[i - 1] : buf.raw()[0]);
  }
  ex.run(2 * n, [&] {
    mo_scan(ex, buf.ref(),
            [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
  });
  EXPECT_EQ(buf.raw(), expect);
}

TEST(Scan, ReduceMatchesAccumulate) {
  const std::size_t n = 10000;
  SimExecutor ex(hm::MachineConfig::shared_l2(8));
  auto buf = ex.make_buf<std::int64_t>(n);
  std::iota(buf.raw().begin(), buf.raw().end(), 1);
  std::int64_t total = 0;
  ex.run(2 * n, [&] {
    total = mo_reduce(ex, buf.ref(),
                      [](std::int64_t a, std::int64_t b) { return a + b; });
  });
  EXPECT_EQ(total, static_cast<std::int64_t>(n) * (n + 1) / 2);
}

TEST(Scan, NativeExecutorMatches) {
  const std::size_t n = 100000;
  sched::NativeExecutor ex(4);
  auto buf = ex.make_buf<std::int64_t>(n);
  std::vector<std::int64_t> expect(n);
  util::Xoshiro256 rng(99);
  for (std::size_t i = 0; i < n; ++i) {
    buf.raw()[i] = static_cast<std::int64_t>(rng.below(100));
    expect[i] = buf.raw()[i];
  }
  std::partial_sum(expect.begin(), expect.end(), expect.begin());
  mo_prefix_sum(ex, buf.ref());
  EXPECT_EQ(buf.raw(), expect);
}

TEST(Scan, CacheMissesAreLinearInN) {
  // Table II row "Prefix sum": Theta(n / (q_i B_i)) misses per level.
  // Doubling n should roughly double the misses (ratio in [1.6, 2.6]).
  auto misses_for = [](std::size_t n) {
    SimExecutor ex(hm::MachineConfig::shared_l2(4));
    auto buf = ex.make_buf<std::int64_t>(n);
    for (std::size_t i = 0; i < n; ++i) buf.raw()[i] = 1;
    auto m = ex.run(2 * n, [&] { mo_prefix_sum(ex, buf.ref()); });
    return m.level_total_misses[1];
  };
  const auto a = misses_for(1 << 15);
  const auto b = misses_for(1 << 16);
  const double ratio = double(b) / double(a);
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.6);
}

TEST(Scan, SpanIsLogarithmicTimesB1) {
  // Paper: O(B_1 log n) critical pathlength for CGC scans (plus n/p work
  // term).  Quadrupling n from a large base should grow span by roughly the
  // work term only; check span stays far below n.
  SimExecutor ex(hm::MachineConfig::shared_l2(8));
  const std::size_t n = 1 << 16;
  auto buf = ex.make_buf<std::int64_t>(n);
  for (std::size_t i = 0; i < n; ++i) buf.raw()[i] = 1;
  auto m = ex.run(2 * n, [&] { mo_prefix_sum(ex, buf.ref()); });
  EXPECT_LT(m.span, m.work / 4);  // real parallelism present
}

}  // namespace
}  // namespace obliv::algo
