#include "algo/listrank.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "hm/config.hpp"
#include "sched/native_executor.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

namespace obliv::algo {
namespace {

using sched::SimExecutor;

/// Builds a list of n nodes in random memory order; returns (succ, pred,
/// expected ranks).
struct ListInstance {
  std::vector<std::uint64_t> succ, pred, rank;
};

ListInstance random_list(std::uint64_t n, std::uint64_t seed) {
  // Random permutation = order of the list's nodes in memory.
  std::vector<std::uint64_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  util::Xoshiro256 rng(seed);
  for (std::uint64_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.below(i)]);
  }
  ListInstance li;
  li.succ.assign(n, kNil);
  li.pred.assign(n, kNil);
  li.rank.assign(n, 0);
  for (std::uint64_t t = 0; t < n; ++t) {
    li.rank[perm[t]] = n - 1 - t;  // distance from end
    if (t + 1 < n) {
      li.succ[perm[t]] = perm[t + 1];
      li.pred[perm[t + 1]] = perm[t];
    }
  }
  return li;
}

ListInstance sequential_list(std::uint64_t n) {
  ListInstance li;
  li.succ.assign(n, kNil);
  li.pred.assign(n, kNil);
  li.rank.assign(n, 0);
  for (std::uint64_t v = 0; v < n; ++v) {
    li.rank[v] = n - 1 - v;
    if (v + 1 < n) {
      li.succ[v] = v + 1;
      li.pred[v + 1] = v;
    }
  }
  return li;
}

std::vector<std::uint64_t> run_mo_lr(const ListInstance& li,
                                     sched::RunMetrics* metrics = nullptr) {
  const std::uint64_t n = li.succ.size();
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto sb = ex.make_buf<std::uint64_t>(n);
  auto pb = ex.make_buf<std::uint64_t>(n);
  auto db = ex.make_buf<std::uint64_t>(n);
  sb.raw() = li.succ;
  pb.raw() = li.pred;
  auto m = ex.run(8 * n, [&] {
    mo_list_rank(ex, sb.ref(), pb.ref(), db.ref());
  });
  if (metrics) *metrics = m;
  return db.raw();
}

TEST(Pull, RoutesFieldThroughTargets) {
  const std::uint64_t n = 500;
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto target = ex.make_buf<std::uint64_t>(n);
  auto field = ex.make_buf<std::uint64_t>(n);
  auto out = ex.make_buf<std::uint64_t>(n);
  util::Xoshiro256 rng(1);
  for (std::uint64_t v = 0; v < n; ++v) {
    target.raw()[v] = v % 7 == 0 ? kNil : rng.below(n);
    field.raw()[v] = 1000 + v;
  }
  ex.run(8 * n, [&] {
    mo_pull(ex, target.ref(), field.ref(), out.ref(), 777);
  });
  for (std::uint64_t v = 0; v < n; ++v) {
    const std::uint64_t t = target.raw()[v];
    EXPECT_EQ(out.raw()[v], t == kNil ? 777 : 1000 + t) << v;
  }
}

class ListRankSizes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ListRankSizes, RandomOrderList) {
  const auto li = random_list(GetParam(), GetParam() * 7 + 1);
  EXPECT_EQ(run_mo_lr(li), li.rank);
}

TEST_P(ListRankSizes, SequentialOrderList) {
  const auto li = sequential_list(GetParam());
  EXPECT_EQ(run_mo_lr(li), li.rank);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ListRankSizes,
                         ::testing::Values(1, 2, 3, 64, 65, 100, 333, 1000,
                                           4096, 10000));

TEST(ListRank, WeightedDistances) {
  const std::uint64_t n = 300;
  auto li = random_list(n, 9);
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto sb = ex.make_buf<std::uint64_t>(n);
  auto pb = ex.make_buf<std::uint64_t>(n);
  auto lb = ex.make_buf<std::uint64_t>(n);
  auto db = ex.make_buf<std::uint64_t>(n);
  sb.raw() = li.succ;
  pb.raw() = li.pred;
  util::Xoshiro256 rng(11);
  for (auto& w : lb.raw()) w = 1 + rng.below(9);
  // Expected: walk backward accumulating weights.
  std::vector<std::uint64_t> expect(n, 0);
  std::uint64_t tail = 0;
  while (li.succ[tail] != kNil) tail = li.succ[tail];
  for (std::uint64_t u = tail; li.pred[u] != kNil; u = li.pred[u]) {
    expect[li.pred[u]] = expect[u] + lb.raw()[li.pred[u]];
  }
  ex.run(8 * n, [&] {
    mo_list_rank_weighted(ex, sb.ref(), pb.ref(), lb.ref(), db.ref());
  });
  EXPECT_EQ(db.raw(), expect);
}

TEST(ListRank, SequentialBaselineCorrect) {
  const auto li = random_list(500, 21);
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto sb = ex.make_buf<std::uint64_t>(500);
  auto pb = ex.make_buf<std::uint64_t>(500);
  auto db = ex.make_buf<std::uint64_t>(500);
  sb.raw() = li.succ;
  pb.raw() = li.pred;
  ex.run(8 * 500, [&] {
    list_rank_sequential(ex, sb.ref(), pb.ref(), db.ref());
  });
  EXPECT_EQ(db.raw(), li.rank);
}

TEST(ListRank, NativeExecutorCorrect) {
  const std::uint64_t n = 20000;
  const auto li = random_list(n, 31);
  sched::NativeExecutor ex(4);
  auto sb = ex.make_buf<std::uint64_t>(n);
  auto pb = ex.make_buf<std::uint64_t>(n);
  auto db = ex.make_buf<std::uint64_t>(n);
  sb.raw() = li.succ;
  pb.raw() = li.pred;
  mo_list_rank(ex, sb.ref(), pb.ref(), db.ref());
  EXPECT_EQ(db.raw(), li.rank);
}

TEST(ListRank, DcfRoundsKnobPreservesCorrectness) {
  // Paper footnote 4: k applications of deterministic coin flipping shrink
  // the color count to O(log^(k) n).  Any k >= 2 must give correct ranks.
  const std::uint64_t n = 2000;
  const auto li = random_list(n, 55);
  for (int rounds : {2, 3, 5}) {
    SimExecutor ex(hm::MachineConfig::shared_l2(4));
    auto sb = ex.make_buf<std::uint64_t>(n);
    auto pb = ex.make_buf<std::uint64_t>(n);
    auto db = ex.make_buf<std::uint64_t>(n);
    sb.raw() = li.succ;
    pb.raw() = li.pred;
    ex.run(8 * n, [&] {
      mo_list_rank(ex, sb.ref(), pb.ref(), db.ref(), rounds);
    });
    ASSERT_EQ(db.raw(), li.rank) << "dcf_rounds=" << rounds;
  }
}

TEST(ListRank, DcfStepShrinksColorsAndKeepsThemProper) {
  // Direct unit test of the coloring: after each DCF application adjacent
  // nodes still differ and the color range shrinks to 2(1 + log(range)).
  const std::uint64_t n = 5000;
  const auto li = random_list(n, 66);
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto sb = ex.make_buf<std::uint64_t>(n);
  auto cb = ex.make_buf<std::uint64_t>(n);
  auto scb = ex.make_buf<std::uint64_t>(n);
  sb.raw() = li.succ;
  for (std::uint64_t v = 0; v < n; ++v) cb.raw()[v] = v;
  std::uint64_t prev_max = n;
  ex.run(8 * n, [&] {
    for (int round = 0; round < 3; ++round) {
      mo_pull(ex, sb.ref(), cb.ref(), scb.ref(), kNil);
      detail::dcf_step(ex, cb.ref(), scb.ref(), sb.ref());
      std::uint64_t max_color = 0;
      for (std::uint64_t v = 0; v < n; ++v) {
        max_color = std::max(max_color, cb.raw()[v]);
        if (li.succ[v] != kNil) {
          ASSERT_NE(cb.raw()[v], cb.raw()[li.succ[v]])
              << "round " << round << " node " << v;
        }
      }
      ASSERT_LT(max_color, prev_max);
      prev_max = max_color;
    }
  });
  EXPECT_LE(prev_max, 7u);  // <= 8 colors after three applications
}

TEST(ListRank, SpanStaysPolylog) {
  // Theorem 7: parallel steps O((n/p) log n + polylog terms); the span must
  // be far below the sequential baseline's Theta(n) pointer chase.
  const std::uint64_t n = 1 << 13;
  const auto li = random_list(n, 41);
  sched::RunMetrics m;
  run_mo_lr(li, &m);
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto sb = ex.make_buf<std::uint64_t>(n);
  auto pb = ex.make_buf<std::uint64_t>(n);
  auto db = ex.make_buf<std::uint64_t>(n);
  sb.raw() = li.succ;
  pb.raw() = li.pred;
  auto mseq = ex.run(8 * n, [&] {
    list_rank_sequential(ex, sb.ref(), pb.ref(), db.ref());
  });
  EXPECT_EQ(mseq.span, mseq.work);        // baseline has zero parallelism
  EXPECT_LT(m.span * 2, m.work);          // MO-LR is genuinely parallel
}

}  // namespace
}  // namespace obliv::algo
