// Golden-counter regression test for the HM simulator.
//
// The expected vectors below were captured from the pre-flat-table
// simulator (PR 2 baseline) by running the workloads in
// golden_workloads.hpp.  Per-level misses, evictions, invalidations, the
// ping-pong count, and work/span must stay bit-identical: the paper's
// Table II / Theorem benches are all derived from these counts, so any
// simulator "optimisation" that perturbs them is a correctness bug, not a
// perf win.
//
// Regenerate (only after an intentional semantic change):
//   OBLIV_GOLDEN_REGEN=1 ./obliv_tests --gtest_filter='GoldenCounters.*'
#include <cstdlib>
#include <iostream>

#include <gtest/gtest.h>

#include "golden_workloads.hpp"

namespace obliv::golden {
namespace {

struct Expected {
  const char* name;
  std::vector<std::uint64_t> counts;
};

// clang-format off
const Expected kExpected[] = {
    // <GOLDEN>
    {"scan/shared_l2/1024",
     {256ull, 256ull, 0ull, 0ull, 128ull, 128ull, 0ull, 0ull, 0ull, 8152ull, 8152ull}},
    {"scan/shared_l2/4096",
     {1568ull, 395ull, 538ull, 6ull, 512ull, 512ull, 0ull, 0ull, 6ull, 32722ull, 8237ull}},
    {"mo-mt/shared_l2/32",
     {480ull, 128ull, 0ull, 0ull, 192ull, 192ull, 0ull, 0ull, 0ull, 4096ull, 1024ull}},
    {"mo-mt/shared_l2/64",
     {1971ull, 512ull, 947ull, 0ull, 768ull, 768ull, 0ull, 0ull, 0ull, 16384ull, 4096ull}},
    {"spms/shared_l2/512",
     {514ull, 514ull, 258ull, 0ull, 204ull, 204ull, 0ull, 0ull, 0ull, 21449ull, 21449ull}},
    {"spms/shared_l2/2048",
     {4038ull, 1205ull, 2554ull, 470ull, 934ull, 934ull, 0ull, 0ull, 467ull, 100943ull, 33284ull}},
    {"igep/shared_l2/16",
     {32ull, 32ull, 0ull, 0ull, 16ull, 16ull, 0ull, 0ull, 0ull, 20480ull, 20480ull}},
    {"igep/shared_l2/32",
     {128ull, 128ull, 0ull, 0ull, 64ull, 64ull, 0ull, 0ull, 0ull, 163840ull, 163840ull}},
    {"scan/figure1/1024",
     {540ull, 273ull, 410ull, 2ull, 256ull, 256ull, 0ull, 0ull, 128ull, 128ull, 0ull, 0ull, 128ull, 128ull, 0ull, 0ull, 2ull, 8152ull, 4109ull}},
    {"scan/figure1/4096",
     {2631ull, 661ull, 2369ull, 6ull, 1545ull, 775ull, 521ull, 0ull, 512ull, 512ull, 0ull, 0ull, 512ull, 512ull, 0ull, 0ull, 6ull, 32722ull, 8237ull}},
    {"mo-mt/figure1/32",
     {508ull, 256ull, 380ull, 0ull, 384ull, 384ull, 0ull, 0ull, 192ull, 192ull, 0ull, 0ull, 192ull, 192ull, 0ull, 0ull, 0ull, 4096ull, 2048ull}},
    {"mo-mt/figure1/64",
     {2046ull, 512ull, 1790ull, 0ull, 1900ull, 992ull, 876ull, 0ull, 768ull, 768ull, 0ull, 0ull, 768ull, 768ull, 0ull, 0ull, 0ull, 16384ull, 4096ull}},
    {"spms/figure1/512",
     {1270ull, 671ull, 1042ull, 100ull, 401ull, 401ull, 0ull, 0ull, 204ull, 204ull, 0ull, 0ull, 204ull, 204ull, 0ull, 0ull, 100ull, 21449ull, 11556ull}},
    {"spms/figure1/2048",
     {7679ull, 2218ull, 7132ull, 291ull, 3289ull, 1824ull, 2265ull, 0ull, 934ull, 934ull, 0ull, 0ull, 934ull, 934ull, 0ull, 0ull, 288ull, 100943ull, 33284ull}},
    {"igep/figure1/16",
     {32ull, 32ull, 0ull, 0ull, 32ull, 32ull, 0ull, 0ull, 16ull, 16ull, 0ull, 0ull, 16ull, 16ull, 0ull, 0ull, 0ull, 20480ull, 20480ull}},
    {"igep/figure1/32",
     {452ull, 229ull, 316ull, 8ull, 128ull, 128ull, 0ull, 0ull, 64ull, 64ull, 0ull, 0ull, 64ull, 64ull, 0ull, 0ull, 8ull, 163840ull, 122880ull}},
    // </GOLDEN>
};
// clang-format on

TEST(GoldenCounters, BitIdenticalToBaseline) {
  const std::vector<GoldenRun> runs = run_all();
  if (std::getenv("OBLIV_GOLDEN_REGEN") != nullptr) {
    for (const GoldenRun& g : runs) {
      std::cout << "    {\"" << g.name << "\",\n     {";
      for (std::size_t i = 0; i < g.counts.size(); ++i) {
        std::cout << g.counts[i] << (i + 1 < g.counts.size() ? "ull, " : "ull");
      }
      std::cout << "}},\n";
    }
    GTEST_SKIP() << "regeneration mode: printed literals, asserting nothing";
  }
  const std::size_t n_expected = std::size(kExpected);
  ASSERT_EQ(runs.size(), n_expected) << "workload sweep changed shape";
  for (std::size_t i = 0; i < n_expected; ++i) {
    EXPECT_EQ(runs[i].name, kExpected[i].name);
    EXPECT_EQ(runs[i].counts, kExpected[i].counts)
        << "observable simulator metrics changed for " << runs[i].name;
  }
}

// Determinism independent of the golden constants: two fresh executors must
// produce identical flattened metrics.
TEST(GoldenCounters, RunsAreDeterministic) {
  const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);
  const GoldenRun a = run_sort(cfg, 512);
  const GoldenRun b = run_sort(cfg, 512);
  EXPECT_EQ(a.counts, b.counts);
}

}  // namespace
}  // namespace obliv::golden
