#include "hm/config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace obliv::hm {
namespace {

TEST(MachineConfig, PresetsValidate) {
  EXPECT_NO_THROW(MachineConfig::sequential());
  EXPECT_NO_THROW(MachineConfig::shared_l2(8));
  EXPECT_NO_THROW(MachineConfig::three_level());
  EXPECT_NO_THROW(MachineConfig::figure1());
}

TEST(MachineConfig, Figure1Shape) {
  // The h=5 machine of Figure 1: fanins (1,2,2,2) -> 8 cores; the top two
  // levels (L4 + memory) form a sequential hierarchy (p_h = 1 cache at the
  // top cache level).
  const MachineConfig m = MachineConfig::figure1();
  EXPECT_EQ(m.h(), 5u);
  EXPECT_EQ(m.cores(), 8u);
  EXPECT_EQ(m.caches_at(1), 8u);
  EXPECT_EQ(m.caches_at(2), 4u);
  EXPECT_EQ(m.caches_at(3), 2u);
  EXPECT_EQ(m.caches_at(4), 1u);
  EXPECT_EQ(m.cores_under(1), 1u);
  EXPECT_EQ(m.cores_under(4), 8u);
}

TEST(MachineConfig, CoreToCacheMapping) {
  const MachineConfig m = MachineConfig::three_level(4, 4);  // 16 cores
  EXPECT_EQ(m.cores(), 16u);
  // Level 2 caches shared by 4 cores each.
  EXPECT_EQ(m.cache_of(0, 2), 0u);
  EXPECT_EQ(m.cache_of(3, 2), 0u);
  EXPECT_EQ(m.cache_of(4, 2), 1u);
  EXPECT_EQ(m.cache_of(15, 2), 3u);
  EXPECT_EQ(m.cache_of(15, 3), 0u);
  EXPECT_EQ(m.first_core_under(2, 2), 8u);
}

TEST(MachineConfig, SmallestLevelFitting) {
  const MachineConfig m = MachineConfig::three_level(4, 4);
  EXPECT_EQ(m.smallest_level_fitting(1), 1u);
  EXPECT_EQ(m.smallest_level_fitting(m.capacity(1)), 1u);
  EXPECT_EQ(m.smallest_level_fitting(m.capacity(1) + 1), 2u);
  EXPECT_EQ(m.smallest_level_fitting(m.capacity(3) + 1), m.h());
}

TEST(MachineConfig, RejectsNonPrivateL1) {
  EXPECT_THROW(MachineConfig("bad", {LevelSpec{1024, 8, 2}}),
               std::invalid_argument);
}

TEST(MachineConfig, RejectsShortCache) {
  // C < B^2 violates the tall-cache assumption.
  EXPECT_THROW(MachineConfig("bad", {LevelSpec{32, 8, 1}}),
               std::invalid_argument);
}

TEST(MachineConfig, RejectsCacheGrowthViolation) {
  // C_2 < p_2 * C_1.
  EXPECT_THROW(MachineConfig("bad", {LevelSpec{1024, 8, 1},
                                     LevelSpec{2048, 8, 4}}),
               std::invalid_argument);
}

TEST(MachineConfig, RejectsShrinkingBlocks) {
  EXPECT_THROW(MachineConfig("bad", {LevelSpec{1024, 16, 1},
                                     LevelSpec{65536, 8, 2}}),
               std::invalid_argument);
}

TEST(MachineConfig, RejectsMoreThan64Cores) {
  // The coherence layer keeps one 64-bit sharer bitmask per B_1 block, so
  // core 64 would silently alias core 0's bit.  validate() must hard-reject
  // such machines up front rather than let the simulator corrupt sharer
  // state.  64 cores (the exact boundary) must still be accepted.
  auto flat = [](std::uint32_t cores) {
    return std::vector<LevelSpec>{LevelSpec{2048, 8, 1},
                                  LevelSpec{1u << 21, 16, cores}};
  };
  EXPECT_NO_THROW(MachineConfig("p64", flat(64)));
  try {
    MachineConfig("p65", flat(65));
    FAIL() << "65-core machine must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("64-bit"), std::string::npos)
        << "rejection should name the sharer-bitmask limit, got: "
        << e.what();
  }
  EXPECT_THROW(MachineConfig("p128", flat(128)), std::invalid_argument);
}

TEST(MachineConfig, CoreBoundFromCacheGrowth) {
  // p <= K * C_{h-1} / C_1 (Section II).  With c_i = 1 this is exactly
  // C_top / C_1 >= p, which validate() enforces transitively.
  const MachineConfig m = MachineConfig::figure1();
  EXPECT_LE(m.cores(),
            m.capacity(m.cache_levels()) / m.capacity(1));
}

}  // namespace
}  // namespace obliv::hm
