#include "hm/config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "fault/status.hpp"

namespace obliv::hm {
namespace {

TEST(MachineConfig, PresetsValidate) {
  EXPECT_NO_THROW(MachineConfig::sequential());
  EXPECT_NO_THROW(MachineConfig::shared_l2(8));
  EXPECT_NO_THROW(MachineConfig::three_level());
  EXPECT_NO_THROW(MachineConfig::figure1());
}

TEST(MachineConfig, Figure1Shape) {
  // The h=5 machine of Figure 1: fanins (1,2,2,2) -> 8 cores; the top two
  // levels (L4 + memory) form a sequential hierarchy (p_h = 1 cache at the
  // top cache level).
  const MachineConfig m = MachineConfig::figure1();
  EXPECT_EQ(m.h(), 5u);
  EXPECT_EQ(m.cores(), 8u);
  EXPECT_EQ(m.caches_at(1), 8u);
  EXPECT_EQ(m.caches_at(2), 4u);
  EXPECT_EQ(m.caches_at(3), 2u);
  EXPECT_EQ(m.caches_at(4), 1u);
  EXPECT_EQ(m.cores_under(1), 1u);
  EXPECT_EQ(m.cores_under(4), 8u);
}

TEST(MachineConfig, CoreToCacheMapping) {
  const MachineConfig m = MachineConfig::three_level(4, 4);  // 16 cores
  EXPECT_EQ(m.cores(), 16u);
  // Level 2 caches shared by 4 cores each.
  EXPECT_EQ(m.cache_of(0, 2), 0u);
  EXPECT_EQ(m.cache_of(3, 2), 0u);
  EXPECT_EQ(m.cache_of(4, 2), 1u);
  EXPECT_EQ(m.cache_of(15, 2), 3u);
  EXPECT_EQ(m.cache_of(15, 3), 0u);
  EXPECT_EQ(m.first_core_under(2, 2), 8u);
}

TEST(MachineConfig, SmallestLevelFitting) {
  const MachineConfig m = MachineConfig::three_level(4, 4);
  EXPECT_EQ(m.smallest_level_fitting(1), 1u);
  EXPECT_EQ(m.smallest_level_fitting(m.capacity(1)), 1u);
  EXPECT_EQ(m.smallest_level_fitting(m.capacity(1) + 1), 2u);
  EXPECT_EQ(m.smallest_level_fitting(m.capacity(3) + 1), m.h());
}

TEST(MachineConfig, RejectsNonPrivateL1) {
  EXPECT_THROW(MachineConfig("bad", {LevelSpec{1024, 8, 2}}),
               std::invalid_argument);
}

TEST(MachineConfig, RejectsShortCache) {
  // C < B^2 violates the tall-cache assumption.
  EXPECT_THROW(MachineConfig("bad", {LevelSpec{32, 8, 1}}),
               std::invalid_argument);
}

TEST(MachineConfig, RejectsCacheGrowthViolation) {
  // C_2 < p_2 * C_1.
  EXPECT_THROW(MachineConfig("bad", {LevelSpec{1024, 8, 1},
                                     LevelSpec{2048, 8, 4}}),
               std::invalid_argument);
}

TEST(MachineConfig, RejectsShrinkingBlocks) {
  EXPECT_THROW(MachineConfig("bad", {LevelSpec{1024, 16, 1},
                                     LevelSpec{65536, 8, 2}}),
               std::invalid_argument);
}

TEST(MachineConfig, RejectsMoreThan64Cores) {
  // The coherence layer keeps one 64-bit sharer bitmask per B_1 block, so
  // core 64 would silently alias core 0's bit.  validate() must hard-reject
  // such machines up front rather than let the simulator corrupt sharer
  // state.  64 cores (the exact boundary) must still be accepted.
  auto flat = [](std::uint32_t cores) {
    return std::vector<LevelSpec>{LevelSpec{2048, 8, 1},
                                  LevelSpec{1u << 21, 16, cores}};
  };
  EXPECT_NO_THROW(MachineConfig("p64", flat(64)));
  try {
    MachineConfig("p65", flat(65));
    FAIL() << "65-core machine must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("64-bit"), std::string::npos)
        << "rejection should name the sharer-bitmask limit, got: "
        << e.what();
  }
  EXPECT_THROW(MachineConfig("p128", flat(128)), std::invalid_argument);
}

TEST(MachineConfig, MakeReturnsTypedCodesForDegenerateConfigs) {
  // make() is the non-throwing companion of the validating constructor: the
  // same rejections, surfaced as obliv::Status codes instead of exceptions.
  using obliv::ErrorCode;

  // Empty hierarchy.
  EXPECT_EQ(MachineConfig::make("empty", {}).status().code(),
            ErrorCode::kInvalidConfig);
  // Zero block size.
  EXPECT_EQ(MachineConfig::make("b0", {LevelSpec{1024, 0, 1}}).status().code(),
            ErrorCode::kInvalidConfig);
  // Block larger than its cache.
  EXPECT_EQ(
      MachineConfig::make("b>c", {LevelSpec{16, 64, 1}}).status().code(),
      ErrorCode::kInvalidConfig);
  // Shrinking blocks: B_2 < B_1.
  EXPECT_EQ(MachineConfig::make("shrink", {LevelSpec{1024, 16, 1},
                                           LevelSpec{65536, 8, 2}})
                .status()
                .code(),
            ErrorCode::kInvalidConfig);
  // Inclusivity / growth: C_2 < p_2 * C_1.
  EXPECT_EQ(MachineConfig::make("grow", {LevelSpec{1024, 8, 1},
                                         LevelSpec{2048, 8, 4}})
                .status()
                .code(),
            ErrorCode::kInvalidConfig);
  // Zero fanin at an inner level.
  EXPECT_EQ(MachineConfig::make("p0", {LevelSpec{1024, 8, 1},
                                       LevelSpec{65536, 8, 0}})
                .status()
                .code(),
            ErrorCode::kInvalidConfig);
  // > 64 cores is a model limit, not a malformed description.
  EXPECT_EQ(MachineConfig::make("wide", {LevelSpec{2048, 8, 1},
                                         LevelSpec{1u << 21, 16, 65}})
                .status()
                .code(),
            ErrorCode::kUnsupported);
  // And a valid machine round-trips with the same shape as the ctor's.
  auto ok = MachineConfig::make("ok", {LevelSpec{1024, 8, 1},
                                       LevelSpec{16384, 8, 4}});
  ASSERT_TRUE(ok.ok()) << ok.status().to_string();
  EXPECT_EQ(ok.value().cores(), 4u);
  EXPECT_EQ(ok.value().h(), 3u);
}

TEST(MachineConfig, FanoutProductCannotWrapPastTheCoreLimit) {
  // Regression: the core count used to be accumulated in 32 bits, so fanins
  // {1, 65536, 65536} wrapped the product to 0 and sailed past the 64-core
  // rejection into sharer-bitmask corruption.  Capacities are chosen to
  // satisfy every structural rule so the core-count check is what fires.
  auto r = MachineConfig::make("wrap", {LevelSpec{64, 8, 1},
                                        LevelSpec{1ull << 22, 8, 65536},
                                        LevelSpec{1ull << 38, 8, 65536}});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), obliv::ErrorCode::kUnsupported);
  EXPECT_NE(r.status().message().find("64-bit"), std::string::npos)
      << "rejection should name the sharer-bitmask limit, got: "
      << r.status().message();
}

TEST(MachineConfig, CoreBoundFromCacheGrowth) {
  // p <= K * C_{h-1} / C_1 (Section II).  With c_i = 1 this is exactly
  // C_top / C_1 >= p, which validate() enforces transitively.
  const MachineConfig m = MachineConfig::figure1();
  EXPECT_LE(m.cores(),
            m.capacity(m.cache_levels()) / m.capacity(1));
}

}  // namespace
}  // namespace obliv::hm
