#include "no/executor.hpp"

#include <gtest/gtest.h>

#include "algo/scan.hpp"
#include "algo/sort.hpp"
#include "util/rng.hpp"

namespace obliv::no {
namespace {

TEST(NoExecutor, BlockDistributionOwnership) {
  NoMachine mach(8, {{8, 1}});
  NoExecutor ex(&mach);
  auto buf = ex.make_buf<std::uint64_t>(64);
  auto ref = buf.ref();
  // 64 elements over 8 PEs: element i owned by PE i/8.
  EXPECT_EQ(ref.owner(0), 0u);
  EXPECT_EQ(ref.owner(7), 0u);
  EXPECT_EQ(ref.owner(8), 1u);
  EXPECT_EQ(ref.owner(63), 7u);
  // Slices keep the original layout.
  auto s = ref.slice(30, 10);
  EXPECT_EQ(s.owner(0), ref.owner(30));
  EXPECT_EQ(s.owner(9), ref.owner(39));
}

TEST(NoExecutor, LocalAccessIsFree) {
  NoMachine mach(4, {{4, 1}});
  NoExecutor ex(&mach);
  auto buf = ex.make_buf<std::uint64_t>(4);
  // cur_pe is 0 outside constructs; element 0 is owned by PE 0.
  buf.ref().store(0, 7);
  mach.end_superstep();
  EXPECT_EQ(mach.communication(0), 0u);
  EXPECT_EQ(buf.raw()[0], 7u);
}

TEST(NoExecutor, RemoteReadAndWriteAreMessages) {
  NoMachine mach(4, {{4, 1}});
  NoExecutor ex(&mach);
  auto buf = ex.make_buf<std::uint64_t>(4);  // element i at PE i
  buf.raw()[3] = 9;
  auto ref = buf.ref();
  EXPECT_EQ(ref.load(3), 9u);   // read: PE3 -> PE0
  mach.end_superstep();         // h = 1 (one block at one processor)
  ref.store(2, 5);              // write: PE0 -> PE2
  mach.end_superstep();         // h = 1 again
  EXPECT_EQ(mach.communication(0), 2u);
  EXPECT_EQ(mach.total_message_words(), 2u);
}

TEST(NoExecutor, PforAlignsChunksWithOwners) {
  // A scan-like pfor over a buffer whose layout matches the loop split
  // should be (almost) communication-free.
  NoMachine mach(8, {{8, 4}});
  NoExecutor ex(&mach);
  const std::size_t n = 1024;
  auto buf = ex.make_buf<std::uint64_t>(n);
  ex.cgc_pfor(0, n, 1, [&](std::uint64_t lo, std::uint64_t hi) {
    auto ref = buf.ref();
    for (std::uint64_t k = lo; k < hi; ++k) ref.store(k, k);
  });
  mach.end_superstep();
  EXPECT_EQ(mach.communication(0), 0u);
  for (std::size_t k = 0; k < n; ++k) ASSERT_EQ(buf.raw()[k], k);
}

TEST(NoExecutor, GroupNarrowingConfinesSubtasks) {
  NoMachine mach(8, {{8, 1}});
  NoExecutor ex(&mach);
  std::vector<std::uint64_t> pes;
  ex.cgc_sb_pfor(4, 100, [&](std::uint64_t s) {
    pes.push_back(ex.current_pe());
  });
  // 4 subtasks over 8 PEs -> subgroups of 2, leaders 0, 2, 4, 6.
  ASSERT_EQ(pes.size(), 4u);
  EXPECT_EQ(pes[0], 0u);
  EXPECT_EQ(pes[1], 2u);
  EXPECT_EQ(pes[2], 4u);
  EXPECT_EQ(pes[3], 6u);
}

TEST(NoExecutor, MoAlgorithmsRunNetworkObliviously) {
  // The point of the unified executor: unmodified MO templates produce
  // correct results under message passing.
  NoMachine mach(16, {{4, 4}});
  NoExecutor ex(&mach);
  const std::size_t n = 3000;
  auto buf = ex.make_buf<std::uint64_t>(n);
  util::Xoshiro256 rng(3);
  std::vector<std::uint64_t> expect(n);
  for (std::size_t i = 0; i < n; ++i) {
    buf.raw()[i] = rng.below(1u << 20);
    expect[i] = buf.raw()[i];
  }
  std::sort(expect.begin(), expect.end());
  algo::spms_sort(ex, buf.ref());
  mach.end_superstep();
  EXPECT_EQ(buf.raw(), expect);
  EXPECT_GT(mach.communication(0), 0u);  // sorting must communicate
  EXPECT_GT(mach.supersteps(), 1u);
}

TEST(NoExecutor, PrefixSumScalesAcrossFolds) {
  NoMachine mach(16, {{1, 4}, {16, 4}});
  NoExecutor ex(&mach);
  const std::size_t n = 1 << 12;
  auto buf = ex.make_buf<std::uint64_t>(n);
  for (auto& v : buf.raw()) v = 1;
  algo::mo_prefix_sum(ex, buf.ref());
  mach.end_superstep();
  EXPECT_EQ(buf.raw()[n - 1], n);
  // Computation on 16 processors must be well below the 1-processor fold.
  EXPECT_LT(mach.computation(1) * 4, mach.computation(0));
}

}  // namespace
}  // namespace obliv::no
