#include "algo/transpose.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hm/config.hpp"
#include "sched/native_executor.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

namespace obliv::algo {
namespace {

using sched::SimExecutor;

class TransposeSizes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransposeSizes, MoMtIsCorrectOnSim) {
  const std::uint64_t n = GetParam();
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto a = ex.make_buf<double>(n * n);
  auto out = ex.make_buf<double>(n * n);
  util::Xoshiro256 rng(n);
  for (auto& v : a.raw()) v = rng.uniform();
  ex.run(3 * n * n, [&] { mo_transpose(ex, a.ref(), out.ref(), n); });
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      ASSERT_EQ(out.raw()[i * n + j], a.raw()[j * n + i])
          << "(" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Pow2Sweep, TransposeSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128));

TEST(Transpose, InPlaceMatchesOutOfPlace) {
  const std::uint64_t n = 64;
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto a = ex.make_buf<double>(n * n);
  util::Xoshiro256 rng(5);
  std::vector<double> orig(n * n);
  for (std::uint64_t i = 0; i < n * n; ++i) {
    a.raw()[i] = rng.uniform();
    orig[i] = a.raw()[i];
  }
  ex.run(3 * n * n, [&] {
    mo_transpose_inplace(ex, sched::MatView<decltype(a.ref())>::full(
                                 a.ref(), n, n));
  });
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      ASSERT_EQ(a.raw()[i * n + j], orig[j * n + i]);
    }
  }
}

TEST(Transpose, NaiveAndRecursiveBaselinesAreCorrect) {
  const std::uint64_t n = 32;
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto a = ex.make_buf<double>(n * n);
  auto o1 = ex.make_buf<double>(n * n);
  auto o2 = ex.make_buf<double>(n * n);
  util::Xoshiro256 rng(11);
  for (auto& v : a.raw()) v = rng.uniform();
  ex.run(3 * n * n, [&] { naive_transpose(ex, a.ref(), o1.ref(), n); });
  ex.run(3 * n * n, [&] { recursive_transpose(ex, a.ref(), o2.ref(), n); });
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      ASSERT_EQ(o1.raw()[i * n + j], a.raw()[j * n + i]);
      ASSERT_EQ(o2.raw()[i * n + j], a.raw()[j * n + i]);
    }
  }
}

TEST(Transpose, NativeExecutorCorrect) {
  const std::uint64_t n = 256;
  sched::NativeExecutor ex(4);
  auto a = ex.make_buf<double>(n * n);
  auto out = ex.make_buf<double>(n * n);
  util::Xoshiro256 rng(3);
  for (auto& v : a.raw()) v = rng.uniform();
  mo_transpose(ex, a.ref(), out.ref(), n);
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      ASSERT_EQ(out.raw()[i * n + j], a.raw()[j * n + i]);
    }
  }
}

TEST(Transpose, ConstantCriticalPathVsRecursive) {
  // Theorem 1's selling point: MO-MT has O(B_1) critical pathlength per
  // step while the recursive algorithm has Theta(log n) fork depth.  With
  // fixed machine and growing n, MO-MT's span grows only with the n^2/p
  // work term; verify MO-MT's span <= recursive's at equal sizes.
  const std::uint64_t n = 128;
  SimExecutor ex(hm::MachineConfig::shared_l2(8));
  auto a = ex.make_buf<double>(n * n);
  auto out = ex.make_buf<double>(n * n);
  for (auto& v : a.raw()) v = 1.0;
  auto m_mo = ex.run(3 * n * n, [&] { mo_transpose(ex, a.ref(), out.ref(), n); });
  auto m_rec =
      ex.run(3 * n * n, [&] { recursive_transpose(ex, a.ref(), out.ref(), n); });
  EXPECT_LE(m_mo.span, m_rec.span * 2);  // MO-MT at least as shallow
}

TEST(Transpose, CacheMissesScaleWithN2OverB) {
  // Theorem 1: O(n^2/(q_i B_i) + B_i) misses per level-i cache.  Check the
  // measured L1 misses stay within a small constant of n^2 / (q_1 B_1).
  const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);
  for (std::uint64_t n : {64u, 128u, 256u}) {
    SimExecutor ex(cfg);
    auto a = ex.make_buf<double>(n * n);
    auto out = ex.make_buf<double>(n * n);
    for (auto& v : a.raw()) v = 1.0;
    auto m = ex.run(3 * n * n,
                    [&] { mo_transpose(ex, a.ref(), out.ref(), n); });
    const double model = double(n * n) / (cfg.caches_at(1) * cfg.block(1)) +
                         double(cfg.block(1));
    EXPECT_LT(double(m.level_max_misses[0]), 16.0 * model) << "n=" << n;
  }
}

}  // namespace
}  // namespace obliv::algo
