#include "sched/sim_executor.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hm/config.hpp"

namespace obliv::sched {
namespace {

TEST(SimExecutor, CgcPforCoversRangeExactlyOnce) {
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  std::vector<int> hits(1000, 0);
  ex.run(1000, [&] {
    ex.cgc_pfor_each(0, hits.size(), 1,
                     [&](std::uint64_t k) { hits[k]++; });
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(SimExecutor, CgcPforSpreadsAcrossCores) {
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  std::vector<std::uint32_t> core_of(4096, 0);
  ex.run(1u << 20, [&] {  // root anchored above L1 so all cores are used
    ex.cgc_pfor_each(0, core_of.size(), 1, [&](std::uint64_t k) {
      core_of[k] = ex.current_core();
    });
  });
  std::vector<bool> used(4, false);
  for (std::uint32_t c : core_of) {
    ASSERT_LT(c, 4u);
    used[c] = true;
  }
  for (bool u : used) EXPECT_TRUE(u);
  // Contiguity: core ids must be non-decreasing along the range (CGC gives
  // the j-th contiguous segment to the j-th core).
  for (std::size_t k = 1; k < core_of.size(); ++k) {
    EXPECT_LE(core_of[k - 1], core_of[k]);
  }
}

TEST(SimExecutor, CgcSegmentsRespectB1) {
  // With a tiny range, CGC must not split below B_1 words per segment:
  // fewer cores are used instead.
  const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(8);  // B1 = 8
  SimExecutor ex(cfg);
  std::vector<std::uint32_t> core_of(16, 0);
  ex.run(1u << 20, [&] {
    ex.cgc_pfor_each(0, 16, 1, [&](std::uint64_t k) {
      core_of[k] = ex.current_core();
    });
  });
  // 16 iterations of 1 word with B1=8 -> at most 2 segments.
  std::uint32_t distinct = 1;
  for (std::size_t k = 1; k < core_of.size(); ++k) {
    if (core_of[k] != core_of[k - 1]) ++distinct;
  }
  EXPECT_LE(distinct, 2u);
}

TEST(SimExecutor, WorkSpanOfBalancedPfor) {
  const std::uint32_t p = 8;
  SimExecutor ex(hm::MachineConfig::shared_l2(p));
  const std::uint64_t n = 1 << 14;
  RunMetrics m = ex.run(1ull << 40, [&] {
    ex.cgc_pfor_each(0, n, 1, [&](std::uint64_t) { ex.tick(1); });
  });
  EXPECT_EQ(m.work, n);
  // Perfectly balanced: span == n / p.
  EXPECT_EQ(m.span, n / p);
}

TEST(SimExecutor, SbParallelRunsDisjointTasksInParallel) {
  const std::uint32_t p = 4;
  SimExecutor ex(hm::MachineConfig::shared_l2(p));
  const std::uint64_t c1 = ex.config().capacity(1);
  RunMetrics m = ex.run(1ull << 40, [&] {
    std::vector<SbTask> tasks;
    for (std::uint32_t t = 0; t < p; ++t) {
      tasks.push_back(SbTask{c1 / 2, [&] {
                               for (int i = 0; i < 1000; ++i) ex.tick(1);
                             }});
    }
    ex.sb_parallel(std::move(tasks));
  });
  EXPECT_EQ(m.work, 4000u);
  EXPECT_EQ(m.span, 1000u);  // four L1-sized tasks on four distinct cores
}

TEST(SimExecutor, SbTasksTooBigForLowerLevelSerialize) {
  const std::uint32_t p = 4;
  SimExecutor ex(hm::MachineConfig::shared_l2(p));
  const std::uint64_t c2 = ex.config().capacity(2);
  RunMetrics m = ex.run(1ull << 40, [&] {
    std::vector<SbTask> tasks;
    for (int t = 0; t < 2; ++t) {
      tasks.push_back(SbTask{c2, [&] {
                               for (int i = 0; i < 100; ++i) ex.tick(1);
                             }});
    }
    ex.sb_parallel(std::move(tasks));
  });
  // Both tasks exceed C_1; with the root anchored at memory and both too
  // large for... actually they fit L2, so they go to the single L2 and
  // queue: span = 200.
  EXPECT_EQ(m.span, 200u);
}

TEST(SimExecutor, SbAnchoringKeepsFittingTaskMissesCompulsory) {
  // A task whose working set fits L2 and is touched twice should incur L2
  // misses only for the initial load (compulsory), not for the second pass.
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  const std::uint64_t n = ex.config().capacity(2) / 4;
  auto buf = ex.make_buf<double>(n);
  RunMetrics m = ex.run(3 * n, [&] {
    auto v = buf.ref();
    ex.sb_parallel({SbTask{n, [&] {
                             for (std::uint64_t i = 0; i < n; ++i) v.load(i);
                             for (std::uint64_t i = 0; i < n; ++i) v.load(i);
                           }}});
  });
  const std::uint64_t b2 = ex.config().block(2);
  EXPECT_LE(m.level_max_misses[1], n / b2 + 2);
}

TEST(SimExecutor, CgcSbDistributesAcrossCaches) {
  // 4 subtasks each fitting an L1 on a 4-core machine: they should land on
  // 4 distinct L1 caches and run fully in parallel.
  const std::uint32_t p = 4;
  SimExecutor ex(hm::MachineConfig::shared_l2(p));
  const std::uint64_t c1 = ex.config().capacity(1);
  std::vector<std::uint32_t> core_of(p, 0);
  RunMetrics m = ex.run(1ull << 40, [&] {
    ex.cgc_sb_pfor(p, c1 / 2, [&](std::uint64_t s) {
      core_of[s] = ex.current_core();
      for (int i = 0; i < 50; ++i) ex.tick(1);
    });
  });
  std::vector<bool> used(p, false);
  for (std::uint32_t c : core_of) used[c] = true;
  for (bool u : used) EXPECT_TRUE(u);
  EXPECT_EQ(m.span, 50u);
}

TEST(SimExecutor, CgcSbSerializesWhenSubtasksExceedLowerCaches) {
  const std::uint32_t p = 4;
  SimExecutor ex(hm::MachineConfig::shared_l2(p));
  const std::uint64_t c2 = ex.config().capacity(2);
  RunMetrics m = ex.run(1ull << 40, [&] {
    ex.cgc_sb_pfor(3, c2, [&](std::uint64_t) {
      for (int i = 0; i < 10; ++i) ex.tick(1);
    });
  });
  EXPECT_EQ(m.span, 30u);  // all three queue at the single L2
}

TEST(SimExecutor, NestedAnchoringNarrowsShadow) {
  // A task anchored at an L2 must only use cores under that L2's shadow.
  const hm::MachineConfig cfg = hm::MachineConfig::three_level(4, 4);  // 16c
  SimExecutor ex(cfg);
  std::vector<std::uint32_t> cores_seen;
  ex.run(1ull << 40, [&] {
    ex.cgc_sb_pfor(4, cfg.capacity(2) / 2, [&](std::uint64_t s) {
      // Each subtask anchored at one L2; a nested pfor spreads over the 4
      // cores under it.
      ex.cgc_pfor_each(0, 64, 64, [&](std::uint64_t) {
        cores_seen.push_back(ex.current_core() / 4);  // L2 index of core
      });
      (void)s;
    });
  });
  ASSERT_FALSE(cores_seen.empty());
}

TEST(SimExecutor, CgcSbLevelRuleKeepsCoresForNestedParallelism) {
  // Section III-C's t = max(i, j): with fewer subtasks than L1 caches, the
  // subtasks anchor high enough that nested pfors still use all cores;
  // the fit-only ablation pins them to single cores.
  const hm::MachineConfig cfg = hm::MachineConfig::three_level(4, 4);  // 16c
  auto span_of = [&](bool fit_only) {
    sched::SimPolicy policy;
    policy.cgcsb_fit_only = fit_only;
    SimExecutor ex(cfg, policy);
    return ex.run(1ull << 40, [&] {
      ex.cgc_sb_pfor(2, 64, [&](std::uint64_t) {
        ex.cgc_pfor(0, 1 << 12, 1, [&](std::uint64_t lo, std::uint64_t hi) {
          ex.tick(hi - lo);
        });
      });
    }).span;
  };
  EXPECT_EQ(span_of(false) * 8, span_of(true));
}

TEST(SimExecutor, SliceModeUsesOnlyL1Anchors) {
  SimPolicy policy;
  policy.slice_mode = true;
  SimExecutor ex(hm::MachineConfig::shared_l2(4), policy);
  std::vector<std::uint32_t> levels;
  ex.run(1ull << 40, [&] {
    ex.cgc_sb_pfor(8, ex.config().capacity(2) / 2, [&](std::uint64_t) {
      levels.push_back(ex.current_anchor_level());
    });
  });
  for (std::uint32_t lvl : levels) EXPECT_EQ(lvl, 1u);
}

TEST(SimExecutor, DeterministicAcrossRuns) {
  auto run_once = [] {
    SimExecutor ex(hm::MachineConfig::three_level());
    const std::uint64_t n = 1 << 12;
    auto buf = ex.make_buf<double>(n);
    return ex.run(3 * n, [&] {
      auto v = buf.ref();
      ex.cgc_pfor_each(0, n, 1,
                       [&](std::uint64_t k) { v.store(k, double(k)); });
      ex.cgc_pfor_each(0, n, 1, [&](std::uint64_t k) { v.load(k); });
    });
  };
  const RunMetrics a = run_once();
  const RunMetrics b = run_once();
  EXPECT_EQ(a.work, b.work);
  EXPECT_EQ(a.span, b.span);
  EXPECT_EQ(a.level_max_misses, b.level_max_misses);
  EXPECT_EQ(a.pingpong, b.pingpong);
}

TEST(SimExecutor, BlockAlignedCgcAvoidsPingPong) {
  // Writing a shared array via CGC with B1-respecting chunking must not
  // ping-pong; with chunk alignment disabled it may.
  auto pingpong_with = [](bool respect) {
    SimPolicy policy;
    policy.respect_block_boundaries = respect;
    SimExecutor ex(hm::MachineConfig::shared_l2(8), policy);
    const std::uint64_t n = 1 << 10;
    auto buf = ex.make_buf<double>(n);
    RunMetrics m = ex.run(3 * n, [&] {
      auto v = buf.ref();
      ex.cgc_pfor_each(0, n, 1,
                       [&](std::uint64_t k) { v.store(k, 1.0); });
    });
    return m.pingpong;
  };
  EXPECT_EQ(pingpong_with(true), 0u);
}

TEST(SimExecutor, RunResetsBetweenInvocations) {
  SimExecutor ex(hm::MachineConfig::sequential());
  auto buf = ex.make_buf<double>(256);
  auto body = [&] {
    auto v = buf.ref();
    for (int i = 0; i < 256; ++i) v.load(i);
  };
  const RunMetrics a = ex.run(256, body);
  const RunMetrics b = ex.run(256, body);
  EXPECT_EQ(a.level_max_misses, b.level_max_misses);  // cold both times
  EXPECT_GT(a.level_max_misses[0], 0u);
}

}  // namespace
}  // namespace obliv::sched
