// Standalone ThreadSanitizer harness for the work-stealing scheduler.
//
// Built as `obliv_sched_tsan` with -fsanitize=thread applied to exactly this
// translation unit plus native_executor.cpp (everything else it touches is
// header-only), so the tier-1 ctest flow races the scheduler under TSan on
// every run without instrumenting the whole build.  Any data race aborts
// the process (halt_on_error) -- races fail loudly, not flakily.
//
// The scenarios mirror test_native_executor.cpp / test_sched_stress.cpp:
// deque-level churn, deep nested sb_parallel with concurrent cgc_pfor from
// sibling tasks, repeated root entries against sleeping workers, teardown
// under error (spawn failures injected mid-construction; destruction with
// workers asleep), and the chaos scheduler racing a live fault plan.
//
// The same file also builds as `obliv_sched_asan` (-fsanitize=address with
// leak detection: the teardown scenarios' "no thread / worker-state leak"
// half) and `obliv_sched_ubsan` (-fsanitize=undefined: UB sweep of the
// deque index arithmetic and the fault-plan PRNG).
//
// A full sanitizer build of the whole suite is available via
//   cmake -B build-tsan -S . -DOBLIV_SANITIZE=thread   (or address|undefined)
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <new>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "sched/native_executor.hpp"
#include "sched/ws_deque.hpp"

namespace {

int failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++failures;
  }
}

void deque_churn() {
  obliv::sched::WsDeque<int*> dq(8);
  constexpr int kN = 50000;
  std::vector<int> vals(kN);
  std::atomic<long> sum{0};
  std::atomic<int> taken{0};
  for (int i = 0; i < kN; ++i) vals[i] = i;
  auto thief = [&] {
    for (;;) {
      if (int* p = dq.steal_top()) {
        sum.fetch_add(*p, std::memory_order_relaxed);
        taken.fetch_add(1, std::memory_order_acq_rel);
      } else if (taken.load(std::memory_order_acquire) == kN) {
        return;
      }
    }
  };
  std::thread t1(thief), t2(thief), t3(thief);
  int pushed = 0;
  while (pushed < kN) {
    for (int burst = 0; burst < 32 && pushed < kN; ++burst) {
      dq.push_bottom(&vals[pushed++]);
    }
    if (int* p = dq.pop_bottom()) {
      sum.fetch_add(*p, std::memory_order_relaxed);
      taken.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  while (taken.load(std::memory_order_acquire) != kN) {
    if (int* p = dq.pop_bottom()) {
      sum.fetch_add(*p, std::memory_order_relaxed);
      taken.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  t1.join();
  t2.join();
  t3.join();
  check(sum.load() == static_cast<long>(kN) * (kN - 1) / 2,
        "deque_churn: every element taken exactly once");
}

void nested_storm(obliv::sched::NativeExecutor& ex, std::uint64_t lo,
                  std::uint64_t hi, std::vector<std::atomic<int>>& hits) {
  if (hi - lo <= 4) {
    ex.cgc_pfor(lo, hi, 1, [&](std::uint64_t a, std::uint64_t b) {
      for (std::uint64_t k = a; k < b; ++k) {
        hits[k].fetch_add(1, std::memory_order_relaxed);
      }
    });
    return;
  }
  const std::uint64_t mid = lo + (hi - lo) / 2;
  const std::uint64_t space = (hi - lo) * 8;
  ex.sb_parallel2(space, [&] { nested_storm(ex, lo, mid, hits); },
                  space, [&] { nested_storm(ex, mid, hi, hits); });
}

void executor_storm() {
  obliv::sched::NativeExecutor ex(4, /*grain=*/1,
                                  obliv::sched::SchedMode::kWorkSteal);
  const std::uint64_t n = 1 << 11;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  nested_storm(ex, 0, n, hits);
  bool once = true;
  for (auto& h : hits) once = once && h.load() == 1;
  check(once, "executor_storm: every index hit exactly once");
}

void repeated_roots() {
  obliv::sched::NativeExecutor ex(8, /*grain=*/4,
                                  obliv::sched::SchedMode::kWorkSteal);
  std::uint64_t total = 0;
  for (int round = 0; round < 200; ++round) {
    std::atomic<std::uint64_t> cnt{0};
    ex.cgc_pfor(0, 256, 1, [&](std::uint64_t a, std::uint64_t b) {
      cnt.fetch_add(b - a, std::memory_order_relaxed);
    });
    total += cnt.load();
  }
  check(total == 200ull * 256, "repeated_roots: no lost iterations");
}

// Teardown with workers still asleep: construct, (sometimes) run one tiny
// root, destroy immediately.  The destructor must wake every parked worker
// exactly once and join it -- a lost wake-up deadlocks here, a dropped join
// leaks the thread (caught by the ASan build of this binary).
void destroy_while_sleeping() {
  for (int round = 0; round < 50; ++round) {
    obliv::sched::NativeExecutor ex(8, /*grain=*/4,
                                    obliv::sched::SchedMode::kWorkSteal);
    if (round % 2 == 0) {
      std::atomic<int> cnt{0};
      ex.cgc_pfor_each(0, 16, 1, [&](std::uint64_t) {
        cnt.fetch_add(1, std::memory_order_relaxed);
      });
      check(cnt.load() == 16, "destroy_while_sleeping: root completed");
    }
    // ~NativeExecutor runs here with all workers parked in the idle wait.
  }
}

// Construction failure mid-spawn: an injected allocation storm makes the
// pool constructor throw after some worker threads are already running.
// The ctor's unwind path must stop and join them -- under TSan a missed
// join races the Worker state teardown, under ASan it leaks the thread and
// its deque, and a lost wake-up hangs this loop.
void failed_setup_teardown() {
  if (!obliv::fault::kFaultsCompiledIn) return;
  int failed = 0, built = 0;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    obliv::fault::FaultPlan plan(
        seed, obliv::fault::FaultOptions::alloc_storm(20000));
    obliv::fault::ScopedFaultPlan scope(&plan);
    try {
      obliv::sched::NativeExecutor ex(4, /*grain=*/4,
                                      obliv::sched::SchedMode::kWorkSteal);
      ++built;
      obliv::fault::ScopedFaultPlan detach(nullptr);
      std::atomic<int> cnt{0};
      ex.cgc_pfor_each(0, 32, 1, [&](std::uint64_t) {
        cnt.fetch_add(1, std::memory_order_relaxed);
      });
      check(cnt.load() == 32, "failed_setup_teardown: surviving pool works");
    } catch (const std::bad_alloc&) {
      ++failed;
    }
  }
  check(failed > 0, "failed_setup_teardown: storm produced failures");
  (void)built;  // either outcome is legal per seed; both paths must be clean
}

// The chaos scheduler itself under the race detector: victim perturbation,
// pop-order inversion, stalls, and dropped wake-ups all execute on hot
// scheduler paths concurrently with real stealing.
void chaos_storm() {
  if (!obliv::fault::kFaultsCompiledIn) return;
  obliv::sched::NativeExecutor ex(4, /*grain=*/1,
                                  obliv::sched::SchedMode::kWorkSteal);
  obliv::fault::FaultPlan plan(99, obliv::fault::FaultOptions::chaos());
  ex.set_fault_plan(&plan);
  const std::uint64_t n = 1 << 10;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  nested_storm(ex, 0, n, hits);
  ex.set_fault_plan(nullptr);
  bool once = true;
  for (auto& h : hits) once = once && h.load() == 1;
  check(once, "chaos_storm: every index hit exactly once under chaos");
  check(plan.decisions() > 0, "chaos_storm: plan was consulted");
}

}  // namespace

int main() {
  deque_churn();
  executor_storm();
  repeated_roots();
  destroy_while_sleeping();
  failed_setup_teardown();
  chaos_storm();
  if (failures == 0) std::printf("obliv_sched_tsan: all scenarios passed\n");
  return failures == 0 ? 0 : 1;
}
