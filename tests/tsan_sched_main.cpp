// Standalone ThreadSanitizer harness for the work-stealing scheduler.
//
// Built as `obliv_sched_tsan` with -fsanitize=thread applied to exactly this
// translation unit plus native_executor.cpp (everything else it touches is
// header-only), so the tier-1 ctest flow races the scheduler under TSan on
// every run without instrumenting the whole build.  Any data race aborts
// the process (halt_on_error) -- races fail loudly, not flakily.
//
// The scenarios mirror test_native_executor.cpp / test_sched_stress.cpp:
// deque-level churn, deep nested sb_parallel with concurrent cgc_pfor from
// sibling tasks, repeated root entries against sleeping workers, teardown
// under error (spawn failures injected mid-construction; destruction with
// workers asleep), and the chaos scheduler racing a live fault plan.
//
// The same file also builds as `obliv_sched_asan` (-fsanitize=address with
// leak detection: the teardown scenarios' "no thread / worker-state leak"
// half) and `obliv_sched_ubsan` (-fsanitize=undefined: UB sweep of the
// deque index arithmetic and the fault-plan PRNG).
//
// A full sanitizer build of the whole suite is available via
//   cmake -B build-tsan -S . -DOBLIV_SANITIZE=thread   (or address|undefined)
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <new>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "sched/native_executor.hpp"
#include "sched/ws_deque.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace {

int failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++failures;
  }
}

void deque_churn() {
  obliv::sched::WsDeque<int*> dq(8);
  constexpr int kN = 50000;
  std::vector<int> vals(kN);
  std::atomic<long> sum{0};
  std::atomic<int> taken{0};
  for (int i = 0; i < kN; ++i) vals[i] = i;
  auto thief = [&] {
    for (;;) {
      if (int* p = dq.steal_top()) {
        sum.fetch_add(*p, std::memory_order_relaxed);
        taken.fetch_add(1, std::memory_order_acq_rel);
      } else if (taken.load(std::memory_order_acquire) == kN) {
        return;
      }
    }
  };
  std::thread t1(thief), t2(thief), t3(thief);
  int pushed = 0;
  while (pushed < kN) {
    for (int burst = 0; burst < 32 && pushed < kN; ++burst) {
      dq.push_bottom(&vals[pushed++]);
    }
    if (int* p = dq.pop_bottom()) {
      sum.fetch_add(*p, std::memory_order_relaxed);
      taken.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  while (taken.load(std::memory_order_acquire) != kN) {
    if (int* p = dq.pop_bottom()) {
      sum.fetch_add(*p, std::memory_order_relaxed);
      taken.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  t1.join();
  t2.join();
  t3.join();
  check(sum.load() == static_cast<long>(kN) * (kN - 1) / 2,
        "deque_churn: every element taken exactly once");
}

void nested_storm(obliv::sched::NativeExecutor& ex, std::uint64_t lo,
                  std::uint64_t hi, std::vector<std::atomic<int>>& hits) {
  if (hi - lo <= 4) {
    ex.cgc_pfor(lo, hi, 1, [&](std::uint64_t a, std::uint64_t b) {
      for (std::uint64_t k = a; k < b; ++k) {
        hits[k].fetch_add(1, std::memory_order_relaxed);
      }
    });
    return;
  }
  const std::uint64_t mid = lo + (hi - lo) / 2;
  const std::uint64_t space = (hi - lo) * 8;
  ex.sb_parallel2(space, [&] { nested_storm(ex, lo, mid, hits); },
                  space, [&] { nested_storm(ex, mid, hi, hits); });
}

void executor_storm() {
  obliv::sched::NativeExecutor ex(4, /*grain=*/1,
                                  obliv::sched::SchedMode::kWorkSteal);
  const std::uint64_t n = 1 << 11;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  nested_storm(ex, 0, n, hits);
  bool once = true;
  for (auto& h : hits) once = once && h.load() == 1;
  check(once, "executor_storm: every index hit exactly once");
}

void repeated_roots() {
  obliv::sched::NativeExecutor ex(8, /*grain=*/4,
                                  obliv::sched::SchedMode::kWorkSteal);
  std::uint64_t total = 0;
  for (int round = 0; round < 200; ++round) {
    std::atomic<std::uint64_t> cnt{0};
    ex.cgc_pfor(0, 256, 1, [&](std::uint64_t a, std::uint64_t b) {
      cnt.fetch_add(b - a, std::memory_order_relaxed);
    });
    total += cnt.load();
  }
  check(total == 200ull * 256, "repeated_roots: no lost iterations");
}

// Teardown with workers still asleep: construct, (sometimes) run one tiny
// root, destroy immediately.  The destructor must wake every parked worker
// exactly once and join it -- a lost wake-up deadlocks here, a dropped join
// leaks the thread (caught by the ASan build of this binary).
void destroy_while_sleeping() {
  for (int round = 0; round < 50; ++round) {
    obliv::sched::NativeExecutor ex(8, /*grain=*/4,
                                    obliv::sched::SchedMode::kWorkSteal);
    if (round % 2 == 0) {
      std::atomic<int> cnt{0};
      ex.cgc_pfor_each(0, 16, 1, [&](std::uint64_t) {
        cnt.fetch_add(1, std::memory_order_relaxed);
      });
      check(cnt.load() == 16, "destroy_while_sleeping: root completed");
    }
    // ~NativeExecutor runs here with all workers parked in the idle wait.
  }
}

// Construction failure mid-spawn: an injected allocation storm makes the
// pool constructor throw after some worker threads are already running.
// The ctor's unwind path must stop and join them -- under TSan a missed
// join races the Worker state teardown, under ASan it leaks the thread and
// its deque, and a lost wake-up hangs this loop.
void failed_setup_teardown() {
  if (!obliv::fault::kFaultsCompiledIn) return;
  int failed = 0, built = 0;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    obliv::fault::FaultPlan plan(
        seed, obliv::fault::FaultOptions::alloc_storm(20000));
    obliv::fault::ScopedFaultPlan scope(&plan);
    try {
      obliv::sched::NativeExecutor ex(4, /*grain=*/4,
                                      obliv::sched::SchedMode::kWorkSteal);
      ++built;
      obliv::fault::ScopedFaultPlan detach(nullptr);
      std::atomic<int> cnt{0};
      ex.cgc_pfor_each(0, 32, 1, [&](std::uint64_t) {
        cnt.fetch_add(1, std::memory_order_relaxed);
      });
      check(cnt.load() == 32, "failed_setup_teardown: surviving pool works");
    } catch (const std::bad_alloc&) {
      ++failed;
    }
  }
  check(failed > 0, "failed_setup_teardown: storm produced failures");
  (void)built;  // either outcome is legal per seed; both paths must be clean
}

// The chaos scheduler itself under the race detector: victim perturbation,
// pop-order inversion, stalls, and dropped wake-ups all execute on hot
// scheduler paths concurrently with real stealing.
void chaos_storm() {
  if (!obliv::fault::kFaultsCompiledIn) return;
  obliv::sched::NativeExecutor ex(4, /*grain=*/1,
                                  obliv::sched::SchedMode::kWorkSteal);
  obliv::fault::FaultPlan plan(99, obliv::fault::FaultOptions::chaos());
  ex.set_fault_plan(&plan);
  const std::uint64_t n = 1 << 10;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  nested_storm(ex, 0, n, hits);
  ex.set_fault_plan(nullptr);
  bool once = true;
  for (auto& h : hits) once = once && h.load() == 1;
  check(once, "chaos_storm: every index hit exactly once under chaos");
  check(plan.decisions() > 0, "chaos_storm: plan was consulted");
}

// Execute every SIMD kernel (vector and scalar paths) over exact-size
// heap buffers with unaligned starts and odd tails.  Under ASan a lane
// overread past n trips immediately; under UBSan any misaligned vector
// access or strict-aliasing violation does; the parity memcmp keeps the
// sweep honest (UBSan alone would pass on wrong-but-defined code).  This
// TU is compiled without -ffp-contract=off, so parity is checked between
// the two kernel TUs only -- both carry the flag (see src/CMakeLists.txt).
void simd_kernel_sweep() {
  namespace simd = obliv::simd;
  obliv::util::Xoshiro256 g(7);
  auto rd = [&] { return static_cast<double>(g() >> 11) * 0x1p-52 - 1.0; };
  auto eq = [](const void* a, const void* b, std::size_t bytes) {
    return bytes == 0 || std::memcmp(a, b, bytes) == 0;
  };
  bool parity = true;
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                        std::size_t{4}, std::size_t{5}, std::size_t{8},
                        std::size_t{13}, std::size_t{67}}) {
    for (std::size_t off : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
      // pair_sum + scan_expand (f64 / u64)
      std::vector<double> ps(off + 2 * n), pd1(off + n), pd2(off + n);
      for (auto& x : ps) x = rd();
      simd::scalar::pair_sum_f64(ps.data() + off, pd1.data() + off, n);
      simd::vec::pair_sum_f64(ps.data() + off, pd2.data() + off, n);
      parity &= eq(pd1.data(), pd2.data(), pd1.size() * 8);
      std::vector<std::uint64_t> us(off + 2 * n), ud1(off + n), ud2(off + n);
      for (auto& x : us) x = g();
      simd::scalar::pair_sum_u64(us.data() + off, ud1.data() + off, n);
      simd::vec::pair_sum_u64(us.data() + off, ud2.data() + off, n);
      parity &= eq(ud1.data(), ud2.data(), ud1.size() * 8);
      if (n >= 1) {
        std::vector<double> t(n), v1(2 * n), v2(2 * n);
        for (auto& x : t) x = rd();
        for (std::size_t i = 0; i < 2 * n; ++i) v1[i] = v2[i] = rd();
        simd::scalar::scan_expand_f64(t.data(), v1.data(), 1, n);
        simd::vec::scan_expand_f64(t.data(), v2.data(), 1, n);
        parity &= eq(v1.data(), v2.data(), v1.size() * 8);
        std::vector<std::uint64_t> tu(n), w1(2 * n), w2(2 * n);
        for (auto& x : tu) x = g();
        for (std::size_t i = 0; i < 2 * n; ++i) w1[i] = w2[i] = g();
        simd::scalar::scan_expand_u64(tu.data(), w1.data(), 1, n);
        simd::vec::scan_expand_u64(tu.data(), w2.data(), 1, n);
        parity &= eq(w1.data(), w2.data(), w1.size() * 8);
      }
      // row updates (fw_min / gauss / axpy) + butterfly over the same shapes
      std::vector<double> y1(off + n), y2(off + n), row(off + n);
      for (std::size_t i = 0; i < off + n; ++i) {
        y1[i] = y2[i] = rd();
        row[i] = rd();
      }
      const double u = rd();
      simd::scalar::fw_min_f64(y1.data() + off, row.data() + off, u, n);
      simd::vec::fw_min_f64(y2.data() + off, row.data() + off, u, n);
      parity &= eq(y1.data(), y2.data(), y1.size() * 8);
      simd::scalar::gauss_update_f64(y1.data() + off, row.data() + off, u, n);
      simd::vec::gauss_update_f64(y2.data() + off, row.data() + off, u, n);
      parity &= eq(y1.data(), y2.data(), y1.size() * 8);
      simd::scalar::axpy_f64(y1.data() + off, row.data() + off, u, n);
      simd::vec::axpy_f64(y2.data() + off, row.data() + off, u, n);
      parity &= eq(y1.data(), y2.data(), y1.size() * 8);
      std::vector<double> ra1(n), ia1(n), rb1(n), ib1(n), wre(n), wim(n);
      for (std::size_t i = 0; i < n; ++i) {
        ra1[i] = rd(), ia1[i] = rd(), rb1[i] = rd(), ib1[i] = rd();
        wre[i] = rd(), wim[i] = rd();
      }
      auto ra2 = ra1, ia2 = ia1, rb2 = rb1, ib2 = ib1;
      simd::scalar::butterfly_f64(ra1.data(), ia1.data(), rb1.data(),
                                  ib1.data(), wre.data(), wim.data(), n);
      simd::vec::butterfly_f64(ra2.data(), ia2.data(), rb2.data(), ib2.data(),
                               wre.data(), wim.data(), n);
      parity &= eq(ra1.data(), ra2.data(), n * 8) &&
                eq(ib1.data(), ib2.data(), n * 8);
      // gathers + strided dot (stride 2 = interleaved AoS contract)
      const std::size_t bn = n ? n : 1;
      std::vector<double> base(2 * bn), g1(n), g2(n), h1(2 * n), h2(2 * n);
      for (auto& x : base) x = rd();
      std::vector<std::uint64_t> idx(n);
      for (auto& x : idx) x = g() % bn;
      simd::scalar::gather_f64(base.data(), idx.data(), g1.data(), n);
      simd::vec::gather_f64(base.data(), idx.data(), g2.data(), n);
      parity &= eq(g1.data(), g2.data(), n * 8);
      simd::scalar::gather_2f64(base.data(), idx.data(), h1.data(), n);
      simd::vec::gather_2f64(base.data(), idx.data(), h2.data(), n);
      parity &= eq(h1.data(), h2.data(), 2 * n * 8);
      struct Entry {
        std::uint64_t col;
        double val;
      };
      std::vector<Entry> ent(bn);
      for (auto& e : ent) e = {g() % bn, rd()};
      const double d1 = simd::scalar::dot_strided_f64(&ent[0].col, &ent[0].val,
                                                      2, base.data(), n);
      const double d2 =
          simd::vec::dot_strided_f64(&ent[0].col, &ent[0].val, 2, base.data(), n);
      parity &= eq(&d1, &d2, 8);
      // copy_bytes with a deliberately odd byte count
      std::vector<unsigned char> cs(off + 3 * n + 1), cd1(off + 3 * n + 1),
          cd2(off + 3 * n + 1);
      for (auto& x : cs) x = static_cast<unsigned char>(g());
      simd::scalar::copy_bytes(cs.data() + off, cd1.data() + off, 3 * n + 1);
      simd::vec::copy_bytes(cs.data() + off, cd2.data() + off, 3 * n + 1);
      parity &= eq(cd1.data(), cd2.data(), cd1.size());
    }
  }
  for (unsigned m : {1u, 2u, 4u, 8u}) {
    std::vector<double> re(m), im(m), r1(m), i1(m), r2(m), i2(m);
    for (unsigned i = 0; i < m; ++i) re[i] = rd(), im[i] = rd();
    simd::scalar::dft_pow2_f64(re.data(), im.data(), r1.data(), i1.data(), m);
    simd::vec::dft_pow2_f64(re.data(), im.data(), r2.data(), i2.data(), m);
    parity &= eq(r1.data(), r2.data(), m * 8) && eq(i1.data(), i2.data(), m * 8);
  }
  check(parity, "simd_kernel_sweep: vec/scalar parity");
}

}  // namespace

int main() {
  deque_churn();
  executor_storm();
  repeated_roots();
  destroy_while_sleeping();
  failed_setup_teardown();
  chaos_storm();
  simd_kernel_sweep();
  if (failures == 0) std::printf("obliv_sched_tsan: all scenarios passed\n");
  return failures == 0 ? 0 : 1;
}
