#include "algo/gep.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hm/config.hpp"
#include "sched/native_executor.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

namespace obliv::algo {
namespace {

using sched::MatView;
using sched::SimExecutor;

template <class Inst>
void check_igep_matches_reference(std::uint64_t n, std::uint64_t seed,
                                  double tol,
                                  bool diag_dominant = false) {
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto buf = ex.make_buf<double>(n * n);
  util::Xoshiro256 rng(seed);
  std::vector<double> expect(n * n);
  for (std::uint64_t i = 0; i < n * n; ++i) {
    buf.raw()[i] = rng.uniform() + 0.1;
    if (diag_dominant && i / n == i % n) buf.raw()[i] += double(n);
    expect[i] = buf.raw()[i];
  }
  gep_reference<Inst>(expect, n);
  auto x = MatView<decltype(buf.ref())>::full(buf.ref(), n, n);
  ex.run(n * n, [&] { igep<Inst>(ex, x); });
  for (std::uint64_t i = 0; i < n * n; ++i) {
    ASSERT_NEAR(buf.raw()[i], expect[i], tol)
        << "n=" << n << " idx=" << i;
  }
}

class GepSizes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GepSizes, FloydWarshallMatchesReference) {
  // I-GEP may relax a path through fully-updated operands, summing the same
  // path weights in a different association order: allow a few ulps.
  check_igep_matches_reference<FloydWarshallInstance>(GetParam(), 1, 1e-12);
}

TEST_P(GepSizes, GaussianEliminationMatchesReference) {
  // Diagonally dominant matrices avoid pivoting issues (the paper's GEP
  // Gaussian elimination explicitly excludes pivoting).
  check_igep_matches_reference<GaussianInstance>(GetParam(), 2, 1e-9, true);
}

INSTANTIATE_TEST_SUITE_P(Pow2Sweep, GepSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

TEST(Gep, FloydWarshallComputesShortestPaths) {
  // 8-node cycle: dist(i, j) = min(|i-j|, 8-|i-j|) after FW.
  const std::uint64_t n = 8;
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto buf = ex.make_buf<double>(n * n);
  const double inf = 1e18;
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      double d = inf;
      if (i == j) d = 0;
      if ((i + 1) % n == j || (j + 1) % n == i) d = 1;
      buf.raw()[i * n + j] = d;
    }
  }
  auto x = MatView<decltype(buf.ref())>::full(buf.ref(), n, n);
  ex.run(n * n, [&] { igep<FloydWarshallInstance>(ex, x); });
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      const std::uint64_t d = i > j ? i - j : j - i;
      EXPECT_EQ(buf.raw()[i * n + j], double(std::min(d, n - d)));
    }
  }
}

TEST(Gep, GaussianProducesUpperTriangularU) {
  const std::uint64_t n = 16;
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto buf = ex.make_buf<double>(n * n);
  util::Xoshiro256 rng(5);
  // A = L*U product reconstruction check via reference is done above; here
  // verify U's defining property: the elimination below the diagonal
  // yields (numerically) the Schur complements, i.e. matches reference.
  std::vector<double> expect(n * n);
  for (std::uint64_t i = 0; i < n * n; ++i) {
    buf.raw()[i] = rng.uniform();
    if (i / n == i % n) buf.raw()[i] += double(n);
    expect[i] = buf.raw()[i];
  }
  gep_reference<GaussianInstance>(expect, n);
  auto x = MatView<decltype(buf.ref())>::full(buf.ref(), n, n);
  ex.run(n * n, [&] { igep<GaussianInstance>(ex, x); });
  for (std::uint64_t i = 0; i < n * n; ++i) {
    ASSERT_NEAR(buf.raw()[i], expect[i], 1e-9);
  }
}

TEST(Gep, MatMulEmbeddingComputesProduct) {
  const std::uint64_t n = 16, nn = 2 * n;
  MatMulEmbedInstance::half = n;
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto buf = ex.make_buf<double>(nn * nn);
  util::Xoshiro256 rng(9);
  std::vector<double> a(n * n), b(n * n);
  for (auto& v : a) v = rng.uniform();
  for (auto& v : b) v = rng.uniform();
  // Layout [[ *, B ], [ A, C ]] with C initialized to zero.
  for (std::uint64_t i = 0; i < nn * nn; ++i) buf.raw()[i] = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      buf.raw()[i * nn + (n + j)] = b[i * n + j];        // B block
      buf.raw()[(n + i) * nn + j] = a[i * n + j];        // A block
    }
  }
  auto x = MatView<decltype(buf.ref())>::full(buf.ref(), nn, nn);
  ex.run(nn * nn, [&] { igep<MatMulEmbedInstance>(ex, x); });
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      double expect = 0;
      for (std::uint64_t k = 0; k < n; ++k) expect += a[i * n + k] * b[k * n + j];
      ASSERT_NEAR(buf.raw()[(n + i) * nn + (n + j)], expect, 1e-9);
    }
  }
}

TEST(Gep, MoMatmulComputesProduct) {
  const std::uint64_t n = 32;
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto cb = ex.make_buf<double>(n * n);
  auto ab = ex.make_buf<double>(n * n);
  auto bb = ex.make_buf<double>(n * n);
  util::Xoshiro256 rng(13);
  for (auto& v : ab.raw()) v = rng.uniform();
  for (auto& v : bb.raw()) v = rng.uniform();
  using Ref = decltype(cb.ref());
  ex.run(4 * n * n, [&] {
    mo_matmul(ex, MatView<Ref>::full(cb.ref(), n, n),
              MatView<Ref>::full(ab.ref(), n, n),
              MatView<Ref>::full(bb.ref(), n, n));
  });
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      double expect = 0;
      for (std::uint64_t k = 0; k < n; ++k) {
        expect += ab.raw()[i * n + k] * bb.raw()[k * n + j];
      }
      ASSERT_NEAR(cb.raw()[i * n + j], expect, 1e-9);
    }
  }
}

TEST(Gep, GepLoopBaselineMatchesIgep) {
  const std::uint64_t n = 32;
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto b1 = ex.make_buf<double>(n * n);
  auto b2 = ex.make_buf<double>(n * n);
  util::Xoshiro256 rng(21);
  for (std::uint64_t i = 0; i < n * n; ++i) {
    b1.raw()[i] = rng.uniform();
    b2.raw()[i] = b1.raw()[i];
  }
  using Ref = decltype(b1.ref());
  ex.run(n * n, [&] {
    igep<FloydWarshallInstance>(ex, MatView<Ref>::full(b1.ref(), n, n));
  });
  ex.run(n * n, [&] {
    gep_loop<FloydWarshallInstance>(ex, MatView<Ref>::full(b2.ref(), n, n));
  });
  EXPECT_EQ(b1.raw(), b2.raw());
}

TEST(Gep, BaseCutoffDoesNotChangeResult) {
  const std::uint64_t n = 32;
  std::vector<double> results[3];
  int idx = 0;
  for (std::uint64_t cutoff : {1u, 4u, 16u}) {
    SimExecutor ex(hm::MachineConfig::shared_l2(4));
    auto buf = ex.make_buf<double>(n * n);
    util::Xoshiro256 rng(33);
    for (auto& v : buf.raw()) v = rng.uniform();
    using Ref = decltype(buf.ref());
    ex.run(n * n, [&] {
      igep<FloydWarshallInstance>(ex, MatView<Ref>::full(buf.ref(), n, n),
                                  cutoff);
    });
    results[idx++] = buf.raw();
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[1], results[2]);
}

TEST(Gep, NativeExecutorMatchesReference) {
  const std::uint64_t n = 64;
  sched::NativeExecutor ex(4);
  auto buf = ex.make_buf<double>(n * n);
  util::Xoshiro256 rng(55);
  std::vector<double> expect(n * n);
  for (std::uint64_t i = 0; i < n * n; ++i) {
    buf.raw()[i] = rng.uniform();
    expect[i] = buf.raw()[i];
  }
  gep_reference<FloydWarshallInstance>(expect, n);
  using Ref = decltype(buf.ref());
  igep<FloydWarshallInstance>(ex, MatView<Ref>::full(buf.ref(), n, n));
  for (std::uint64_t i = 0; i < n * n; ++i) {
    ASSERT_NEAR(buf.raw()[i], expect[i], 1e-12);
  }
}

TEST(Gep, SbMissesBeatLoopMisses) {
  // Theorem 5 vs the classic loop: I-GEP under SB gets the sqrt(C) divisor;
  // the k-major loop does not.  At n^2 >> C_1 the gap must be visible.
  const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);
  const std::uint64_t n = 128;  // n^2 = 16K >> C_1 = 2K words
  std::uint64_t misses_igep, misses_loop;
  {
    SimExecutor ex(cfg);
    auto buf = ex.make_buf<double>(n * n);
    for (auto& v : buf.raw()) v = 1.0;
    using Ref = decltype(buf.ref());
    auto m = ex.run(n * n, [&] {
      igep<FloydWarshallInstance>(ex, MatView<Ref>::full(buf.ref(), n, n));
    });
    misses_igep = m.level_max_misses[0];
  }
  {
    SimExecutor ex(cfg);
    auto buf = ex.make_buf<double>(n * n);
    for (auto& v : buf.raw()) v = 1.0;
    using Ref = decltype(buf.ref());
    auto m = ex.run(n * n, [&] {
      gep_loop<FloydWarshallInstance>(ex, MatView<Ref>::full(buf.ref(), n, n));
    });
    misses_loop = m.level_max_misses[0];
  }
  EXPECT_LT(misses_igep * 2, misses_loop);
}

}  // namespace
}  // namespace obliv::algo
