// Standalone sanitizer smoke + chaos soak for PR 10's running-job
// cancellation machinery (src/serve + sched::CancelToken).
//
// Built under TSan and ASan by tests/CMakeLists.txt (serve_cancel_tsan /
// serve_cancel_asan): cancel() poisoning a token that workers are
// concurrently reading at every fork/steal/anchor is the newest
// cross-thread edge in the tree, so every ctest run races it directly --
// cancel storms against *running* jobs, cancel x running-deadline races,
// server destruction while poisoned trees are still unwinding, and
// submit_with_retry hammering a shedding server.  The same binary is also
// registered unsanitized as the `slow`-label chaos soak (`--soak` scales
// the rounds and switches the fault schedule to cancel_chaos(), which
// injects kCancelPoison / kWatchdogStall at scheduler anchor points).
// No gtest: the sanitizer runtime is the checker; the scenario asserts
// only keep the workload honest.  Mirrors serve_san_main.cpp.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "obs/trace.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"

namespace obliv::serve {
namespace {

int failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAILED: %s\n", what);
    ++failures;
  }
}

sched::NatRef<std::uint64_t> ref_of(std::vector<std::uint64_t>& v) {
  return sched::NatRef<std::uint64_t>(v.data(), v.size());
}

struct SortJob {
  std::vector<std::uint64_t> keys;
  JobHandle handle;
};

SortJob make_sort_job(util::Xoshiro256& rng, std::size_t n) {
  SortJob j;
  j.keys.resize(n);
  for (auto& x : j.keys) x = rng();
  return j;
}

/// A completed job's status must be one of the typed terminal outcomes;
/// an ok job must actually hold a sorted result.
void check_outcome(SortJob& j, const char* what) {
  if (!j.handle.valid()) return;
  const Status s = j.handle.wait();
  check(s.ok() || s.code() == ErrorCode::kCancelled ||
            s.code() == ErrorCode::kDeadlineExceeded,
        what);
  if (s.ok()) {
    check(std::is_sorted(j.keys.begin(), j.keys.end()), what);
  }
}

/// Cancel storm against RUNNING jobs: a canceller thread per client polls
/// for the running() edge and poisons mid-execution while workers are
/// inside the tree.  TSan vets the token load at every fork/steal against
/// the store in cancel(); the post-storm clean job proves pool reuse.
void running_cancel_storm(int rounds, const fault::FaultOptions& fo) {
  for (int round = 0; round < rounds; ++round) {
    fault::FaultPlan plan(0xCA9C0000 + std::uint64_t(round), fo);
    ServerOptions o;
    o.threads = 4;
    obs::Tracer tracer(o.threads, 1 << 12);
    Server srv(o);
    if (obs::kTracingCompiledIn) srv.set_tracer(&tracer);
    srv.set_fault_plan(&plan);

    std::vector<std::thread> clients;
    for (int c = 0; c < 3; ++c) {
      clients.emplace_back([&, c, round] {
        util::Xoshiro256 rng(7000 + std::uint64_t(round) * 31 +
                             std::uint64_t(c));
        std::vector<SortJob> mine;
        mine.reserve(8);
        for (int i = 0; i < 8; ++i) {
          mine.push_back(make_sort_job(rng, std::size_t{1} << 15));
          auto r = srv.submit(SortRequest{ref_of(mine.back().keys)});
          check(r.ok(), "running_cancel_storm: submit accepted");
          if (r.ok()) mine.back().handle = r.value();
        }
        std::thread canceller([&mine] {
          // Poll for the running edge, then poison mid-execution.
          for (auto& j : mine) {
            if (!j.handle.valid()) continue;
            for (int spin = 0; spin < 4000; ++spin) {
              if (j.handle.running() || j.handle.done()) break;
              std::this_thread::yield();
            }
            const bool won = j.handle.cancel();
            if (won) {
              check(j.handle.wait().code() == ErrorCode::kCancelled,
                    "running_cancel_storm: cancel() true => kCancelled");
            }
          }
        });
        canceller.join();
        for (auto& j : mine) {
          check_outcome(j, "running_cancel_storm: typed outcome");
        }
      });
    }
    for (auto& t : clients) t.join();

    // Pool reuse after the storm: one clean job on the same server.
    // Clear the fault plan first -- under cancel_chaos() the
    // kCancelPoison site may spuriously poison any tree, so "completes
    // ok" is only a valid assertion with faults off.
    srv.set_fault_plan(nullptr);
    util::Xoshiro256 rng(60 + std::uint64_t(round));
    SortJob clean = make_sort_job(rng, std::size_t{1} << 14);
    auto r = srv.submit(SortRequest{ref_of(clean.keys)});
    check(r.ok(), "running_cancel_storm: post-storm submit accepted");
    if (r.ok()) {
      check(r.value().wait().ok(), "running_cancel_storm: post-storm ok");
      check(std::is_sorted(clean.keys.begin(), clean.keys.end()),
            "running_cancel_storm: post-storm sorted");
    }
    srv.shutdown();
    srv.set_fault_plan(nullptr);
    const ServerStats st = srv.stats();
    check(st.completed_ok + st.cancelled + st.deadline_exceeded ==
              st.submitted,
          "running_cancel_storm: exactly-once accounting");
  }
}

/// Cancel x running-deadline races: short deadlines expire while cancels
/// fly at the same jobs from another thread.  Exactly one reason wins per
/// job, and cancel() returning true commits the final status to
/// kCancelled -- the fused poison/result protocol under contention.
void cancel_deadline_races(int rounds, const fault::FaultOptions& fo) {
  for (int round = 0; round < rounds; ++round) {
    fault::FaultPlan plan(0xDEAD0000 + std::uint64_t(round), fo);
    ServerOptions o;
    o.threads = 2;
    Server srv(o);
    srv.set_fault_plan(&plan);
    util::Xoshiro256 rng(8000 + std::uint64_t(round) * 13);

    std::vector<SortJob> jobs;
    std::vector<std::uint8_t> cancel_won(16, 0);
    jobs.reserve(16);
    for (int i = 0; i < 16; ++i) {
      jobs.push_back(make_sort_job(rng, std::size_t{1} << 13));
      JobOptions jo;
      jo.deadline = std::chrono::steady_clock::now() +
                    std::chrono::microseconds(rng.below(5000));
      auto r = srv.submit(SortRequest{ref_of(jobs.back().keys)}, jo);
      check(r.ok(), "cancel_deadline_races: submit accepted");
      if (r.ok()) jobs.back().handle = r.value();
    }
    std::thread canceller([&] {
      util::Xoshiro256 crng(31 + std::uint64_t(round));
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (!jobs[i].handle.valid()) continue;
        for (std::uint64_t spin = crng.below(64); spin > 0; --spin) {
          std::this_thread::yield();
        }
        cancel_won[i] = jobs[i].handle.cancel() ? 1 : 0;
      }
    });
    canceller.join();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (!jobs[i].handle.valid()) continue;
      const Status s = jobs[i].handle.wait();
      check(s.ok() || s.code() == ErrorCode::kCancelled ||
                s.code() == ErrorCode::kDeadlineExceeded,
            "cancel_deadline_races: typed outcome");
      if (cancel_won[i]) {
        check(s.code() == ErrorCode::kCancelled,
              "cancel_deadline_races: cancel win is authoritative");
      }
    }
    srv.shutdown();
    srv.set_fault_plan(nullptr);
    const ServerStats st = srv.stats();
    check(st.completed_ok + st.cancelled + st.deadline_exceeded ==
              st.submitted,
          "cancel_deadline_races: exactly-once accounting");
  }
}

/// ~Server while poisoned trees are still unwinding: cancel running jobs
/// and immediately destroy the server.  The destructor's drain must wait
/// out the unwind; handles kept past the scope must stay usable (ASan:
/// no use-after-free on the shared core or the token inside it).
void destroy_while_poisoned(int rounds) {
  util::Xoshiro256 rng(9000);
  for (int round = 0; round < rounds; ++round) {
    std::vector<SortJob> jobs;
    {
      ServerOptions o;
      o.threads = 2;
      Server srv(o);
      for (int i = 0; i < 6; ++i) {
        jobs.push_back(make_sort_job(rng, std::size_t{1} << 14));
        auto r = srv.submit(SortRequest{ref_of(jobs.back().keys)});
        check(r.ok(), "destroy_while_poisoned: submit accepted");
        if (r.ok()) jobs.back().handle = r.value();
      }
      for (auto& j : jobs) {
        if (!j.handle.valid()) continue;
        for (int spin = 0; spin < 2000; ++spin) {
          if (j.handle.running() || j.handle.done()) break;
          std::this_thread::yield();
        }
        j.handle.cancel();
      }
    }  // destructor drains mid-unwind
    for (auto& j : jobs) {
      check_outcome(j, "destroy_while_poisoned: typed outcome");
    }
    jobs.clear();
  }
}

/// submit_with_retry from several threads against a deliberately shedding
/// server: the hint parser, the jittered backoff, and the shed counter
/// all run under contention.
void retry_under_shed(int rounds) {
  for (int round = 0; round < rounds; ++round) {
    const std::size_t na = std::size_t{1} << 15;
    ServerOptions o;
    o.threads = 2;
    o.space_budget_words = 4 * na;
    o.shed_wait_p99_ns = 1;
    o.shed_min_samples = 1;
    Server srv(o);

    util::Xoshiro256 rng(10000 + std::uint64_t(round));
    SortJob big = make_sort_job(rng, na);
    auto rb = srv.submit(SortRequest{ref_of(big.keys)});
    check(rb.ok(), "retry_under_shed: big job accepted");
    if (rb.ok()) big.handle = rb.value();

    std::vector<std::thread> clients;
    std::atomic<int> landed{0}, exhausted{0};
    std::vector<std::vector<std::uint64_t>> bufs(3);
    for (int c = 0; c < 3; ++c) {
      clients.emplace_back([&, c, round] {
        util::Xoshiro256 crng(11000 + std::uint64_t(round) * 7 +
                              std::uint64_t(c));
        bufs[c].resize(1 + crng.below(512));
        for (auto& x : bufs[c]) x = crng();
        RetryPolicy pol;
        pol.max_attempts = 5;
        pol.initial_backoff = std::chrono::milliseconds(1);
        pol.max_backoff = std::chrono::milliseconds(4);
        pol.seed = 0x5EED + std::uint64_t(c);
        auto r = submit_with_retry(srv, SortRequest{ref_of(bufs[c])}, {},
                                   pol);
        if (r.ok()) {
          check(r.value().wait().ok(), "retry_under_shed: landed job ok");
          check(std::is_sorted(bufs[c].begin(), bufs[c].end()),
                "retry_under_shed: landed job sorted");
          landed.fetch_add(1);
        } else {
          check(r.status().code() == ErrorCode::kUnavailable,
                "retry_under_shed: exhausted retries stay typed");
          exhausted.fetch_add(1);
        }
      });
    }
    for (auto& t : clients) t.join();
    check(landed.load() + exhausted.load() == 3,
          "retry_under_shed: every client resolved");
    if (big.handle.valid()) {
      check(big.handle.wait().ok(), "retry_under_shed: big job ok");
    }
    srv.shutdown();
  }
}

}  // namespace
}  // namespace obliv::serve

int main(int argc, char** argv) {
  bool soak = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--soak") == 0) soak = true;
  }
  // Sanitizer smoke: few rounds (TSan is ~10x), plain schedule chaos.
  // Soak: more rounds and cancel_chaos(), which additionally injects
  // kCancelPoison at forks/steals and kWatchdogStall in the dispatcher
  // sweep -- poisons arriving from *inside* the scheduler, not just from
  // client threads.
  const int rounds = soak ? 12 : 3;
  const obliv::fault::FaultOptions fo =
      soak ? obliv::fault::FaultOptions::cancel_chaos()
           : obliv::fault::FaultOptions::chaos();
  obliv::serve::running_cancel_storm(rounds, fo);
  obliv::serve::cancel_deadline_races(rounds, fo);
  obliv::serve::destroy_while_poisoned(soak ? 12 : 4);
  obliv::serve::retry_under_shed(soak ? 8 : 3);
  if (obliv::serve::failures != 0) {
    std::fprintf(stderr, "%d serve-cancel smoke failure(s)\n",
                 obliv::serve::failures);
    return 1;
  }
  std::printf("serve cancel %s: all scenarios clean\n",
              soak ? "chaos soak" : "sanitizer smoke");
  return 0;
}
