#include "algo/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "hm/config.hpp"
#include "sched/native_executor.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

namespace obliv::algo {
namespace {

using sched::SimExecutor;

EdgeList random_tree(std::uint64_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  EdgeList t;
  t.n = n;
  for (std::uint64_t v = 1; v < n; ++v) {
    t.edges.emplace_back(static_cast<std::uint32_t>(rng.below(v)),
                         static_cast<std::uint32_t>(v));
  }
  return t;
}

EdgeList path_graph(std::uint64_t n) {
  EdgeList t;
  t.n = n;
  for (std::uint64_t v = 1; v < n; ++v) {
    t.edges.emplace_back(static_cast<std::uint32_t>(v - 1),
                         static_cast<std::uint32_t>(v));
  }
  return t;
}

EdgeList star_graph(std::uint64_t n) {
  EdgeList t;
  t.n = n;
  for (std::uint64_t v = 1; v < n; ++v) {
    t.edges.emplace_back(0u, static_cast<std::uint32_t>(v));
  }
  return t;
}

/// Reference tree functions by DFS.
TreeFunctions tree_reference(const EdgeList& t, std::uint64_t root) {
  std::vector<std::vector<std::uint32_t>> adj(t.n);
  for (auto [u, v] : t.edges) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  TreeFunctions f;
  f.parent.assign(t.n, root);
  f.depth.assign(t.n, 0);
  f.subtree_size.assign(t.n, 1);
  std::vector<std::pair<std::uint32_t, int>> stack{{std::uint32_t(root), 0}};
  std::vector<std::uint32_t> order;
  std::vector<char> seen(t.n, 0);
  seen[root] = 1;
  while (!stack.empty()) {
    auto [u, d] = stack.back();
    stack.pop_back();
    f.depth[u] = d;
    order.push_back(u);
    for (std::uint32_t v : adj[u]) {
      if (!seen[v]) {
        seen[v] = 1;
        f.parent[v] = u;
        stack.push_back({v, d + 1});
      }
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (*it != root) f.subtree_size[f.parent[*it]] += f.subtree_size[*it];
  }
  // Preorder numbering matching the Euler tour's child order: a vertex
  // entered from parent p visits its neighbors in *circular* ascending
  // order starting just after p (the tour continues with the arc after the
  // twin of the entering arc); the root starts at its smallest neighbor.
  f.preorder.assign(t.n, 0);
  for (auto& nb : adj) std::sort(nb.begin(), nb.end());
  std::uint64_t counter = 0;
  struct Frame {
    std::uint32_t u;
    std::vector<std::uint32_t> kids;
    std::size_t next = 0;
  };
  auto kids_of = [&](std::uint32_t u, std::uint32_t parent) {
    std::vector<std::uint32_t> kids;
    const auto& nb = adj[u];
    std::size_t start = 0;
    if (u != root) {
      // Position just after `parent` in the sorted circular order.
      start = static_cast<std::size_t>(
          std::upper_bound(nb.begin(), nb.end(), parent) - nb.begin());
    }
    for (std::size_t d = 0; d < nb.size(); ++d) {
      const std::uint32_t v = nb[(start + d) % nb.size()];
      if (v != parent) kids.push_back(v);
    }
    return kids;
  };
  std::vector<Frame> fstack;
  fstack.push_back(Frame{static_cast<std::uint32_t>(root),
                         kids_of(static_cast<std::uint32_t>(root),
                                 static_cast<std::uint32_t>(root))});
  f.preorder[root] = counter++;
  while (!fstack.empty()) {
    Frame& top = fstack.back();
    if (top.next >= top.kids.size()) {
      fstack.pop_back();
      continue;
    }
    const std::uint32_t v = top.kids[top.next++];
    f.preorder[v] = counter++;
    fstack.push_back(Frame{v, kids_of(v, top.u)});
  }
  return f;
}

class TreeShapes : public ::testing::TestWithParam<int> {};

TEST_P(TreeShapes, EulerTourTreeFunctionsMatchDfs) {
  EdgeList t;
  std::uint64_t root = 0;
  switch (GetParam()) {
    case 0: t = random_tree(200, 3); break;
    case 1: t = path_graph(150); break;
    case 2: t = star_graph(150); break;
    case 3: t = random_tree(512, 17); root = 100; break;
    case 4: t = random_tree(2, 1); break;
    case 5: t = random_tree(3, 1); root = 2; break;
  }
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  TreeFunctions got, expect = tree_reference(t, root);
  ex.run(16 * (t.n + 1), [&] { got = mo_tree_functions(ex, t, root); });
  EXPECT_EQ(got.parent, expect.parent);
  EXPECT_EQ(got.depth, expect.depth);
  EXPECT_EQ(got.subtree_size, expect.subtree_size);
  EXPECT_EQ(got.preorder, expect.preorder);
}

INSTANTIATE_TEST_SUITE_P(Shapes, TreeShapes, ::testing::Range(0, 6));

TEST(TreeFunctions, SingletonAndEmpty) {
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  EdgeList t;
  t.n = 1;
  TreeFunctions f;
  ex.run(64, [&] { f = mo_tree_functions(ex, t, 0); });
  EXPECT_EQ(f.parent, (std::vector<std::uint64_t>{0}));
  EXPECT_EQ(f.subtree_size, (std::vector<std::uint64_t>{1}));
}

// ---- Connected components ----

/// Checks labels define the same partition as the reference.
void expect_same_partition(const std::vector<std::uint64_t>& got,
                           const std::vector<std::uint64_t>& ref) {
  ASSERT_EQ(got.size(), ref.size());
  std::map<std::uint64_t, std::uint64_t> fwd, bwd;
  for (std::size_t v = 0; v < got.size(); ++v) {
    auto [it1, ins1] = fwd.emplace(got[v], ref[v]);
    EXPECT_EQ(it1->second, ref[v]) << "vertex " << v;
    auto [it2, ins2] = bwd.emplace(ref[v], got[v]);
    EXPECT_EQ(it2->second, got[v]) << "vertex " << v;
  }
}

EdgeList random_graph(std::uint64_t n, std::uint64_t m, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  EdgeList g;
  g.n = n;
  for (std::uint64_t e = 0; e < m; ++e) {
    g.edges.emplace_back(static_cast<std::uint32_t>(rng.below(n)),
                         static_cast<std::uint32_t>(rng.below(n)));
  }
  return g;
}

class CcGraphs : public ::testing::TestWithParam<int> {};

TEST_P(CcGraphs, MatchesBfs) {
  EdgeList g;
  switch (GetParam()) {
    case 0: g = random_graph(300, 150, 1); break;   // many small components
    case 1: g = random_graph(300, 900, 2); break;   // mostly one component
    case 2: g = path_graph(500); break;             // deep single component
    case 3: g = star_graph(400); break;
    case 4: g = EdgeList{100, {}}; break;           // no edges
    case 5: {                                       // two cliques + isolate
      g.n = 21;
      for (std::uint32_t i = 0; i < 10; ++i) {
        for (std::uint32_t j = i + 1; j < 10; ++j) {
          g.edges.emplace_back(i, j);
          g.edges.emplace_back(10 + i, 10 + j);
        }
      }
      break;
    }
    case 6: g = random_graph(64, 64, 3); break;
  }
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  std::vector<std::uint64_t> got;
  ex.run(16 * (g.n + 1), [&] { got = mo_connected_components(ex, g); });
  expect_same_partition(got, cc_bfs_reference(g));
}

INSTANTIATE_TEST_SUITE_P(Graphs, CcGraphs, ::testing::Range(0, 7));

TEST(Cc, SelfLoopsAndParallelEdges) {
  EdgeList g;
  g.n = 5;
  g.edges = {{0, 0}, {1, 2}, {2, 1}, {1, 2}, {3, 4}};
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  std::vector<std::uint64_t> got;
  ex.run(256, [&] { got = mo_connected_components(ex, g); });
  expect_same_partition(got, cc_bfs_reference(g));
}

TEST(Cc, NativeExecutorMatches) {
  EdgeList g = random_graph(2000, 3000, 5);
  sched::NativeExecutor ex(4);
  auto got = mo_connected_components(ex, g);
  expect_same_partition(got, cc_bfs_reference(g));
}

TEST(Cc, StressManyRandomGraphs) {
  util::Xoshiro256 rng(99);
  for (int trial = 0; trial < 12; ++trial) {
    const std::uint64_t n = 2 + rng.below(200);
    const std::uint64_t m = rng.below(3 * n);
    EdgeList g = random_graph(n, m, trial);
    SimExecutor ex(hm::MachineConfig::shared_l2(2));
    std::vector<std::uint64_t> got;
    ex.run(16 * (n + 1), [&] { got = mo_connected_components(ex, g); });
    expect_same_partition(got, cc_bfs_reference(g));
  }
}

}  // namespace
}  // namespace obliv::algo
