// Standalone AddressSanitizer harness for the cache simulator and the
// simulating executor.
//
// Built as `obliv_sim_asan` with -fsanitize=address applied to exactly this
// translation unit plus cache_sim.cpp / config.cpp / sim_executor.cpp, so
// the tier-1 ctest flow sweeps the flat-table LRU, the sharer table, and
// the run-batched view layer under ASan on every run without instrumenting
// the whole build (mirrors the obliv_sched_tsan pattern).
//
// The scenarios target the manually-managed memory in the fast paths: the
// open-addressing table's grow/rehash with live tombstones, Node::slot
// backpointer resync, epoch-recycled sharer slots, the per-core L0 filter's
// deferred LRU flush, and SimRef run accessors crossing block boundaries.
//
// A full ASan build of the whole suite is available via
//   cmake -B build-asan -S . -DOBLIV_SANITIZE=address
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "algo/scan.hpp"
#include "algo/sort.hpp"
#include "hm/cache_sim.hpp"
#include "hm/config.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

namespace {

int failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++failures;
  }
}

/// Flat-table churn: random touches/erases over a key range far larger
/// than the cache, with power-of-two strides, repeatedly crossing the grow
/// threshold and recycling tombstones.
void lru_churn() {
  for (std::uint64_t stride : {1u, 8u, 512u}) {
    obliv::hm::LruCache c(64);
    obliv::util::Xoshiro256 rng(11 + stride);
    for (int op = 0; op < 200000; ++op) {
      const std::uint64_t b = (rng() % 4096) * stride;
      if (rng() % 8 == 0) {
        c.erase(b);
      } else {
        c.touch(b);
        c.touch_known(c.last_node());
      }
    }
    check(c.size() <= 64, "lru_churn: size bounded by lines");
    c.clear();
    check(c.size() == 0, "lru_churn: clear empties");
  }
}

/// Multicore access storm straight at CacheSim: all cores hammer a shared
/// region (ping-pong + invalidation paths) and private regions (L0 fast
/// path), with run accesses spanning many blocks.
void sim_storm(const obliv::hm::MachineConfig& cfg) {
  obliv::hm::CacheSim sim(cfg);
  obliv::util::Xoshiro256 rng(7);
  const std::uint32_t p = cfg.cores();
  for (int op = 0; op < 300000; ++op) {
    const std::uint32_t core = rng() % p;
    const bool write = (rng() % 4) == 0;
    if (rng() % 16 == 0) {
      // Block-run access spanning up to 8 B_1 blocks.
      sim.access(core, rng() % 65536, 1 + rng() % 64, write);
    } else if (rng() % 2 == 0) {
      sim.access(core, rng() % 512, 1, write);  // shared, contended
    } else {
      sim.access(core, 100000 + core * 4096 + rng() % 2048, 1, write);
    }
  }
  check(sim.total_accesses() > 0, "sim_storm: accesses counted");
  sim.clear();
}

/// End-to-end: run-batched algorithms through SimExecutor (exercises
/// SimRef::load_run/store_run/load2, SimExecutor::copy splitting, and the
/// trace hook's vector growth).
void executor_workloads(const obliv::hm::MachineConfig& cfg) {
  obliv::sched::SimExecutor ex(cfg);
  std::vector<obliv::sched::TraceEntry> trace;
  ex.set_trace(&trace);

  auto buf = ex.make_buf<std::uint64_t>(1 << 12);
  obliv::util::Xoshiro256 rng(99);
  for (auto& v : buf.raw()) v = rng();
  ex.run(1 << 14, [&] { obliv::algo::spms_sort(ex, buf.ref()); });
  for (std::size_t i = 1; i < buf.raw().size(); ++i) {
    check(buf.raw()[i - 1] <= buf.raw()[i], "executor: sorted");
  }

  auto pf = ex.make_buf<std::int64_t>((1 << 12) + 3);  // odd tail
  for (auto& v : pf.raw()) v = 1;
  ex.run(1 << 14, [&] { obliv::algo::mo_prefix_sum(ex, pf.ref()); });
  check(pf.raw().back() == static_cast<std::int64_t>(pf.raw().size()),
        "executor: prefix sum total");

  ex.set_trace(nullptr);
  check(!trace.empty(), "executor: trace captured");
}

}  // namespace

int main() {
  lru_churn();
  sim_storm(obliv::hm::MachineConfig::shared_l2(4));
  sim_storm(obliv::hm::MachineConfig::figure1());
  executor_workloads(obliv::hm::MachineConfig::shared_l2(4));
  executor_workloads(obliv::hm::MachineConfig::figure1());
  if (failures != 0) {
    std::fprintf(stderr, "%d scenario check(s) failed\n", failures);
    return 1;
  }
  std::puts("asan sim smoke: all scenarios clean");
  return 0;
}
