#include "algo/sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "hm/config.hpp"
#include "sched/native_executor.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

namespace obliv::algo {
namespace {

using sched::SimExecutor;

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t seed,
                                       std::uint64_t range = ~0ull) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = range == ~0ull ? rng() : rng.below(range);
  return v;
}

class SortSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SortSizes, SpmsSortsRandomKeysOnSim) {
  const std::size_t n = GetParam();
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto buf = ex.make_buf<std::uint64_t>(n);
  auto expect = random_keys(n, n);
  buf.raw() = expect;
  std::sort(expect.begin(), expect.end());
  ex.run(4 * n, [&] { spms_sort(ex, buf.ref()); });
  EXPECT_EQ(buf.raw(), expect);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SortSizes,
                         ::testing::Values(0, 1, 2, 63, 64, 65, 100, 128, 1000,
                                           4096, 10000, 65536));

struct AdversarialCase {
  const char* name;
  std::vector<std::uint64_t> (*make)(std::size_t);
};

std::vector<std::uint64_t> all_equal(std::size_t n) {
  return std::vector<std::uint64_t>(n, 42);
}
std::vector<std::uint64_t> already_sorted(std::size_t n) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i;
  return v;
}
std::vector<std::uint64_t> reverse_sorted(std::size_t n) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = n - i;
  return v;
}
std::vector<std::uint64_t> two_values(std::size_t n) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i % 2;
  return v;
}
std::vector<std::uint64_t> sawtooth(std::size_t n) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i % 17;
  return v;
}
std::vector<std::uint64_t> organ_pipe(std::size_t n) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = std::min(i, n - 1 - i);
  return v;
}

class SortAdversarial : public ::testing::TestWithParam<AdversarialCase> {};

TEST_P(SortAdversarial, SortsCorrectly) {
  for (std::size_t n : {65u, 1000u, 5000u}) {
    SimExecutor ex(hm::MachineConfig::shared_l2(4));
    auto buf = ex.make_buf<std::uint64_t>(n);
    auto expect = GetParam().make(n);
    buf.raw() = expect;
    std::sort(expect.begin(), expect.end());
    ex.run(4 * n, [&] { spms_sort(ex, buf.ref()); });
    ASSERT_EQ(buf.raw(), expect) << GetParam().name << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, SortAdversarial,
    ::testing::Values(AdversarialCase{"all_equal", all_equal},
                      AdversarialCase{"sorted", already_sorted},
                      AdversarialCase{"reverse", reverse_sorted},
                      AdversarialCase{"two_values", two_values},
                      AdversarialCase{"sawtooth", sawtooth},
                      AdversarialCase{"organ_pipe", organ_pipe}),
    [](const auto& param_info) { return param_info.param.name; });

TEST(Sort, HeavyDuplicatesSmallRange) {
  const std::size_t n = 20000;
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto buf = ex.make_buf<std::uint64_t>(n);
  auto expect = random_keys(n, 77, 5);  // only 5 distinct keys
  buf.raw() = expect;
  std::sort(expect.begin(), expect.end());
  ex.run(4 * n, [&] { spms_sort(ex, buf.ref()); });
  EXPECT_EQ(buf.raw(), expect);
}

TEST(Sort, MergesortBaselineCorrect) {
  const std::size_t n = 12345;
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto buf = ex.make_buf<std::uint64_t>(n);
  auto expect = random_keys(n, 3);
  buf.raw() = expect;
  std::sort(expect.begin(), expect.end());
  ex.run(4 * n, [&] { mergesort_baseline(ex, buf.ref()); });
  EXPECT_EQ(buf.raw(), expect);
}

TEST(Sort, NativeExecutorSortsLargeInput) {
  const std::size_t n = 1 << 18;
  sched::NativeExecutor ex(4);
  auto buf = ex.make_buf<std::uint64_t>(n);
  auto expect = random_keys(n, 9);
  buf.raw() = expect;
  std::sort(expect.begin(), expect.end());
  spms_sort(ex, buf.ref());
  EXPECT_EQ(buf.raw(), expect);
}

TEST(Sort, WorkIsNLogNShaped) {
  // Work should grow as ~n log n: work(4n)/work(n) ~ 4 * log(4n)/log(n),
  // comfortably below 6 for these sizes.
  auto work_for = [](std::size_t n) {
    SimExecutor ex(hm::MachineConfig::shared_l2(4));
    auto buf = ex.make_buf<std::uint64_t>(n);
    buf.raw() = random_keys(n, n);
    return ex.run(4 * n, [&] { spms_sort(ex, buf.ref()); }).work;
  };
  const double r = double(work_for(1 << 16)) / double(work_for(1 << 14));
  EXPECT_GT(r, 3.0);
  EXPECT_LT(r, 7.0);
}

TEST(Sort, SpmsMissesBeatMergesortAtLargeN) {
  // Theorem 3: SPMS gets log_{C_i} n passes over the data vs mergesort's
  // log_2 (n / C_i); at n >> C_1 SPMS must incur fewer L1 misses.
  const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);
  const std::size_t n = 1 << 16;  // C_1 = 2048 words
  std::uint64_t m_spms, m_merge;
  {
    SimExecutor ex(cfg);
    auto buf = ex.make_buf<std::uint64_t>(n);
    buf.raw() = random_keys(n, 1);
    m_spms = ex.run(4 * n, [&] { spms_sort(ex, buf.ref()); })
                 .level_max_misses[0];
  }
  {
    SimExecutor ex(cfg);
    auto buf = ex.make_buf<std::uint64_t>(n);
    buf.raw() = random_keys(n, 1);
    m_merge = ex.run(4 * n, [&] { mergesort_baseline(ex, buf.ref()); })
                  .level_max_misses[0];
  }
  EXPECT_LT(m_spms, m_merge);
}

TEST(Sort, StressRandomSmallSizes) {
  util::Xoshiro256 rng(2026);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.below(600);
    SimExecutor ex(hm::MachineConfig::shared_l2(2));
    auto buf = ex.make_buf<std::uint64_t>(n);
    auto expect = random_keys(n, trial * 1000 + n, 1 + rng.below(1000));
    buf.raw() = expect;
    std::sort(expect.begin(), expect.end());
    ex.run(4 * n, [&] { spms_sort(ex, buf.ref()); });
    ASSERT_EQ(buf.raw(), expect) << "trial=" << trial << " n=" << n;
  }
}

}  // namespace
}  // namespace obliv::algo
