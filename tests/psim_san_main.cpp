// Standalone sanitizer harness for the sharded parallel cache-simulation
// engine (hm/psim.hpp).
//
// Built twice by the tier-1 ctest flow: as `obliv_psim_tsan`
// (-fsanitize=thread) and `obliv_psim_asan` (-fsanitize=address), each
// instrumenting exactly this translation unit plus the engine's
// dependency closure (psim.cpp, cache_sim.cpp, trace.cpp, config.cpp,
// sim_executor.cpp, native_executor.cpp) -- mirroring the
// obliv_sched_tsan / obliv_sim_asan pattern of sweeping the hot
// manually-managed paths under sanitizers on every run without
// instrumenting the whole build.
//
// The scenarios force the engine onto a 4-worker pool regardless of host
// core count (OBLIV_PSIM_THREADS=4, set before any engine is built) and
// target the paths where a data race or lifetime bug would hide:
// concurrent shard replay over the disjoint per-core L0/L1 arrays,
// hand-off of shard event queues into the serial merge, the epoch
// analysis's flat-table reuse across epochs, and the fallback path's
// tracer clock save/restore.  Every scenario also checks bit-exact
// counter parity against a serial CacheSim oracle: a sanitizer smoke
// that silently computed the wrong counters would be worse than none.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "algo/scan.hpp"
#include "algo/sort.hpp"
#include "hm/cache_sim.hpp"
#include "hm/config.hpp"
#include "hm/psim.hpp"
#include "hm/trace.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

namespace {

int failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++failures;
  }
}

void compare(const obliv::hm::MachineConfig& cfg, const obliv::hm::CacheSim& a,
             const obliv::hm::CacheSim& b, const char* what) {
  bool same = a.pingpong_events() == b.pingpong_events() &&
              a.total_accesses() == b.total_accesses();
  for (std::uint32_t lvl = 1; lvl <= cfg.cache_levels(); ++lvl) {
    for (std::uint32_t i = 0; i < cfg.caches_at(lvl); ++i) {
      const obliv::hm::CacheCounters& ca = a.counters(lvl, i);
      const obliv::hm::CacheCounters& cb = b.counters(lvl, i);
      same = same && ca.hits == cb.hits && ca.misses == cb.misses &&
             ca.evictions == cb.evictions &&
             ca.invalidations == cb.invalidations;
    }
  }
  check(same, what);
}

/// Replays `trace` through a 4-thread engine at several epoch sizes and
/// checks parity against a fresh serial oracle each time.
void replay_vs_oracle(const obliv::hm::MachineConfig& cfg,
                      const std::vector<obliv::hm::TraceEntry>& trace,
                      const char* what) {
  obliv::hm::CacheSim serial(cfg);
  for (const auto& e : trace) {
    serial.access(e.core, e.addr, e.words, e.write != 0);
  }
  for (const std::size_t epoch : {64ul, 777ul, 100000ul}) {
    obliv::hm::CacheSim sim(cfg);
    obliv::hm::ShardedCacheSim engine(sim, /*threads=*/4);
    check(engine.threads() == 4, "engine spans 4 worker threads");
    engine.replay(trace.data(), trace.size(), epoch);
    compare(cfg, serial, sim, what);
  }
}

/// Conflict-free storm: each core streams over a private region with mixed
/// reads/writes and multi-block runs -- every epoch takes the parallel
/// shard path, so the pool races over the per-core arrays at full tilt.
void private_storm(const obliv::hm::MachineConfig& cfg) {
  obliv::util::Xoshiro256 rng(4100);
  std::vector<obliv::hm::TraceEntry> t;
  const std::uint32_t p = cfg.cores();
  for (int op = 0; op < 120000; ++op) {
    const std::uint32_t core = rng() % p;
    const std::uint64_t base = 1000000ull * (core + 1);
    const std::uint32_t words =
        rng() % 16 == 0 ? 1 + static_cast<std::uint32_t>(rng() % 32) : 1;
    t.push_back({base + rng() % 8192, words, static_cast<std::uint8_t>(core),
                 static_cast<std::uint8_t>(rng() % 3 == 0)});
  }
  replay_vs_oracle(cfg, t, "private_storm parity");
}

/// Shared-region storm: cores hammer overlapping blocks, so conflict
/// analysis flips epochs to the serial fallback (ping-pong and
/// invalidation paths) interleaved with conflict-free stretches.
void shared_storm(const obliv::hm::MachineConfig& cfg) {
  obliv::util::Xoshiro256 rng(4200);
  std::vector<obliv::hm::TraceEntry> t;
  const std::uint32_t p = cfg.cores();
  for (int phase = 0; phase < 64; ++phase) {
    const bool contended = phase % 2 == 0;
    for (int op = 0; op < 1500; ++op) {
      const std::uint32_t core = rng() % p;
      const std::uint64_t addr = contended
                                     ? rng() % 512
                                     : 500000ull * (core + 1) + rng() % 4096;
      t.push_back({addr, 1, static_cast<std::uint8_t>(core),
                   static_cast<std::uint8_t>(rng() % 4 == 0)});
    }
  }
  replay_vs_oracle(cfg, t, "shared_storm parity");
}

/// Read-only sharing: all cores read the same blocks (no writes at all) --
/// legal to parallelize, and the merge's sharer-mask |= path plus the
/// sole-owner L0 exclusivity downgrade get concurrent-shard input.
void read_sharing(const obliv::hm::MachineConfig& cfg) {
  obliv::util::Xoshiro256 rng(4300);
  std::vector<obliv::hm::TraceEntry> t;
  const std::uint32_t p = cfg.cores();
  for (int op = 0; op < 60000; ++op) {
    t.push_back({rng() % 4096, 1, static_cast<std::uint8_t>(rng() % p), 0});
  }
  replay_vs_oracle(cfg, t, "read_sharing parity");
}

/// End-to-end through the executor: the OBLIV_PSIM_THREADS=4 override
/// makes kSharded build a real 4-worker pool even on a 1-core host, so
/// epoch cuts at construct boundaries, deferred obs-free buffering, and
/// the engine reset across run() calls all execute under the sanitizer.
void executor_sharded(const obliv::hm::MachineConfig& cfg) {
  auto counters = [&](obliv::hm::PsimMode mode) {
    obliv::sched::SimPolicy pol;
    pol.psim = mode;
    pol.psim_epoch_grain = 256;  // many epochs
    obliv::sched::SimExecutor ex(cfg, pol);
    auto buf = ex.make_buf<std::uint64_t>(1 << 11);
    obliv::util::Xoshiro256 rng(99);
    for (auto& v : buf.raw()) v = rng();
    ex.run(1 << 13, [&] { obliv::algo::spms_sort(ex, buf.ref()); });
    auto pf = ex.make_buf<std::int64_t>(1 << 11);
    for (auto& v : pf.raw()) v = 1;
    ex.run(1 << 13, [&] { obliv::algo::mo_prefix_sum(ex, pf.ref()); });
    check(buf.raw()[0] <= buf.raw()[1], "executor_sharded: sorted");
    std::vector<std::uint64_t> out;
    for (std::uint32_t lvl = 1; lvl <= cfg.cache_levels(); ++lvl) {
      for (std::uint32_t i = 0; i < cfg.caches_at(lvl); ++i) {
        const obliv::hm::CacheCounters& c = ex.cache_sim().counters(lvl, i);
        out.insert(out.end(),
                   {c.hits, c.misses, c.evictions, c.invalidations});
      }
    }
    out.push_back(ex.cache_sim().pingpong_events());
    out.push_back(ex.cache_sim().total_accesses());
    return out;
  };
  check(counters(obliv::hm::PsimMode::kSerial) ==
            counters(obliv::hm::PsimMode::kSharded),
        "executor_sharded: policy-level parity");
}

}  // namespace

int main() {
  // Before any engine exists: pin the worker count so the scenarios race a
  // real pool even on single-core CI hosts.
  setenv("OBLIV_PSIM_THREADS", "4", /*overwrite=*/1);
  for (const auto& cfg : {obliv::hm::MachineConfig::shared_l2(4),
                          obliv::hm::MachineConfig::figure1()}) {
    private_storm(cfg);
    shared_storm(cfg);
    read_sharing(cfg);
    executor_sharded(cfg);
  }
  if (failures != 0) {
    std::fprintf(stderr, "%d scenario check(s) failed\n", failures);
    return 1;
  }
  std::puts("psim sanitizer smoke: all scenarios clean");
  return 0;
}
