#include "no/machine.hpp"

#include <gtest/gtest.h>

namespace obliv::no {
namespace {

TEST(NoMachine, LocalSendsAreFree) {
  NoMachine m(8, {{4, 2}});
  m.send(0, 0, 100);
  m.send(0, 1, 10);  // PEs 0 and 1 fold onto the same processor (8/4 = 2)
  m.end_superstep();
  EXPECT_EQ(m.communication(0), 0u);
}

TEST(NoMachine, BlocksRoundUp) {
  NoMachine m(4, {{4, 8}});
  m.send(0, 1, 1);  // 1 word -> 1 block of 8
  m.end_superstep();
  EXPECT_EQ(m.communication(0), 1u);
}

TEST(NoMachine, WordsAggregateWithinSuperstepBeforeBlocking) {
  NoMachine m(4, {{4, 8}});
  for (int t = 0; t < 16; ++t) m.send(0, 1, 1);  // 16 words -> 2 blocks
  m.end_superstep();
  EXPECT_EQ(m.communication(0), 2u);
}

TEST(NoMachine, SeparateSuperstepsDoNotAggregate) {
  NoMachine m(4, {{4, 8}});
  for (int t = 0; t < 4; ++t) {
    m.send(0, 1, 1);
    m.end_superstep();  // each 1-word superstep costs a full block
  }
  EXPECT_EQ(m.communication(0), 4u);
}

TEST(NoMachine, HIsMaxOverProcessorsOfInAndOut) {
  NoMachine m(4, {{4, 1}});
  // Processor 0 sends 5 words to 1 and 3 to 2: out(0) = 8 blocks of B=1.
  m.send(0, 1, 5);
  m.send(0, 2, 3);
  m.end_superstep();
  EXPECT_EQ(m.communication(0), 8u);
}

TEST(NoMachine, MultipleFoldsAccountIndependently) {
  NoMachine m(8, {{8, 1}, {2, 4}});
  m.send(0, 7, 8);  // 8 words: fold0 (B=1): 8 blocks; fold1 (B=4): 2 blocks
  m.end_superstep();
  EXPECT_EQ(m.communication(0), 8u);
  EXPECT_EQ(m.communication(1), 2u);
}

TEST(NoMachine, ComputationIsMaxPerProcessorSum) {
  NoMachine m(4, {{2, 1}});
  m.compute(0, 10);
  m.compute(1, 20);  // same processor as PE 0 -> sums to 30
  m.compute(2, 25);
  m.end_superstep();
  EXPECT_EQ(m.computation(0), 30u);
}

TEST(NoMachine, ParallelBranchesTakeMax) {
  NoMachine m(8, {{8, 1}});
  m.parallel_begin();
  m.send(0, 1, 5);
  m.parallel_next();
  m.send(2, 3, 9);
  m.parallel_next();
  m.parallel_end();
  EXPECT_EQ(m.communication(0), 9u);  // max(5, 9), not 14
}

TEST(NoMachine, NestedParallelFrames) {
  NoMachine m(8, {{8, 1}});
  m.parallel_begin();
  {
    m.parallel_begin();
    m.send(0, 1, 3);
    m.parallel_next();
    m.send(2, 3, 4);
    m.parallel_next();
    m.parallel_end();  // inner: max(3,4) = 4
    m.send(0, 2, 2);   // sequential after inner: +2 -> branch total 6
  }
  m.parallel_next();
  m.send(4, 5, 5);
  m.parallel_next();
  m.parallel_end();  // outer: max(6, 5) = 6
  EXPECT_EQ(m.communication(0), 6u);
}

TEST(NoMachine, DbspChargesByClusterGranularity) {
  DbspConfig dbsp;
  dbsp.P = 4;
  dbsp.g = {10.0, 1.0};  // level 0: whole machine, expensive; level 1: cheap
  dbsp.B = {1, 1};
  NoMachine m(4, {{4, 1}}, dbsp);
  // Message within cluster {0,1} (level 1): cheap.
  m.send(0, 1, 1);
  m.end_superstep();
  EXPECT_DOUBLE_EQ(m.dbsp_time(), 1.0);
  // Message crossing clusters (0 -> 3): whole-machine superstep.
  m.send(0, 3, 1);
  m.end_superstep();
  EXPECT_DOUBLE_EQ(m.dbsp_time(), 11.0);
}

TEST(NoMachine, ResetClearsEverything) {
  NoMachine m(4, {{4, 1}});
  m.send(0, 1, 5);
  m.end_superstep();
  m.reset();
  EXPECT_EQ(m.communication(0), 0u);
  EXPECT_EQ(m.supersteps(), 0u);
  EXPECT_EQ(m.total_message_words(), 0u);
}

TEST(NoMachine, EmptySuperstepsAreNotCounted) {
  NoMachine m(4, {{4, 1}});
  m.end_superstep();
  m.end_superstep();
  EXPECT_EQ(m.supersteps(), 0u);
}

}  // namespace
}  // namespace obliv::no
