// Tier-1 tests for the serving front-end (src/serve).
//
// The load-bearing property is *parity*: a job served through the
// admission queue and the shared pool must be bit-identical to the same
// algorithm invoked directly on a NativeExecutor — the serving layer may
// change scheduling, never results (the PR 5 schedule-obliviousness
// property lifted to the job level).  The rest covers the typed error
// surface: malformed requests, expired deadlines, cancellation,
// queue-full rejection, and drain-on-shutdown semantics.
#include "serve/serve.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <complex>
#include <cstring>
#include <numeric>
#include <vector>

#include "algo/fft.hpp"
#include "algo/gep.hpp"
#include "algo/graphgen.hpp"
#include "algo/listrank.hpp"
#include "algo/scan.hpp"
#include "algo/sort.hpp"
#include "algo/spmdv.hpp"
#include "algo/transpose.hpp"
#include "obs/analysis.hpp"
#include "obs/trace.hpp"
#include "sched/native_executor.hpp"
#include "sched/views.hpp"
#include "util/rng.hpp"

namespace obliv::serve {
namespace {

using sched::NatRef;

/// Bitwise equality — parity means identical representations, so NaN-safe
/// and rounding-mode-proof, unlike operator== on doubles.
template <class T>
bool bits_equal(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

template <class T>
NatRef<T> ref_of(std::vector<T>& v) {
  return NatRef<T>(v.data(), v.size());
}

ServerOptions small_server() {
  ServerOptions o;
  o.threads = 2;
  return o;
}

// ---------------------------------------------------------------------------
// Parity: served == direct, bit for bit, for all seven families
// ---------------------------------------------------------------------------

TEST(ServeParity, ScanMatchesDirect) {
  const std::size_t n = 10000;
  util::Xoshiro256 rng(101);
  std::vector<std::int64_t> direct(n), served;
  for (auto& x : direct) x = std::int64_t(rng()) % 1000;
  served = direct;

  sched::NativeExecutor ex(2);
  algo::mo_prefix_sum(ex, ref_of(direct));

  Server srv(small_server());
  auto h = srv.submit(ScanRequest{ref_of(served)});
  ASSERT_TRUE(h.ok()) << h.status().message();
  EXPECT_TRUE(h.value().wait().ok());
  EXPECT_TRUE(bits_equal(direct, served));
}

TEST(ServeParity, SortMatchesDirect) {
  const std::size_t n = 20000;
  util::Xoshiro256 rng(202);
  std::vector<std::uint64_t> direct(n), served;
  for (auto& x : direct) x = rng();
  served = direct;

  sched::NativeExecutor ex(2);
  algo::spms_sort(ex, ref_of(direct));

  Server srv(small_server());
  auto h = srv.submit(SortRequest{ref_of(served)});
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h.value().wait().ok());
  EXPECT_TRUE(bits_equal(direct, served));
  EXPECT_TRUE(std::is_sorted(served.begin(), served.end()));
}

TEST(ServeParity, FftMatchesDirect) {
  const std::size_t n = 1 << 12;
  util::Xoshiro256 rng(303);
  std::vector<algo::cplx> direct(n), served;
  for (auto& x : direct) x = algo::cplx(rng.uniform() - 0.5, rng.uniform());
  served = direct;

  sched::NativeExecutor ex(2);
  algo::mo_fft(ex, ref_of(direct));

  Server srv(small_server());
  auto h = srv.submit(FftRequest{ref_of(served)});
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h.value().wait().ok());
  EXPECT_TRUE(bits_equal(direct, served));
}

TEST(ServeParity, TransposeMatchesDirect) {
  const std::uint64_t n = 64;
  util::Xoshiro256 rng(404);
  std::vector<double> in(n * n);
  for (auto& x : in) x = rng.uniform();
  std::vector<double> direct(n * n, -1.0), served(n * n, -1.0);

  sched::NativeExecutor ex(2);
  algo::mo_transpose(ex, ref_of(in), ref_of(direct), n);

  Server srv(small_server());
  auto h = srv.submit(TransposeRequest{ref_of(in), ref_of(served), n});
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h.value().wait().ok());
  EXPECT_TRUE(bits_equal(direct, served));
}

TEST(ServeParity, GepMatchesDirect) {
  const std::uint64_t n = 48;
  util::Xoshiro256 rng(505);
  std::vector<double> direct(n * n), served;
  for (auto& x : direct) x = rng.uniform() * 10.0;
  served = direct;

  sched::NativeExecutor ex(2);
  using Mat = sched::MatView<NatRef<double>>;
  algo::igep<algo::FloydWarshallInstance>(ex,
                                          Mat::full(ref_of(direct), n, n));

  Server srv(small_server());
  auto h = srv.submit(GepRequest{ref_of(served), n});
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h.value().wait().ok());
  EXPECT_TRUE(bits_equal(direct, served));
}

TEST(ServeParity, ListRankMatchesDirect) {
  const std::uint64_t n = 4000;
  // Random-memory-order list: perm[t] is the t-th node.
  std::vector<std::uint64_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  util::Xoshiro256 rng(606);
  for (std::uint64_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.below(i)]);
  }
  std::vector<std::uint64_t> succ(n, algo::kNil), pred(n, algo::kNil);
  for (std::uint64_t t = 0; t + 1 < n; ++t) {
    succ[perm[t]] = perm[t + 1];
    pred[perm[t + 1]] = perm[t];
  }
  std::vector<std::uint64_t> d_succ = succ, d_pred = pred, d_dist(n, 0);
  std::vector<std::uint64_t> s_succ = succ, s_pred = pred, s_dist(n, 0);

  sched::NativeExecutor ex(2);
  algo::mo_list_rank(ex, ref_of(d_succ), ref_of(d_pred), ref_of(d_dist));

  Server srv(small_server());
  auto h = srv.submit(
      ListRankRequest{ref_of(s_succ), ref_of(s_pred), ref_of(s_dist)});
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h.value().wait().ok());
  EXPECT_TRUE(bits_equal(d_dist, s_dist));
  for (std::uint64_t t = 0; t < n; ++t) {
    EXPECT_EQ(s_dist[perm[t]], n - 1 - t);
  }
}

TEST(ServeParity, SpmdvMatchesDirect) {
  const std::uint64_t side = 24;
  algo::SparseMatrix a = algo::grid_matrix(side);
  util::Xoshiro256 rng(707);
  std::vector<double> x(a.n);
  for (auto& v : x) v = rng.uniform() - 0.5;
  std::vector<double> direct(a.n, 0.0), served(a.n, 0.0);
  std::vector<algo::SpmEntry> av = a.av;
  std::vector<std::uint64_t> a0 = a.a0;

  sched::NativeExecutor ex(2);
  algo::mo_spmdv(ex, ref_of(av), ref_of(a0), ref_of(x), ref_of(direct));

  Server srv(small_server());
  auto h = srv.submit(
      SpmdvRequest{ref_of(av), ref_of(a0), ref_of(x), ref_of(served)});
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h.value().wait().ok());
  EXPECT_TRUE(bits_equal(direct, served));
}

TEST(ServeParity, ZeroSizeRequestsCompleteOk) {
  Server srv(small_server());
  std::vector<std::int64_t> empty_i64;
  std::vector<std::uint64_t> empty_u64;
  std::vector<algo::cplx> empty_cplx;
  std::vector<JobHandle> hs;
  auto push = [&](Result<JobHandle> r) {
    ASSERT_TRUE(r.ok()) << r.status().message();
    hs.push_back(r.value());
  };
  push(srv.submit(ScanRequest{ref_of(empty_i64)}));
  push(srv.submit(SortRequest{ref_of(empty_u64)}));
  push(srv.submit(FftRequest{ref_of(empty_cplx)}));
  for (auto& h : hs) EXPECT_TRUE(h.wait().ok());
}

// ---------------------------------------------------------------------------
// Typed error surface
// ---------------------------------------------------------------------------

TEST(ServeErrors, MalformedRequestsRejectedTyped) {
  Server srv(small_server());

  std::vector<algo::cplx> odd(100);  // not a power of two
  auto r1 = srv.submit(FftRequest{ref_of(odd)});
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), ErrorCode::kInvalidArgument);

  std::vector<double> m(16 * 16);
  auto r2 = srv.submit(TransposeRequest{ref_of(m), ref_of(m), 16});
  ASSERT_FALSE(r2.ok());  // aliased in/out
  EXPECT_EQ(r2.status().code(), ErrorCode::kInvalidArgument);

  auto r3 = srv.submit(GepRequest{ref_of(m), 32});  // view shorter than n*n
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), ErrorCode::kInvalidArgument);

  std::vector<std::uint64_t> a(8, algo::kNil), b(7, algo::kNil);
  auto r4 = srv.submit(ListRankRequest{ref_of(a), ref_of(b), ref_of(a)});
  ASSERT_FALSE(r4.ok());  // mismatched lengths
  EXPECT_EQ(r4.status().code(), ErrorCode::kInvalidArgument);

  std::vector<algo::SpmEntry> av(4);
  std::vector<std::uint64_t> a0 = {0, 2, 9};  // end offset beyond av
  std::vector<double> x(2), y(2);
  auto r5 = srv.submit(
      SpmdvRequest{ref_of(av), ref_of(a0), ref_of(x), ref_of(y)});
  ASSERT_FALSE(r5.ok());
  EXPECT_EQ(r5.status().code(), ErrorCode::kInvalidArgument);

  // A view that is null but claims length.
  auto r6 = srv.submit(ScanRequest{NatRef<std::int64_t>(nullptr, 8)});
  ASSERT_FALSE(r6.ok());
  EXPECT_EQ(r6.status().code(), ErrorCode::kInvalidArgument);

  EXPECT_EQ(srv.stats().rejected, 6u);
}

TEST(ServeErrors, OversizedRequestRejectedAtSubmit) {
  ServerOptions o = small_server();
  o.space_budget_words = 1024;
  Server srv(o);
  std::vector<std::uint64_t> big(1000);  // sort estimate 4000 > 1024
  auto r = srv.submit(SortRequest{ref_of(big)});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kResourceExhausted);
}

TEST(ServeErrors, ExpiredDeadlineCompletesWithoutRunning) {
  Server srv(small_server());
  std::vector<std::int64_t> data(1000, 7);
  const std::vector<std::int64_t> before = data;
  JobOptions jo;
  jo.deadline = std::chrono::steady_clock::now() -
                std::chrono::milliseconds(1);
  auto r = srv.submit(ScanRequest{ref_of(data)}, jo);
  ASSERT_TRUE(r.ok());  // accepted: expiry is the dispatcher's call
  const Status s = r.value().wait();  // must return, not hang
  EXPECT_EQ(s.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_TRUE(bits_equal(before, data));  // never touched the buffer
  EXPECT_EQ(srv.stats().deadline_exceeded, 1u);
}

TEST(ServeErrors, CancelSemantics) {
  // Budget sized exactly to job A, so B must wait in the queue while A
  // runs — the window in which cancel() is specified to succeed.
  const std::size_t na = 1 << 15;
  ServerOptions o = small_server();
  o.space_budget_words = 4 * na;
  Server srv(o);

  std::vector<std::uint64_t> a(na);
  util::Xoshiro256 rng(808);
  for (auto& x : a) x = rng();
  std::vector<std::int64_t> b(512, 3);
  const std::vector<std::int64_t> b_before = b;

  auto ha = srv.submit(SortRequest{ref_of(a)});
  ASSERT_TRUE(ha.ok());
  auto hb = srv.submit(ScanRequest{ref_of(b)});
  ASSERT_TRUE(hb.ok());

  JobHandle jb = hb.value();
  const bool cancelled = jb.cancel();
  const Status sb = jb.wait();
  if (cancelled) {
    // cancel() decided the fate: queued (usual here, A holds the whole
    // budget) or — if A finished first — mid-run.  Either way the final
    // status is kCancelled; the buffer is only guaranteed untouched in
    // the queued case (a mid-run poison leaves it unspecified).
    EXPECT_EQ(sb.code(), ErrorCode::kCancelled);
    const ServerStats st = srv.stats();
    EXPECT_EQ(st.cancelled, 1u);
    if (st.cancelled_running == 0) {
      EXPECT_TRUE(bits_equal(b_before, b));  // never ran
    }
  } else {
    // Lost the race: B already completed, so it must have run normally.
    EXPECT_TRUE(sb.ok());
  }
  EXPECT_TRUE(ha.value().wait().ok());
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));

  // Cancelling a finished job is a no-op.
  EXPECT_FALSE(jb.cancel());
}

TEST(ServeErrors, QueueFullRejectionIsTyped) {
  // One-at-a-time budget and a single waiting slot: a burst of submits
  // must overflow the queue, and every overflow must be a typed
  // kResourceExhausted (never a hang or a crash).
  const std::size_t n = 1 << 14;
  ServerOptions o = small_server();
  o.space_budget_words = 4 * n;
  o.queue_capacity = 1;
  Server srv(o);

  std::vector<std::vector<std::uint64_t>> bufs;
  util::Xoshiro256 rng(909);
  for (int i = 0; i < 8; ++i) {
    bufs.emplace_back(n);
    for (auto& x : bufs.back()) x = rng();
  }
  std::size_t ok = 0, rejected = 0;
  std::vector<JobHandle> hs;
  for (auto& buf : bufs) {
    auto r = srv.submit(SortRequest{ref_of(buf)});
    if (r.ok()) {
      ++ok;
      hs.push_back(r.value());
    } else {
      ++rejected;
      EXPECT_EQ(r.status().code(), ErrorCode::kResourceExhausted);
    }
  }
  EXPECT_EQ(ok + rejected, bufs.size());
  EXPECT_GE(ok, 1u);
  for (auto& h : hs) EXPECT_TRUE(h.wait().ok());
  for (std::size_t i = 0, k = 0; i < bufs.size(); ++i) {
    if (k < hs.size() && std::is_sorted(bufs[i].begin(), bufs[i].end())) ++k;
  }
}

// ---------------------------------------------------------------------------
// Drain / shutdown
// ---------------------------------------------------------------------------

TEST(ServeShutdown, DrainCompletesAdmittedAndRejectsNew) {
  Server srv(small_server());
  std::vector<std::vector<std::uint64_t>> bufs;
  std::vector<JobHandle> hs;
  util::Xoshiro256 rng(111);
  for (int i = 0; i < 4; ++i) {
    bufs.emplace_back(4096);
    for (auto& x : bufs.back()) x = rng();
    auto r = srv.submit(SortRequest{ref_of(bufs.back())});
    ASSERT_TRUE(r.ok());
    hs.push_back(r.value());
  }
  srv.shutdown();  // graceful: every accepted job completes
  for (std::size_t i = 0; i < hs.size(); ++i) {
    EXPECT_TRUE(hs[i].wait().ok());
    EXPECT_TRUE(std::is_sorted(bufs[i].begin(), bufs[i].end()));
  }
  std::vector<std::uint64_t> late(16);
  auto r = srv.submit(SortRequest{ref_of(late)});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kUnavailable);

  srv.shutdown();  // idempotent
  const ServerStats st = srv.stats();
  EXPECT_EQ(st.submitted, 4u);
  EXPECT_EQ(st.completed_ok, 4u);
  EXPECT_EQ(st.rejected, 1u);
}

TEST(ServeShutdown, HandleOutlivesServer) {
  std::vector<std::uint64_t> buf(2048);
  util::Xoshiro256 rng(222);
  for (auto& x : buf) x = rng();
  JobHandle h;
  {
    Server srv(small_server());
    auto r = srv.submit(SortRequest{ref_of(buf)});
    ASSERT_TRUE(r.ok());
    h = r.value();
  }  // ~Server drains
  EXPECT_TRUE(h.wait().ok());
  EXPECT_TRUE(std::is_sorted(buf.begin(), buf.end()));
}

// ---------------------------------------------------------------------------
// Observability: job lane events + published counters
// ---------------------------------------------------------------------------

TEST(ServeObs, JobLaneEventsAndCounters) {
  if (!obs::kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  ServerOptions o = small_server();
  obs::Tracer tracer(o.threads == 0 ? 2 : o.threads, 1 << 12);
  Server srv(o);
  srv.set_tracer(&tracer);

  std::vector<std::vector<std::uint64_t>> bufs;
  std::vector<JobHandle> hs;
  util::Xoshiro256 rng(333);
  for (int i = 0; i < 3; ++i) {
    bufs.emplace_back(4096);
    for (auto& x : bufs.back()) x = rng();
    auto r = srv.submit(SortRequest{ref_of(bufs.back())});
    ASSERT_TRUE(r.ok());
    hs.push_back(r.value());
  }
  for (auto& h : hs) EXPECT_TRUE(h.wait().ok());
  srv.shutdown();

  EXPECT_EQ(tracer.events_dropped(), 0u);
  std::size_t admits = 0, begins = 0, ends = 0;
  for (std::uint32_t r = 0; r < tracer.ring_count(); ++r) {
    tracer.ring(r).for_each([&](const obs::Event& e) {
      if (e.kind == obs::EventKind::kJobAdmit) ++admits;
      if (e.kind == obs::EventKind::kJobBegin) ++begins;
      if (e.kind == obs::EventKind::kJobEnd) {
        ++ends;
        EXPECT_EQ(e.tid, obs::kServeLane);
        EXPECT_EQ(e.detail, std::uint8_t(Family::kSort));
        EXPECT_EQ(e.c, std::uint64_t(ErrorCode::kOk));
      }
    });
  }
  EXPECT_EQ(admits, 3u);
  EXPECT_EQ(begins, 3u);
  EXPECT_EQ(ends, 3u);

  const obs::CounterRegistry& c = tracer.counters();
  EXPECT_EQ(c.value("serve.jobs_submitted"), 3u);
  EXPECT_EQ(c.value("serve.jobs_completed_ok"), 3u);
  EXPECT_EQ(c.value("serve.space_budget_words"), o.space_budget_words);
  EXPECT_GT(c.value("serve.space_peak_words"), 0u);
  EXPECT_LE(c.value("serve.space_peak_words"), o.space_budget_words);
  const obs::Histogram* wh = c.find_histogram("serve.job.wait_ns");
  const obs::Histogram* rh = c.find_histogram("serve.job.run_ns");
  ASSERT_NE(wh, nullptr);
  ASSERT_NE(rh, nullptr);
  EXPECT_EQ(wh->count(), 3u);
  EXPECT_EQ(rh->count(), 3u);
}

TEST(ServeObs, SpaceEstimatesMatchDocumentedBounds) {
  std::vector<std::int64_t> i64(10);
  std::vector<std::uint64_t> u64(10);
  std::vector<algo::cplx> cx(8);
  EXPECT_EQ(space_estimate_words(Request(ScanRequest{ref_of(i64)})), 20u);
  EXPECT_EQ(space_estimate_words(Request(SortRequest{ref_of(u64)})), 40u);
  EXPECT_EQ(space_estimate_words(Request(FftRequest{ref_of(cx)})), 48u);
  EXPECT_EQ(family_name(Family::kScan), "scan");
  EXPECT_EQ(family_name(Family::kSpmdv), "spmdv");
}

}  // namespace
}  // namespace obliv::serve
