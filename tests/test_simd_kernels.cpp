// Tier-1 parity and mode-identity tests for the SIMD layer (util/simd.hpp).
//
// Two layers of guarantees:
//
//  1. Kernel parity fuzz: every vec:: kernel is bitwise-identical to its
//     scalar:: fallback over randomized sizes, alignments and odd tails
//     (on builds/hosts without vector support vec:: forwards to scalar::
//     and the checks pass trivially).  scalar:: itself is checked against
//     independent naive references written here.
//
//  2. Mode-identity goldens: each native algorithm family produces
//     bit-identical results under Mode::kAuto and Mode::kScalar (kScalar is
//     exactly what an OBLIV_SIMD=OFF build runs, so this is the ON/OFF
//     identity), and -- except spmdv, whose kernel fixes a different
//     reduction order than the serial loop -- under Mode::kGeneric too.
#include "util/simd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstring>
#include <numbers>
#include <vector>

#include "algo/fft.hpp"
#include "algo/gep.hpp"
#include "algo/graphgen.hpp"
#include "algo/scan.hpp"
#include "algo/sort.hpp"
#include "algo/spmdv.hpp"
#include "algo/transpose.hpp"
#include "no/machine.hpp"
#include "no/ngep.hpp"
#include "sched/native_executor.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

namespace obliv {
namespace {

using util::Xoshiro256;

// The kernel gate must be an explicit marker: native refs qualify, the
// simulator's counter-bearing refs must not (they also expose raw()).
static_assert(sched::is_direct_ref_v<sched::NatRef<double>>);
static_assert(!sched::is_direct_ref_v<sched::SimRef<double>>);
static_assert(!sched::is_direct_ref_v<double*>);

double rnd(Xoshiro256& g) {
  return static_cast<double>(g() >> 11) * 0x1p-52 - 1.0;  // [-1, 1)
}

template <class T>
::testing::AssertionResult BitsEqual(const std::vector<T>& a,
                                     const std::vector<T>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "size " << a.size() << " vs "
                                         << b.size();
  }
  if (!a.empty() &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) != 0) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (std::memcmp(&a[i], &b[i], sizeof(T)) != 0) {
        return ::testing::AssertionFailure() << "first mismatch at " << i;
      }
    }
  }
  return ::testing::AssertionSuccess();
}

// Sizes covering empty, sub-lane, exact-lane and odd-tail shapes; offsets
// exercise unaligned starts (kernels must not assume 32-byte alignment).
const std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 37, 64, 131};
const std::size_t kOffsets[] = {0, 1, 3};

std::vector<double> rand_vec(Xoshiro256& g, std::size_t n) {
  std::vector<double> v(n);
  for (auto& x : v) x = rnd(g);
  return v;
}

// ---------------------------------------------------------------------------
// Kernel parity fuzz
// ---------------------------------------------------------------------------

TEST(SimdKernels, PairSumParity) {
  Xoshiro256 g(1);
  for (std::size_t n : kSizes) {
    for (std::size_t off : kOffsets) {
      auto src = rand_vec(g, 2 * n + off);
      std::vector<double> d1(n + off, 0.0), d2 = d1;
      simd::scalar::pair_sum_f64(src.data() + off, d1.data() + off, n);
      simd::vec::pair_sum_f64(src.data() + off, d2.data() + off, n);
      EXPECT_TRUE(BitsEqual(d1, d2)) << "n=" << n << " off=" << off;
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(d1[off + i], src[off + 2 * i] + src[off + 2 * i + 1]);
      }
      // u64 flavor over the same shapes.
      std::vector<std::uint64_t> us(2 * n + off);
      for (auto& x : us) x = g();
      std::vector<std::uint64_t> u1(n + off, 0), u2 = u1;
      simd::scalar::pair_sum_u64(us.data() + off, u1.data() + off, n);
      simd::vec::pair_sum_u64(us.data() + off, u2.data() + off, n);
      EXPECT_TRUE(BitsEqual(u1, u2)) << "n=" << n << " off=" << off;
    }
  }
}

TEST(SimdKernels, ScanExpandParity) {
  Xoshiro256 g(2);
  for (std::size_t half : kSizes) {
    for (std::size_t i_lo : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
      if (i_lo > half) continue;
      auto t = rand_vec(g, half);
      auto v0 = rand_vec(g, 2 * half);
      auto v1 = v0, v2 = v0;
      simd::scalar::scan_expand_f64(t.data(), v1.data(), i_lo, half);
      simd::vec::scan_expand_f64(t.data(), v2.data(), i_lo, half);
      EXPECT_TRUE(BitsEqual(v1, v2)) << half << "/" << i_lo;
      for (std::size_t i = i_lo; i < half; ++i) {
        EXPECT_EQ(v1[2 * i], t[i - 1] + v0[2 * i]);
        EXPECT_EQ(v1[2 * i + 1], t[i]);
      }
    }
  }
}

TEST(SimdKernels, ButterflyParityAndComplexIdentity) {
  Xoshiro256 g(3);
  for (std::size_t n : kSizes) {
    auto ra0 = rand_vec(g, n), ia0 = rand_vec(g, n);
    auto rb0 = rand_vec(g, n), ib0 = rand_vec(g, n);
    std::vector<double> wre(n), wim(n);
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = rnd(g) * std::numbers::pi;
      wre[j] = std::cos(ang);
      wim[j] = std::sin(ang);
    }
    auto ra1 = ra0, ia1 = ia0, rb1 = rb0, ib1 = ib0;
    auto ra2 = ra0, ia2 = ia0, rb2 = rb0, ib2 = ib0;
    simd::scalar::butterfly_f64(ra1.data(), ia1.data(), rb1.data(),
                                ib1.data(), wre.data(), wim.data(), n);
    simd::vec::butterfly_f64(ra2.data(), ia2.data(), rb2.data(), ib2.data(),
                             wre.data(), wim.data(), n);
    EXPECT_TRUE(BitsEqual(ra1, ra2));
    EXPECT_TRUE(BitsEqual(ia1, ia2));
    EXPECT_TRUE(BitsEqual(rb1, rb2));
    EXPECT_TRUE(BitsEqual(ib1, ib2));
    // Identity with the std::complex formulation the generic FFT uses.
    for (std::size_t j = 0; j < n; ++j) {
      const std::complex<double> a{ra0[j], ia0[j]};
      const std::complex<double> b =
          std::complex<double>{rb0[j], ib0[j]} *
          std::complex<double>{wre[j], wim[j]};
      const std::complex<double> s = a + b, d = a - b;
      EXPECT_EQ(ra1[j], s.real());
      EXPECT_EQ(ia1[j], s.imag());
      EXPECT_EQ(rb1[j], d.real());
      EXPECT_EQ(ib1[j], d.imag());
    }
  }
}

TEST(SimdKernels, DftBaseParityAndComplexIdentity) {
  Xoshiro256 g(4);
  for (unsigned m : {1u, 2u, 4u, 8u}) {
    for (int rep = 0; rep < 8; ++rep) {
      auto re = rand_vec(g, m), im = rand_vec(g, m);
      std::vector<double> r1(m), i1(m), r2(m), i2(m);
      simd::scalar::dft_pow2_f64(re.data(), im.data(), r1.data(), i1.data(),
                                 m);
      simd::vec::dft_pow2_f64(re.data(), im.data(), r2.data(), i2.data(), m);
      EXPECT_TRUE(BitsEqual(r1, r2)) << "m=" << m;
      EXPECT_TRUE(BitsEqual(i1, i2)) << "m=" << m;
      // Identity with dft_base's generic complex accumulation.
      for (unsigned f = 0; f < m; ++f) {
        std::complex<double> acc{0.0, 0.0};
        for (unsigned t = 0; t < m; ++t) {
          const double ang = -2.0 * std::numbers::pi *
                             static_cast<double>((f * t) % m) /
                             static_cast<double>(m);
          acc += std::complex<double>{re[t], im[t]} * std::polar(1.0, ang);
        }
        EXPECT_EQ(r1[f], acc.real()) << "m=" << m << " f=" << f;
        EXPECT_EQ(i1[f], acc.imag()) << "m=" << m << " f=" << f;
      }
    }
  }
}

TEST(SimdKernels, RowUpdateParity) {
  Xoshiro256 g(5);
  for (std::size_t n : kSizes) {
    for (std::size_t off : kOffsets) {
      auto y0 = rand_vec(g, n + off);
      auto v = rand_vec(g, n + off);
      const double u = rnd(g), w = rnd(g) + 2.0;  // w away from 0
      // fw_min
      auto y1 = y0, y2 = y0;
      simd::scalar::fw_min_f64(y1.data() + off, v.data() + off, u, n);
      simd::vec::fw_min_f64(y2.data() + off, v.data() + off, u, n);
      EXPECT_TRUE(BitsEqual(y1, y2));
      for (std::size_t j = 0; j < n; ++j) {
        const double cand = u + v[off + j];
        EXPECT_EQ(y1[off + j], cand < y0[off + j] ? cand : y0[off + j]);
      }
      // gauss
      y1 = y0, y2 = y0;
      simd::scalar::gauss_update_f64(y1.data() + off, v.data() + off, u / w,
                                     n);
      simd::vec::gauss_update_f64(y2.data() + off, v.data() + off, u / w, n);
      EXPECT_TRUE(BitsEqual(y1, y2));
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_EQ(y1[off + j], y0[off + j] - (u / w) * v[off + j]);
      }
      // axpy
      y1 = y0, y2 = y0;
      simd::scalar::axpy_f64(y1.data() + off, v.data() + off, u, n);
      simd::vec::axpy_f64(y2.data() + off, v.data() + off, u, n);
      EXPECT_TRUE(BitsEqual(y1, y2));
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_EQ(y1[off + j], y0[off + j] + u * v[off + j]);
      }
      // in-place aliasing (i == k rows): y and v the same pointer.
      y1 = y0, y2 = y0;
      simd::scalar::fw_min_f64(y1.data() + off, y1.data() + off, u, n);
      simd::vec::fw_min_f64(y2.data() + off, y2.data() + off, u, n);
      EXPECT_TRUE(BitsEqual(y1, y2));
    }
  }
}

TEST(SimdKernels, DotStridedParity) {
  // stride_words == 2 is the SpmEntry AoS contract: cols and vals are the
  // SAME interleaved stream (vals == (const double*)cols + 1), which the
  // vector path exploits with a deinterleaving load.
  Xoshiro256 g(6);
  for (std::size_t n : kSizes) {
    const std::size_t xn = 64;
    auto x = rand_vec(g, xn);
    std::vector<algo::SpmEntry> e(std::max<std::size_t>(n, 1));
    for (std::size_t i = 0; i < n; ++i) e[i] = {g() % xn, rnd(g)};
    const double d1 =
        simd::scalar::dot_strided_f64(&e[0].col, &e[0].val, 2, x.data(), n);
    const double d2 =
        simd::vec::dot_strided_f64(&e[0].col, &e[0].val, 2, x.data(), n);
    EXPECT_EQ(std::memcmp(&d1, &d2, sizeof(double)), 0) << "n=" << n;
    // Reference with the documented fixed accumulator order.
    double acc[4] = {0, 0, 0, 0};
    for (std::size_t i = 0; i < (n / 4) * 4; ++i) {
      acc[i % 4] += e[i].val * x[e[i].col];
    }
    double s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (std::size_t i = (n / 4) * 4; i < n; ++i) {
      s += e[i].val * x[e[i].col];
    }
    EXPECT_EQ(d1, s);
    // Generic-stride branch (separate arrays are allowed there).
    std::vector<std::uint64_t> cols(3 * n + 1, 0);
    std::vector<double> vals(3 * n + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      cols[3 * i] = g() % xn;
      vals[3 * i] = rnd(g);
    }
    const double t1 = simd::scalar::dot_strided_f64(cols.data(), vals.data(),
                                                    3, x.data(), n);
    const double t2 =
        simd::vec::dot_strided_f64(cols.data(), vals.data(), 3, x.data(), n);
    EXPECT_EQ(std::memcmp(&t1, &t2, sizeof(double)), 0) << "n=" << n;
  }
}

TEST(SimdKernels, GatherParity) {
  Xoshiro256 g(7);
  for (std::size_t n : kSizes) {
    const std::size_t base_n = std::max<std::size_t>(n, 8);
    auto base = rand_vec(g, 2 * base_n);
    std::vector<std::uint64_t> idx(n);
    for (auto& i : idx) i = g() % base_n;
    std::vector<double> d1(n), d2(n);
    simd::scalar::gather_f64(base.data(), idx.data(), d1.data(), n);
    simd::vec::gather_f64(base.data(), idx.data(), d2.data(), n);
    EXPECT_TRUE(BitsEqual(d1, d2));
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(d1[i], base[idx[i]]);
    // Two-word-element flavor.
    std::vector<double> e1(2 * n), e2(2 * n);
    simd::scalar::gather_2f64(base.data(), idx.data(), e1.data(), n);
    simd::vec::gather_2f64(base.data(), idx.data(), e2.data(), n);
    EXPECT_TRUE(BitsEqual(e1, e2));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(e1[2 * i], base[2 * idx[i]]);
      EXPECT_EQ(e1[2 * i + 1], base[2 * idx[i] + 1]);
    }
  }
}

TEST(SimdKernels, ModeSwitchesDispatch) {
  {
    simd::ScopedMode m(simd::Mode::kScalar);
    EXPECT_FALSE(simd::vector_active());
    EXPECT_TRUE(simd::use_kernels());
    EXPECT_EQ(simd::lane_width(), 1u);
    EXPECT_STREQ(simd::active_isa(), "scalar");
  }
  {
    simd::ScopedMode m(simd::Mode::kGeneric);
    EXPECT_FALSE(simd::use_kernels());
    EXPECT_FALSE(simd::vector_active());
  }
  {
    simd::ScopedMode m(simd::Mode::kAuto);
    // Whatever the host supports, the accessors must be consistent.
    if (simd::vector_active()) {
      EXPECT_TRUE(simd::kSimdCompiledIn);
      EXPECT_TRUE(simd::vec::available());
      EXPECT_EQ(simd::lane_width(), simd::kMaxLaneWords);
    } else {
      EXPECT_EQ(simd::lane_width(), 1u);
    }
  }
}

// ---------------------------------------------------------------------------
// Mode-identity goldens: native algorithm results across kernel modes.
// ---------------------------------------------------------------------------

template <class F>
auto with_mode(simd::Mode m, F&& f) {
  simd::ScopedMode sm(m);
  return f();
}

// Expect bitwise identity across all three modes (kernels preserve both the
// arithmetic and its order relative to the generic loops).
template <class F>
void expect_all_modes_identical(F&& f) {
  const auto a = with_mode(simd::Mode::kAuto, f);
  const auto s = with_mode(simd::Mode::kScalar, f);
  const auto n = with_mode(simd::Mode::kGeneric, f);
  EXPECT_TRUE(BitsEqual(a, s)) << "kAuto vs kScalar";
  EXPECT_TRUE(BitsEqual(a, n)) << "kAuto vs kGeneric";
}

TEST(SimdGolden, PrefixSumAndReduce) {
  expect_all_modes_identical([] {
    sched::NativeExecutor ex(4);
    auto buf = ex.make_buf<double>(1001);
    Xoshiro256 g(11);
    for (auto& v : buf.raw()) v = rnd(g);
    algo::mo_prefix_sum(ex, buf.ref());
    return buf.raw();
  });
  expect_all_modes_identical([] {
    sched::NativeExecutor ex(4);
    auto buf = ex.make_buf<std::uint64_t>(777);
    Xoshiro256 g(12);
    for (auto& v : buf.raw()) v = g() >> 32;
    algo::mo_prefix_sum(ex, buf.ref());
    return buf.raw();
  });
  expect_all_modes_identical([] {
    sched::NativeExecutor ex(4);
    auto buf = ex.make_buf<double>(513);
    Xoshiro256 g(13);
    for (auto& v : buf.raw()) v = rnd(g);
    const double r = algo::mo_reduce(ex, buf.ref(), algo::AddOp<double>{});
    return std::vector<double>{r};
  });
}

TEST(SimdGolden, TransposeDoubleAndComplex) {
  expect_all_modes_identical([] {
    const std::uint64_t n = 64;
    sched::NativeExecutor ex(4);
    auto a = ex.make_buf<double>(n * n);
    auto out = ex.make_buf<double>(n * n);
    Xoshiro256 g(21);
    for (auto& v : a.raw()) v = rnd(g);
    algo::mo_transpose(ex, a.ref(), out.ref(), n);
    return out.raw();
  });
  expect_all_modes_identical([] {
    const std::uint64_t n = 32;
    sched::NativeExecutor ex(4);
    auto a = ex.make_buf<std::complex<double>>(n * n);
    Xoshiro256 g(22);
    for (auto& v : a.raw()) v = {rnd(g), rnd(g)};
    auto m = sched::MatView<decltype(a.ref())>::full(a.ref(), n, n);
    algo::mo_transpose_inplace(ex, m);
    std::vector<double> flat(2 * n * n);
    std::memcpy(flat.data(), a.raw().data(), flat.size() * sizeof(double));
    return flat;
  });
}

TEST(SimdGolden, FftBothPaths) {
  expect_all_modes_identical([] {
    const std::uint64_t n = 256;
    sched::NativeExecutor ex(4);
    auto x = ex.make_buf<algo::cplx>(n);
    Xoshiro256 g(31);
    for (auto& v : x.raw()) v = {rnd(g), rnd(g)};
    algo::mo_fft(ex, x.ref());
    std::vector<double> flat(2 * n);
    std::memcpy(flat.data(), x.raw().data(), flat.size() * sizeof(double));
    return flat;
  });
  expect_all_modes_identical([] {
    const std::uint64_t n = 256;
    sched::NativeExecutor ex(4);
    auto x = ex.make_buf<algo::cplx>(n);
    Xoshiro256 g(32);
    for (auto& v : x.raw()) v = {rnd(g), rnd(g)};
    algo::iterative_fft(ex, x.ref());
    std::vector<double> flat(2 * n);
    std::memcpy(flat.data(), x.raw().data(), flat.size() * sizeof(double));
    return flat;
  });
}

TEST(SimdGolden, SortWithDuplicates) {
  expect_all_modes_identical([] {
    sched::NativeExecutor ex(4);
    auto v = ex.make_buf<double>(3000);
    Xoshiro256 g(41);
    for (auto& x : v.raw()) x = static_cast<double>(g() % 97);  // heavy dups
    algo::spms_sort(ex, v.ref());
    return v.raw();
  });
}

TEST(SimdGolden, GepInstancesAndMatmul) {
  expect_all_modes_identical([] {
    const std::uint64_t n = 32;
    sched::NativeExecutor ex(4);
    auto x = ex.make_buf<double>(n * n);
    Xoshiro256 g(51);
    for (auto& v : x.raw()) v = std::abs(rnd(g)) + 0.01;
    auto m = sched::MatView<decltype(x.ref())>::full(x.ref(), n, n);
    algo::igep<algo::FloydWarshallInstance>(ex, m);
    return x.raw();
  });
  expect_all_modes_identical([] {
    const std::uint64_t n = 32;
    sched::NativeExecutor ex(4);
    auto x = ex.make_buf<double>(n * n);
    Xoshiro256 g(52);
    for (std::uint64_t i = 0; i < n; ++i) {
      for (std::uint64_t j = 0; j < n; ++j) {
        x.raw()[i * n + j] = rnd(g) + (i == j ? 2.0 * n : 0.0);  // dominant
      }
    }
    auto m = sched::MatView<decltype(x.ref())>::full(x.ref(), n, n);
    algo::igep<algo::GaussianInstance>(ex, m);
    return x.raw();
  });
  expect_all_modes_identical([] {
    const std::uint64_t half = 16, n = 2 * half;
    sched::NativeExecutor ex(4);
    auto x = ex.make_buf<double>(n * n);
    Xoshiro256 g(53);
    for (auto& v : x.raw()) v = rnd(g);
    algo::MatMulEmbedInstance::half = half;
    auto m = sched::MatView<decltype(x.ref())>::full(x.ref(), n, n);
    algo::igep<algo::MatMulEmbedInstance>(ex, m);
    return x.raw();
  });
  expect_all_modes_identical([] {
    const std::uint64_t n = 32;
    sched::NativeExecutor ex(4);
    auto c = ex.make_buf<double>(n * n);
    auto a = ex.make_buf<double>(n * n);
    auto b = ex.make_buf<double>(n * n);
    Xoshiro256 g(54);
    for (auto& v : a.raw()) v = rnd(g);
    for (auto& v : b.raw()) v = rnd(g);
    using Ref = decltype(c.ref());
    algo::mo_matmul(ex, sched::MatView<Ref>::full(c.ref(), n, n),
                    sched::MatView<Ref>::full(a.ref(), n, n),
                    sched::MatView<Ref>::full(b.ref(), n, n));
    return c.raw();
  });
}

TEST(SimdGolden, NgepHostPath) {
  expect_all_modes_identical([] {
    const std::uint64_t n = 16;
    std::vector<double> x(n * n);
    Xoshiro256 g(61);
    for (auto& v : x) v = std::abs(rnd(g)) + 0.01;
    no::NoMachine mach(16, {{16, 4}});
    no::n_gep<algo::FloydWarshallInstance>(mach, x, n, /*use_dstar=*/true);
    return x;
  });
}

TEST(SimdGolden, SpmdvKernelModesMatchAndGenericClose) {
  auto run = [](simd::Mode mode) {
    simd::ScopedMode sm(mode);
    const auto a = algo::grid_matrix(16);
    sched::NativeExecutor ex(4);
    auto av = ex.make_buf<algo::SpmEntry>(a.nnz());
    auto a0 = ex.make_buf<std::uint64_t>(a.n + 1);
    auto xv = ex.make_buf<double>(a.n);
    auto yv = ex.make_buf<double>(a.n);
    av.raw() = a.av;
    a0.raw() = a.a0;
    Xoshiro256 g(71);
    for (auto& v : xv.raw()) v = rnd(g);
    algo::mo_spmdv(ex, av.ref(), a0.ref(), xv.ref(), yv.ref());
    return yv.raw();
  };
  const auto au = run(simd::Mode::kAuto);
  const auto sc = run(simd::Mode::kScalar);
  const auto ge = run(simd::Mode::kGeneric);
  // The strided-dot kernel shares one fixed reduction order between its
  // scalar and vector paths (bitwise identity), but that order differs from
  // the generic serial loop -- same values up to FP reassociation.
  EXPECT_TRUE(BitsEqual(au, sc));
  ASSERT_EQ(au.size(), ge.size());
  for (std::size_t i = 0; i < au.size(); ++i) {
    EXPECT_NEAR(au[i], ge[i], 1e-12) << i;
  }
}

}  // namespace
}  // namespace obliv
