// Parity fuzz for the sharded cache-simulation engine (hm/psim.hpp).
//
// The engine's claim is bit-exact determinism: for ANY access stream and
// ANY epoch partition, the sharded replay produces byte-identical
// per-level counters -- and, with a tracer attached, a byte-identical obs
// event stream -- versus the serial oracle.  This harness fuzzes exactly
// that claim:
//
//   * every HM workload (scan, transpose, FFT, sort, I-GEP, list ranking,
//     SpM-DV -- N-GEP runs on the NO accounting machine and produces no
//     cache-sim stream, so SpM-DV stands in as the seventh algorithm)
//     under serial vs sharded policies,
//   * randomized epoch boundaries: fuzzed epoch grains plus a synthetic
//     workload that issues random nested SB/CGC anchoring sequences with
//     cross-core read/write sharing (driven by FaultPlan's splitmix64
//     stream for reproducibility),
//   * the multi-threaded engine itself (4 workers regardless of host core
//     count) on captured multi-core traces, covering the conflict
//     analysis, parallel shard replay, and epoch-ordered merge,
//   * byte-identical Chrome-trace exports with a tracer attached.
//
// Reproduce a failing round with OBLIV_PSIM_SEED=<n> (printed in the
// failure message): the harness then fuzzes only that seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "algo/fft.hpp"
#include "algo/gep.hpp"
#include "algo/graphgen.hpp"
#include "algo/listrank.hpp"
#include "algo/scan.hpp"
#include "algo/sort.hpp"
#include "algo/spmdv.hpp"
#include "algo/transpose.hpp"
#include "fault/fault.hpp"
#include "hm/cache_sim.hpp"
#include "hm/config.hpp"
#include "hm/psim.hpp"
#include "hm/trace.hpp"
#include "obs/trace.hpp"
#include "sched/sim_executor.hpp"
#include "sched/views.hpp"
#include "util/rng.hpp"

namespace {

using namespace obliv;  // NOLINT

constexpr int kFuzzRounds = 6;

/// The seed sweep: OBLIV_PSIM_SEED=<n> narrows the harness to one seed for
/// reproduction; otherwise a fixed arithmetic family.
std::vector<std::uint64_t> fuzz_seeds() {
  const std::uint64_t base = 0x9519f00dull;
  if (hm::psim_seed_from_env(0) != 0) {
    return {hm::psim_seed_from_env(0)};
  }
  std::vector<std::uint64_t> v;
  for (int i = 0; i < kFuzzRounds; ++i) {
    v.push_back(base + 1000003ull * static_cast<std::uint64_t>(i));
  }
  return v;
}

std::string repro(std::uint64_t seed) {
  return "serial/sharded parity violated under seed " + std::to_string(seed) +
         "; reproduce with OBLIV_PSIM_SEED=" + std::to_string(seed) +
         " ./obliv_tests --gtest_filter='PsimFuzz.*'";
}

// ---------------------------------------------------------------------------
// Workloads (bodies mirror test_fault_fuzz's sizes and seeds)
// ---------------------------------------------------------------------------

using WorkloadFn = void (*)(sched::SimExecutor&);

void wl_scan(sched::SimExecutor& ex) {
  const std::size_t n = 4096;
  auto buf = ex.make_buf<std::int64_t>(n);
  for (std::size_t i = 0; i < n; ++i) buf.raw()[i] = std::int64_t(i % 97);
  ex.run(2 * n, [&] { algo::mo_prefix_sum(ex, buf.ref()); });
}

void wl_transpose(sched::SimExecutor& ex) {
  const std::uint64_t n = 32;
  auto a = ex.make_buf<double>(n * n);
  auto out = ex.make_buf<double>(n * n);
  for (std::size_t i = 0; i < n * n; ++i) a.raw()[i] = double(i);
  ex.run(3 * n * n, [&] { algo::mo_transpose(ex, a.ref(), out.ref(), n); });
}

void wl_fft(sched::SimExecutor& ex) {
  const std::size_t n = 256;
  auto buf = ex.make_buf<algo::cplx>(n);
  util::Xoshiro256 rng(4242);
  for (auto& v : buf.raw()) v = algo::cplx(rng.uniform(), rng.uniform());
  ex.run(4 * n, [&] { algo::mo_fft(ex, buf.ref()); });
}

void wl_sort(sched::SimExecutor& ex) {
  const std::size_t n = 1024;
  auto buf = ex.make_buf<std::uint64_t>(n);
  util::Xoshiro256 rng(777);
  for (auto& v : buf.raw()) v = rng();
  ex.run(4 * n, [&] { algo::spms_sort(ex, buf.ref()); });
}

void wl_gep(sched::SimExecutor& ex) {
  const std::uint64_t n = 24;
  auto buf = ex.make_buf<double>(n * n);
  util::Xoshiro256 rng(999);
  for (auto& v : buf.raw()) v = rng.uniform();
  using Mat = sched::MatView<sched::SimRef<double>>;
  ex.run(n * n, [&] {
    algo::igep<algo::FloydWarshallInstance>(ex, Mat::full(buf.ref(), n, n));
  });
}

void wl_listrank(sched::SimExecutor& ex) {
  const std::uint64_t n = 512;
  std::vector<std::uint64_t> perm(n);
  for (std::uint64_t i = 0; i < n; ++i) perm[i] = i;
  util::Xoshiro256 rng(31337);
  for (std::uint64_t i = n - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng() % (i + 1)]);
  }
  auto sb = ex.make_buf<std::uint64_t>(n);
  auto pb = ex.make_buf<std::uint64_t>(n);
  auto db = ex.make_buf<std::uint64_t>(n);
  sb.raw().assign(n, algo::kNil);
  pb.raw().assign(n, algo::kNil);
  for (std::uint64_t t = 0; t + 1 < n; ++t) {
    sb.raw()[perm[t]] = perm[t + 1];
    pb.raw()[perm[t + 1]] = perm[t];
  }
  ex.run(8 * n, [&] { algo::mo_list_rank(ex, sb.ref(), pb.ref(), db.ref()); });
}

void wl_spmdv(sched::SimExecutor& ex) {
  const algo::SparseMatrix a = algo::grid_matrix(8);
  auto av = ex.make_buf<algo::SpmEntry>(a.nnz());
  auto a0 = ex.make_buf<std::uint64_t>(a.n + 1);
  auto xv = ex.make_buf<double>(a.n);
  auto yv = ex.make_buf<double>(a.n);
  av.raw() = a.av;
  a0.raw() = a.a0;
  util::Xoshiro256 rng(2024);
  for (auto& v : xv.raw()) v = rng.uniform();
  ex.run(4 * a.n, [&] {
    algo::mo_spmdv(ex, av.ref(), a0.ref(), xv.ref(), yv.ref());
  });
}

struct Workload {
  const char* name;
  WorkloadFn fn;
};

const Workload kWorkloads[] = {
    {"scan", wl_scan},     {"transpose", wl_transpose}, {"fft", wl_fft},
    {"sort", wl_sort},     {"igep", wl_gep},            {"listrank", wl_listrank},
    {"spmdv", wl_spmdv},
};

/// Every observable simulator metric of one run, flattened: per-cache full
/// counters (hits/misses/evictions/invalidations), pingpong, accesses,
/// work, span.  Stricter than golden::flatten (per-cache, hits included).
std::vector<std::uint64_t> run_flattened(const hm::MachineConfig& cfg,
                                         hm::PsimMode mode,
                                         std::uint64_t grain,
                                         WorkloadFn fn) {
  sched::SimPolicy pol;
  pol.psim = mode;
  pol.psim_epoch_grain = grain;
  sched::SimExecutor ex(cfg, pol);
  fn(ex);
  std::vector<std::uint64_t> out;
  const hm::CacheSim& sim = ex.cache_sim();
  for (std::uint32_t lvl = 1; lvl <= cfg.cache_levels(); ++lvl) {
    for (std::uint32_t i = 0; i < cfg.caches_at(lvl); ++i) {
      const hm::CacheCounters& c = ex.cache_sim().counters(lvl, i);
      out.push_back(c.hits);
      out.push_back(c.misses);
      out.push_back(c.evictions);
      out.push_back(c.invalidations);
    }
  }
  out.push_back(sim.pingpong_events());
  out.push_back(sim.total_accesses());
  out.push_back(ex.work());
  out.push_back(ex.span());
  return out;
}

// ---------------------------------------------------------------------------
// Policy-level parity: serial vs sharded executor runs
// ---------------------------------------------------------------------------

TEST(PsimFuzz, CountersMatchSerialOracleAllAlgorithms) {
  for (const hm::MachineConfig& cfg :
       {hm::MachineConfig::shared_l2(4), hm::MachineConfig::figure1()}) {
    for (const Workload& w : kWorkloads) {
      const auto serial =
          run_flattened(cfg, hm::PsimMode::kSerial, 0, w.fn);
      const auto sharded =
          run_flattened(cfg, hm::PsimMode::kSharded, 0, w.fn);
      EXPECT_EQ(serial, sharded)
          << w.name << " on " << cfg.name()
          << ": sharded counters diverge from the serial oracle";
    }
  }
}

TEST(PsimFuzz, RandomEpochGrains) {
  const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);
  // Serial baselines are mode- and seed-independent: compute them once.
  std::vector<std::vector<std::uint64_t>> baselines;
  for (const Workload& w : kWorkloads) {
    baselines.push_back(run_flattened(cfg, hm::PsimMode::kSerial, 0, w.fn));
  }
  for (const std::uint64_t seed : fuzz_seeds()) {
    fault::FaultPlan plan(seed, fault::FaultOptions{});
    for (std::size_t wi = 0; wi < std::size(kWorkloads); ++wi) {
      // Tiny grains force many epochs and mid-construct hard-cap cuts.
      const std::uint64_t grain =
          1 + plan.pick(fault::InjectSite::kStealVictim, 513);
      const auto sharded =
          run_flattened(cfg, hm::PsimMode::kSharded, grain, kWorkloads[wi].fn);
      EXPECT_EQ(baselines[wi], sharded)
          << kWorkloads[wi].name << " with epoch grain " << grain << ": "
          << repro(seed);
    }
  }
}

// ---------------------------------------------------------------------------
// Random anchoring sequences: synthetic nested SB/CGC constructs with
// cross-core read/write sharing (exercises conflict detection + fallback)
// ---------------------------------------------------------------------------

void random_constructs(sched::SimExecutor& ex, sched::SimRef<std::uint64_t> v,
                       fault::FaultPlan& plan, int depth) {
  const auto site = fault::InjectSite::kPopOrder;
  const std::uint64_t n = v.size();
  if (depth >= 3 || n < 32) {
    // Leaf: a mix of strided reads, writes, and batched runs.
    for (std::uint64_t i = 0; i < n; i += 1 + plan.pick(site, 4)) {
      if (plan.pick(site, 2) == 0) {
        v.store(i, v.load(i) + i);
      } else {
        v.load(i);
      }
    }
    return;
  }
  switch (plan.pick(site, 4)) {
    case 0:
      ex.cgc_pfor(0, n, 1, [&](std::uint64_t a, std::uint64_t b) {
        for (std::uint64_t i = a; i < b; ++i) v.update(i, [](auto& x) { ++x; });
      });
      break;
    case 1:
      ex.sb_parallel2(
          n / 2, [&] { random_constructs(ex, v.slice(0, n / 2), plan, depth + 1); },
          n - n / 2,
          [&] { random_constructs(ex, v.slice(n / 2, n - n / 2), plan, depth + 1); });
      break;
    case 2:
      ex.sb_seq(n, [&] { random_constructs(ex, v, plan, depth + 1); });
      break;
    default: {
      const std::uint64_t parts = 2 + plan.pick(site, 3);
      const std::uint64_t per = (n + parts - 1) / parts;
      ex.cgc_sb_pfor(parts, per, [&](std::uint64_t k) {
        const std::uint64_t lo = k * per;
        if (lo >= n) return;
        random_constructs(ex, v.slice(lo, std::min(per, n - lo)), plan,
                          depth + 1);
      });
      break;
    }
  }
  // Cross-core sharing pressure: after the parallel construct, touch a
  // shared prefix (reads) and a few scattered writes, so consecutive
  // epochs see stale sharers and write conflicts (fallback coverage).
  for (std::uint64_t i = 0; i < std::min<std::uint64_t>(n, 16); ++i) {
    if (plan.pick(site, 3) == 0) {
      v.store(i, i);
    } else {
      v.load(i);
    }
  }
}

TEST(PsimFuzz, RandomAnchoringSequences) {
  const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);
  for (const std::uint64_t seed : fuzz_seeds()) {
    auto run = [&](hm::PsimMode mode, std::uint64_t grain) {
      // Same derived stream both runs: the workload itself must be
      // identical; only the engine differs.
      fault::FaultPlan plan(seed, fault::FaultOptions{});
      sched::SimPolicy pol;
      pol.psim = mode;
      pol.psim_epoch_grain = grain;
      sched::SimExecutor ex(cfg, pol);
      auto buf = ex.make_buf<std::uint64_t>(2048);
      for (std::size_t i = 0; i < buf.size(); ++i) buf.raw()[i] = i;
      ex.run(2 * 2048,
             [&] { random_constructs(ex, buf.ref(), plan, 0); });
      std::vector<std::uint64_t> out;
      for (std::uint32_t lvl = 1; lvl <= cfg.cache_levels(); ++lvl) {
        for (std::uint32_t i = 0; i < cfg.caches_at(lvl); ++i) {
          const hm::CacheCounters& c = ex.cache_sim().counters(lvl, i);
          out.insert(out.end(),
                     {c.hits, c.misses, c.evictions, c.invalidations});
        }
      }
      out.push_back(ex.cache_sim().pingpong_events());
      out.push_back(ex.cache_sim().total_accesses());
      out.push_back(ex.work());
      out.push_back(ex.span());
      return out;
    };
    fault::FaultPlan gplan(seed ^ 0xabcdull, fault::FaultOptions{});
    const std::uint64_t grain =
        1 + gplan.pick(fault::InjectSite::kStealVictim, 257);
    EXPECT_EQ(run(hm::PsimMode::kSerial, 0), run(hm::PsimMode::kSharded, grain))
        << repro(seed) << " (grain " << grain << ")";
  }
}

// ---------------------------------------------------------------------------
// Engine-level parity at 4 worker threads (forced, regardless of host):
// covers conflict analysis, concurrent shard replay, and the merge
// ---------------------------------------------------------------------------

void compare_sims(const hm::MachineConfig& cfg, const hm::CacheSim& a,
                  const hm::CacheSim& b, const std::string& what) {
  for (std::uint32_t lvl = 1; lvl <= cfg.cache_levels(); ++lvl) {
    for (std::uint32_t i = 0; i < cfg.caches_at(lvl); ++i) {
      const hm::CacheCounters& ca = a.counters(lvl, i);
      const hm::CacheCounters& cb = b.counters(lvl, i);
      EXPECT_EQ(ca.hits, cb.hits) << what << " L" << lvl << "#" << i;
      EXPECT_EQ(ca.misses, cb.misses) << what << " L" << lvl << "#" << i;
      EXPECT_EQ(ca.evictions, cb.evictions) << what << " L" << lvl << "#" << i;
      EXPECT_EQ(ca.invalidations, cb.invalidations)
          << what << " L" << lvl << "#" << i;
    }
  }
  EXPECT_EQ(a.pingpong_events(), b.pingpong_events()) << what;
  EXPECT_EQ(a.total_accesses(), b.total_accesses()) << what;
}

TEST(PsimFuzz, MultiThreadedEngineMatchesOracleOnCapturedTraces) {
  const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);
  // Capture multi-core traces once, serially.
  std::vector<std::pair<const char*, std::vector<hm::TraceEntry>>> traces;
  for (const Workload& w : {kWorkloads[0], kWorkloads[1], kWorkloads[3]}) {
    sched::SimPolicy pol;
    pol.psim = hm::PsimMode::kSerial;
    sched::SimExecutor ex(cfg, pol);
    std::vector<hm::TraceEntry> t;
    ex.set_trace(&t);
    w.fn(ex);
    traces.emplace_back(w.name, std::move(t));
  }
  std::uint64_t parallel_epochs = 0;
  for (const std::uint64_t seed : fuzz_seeds()) {
    fault::FaultPlan plan(seed, fault::FaultOptions{});
    for (const auto& [name, t] : traces) {
      const std::size_t epoch =
          1 + plan.pick(fault::InjectSite::kStealVictim, 1023);
      hm::CacheSim serial(cfg);
      for (const hm::TraceEntry& e : t) {
        serial.access(e.core, e.addr, e.words, e.write != 0);
      }
      hm::CacheSim sharded_sim(cfg);
      hm::ShardedCacheSim engine(sharded_sim, /*threads=*/4);
      ASSERT_EQ(engine.threads(), 4u);
      engine.replay(t.data(), t.size(), epoch);
      compare_sims(cfg, serial, sharded_sim,
                   std::string(name) + " epoch=" + std::to_string(epoch) +
                       " " + repro(seed));
      EXPECT_GT(engine.epochs(), 0u);
      parallel_epochs += engine.epochs() - engine.fallback_epochs();
    }
  }
  // The parallel shard/merge path must actually have run -- if every epoch
  // fell back to serial, the parity above would be vacuously true.
  EXPECT_GT(parallel_epochs, 0u)
      << "no conflict-free epoch took the parallel path";
}

// ---------------------------------------------------------------------------
// obs parity: the Chrome trace export must be byte-identical
// ---------------------------------------------------------------------------

TEST(PsimFuzz, ObsTraceExportByteIdentical) {
  const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);
  for (const Workload& w : {kWorkloads[0], kWorkloads[3], kWorkloads[4]}) {
    auto trace_of = [&](hm::PsimMode mode, std::uint64_t grain) {
      sched::SimPolicy pol;
      pol.psim = mode;
      pol.psim_epoch_grain = grain;
      sched::SimExecutor ex(cfg, pol);
      obs::Tracer tracer;
      ex.set_tracer(&tracer);
      w.fn(ex);
      return obs::chrome_trace_json(tracer);
    };
    const std::string serial = trace_of(hm::PsimMode::kSerial, 0);
    // Two grains: default (few epochs) and tiny (many epochs + hard caps).
    EXPECT_EQ(serial, trace_of(hm::PsimMode::kSharded, 0))
        << w.name << ": sharded trace diverges (default grain)";
    EXPECT_EQ(serial, trace_of(hm::PsimMode::kSharded, 64))
        << w.name << ": sharded trace diverges (grain 64)";
  }
}

}  // namespace
