// Schedule-fuzz harness: the headline test of the fault-injection layer.
//
// The paper's algorithms are *oblivious*: their results (and, on the HM
// simulator, their cache-miss counters) are properties of the algorithm and
// the machine, not of the schedule.  This harness turns that into an
// executable claim -- for N seeded fault plans it runs every algorithm
// (scan, transpose, FFT, sort, I-GEP, list ranking, N-GEP) under
// adversarial scheduling chaos (perturbed steal victims, inverted pop
// order, worker stalls, dropped wake-ups) and asserts the output is
// bit-identical to the fault-free run; on the simulator it additionally
// asserts every observable counter (per-level misses, evictions,
// invalidations, ping-pongs, work, span) is unchanged with a fault plan
// attached.
//
// Reproduce a failing seed with OBLIV_FAULT_SEED=<n> (printed in the
// failure message): the harness then fuzzes only that seed.
//
// The file also carries the rest of the robustness suite: FaultPlan
// determinism, typed-error negative tests for every public make() entry
// point (no assert/abort reachable from hostile input), hostile-config
// fuzz, injected allocation-failure storms, and the crash-trace
// post-mortem golden (byte-deterministic flush) + fatal-signal tests.
#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <complex>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "algo/fft.hpp"
#include "algo/gep.hpp"
#include "algo/listrank.hpp"
#include "algo/scan.hpp"
#include "algo/sort.hpp"
#include "algo/transpose.hpp"
#include "fault/crash_dump.hpp"
#include "fault/fault.hpp"
#include "fault/status.hpp"
#include "golden_workloads.hpp"
#include "hm/cache_sim.hpp"
#include "hm/config.hpp"
#include "no/machine.hpp"
#include "no/ngep.hpp"
#include "sched/native_executor.hpp"
#include "sched/sim_executor.hpp"
#include "sched/views.hpp"
#include "util/rng.hpp"

namespace {

using namespace obliv;  // NOLINT

// ---------------------------------------------------------------------------
// Seeds
// ---------------------------------------------------------------------------

constexpr int kFuzzSeeds = 32;

/// The seed sweep: OBLIV_FAULT_SEED=<n> narrows the whole harness to one
/// seed for reproduction; otherwise a fixed arithmetic family of
/// kFuzzSeeds seeds.
std::vector<std::uint64_t> fuzz_seeds() {
  if (auto s = fault::seed_from_env()) return {*s};
  std::vector<std::uint64_t> v;
  v.reserve(kFuzzSeeds);
  for (int i = 0; i < kFuzzSeeds; ++i) {
    v.push_back(0xf001f001ull + 1000003ull * static_cast<std::uint64_t>(i));
  }
  return v;
}

/// Failure annotation: how to re-run exactly this case.
std::string repro(std::uint64_t seed) {
  return "schedule-oblivious result violated under fault seed " +
         std::to_string(seed) + "; reproduce with OBLIV_FAULT_SEED=" +
         std::to_string(seed) +
         " ./obliv_tests --gtest_filter='FaultFuzz.*'";
}

// ---------------------------------------------------------------------------
// Native fuzz: results must be bit-identical under any chaos schedule
// ---------------------------------------------------------------------------

/// Runs `workload` on a fresh 4-worker work-stealing executor with `plan`
/// attached (nullptr = fault-free reference).  A small grain forces real
/// forking even at fuzz-sized inputs.
template <class Workload>
auto run_native(fault::FaultPlan* plan, Workload&& workload) {
  sched::NativeExecutor ex(4, /*sequential_grain_words=*/128,
                           sched::SchedMode::kWorkSteal);
  ex.set_fault_plan(plan);
  auto out = workload(ex);
  ex.set_fault_plan(nullptr);
  return out;
}

/// The fuzz loop shared by all native algorithm tests: baseline without a
/// plan, then every seed under full chaos, asserting bit-identical output.
template <class Workload>
void fuzz_native(Workload&& workload) {
  if (!fault::kFaultsCompiledIn) {
    GTEST_SKIP() << "fault injection compiled out (OBLIV_FAULTS=OFF)";
  }
  const auto baseline = run_native(nullptr, workload);
  for (const std::uint64_t seed : fuzz_seeds()) {
    fault::FaultPlan plan(seed, fault::FaultOptions::chaos());
    const auto out = run_native(&plan, workload);
    ASSERT_EQ(baseline, out) << repro(seed);
    // The plan must actually have been consulted -- a silent disconnect
    // would make this whole harness vacuous.
    EXPECT_GT(plan.decisions(), 0u) << "fault plan was never consulted";
  }
}

TEST(FaultFuzz, NativeScan) {
  fuzz_native([](sched::NativeExecutor& ex) {
    const std::size_t n = 4096;
    auto buf = ex.make_buf<std::int64_t>(n);
    for (std::size_t i = 0; i < n; ++i) {
      buf.raw()[i] = static_cast<std::int64_t>(i % 97) - 11;
    }
    algo::mo_prefix_sum(ex, buf.ref());
    return buf.raw();
  });
}

TEST(FaultFuzz, NativeTranspose) {
  fuzz_native([](sched::NativeExecutor& ex) {
    const std::uint64_t n = 64;  // MO-MT's Morton map needs a power of two
    auto a = ex.make_buf<double>(n * n);
    auto out = ex.make_buf<double>(n * n);
    for (std::size_t i = 0; i < n * n; ++i) {
      a.raw()[i] = static_cast<double>(i) * 0.5 - 3.0;
    }
    algo::mo_transpose(ex, a.ref(), out.ref(), n);
    return out.raw();
  });
}

TEST(FaultFuzz, NativeFft) {
  fuzz_native([](sched::NativeExecutor& ex) {
    const std::size_t n = 256;
    auto buf = ex.make_buf<algo::cplx>(n);
    util::Xoshiro256 rng(4242);
    for (auto& v : buf.raw()) v = algo::cplx(rng.uniform(), rng.uniform());
    algo::mo_fft(ex, buf.ref());
    // Bit-identical complex doubles: every output element's arithmetic DAG
    // is fixed by the algorithm, so even floating point must match exactly.
    return buf.raw();
  });
}

TEST(FaultFuzz, NativeSort) {
  fuzz_native([](sched::NativeExecutor& ex) {
    const std::size_t n = 2048;
    auto buf = ex.make_buf<std::uint64_t>(n);
    util::Xoshiro256 rng(777);
    for (auto& v : buf.raw()) v = rng();
    algo::spms_sort(ex, buf.ref());
    return buf.raw();
  });
}

TEST(FaultFuzz, NativeGep) {
  fuzz_native([](sched::NativeExecutor& ex) {
    const std::uint64_t n = 24;
    auto buf = ex.make_buf<double>(n * n);
    util::Xoshiro256 rng(999);
    for (auto& v : buf.raw()) v = rng.uniform();
    using Mat = sched::MatView<sched::NatRef<double>>;
    algo::igep<algo::FloydWarshallInstance>(ex, Mat::full(buf.ref(), n, n));
    return buf.raw();
  });
}

TEST(FaultFuzz, NativeListRank) {
  fuzz_native([](sched::NativeExecutor& ex) {
    const std::uint64_t n = 512;
    // A list in scrambled memory order (the interesting case for MO-LR).
    std::vector<std::uint64_t> perm(n);
    for (std::uint64_t i = 0; i < n; ++i) perm[i] = i;
    util::Xoshiro256 rng(31337);
    for (std::uint64_t i = n - 1; i > 0; --i) {
      std::swap(perm[i], perm[rng() % (i + 1)]);
    }
    auto sb = ex.make_buf<std::uint64_t>(n);
    auto pb = ex.make_buf<std::uint64_t>(n);
    auto db = ex.make_buf<std::uint64_t>(n);
    sb.raw().assign(n, algo::kNil);
    pb.raw().assign(n, algo::kNil);
    for (std::uint64_t t = 0; t + 1 < n; ++t) {
      sb.raw()[perm[t]] = perm[t + 1];
      pb.raw()[perm[t + 1]] = perm[t];
    }
    algo::mo_list_rank(ex, sb.ref(), pb.ref(), db.ref());
    return db.raw();
  });
}

// ---------------------------------------------------------------------------
// N-GEP: the NO accounting engine must be fault-layer transparent
// ---------------------------------------------------------------------------

TEST(FaultFuzz, NGepInvariantUnderAttachedPlan) {
  if (!fault::kFaultsCompiledIn) {
    GTEST_SKIP() << "fault injection compiled out (OBLIV_FAULTS=OFF)";
  }
  const std::uint64_t n = 16;
  auto run = [n]() {
    util::Xoshiro256 rng(555);
    std::vector<double> x(n * n);
    for (auto& v : x) v = rng.uniform();
    no::NoMachine mach(16, {{16, 4}, {4, 2}});
    no::n_gep<algo::FloydWarshallInstance>(mach, x, n, /*use_dstar=*/true);
    return std::tuple(x, mach.communication(0), mach.communication(1),
                      mach.computation(0), mach.supersteps());
  };
  const auto baseline = run();
  for (const std::uint64_t seed : fuzz_seeds()) {
    // chaos() keeps allocation probabilities at zero, so an attached global
    // plan must be a pure pass-through: identical result *and* identical
    // accounting (communication/computation/superstep counts).
    fault::FaultPlan plan(seed, fault::FaultOptions::chaos());
    fault::ScopedFaultPlan scope(&plan);
    ASSERT_EQ(baseline, run()) << repro(seed);
  }
}

// ---------------------------------------------------------------------------
// Simulator: miss counters must be unchanged with a fault plan attached
// ---------------------------------------------------------------------------

TEST(FaultFuzz, SimCountersInvariantUnderAttachedPlan) {
  if (!fault::kFaultsCompiledIn) {
    GTEST_SKIP() << "fault injection compiled out (OBLIV_FAULTS=OFF)";
  }
  const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);
  auto sweep = [&cfg]() {
    std::vector<std::uint64_t> flat;
    auto push = [&flat](const golden::GoldenRun& g) {
      flat.insert(flat.end(), g.counts.begin(), g.counts.end());
    };
    push(golden::run_scan(cfg, 1024));
    push(golden::run_transpose(cfg, 32));
    push(golden::run_sort(cfg, 512));
    push(golden::run_gep(cfg, 16));
    // FFT on the simulator (not part of the golden sweep).
    sched::SimExecutor ex(cfg);
    auto buf = ex.make_buf<algo::cplx>(256);
    util::Xoshiro256 rng(8080);
    for (auto& v : buf.raw()) v = algo::cplx(rng.uniform(), rng.uniform());
    const auto m = ex.run(4 * 256, [&] { algo::mo_fft(ex, buf.ref()); });
    golden::flatten(ex, m, flat);
    return flat;
  };
  const auto baseline = sweep();
  for (const std::uint64_t seed : fuzz_seeds()) {
    fault::FaultPlan plan(seed, fault::FaultOptions::chaos());
    fault::ScopedFaultPlan scope(&plan);
    ASSERT_EQ(baseline, sweep())
        << "simulator counters changed with a fault plan attached; " +
               repro(seed);
  }
}

// ---------------------------------------------------------------------------
// FaultPlan determinism
// ---------------------------------------------------------------------------

TEST(FaultFuzz, PlanDecisionStreamIsAPureFunctionOfTheSeed) {
  auto stream = [](std::uint64_t seed) {
    fault::FaultPlan p(seed, fault::FaultOptions::chaos());
    std::vector<std::uint64_t> out;
    for (int i = 0; i < 256; ++i) {
      out.push_back(p.should(fault::InjectSite::kStealVictim) ? 1 : 0);
      out.push_back(p.pick(fault::InjectSite::kStealVictim, 7));
      out.push_back(p.should(fault::InjectSite::kWakeDrop) ? 1 : 0);
    }
    return out;
  };
  EXPECT_EQ(stream(42), stream(42));
  EXPECT_NE(stream(42), stream(43));
}

TEST(FaultFuzz, InertPlanNeverInjectsAndNeverDraws) {
  fault::FaultPlan p(7, fault::FaultOptions::inert());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(p.should(fault::InjectSite::kWorkerStall));
  }
  // Zeroed sites early-out before the shared decision counter: an inert
  // plan costs one load + branch per hook, like the detached state (the
  // --fault-off-check guardrail depends on this).
  EXPECT_EQ(p.decisions(), 0u);
  EXPECT_EQ(p.injected_total(), 0u);
}

// ---------------------------------------------------------------------------
// Typed errors: no assert/abort reachable from hostile input
// ---------------------------------------------------------------------------

TEST(FaultTypedErrors, MachineConfigMakeRejectsWithTypedCodes) {
  // Structural violation -> kInvalidConfig.
  auto shrink = hm::MachineConfig::make(
      "shrink", {{4096, 16, 1}, {65536, 8, 4}});
  ASSERT_FALSE(shrink.ok());
  EXPECT_EQ(shrink.status().code(), ErrorCode::kInvalidConfig);

  // Implementation limit -> kUnsupported.
  auto wide = hm::MachineConfig::make(
      "wide", {{1024, 8, 1}, {1024ull << 10, 8, 128}});
  ASSERT_FALSE(wide.ok());
  EXPECT_EQ(wide.status().code(), ErrorCode::kUnsupported);

  // Valid input -> value, and the legacy ctor agrees.
  auto good = hm::MachineConfig::make("good", {{1024, 8, 1}, {16384, 8, 4}});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value().cores(), 4u);
}

TEST(FaultTypedErrors, CacheSimRejectsDefaultConstructedConfig) {
  // A default MachineConfig has no levels; before the typed-error layer
  // this was silent out-of-bounds UB inside the table setup.
  auto r = hm::CacheSim::make(hm::MachineConfig{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInvalidConfig);
  EXPECT_THROW(hm::CacheSim{hm::MachineConfig{}}, std::invalid_argument);
}

TEST(FaultTypedErrors, SimExecutorMakeMirrorsConfigValidation) {
  auto bad = sched::SimExecutor::make(hm::MachineConfig{});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::kInvalidConfig);
  auto good = sched::SimExecutor::make(hm::MachineConfig::shared_l2(4));
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value().config().cores(), 4u);
}

TEST(FaultTypedErrors, NativeExecutorMakeRejectsAbsurdThreadCounts) {
  auto r = sched::NativeExecutor::make(sched::NativeExecutor::kMaxThreads + 1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kUnsupported);
  auto ok = sched::NativeExecutor::make(2);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().threads(), 2u);
}

TEST(FaultTypedErrors, NoMachineMakeRejectsDegenerateDescriptions) {
  // Each of these was a release-mode division by zero before validation.
  EXPECT_EQ(no::NoMachine::make(0, {}).status().code(),
            ErrorCode::kInvalidConfig);
  EXPECT_EQ(no::NoMachine::make(16, {{0, 4}}).status().code(),
            ErrorCode::kInvalidConfig);
  EXPECT_EQ(no::NoMachine::make(16, {{32, 4}}).status().code(),
            ErrorCode::kInvalidConfig);
  EXPECT_EQ(no::NoMachine::make(16, {{4, 0}}).status().code(),
            ErrorCode::kInvalidConfig);
  no::DbspConfig dbsp;
  dbsp.P = 8;  // g/B left empty: inconsistent
  EXPECT_EQ(no::NoMachine::make(16, {{4, 2}}, dbsp).status().code(),
            ErrorCode::kInvalidConfig);
  EXPECT_TRUE(no::NoMachine::make(16, {{4, 2}}).ok());
}

TEST(FaultTypedErrors, HostileConfigFuzzNeverCrashes) {
  // 512 random machine descriptions, most invalid: every one must come
  // back as a value or a typed error -- never an abort, assert, or UB
  // (ASan/UBSan builds of this test are the real teeth).
  util::Xoshiro256 rng(0xdecafbad);
  int ok = 0, invalid = 0, unsupported = 0;
  for (int t = 0; t < 512; ++t) {
    const int h = 1 + static_cast<int>(rng() % 4);
    std::vector<hm::LevelSpec> levels;
    for (int i = 0; i < h; ++i) {
      hm::LevelSpec lv;
      lv.capacity_words = rng() % 3 == 0 ? rng() : rng() % 65536;
      lv.block_words = rng() % 4 == 0 ? rng() % 1024 : 1 + rng() % 64;
      lv.fanin = i == 0 && rng() % 2 ? 1
                                     : static_cast<std::uint32_t>(rng() % 70000);
      levels.push_back(lv);
    }
    auto r = hm::MachineConfig::make("fuzz", levels);
    if (r.ok()) {
      ++ok;
      // Anything accepted must be safe to simulate.  (Only build the sim
      // for modest capacities: a *valid* petabyte-scale machine is fine to
      // describe but its LRU tables don't fit this container.)
      EXPECT_LE(r.value().cores(), 64u);
      bool modest = true;
      for (const auto& lv : levels) {
        if (lv.capacity_words > (1ull << 22)) modest = false;
      }
      if (modest) {
        EXPECT_TRUE(hm::CacheSim::make(std::move(r).value()).ok());
      }
    } else if (r.status().code() == ErrorCode::kUnsupported) {
      ++unsupported;
    } else {
      EXPECT_EQ(r.status().code(), ErrorCode::kInvalidConfig);
      ++invalid;
    }
  }
  EXPECT_GT(invalid, 0);
  EXPECT_EQ(ok + invalid + unsupported, 512);
}

TEST(FaultTypedErrors, OverflowingFanoutCannotWrapThe64CoreCheck) {
  // Regression: fanins {1, 65536, 65536} wrap a 32-bit core product to 0
  // and used to slip past the > 64 rejection entirely.  Capacities chosen
  // to satisfy every structural rule so the core-count check is what fires.
  auto r = hm::MachineConfig::make(
      "wrap", {{64, 8, 1},
               {1ull << 22, 8, 65536},
               {1ull << 38, 8, 65536}});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kUnsupported)
      << r.status().to_string();
}

// ---------------------------------------------------------------------------
// Injected allocation failures surface as kResourceExhausted
// ---------------------------------------------------------------------------

TEST(FaultAllocStorm, SimulatorSurfacesInjectedAllocFailures) {
  if (!fault::kFaultsCompiledIn) {
    GTEST_SKIP() << "fault injection compiled out (OBLIV_FAULTS=OFF)";
  }
  fault::FaultPlan plan(1, fault::FaultOptions::alloc_storm());
  fault::ScopedFaultPlan scope(&plan);
  auto r = sched::SimExecutor::make(hm::MachineConfig::shared_l2(4));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_GT(plan.injected(fault::InjectSite::kAllocSim), 0u);
}

TEST(FaultAllocStorm, TryRunSurfacesBufferAllocFailures) {
  if (!fault::kFaultsCompiledIn) {
    GTEST_SKIP() << "fault injection compiled out (OBLIV_FAULTS=OFF)";
  }
  sched::SimExecutor ex(hm::MachineConfig::shared_l2(4));
  fault::FaultPlan plan(2, fault::FaultOptions::alloc_storm());
  fault::ScopedFaultPlan scope(&plan);
  auto r = ex.try_run(1024, [&] {
    auto buf = ex.make_buf<std::int64_t>(512);  // injected bad_alloc
    (void)buf;
  });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kResourceExhausted);
  // The executor stays usable: a clean run afterwards succeeds.
  fault::ScopedFaultPlan detach(nullptr);
  auto ok = ex.try_run(1024, [&] {
    auto buf = ex.make_buf<std::int64_t>(512);
    buf.ref().store(0, 1);
  });
  EXPECT_TRUE(ok.ok());
}

TEST(FaultAllocStorm, ExecutorSetupSurvivesInjectedSpawnFailure) {
  if (!fault::kFaultsCompiledIn) {
    GTEST_SKIP() << "fault injection compiled out (OBLIV_FAULTS=OFF)";
  }
  // Every seed must yield either a working pool or a clean typed error --
  // and an error must not leak joinable threads (the ASan/TSan builds of
  // this test enforce the leak half; no deadlock enforces the join half).
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    fault::FaultPlan plan(seed, fault::FaultOptions::alloc_storm(20000));
    fault::ScopedFaultPlan scope(&plan);
    auto r = sched::NativeExecutor::make(4, 128, sched::SchedMode::kWorkSteal);
    if (r.ok()) {
      fault::ScopedFaultPlan detach(nullptr);
      std::atomic<int> hits{0};
      r.value().cgc_pfor_each(0, 64, 1, [&](std::uint64_t) {
        hits.fetch_add(1, std::memory_order_relaxed);
      });
      EXPECT_EQ(hits.load(), 64);
    } else {
      EXPECT_EQ(r.status().code(), ErrorCode::kResourceExhausted);
    }
  }
}

// ---------------------------------------------------------------------------
// Crash-safe post-mortem traces
// ---------------------------------------------------------------------------

/// Builds the deterministic tracer used by the golden tests: logical clock,
/// three events, one counter.
void emit_fixture(obs::Tracer& tracer, std::uint64_t& clock) {
  tracer.set_logical_clock(&clock);
  clock = 10;
  tracer.emit(0, obs::EventKind::kTaskSpawn, 0, /*tid=*/1, 100, 2, 0);
  clock = 20;
  tracer.emit(0, obs::EventKind::kTaskSteal, 0, /*tid=*/2, 100, 1, 0);
  clock = 30;
  tracer.emit(0, obs::EventKind::kTaskComplete, 0, /*tid=*/2, 100, 0, 0);
  tracer.counters().set("fuzz.golden", 7);
}

std::string slurp(const char* path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(CrashTrace, FlushIsByteDeterministicAndGolden) {
  if (!obs::kTracingCompiledIn) {
    GTEST_SKIP() << "tracing compiled out (OBLIV_TRACING=OFF)";
  }
  const char* path = "fault_fuzz_crash_trace.json";
  obs::Tracer tracer(1, 16);
  std::uint64_t clock = 0;
  emit_fixture(tracer, clock);
  fault::install_crash_handler(&tracer, path);
  ASSERT_TRUE(fault::flush_crash_trace());
  const std::string first = slurp(path);

  // Golden: the exact bytes of the flush, assembled from the same
  // event-name table the exporter uses.  Any format drift fails here.
  std::ostringstream want;
  want << "{\"traceEvents\":[\n";
  const struct {
    obs::EventKind kind;
    std::uint64_t ts, tid, b;
  } rows[] = {{obs::EventKind::kTaskSpawn, 10, 1, 2},
              {obs::EventKind::kTaskSteal, 20, 2, 1},
              {obs::EventKind::kTaskComplete, 30, 2, 0}};
  for (std::size_t i = 0; i < 3; ++i) {
    if (i != 0) want << ",\n";
    want << "{\"name\":\"" << obs::event_name(rows[i].kind)
         << "\",\"ph\":\"i\",\"ts\":" << rows[i].ts
         << ",\"pid\":1,\"tid\":" << rows[i].tid
         << ",\"s\":\"t\",\"args\":{\"detail\":0,\"a\":100,\"b\":"
         << rows[i].b << ",\"c\":0}}";
  }
  want << "\n],\n\"crash\":{\"rings\":1,\"events_pushed\":3,"
          "\"events_dropped\":0},\n\"counters\":{\"fuzz.golden\":7}}\n";
  EXPECT_EQ(first, want.str());

  // Once-only latch: a second flush is a no-op until re-armed.
  EXPECT_FALSE(fault::flush_crash_trace());
  fault::rearm_crash_flush();
  ASSERT_TRUE(fault::flush_crash_trace());
  EXPECT_EQ(slurp(path), first) << "re-armed flush must be byte-identical";

  fault::uninstall_crash_handler();
  std::remove(path);
}

TEST(CrashTrace, FatalSignalProducesLoadableTrace) {
  if (!obs::kTracingCompiledIn) {
    GTEST_SKIP() << "tracing compiled out (OBLIV_TRACING=OFF)";
  }
  const char* path = "fault_fuzz_crash_signal.json";
  std::remove(path);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: register the tracer, then die the way a real bug would.  The
    // handler must flush before the re-raised signal kills the process.
    obs::Tracer tracer(1, 16);
    std::uint64_t clock = 0;
    emit_fixture(tracer, clock);
    fault::install_crash_handler(&tracer, path);
    std::raise(SIGSEGV);
    _exit(0);  // unreachable
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child should die by signal, status=" << status;
  EXPECT_EQ(WTERMSIG(status), SIGSEGV) << "original signal must be re-raised";
  const std::string dump = slurp(path);
  ASSERT_FALSE(dump.empty()) << "no post-mortem trace written";
  // Loadable: the flush is a strict subset of the regular Chrome
  // trace_event schema (and, with a logical clock, byte-deterministic --
  // so it matches the directly-flushed golden exactly).
  EXPECT_EQ(dump.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(dump.find("\"ph\":\"i\",\"ts\":"), std::string::npos);
  EXPECT_NE(dump.find("\"events_pushed\":3"), std::string::npos);
  EXPECT_EQ(dump.substr(dump.size() - 2), "}\n");
  std::remove(path);
}

}  // namespace
