// The paper's central claim, as a property test: a multicore-oblivious
// algorithm contains no machine parameters, yet meets its per-level cache
// bound on EVERY machine.  Each test below runs one unmodified algorithm
// across six HM machines of different depths/shapes and checks (a) the
// output is correct everywhere, and (b) every cache level's measured misses
// are within a generous constant of the theorem's bound.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "algo/fft.hpp"
#include "algo/gep.hpp"
#include "algo/sort.hpp"
#include "algo/transpose.hpp"
#include "hm/config.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

namespace obliv {
namespace {

std::vector<hm::MachineConfig> all_machines() {
  return {hm::MachineConfig::sequential(),
          hm::MachineConfig::shared_l2(2),
          hm::MachineConfig::shared_l2(8),
          hm::MachineConfig::three_level(2, 2),
          hm::MachineConfig::three_level(4, 4),
          hm::MachineConfig::figure1()};
}

class Machines : public ::testing::TestWithParam<int> {
 protected:
  hm::MachineConfig cfg() const { return all_machines()[GetParam()]; }
};

TEST_P(Machines, TransposeMeetsBoundEverywhere) {
  const hm::MachineConfig machine = cfg();
  const std::uint64_t n = 128;
  sched::SimExecutor ex(machine);
  auto a = ex.make_buf<double>(n * n);
  auto out = ex.make_buf<double>(n * n);
  util::Xoshiro256 rng(1);
  for (auto& v : a.raw()) v = rng.uniform();
  const auto m = ex.run(3 * n * n, [&] {
    algo::mo_transpose(ex, a.ref(), out.ref(), n);
  });
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      ASSERT_EQ(out.raw()[i * n + j], a.raw()[j * n + i]);
    }
  }
  for (std::uint32_t lvl = 1; lvl <= machine.cache_levels(); ++lvl) {
    const double bound =
        double(n * n) / (machine.caches_at(lvl) * machine.block(lvl)) +
        double(machine.block(lvl));
    EXPECT_LT(double(m.level_max_misses[lvl - 1]), 16.0 * bound)
        << machine.name() << " L" << lvl;
  }
}

TEST_P(Machines, FftMeetsBoundEverywhere) {
  const hm::MachineConfig machine = cfg();
  const std::uint64_t n = 1 << 12;
  sched::SimExecutor ex(machine);
  auto buf = ex.make_buf<algo::cplx>(n);
  util::Xoshiro256 rng(2);
  for (auto& v : buf.raw()) v = algo::cplx(rng.uniform(), 0.0);
  const auto m = ex.run(6 * n, [&] { algo::mo_fft(ex, buf.ref()); });
  for (std::uint32_t lvl = 1; lvl <= machine.cache_levels(); ++lvl) {
    const double logc = std::max(
        1.0, std::log(double(n)) / std::log(double(machine.capacity(lvl))));
    const double bound = 2.0 * double(n) /
                             (machine.caches_at(lvl) * machine.block(lvl)) *
                             logc +
                         double(machine.block(lvl));
    // Generous constant: the check is about the bound's *shape* across
    // machines; implementation constants (3 transposes + scratch per FFT
    // level) are machine-dependent but n-independent (see bench_fft).
    EXPECT_LT(double(m.level_max_misses[lvl - 1]), 160.0 * bound)
        << machine.name() << " L" << lvl;
  }
}

TEST_P(Machines, SortCorrectAndBoundedEverywhere) {
  const hm::MachineConfig machine = cfg();
  const std::uint64_t n = 1 << 13;
  sched::SimExecutor ex(machine);
  auto buf = ex.make_buf<std::uint64_t>(n);
  util::Xoshiro256 rng(3);
  std::vector<std::uint64_t> expect(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    buf.raw()[i] = rng();
    expect[i] = buf.raw()[i];
  }
  std::sort(expect.begin(), expect.end());
  const auto m = ex.run(4 * n, [&] { algo::spms_sort(ex, buf.ref()); });
  ASSERT_EQ(buf.raw(), expect) << machine.name();
  for (std::uint32_t lvl = 1; lvl <= machine.cache_levels(); ++lvl) {
    const double logc = std::max(
        1.0, std::log(double(n)) / std::log(double(machine.capacity(lvl))));
    const double bound =
        double(n) / (machine.caches_at(lvl) * machine.block(lvl)) * logc +
        double(machine.block(lvl));
    EXPECT_LT(double(m.level_max_misses[lvl - 1]), 160.0 * bound)
        << machine.name() << " L" << lvl;
  }
}

TEST_P(Machines, IgepCorrectAndBoundedEverywhere) {
  const hm::MachineConfig machine = cfg();
  const std::uint64_t n = 64;
  sched::SimExecutor ex(machine);
  auto buf = ex.make_buf<double>(n * n);
  util::Xoshiro256 rng(4);
  std::vector<double> expect(n * n);
  for (std::uint64_t i = 0; i < n * n; ++i) {
    buf.raw()[i] = rng.uniform();
    expect[i] = buf.raw()[i];
  }
  algo::gep_reference<algo::FloydWarshallInstance>(expect, n);
  using Mat = sched::MatView<sched::SimRef<double>>;
  const auto m = ex.run(n * n, [&] {
    algo::igep<algo::FloydWarshallInstance>(ex, Mat::full(buf.ref(), n, n));
  });
  for (std::uint64_t i = 0; i < n * n; ++i) {
    ASSERT_NEAR(buf.raw()[i], expect[i], 1e-12) << machine.name();
  }
  for (std::uint32_t lvl = 1; lvl <= machine.cache_levels(); ++lvl) {
    const double bound =
        double(n) * n * n /
            (machine.caches_at(lvl) * machine.block(lvl) *
             std::sqrt(double(machine.capacity(lvl)))) +
        double(n * n) / (machine.caches_at(lvl) * machine.block(lvl)) +
        double(machine.block(lvl));
    EXPECT_LT(double(m.level_max_misses[lvl - 1]), 32.0 * bound)
        << machine.name() << " L" << lvl;
  }
}

TEST_P(Machines, MoreCoresNeverIncreaseSpan) {
  // Obliviousness in p: the same algorithm's critical path must not grow
  // when the machine gets more cores (shared_l2 sweep handled separately
  // below for like-for-like cache sizes).
  const hm::MachineConfig machine = cfg();
  const std::uint64_t n = 1 << 12;
  sched::SimExecutor ex(machine);
  auto buf = ex.make_buf<std::int64_t>(n);
  for (auto& v : buf.raw()) v = 1;
  const auto m = ex.run(2 * n, [&] { algo::mo_prefix_sum(ex, buf.ref()); });
  EXPECT_LE(m.span, m.work);
  EXPECT_EQ(buf.raw()[n - 1], std::int64_t(n));
}

INSTANTIATE_TEST_SUITE_P(AllMachines, Machines, ::testing::Range(0, 6),
                         [](const auto& info) {
                           return all_machines()[info.param].name() + "_" +
                                  std::to_string(info.param);
                         });

TEST(Obliviousness, SpanShrinksWithCores) {
  // shared_l2(p) machines share L1 geometry; span must fall as p grows.
  std::vector<std::uint64_t> spans;
  for (std::uint32_t p : {1u, 2u, 4u, 8u}) {
    const hm::MachineConfig machine =
        p == 1 ? hm::MachineConfig("p1", {hm::LevelSpec{2048, 8, 1}})
               : hm::MachineConfig::shared_l2(p);
    sched::SimExecutor ex(machine);
    const std::uint64_t n = 1 << 14;
    auto buf = ex.make_buf<double>(n);
    const auto m = ex.run(3 * n, [&] {
      ex.cgc_pfor(0, n, 1, [&](std::uint64_t lo, std::uint64_t hi) {
        auto v = buf.ref();
        for (std::uint64_t k = lo; k < hi; ++k) v.store(k, 1.0);
      });
    });
    spans.push_back(m.span);
  }
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LT(spans[i], spans[i - 1]);
  }
}

}  // namespace
}  // namespace obliv
