#include "hm/cache_sim.hpp"

#include <gtest/gtest.h>

namespace obliv::hm {
namespace {

TEST(LruCache, HitAndMiss) {
  LruCache c(2);
  EXPECT_FALSE(c.touch(1));
  EXPECT_TRUE(c.touch(1));
  EXPECT_FALSE(c.touch(2));
  EXPECT_TRUE(c.touch(2));
  EXPECT_EQ(c.size(), 2u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache c(2);
  c.touch(1);
  c.touch(2);
  c.touch(1);          // order now: 1 (MRU), 2 (LRU)
  EXPECT_FALSE(c.touch(3));
  EXPECT_EQ(c.last_evicted(), 2u);
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
}

TEST(LruCache, EraseSupportsCoherence) {
  LruCache c(4);
  c.touch(7);
  EXPECT_TRUE(c.erase(7));
  EXPECT_FALSE(c.erase(7));
  EXPECT_FALSE(c.contains(7));
  EXPECT_FALSE(c.touch(7));  // miss again after invalidation
}

TEST(CacheSim, SequentialScanMissesMatchBlockCount) {
  // Scanning n contiguous words misses exactly n / B_i times per level
  // (cold caches, n a multiple of every block size).
  const MachineConfig cfg = MachineConfig::sequential(1 << 14, 8);
  CacheSim sim(cfg);
  const std::uint64_t n = 4096;
  for (std::uint64_t a = 0; a < n; ++a) sim.access(0, a, 1, false);
  EXPECT_EQ(sim.level_total_misses(1), n / cfg.block(1));
}

TEST(CacheSim, RepeatScanOfFittingDataHits) {
  const MachineConfig cfg = MachineConfig::sequential(1 << 14, 8);
  CacheSim sim(cfg);
  const std::uint64_t n = 1 << 12;  // fits in the cache
  for (std::uint64_t a = 0; a < n; ++a) sim.access(0, a, 1, false);
  const std::uint64_t cold = sim.level_total_misses(1);
  for (std::uint64_t a = 0; a < n; ++a) sim.access(0, a, 1, false);
  EXPECT_EQ(sim.level_total_misses(1), cold);  // second scan fully cached
}

TEST(CacheSim, CyclicScanOfOversizedDataAlwaysMisses) {
  // With LRU, repeatedly scanning (capacity + 1 block) of data evicts the
  // block about to be needed: every block access misses.
  const MachineConfig cfg = MachineConfig::sequential(1024, 8);
  CacheSim sim(cfg);
  const std::uint64_t n = 1024 + 8;
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t a = 0; a < n; a += 8) sim.access(0, a, 1, false);
  }
  EXPECT_EQ(sim.level_total_misses(1), 3 * (n / 8));
}

TEST(CacheSim, PrivateCachesAreIndependent) {
  const MachineConfig cfg = MachineConfig::shared_l2(4);
  CacheSim sim(cfg);
  // Core 0 reads a range; core 1 reading it again misses in its own L1 but
  // hits in the shared L2.
  for (std::uint64_t a = 0; a < 256; ++a) sim.access(0, a, 1, false);
  const std::uint64_t l2_after_core0 = sim.level_total_misses(2);
  for (std::uint64_t a = 0; a < 256; ++a) sim.access(1, a, 1, false);
  EXPECT_GT(sim.counters(1, 1).misses, 0u);           // L1 of core 1 misses
  EXPECT_EQ(sim.level_total_misses(2), l2_after_core0);  // L2 all hits
}

TEST(CacheSim, WriteSharingPingPongs) {
  const MachineConfig cfg = MachineConfig::shared_l2(2);
  CacheSim sim(cfg);
  // Both cores alternate writes to the same B_1 block.
  for (int t = 0; t < 10; ++t) {
    sim.access(0, 0, 1, true);
    sim.access(1, 0, 1, true);
  }
  EXPECT_GE(sim.pingpong_events(), 19u);  // every write after the first
}

TEST(CacheSim, DisjointBlocksDoNotPingPong) {
  const MachineConfig cfg = MachineConfig::shared_l2(2);
  CacheSim sim(cfg);
  for (int t = 0; t < 10; ++t) {
    sim.access(0, 0, 1, true);
    sim.access(1, cfg.block(1), 1, true);  // different B_1 block
  }
  EXPECT_EQ(sim.pingpong_events(), 0u);
}

TEST(CacheSim, ResetStatsKeepsContents) {
  const MachineConfig cfg = MachineConfig::sequential();
  CacheSim sim(cfg);
  for (std::uint64_t a = 0; a < 64; ++a) sim.access(0, a, 1, false);
  sim.reset_stats();
  EXPECT_EQ(sim.level_total_misses(1), 0u);
  for (std::uint64_t a = 0; a < 64; ++a) sim.access(0, a, 1, false);
  EXPECT_EQ(sim.level_total_misses(1), 0u);  // still warm
  sim.clear();
  for (std::uint64_t a = 0; a < 64; ++a) sim.access(0, a, 1, false);
  EXPECT_GT(sim.level_total_misses(1), 0u);  // cold after clear
}

TEST(CacheSim, MultiWordAccessTouchesAllBlocks) {
  const MachineConfig cfg = MachineConfig::sequential(1 << 14, 8);
  CacheSim sim(cfg);
  sim.access(0, 0, 32, false);  // 32 words = 4 blocks of 8
  EXPECT_EQ(sim.level_total_misses(1), 4u);
}

}  // namespace
}  // namespace obliv::hm
