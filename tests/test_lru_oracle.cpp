// Randomized oracle test for the flat-table LRU cache (hm/cache_sim.hpp).
//
// A std::list + linear-search reference implements the fully-associative
// LRU policy the HM model specifies.  Long random operation streams --
// touches, coherence erases, known-node retouches, clears -- are applied to
// both; every hit/miss verdict, eviction victim, and size must match.  The
// streams are tuned to cross the open-addressing table's grow threshold
// repeatedly and to churn tombstones (erase + reinsert), so the
// find_or_slot / erase_at / rehash_now paths and the Node::slot
// backpointer resync all get exercised, including with power-of-two-strided
// block ids (the adversarial pattern for multiplicative hashing).
#include "hm/cache_sim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace obliv::hm {
namespace {

/// Reference LRU: front = most recently used.
class RefLru {
 public:
  explicit RefLru(std::size_t lines) : lines_(lines) {}

  /// Returns {hit, victim} with victim == UINT64_MAX when nothing evicted.
  std::pair<bool, std::uint64_t> touch(std::uint64_t block) {
    auto it = std::find(order_.begin(), order_.end(), block);
    if (it != order_.end()) {
      order_.splice(order_.begin(), order_, it);
      return {true, UINT64_MAX};
    }
    order_.push_front(block);
    std::uint64_t victim = UINT64_MAX;
    if (order_.size() > lines_) {
      victim = order_.back();
      order_.pop_back();
    }
    return {false, victim};
  }

  bool erase(std::uint64_t block) {
    auto it = std::find(order_.begin(), order_.end(), block);
    if (it == order_.end()) return false;
    order_.erase(it);
    return true;
  }

  void retouch(std::uint64_t block) {
    auto it = std::find(order_.begin(), order_.end(), block);
    ASSERT_NE(it, order_.end());
    order_.splice(order_.begin(), order_, it);
  }

  bool contains(std::uint64_t block) const {
    return std::find(order_.begin(), order_.end(), block) != order_.end();
  }

  void clear() { order_.clear(); }
  std::size_t size() const { return order_.size(); }

 private:
  std::size_t lines_;
  std::list<std::uint64_t> order_;
};

/// One adversarial stream against one cache geometry.  `stride` shapes the
/// block-id distribution (1 = dense, power of two = hash-adversarial).
void run_stream(std::size_t lines, std::uint64_t key_range,
                std::uint64_t stride, std::uint64_t seed, int ops) {
  LruCache dut(lines);
  RefLru ref(lines);
  // block -> node index captured at touch() time; stays valid until the
  // block leaves the cache (eviction or erase), across any table rehash.
  std::unordered_map<std::uint64_t, std::uint32_t> node_of;
  util::Xoshiro256 rng(seed);

  for (int op = 0; op < ops; ++op) {
    const std::uint64_t block = (rng() % key_range) * stride;
    const std::uint32_t kind = rng() % 16;
    if (kind < 11) {  // touch
      const auto [ref_hit, ref_victim] = ref.touch(block);
      const bool dut_hit = dut.touch(block);
      ASSERT_EQ(dut_hit, ref_hit) << "op " << op << " block " << block;
      ASSERT_EQ(dut.last_evicted(), ref_victim) << "op " << op;
      node_of[block] = dut.last_node();
      if (ref_victim != UINT64_MAX) node_of.erase(ref_victim);
    } else if (kind < 14) {  // coherence erase
      const bool ref_had = ref.erase(block);
      ASSERT_EQ(dut.erase(block), ref_had) << "op " << op;
      node_of.erase(block);
    } else if (kind < 15) {  // known-node LRU move of a random resident block
      if (!node_of.empty()) {
        auto it = node_of.begin();
        std::advance(it, rng() % node_of.size());
        dut.touch_known(it->second);
        ref.retouch(it->first);
      }
    } else {  // occasional full reset
      dut.clear();
      ref.clear();
      node_of.clear();
    }
    ASSERT_EQ(dut.size(), ref.size()) << "op " << op;
    ASSERT_EQ(dut.contains(block), ref.contains(block)) << "op " << op;
  }
}

TEST(LruOracle, DenseKeysSmallCache) { run_stream(4, 16, 1, 1, 20000); }

TEST(LruOracle, SingleLine) { run_stream(1, 8, 1, 2, 5000); }

TEST(LruOracle, GrowAndTombstoneChurn) {
  // Key range >> lines: constant evict + erase + reinsert traffic keeps the
  // table crossing its load threshold with live tombstones.
  run_stream(64, 512, 1, 3, 40000);
}

TEST(LruOracle, PowerOfTwoStrides) {
  // Strided block ids collide maximally under masked identity hashing;
  // the Fibonacci-multiply bucket mix must keep probes short AND correct.
  for (std::uint64_t stride : {8u, 64u, 4096u}) {
    run_stream(32, 256, stride, 100 + stride, 20000);
  }
}

TEST(LruOracle, LargeGeometry) { run_stream(1024, 4096, 16, 9, 60000); }

}  // namespace
}  // namespace obliv::hm
