// Tier-1 tests for PR 10: cooperative cancellation of *running* jobs,
// running-deadline enforcement via the dispatcher watchdog, overload
// shedding with retry-after hints, and the bounded retry client helper.
//
// The load-bearing property: for every one of the seven paper families, a
// job can be cancelled mid-execution and completes with kCancelled, and
// the pool is fully reusable afterwards — a subsequent uncancelled run of
// the same request on the same server is bit-identical to a direct
// NativeExecutor run.  Exercised under 16 seeded chaos FaultPlans so the
// poison checks are hit from perturbed schedules (stolen tasks, inverted
// pop order, stalled workers), not just the quiet path.
#include "serve/serve.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "algo/fft.hpp"
#include "algo/gep.hpp"
#include "algo/graphgen.hpp"
#include "algo/listrank.hpp"
#include "algo/scan.hpp"
#include "algo/sort.hpp"
#include "algo/spmdv.hpp"
#include "algo/transpose.hpp"
#include "fault/fault.hpp"
#include "obs/trace.hpp"
#include "sched/cancel.hpp"
#include "sched/native_executor.hpp"
#include "sched/views.hpp"
#include "util/rng.hpp"

namespace obliv::serve {
namespace {

using sched::NatRef;

template <class T>
NatRef<T> ref_of(std::vector<T>& v) {
  return NatRef<T>(v.data(), v.size());
}

template <class T>
bool bits_equal(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

/// One millisecond-scale job instance: big enough that a cancel() issued
/// after the body starts reliably lands mid-execution (the cancel round
/// trip is microseconds; these bodies run for milliseconds), small enough
/// to keep 16 iterations in tier-1 budget.  All buffers are owned here so
/// an instance can be copied wholesale for pristine snapshots.
struct BigJob {
  Family family = Family::kScan;
  std::vector<std::int64_t> i64;
  std::vector<std::uint64_t> u64;
  std::vector<algo::cplx> cx;
  std::vector<double> t_in, t_out, mat, x, y;
  std::vector<std::uint64_t> succ, pred, dist, a0;
  std::vector<algo::SpmEntry> av;
  std::uint64_t side = 0;
};

BigJob make_big(Family family, util::Xoshiro256& rng) {
  BigJob j;
  j.family = family;
  switch (family) {
    // Sizes are chosen so every family runs for at least ~10 ms even with
    // the SIMD leaf kernels engaged: the test must observe the job in its
    // running state and land a cancel before it finishes.  If a family
    // shrinks below that (faster kernels, more threads), the assert below
    // names it and says to grow the instance.
    case Family::kScan: {
      j.i64.resize(std::size_t{1} << 23);
      for (auto& v : j.i64) v = std::int64_t(rng.below(1000)) - 500;
      break;
    }
    case Family::kSort: {
      j.u64.resize(std::size_t{1} << 19);
      for (auto& v : j.u64) v = rng();
      break;
    }
    case Family::kFft: {
      j.cx.resize(std::size_t{1} << 18);
      for (auto& v : j.cx) v = algo::cplx(rng.uniform() - 0.5, rng.uniform());
      break;
    }
    case Family::kTranspose: {
      j.side = 2048;
      j.t_in.resize(j.side * j.side);
      for (auto& v : j.t_in) v = rng.uniform();
      j.t_out.assign(j.side * j.side, -3.0);
      break;
    }
    case Family::kGep: {
      j.side = 384;
      j.mat.resize(j.side * j.side);
      for (auto& v : j.mat) v = rng.uniform() * 10.0;
      break;
    }
    case Family::kListRank: {
      // List ranking is the costliest family per element (deep contraction
      // recursion): 1<<14 already runs for >100 ms, and each plan pays for
      // two full reruns, so keep it small.
      const std::uint64_t n = std::uint64_t{1} << 14;
      std::vector<std::uint64_t> perm(n);
      std::iota(perm.begin(), perm.end(), 0);
      for (std::uint64_t i = n; i > 1; --i) {
        std::swap(perm[i - 1], perm[rng.below(i)]);
      }
      j.succ.assign(n, algo::kNil);
      j.pred.assign(n, algo::kNil);
      j.dist.assign(n, 0);
      for (std::uint64_t t = 0; t + 1 < n; ++t) {
        j.succ[perm[t]] = perm[t + 1];
        j.pred[perm[t + 1]] = perm[t];
      }
      break;
    }
    case Family::kSpmdv: {
      algo::SparseMatrix a = algo::grid_matrix(768);
      j.av = a.av;
      j.a0 = a.a0;
      j.x.resize(a.n);
      for (auto& v : j.x) v = rng.uniform() - 0.5;
      j.y.assign(a.n, 0.0);
      break;
    }
  }
  return j;
}

Request request_of(BigJob& j) {
  switch (j.family) {
    case Family::kScan: return ScanRequest{ref_of(j.i64)};
    case Family::kSort: return SortRequest{ref_of(j.u64)};
    case Family::kFft: return FftRequest{ref_of(j.cx)};
    case Family::kTranspose:
      return TransposeRequest{ref_of(j.t_in), ref_of(j.t_out), j.side};
    case Family::kGep: return GepRequest{ref_of(j.mat), j.side};
    case Family::kListRank:
      return ListRankRequest{ref_of(j.succ), ref_of(j.pred), ref_of(j.dist)};
    default:
      return SpmdvRequest{ref_of(j.av), ref_of(j.a0), ref_of(j.x),
                          ref_of(j.y)};
  }
}

void run_direct(sched::NativeExecutor& ex, BigJob& j) {
  switch (j.family) {
    case Family::kScan: algo::mo_prefix_sum(ex, ref_of(j.i64)); break;
    case Family::kSort: algo::spms_sort(ex, ref_of(j.u64)); break;
    case Family::kFft: algo::mo_fft(ex, ref_of(j.cx)); break;
    case Family::kTranspose:
      algo::mo_transpose(ex, ref_of(j.t_in), ref_of(j.t_out), j.side);
      break;
    case Family::kGep: {
      using Mat = sched::MatView<NatRef<double>>;
      algo::igep<algo::FloydWarshallInstance>(
          ex, Mat::full(ref_of(j.mat), j.side, j.side));
      break;
    }
    case Family::kListRank:
      algo::mo_list_rank(ex, ref_of(j.succ), ref_of(j.pred), ref_of(j.dist));
      break;
    default:
      algo::mo_spmdv(ex, ref_of(j.av), ref_of(j.a0), ref_of(j.x),
                     ref_of(j.y));
      break;
  }
}

/// Bitwise comparison of the family's output buffer(s).
bool outputs_equal(const BigJob& a, const BigJob& b) {
  switch (a.family) {
    case Family::kScan: return bits_equal(a.i64, b.i64);
    case Family::kSort: return bits_equal(a.u64, b.u64);
    case Family::kFft: return bits_equal(a.cx, b.cx);
    case Family::kTranspose: return bits_equal(a.t_out, b.t_out);
    case Family::kGep: return bits_equal(a.mat, b.mat);
    case Family::kListRank: return bits_equal(a.dist, b.dist);
    default: return bits_equal(a.y, b.y);
  }
}

/// Spins until the job body is executing (true) or the job completed
/// first (false).  Bounded by `limit` wall time.
bool wait_until_running(const JobHandle& h, std::chrono::milliseconds limit) {
  const auto give_up = std::chrono::steady_clock::now() + limit;
  while (std::chrono::steady_clock::now() < give_up) {
    if (h.running()) return true;
    if (h.done()) return false;
    std::this_thread::yield();
  }
  return h.running();
}

// ---------------------------------------------------------------------------
// Tentpole: mid-run cancel, every family, under 16 seeded chaos plans
// ---------------------------------------------------------------------------

TEST(ServeCancel, MidRunCancelAllFamiliesUnderChaos) {
  constexpr int kPlans = 16;  // i % 7 covers every family at least twice
  ServerOptions o;
  o.threads = 2;
  // The instances are sized for cancellable runtimes (see make_big), so
  // the largest working set (scan, 2 * 2^24 words) must fit the budget.
  o.space_budget_words = std::uint64_t{1} << 26;
  Server srv(o);
  sched::NativeExecutor direct_ex(2);

  for (int i = 0; i < kPlans; ++i) {
    SCOPED_TRACE("plan " + std::to_string(i));
    const auto family = static_cast<Family>(i % kFamilies);
    fault::FaultPlan plan(0xCA9CE100 + std::uint64_t(i),
                          fault::FaultOptions::chaos());
    srv.set_fault_plan(&plan);

    util::Xoshiro256 rng(5000 + std::uint64_t(i) * 131);
    BigJob job = make_big(family, rng);
    const BigJob pristine = job;

    auto r = srv.submit(request_of(job));
    ASSERT_TRUE(r.ok()) << r.status().message();
    JobHandle h = r.value();
    ASSERT_TRUE(wait_until_running(h, std::chrono::seconds(10)))
        << family_name(family) << " finished before cancel could land; "
        << "grow the instance size";

    const auto t0 = std::chrono::steady_clock::now();
    ASSERT_TRUE(h.cancel()) << family_name(family);
    const Status s = h.wait();
    const auto unwind = std::chrono::steady_clock::now() - t0;
    EXPECT_EQ(s.code(), ErrorCode::kCancelled) << s.message();
    // Promptness: the poisoned tree skips all remaining work, so the
    // unwind must be far below a full run; 1 s is a loose CI-safe bound
    // that still catches a cancel that degenerated into run-to-completion
    // of a large instance or a hang.
    EXPECT_LT(unwind, std::chrono::seconds(1)) << family_name(family);
    // cancel() == true on a running job implies exactly kCancelled --
    // repeated waits agree (exactly-once completion).
    EXPECT_EQ(h.wait().code(), ErrorCode::kCancelled);

    // Pool reuse: the same request, resubmitted on the same server with
    // fresh input, must complete and match a direct executor run bit for
    // bit -- the cancelled tree left no residue in the pool.
    job = pristine;
    auto r2 = srv.submit(request_of(job));
    ASSERT_TRUE(r2.ok()) << r2.status().message();
    EXPECT_TRUE(r2.value().wait().ok());
    BigJob ref = pristine;
    run_direct(direct_ex, ref);
    EXPECT_TRUE(outputs_equal(job, ref)) << family_name(family);

    srv.set_fault_plan(nullptr);  // before `plan` goes out of scope
  }

  const ServerStats st = srv.stats();
  EXPECT_EQ(st.cancelled, std::uint64_t(kPlans));
  EXPECT_EQ(st.cancelled_running, std::uint64_t(kPlans));
  EXPECT_EQ(st.completed_ok, std::uint64_t(kPlans));
  EXPECT_EQ(st.failed, 0u);
  // Exactly-once accounting with the new outcome classes.
  EXPECT_EQ(st.completed_ok + st.cancelled + st.deadline_exceeded,
            st.submitted);
}

// ---------------------------------------------------------------------------
// Running-deadline watchdog
// ---------------------------------------------------------------------------

TEST(ServeDeadline, RunningJobPoisonedByWatchdog) {
  ServerOptions o;
  o.threads = 2;
  obs::Tracer tracer(2, 1 << 12);
  Server srv(o);
  if (obs::kTracingCompiledIn) srv.set_tracer(&tracer);

  // A Floyd-Warshall instance that takes well over the deadline: n = 1024
  // is ~1.07G relaxations -- beating a 25 ms deadline would need over
  // 40G relaxations/s, far beyond any host this runs on (the SIMD leaf
  // kernels on this class of machine manage a few G/s).
  BigJob job;
  job.family = Family::kGep;
  job.side = 1024;
  util::Xoshiro256 rng(99);
  job.mat.resize(job.side * job.side);
  for (auto& v : job.mat) v = rng.uniform() * 10.0;

  JobOptions jo;
  jo.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(25);
  auto r = srv.submit(request_of(job), jo);
  ASSERT_TRUE(r.ok()) << r.status().message();
  JobHandle h = r.value();

  const Status s = h.wait();
  EXPECT_EQ(s.code(), ErrorCode::kDeadlineExceeded) << s.message();
  srv.shutdown();

  const ServerStats st = srv.stats();
  EXPECT_EQ(st.deadline_exceeded, 1u);
  // The job was admitted immediately (empty server) and runs far longer
  // than the deadline, so the expiry must have hit it *mid-run* -- the
  // watchdog path, not the queued sweep.
  EXPECT_EQ(st.deadline_exceeded_running, 1u);
  EXPECT_EQ(st.completed_ok, 0u);

  if (obs::kTracingCompiledIn) {
    // The condemnation is visible in the trace: a kJobCancel event whose
    // `c` carries CancelToken::Reason::kDeadline (2).
    bool saw_deadline_poison = false;
    for (std::uint32_t ring = 0; ring < tracer.ring_count(); ++ring) {
      tracer.ring(ring).for_each([&](const obs::Event& e) {
        if (e.kind == obs::EventKind::kJobCancel && e.c == 2) {
          saw_deadline_poison = true;
        }
      });
    }
    EXPECT_TRUE(saw_deadline_poison);
    EXPECT_EQ(tracer.counters().value("serve.jobs_deadline_exceeded_running"),
              1u);
  }
}

// ---------------------------------------------------------------------------
// Overload shedding + retry helpers
// ---------------------------------------------------------------------------

TEST(ServeOverload, ShedsWithRetryAfterHintAndRecovers) {
  const std::size_t na = std::size_t{1} << 17;
  ServerOptions o;
  o.threads = 2;
  o.space_budget_words = 4 * na;  // job A fills the budget exactly
  o.shed_wait_p99_ns = 1;         // any real queue wait trips the threshold
  o.shed_min_samples = 1;
  Server srv(o);

  util::Xoshiro256 rng(2024);
  std::vector<std::uint64_t> a(na);
  for (auto& v : a) v = rng();
  auto ha = srv.submit(SortRequest{ref_of(a)});
  ASSERT_TRUE(ha.ok());
  // A's body starting records the first wait sample (the shed window and
  // the wait histogram share samples).
  ASSERT_TRUE(wait_until_running(ha.value(), std::chrono::seconds(10)));

  // B queues behind A (no budget left).  Queue was empty at B's submit,
  // so B itself is never shed -- shedding requires an existing backlog.
  std::vector<std::int64_t> b(512, 3);
  auto hb = srv.submit(ScanRequest{ref_of(b)});
  ASSERT_TRUE(hb.ok()) << hb.status().message();

  // C sees: backlog present (B waiting) + wait p99 over threshold => shed.
  std::vector<std::int64_t> cbuf(512, 5);
  auto rc = srv.submit(ScanRequest{ref_of(cbuf)});
  ASSERT_FALSE(rc.ok());
  EXPECT_EQ(rc.status().code(), ErrorCode::kUnavailable);
  const auto hint = retry_after_ms_hint(rc.status());
  ASSERT_TRUE(hint.has_value()) << rc.status().message();
  EXPECT_GE(*hint, 1u);
  EXPECT_LE(*hint, 1000u);

  {
    const ServerStats st = srv.stats();
    EXPECT_EQ(st.shed, 1u);
    EXPECT_EQ(st.rejected, 0u);  // shed is its own class, not `rejected`
  }

  // Recovery: once the backlog drains the server accepts again even
  // though the recorded p99 is unchanged -- the backlog guard, not time,
  // re-opens admission.
  EXPECT_TRUE(ha.value().wait().ok());
  EXPECT_TRUE(hb.value().wait().ok());
  std::vector<std::int64_t> d(512, 7);
  auto rd = srv.submit(ScanRequest{ref_of(d)});
  ASSERT_TRUE(rd.ok()) << rd.status().message();
  EXPECT_TRUE(rd.value().wait().ok());

  srv.shutdown();
  const ServerStats st = srv.stats();
  EXPECT_EQ(st.shed, 1u);
  EXPECT_EQ(st.completed_ok, 3u);
}

TEST(ServeRetry, BackoffDeterministicBoundedAndHintFloored) {
  const RetryPolicy p;  // initial 1 ms, max 64 ms
  // Determinism: the same seed yields the same delay sequence.
  util::Xoshiro256 r1(p.seed), r2(p.seed);
  std::vector<std::int64_t> s1, s2;
  for (std::uint32_t k = 1; k <= 8; ++k) {
    s1.push_back(retry_backoff(p, k, r1, std::nullopt).count());
    s2.push_back(retry_backoff(p, k, r2, std::nullopt).count());
  }
  EXPECT_EQ(s1, s2);
  // Bounds: attempt k draws from [ceil(base/2), base] with
  // base = min(max_backoff, initial << (k-1)).
  for (std::uint32_t k = 1; k <= 8; ++k) {
    const std::int64_t base =
        std::min<std::int64_t>(64, std::int64_t{1} << (k - 1));
    EXPECT_GE(s1[k - 1], (base + 1) / 2) << "attempt " << k;
    EXPECT_LE(s1[k - 1], base) << "attempt " << k;
  }
  // A server hint is a floor: with base 1 ms and hint 100 ms the delay is
  // exactly the hint.
  util::Xoshiro256 r3(7);
  EXPECT_EQ(retry_backoff(p, 1, r3, 100u).count(), 100);

  // Hint parsing: only shed-style kUnavailable messages carry one.
  EXPECT_EQ(retry_after_ms_hint(
                Status::error(ErrorCode::kUnavailable,
                              "server overloaded; retry_after_ms=37"))
                .value_or(0),
            37u);
  EXPECT_FALSE(retry_after_ms_hint(
                   Status::error(ErrorCode::kUnavailable,
                                 "server is draining; submit rejected"))
                   .has_value());
  EXPECT_FALSE(retry_after_ms_hint(
                   Status::error(ErrorCode::kResourceExhausted,
                                 "retry_after_ms=5"))
                   .has_value());
  EXPECT_FALSE(retry_after_ms_hint(Status()).has_value());
}

TEST(ServeRetry, SubmitWithRetryRidesOutOverload) {
  const std::size_t na = std::size_t{1} << 17;
  ServerOptions o;
  o.threads = 2;
  o.space_budget_words = 4 * na;
  o.shed_wait_p99_ns = 1;
  o.shed_min_samples = 1;
  Server srv(o);

  util::Xoshiro256 rng(4242);
  std::vector<std::uint64_t> a(na);
  for (auto& v : a) v = rng();
  auto ha = srv.submit(SortRequest{ref_of(a)});
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(wait_until_running(ha.value(), std::chrono::seconds(10)));
  std::vector<std::int64_t> b(512, 3);
  auto hb = srv.submit(ScanRequest{ref_of(b)});
  ASSERT_TRUE(hb.ok());

  RetryPolicy pol;
  pol.max_attempts = 4;
  pol.initial_backoff = std::chrono::milliseconds(1);
  pol.max_backoff = std::chrono::milliseconds(8);
  std::vector<std::int64_t> cbuf(512, 5);
  auto rc = submit_with_retry(srv, ScanRequest{ref_of(cbuf)}, {}, pol);
  if (rc.ok()) {
    // The backlog drained during a backoff and a later attempt landed.
    EXPECT_TRUE(rc.value().wait().ok());
  } else {
    // All attempts shed: the final status is still a hinted shed.
    EXPECT_EQ(rc.status().code(), ErrorCode::kUnavailable);
    EXPECT_TRUE(retry_after_ms_hint(rc.status()).has_value());
  }
  EXPECT_GE(srv.stats().shed, 1u);
  EXPECT_TRUE(ha.value().wait().ok());
  EXPECT_TRUE(hb.value().wait().ok());
}

// ---------------------------------------------------------------------------
// Handle surface: timed wait, live gauges, drain races
// ---------------------------------------------------------------------------

TEST(ServeHandles, WaitForTimesOutTypedWithoutConsuming) {
  ServerOptions o;
  o.threads = 2;
  Server srv(o);
  util::Xoshiro256 rng(11);
  std::vector<std::uint64_t> a(std::size_t{1} << 18);
  for (auto& v : a) v = rng();
  auto r = srv.submit(SortRequest{ref_of(a)});
  ASSERT_TRUE(r.ok());
  JobHandle h = r.value();

  // Far below the job's runtime: must time out, typed, twice (the timed
  // wait never consumes the pending completion).
  const Status t1 = h.wait_for(std::chrono::milliseconds(1));
  EXPECT_EQ(t1.code(), ErrorCode::kUnavailable) << t1.message();
  const Status t2 = h.wait_for(std::chrono::milliseconds(1));
  EXPECT_EQ(t2.code(), ErrorCode::kUnavailable);

  EXPECT_TRUE(h.wait().ok());
  // After completion the timed wait returns the final status, repeatably,
  // from any copy of the handle.
  EXPECT_TRUE(h.wait_for(std::chrono::milliseconds(1)).ok());
  JobHandle copy = h;
  EXPECT_TRUE(copy.wait_for(std::chrono::nanoseconds(0)).ok());
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));

  JobHandle empty;
  EXPECT_EQ(empty.wait_for(std::chrono::milliseconds(1)).code(),
            ErrorCode::kInvalidArgument);
}

TEST(ServeObs, LiveGaugesTrackQueueAndInflight) {
  const std::size_t na = std::size_t{1} << 17;
  ServerOptions o;
  o.threads = 2;
  o.space_budget_words = 4 * na;  // A alone fits; B and C must queue
  obs::Tracer tracer(2, 1 << 12);
  Server srv(o);
  if (obs::kTracingCompiledIn) srv.set_tracer(&tracer);

  util::Xoshiro256 rng(31337);
  std::vector<std::uint64_t> a(na);
  for (auto& v : a) v = rng();
  auto ha = srv.submit(SortRequest{ref_of(a)});
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(wait_until_running(ha.value(), std::chrono::seconds(10)));

  std::vector<std::int64_t> b(512, 1), c(512, 2);
  auto hb = srv.submit(ScanRequest{ref_of(b)});
  auto hc = srv.submit(ScanRequest{ref_of(c)});
  ASSERT_TRUE(hb.ok());
  ASSERT_TRUE(hc.ok());

  // Deterministic while A runs: A in flight, B and C waiting (the budget
  // admits nothing else).  stats() reads the live gauges under the
  // server's own lock.
  {
    const ServerStats st = srv.stats();
    EXPECT_EQ(st.inflight, 1u);
    EXPECT_EQ(st.queue_depth, 2u);
  }
  // Cancelling queued B is reflected immediately.
  EXPECT_TRUE(hb.value().cancel());
  EXPECT_EQ(srv.stats().queue_depth, 1u);

  EXPECT_TRUE(ha.value().wait().ok());
  EXPECT_TRUE(hc.value().wait().ok());
  srv.shutdown();
  const ServerStats st = srv.stats();
  EXPECT_EQ(st.inflight, 0u);
  EXPECT_EQ(st.queue_depth, 0u);
  if (obs::kTracingCompiledIn) {
    // The published gauges agree after drain.
    EXPECT_EQ(tracer.counters().value("serve.queue_depth"), 0u);
    EXPECT_EQ(tracer.counters().value("serve.inflight"), 0u);
    EXPECT_EQ(tracer.counters().value("serve.jobs_cancelled"), 1u);
    EXPECT_EQ(tracer.counters().value("serve.jobs_cancelled_running"), 0u);
  }
}

TEST(ServeShutdownRace, SubmitAfterShutdownIsTypedUnavailable) {
  ServerOptions o;
  o.threads = 2;
  Server srv(o);

  // A modest backlog so shutdown overlaps live work.
  util::Xoshiro256 rng(777);
  std::vector<std::vector<std::uint64_t>> bufs;
  std::vector<JobHandle> hs;
  for (int i = 0; i < 3; ++i) {
    bufs.emplace_back(std::size_t{1} << 14);
    for (auto& v : bufs.back()) v = rng();
    auto r = srv.submit(SortRequest{ref_of(bufs.back())});
    ASSERT_TRUE(r.ok());
    hs.push_back(r.value());
  }

  // Racer submits through the drain window: each attempt either yields a
  // handle that completes, a typed kUnavailable with no retry hint
  // (draining is permanent; retrying is futile and the status says so by
  // omitting the hint), or -- before the drain starts -- a queue-capacity
  // kResourceExhausted from the rapid-fire backlog.
  std::vector<std::vector<std::int64_t>> rbufs(128);
  std::vector<JobHandle> rhandles;
  std::atomic<int> refused{0};
  std::thread racer([&] {
    for (auto& buf : rbufs) {
      buf.assign(256, 9);
      auto r = srv.submit(ScanRequest{ref_of(buf)});
      if (r.ok()) {
        rhandles.push_back(r.value());
      } else {
        EXPECT_TRUE(r.status().code() == ErrorCode::kUnavailable ||
                    r.status().code() == ErrorCode::kResourceExhausted)
            << r.status().message();
        EXPECT_FALSE(retry_after_ms_hint(r.status()).has_value());
        refused.fetch_add(1);
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  srv.shutdown();
  racer.join();

  for (auto& h : hs) EXPECT_TRUE(h.wait().ok());
  for (auto& h : rhandles) EXPECT_TRUE(h.wait().ok());

  // Fully drained: a post-shutdown submit is the same typed refusal.
  std::vector<std::int64_t> late(64, 1);
  auto r = srv.submit(ScanRequest{ref_of(late)});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kUnavailable);
  EXPECT_FALSE(retry_after_ms_hint(r.status()).has_value());

  const ServerStats st = srv.stats();
  EXPECT_EQ(st.submitted, st.completed_ok + st.cancelled +
                              st.deadline_exceeded);
  // Every refusal the racer saw plus the post-shutdown probe above.
  EXPECT_EQ(st.rejected, std::uint64_t(refused.load()) + 1u);
}

// ---------------------------------------------------------------------------
// Direct-caller cancellation (no server): ScopedCancelToken on the
// executor path, the same mechanism the serve layer builds on.
// ---------------------------------------------------------------------------

TEST(CancelToken, DirectExecutorTreePoisonSkipsWork) {
  sched::NativeExecutor ex(2);
  std::vector<std::uint64_t> keys(std::size_t{1} << 15);
  util::Xoshiro256 rng(3);
  for (auto& v : keys) v = rng();
  const std::vector<std::uint64_t> before = keys;

  // Pre-poisoned token: the whole construct is a no-op -- every check
  // sees the poison before any leaf writes.
  sched::CancelToken tok;
  tok.poison(sched::CancelToken::Reason::kCancelled);
  {
    sched::ScopedCancelToken guard(&tok);
    algo::spms_sort(ex, ref_of(keys));
  }
  EXPECT_TRUE(bits_equal(keys, before));

  // Token reset + clean run on the same executor: full result, so the
  // poisoned pass left no scheduler state behind.
  tok.reset();
  {
    sched::ScopedCancelToken guard(&tok);
    algo::spms_sort(ex, ref_of(keys));
  }
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));

  // First poison wins; the loser reports false and the reason sticks.
  sched::CancelToken t2;
  EXPECT_TRUE(t2.poison(sched::CancelToken::Reason::kDeadline));
  EXPECT_FALSE(t2.poison(sched::CancelToken::Reason::kCancelled));
  EXPECT_EQ(t2.reason(), sched::CancelToken::Reason::kDeadline);
  EXPECT_GT(t2.poison_ns(), 0u);
}

}  // namespace
}  // namespace obliv::serve
