// Shared driver for the golden-counter regression test.
//
// Runs small fixed sweeps of the paper's workloads (scan, MO-MT, MO-SPMS
// sort, I-GEP) on fixed machine configs and serialises every observable
// simulator metric -- per-level misses, evictions, invalidations, the
// ping-pong count, and work/span -- into a flat vector.  The expected
// values hard-coded in test_golden_counters.cpp were captured from the
// simulator as of PR 2 (the pre-flat-table implementation); any future
// change that perturbs an observable count fails tier-1.
//
// To regenerate after an *intentional* metric change, run
//   OBLIV_GOLDEN_REGEN=1 ./obliv_tests --gtest_filter='GoldenCounters.*'
// and paste the printed literals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "algo/gep.hpp"
#include "algo/scan.hpp"
#include "algo/sort.hpp"
#include "algo/transpose.hpp"
#include "hm/config.hpp"
#include "sched/sim_executor.hpp"
#include "sched/views.hpp"
#include "util/rng.hpp"

namespace obliv::golden {

/// Flattened observable state of one simulated run, in a fixed order.
struct GoldenRun {
  std::string name;                    ///< "workload/config/n"
  std::vector<std::uint64_t> counts;   ///< see flatten() for the layout
};

/// Appends, for each cache level: total misses, max misses, total
/// evictions, total invalidations; then pingpong, work, span.
inline void flatten(sched::SimExecutor& ex, const sched::RunMetrics& m,
                    std::vector<std::uint64_t>& out) {
  const hm::MachineConfig& cfg = ex.config();
  hm::CacheSim& sim = ex.cache_sim();
  for (std::uint32_t lvl = 1; lvl <= cfg.cache_levels(); ++lvl) {
    std::uint64_t total_miss = 0, max_miss = 0, evic = 0, inval = 0;
    for (std::uint32_t i = 0; i < cfg.caches_at(lvl); ++i) {
      const hm::CacheCounters& c = sim.counters(lvl, i);
      total_miss += c.misses;
      max_miss = std::max(max_miss, c.misses);
      evic += c.evictions;
      inval += c.invalidations;
    }
    out.push_back(total_miss);
    out.push_back(max_miss);
    out.push_back(evic);
    out.push_back(inval);
  }
  out.push_back(m.pingpong);
  out.push_back(m.work);
  out.push_back(m.span);
}

inline GoldenRun run_scan(const hm::MachineConfig& cfg, std::uint64_t n) {
  sched::SimExecutor ex(cfg);
  auto buf = ex.make_buf<std::int64_t>(n);
  for (std::size_t i = 0; i < n; ++i) buf.raw()[i] = std::int64_t(i % 97);
  const auto m = ex.run(2 * n, [&] { algo::mo_prefix_sum(ex, buf.ref()); });
  GoldenRun g{"scan/" + cfg.name() + "/" + std::to_string(n), {}};
  flatten(ex, m, g.counts);
  return g;
}

inline GoldenRun run_transpose(const hm::MachineConfig& cfg, std::uint64_t n) {
  sched::SimExecutor ex(cfg);
  auto a = ex.make_buf<double>(n * n);
  auto out = ex.make_buf<double>(n * n);
  for (std::size_t i = 0; i < n * n; ++i) a.raw()[i] = double(i);
  const auto m =
      ex.run(3 * n * n, [&] { algo::mo_transpose(ex, a.ref(), out.ref(), n); });
  GoldenRun g{"mo-mt/" + cfg.name() + "/" + std::to_string(n), {}};
  flatten(ex, m, g.counts);
  return g;
}

inline GoldenRun run_sort(const hm::MachineConfig& cfg, std::uint64_t n) {
  sched::SimExecutor ex(cfg);
  auto buf = ex.make_buf<std::uint64_t>(n);
  util::Xoshiro256 rng(12345);
  for (auto& v : buf.raw()) v = rng();
  const auto m = ex.run(4 * n, [&] { algo::spms_sort(ex, buf.ref()); });
  GoldenRun g{"spms/" + cfg.name() + "/" + std::to_string(n), {}};
  flatten(ex, m, g.counts);
  return g;
}

inline GoldenRun run_gep(const hm::MachineConfig& cfg, std::uint64_t n) {
  sched::SimExecutor ex(cfg);
  auto buf = ex.make_buf<double>(n * n);
  util::Xoshiro256 rng(999);
  for (auto& v : buf.raw()) v = rng.uniform();
  using Mat = sched::MatView<sched::SimRef<double>>;
  const auto m = ex.run(n * n, [&] {
    algo::igep<algo::FloydWarshallInstance>(ex, Mat::full(buf.ref(), n, n));
  });
  GoldenRun g{"igep/" + cfg.name() + "/" + std::to_string(n), {}};
  flatten(ex, m, g.counts);
  return g;
}

/// The full fixed sweep: every workload on both configs at two sizes.
inline std::vector<GoldenRun> run_all() {
  std::vector<GoldenRun> out;
  const hm::MachineConfig cfgs[] = {hm::MachineConfig::shared_l2(4),
                                    hm::MachineConfig::figure1()};
  for (const auto& cfg : cfgs) {
    for (std::uint64_t n : {std::uint64_t(1024), std::uint64_t(4096)}) {
      out.push_back(run_scan(cfg, n));
    }
    for (std::uint64_t n : {std::uint64_t(32), std::uint64_t(64)}) {
      out.push_back(run_transpose(cfg, n));
    }
    for (std::uint64_t n : {std::uint64_t(512), std::uint64_t(2048)}) {
      out.push_back(run_sort(cfg, n));
    }
    for (std::uint64_t n : {std::uint64_t(16), std::uint64_t(32)}) {
      out.push_back(run_gep(cfg, n));
    }
  }
  return out;
}

}  // namespace obliv::golden
