#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/perf_counters.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace obliv::util {
namespace {

TEST(Stats, LogLogSlopeRecoversExponent) {
  std::vector<double> x, y;
  for (double v : {16.0, 32.0, 64.0, 128.0}) {
    x.push_back(v);
    y.push_back(3.5 * v * v * v);  // exponent 3
  }
  EXPECT_NEAR(loglog_slope(x, y), 3.0, 1e-9);
}

TEST(Stats, SlopeIgnoresNonPositiveSamples) {
  std::vector<double> x = {1, 2, 0, 4};
  std::vector<double> y = {2, 4, -1, 8};
  EXPECT_NEAR(loglog_slope(x, y), 1.0, 1e-9);
}

TEST(Stats, GeomeanAndSpread) {
  std::vector<double> y = {10, 40}, model = {5, 10};
  // ratios 2 and 4: geomean = sqrt(8), spread = 2.
  EXPECT_NEAR(geomean_ratio(y, model), std::sqrt(8.0), 1e-12);
  EXPECT_NEAR(ratio_spread(y, model), 2.0, 1e-12);
}

TEST(Stats, Summary) {
  std::vector<double> xs = {3, 1, 2};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 3);
  EXPECT_EQ(s.mean, 2);
  EXPECT_EQ(s.count, 3u);
}

TEST(Table, AlignsColumns) {
  Table t({"a", "long_header"});
  t.add_row({"xxxxx", "1"});
  t.add_row({"y", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| a     | long_header |"), std::string::npos);
  EXPECT_NE(out.find("| xxxxx | 1           |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::fmt(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::fmt(std::int64_t{-7}), "-7");
  EXPECT_EQ(Table::fmt(3.14159, "%.2f"), "3.14");
}

TEST(Rng, DeterministicPerSeed) {
  Xoshiro256 a(1), b(1), c(2);
  EXPECT_EQ(a(), b());
  Xoshiro256 a2(1);
  std::uint64_t first = a2();
  Xoshiro256 c2(2);
  EXPECT_NE(first, c2());
  (void)c;
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(9);
  for (int t = 0; t < 10000; ++t) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(10);
  double lo = 1, hi = 0;
  for (int t = 0; t < 10000; ++t) {
    const double u = rng.uniform();
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
  EXPECT_LT(lo, 0.05);  // covers the interval
  EXPECT_GT(hi, 0.95);
}

TEST(PerfCounters, DegradesGracefully) {
  // Counters may or may not be available in the test environment; either
  // way the API must be safe to use.
  PerfCounterGroup g({PerfEvent::kInstructions});
  g.start();
  volatile int sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  g.stop();
  if (g.available()) {
    ASSERT_TRUE(g.value(0).has_value());
    EXPECT_GT(*g.value(0), 0u);  // ran at least some instructions
  } else {
    EXPECT_FALSE(g.value(0).has_value());
    EXPECT_FALSE(g.error().empty());
  }
  EXPECT_FALSE(g.value(99).has_value());  // out of range is safe
}

}  // namespace
}  // namespace obliv::util
