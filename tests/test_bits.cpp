#include "util/bits.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace obliv::util {
namespace {

TEST(Bits, SpreadCompactRoundTrip) {
  for (std::uint64_t x : {0ull, 1ull, 2ull, 0xdeadbeefull, 0xffffffffull}) {
    EXPECT_EQ(compact_bits(spread_bits(x)), x);
  }
}

TEST(Bits, InterleaveSmallCases) {
  // beta(i, j) with i major: bit k of i at position 2k+1, of j at 2k.
  EXPECT_EQ(interleave_bits(0, 0), 0u);
  EXPECT_EQ(interleave_bits(0, 1), 1u);
  EXPECT_EQ(interleave_bits(1, 0), 2u);
  EXPECT_EQ(interleave_bits(1, 1), 3u);
  EXPECT_EQ(interleave_bits(2, 0), 8u);
  EXPECT_EQ(interleave_bits(0, 2), 4u);
}

TEST(Bits, InterleaveRoundTripRandom) {
  Xoshiro256 rng(42);
  for (int t = 0; t < 1000; ++t) {
    const std::uint64_t i = rng.below(1u << 30);
    const std::uint64_t j = rng.below(1u << 30);
    const auto [i2, j2] = deinterleave_bits(interleave_bits(i, j));
    EXPECT_EQ(i2, i);
    EXPECT_EQ(j2, j);
  }
}

TEST(Bits, InterleaveIsBijectionOnGrid) {
  // On an n x n grid the interleaved indices are a permutation of [0, n^2).
  const std::uint64_t n = 32;
  std::vector<bool> seen(n * n, false);
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      const std::uint64_t z = interleave_bits(i, j);
      ASSERT_LT(z, n * n);
      EXPECT_FALSE(seen[z]);
      seen[z] = true;
    }
  }
}

TEST(Bits, Log2Family) {
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(3), 1u);
  EXPECT_EQ(ilog2(1024), 10u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1025), 11u);
  EXPECT_EQ(ceil_pow2(3), 4u);
  EXPECT_EQ(ceil_pow2(4), 4u);
  EXPECT_EQ(floor_pow2(5), 4u);
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(ceil_div(1, 8), 1u);
}

TEST(Bits, ReverseBits) {
  EXPECT_EQ(reverse_bits(0b001, 3), 0b100u);
  EXPECT_EQ(reverse_bits(0b110, 3), 0b011u);
  EXPECT_EQ(reverse_bits(1, 1), 1u);
}

}  // namespace
}  // namespace obliv::util
