// Golden-trace determinism of the obs subsystem on the simulator.
//
// The sim-mode tracing contract (DESIGN.md / obs/trace.hpp) is that a
// traced run is a pure function of (machine config, policy, workload):
// timestamps come from the simulator's work counter, task ids from a
// deterministic counter, and the exporter formats integers only.  So the
// same workload traced twice must produce byte-identical Chrome-trace
// JSON -- any divergence means wall-clock time, pointer values, or
// iteration order leaked into the stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "algo/sort.hpp"
#include "algo/transpose.hpp"
#include "hm/config.hpp"
#include "obs/trace.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

namespace obliv {
namespace {

/// One fixed traced workload on shared_l2(4): an SPMS sort (CGC + CGC=>SB
/// dispatch, cache misses) followed by a recursive transposition (plain SB
/// dispatch via sb_parallel2), both recorded into the same tracer.
std::string traced_workload_json(obs::Tracer& tracer) {
  const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);
  sched::SimExecutor ex(cfg);
  ex.set_tracer(&tracer);
  const std::uint64_t n = 1 << 10;
  auto buf = ex.make_buf<std::uint64_t>(n);
  util::Xoshiro256 rng(42);
  for (auto& v : buf.raw()) v = rng();
  ex.run(4 * n, [&] { algo::spms_sort(ex, buf.ref()); });
  const std::uint64_t side = 64;
  auto a = ex.make_buf<double>(side * side);
  auto out = ex.make_buf<double>(side * side);
  for (auto& v : a.raw()) v = 1.0;
  ex.run(3 * side * side, [&] {
    algo::recursive_transpose(ex, a.ref(), out.ref(), side);
  });
  ex.set_tracer(nullptr);
  return obs::chrome_trace_json(tracer);
}

TEST(TraceGolden, SimTraceIsByteIdenticalAcrossRuns) {
  if (!obs::kTracingCompiledIn) {
    GTEST_SKIP() << "tracing compiled out (OBLIV_TRACING=OFF)";
  }
  obs::Tracer t1, t2;
  const std::string a = traced_workload_json(t1);
  const std::string b = traced_workload_json(t2);
  EXPECT_EQ(t1.events_pushed(), t2.events_pushed());
  EXPECT_EQ(t1.events_dropped(), t2.events_dropped());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(a == b) << "traced runs diverged (first difference at byte "
                      << std::mismatch(a.begin(), a.end(), b.begin()).first -
                             a.begin()
                      << ")";
}

TEST(TraceGolden, ChromeTraceSchemaAndEventCoverage) {
  if (!obs::kTracingCompiledIn) {
    GTEST_SKIP() << "tracing compiled out (OBLIV_TRACING=OFF)";
  }
  obs::Tracer tracer;
  const std::string json = traced_workload_json(tracer);

  // Schema sanity: array-format container, metadata thread names, instant
  // events with scope "t", and counter events -- the subset of trace_event
  // the exporter promises chrome://tracing / Perfetto can load.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  ASSERT_GE(json.size(), 4u);
  EXPECT_EQ(json.substr(json.size() - 3), "}}\n");
  EXPECT_NE(json.find("],\"otherData\":{\"dropped_events\":"),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\",\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  // No floats, no pointers: every value after a ts/args key is an integer.
  EXPECT_EQ(json.find("0x"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);

  // Event coverage: the sort must dispatch SB hints, anchor space-bounded
  // tasks, and miss in at least L1 -- the three signals the tentpole is
  // about.  Names match the exporter's kind.detail encoding.
  EXPECT_NE(json.find("\"hint.dispatch.SB\""), std::string::npos);
  EXPECT_NE(json.find("\"anchor."), std::string::npos);
  EXPECT_NE(json.find("\"miss.L1\""), std::string::npos);
  bool saw_anchor = false, saw_sb_hint = false, saw_miss = false;
  for (std::uint32_t r = 0; r < tracer.ring_count(); ++r) {
    tracer.ring(r).for_each([&](const obs::Event& e) {
      saw_anchor = saw_anchor || e.kind == obs::EventKind::kAnchor;
      saw_sb_hint =
          saw_sb_hint ||
          (e.kind == obs::EventKind::kHintDispatch &&
           e.detail == static_cast<std::uint8_t>(sched::Hint::kSb));
      saw_miss = saw_miss || e.kind == obs::EventKind::kMiss;
    });
  }
  EXPECT_TRUE(saw_anchor);
  EXPECT_TRUE(saw_sb_hint);
  EXPECT_TRUE(saw_miss);

  // The counter registry must have been populated by run().
  bool have_work = false;
  tracer.counters().for_each([&](std::string_view name, std::uint64_t v) {
    if (name == "run.work") have_work = v > 0;
  });
  EXPECT_TRUE(have_work);
}

TEST(TraceGolden, UntracedRunMatchesTracedRunMetrics) {
  // Attaching a tracer must not perturb the simulation: work/span/misses
  // are identical with and without it (the determinism guarantee the
  // golden test above builds on).
  const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);
  const std::uint64_t n = 1 << 10;
  auto run = [&](obs::Tracer* tracer) {
    sched::SimExecutor ex(cfg);
    if (tracer != nullptr) ex.set_tracer(tracer);
    auto buf = ex.make_buf<std::uint64_t>(n);
    util::Xoshiro256 rng(42);
    for (auto& v : buf.raw()) v = rng();
    return ex.run(4 * n, [&] { algo::spms_sort(ex, buf.ref()); });
  };
  obs::Tracer tracer;
  const auto traced = run(&tracer);
  const auto untraced = run(nullptr);
  EXPECT_EQ(traced.work, untraced.work);
  EXPECT_EQ(traced.span, untraced.span);
  EXPECT_EQ(traced.pingpong, untraced.pingpong);
  EXPECT_EQ(traced.level_max_misses, untraced.level_max_misses);
}

}  // namespace
}  // namespace obliv
