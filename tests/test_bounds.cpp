// Table II bound checks as tier-1 tests.
//
// EXPERIMENTS.md validates the paper's cache/step bounds by fitting log-log
// growth exponents and checking that the measured/bound ratio stays flat
// across an n-sweep.  Those sweeps live in the bench binaries and are run
// by hand; this file promotes the methodology into fast always-on tests:
// small-n sweeps of the four core Table II workloads (transposition, FFT,
// prefix sum, SPMS sort) on shared_l2(4), asserting the fitted exponent and
// the ratio spread stay inside windows recorded from the seed measurements.
// The windows are deliberately generous -- they catch a broken scheduler or
// simulator (which shifts exponents by whole factors or blows up the
// spread), not noise (the simulator is deterministic, so any drift at all
// is a real behaviour change).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "algo/fft.hpp"
#include "algo/scan.hpp"
#include "algo/sort.hpp"
#include "algo/transpose.hpp"
#include "hm/config.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace obliv {
namespace {

struct Fit {
  double slope = 0;    ///< fitted log-log exponent of the measured series
  double spread = 0;   ///< max/min of measured/bound across the sweep
};

/// Runs `measure(n)` over `ns`, pairing each measurement with `bound(n)`.
template <class Measure, class Bound>
Fit fit_sweep(const std::vector<std::uint64_t>& ns, Measure&& measure,
              Bound&& bound) {
  std::vector<double> x, y, model;
  for (std::uint64_t n : ns) {
    x.push_back(double(n));
    y.push_back(measure(n));
    model.push_back(bound(n));
  }
  Fit f;
  f.slope = util::loglog_slope(x, y);
  f.spread = util::ratio_spread(y, model);
  return f;
}

const hm::MachineConfig& machine() {
  static const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);
  return cfg;
}

double l1_bound_factor() {
  const auto& cfg = machine();
  return double(cfg.caches_at(1)) * cfg.block(1);
}

double log_c1(double n) {
  return std::max(1.0, std::log(n) / std::log(double(machine().capacity(1))));
}

TEST(BoundsTableII, TransposeL1MissesTrackNSquaredOverQB) {
  // Theorem 1: O(n²/(q₁B₁) + B₁) max misses per L1.  Exponent 2 with the
  // small-n droop EXPERIMENTS.md records (2.32 → 2.0 plateau); the ratio
  // plateaus at exactly 7.0 from n = 512 on.
  const Fit f = fit_sweep(
      {64, 128, 256, 512},
      [](std::uint64_t n) {
        sched::SimExecutor ex(machine());
        auto a = ex.make_buf<double>(n * n);
        auto out = ex.make_buf<double>(n * n);
        for (auto& v : a.raw()) v = 1.0;
        const auto m = ex.run(3 * n * n, [&] {
          algo::mo_transpose(ex, a.ref(), out.ref(), n);
        });
        return double(m.level_max_misses[0]);
      },
      [](std::uint64_t n) { return double(n) * n / l1_bound_factor(); });
  SCOPED_TRACE(::testing::Message() << "slope=" << f.slope
                                    << " spread=" << f.spread);
  EXPECT_GE(f.slope, 1.9);
  EXPECT_LE(f.slope, 2.5);
  EXPECT_LE(f.spread, 2.5);
}

TEST(BoundsTableII, TransposeSpanTracksNSquaredOverP) {
  // Theorem 1's step bound: span exponent 2.000, ratio within 1.01×
  // recorded; window allows 1.2×.
  const Fit f = fit_sweep(
      {64, 128, 256, 512},
      [](std::uint64_t n) {
        sched::SimExecutor ex(machine());
        auto a = ex.make_buf<double>(n * n);
        auto out = ex.make_buf<double>(n * n);
        for (auto& v : a.raw()) v = 1.0;
        const auto m = ex.run(3 * n * n, [&] {
          algo::mo_transpose(ex, a.ref(), out.ref(), n);
        });
        return double(m.span);
      },
      [](std::uint64_t n) { return double(n) * n / machine().cores(); });
  SCOPED_TRACE(::testing::Message() << "slope=" << f.slope
                                    << " spread=" << f.spread);
  EXPECT_GE(f.slope, 1.95);
  EXPECT_LE(f.slope, 2.05);
  EXPECT_LE(f.spread, 1.2);
}

TEST(BoundsTableII, FftL1MissesTrackNLogCnOverQB) {
  // Theorem 2: O((n/(q₁B₁)) log_{C₁} n) misses; EXPERIMENTS.md records
  // slope 1.27 vs model 1.10 with spread 2.3× on the full sweep.
  const Fit f = fit_sweep(
      {1u << 11, 1u << 12, 1u << 13, 1u << 14},
      [](std::uint64_t n) {
        sched::SimExecutor ex(machine());
        auto buf = ex.make_buf<algo::cplx>(n);
        for (auto& v : buf.raw()) v = algo::cplx(1.0, 0.0);
        const auto m = ex.run(6 * n, [&] { algo::mo_fft(ex, buf.ref()); });
        return double(m.level_max_misses[0]);
      },
      [](std::uint64_t n) {
        return double(n) / l1_bound_factor() * log_c1(double(n));
      });
  SCOPED_TRACE(::testing::Message() << "slope=" << f.slope
                                    << " spread=" << f.spread);
  EXPECT_GE(f.slope, 1.0);
  EXPECT_LE(f.slope, 1.6);
  EXPECT_LE(f.spread, 3.0);
}

TEST(BoundsTableII, ScanL1MissesTrackNOverQB) {
  // Table II row 1: Θ(n/(q₁B₁)) misses -- a pure scan, so the exponent is
  // 1 and the ratio is essentially constant.  Sizes start at 2^14 so the
  // tree phase's O(log n) additive term is already negligible; the top end
  // (2^19, 4x the pre-PR-6 maximum) rides the sharded replay engine --
  // whose counters are engine-invariant (tests/test_psim_fuzz.cpp), so the
  // bound windows below are unchanged -- to stay inside the quick budget
  // on multi-core hosts.
  sched::SimPolicy pol;
  pol.psim = hm::PsimMode::kSharded;
  const Fit f = fit_sweep(
      {1u << 14, 1u << 16, 1u << 18, 1u << 19},
      [&pol](std::uint64_t n) {
        sched::SimExecutor ex(machine(), pol);
        auto buf = ex.make_buf<std::int64_t>(n);
        for (auto& v : buf.raw()) v = 1;
        const auto m = ex.run(2 * n, [&] {
          algo::mo_prefix_sum(ex, buf.ref());
        });
        return double(m.level_max_misses[0]);
      },
      [](std::uint64_t n) { return double(n) / l1_bound_factor(); });
  SCOPED_TRACE(::testing::Message() << "slope=" << f.slope
                                    << " spread=" << f.spread);
  EXPECT_GE(f.slope, 0.9);
  EXPECT_LE(f.slope, 1.1);
  EXPECT_LE(f.spread, 1.5);
}

TEST(BoundsTableII, SortL1MissesAndWorkTrackTheorem3) {
  // Theorem 3: O((n/(q₁B₁)) log_{C₁} n) misses, O(n log n) work; recorded
  // work slope 1.13 (spread 1.14×) and miss spread 1.44×.
  std::vector<double> x, work, work_model;
  const Fit f = fit_sweep(
      {1u << 11, 1u << 12, 1u << 13, 1u << 14},
      [&](std::uint64_t n) {
        sched::SimExecutor ex(machine());
        auto buf = ex.make_buf<std::uint64_t>(n);
        util::Xoshiro256 rng(n);
        for (auto& v : buf.raw()) v = rng();
        const auto m = ex.run(4 * n, [&] { algo::spms_sort(ex, buf.ref()); });
        x.push_back(double(n));
        work.push_back(double(m.work));
        work_model.push_back(double(n) * std::log2(double(n)));
        return double(m.level_max_misses[0]);
      },
      [](std::uint64_t n) {
        return double(n) / l1_bound_factor() * log_c1(double(n));
      });
  // Seed measurements at these sizes: miss slope 1.39 spread 1.69, work
  // slope 1.31 spread 1.44 (log_{C₁} n advances in integer steps at small
  // n, steepening both fits vs the smooth model).
  SCOPED_TRACE(::testing::Message() << "miss slope=" << f.slope
                                    << " spread=" << f.spread);
  EXPECT_GE(f.slope, 1.1);
  EXPECT_LE(f.slope, 1.65);
  EXPECT_LE(f.spread, 2.2);

  const double wslope = util::loglog_slope(x, work);
  const double wspread = util::ratio_spread(work, work_model);
  SCOPED_TRACE(::testing::Message() << "work slope=" << wslope
                                    << " spread=" << wspread);
  EXPECT_GE(wslope, 1.05);
  EXPECT_LE(wslope, 1.45);
  EXPECT_LE(wspread, 1.7);
}

}  // namespace
}  // namespace obliv
