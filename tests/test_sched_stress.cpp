// Scheduler regression stress for the work-stealing NativeExecutor.
//
// Two failure classes the shared-queue rewrite must not reintroduce:
//
//   1. deadlock/starvation under *mixed* nesting -- deep sb_parallel
//      recursion whose leaves issue concurrent cgc_pfor loops from sibling
//      tasks, so joiners must help (run their own deque, then steal) rather
//      than wait passively; and
//   2. schedule-dependent results -- MO algorithms decompose data by
//      problem size only, so scan/sort/GEP outputs must be bit-identical
//      across 1/2/8-thread executors regardless of how ranges were split
//      or stolen.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <functional>
#include <vector>

#include "algo/gep.hpp"
#include "algo/scan.hpp"
#include "algo/sort.hpp"
#include "sched/native_executor.hpp"
#include "sched/views.hpp"
#include "util/rng.hpp"

namespace obliv {
namespace {

// ---------------------------------------------------------------------------
// Deadlock / starvation stress
// ---------------------------------------------------------------------------

// Binary sb_parallel recursion; every leaf runs a cgc_pfor, so at any moment
// several sibling subtrees issue parallel loops concurrently and steal from
// each other.
void nested_storm(sched::NativeExecutor& ex, std::uint64_t lo,
                  std::uint64_t hi, std::vector<std::atomic<int>>& hits) {
  if (hi - lo <= 4) {
    ex.cgc_pfor(lo, hi, 1, [&](std::uint64_t a, std::uint64_t b) {
      for (std::uint64_t k = a; k < b; ++k) {
        hits[k].fetch_add(1, std::memory_order_relaxed);
      }
    });
    return;
  }
  const std::uint64_t mid = lo + (hi - lo) / 2;
  const std::uint64_t space = (hi - lo) * 8;
  ex.sb_parallel2(space, [&] { nested_storm(ex, lo, mid, hits); },
                  space, [&] { nested_storm(ex, mid, hi, hits); });
}

TEST(SchedStress, DeepNestingWithConcurrentPforsFromSiblings) {
  for (unsigned threads : {2u, 4u, 8u}) {
    sched::NativeExecutor ex(threads, /*grain=*/1);
    const std::uint64_t n = 1 << 12;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    nested_storm(ex, 0, n, hits);
    for (std::uint64_t k = 0; k < n; ++k) {
      ASSERT_EQ(hits[k].load(), 1) << "threads=" << threads << " k=" << k;
    }
  }
}

TEST(SchedStress, RepeatedMixedNestingDoesNotStarve) {
  sched::NativeExecutor ex(4, /*grain=*/8);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> sum{0};
    std::vector<sched::SbTask> tasks;
    for (int t = 0; t < 6; ++t) {
      tasks.push_back(sched::SbTask{1 << 16, [&] {
        ex.cgc_pfor(0, 2048, 1, [&](std::uint64_t a, std::uint64_t b) {
          std::uint64_t local = 0;
          for (std::uint64_t k = a; k < b; ++k) local += k;
          sum.fetch_add(local, std::memory_order_relaxed);
        });
      }});
    }
    ex.sb_parallel(std::move(tasks));
    ASSERT_EQ(sum.load(), 6ull * (2048ull * 2047 / 2)) << "round " << round;
  }
}

TEST(SchedStress, ManySmallRootsReuseBlockedWorkers) {
  // Each top-level op is tiny; sleeping workers must wake (or stay out of
  // the way) without losing tasks or deadlocking on the eventcount.
  sched::NativeExecutor ex(8, /*grain=*/4);
  std::uint64_t total = 0;
  for (int round = 0; round < 400; ++round) {
    std::atomic<std::uint64_t> n{0};
    ex.cgc_pfor(0, 64, 1, [&](std::uint64_t a, std::uint64_t b) {
      n.fetch_add(b - a, std::memory_order_relaxed);
    });
    total += n.load();
  }
  EXPECT_EQ(total, 400ull * 64);
}

// ---------------------------------------------------------------------------
// Determinism across thread counts
// ---------------------------------------------------------------------------

std::vector<double> run_scan(unsigned threads, std::uint64_t n) {
  sched::NativeExecutor ex(threads, /*grain=*/32);
  auto buf = ex.make_buf<double>(n);
  auto scratch = ex.make_buf<double>(n);
  util::Xoshiro256 rng(42);
  for (auto& v : buf.raw()) v = rng.uniform() - 0.5;
  algo::mo_scan_inclusive(ex, buf.ref(), scratch.ref(),
                          [](double a, double b) { return a + b; });
  return buf.raw();
}

std::vector<std::uint64_t> run_sort(unsigned threads, std::uint64_t n) {
  sched::NativeExecutor ex(threads, /*grain=*/32);
  auto buf = ex.make_buf<std::uint64_t>(n);
  util::Xoshiro256 rng(43);
  for (auto& v : buf.raw()) v = rng();
  algo::spms_sort(ex, buf.ref());
  return buf.raw();
}

std::vector<double> run_gep(unsigned threads, std::uint64_t n) {
  sched::NativeExecutor ex(threads, /*grain=*/32);
  auto buf = ex.make_buf<double>(n * n);
  util::Xoshiro256 rng(44);
  for (auto& v : buf.raw()) v = rng.uniform();
  using Mat = sched::MatView<sched::NatRef<double>>;
  algo::igep<algo::FloydWarshallInstance>(ex, Mat::full(buf.ref(), n, n), 8);
  return buf.raw();
}

template <class T>
void expect_bit_identical(const std::vector<T>& a, const std::vector<T>& b,
                          const char* what, unsigned threads) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(T)), 0)
      << what << ": result differs between 1 and " << threads << " threads";
}

TEST(SchedDeterminism, ScanBitIdenticalAcrossThreadCounts) {
  const auto base = run_scan(1, 1 << 14);
  for (unsigned threads : {2u, 8u}) {
    expect_bit_identical(base, run_scan(threads, 1 << 14), "scan", threads);
  }
}

TEST(SchedDeterminism, SortBitIdenticalAcrossThreadCounts) {
  const auto base = run_sort(1, 1 << 13);
  for (unsigned threads : {2u, 8u}) {
    expect_bit_identical(base, run_sort(threads, 1 << 13), "sort", threads);
  }
}

TEST(SchedDeterminism, GepBitIdenticalAcrossThreadCounts) {
  const auto base = run_gep(1, 96);
  for (unsigned threads : {2u, 8u}) {
    expect_bit_identical(base, run_gep(threads, 96), "gep", threads);
  }
}

}  // namespace
}  // namespace obliv
