#include "algo/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hm/config.hpp"
#include "sched/native_executor.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

namespace obliv::algo {
namespace {

using sched::SimExecutor;

double max_err(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  double e = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    e = std::max(e, std::abs(a[i] - b[i]));
  }
  return e;
}

class FftSizes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FftSizes, MatchesNaiveDftOnSim) {
  const std::uint64_t n = GetParam();
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto buf = ex.make_buf<cplx>(n);
  util::Xoshiro256 rng(n);
  std::vector<cplx> input(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    input[i] = cplx(rng.uniform() - 0.5, rng.uniform() - 0.5);
    buf.raw()[i] = input[i];
  }
  ex.run(3 * n * 2, [&] { mo_fft(ex, buf.ref()); });
  const std::vector<cplx> expect = naive_dft(input);
  EXPECT_LT(max_err(buf.raw(), expect), 1e-9 * n) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Pow2Sweep, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128, 256,
                                           512));

TEST(Fft, ImpulseGivesFlatSpectrum) {
  const std::uint64_t n = 64;
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto buf = ex.make_buf<cplx>(n);
  buf.raw()[0] = cplx(1.0, 0.0);
  ex.run(6 * n, [&] { mo_fft(ex, buf.ref()); });
  for (std::uint64_t f = 0; f < n; ++f) {
    EXPECT_NEAR(buf.raw()[f].real(), 1.0, 1e-10);
    EXPECT_NEAR(buf.raw()[f].imag(), 0.0, 1e-10);
  }
}

TEST(Fft, SingleToneConcentratesEnergy) {
  const std::uint64_t n = 128, tone = 5;
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto buf = ex.make_buf<cplx>(n);
  for (std::uint64_t t = 0; t < n; ++t) {
    buf.raw()[t] = std::polar(1.0, 2.0 * std::numbers::pi * tone * t / n);
  }
  ex.run(6 * n, [&] { mo_fft(ex, buf.ref()); });
  // Convention Y[f] = sum_t x[t] e^{-2 pi i f t / n}: the tone lands at f=5.
  EXPECT_NEAR(std::abs(buf.raw()[tone]), double(n), 1e-8);
  for (std::uint64_t f = 0; f < n; ++f) {
    if (f == tone) continue;
    EXPECT_LT(std::abs(buf.raw()[f]), 1e-8) << "f=" << f;
  }
}

TEST(Fft, InverseRoundTrips) {
  const std::uint64_t n = 256;
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto buf = ex.make_buf<cplx>(n);
  util::Xoshiro256 rng(17);
  std::vector<cplx> input(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    input[i] = cplx(rng.uniform(), rng.uniform());
    buf.raw()[i] = input[i];
  }
  ex.run(6 * n, [&] {
    mo_fft(ex, buf.ref());
    mo_ifft(ex, buf.ref());
  });
  EXPECT_LT(max_err(buf.raw(), input), 1e-10 * n);
}

TEST(Fft, ParsevalHolds) {
  const std::uint64_t n = 512;
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto buf = ex.make_buf<cplx>(n);
  util::Xoshiro256 rng(23);
  double time_energy = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    buf.raw()[i] = cplx(rng.uniform() - 0.5, rng.uniform() - 0.5);
    time_energy += std::norm(buf.raw()[i]);
  }
  ex.run(6 * n, [&] { mo_fft(ex, buf.ref()); });
  double freq_energy = 0;
  for (auto& v : buf.raw()) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * n, 1e-6 * n);
}

TEST(Fft, IterativeBaselineMatchesMoFft) {
  const std::uint64_t n = 256;
  SimExecutor ex(hm::MachineConfig::shared_l2(4));
  auto b1 = ex.make_buf<cplx>(n);
  auto b2 = ex.make_buf<cplx>(n);
  util::Xoshiro256 rng(31);
  for (std::uint64_t i = 0; i < n; ++i) {
    b1.raw()[i] = cplx(rng.uniform(), rng.uniform());
    b2.raw()[i] = b1.raw()[i];
  }
  ex.run(6 * n, [&] { mo_fft(ex, b1.ref()); });
  ex.run(6 * n, [&] { iterative_fft(ex, b2.ref()); });
  EXPECT_LT(max_err(b1.raw(), b2.raw()), 1e-9 * n);
}

TEST(Fft, NativeExecutorCorrect) {
  const std::uint64_t n = 1 << 12;
  sched::NativeExecutor ex(4);
  auto buf = ex.make_buf<cplx>(n);
  util::Xoshiro256 rng(41);
  std::vector<cplx> input(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    input[i] = cplx(rng.uniform() - 0.5, rng.uniform() - 0.5);
    buf.raw()[i] = input[i];
  }
  mo_fft(ex, buf.ref());
  mo_ifft(ex, buf.ref());
  EXPECT_LT(max_err(buf.raw(), input), 1e-9 * n);
}

TEST(Fft, MissesGrowAsNLogCN) {
  // Theorem 2: O((n / (q_i B_i)) log_{C_i} n) misses per level-i cache.
  // For n well above C_1, L1 misses per element should exceed one scan's
  // worth but stay within a multiple of (n/B) log_C n.
  const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);
  SimExecutor ex(cfg);
  const std::uint64_t n = 1 << 14;
  auto buf = ex.make_buf<cplx>(n);
  for (auto& v : buf.raw()) v = cplx(1.0, 0.0);
  auto m = ex.run(6 * n, [&] { mo_fft(ex, buf.ref()); });
  const double logc = std::log(double(n)) / std::log(double(cfg.capacity(1)));
  const double model =
      2.0 * double(n) / (cfg.caches_at(1) * cfg.block(1)) * std::max(1.0, logc);
  EXPECT_LT(double(m.level_max_misses[0]), 40.0 * model);
  EXPECT_GT(double(m.level_max_misses[0]), 0.1 * model);
}

}  // namespace
}  // namespace obliv::algo
