// Deterministic multi-client fuzz for the serving front-end.
//
// Four producer threads submit seeded randomized job mixes (scan, sort,
// transpose, list ranking) to one server whose pool runs under a chaos
// FaultPlan (schedule perturbations: forced stalls, skewed steal victims,
// dropped wakeups).  The invariants checked:
//
//   1. Every accepted job completes exactly once, with a typed outcome —
//      kOk (result matches an independently computed serial reference),
//      kCancelled, or kDeadlineExceeded (for those two the buffers are
//      unspecified: since PR 10 a cancel or deadline can poison a job
//      *mid-run*, stopping the tree part-way through its writes).
//   2. Admission never exceeds the space budget: the serve.space_peak_words
//      counter published at drain stays <= serve.space_budget_words.
//   3. No starvation: every producer's wait() calls return within the
//      tier-1 test timeout with a fixed seed (FIFO head-only admission
//      means no job can be overtaken indefinitely).
//   4. A sim-executor golden workload running concurrently with the storm
//      reproduces its pre-storm counters bit-for-bit — native serving and
//      the deterministic simulator do not share mutable state
//      (golden_workloads.hpp reuse).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "algo/listrank.hpp"
#include "fault/fault.hpp"
#include "golden_workloads.hpp"
#include "hm/config.hpp"
#include "obs/trace.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"

namespace obliv::serve {
namespace {

using sched::NatRef;

template <class T>
NatRef<T> ref_of(std::vector<T>& v) {
  return NatRef<T>(v.data(), v.size());
}

template <class T>
bool bits_equal(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

/// One producer-owned job: the live buffers, their pre-submit snapshot,
/// the serially computed expected result, and the handle.
struct ClientJob {
  Family family = Family::kScan;
  // Live buffers (what the server writes into).
  std::vector<std::int64_t> i64;
  std::vector<std::uint64_t> u64, succ, pred, dist;
  std::vector<double> t_in, t_out;
  std::uint64_t side = 0;
  // Snapshots and references.
  std::vector<std::int64_t> i64_before, i64_expect;
  std::vector<std::uint64_t> u64_before, u64_expect, dist_expect;
  std::vector<double> t_out_before, t_out_expect;

  JobHandle handle;
  bool tried_cancel = false;
  bool cancel_won = false;
  bool had_deadline = false;
};

ClientJob make_job(util::Xoshiro256& rng) {
  ClientJob j;
  switch (rng.below(4)) {
    case 0: {  // scan
      j.family = Family::kScan;
      const std::size_t n = 1 + rng.below(4096);
      j.i64.resize(n);
      for (auto& x : j.i64) x = std::int64_t(rng.below(1000)) - 500;
      j.i64_before = j.i64;
      j.i64_expect = j.i64;
      std::partial_sum(j.i64_expect.begin(), j.i64_expect.end(),
                       j.i64_expect.begin());
      break;
    }
    case 1: {  // sort
      j.family = Family::kSort;
      const std::size_t n = 1 + rng.below(4096);
      j.u64.resize(n);
      for (auto& x : j.u64) x = rng();
      j.u64_before = j.u64;
      j.u64_expect = j.u64;
      std::sort(j.u64_expect.begin(), j.u64_expect.end());
      break;
    }
    case 2: {  // transpose
      j.family = Family::kTranspose;
      j.side = std::uint64_t(1) << (2 + rng.below(4));  // 4..32
      j.t_in.resize(j.side * j.side);
      for (auto& x : j.t_in) x = rng.uniform();
      j.t_out.assign(j.side * j.side, -7.0);
      j.t_out_before = j.t_out;
      j.t_out_expect.resize(j.side * j.side);
      for (std::uint64_t r = 0; r < j.side; ++r) {
        for (std::uint64_t c = 0; c < j.side; ++c) {
          j.t_out_expect[c * j.side + r] = j.t_in[r * j.side + c];
        }
      }
      break;
    }
    default: {  // list ranking over a random-memory-order list
      j.family = Family::kListRank;
      const std::uint64_t n = 1 + rng.below(2048);
      std::vector<std::uint64_t> perm(n);
      std::iota(perm.begin(), perm.end(), 0);
      for (std::uint64_t i = n; i > 1; --i) {
        std::swap(perm[i - 1], perm[rng.below(i)]);
      }
      j.succ.assign(n, algo::kNil);
      j.pred.assign(n, algo::kNil);
      j.dist.assign(n, 0);
      j.dist_expect.assign(n, 0);
      for (std::uint64_t t = 0; t < n; ++t) {
        j.dist_expect[perm[t]] = n - 1 - t;
        if (t + 1 < n) {
          j.succ[perm[t]] = perm[t + 1];
          j.pred[perm[t + 1]] = perm[t];
        }
      }
      break;
    }
  }
  return j;
}

Request request_of(ClientJob& j) {
  switch (j.family) {
    case Family::kScan: return ScanRequest{ref_of(j.i64)};
    case Family::kSort: return SortRequest{ref_of(j.u64)};
    case Family::kTranspose:
      return TransposeRequest{ref_of(j.t_in), ref_of(j.t_out), j.side};
    default:
      return ListRankRequest{ref_of(j.succ), ref_of(j.pred),
                             ref_of(j.dist)};
  }
}

/// Checks one completed job's outcome against its reference.  Returns a
/// failure description, or empty when consistent.
std::string check_job(ClientJob& j) {
  const Status s = j.handle.wait();
  const Status s2 = j.handle.wait();  // exactly-once: observed twice,
  if (s.code() != s2.code()) return "wait() not idempotent";
  const bool ran = s.ok();
  if (!ran && s.code() != ErrorCode::kCancelled &&
      s.code() != ErrorCode::kDeadlineExceeded) {
    return "unexpected status: " + std::string(error_code_name(s.code()));
  }
  if (s.code() == ErrorCode::kCancelled && !j.tried_cancel) {
    return "kCancelled without a cancel() call";
  }
  if (s.code() == ErrorCode::kCancelled && !j.cancel_won) {
    return "kCancelled but cancel() returned false";
  }
  if (j.cancel_won && s.code() != ErrorCode::kCancelled) {
    return "cancel() returned true but status is not kCancelled";
  }
  if (s.code() == ErrorCode::kDeadlineExceeded && !j.had_deadline) {
    return "kDeadlineExceeded without a deadline";
  }
  // Buffer checks only for kOk: a cancelled or deadline-expired job may
  // have been poisoned mid-run, which leaves its output unspecified (the
  // tree stopped part-way through its schedule).
  if (!ran) return "";
  switch (j.family) {
    case Family::kScan:
      if (!bits_equal(j.i64, j.i64_expect)) return "scan buffer mismatch";
      break;
    case Family::kSort:
      if (!bits_equal(j.u64, j.u64_expect)) return "sort buffer mismatch";
      break;
    case Family::kTranspose:
      if (!bits_equal(j.t_out, j.t_out_expect)) {
        return "transpose buffer mismatch";
      }
      break;
    default:
      if (!bits_equal(j.dist, j.dist_expect)) {
        return "listrank buffer mismatch";
      }
      break;
  }
  return "";
}

TEST(ServeConcurrency, SeededMultiClientStormUnderChaos) {
  constexpr int kProducers = 4;
  constexpr int kJobsPerProducer = 24;
  constexpr std::uint64_t kSeed = 0xC0FFEE;

  // Plan outlives the server; chaos perturbs only which legal schedule
  // runs, so every job that runs must still match its serial reference.
  fault::FaultPlan plan(kSeed, fault::FaultOptions::chaos());

  ServerOptions o;
  o.threads = 4;
  o.space_budget_words = std::uint64_t(1) << 16;  // forces real queuing
  o.queue_capacity = kProducers * kJobsPerProducer;  // but no overflow
  obs::Tracer tracer(o.threads, 1 << 15);

  std::vector<std::vector<ClientJob>> jobs(kProducers);
  {
    Server srv(o);
    srv.set_tracer(&tracer);
    srv.set_fault_plan(&plan);

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        util::Xoshiro256 rng(kSeed + std::uint64_t(p) * 7919);
        auto& mine = jobs[p];
        mine.reserve(kJobsPerProducer);
        for (int i = 0; i < kJobsPerProducer; ++i) {
          mine.push_back(make_job(rng));
          ClientJob& j = mine.back();
          JobOptions jo;
          if (rng.below(8) == 0) {
            // A tight start deadline: legal outcomes are kOk (started in
            // time) or kDeadlineExceeded (swept while queued).
            j.had_deadline = true;
            jo.deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(rng.below(2000));
          }
          auto r = srv.submit(request_of(j), jo);
          ASSERT_TRUE(r.ok()) << r.status().message();
          j.handle = r.value();
          if (rng.below(4) == 0) {
            j.tried_cancel = true;
            j.cancel_won = j.handle.cancel();
          }
        }
        // Starvation check: every handle must resolve while the storm is
        // still in flight elsewhere (bounded by the tier-1 timeout).
        for (ClientJob& j : mine) j.handle.wait();
      });
    }

    // Invariant 4: the deterministic simulator is unaffected by the
    // native storm around it.
    const golden::GoldenRun before =
        golden::run_scan(hm::MachineConfig::shared_l2(4), 1024);
    const golden::GoldenRun during =
        golden::run_scan(hm::MachineConfig::shared_l2(4), 1024);
    EXPECT_EQ(before.counts, during.counts);

    for (auto& t : producers) t.join();
    srv.shutdown();
    srv.set_fault_plan(nullptr);

    const ServerStats st = srv.stats();
    EXPECT_EQ(st.submitted,
              std::uint64_t(kProducers) * kJobsPerProducer);
    EXPECT_EQ(st.failed, 0u);
    EXPECT_EQ(st.rejected, 0u);
    // Exactly-once accounting: each accepted job is counted under one
    // terminal outcome.
    EXPECT_EQ(st.completed_ok + st.cancelled + st.deadline_exceeded,
              st.submitted);
    EXPECT_LE(st.space_peak_words, st.space_budget_words);
    EXPECT_GT(st.space_peak_words, 0u);
  }

  // Chaos actually engaged the scheduler's decision points.
  EXPECT_GT(plan.decisions(), 0u);

  // Invariant 2 from the published counters (what a monitoring pipeline
  // would read), not just the in-process stats struct.
  const obs::CounterRegistry& c = tracer.counters();
  EXPECT_GT(c.value("serve.space_budget_words"), 0u);
  EXPECT_LE(c.value("serve.space_peak_words"),
            c.value("serve.space_budget_words"));
  // The live gauges are maintained by the server itself (not recomputed
  // at publish): after a full drain both must have returned to zero.
  EXPECT_EQ(c.value("serve.queue_depth"), 0u);
  EXPECT_EQ(c.value("serve.inflight"), 0u);

  int completed = 0;
  for (auto& mine : jobs) {
    for (ClientJob& j : mine) {
      const std::string err = check_job(j);
      EXPECT_EQ(err, "") << family_name(j.family) << " job " << j.handle.id();
      ++completed;
    }
  }
  EXPECT_EQ(completed, kProducers * kJobsPerProducer);
}

TEST(ServeConcurrency, ConcurrentSubmitAndShutdownIsClean) {
  // Producers race shutdown(): every submit either yields a handle that
  // completes, or a typed kUnavailable rejection — never a hang or tear.
  constexpr int kProducers = 3;
  ServerOptions o;
  o.threads = 2;
  Server srv(o);

  std::vector<std::vector<ClientJob>> jobs(kProducers);
  std::vector<std::thread> producers;
  std::atomic<int> unavailable{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      util::Xoshiro256 rng(555 + std::uint64_t(p));
      for (int i = 0; i < 16; ++i) {
        jobs[p].push_back(make_job(rng));
        ClientJob& j = jobs[p].back();
        auto r = srv.submit(request_of(j));
        if (!r.ok()) {
          EXPECT_EQ(r.status().code(), ErrorCode::kUnavailable);
          unavailable.fetch_add(1);
          jobs[p].pop_back();
          continue;
        }
        j.handle = r.value();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  srv.shutdown();
  for (auto& t : producers) t.join();

  for (auto& mine : jobs) {
    for (ClientJob& j : mine) {
      const std::string err = check_job(j);
      EXPECT_EQ(err, "") << family_name(j.family);
    }
  }
  const ServerStats st = srv.stats();
  EXPECT_EQ(st.submitted, st.completed_ok + st.cancelled +
                              st.deadline_exceeded);
  EXPECT_EQ(st.rejected, std::uint64_t(unavailable.load()));
}

}  // namespace
}  // namespace obliv::serve
