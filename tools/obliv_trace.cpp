// obliv-trace: trace analytics CLI.
//
// Front-end for obs/analysis.hpp.  Three ways in:
//
//   obliv-trace analyze <trace.json> [--weights=w1,w2,...]
//       Ingest a Chrome trace exported by write_chrome_trace() and print
//       the work/span/parallelism report for every run it contains.
//       Refuses (exit 2) a trace whose flight-recorder rings overwrote
//       events: a truncated stream breaks begin/end nesting and would
//       silently yield a wrong span.
//
//   obliv-trace run <algo> [--n=N] [--weights=...] [--trace-out=PATH]
//       Run one algorithm in-process on the reference machine
//       (shared_l2(4)) with the tracer attached, print the report plus
//       histogram metrics, and optionally export the raw trace
//       (--trace-out= / OBLIV_TRACE_OUT, same contract as the benches).
//
//   obliv-trace bench [--out=PATH]
//       Run all seven paper algorithms at fixed sizes with fixed seeds
//       and write the work/span/parallelism + Brent-speedup summary as
//       JSON (default BENCH_span.json).  Output is byte-deterministic:
//       logical work-clock metrics only, fixed float formatting.
//
// Exit codes: 0 ok, 1 usage or I/O or malformed trace, 2 trace refused
// because events were dropped.
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "algo/fft.hpp"
#include "algo/gep.hpp"
#include "algo/listrank.hpp"
#include "algo/scan.hpp"
#include "algo/sort.hpp"
#include "algo/transpose.hpp"
#include "hm/config.hpp"
#include "obs/analysis.hpp"
#include "obs/trace.hpp"
#include "sched/sim_executor.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"

using namespace obliv;

namespace {

// Large enough that none of the built-in workloads drop events; each
// workload gets a fresh tracer so rings never accumulate across runs.
constexpr std::size_t kRingCapacity = std::size_t{1} << 20;

// ---------------------------------------------------------------------------
// Built-in workloads (deterministic inputs, reference machine).
// ---------------------------------------------------------------------------

struct Workload {
  const char* name;
  const char* what;
  std::uint64_t n;  ///< problem size knob (elements or matrix side)
  void (*run)(sched::SimExecutor& ex, std::uint64_t n);
};

void run_scan(sched::SimExecutor& ex, std::uint64_t n) {
  auto buf = ex.make_buf<std::int64_t>(n);
  for (auto& v : buf.raw()) v = 1;
  ex.run(2 * n, [&] { algo::mo_prefix_sum(ex, buf.ref()); });
}

void run_transpose(sched::SimExecutor& ex, std::uint64_t n) {
  auto a = ex.make_buf<double>(n * n);
  auto out = ex.make_buf<double>(n * n);
  util::Xoshiro256 rng(7);
  for (auto& v : a.raw()) v = rng.uniform();
  ex.run(3 * n * n, [&] { algo::mo_transpose(ex, a.ref(), out.ref(), n); });
}

void run_matmul(sched::SimExecutor& ex, std::uint64_t n) {
  using Mat = sched::MatView<sched::SimRef<double>>;
  auto c = ex.make_buf<double>(n * n);
  auto a = ex.make_buf<double>(n * n);
  auto b = ex.make_buf<double>(n * n);
  util::Xoshiro256 rng(11);
  for (auto& v : a.raw()) v = rng.uniform();
  for (auto& v : b.raw()) v = rng.uniform();
  ex.run(4 * n * n, [&] {
    algo::mo_matmul(ex, Mat::full(c.ref(), n, n), Mat::full(a.ref(), n, n),
                    Mat::full(b.ref(), n, n));
  });
}

void run_fft(sched::SimExecutor& ex, std::uint64_t n) {
  auto buf = ex.make_buf<algo::cplx>(n);
  util::Xoshiro256 rng(13);
  for (auto& v : buf.raw()) v = algo::cplx(rng.uniform(), 0.0);
  ex.run(6 * n, [&] { algo::mo_fft(ex, buf.ref()); });
}

void run_sort(sched::SimExecutor& ex, std::uint64_t n) {
  auto buf = ex.make_buf<std::uint64_t>(n);
  util::Xoshiro256 rng(17);
  for (auto& v : buf.raw()) v = rng();
  ex.run(4 * n, [&] { algo::spms_sort(ex, buf.ref()); });
}

void run_igep(sched::SimExecutor& ex, std::uint64_t n) {
  using Mat = sched::MatView<sched::SimRef<double>>;
  auto buf = ex.make_buf<double>(n * n);
  util::Xoshiro256 rng(19);
  for (auto& v : buf.raw()) v = rng.uniform() + 0.1;
  ex.run(n * n, [&] {
    algo::igep<algo::FloydWarshallInstance>(ex, Mat::full(buf.ref(), n, n));
  });
}

void run_listrank(sched::SimExecutor& ex, std::uint64_t n) {
  // Random-permutation linked list (same construction as bench_listrank).
  std::vector<std::uint64_t> perm(n);
  for (std::uint64_t i = 0; i < n; ++i) perm[i] = i;
  util::Xoshiro256 rng(23);
  for (std::uint64_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.below(i)]);
  }
  auto sb = ex.make_buf<std::uint64_t>(n);
  auto pb = ex.make_buf<std::uint64_t>(n);
  auto db = ex.make_buf<std::uint64_t>(n);
  for (auto& v : sb.raw()) v = algo::kNil;
  for (auto& v : pb.raw()) v = algo::kNil;
  for (std::uint64_t t = 0; t + 1 < n; ++t) {
    sb.raw()[perm[t]] = perm[t + 1];
    pb.raw()[perm[t + 1]] = perm[t];
  }
  ex.run(8 * n, [&] { algo::mo_list_rank(ex, sb.ref(), pb.ref(), db.ref()); });
}

constexpr Workload kWorkloads[] = {
    {"scan", "prefix sums (Sec III-A)", 1u << 12, run_scan},
    {"transpose", "MO-MT matrix transposition (Thm 1)", 64, run_transpose},
    {"matmul", "recursive matrix multiply (Sec III-B)", 32, run_matmul},
    {"fft", "MO-FFT (Thm 2)", 1u << 12, run_fft},
    {"sort", "SPMS sample-partition sort (Thm 3-5)", 1u << 12, run_sort},
    // n=64: n^2 words overflow an L1 (2048w), so the root anchors at the
    // shared L2 and the quadrant rounds fan out across the four L1s; at
    // n=32 the whole problem fits one L1 and correctly serializes.
    {"igep", "I-GEP Floyd-Warshall (Sec IV, Table I)", 64, run_igep},
    {"listrank", "MO-LR list ranking (Thm 7)", 1u << 11, run_listrank},
};

const Workload* find_workload(std::string_view name) {
  for (const auto& w : kWorkloads) {
    if (name == w.name) return &w;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Flag helpers
// ---------------------------------------------------------------------------

bool flag_value(int argc, char** argv, std::string_view key,
                std::string& out) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.size() > key.size() && arg.substr(0, key.size()) == key) {
      out = std::string(arg.substr(key.size()));
      return true;
    }
  }
  return false;
}

std::vector<std::uint64_t> parse_weights(const std::string& csv) {
  std::vector<std::uint64_t> out;
  std::stringstream ss(csv);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::strtoull(tok.c_str(), nullptr, 10));
  }
  return out;
}

int usage() {
  std::fprintf(
      stderr,
      "obliv-trace: work/span analytics over obs traces\n"
      "\n"
      "usage:\n"
      "  obliv-trace analyze <trace.json> [--weights=w1,w2,...]\n"
      "  obliv-trace run <algo> [--n=N] [--weights=...] [--trace-out=PATH]\n"
      "  obliv-trace bench [--out=PATH]\n"
      "  obliv-trace list\n"
      "\n"
      "algos: ");
  for (const auto& w : kWorkloads) std::fprintf(stderr, "%s ", w.name);
  std::fprintf(stderr, "\nexit codes: 0 ok, 1 error, 2 trace refused "
                       "(dropped events)\n");
  return 1;
}

// ---------------------------------------------------------------------------
// Modes
// ---------------------------------------------------------------------------

// Serve job-lane summary.  Traces recorded while a serve::Server was
// attached carry kJobAdmit/kJobBegin/kJobEnd events (job seq in `a`,
// Family in `detail`, wait/run ns in the begin/end `b`, ErrorCode in the
// end `c`), plus kJobCancel (poison-to-completion ns in `b`, poison reason
// in `c`) for jobs condemned mid-run and kJobShed (queue-wait p99 in `b`,
// retry hint ms in `c`) for overload refusals.  A served trace may contain
// *only* those events -- the sim DAG analysis has nothing to chew on then,
// but the job lane is still worth a report, so this prints independently
// of obs::analyze().
bool print_serve_summary(const obs::TraceData& trace) {
  struct FamilyStats {
    std::uint64_t admitted = 0, completed = 0, ok = 0;
    std::uint64_t cancelled = 0, deadline = 0, shed = 0;
    std::vector<std::uint64_t> wait_ns, run_ns, poison_ns;
  };
  std::map<std::uint8_t, FamilyStats> fams;
  for (const obs::Event& e : trace.events) {
    switch (e.kind) {
      case obs::EventKind::kJobAdmit:
        fams[e.detail].admitted++;
        break;
      case obs::EventKind::kJobBegin:
        fams[e.detail].wait_ns.push_back(e.b);
        break;
      case obs::EventKind::kJobEnd: {
        FamilyStats& fs = fams[e.detail];
        fs.completed++;
        if (e.c == 0) fs.ok++;
        fs.run_ns.push_back(e.b);
        break;
      }
      case obs::EventKind::kJobCancel: {
        // c carries sched::CancelToken::Reason: 1 = cancel, 2 = deadline.
        FamilyStats& fs = fams[e.detail];
        if (e.c == 2) {
          fs.deadline++;
        } else {
          fs.cancelled++;
        }
        fs.poison_ns.push_back(e.b);
        break;
      }
      case obs::EventKind::kJobShed:
        fams[e.detail].shed++;
        break;
      default:
        break;
    }
  }
  if (fams.empty()) return false;

  auto p50 = [](std::vector<std::uint64_t>& v) -> double {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    return static_cast<double>(v[v.size() / 2]) / 1e3;
  };
  auto max_us = [](const std::vector<std::uint64_t>& v) -> double {
    if (v.empty()) return 0.0;
    return static_cast<double>(*std::max_element(v.begin(), v.end())) / 1e3;
  };

  std::printf("serve job lane\n");
  std::printf("  %-10s %8s %8s %6s %12s %12s %12s %12s\n", "family", "admit",
              "done", "ok", "wait p50 us", "wait max us", "run p50 us",
              "run max us");
  bool any_condemned = false, any_shed = false;
  for (auto& [fam, fs] : fams) {
    const auto f = static_cast<serve::Family>(fam);
    std::printf("  %-10s %8" PRIu64 " %8" PRIu64 " %6" PRIu64
                " %12.1f %12.1f %12.1f %12.1f\n",
                std::string(serve::family_name(f)).c_str(), fs.admitted,
                fs.completed, fs.ok, p50(fs.wait_ns), max_us(fs.wait_ns),
                p50(fs.run_ns), max_us(fs.run_ns));
    any_condemned |= !fs.poison_ns.empty();
    any_shed |= fs.shed != 0;
  }
  // Cancellation / overload rows only when the trace has something to say
  // (most traces have no condemned jobs and the extra table would be
  // noise).  "poison" latencies are poison-to-completion: how fast the
  // tree unwound once condemned.
  if (any_condemned || any_shed) {
    std::printf("  cancellation / overload\n");
    std::printf("  %-10s %8s %8s %8s %14s %14s\n", "family", "cancel",
                "dl-run", "shed", "poison p50 us", "poison max us");
    for (auto& [fam, fs] : fams) {
      if (fs.poison_ns.empty() && fs.shed == 0) continue;
      const auto f = static_cast<serve::Family>(fam);
      std::printf("  %-10s %8" PRIu64 " %8" PRIu64 " %8" PRIu64
                  " %14.1f %14.1f\n",
                  std::string(serve::family_name(f)).c_str(), fs.cancelled,
                  fs.deadline, fs.shed, p50(fs.poison_ns),
                  max_us(fs.poison_ns));
    }
  }
  return true;
}

int report_all(const obs::TraceData& trace, const obs::AnalysisOptions& opts,
               std::string_view title_prefix) {
  if (trace.dropped_events != 0) {
    std::fprintf(stderr,
                 "obliv-trace: refusing to analyze: %" PRIu64
                 " events were dropped by the flight recorder; the "
                 "begin/end nesting is incomplete and any span computed "
                 "from it would be wrong.  Re-record with a larger ring "
                 "(Tracer capacity) or a smaller run.\n",
                 trace.dropped_events);
    return 2;
  }
  auto runs = obs::analyze(trace, opts);
  if (!runs.ok()) {
    // A trace recorded from a serve::Server has job-lane events but no sim
    // task DAG; that is a complete, analyzable artifact in its own right,
    // not an error.
    if (print_serve_summary(trace)) return 0;
    std::fprintf(stderr, "obliv-trace: %s\n",
                 runs.status().message().c_str());
    return 1;
  }
  for (std::size_t i = 0; i < runs.value().size(); ++i) {
    std::string title(title_prefix);
    if (runs.value().size() > 1) {
      title += " (run " + std::to_string(i + 1) + " of " +
               std::to_string(runs.value().size()) + ")";
    }
    std::fputs(obs::render_report(runs.value()[i], title).c_str(), stdout);
    if (i + 1 < runs.value().size()) std::fputs("\n", stdout);
  }
  // Mixed traces (sim DAG + serve lane) get both reports.
  print_serve_summary(trace);
  return 0;
}

int mode_analyze(int argc, char** argv) {
  if (argc < 3) return usage();
  const char* path = argv[2];
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "obliv-trace: cannot open %s\n", path);
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  auto trace = obs::parse_chrome_trace(json);
  if (!trace.ok()) {
    std::fprintf(stderr, "obliv-trace: %s: %s\n", path,
                 trace.status().message().c_str());
    return 1;
  }
  obs::AnalysisOptions opts;
  std::string w;
  if (flag_value(argc, argv, "--weights=", w)) opts.miss_weights =
      parse_weights(w);
  return report_all(trace.value(), opts, path);
}

int mode_run(int argc, char** argv) {
  if (argc < 3) return usage();
  const Workload* w = find_workload(argv[2]);
  if (w == nullptr) {
    std::fprintf(stderr, "obliv-trace: unknown algo '%s' (try list)\n",
                 argv[2]);
    return 1;
  }
  std::uint64_t n = w->n;
  std::string s;
  if (flag_value(argc, argv, "--n=", s)) {
    n = std::strtoull(s.c_str(), nullptr, 10);
    if (n == 0) {
      std::fprintf(stderr, "obliv-trace: bad --n\n");
      return 1;
    }
  }
  const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);
  obs::Tracer tracer(1, kRingCapacity);
  sched::SimExecutor ex(cfg);
  ex.set_tracer(&tracer);
  w->run(ex, n);
  ex.set_tracer(nullptr);

  const std::string out = obs::resolve_trace_out(argc, argv);
  if (!out.empty()) obs::write_chrome_trace(out, tracer);

  obs::AnalysisOptions opts;
  if (flag_value(argc, argv, "--weights=", s)) opts.miss_weights =
      parse_weights(s);
  std::string title = std::string(w->name) + " n=" + std::to_string(n) +
                      " on " + cfg.describe();
  const int rc = report_all(obs::capture_trace(tracer), opts, title);
  if (rc != 0) return rc;
  const std::string hist = obs::render_histograms(tracer.counters());
  if (!hist.empty()) {
    std::fputs("\n-- histogram metrics --\n", stdout);
    std::fputs(hist.c_str(), stdout);
  }
  return 0;
}

void json_speedups(std::string& out, const std::vector<obs::SpeedupRow>& sp) {
  char tmp[128];
  out += "[";
  for (std::size_t i = 0; i < sp.size(); ++i) {
    std::snprintf(tmp, sizeof tmp,
                  "%s{\"p\":%u,\"work_clock\":%.6f,\"mem_weighted\":%.6f}",
                  i == 0 ? "" : ",", sp[i].p, sp[i].predicted_speedup,
                  sp[i].predicted_speedup_mem);
    out += tmp;
  }
  out += "]";
}

void json_u64s(std::string& out, const std::vector<std::uint64_t>& v) {
  char tmp[32];
  out += "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::snprintf(tmp, sizeof tmp, "%s%" PRIu64, i == 0 ? "" : ",", v[i]);
    out += tmp;
  }
  out += "]";
}

int mode_bench(int argc, char** argv) {
  std::string path = "BENCH_span.json";
  std::string s;
  if (flag_value(argc, argv, "--out=", s)) path = s;

  const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);
  std::string json = "{\n  \"machine\": \"" + cfg.describe() + "\",\n";
  json += "  \"note\": \"logical work-clock metrics from the deterministic "
          "simulator; speedups are Brent bounds W/(W/p+S), not wall-clock "
          "measurements\",\n";
  json += "  \"algorithms\": [\n";

  char tmp[256];
  bool first = true;
  for (const auto& w : kWorkloads) {
    obs::Tracer tracer(1, kRingCapacity);
    sched::SimExecutor ex(cfg);
    ex.set_tracer(&tracer);
    w.run(ex, w.n);
    ex.set_tracer(nullptr);
    if (tracer.events_dropped() != 0) {
      std::fprintf(stderr,
                   "obliv-trace: bench workload %s dropped %" PRIu64
                   " events; enlarge kRingCapacity\n",
                   w.name, tracer.events_dropped());
      return 2;
    }
    auto runs = obs::analyze_tracer(tracer);
    if (!runs.ok() || runs.value().size() != 1) {
      std::fprintf(stderr, "obliv-trace: bench workload %s: %s\n", w.name,
                   runs.ok() ? "expected exactly one run"
                             : runs.status().message().c_str());
      return 1;
    }
    const obs::RunAnalysis& r = runs.value()[0];
    if (!r.span_matches_recorded) {
      std::fprintf(stderr,
                   "obliv-trace: bench workload %s: recomputed span "
                   "disagrees with executor (%" PRIu64 " tasks)\n",
                   w.name, r.span_mismatches);
      return 1;
    }
    if (!first) json += ",\n";
    first = false;
    std::snprintf(tmp, sizeof tmp,
                  "    {\"name\":\"%s\",\"n\":%" PRIu64 ",\"tasks\":%zu,"
                  "\"work\":%" PRIu64 ",\"span\":%" PRIu64
                  ",\"parallelism\":%.6f,",
                  w.name, w.n, r.tasks.size(), r.work, r.span, r.parallelism);
    json += tmp;
    std::snprintf(tmp, sizeof tmp,
                  "\"mem_work\":%" PRIu64 ",\"mem_span\":%" PRIu64
                  ",\"mem_parallelism\":%.6f,",
                  r.mem_work, r.mem_span, r.mem_parallelism);
    json += tmp;
    json += "\"miss_weights\":";
    json_u64s(json, r.miss_weights);
    json += ",\"total_misses\":";
    json_u64s(json, r.total_misses);
    json += ",\"predicted_speedup\":";
    json_speedups(json, r.speedups);
    json += "}";
    std::printf("%-10s n=%-6" PRIu64 " tasks=%-6zu work=%-10" PRIu64
                " span=%-8" PRIu64 " parallelism=%.3f\n",
                w.name, w.n, r.tasks.size(), r.work, r.span, r.parallelism);
  }
  json += "\n  ]\n}\n";

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "obliv-trace: cannot write %s\n", path.c_str());
    return 1;
  }
  out << json;
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

int mode_list() {
  for (const auto& w : kWorkloads) {
    std::printf("%-10s n=%-6" PRIu64 " %s\n", w.name, w.n, w.what);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string_view mode = argv[1];
  if (mode == "analyze") return mode_analyze(argc, argv);
  if (mode == "run") return mode_run(argc, argv);
  if (mode == "bench") return mode_bench(argc, argv);
  if (mode == "list") return mode_list();
  return usage();
}
