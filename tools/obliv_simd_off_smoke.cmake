# Smoke for the OBLIV_SIMD=OFF configuration: configure a nested build with
# the SIMD layer compiled out, build three examples spanning the kernelized
# families (scan/sort, GEP, FFT), and run them -- examples self-check and
# return non-zero on failure, so an OFF build that mis-dispatches or fails
# to compile surfaces here rather than on a user's non-vector host.
#
# The nested build directory persists between ctest runs, so after the
# first (slow, full-library) build this is an incremental no-op build plus
# three example runs.
#
# Invoked by ctest:
#   cmake -DOBLIV_SOURCE=<repo> -DOBLIV_NESTED_DIR=<dir> [-DOBLIV_CXX=<cxx>]
#         -P obliv_simd_off_smoke.cmake
if(NOT DEFINED OBLIV_SOURCE OR NOT DEFINED OBLIV_NESTED_DIR)
  message(FATAL_ERROR "pass -DOBLIV_SOURCE=<repo> -DOBLIV_NESTED_DIR=<dir>")
endif()

set(configure_args
  -S "${OBLIV_SOURCE}" -B "${OBLIV_NESTED_DIR}"
  -DOBLIV_SIMD=OFF -DCMAKE_BUILD_TYPE=RelWithDebInfo)
if(DEFINED OBLIV_CXX)
  list(APPEND configure_args "-DCMAKE_CXX_COMPILER=${OBLIV_CXX}")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" ${configure_args}
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "OBLIV_SIMD=OFF configure failed (rc=${rc}):\n${out}\n${err}")
endif()

set(targets example_quickstart example_apsp_roadgrid example_spectral_filter)
execute_process(
  COMMAND "${CMAKE_COMMAND}" --build "${OBLIV_NESTED_DIR}"
          --target ${targets} -j
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "OBLIV_SIMD=OFF build failed (rc=${rc}):\n${out}\n${err}")
endif()

foreach(target ${targets})
  execute_process(
    COMMAND "${OBLIV_NESTED_DIR}/examples/${target}"
    WORKING_DIRECTORY "${OBLIV_NESTED_DIR}"
    OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "${target} failed under OBLIV_SIMD=OFF (rc=${rc}):\n${out}\n${err}")
  endif()
endforeach()

message(STATUS "OBLIV_SIMD=OFF smoke ok: ${targets}")
