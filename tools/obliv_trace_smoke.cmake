# Smoke for the obliv-trace CLI: run scan n=2^12 in-process with a trace
# export, assert the report schema, then re-ingest the exported trace and
# assert the analyzer accepts it (zero drops => exit 0).
#
# Invoked by ctest:  cmake -DOBLIV_TRACE=<bin> -P obliv_trace_smoke.cmake
if(NOT DEFINED OBLIV_TRACE)
  message(FATAL_ERROR "pass -DOBLIV_TRACE=<path to obliv-trace>")
endif()

set(trace_file "${CMAKE_CURRENT_BINARY_DIR}/obliv_trace_smoke.json")

execute_process(
  COMMAND "${OBLIV_TRACE}" run scan --n=4096 "--trace-out=${trace_file}"
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "obliv-trace run scan failed (rc=${rc}):\n${out}\n${err}")
endif()

# Report schema: every section the analyzer promises must be present.
foreach(needle
        "== span report:"
        "tasks "
        "parallelism"
        "span check:"
        "recomputed == executor-recorded"
        "predicted speedup (Brent"
        "miss attribution by recursion depth"
        "miss attribution at L"
        "histogram metrics")
  string(FIND "${out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "report is missing '${needle}':\n${out}")
  endif()
endforeach()

# Zero drops: the exporter warns on stderr when rings overwrote events;
# a clean smoke run must not.
string(FIND "${err}" "dropped" droppos)
if(NOT droppos EQUAL -1)
  message(FATAL_ERROR "smoke trace dropped events:\n${err}")
endif()

# Round-trip: the exported trace must parse and analyze to the same report
# body (the title line differs: algo name vs file path).
execute_process(
  COMMAND "${OBLIV_TRACE}" analyze "${trace_file}"
  OUTPUT_VARIABLE out2
  RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "obliv-trace analyze round-trip failed (rc=${rc2})")
endif()
string(FIND "${out2}" "recomputed == executor-recorded" pos2)
if(pos2 EQUAL -1)
  message(FATAL_ERROR "round-trip report lost the span check:\n${out2}")
endif()

file(REMOVE "${trace_file}")
message(STATUS "obliv-trace smoke ok")
