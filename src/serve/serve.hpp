// obliv::serve -- a multi-job serving front-end over one shared pool.
//
// Everything below src/serve runs one algorithm invocation at a time; this
// layer multiplexes a *stream* of typed algorithm requests (the seven paper
// families, over caller-owned buffers) onto a single NativeExecutor, so one
// long-running process can serve many concurrent clients.  The paper's SB
// space bounds are what make that safe: each family's anchored working set
// S(n) is a closed form of the request size, so admission control can keep
// the sum of in-flight working sets under a configured cache budget --
// concurrent jobs then cannot evict each other's anchored sets, which is
// the co-scheduling analogue of the single-job anchoring rule.
//
// Scheduling shape: the server owns a dispatcher thread that enters the
// pool's run_root() ONCE, with a service root that lives for the server's
// lifetime, and forks each admitted job as a heap-held sibling task tree.
// Workers steal whole jobs FIFO (coarsest-first), and every nested parallel
// construct a job's algorithm issues takes the pool's mutex-free nested
// path -- so N concurrent jobs interleave at task granularity on the same
// deques, rather than serializing per top-level construct at root_mu_.
// While jobs are in flight the dispatcher helps execute them via join(),
// which means admission / deadline / cancellation processing has latency
// bounded by one job's duration -- acceptable for a batch-of-jobs server
// and what keeps the design allocation- and lock-free on the hot path.
//
// Per-job isolation (PR 5): each job body runs under try/catch and maps
// failures onto the typed Status -- std::bad_alloc (including injected
// kAllocBuf faults) to kResourceExhausted, obliv::Error to its own code,
// anything else to kInternal -- so one failing job never takes down the
// server or its siblings.  Schedule chaos attached via set_fault_plan()
// perturbs only *which* legal schedule runs; results are bit-identical
// (the PR 5 fuzz property, re-checked for served jobs in
// tests/test_serve_concurrency.cpp).
//
// Cancellation and overload control (PR 10): every job tree carries a
// sched::CancelToken, so cancel() works on *running* jobs too -- the tree
// unwinds cooperatively at the executor's fork/anchor checks and completes
// with kCancelled (output buffers unspecified).  A deadline watchdog rides
// the dispatcher (join_interruptible: no extra thread on 1-core hosts) and
// poisons jobs whose deadline expires mid-run (kDeadlineExceeded); the
// poisoned job's space budget is released immediately so queued admissions
// unblock before the unwind finishes.  When the recent queue-wait p99
// crosses ServerOptions::shed_wait_p99_ns with a backlog present, submits
// are shed with kUnavailable plus a retry-after hint; submit_with_retry()
// is the matching bounded, seeded-jitter client loop.  See DESIGN.md §5h.
//
// Per-request observability (PR 4/7): admissions are emitted by the
// dispatcher on ring 0 and job begin/end by the executing worker on its
// own ring, all on the dedicated kServeLane, tagged with a dense job
// sequence number -- `obliv-trace analyze` prints a per-job latency
// summary for any served trace.  Aggregate counters (jobs by outcome,
// space peak vs budget, queue peak) are published into the tracer's
// CounterRegistry at drain time, single-threaded.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <variant>

#include "algo/fft.hpp"
#include "algo/spmdv.hpp"
#include "fault/fault.hpp"
#include "fault/status.hpp"
#include "obs/trace.hpp"
#include "sched/native_executor.hpp"
#include "util/rng.hpp"

namespace obliv::serve {

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// The seven paper algorithm families a server accepts.  Stamped into the
/// kJob* events' detail byte, so keep values dense and stable.
enum class Family : std::uint8_t {
  kScan = 0,
  kSort,
  kFft,
  kTranspose,
  kGep,
  kListRank,
  kSpmdv,
};
inline constexpr std::size_t kFamilies = 7;

std::string_view family_name(Family f);

// Request payloads are *views* over caller-owned memory (NatRef carries a
// pointer + length, nothing more).  The caller keeps every referenced
// buffer alive and unaliased by other live jobs until the job's handle
// reports completion; results are written in place, exactly as the direct
// algorithm entry points do.

/// In-place inclusive prefix sum over int64 (Sec III-A).  S(n) = 2n.
struct ScanRequest {
  sched::NatRef<std::int64_t> data;
};

/// SPMS sort of uint64 keys, ascending (Thm 3-5).  S(n) = 4n.
struct SortRequest {
  sched::NatRef<std::uint64_t> keys;
};

/// In-place MO-FFT (Thm 2); size must be a power of two.  S(n) = 6n words
/// (3n complex elements of 2 words each).
struct FftRequest {
  sched::NatRef<algo::cplx> data;
};

/// Out-of-place MO-MT transposition of an n x n matrix (Thm 1); n must be
/// a power of two and `in`/`out` may not alias.  S(n) = 3n^2.
struct TransposeRequest {
  sched::NatRef<double> in;
  sched::NatRef<double> out;
  std::uint64_t n = 0;  ///< matrix side
};

/// In-place I-GEP Floyd-Warshall over an n x n matrix (Sec IV).  S = n^2.
struct GepRequest {
  sched::NatRef<double> matrix;
  std::uint64_t n = 0;  ///< matrix side
};

/// MO-LR list ranking (Thm 7): succ/pred use algo::kNil as terminators,
/// dist receives the rank.  All three the same length.  S(n) ~= 8n (the
/// recursion's internal scratch dominates the three caller arrays).
struct ListRankRequest {
  sched::NatRef<std::uint64_t> succ;
  sched::NatRef<std::uint64_t> pred;
  sched::NatRef<std::uint64_t> dist;
};

/// SpM-DV y = A*x in the paper's (A_v, A_0) separator-reordered layout
/// (Sec V).  a0 holds y.size()+1 row offsets into av.  S = 4n + 2*nnz.
struct SpmdvRequest {
  sched::NatRef<algo::SpmEntry> av;
  sched::NatRef<std::uint64_t> a0;
  sched::NatRef<double> x;
  sched::NatRef<double> y;
};

using Request = std::variant<ScanRequest, SortRequest, FftRequest,
                             TransposeRequest, GepRequest, ListRankRequest,
                             SpmdvRequest>;

Family family_of(const Request& req);

/// Structural validation, applied at submit time: null views with nonzero
/// lengths, non-power-of-two FFT/transpose sizes, aliased transpose
/// buffers, short matrices, mismatched list-rank arrays, inconsistent
/// (A_v, A_0) shapes.  kOk means the request is safe to execute.
Status validate(const Request& req);

/// The admission-control working-set estimate: the family's SB space bound
/// S(n) in words, evaluated for this request's size.  Deterministic and
/// cheap (no data access), so clients can predict admission behavior.
std::uint64_t space_estimate_words(const Request& req);

// ---------------------------------------------------------------------------
// Server configuration / results
// ---------------------------------------------------------------------------

struct ServerOptions {
  /// Worker threads for the shared pool; 0 = hardware concurrency.
  unsigned threads = 0;
  /// Combined anchored-working-set budget for concurrently admitted jobs,
  /// in words.  A request whose own estimate exceeds this is rejected at
  /// submit (it could never be admitted); the default models a 32 MiB
  /// last-level cache.
  std::uint64_t space_budget_words = std::uint64_t{1} << 22;
  /// Bounded admission queue: submits beyond this many *waiting* jobs are
  /// rejected with kResourceExhausted (admitted jobs do not count).
  std::size_t queue_capacity = 64;
  /// Steal cut-off grain forwarded to the executor.
  std::uint64_t sequential_grain_words = 1 << 12;
  /// Overload shedding: when the p99 of recent queue waits exceeds this
  /// and a backlog exists (the queue is non-empty), submits are refused
  /// with kUnavailable carrying a retry-after hint.  0 disables shedding.
  /// The p99 is computed over a sliding window of the same samples that
  /// feed the serve.job.wait_ns histogram, so a traced run can verify the
  /// shed decisions against the exported distribution.
  std::uint64_t shed_wait_p99_ns = 0;
  /// Minimum wait samples before shedding may trigger (a cold server has
  /// no latency evidence); clamped to the sliding window size (64).
  std::uint32_t shed_min_samples = 8;
};

struct JobOptions {
  /// Deadline for *completing* the job.  A job still queued when its
  /// deadline passes completes with kDeadlineExceeded and never runs; a
  /// running job is poisoned by the dispatcher's watchdog and unwinds at
  /// the executor's next fork/anchor check, also completing with
  /// kDeadlineExceeded -- its output buffers are then unspecified (the
  /// tree stopped mid-schedule; rerun the request to get real results).
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// Aggregate server statistics; also published as serve.* counters into
/// the attached tracer's CounterRegistry at drain time.
struct ServerStats {
  std::uint64_t submitted = 0;          ///< accepted submits
  std::uint64_t completed_ok = 0;       ///< ran and returned kOk
  std::uint64_t failed = 0;             ///< ran and returned an error
  std::uint64_t rejected = 0;           ///< refused at submit (validation,
                                        ///< queue full, over-budget, drain)
  std::uint64_t shed = 0;               ///< refused under overload control
                                        ///< (not counted in `rejected`)
  std::uint64_t cancelled = 0;          ///< completed kCancelled (queued or
                                        ///< mid-run, incl. injected poisons)
  std::uint64_t cancelled_running = 0;  ///< subset of `cancelled` that was
                                        ///< poisoned after its body started
  std::uint64_t deadline_exceeded = 0;  ///< completed kDeadlineExceeded
  std::uint64_t deadline_exceeded_running = 0;  ///< subset expired mid-run
  std::uint64_t space_peak_words = 0;   ///< max combined in-flight estimate
  std::uint64_t queue_peak = 0;         ///< max waiting jobs
  std::uint64_t space_budget_words = 0; ///< the configured budget
  std::uint64_t queue_depth = 0;        ///< live gauge: jobs waiting now
  std::uint64_t inflight = 0;           ///< live gauge: jobs admitted and
                                        ///< not yet reaped
};

namespace detail {

struct Core;

/// Per-job completion record.  Immutable identity fields are set before
/// the state is visible to any other thread; the (done, status) pair flips
/// exactly once under mu.
struct JobState {
  std::uint64_t seq = 0;
  Family family = Family::kScan;
  std::uint64_t est_words = 0;

  /// The job tree's cancellation token (installed on the root task before
  /// fork, inherited by every descendant).  Living here -- not on the Job
  /// -- lets handles poison a tree without touching Job lifetime.
  sched::CancelToken token;
  /// Sticky: set the instant the job body starts on a worker.
  std::atomic<bool> begun{false};

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  bool done = false;
  Status status;
};

}  // namespace detail

/// Handle to one submitted job.  Copyable; all copies observe the same
/// completion.  Handles keep the server core (and its pool) alive, so a
/// handle outliving the Server object stays safe to wait on.
class JobHandle {
 public:
  JobHandle() = default;

  bool valid() const { return st_ != nullptr; }

  /// Dense per-server job sequence number (also in the trace events).
  std::uint64_t id() const { return st_ ? st_->seq : 0; }
  Family family() const { return st_ ? st_->family : Family::kScan; }
  std::uint64_t space_estimate() const { return st_ ? st_->est_words : 0; }

  /// True once the job has a result (non-blocking).
  bool done() const {
    if (st_ == nullptr) return false;
    std::lock_guard<std::mutex> lk(st_->mu);
    return st_->done;
  }

  /// Blocks until the job completes; returns its Status.  Every accepted
  /// job completes eventually (drain finishes queued work; cancellation
  /// and deadlines complete promptly via the poison protocol), so wait()
  /// cannot hang on a live server.
  Status wait() const;

  /// Timed wait.  Returns the job's final Status if it completed within
  /// `timeout`, or a typed kUnavailable ("still running") Status on
  /// timeout.  Never consumes the result: wait()/wait_for() may be called
  /// again, from any copy of the handle.  (kUnavailable is unambiguous
  /// here -- a *completed* job can never carry it, since submit-side
  /// kUnavailable refusals produce no handle at all.)
  Status wait_for(std::chrono::nanoseconds timeout) const;

  /// True while the job body is executing (sticky start flag && !done).
  bool running() const {
    if (st_ == nullptr) return false;
    if (!st_->begun.load(std::memory_order_acquire)) return false;
    return !done();
  }

  /// Requests cancellation; returns true iff this call decided the job's
  /// fate.  A queued job completes with kCancelled and never runs.  A
  /// *running* job is poisoned: its task tree stops forking, unwinds at
  /// the executor's next fork/anchor check (promptness bound: one
  /// sequential grain per in-flight leaf), and completes with kCancelled
  /// -- output buffers are then unspecified.  Returns false only when the
  /// job already completed (its existing status stands).  cancel() never
  /// blocks on job execution.
  bool cancel();

 private:
  friend class Server;
  friend struct detail::Core;
  JobHandle(std::shared_ptr<detail::Core> core,
            std::shared_ptr<detail::JobState> st)
      : core_(std::move(core)), st_(std::move(st)) {}

  std::shared_ptr<detail::Core> core_;
  std::shared_ptr<detail::JobState> st_;
};

class Server {
 public:
  /// Builds the pool and starts the dispatcher.  Throws obliv::Error on
  /// invalid options and propagates pool setup failures; prefer make() on
  /// untrusted input.
  explicit Server(ServerOptions opts = {});

  /// Non-throwing companion: kUnsupported / kInvalidConfig for bad
  /// options, kResourceExhausted when pool or dispatcher setup fails.
  static Result<Server> make(ServerOptions opts = {}) noexcept;

  /// Drains: equivalent to shutdown().
  ~Server();

  Server(Server&&) noexcept = default;
  Server& operator=(Server&&) noexcept = default;
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Validates and enqueues a request.  Errors: kInvalidArgument
  /// (malformed request), kResourceExhausted (queue full, or the request
  /// alone exceeds the space budget), kUnavailable (server draining, or
  /// shedding under overload -- the shed variant carries a retry-after
  /// hint readable via retry_after_ms_hint()).
  Result<JobHandle> submit(const Request& req, const JobOptions& jopts = {});

  /// Graceful drain: stops accepting submits, completes every already
  /// accepted job (queued jobs still honor their deadlines), publishes
  /// serve.* counters into the attached tracer, and joins the
  /// dispatcher.  Idempotent and safe to call concurrently.
  void shutdown();

  ServerStats stats() const;
  unsigned threads() const;
  const ServerOptions& options() const;

  /// Attaches an obs::Tracer (nullptr detaches).  Only while quiescent
  /// (no jobs in flight): rings are single-producer and the histogram
  /// registry is not thread-safe.  Give the tracer threads() rings.
  void set_tracer(obs::Tracer* tracer);

  /// Attaches schedule-chaos fault injection to the shared pool (see
  /// WorkStealingPool::set_fault_plan).  Legal-schedule perturbations
  /// only: served results are unchanged.
  void set_fault_plan(fault::FaultPlan* plan);

 private:
  std::shared_ptr<detail::Core> core_;
};

// ---------------------------------------------------------------------------
// Overload-control client helpers
// ---------------------------------------------------------------------------

/// Bounded jittered-exponential retry for shed submits.  Deterministic
/// under a fixed seed: attempt k's backoff is a pure function of
/// (seed, k, hint), so tests can assert the exact delay sequence.
struct RetryPolicy {
  std::uint32_t max_attempts = 5;          ///< total submit attempts (>= 1)
  std::chrono::milliseconds initial_backoff{1};
  std::chrono::milliseconds max_backoff{64};
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;  ///< jitter PRNG seed
};

/// Parses the retry-after hint (milliseconds) out of a shed kUnavailable
/// Status; nullopt for any other Status (including drain kUnavailable,
/// which carries no hint -- retrying a draining server is futile).
std::optional<std::uint32_t> retry_after_ms_hint(const Status& s);

/// Backoff before attempt `attempt` (1-based: the delay after the
/// attempt'th failure).  Exponential from RetryPolicy::initial_backoff,
/// capped at max_backoff, scaled by a jitter factor in [0.5, 1.0] drawn
/// from `rng`, and floored at the server's retry-after hint when one was
/// given.  Exposed separately so determinism is testable without timing.
std::chrono::milliseconds retry_backoff(const RetryPolicy& policy,
                                        std::uint32_t attempt,
                                        util::Xoshiro256& rng,
                                        std::optional<std::uint32_t> hint_ms);

/// submit() with bounded retry on shed (hinted kUnavailable) responses.
/// Sleeps retry_backoff() between attempts; returns the first
/// non-shed outcome, or the last shed Status after max_attempts.  Drain
/// kUnavailable and every other error return immediately (retrying cannot
/// help them).
Result<JobHandle> submit_with_retry(Server& server, const Request& req,
                                    const JobOptions& jopts = {},
                                    const RetryPolicy& policy = {});

}  // namespace obliv::serve
