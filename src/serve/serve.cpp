#include "serve/serve.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <deque>
#include <string>
#include <string_view>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "algo/gep.hpp"
#include "algo/listrank.hpp"
#include "algo/scan.hpp"
#include "algo/sort.hpp"
#include "algo/transpose.hpp"
#include "fault/fault.hpp"
#include "sched/views.hpp"
#include "util/bits.hpp"

namespace obliv::serve {

namespace {

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

Status invalid(const std::string& what) {
  return Status::error(ErrorCode::kInvalidArgument, what);
}

/// A view is well-formed when it is empty or carries real memory.
template <class T>
bool view_ok(const sched::NatRef<T>& r) {
  return r.size() == 0 || r.raw() != nullptr;
}

/// Steady-clock nanoseconds since the (arbitrary) epoch.  Used for poison
/// timestamps and queue-wait samples; comparable only with itself.
std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string_view family_name(Family f) {
  switch (f) {
    case Family::kScan: return "scan";
    case Family::kSort: return "sort";
    case Family::kFft: return "fft";
    case Family::kTranspose: return "transpose";
    case Family::kGep: return "gep";
    case Family::kListRank: return "listrank";
    case Family::kSpmdv: return "spmdv";
  }
  return "unknown";
}

Family family_of(const Request& req) {
  return std::visit(
      Overloaded{
          [](const ScanRequest&) { return Family::kScan; },
          [](const SortRequest&) { return Family::kSort; },
          [](const FftRequest&) { return Family::kFft; },
          [](const TransposeRequest&) { return Family::kTranspose; },
          [](const GepRequest&) { return Family::kGep; },
          [](const ListRankRequest&) { return Family::kListRank; },
          [](const SpmdvRequest&) { return Family::kSpmdv; },
      },
      req);
}

Status validate(const Request& req) {
  return std::visit(
      Overloaded{
          [](const ScanRequest& r) {
            if (!view_ok(r.data)) return invalid("scan: null data view");
            return Status();
          },
          [](const SortRequest& r) {
            if (!view_ok(r.keys)) return invalid("sort: null key view");
            return Status();
          },
          [](const FftRequest& r) {
            if (!view_ok(r.data)) return invalid("fft: null data view");
            if (r.data.size() != 0 && !util::is_pow2(r.data.size())) {
              return invalid("fft: size must be a power of two, got " +
                             std::to_string(r.data.size()));
            }
            return Status();
          },
          [](const TransposeRequest& r) {
            if (!view_ok(r.in) || !view_ok(r.out)) {
              return invalid("transpose: null matrix view");
            }
            if (r.n == 0) return Status();
            if (!util::is_pow2(r.n)) {
              return invalid("transpose: side must be a power of two, got " +
                             std::to_string(r.n));
            }
            if (r.in.size() < r.n * r.n || r.out.size() < r.n * r.n) {
              return invalid("transpose: views shorter than n*n");
            }
            if (r.in.raw() == r.out.raw()) {
              return invalid("transpose: in and out may not alias");
            }
            return Status();
          },
          [](const GepRequest& r) {
            if (!view_ok(r.matrix)) return invalid("gep: null matrix view");
            if (r.n != 0 && r.matrix.size() < r.n * r.n) {
              return invalid("gep: view shorter than n*n");
            }
            return Status();
          },
          [](const ListRankRequest& r) {
            if (!view_ok(r.succ) || !view_ok(r.pred) || !view_ok(r.dist)) {
              return invalid("listrank: null view");
            }
            if (r.succ.size() != r.pred.size() ||
                r.succ.size() != r.dist.size()) {
              return invalid("listrank: succ/pred/dist lengths differ");
            }
            return Status();
          },
          [](const SpmdvRequest& r) {
            if (!view_ok(r.av) || !view_ok(r.a0) || !view_ok(r.x) ||
                !view_ok(r.y)) {
              return invalid("spmdv: null view");
            }
            const std::uint64_t n = r.y.size();
            if (n == 0) return Status();
            if (r.a0.size() != n + 1) {
              return invalid("spmdv: a0 must hold y.size()+1 offsets");
            }
            if (r.x.size() < n) {
              return invalid("spmdv: x shorter than the row count");
            }
            // Cheap endpoint checks; per-row monotonicity is the caller's
            // contract (validating it would read the whole offset array).
            if (r.a0.load(0) != 0 || r.a0.load(n) > r.av.size()) {
              return invalid("spmdv: a0 endpoints inconsistent with av");
            }
            return Status();
          },
      },
      req);
}

std::uint64_t space_estimate_words(const Request& req) {
  return std::visit(
      Overloaded{
          [](const ScanRequest& r) -> std::uint64_t {
            return 2 * r.data.size();
          },
          [](const SortRequest& r) -> std::uint64_t {
            return 4 * r.keys.size();
          },
          [](const FftRequest& r) -> std::uint64_t {
            return 6 * r.data.size();  // 3n complex elements, 2 words each
          },
          [](const TransposeRequest& r) -> std::uint64_t {
            return 3 * r.n * r.n;
          },
          [](const GepRequest& r) -> std::uint64_t { return r.n * r.n; },
          [](const ListRankRequest& r) -> std::uint64_t {
            return 8 * r.succ.size();
          },
          [](const SpmdvRequest& r) -> std::uint64_t {
            return 4 * r.y.size() + 2 * r.av.size();
          },
      },
      req);
}

namespace {

/// Runs the validated request on the shared executor.  Zero-size requests
/// are a no-op by definition (nothing to compute, nothing to write).
void execute_request(sched::NativeExecutor& ex, const Request& req) {
  std::visit(
      Overloaded{
          [&](const ScanRequest& r) {
            if (r.data.size() != 0) algo::mo_prefix_sum(ex, r.data);
          },
          [&](const SortRequest& r) {
            if (r.keys.size() != 0) algo::spms_sort(ex, r.keys);
          },
          [&](const FftRequest& r) {
            if (r.data.size() != 0) algo::mo_fft(ex, r.data);
          },
          [&](const TransposeRequest& r) {
            if (r.n != 0) algo::mo_transpose(ex, r.in, r.out, r.n);
          },
          [&](const GepRequest& r) {
            if (r.n != 0) {
              using Mat = sched::MatView<sched::NatRef<double>>;
              algo::igep<algo::FloydWarshallInstance>(
                  ex, Mat::full(r.matrix, r.n, r.n));
            }
          },
          [&](const ListRankRequest& r) {
            if (r.succ.size() != 0) {
              algo::mo_list_rank(ex, r.succ, r.pred, r.dist);
            }
          },
          [&](const SpmdvRequest& r) {
            if (r.y.size() != 0) algo::mo_spmdv(ex, r.av, r.a0, r.x, r.y);
          },
      },
      req);
}

}  // namespace

// ---------------------------------------------------------------------------
// Core
// ---------------------------------------------------------------------------

namespace detail {

struct Core : std::enable_shared_from_this<Core> {
  /// One waiting job: everything needed to run it once admitted.
  struct Entry {
    std::shared_ptr<JobState> st;
    Request req;
    std::uint64_t submit_ns = 0;  ///< tracer clock at submit (0 = untraced)
    /// Steady-clock submit time; always stamped (feeds the overload-shed
    /// wait window even when no tracer is attached).
    std::chrono::steady_clock::time_point submit_tp{};
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
  };

  /// A client-thread trace event, parked until a ring-owning thread can
  /// emit it.  TraceRing is single-producer per ring; client threads own
  /// none, so submit() queues shed events here under mu_ and the
  /// dispatcher (or publish_counters, post-join) drains them onto ring 0.
  struct PendingEvent {
    Family family;
    std::uint64_t a, b, c;
  };

  /// One admitted job: a heap-held sibling task tree on the shared pool.
  /// The pool only moves the Task* around; the Entry payload rides along.
  struct Job : sched::Task {
    Job(Core* c, Entry e)
        : Task(&Job::run_static), core(c), entry(std::move(e)) {}

    static void run_static(sched::Task* t) {
      static_cast<Job*>(t)->run_job();
    }

    void run_job() {
      JobState& st = *entry.st;
      // Visible-before the first poison check inside the body: once begun
      // reads true, cancel() targets a *running* tree.
      st.begun.store(true, std::memory_order_release);
      obs::Tracer* tracer = core->tracer_;
      const std::uint64_t wait_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - entry.submit_tp)
              .count());
      core->record_wait(wait_ns);
      std::uint64_t begin_ns = 0;
      if constexpr (obs::kTracingCompiledIn) {
        if (tracer != nullptr) {
          begin_ns = tracer->now();
          const int wid = core->pool_->this_worker_id();
          const std::uint32_t ring =
              static_cast<std::uint32_t>(wid < 0 ? 0 : wid) %
              tracer->ring_count();
          tracer->emit(ring, obs::EventKind::kJobBegin,
                       static_cast<std::uint8_t>(st.family), obs::kServeLane,
                       st.seq, wait_ns, 0);
          if (core->wait_hist_ != nullptr) core->wait_hist_->record(wait_ns);
        }
      }
      // Install the job's cancel token for the whole tree: fork() inherits
      // it into every descendant, and every fork/steal/anchor point checks
      // it.  A poison (cancel or running-deadline) makes the remaining
      // tree skip its work while keeping the fork/join structure intact.
      Status result;
      {
        sched::ScopedCancelToken guard(&st.token);
        // Per-job fault isolation: a failing job surfaces a typed Status
        // and leaves the server and its sibling jobs untouched.
        try {
          execute_request(core->ex_, entry.req);
        } catch (const Error& e) {
          result = Status::error(e.code(), e.what());
        } catch (const std::bad_alloc&) {
          result = Status::error(ErrorCode::kResourceExhausted,
                                 "job allocation failed");
        } catch (const std::exception& e) {
          result = Status::error(ErrorCode::kInternal,
                                 std::string("job raised: ") + e.what());
        }
      }
      core->finish_job(*this, std::move(result), begin_ns, tracer);
      // The dispatcher reaps this Job (and releases its space, if a poison
      // path has not already) after the pool's completion handshake;
      // `this` stays valid until then.
    }

    Core* core;
    Entry entry;
    /// Space budget already returned (poison paths release early; reap
    /// releases otherwise).  Guarded by mu_.
    bool space_released = false;
  };

  explicit Core(const ServerOptions& opts)
      : opts_(opts),
        ex_(opts.threads, opts.sequential_grain_words,
            sched::SchedMode::kWorkSteal),
        pool_(ex_.steal_pool()) {
    if (pool_ == nullptr) {
      // Unreachable with an explicit kWorkSteal request; guard anyway.
      throw Error(ErrorCode::kInternal,
                  "serve requires the work-stealing backend");
    }
  }

  ~Core() { shutdown(); }

  /// Flips a job's (done, status) exactly once and wakes its waiters.
  static void complete(JobState& st, Status status) {
    {
      std::lock_guard<std::mutex> lk(st.mu);
      assert(!st.done);
      st.done = true;
      st.status = std::move(status);
    }
    st.cv.notify_all();
  }

  /// Terminal bookkeeping for a job that *ran* (queued-path completions go
  /// through complete() directly).  Fuses the body's result with any
  /// poison that landed mid-run, publishes the final status, and drives
  /// the outcome counters off that final status, so accounting stays
  /// exactly-once: completed_ok + failed + cancelled + deadline_exceeded
  /// covers every job that reached a terminal state.  Runs on whichever
  /// worker executed the job.
  void finish_job(Job& job, Status result, std::uint64_t begin_ns,
                  obs::Tracer* tracer) {
    JobState& st = *job.entry.st;
    sched::CancelToken::Reason reason;
    Status final_status;
    {
      // Fused with the poison sites under st.mu: a cancel() that returned
      // true either poisoned before this read or observed done == true
      // and returned false, so "cancel() == true implies the final status
      // is kCancelled" holds exactly (same for the watchdog and
      // kDeadlineExceeded).
      std::lock_guard<std::mutex> lk(st.mu);
      reason = st.token.reason();
      if (reason == sched::CancelToken::Reason::kCancelled) {
        final_status = Status::error(
            ErrorCode::kCancelled,
            "job cancelled while running; output buffers unspecified");
      } else if (reason == sched::CancelToken::Reason::kDeadline) {
        final_status = Status::error(
            ErrorCode::kDeadlineExceeded,
            "deadline expired while the job was running; output buffers "
            "unspecified");
      } else {
        final_status = std::move(result);
      }
      assert(!st.done);
      st.done = true;
      st.status = final_status;
    }
    st.cv.notify_all();
    switch (final_status.code()) {
      case ErrorCode::kOk:
        completed_ok_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ErrorCode::kCancelled:
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        cancelled_running_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ErrorCode::kDeadlineExceeded:
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
        deadline_exceeded_running_.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        failed_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    // Poison-to-completion latency: how long the tree took to unwind after
    // the poison landed (the promptness the cancellation protocol bounds
    // by one fork/steal/anchor interval plus one leaf grain).
    std::uint64_t poison_lat_ns = 0;
    if (reason != sched::CancelToken::Reason::kNone) {
      const std::uint64_t now_ns = steady_now_ns();
      const std::uint64_t poisoned_at = st.token.poison_ns();
      poison_lat_ns = now_ns > poisoned_at ? now_ns - poisoned_at : 0;
      if (poison_hist_ != nullptr) poison_hist_->record(poison_lat_ns);
    }
    if constexpr (obs::kTracingCompiledIn) {
      if (tracer != nullptr) {
        const std::uint64_t end_ns = tracer->now();
        const int wid = pool_->this_worker_id();
        const std::uint32_t ring =
            static_cast<std::uint32_t>(wid < 0 ? 0 : wid) %
            tracer->ring_count();
        const std::uint64_t run_ns =
            end_ns >= begin_ns ? end_ns - begin_ns : 0;
        tracer->emit(ring, obs::EventKind::kJobEnd,
                     static_cast<std::uint8_t>(st.family), obs::kServeLane,
                     st.seq, run_ns,
                     static_cast<std::uint64_t>(final_status.code()));
        if (reason != sched::CancelToken::Reason::kNone) {
          tracer->emit(ring, obs::EventKind::kJobCancel,
                       static_cast<std::uint8_t>(st.family), obs::kServeLane,
                       st.seq, poison_lat_ns,
                       static_cast<std::uint64_t>(reason));
        }
        if (run_hist_ != nullptr) run_hist_->record(run_ns);
      }
    }
  }

  /// Records one queue-wait sample into the sliding shed window.  Writers
  /// are executing workers; the reader is submit() under mu_.  Each slot
  /// is individually atomic, so a torn *set* of samples is possible but a
  /// torn sample is not -- acceptable for an overload heuristic.
  void record_wait(std::uint64_t ns) {
    const std::uint64_t i = wait_seq_.fetch_add(1, std::memory_order_relaxed);
    recent_wait_ns_[i % kWaitWindow].store(ns == 0 ? 1 : ns,
                                           std::memory_order_relaxed);
  }

  /// Nearest-rank p99 over the recorded window; 0 until shed_min_samples
  /// samples exist (no shedding before the server has evidence).
  std::uint64_t recent_wait_p99_ns() const {
    const std::uint64_t seen = wait_seq_.load(std::memory_order_relaxed);
    const std::uint64_t min_n = std::min<std::uint64_t>(
        std::max<std::uint32_t>(1, opts_.shed_min_samples), kWaitWindow);
    if (seen < min_n) return 0;
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(seen, kWaitWindow));
    std::array<std::uint64_t, kWaitWindow> snap;
    for (std::size_t i = 0; i < n; ++i) {
      snap[i] = recent_wait_ns_[i].load(std::memory_order_relaxed);
    }
    std::sort(snap.begin(), snap.begin() + n);
    const std::size_t rank = std::max<std::size_t>(1, (n * 99 + 99) / 100);
    return snap[rank - 1];
  }

  /// Returns a job's budget exactly once.  Poison paths call this the
  /// moment a job is condemned -- before its tree finishes unwinding --
  /// so queued admissions unblock promptly; reap covers the normal path.
  /// Called with mu_ held.
  void release_space_locked(Job& j) {
    if (j.space_released) return;
    j.space_released = true;
    assert(used_words_ >= j.entry.st->est_words);
    used_words_ -= j.entry.st->est_words;
  }

  void start_dispatcher() {
    dispatcher_ = std::thread([self = shared_from_this()] {
      struct ServiceRoot : sched::Task {
        explicit ServiceRoot(Core* c) : Task(&ServiceRoot::run_static),
                                        core(c) {}
        static void run_static(sched::Task* t) {
          static_cast<ServiceRoot*>(t)->core->dispatch();
        }
        Core* core;
      } root(self.get());
      // One run_root for the server's lifetime: the dispatcher holds the
      // pool's external-entry slot (worker 0) and forks every admitted job
      // from inside it, so jobs are siblings and nested constructs take
      // the mutex-free worker path.
      self->pool_->run_root(root);
    });
  }

  Result<JobHandle> submit(const Request& req, const JobOptions& jopts) {
    const Status v = validate(req);
    if (!v.ok()) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return v;
    }
    const std::uint64_t est = space_estimate_words(req);
    if (est > opts_.space_budget_words) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::error(
          ErrorCode::kResourceExhausted,
          "request working set (" + std::to_string(est) +
              " words) exceeds the server space budget (" +
              std::to_string(opts_.space_budget_words) + ")");
    }
    auto st = std::make_shared<JobState>();
    st->family = family_of(req);
    st->est_words = est;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopping_) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return Status::error(ErrorCode::kUnavailable,
                             "server is draining; submit rejected");
      }
      // Overload control, ahead of the hard capacity wall: when there is
      // already a backlog AND the recent queue-wait p99 exceeds the
      // configured threshold, shed with a typed kUnavailable carrying a
      // retry-after hint.  The backlog guard makes recovery automatic --
      // an empty queue always accepts, which refreshes the wait window.
      if (opts_.shed_wait_p99_ns > 0 && !queue_.empty()) {
        const std::uint64_t p99 = recent_wait_p99_ns();
        if (p99 > opts_.shed_wait_p99_ns) {
          shed_.fetch_add(1, std::memory_order_relaxed);
          const std::uint64_t hint_ms = std::clamp<std::uint64_t>(
              p99 / 1'000'000, 1, 1000);
          if constexpr (obs::kTracingCompiledIn) {
            if (tracer_ != nullptr) {
              pending_events_.push_back(
                  PendingEvent{family_of(req), 0, p99, hint_ms});
            }
          }
          return Status::error(
              ErrorCode::kUnavailable,
              "server overloaded: recent queue-wait p99 (" +
                  std::to_string(p99) +
                  " ns) exceeds the shed threshold; retry_after_ms=" +
                  std::to_string(hint_ms));
        }
      }
      if (queue_.size() >= opts_.queue_capacity) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return Status::error(
            ErrorCode::kResourceExhausted,
            "admission queue full (" +
                std::to_string(opts_.queue_capacity) + " waiting jobs)");
      }
      st->seq = next_seq_++;
      Entry e;
      e.st = st;
      e.req = req;
      e.submit_tp = std::chrono::steady_clock::now();
      if constexpr (obs::kTracingCompiledIn) {
        if (tracer_ != nullptr) e.submit_ns = tracer_->now();
      }
      if (jopts.deadline.has_value()) {
        e.has_deadline = true;
        e.deadline = *jopts.deadline;
        // Arm the token too: workers executing the tree self-poison at
        // the next check site once the instant passes, so mid-run expiry
        // is enforced even while the dispatcher is swallowed helping this
        // very job (its nested joins block, so it cannot sweep).  The
        // dispatcher sweep remains the path for queued start-deadlines
        // and for returning the space budget promptly.
        st->token.arm_deadline(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                jopts.deadline->time_since_epoch())
                .count()));
      }
      queue_.push_back(std::move(e));
      queue_peak_ = std::max(queue_peak_, queue_.size());
      submitted_.fetch_add(1, std::memory_order_relaxed);
      update_gauges_locked();
      poke_.store(true, std::memory_order_release);
    }
    cv_.notify_all();
    // The dispatcher may be parked inside join_interruptible helping an
    // admitted job; kick the pool so its quit predicate (poke_) is
    // re-evaluated and the new arrival is considered for admission.
    pool_->kick();
    return JobHandle(shared_from_this(), std::move(st));
  }

  bool cancel(const std::shared_ptr<JobState>& st) {
    std::unique_lock<std::mutex> lk(mu_);
    // Queued: remove and complete directly; the job never ran.
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->st == st) {
        queue_.erase(it);
        update_gauges_locked();
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        lk.unlock();
        complete(*st, Status::error(ErrorCode::kCancelled,
                                    "cancelled before admission"));
        return true;
      }
    }
    // Running (admitted, not yet reaped): poison the job's token so its
    // tree skips the rest of its work and unwinds.  Lock order mu_ ->
    // st.mu matches the running-deadline sweep; finish_job takes st.mu
    // alone, so there is no cycle.
    for (auto& j : inflight_) {
      if (j->entry.st != st) continue;
      {
        std::lock_guard<std::mutex> slk(st->mu);
        if (st->done) return false;  // finished before we got here
        const bool won =
            st->token.poison(sched::CancelToken::Reason::kCancelled);
        if (!won &&
            st->token.reason() != sched::CancelToken::Reason::kCancelled) {
          // The deadline watchdog poisoned first: the job's fate is
          // kDeadlineExceeded, not kCancelled, so this call did not
          // decide it.
          return false;
        }
      }
      // The fate is sealed as kCancelled (finish_job reads the token
      // under st.mu after us): release the budget now so queued work
      // admits without waiting for the tree to finish unwinding, and
      // poke the dispatcher to act on it.
      release_space_locked(*j);
      lk.unlock();
      poke_.store(true, std::memory_order_release);
      pool_->kick();
      cv_.notify_all();
      return true;
    }
    return false;  // already reaped => already complete
  }

  void shutdown() {
    std::call_once(shutdown_once_, [this] {
      {
        std::lock_guard<std::mutex> lk(mu_);
        stopping_ = true;
      }
      cv_.notify_all();
      if (dispatcher_.joinable()) dispatcher_.join();
      publish_counters();
    });
  }

  ServerStats stats() const {
    ServerStats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.completed_ok = completed_ok_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.cancelled = cancelled_.load(std::memory_order_relaxed);
    s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
    s.shed = shed_.load(std::memory_order_relaxed);
    s.cancelled_running = cancelled_running_.load(std::memory_order_relaxed);
    s.deadline_exceeded_running =
        deadline_exceeded_running_.load(std::memory_order_relaxed);
    s.space_budget_words = opts_.space_budget_words;
    std::lock_guard<std::mutex> lk(mu_);
    s.space_peak_words = space_peak_;
    s.queue_peak = queue_peak_;
    s.queue_depth = queue_.size();
    s.inflight = inflight_.size();
    return s;
  }

  void set_tracer(obs::Tracer* tracer) {
    // Under mu_: the dispatcher reads tracer_ in its loop (gauges,
    // admit events), so an unlocked write here races it even before the
    // first submit.  Jobs observe the pointers via the submit -> run
    // happens-before chain, so call this before submitting.
    std::lock_guard<std::mutex> lk(mu_);
    tracer_ = tracer;
    wait_hist_ = nullptr;
    run_hist_ = nullptr;
    poison_hist_ = nullptr;
    ex_.set_tracer(tracer);
    if constexpr (obs::kTracingCompiledIn) {
      if (tracer != nullptr) {
        tracer->name_lane(obs::kServeLane, "serve jobs");
        // Pre-resolve histogram handles single-threaded; workers only
        // touch record(), which is a few relaxed atomics.  (Histogram
        // references are deque-backed and stable; plain counter items are
        // not, hence update_gauges_locked sets those by name.)
        wait_hist_ = &tracer->counters().histogram("serve.job.wait_ns");
        run_hist_ = &tracer->counters().histogram("serve.job.run_ns");
        poison_hist_ =
            &tracer->counters().histogram("serve.poison_latency_ns");
        update_gauges_locked();
      }
    }
  }

  void set_fault_plan(fault::FaultPlan* plan) {
    plan_.store(plan, std::memory_order_release);
    ex_.set_fault_plan(plan);
  }

  // ---- dispatcher ---------------------------------------------------------

  void dispatch() {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      drain_pending_events_locked();
      sweep_deadlines_locked();
      sweep_running_deadlines_locked();
      reap_locked();
      admit_locked();
      if (!inflight_.empty()) {
        Job* front = inflight_.front().get();
        const auto wake = next_deadline_locked();
        poke_.store(false, std::memory_order_relaxed);
        lk.unlock();
        // Help execute: the dispatcher drains its own deque (the admitted
        // jobs) and steals while it waits, so progress never depends on
        // spawned workers existing (this container may have one core).
        // The watchdog rides along: the join is interrupted at the
        // earliest pending deadline, or when a poke (submit or
        // cancel-running) needs admission attention -- no extra thread.
        pool_->join_interruptible(front, wake, [this] {
          return poke_.load(std::memory_order_relaxed);
        });
        lk.lock();
        reap_locked();
        continue;
      }
      if (queue_.empty()) {
        if (stopping_) break;
        cv_.wait(lk);
        continue;
      }
      // Unreachable: with nothing in flight every poison path has already
      // returned its budget (release_space_locked dedupes against reap),
      // so used_words_ is zero and admit_locked() always takes the queue
      // head (any accepted estimate fits an empty budget).
      assert(false && "serve dispatcher: queued job not admissible");
    }
    drain_pending_events_locked();
  }

  /// Earliest instant the watchdog must act: the soonest deadline over
  /// queued entries and running-not-yet-poisoned jobs.  Far future (now +
  /// 1h, deliberately finite so wait_until never overflows) when none.
  /// Called with mu_ held.
  std::chrono::steady_clock::time_point next_deadline_locked() const {
    auto wake = std::chrono::steady_clock::now() + std::chrono::hours(1);
    for (const auto& e : queue_) {
      if (e.has_deadline) wake = std::min(wake, e.deadline);
    }
    for (const auto& j : inflight_) {
      if (j->entry.has_deadline && !j->finished() &&
          !j->entry.st->token.poisoned()) {
        wake = std::min(wake, j->entry.deadline);
      }
    }
    return wake;
  }

  /// Completes (without running) every queued job whose start deadline has
  /// passed.  Called with mu_ held.
  void sweep_deadlines_locked() {
    if (queue_.empty()) return;
    const auto now = std::chrono::steady_clock::now();
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (it->has_deadline && it->deadline <= now) {
        std::shared_ptr<JobState> st = std::move(it->st);
        it = queue_.erase(it);
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
        complete(*st, Status::error(ErrorCode::kDeadlineExceeded,
                                    "deadline passed before the job could "
                                    "start"));
      } else {
        ++it;
      }
    }
    update_gauges_locked();
  }

  /// Poisons every running job whose completion deadline has passed.  The
  /// tree skips its remaining work and unwinds; finish_job types the
  /// result kDeadlineExceeded.  Space is released immediately so the
  /// backlog admits without waiting for the unwind.  Called with mu_
  /// held.
  void sweep_running_deadlines_locked() {
    bool any = false;
    for (const auto& j : inflight_) {
      if (j->entry.has_deadline && !j->finished()) {
        any = true;
        break;
      }
    }
    if (!any) return;
    if (fault::FaultPlan* p = fault::enabled(plan_.load(
            std::memory_order_acquire))) {
      // Chaos: a lagging watchdog.  Delays enforcement (promptness under
      // faults is best-effort) but must never corrupt it -- the sleep
      // holds mu_, exactly like a dispatcher busy elsewhere.
      if (p->should(fault::InjectSite::kWatchdogStall)) {
        const std::uint32_t us = p->stall_us();
        if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
      }
    }
    const auto now = std::chrono::steady_clock::now();
    for (auto& j : inflight_) {
      if (!j->entry.has_deadline || j->finished()) continue;
      if (j->entry.deadline > now) continue;
      JobState& st = *j->entry.st;
      bool condemned = false;
      {
        std::lock_guard<std::mutex> slk(st.mu);
        if (!st.done) {
          st.token.poison(sched::CancelToken::Reason::kDeadline);
          condemned = true;  // poisoned now, or racing cancel() already did
        }
      }
      if (condemned) release_space_locked(*j);
    }
  }

  /// FIFO head-only admission: admits while the head's estimate fits the
  /// remaining budget.  No overtaking, so a large job is never starved by
  /// small ones arriving behind it.  Called with mu_ held.
  void admit_locked() {
    while (!queue_.empty()) {
      const std::uint64_t est = queue_.front().st->est_words;
      if (used_words_ + est > opts_.space_budget_words) break;
      Entry e = std::move(queue_.front());
      queue_.pop_front();
      used_words_ += est;
      space_peak_ = std::max(space_peak_, used_words_);
      auto job = std::make_unique<Job>(this, std::move(e));
      Job* raw = job.get();
      inflight_.push_back(std::move(job));
      if constexpr (obs::kTracingCompiledIn) {
        if (tracer_ != nullptr) {
          // Ring 0 is the dispatcher's own (it holds the pool's worker-0
          // slot for the server's lifetime).
          tracer_->emit(0 % tracer_->ring_count(), obs::EventKind::kJobAdmit,
                        static_cast<std::uint8_t>(raw->entry.st->family),
                        obs::kServeLane, raw->entry.st->seq, est,
                        used_words_);
        }
      }
      pool_->fork(raw);
    }
    update_gauges_locked();
  }

  /// Releases the space of every finished job.  Conservative (space is
  /// held until the dispatcher notices completion), which keeps the
  /// "combined estimates never exceed the budget" invariant exact; poison
  /// paths release earlier via release_space_locked, which dedupes.
  /// Called with mu_ held.
  void reap_locked() {
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      if ((*it)->finished()) {
        release_space_locked(**it);
        it = inflight_.erase(it);
      } else {
        ++it;
      }
    }
    update_gauges_locked();
  }

  /// Emits parked client-thread events (sheds) on ring 0 -- the
  /// dispatcher's own ring (it holds the pool's worker-0 slot), also safe
  /// from publish_counters after the dispatcher joined.  Called with mu_
  /// held.
  void drain_pending_events_locked() {
    if constexpr (obs::kTracingCompiledIn) {
      if (tracer_ != nullptr) {
        for (const PendingEvent& ev : pending_events_) {
          tracer_->emit(0 % tracer_->ring_count(), obs::EventKind::kJobShed,
                        static_cast<std::uint8_t>(ev.family), obs::kServeLane,
                        ev.a, ev.b, ev.c);
        }
      }
    }
    pending_events_.clear();
  }

  /// Mirrors the live queue-depth / in-flight gauges into the tracer's
  /// counter registry.  All writers hold mu_; CounterRegistry item
  /// references are not stable across registration, so values are set by
  /// name each time (gauge updates are not on the per-task hot path).
  /// Called with mu_ held after any queue_/inflight_ change.
  void update_gauges_locked() {
    if constexpr (obs::kTracingCompiledIn) {
      if (tracer_ != nullptr) {
        obs::CounterRegistry& c = tracer_->counters();
        c.set("serve.queue_depth", queue_.size());
        c.set("serve.inflight", inflight_.size());
      }
    }
  }

  /// Publishes aggregate counters into the tracer.  Single-threaded: runs
  /// after the dispatcher has joined (CounterRegistry is not thread-safe).
  void publish_counters() {
    if constexpr (obs::kTracingCompiledIn) {
      if (tracer_ == nullptr) return;
      std::lock_guard<std::mutex> lk(mu_);
      drain_pending_events_locked();
      obs::CounterRegistry& c = tracer_->counters();
      c.set("serve.jobs_submitted",
            submitted_.load(std::memory_order_relaxed));
      c.set("serve.jobs_completed_ok",
            completed_ok_.load(std::memory_order_relaxed));
      c.set("serve.jobs_failed", failed_.load(std::memory_order_relaxed));
      c.set("serve.jobs_rejected", rejected_.load(std::memory_order_relaxed));
      c.set("serve.jobs_cancelled",
            cancelled_.load(std::memory_order_relaxed));
      c.set("serve.jobs_deadline_exceeded",
            deadline_exceeded_.load(std::memory_order_relaxed));
      c.set("serve.jobs_shed", shed_.load(std::memory_order_relaxed));
      c.set("serve.jobs_cancelled_running",
            cancelled_running_.load(std::memory_order_relaxed));
      c.set("serve.jobs_deadline_exceeded_running",
            deadline_exceeded_running_.load(std::memory_order_relaxed));
      c.set("serve.space_budget_words", opts_.space_budget_words);
      c.set("serve.space_peak_words", space_peak_);
      c.set("serve.queue_peak", queue_peak_);
      update_gauges_locked();
    }
  }

  // ---- state --------------------------------------------------------------

  const ServerOptions opts_;
  sched::NativeExecutor ex_;
  sched::WorkStealingPool* pool_;

  obs::Tracer* tracer_ = nullptr;
  obs::Histogram* wait_hist_ = nullptr;
  obs::Histogram* run_hist_ = nullptr;
  obs::Histogram* poison_hist_ = nullptr;
  std::atomic<fault::FaultPlan*> plan_{nullptr};

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< wakes the idle dispatcher
  bool stopping_ = false;
  std::deque<Entry> queue_;
  std::deque<std::unique_ptr<Job>> inflight_;
  std::vector<PendingEvent> pending_events_;  ///< under mu_
  std::uint64_t used_words_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t space_peak_ = 0;
  std::uint64_t queue_peak_ = 0;

  /// Set by submit/cancel to interrupt the dispatcher's helping join;
  /// cleared by the dispatcher just before it parks in the join.
  std::atomic<bool> poke_{false};

  /// Sliding window of recent queue-wait samples feeding the shed
  /// decision (same samples as the serve.job.wait_ns histogram).
  static constexpr std::size_t kWaitWindow = 64;
  std::array<std::atomic<std::uint64_t>, kWaitWindow> recent_wait_ns_{};
  std::atomic<std::uint64_t> wait_seq_{0};

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_ok_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> cancelled_running_{0};
  std::atomic<std::uint64_t> deadline_exceeded_running_{0};

  std::once_flag shutdown_once_;
  std::thread dispatcher_;
};

}  // namespace detail

// ---------------------------------------------------------------------------
// JobHandle / Server
// ---------------------------------------------------------------------------

Status JobHandle::wait() const {
  if (st_ == nullptr) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "wait() on an empty JobHandle");
  }
  std::unique_lock<std::mutex> lk(st_->mu);
  st_->cv.wait(lk, [this] { return st_->done; });
  return st_->status;
}

Status JobHandle::wait_for(std::chrono::nanoseconds timeout) const {
  if (st_ == nullptr) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "wait_for() on an empty JobHandle");
  }
  std::unique_lock<std::mutex> lk(st_->mu);
  if (!st_->cv.wait_for(lk, timeout, [this] { return st_->done; })) {
    // Typed and unambiguous: a *completed* job can never carry
    // kUnavailable (submission would have failed before a handle
    // existed), so callers can distinguish "still pending" from any
    // terminal outcome by code alone.
    return Status::error(ErrorCode::kUnavailable,
                         "wait_for timed out; the job is still pending");
  }
  return st_->status;
}

bool JobHandle::cancel() {
  if (core_ == nullptr || st_ == nullptr) return false;
  return core_->cancel(st_);
}

Server::Server(ServerOptions opts)
    : core_(std::make_shared<detail::Core>(opts)) {
  core_->start_dispatcher();
}

Result<Server> Server::make(ServerOptions opts) noexcept {
  try {
    return Server(std::move(opts));
  } catch (const Error& e) {
    return Status::error(e.code(), e.what());
  } catch (const std::bad_alloc&) {
    return Status::error(ErrorCode::kResourceExhausted,
                         "server setup allocation failed");
  } catch (const std::system_error& e) {
    return Status::error(ErrorCode::kResourceExhausted,
                         std::string("dispatcher spawn failed: ") + e.what());
  } catch (const std::exception& e) {
    return Status::error(ErrorCode::kInternal,
                         std::string("server setup raised: ") + e.what());
  }
}

Server::~Server() {
  if (core_ != nullptr) core_->shutdown();
}

Result<JobHandle> Server::submit(const Request& req,
                                 const JobOptions& jopts) {
  return core_->submit(req, jopts);
}

void Server::shutdown() { core_->shutdown(); }

ServerStats Server::stats() const { return core_->stats(); }

unsigned Server::threads() const { return core_->ex_.threads(); }

const ServerOptions& Server::options() const { return core_->opts_; }

void Server::set_tracer(obs::Tracer* tracer) { core_->set_tracer(tracer); }

void Server::set_fault_plan(fault::FaultPlan* plan) {
  core_->set_fault_plan(plan);
}

// ---------------------------------------------------------------------------
// Retry helpers
// ---------------------------------------------------------------------------

std::optional<std::uint32_t> retry_after_ms_hint(const Status& s) {
  if (s.ok() || s.code() != ErrorCode::kUnavailable) return std::nullopt;
  constexpr std::string_view kKey = "retry_after_ms=";
  const std::string& msg = s.message();
  const std::size_t pos = msg.find(kKey);
  if (pos == std::string::npos) return std::nullopt;
  std::uint64_t v = 0;
  bool any = false;
  for (std::size_t i = pos + kKey.size(); i < msg.size(); ++i) {
    const char ch = msg[i];
    if (ch < '0' || ch > '9') break;
    v = v * 10 + static_cast<std::uint64_t>(ch - '0');
    any = true;
    if (v > 1'000'000) return 1'000'000;  // saturate: hints are advisory
  }
  if (!any) return std::nullopt;
  return static_cast<std::uint32_t>(v);
}

std::chrono::milliseconds retry_backoff(const RetryPolicy& policy,
                                        std::uint32_t attempt,
                                        util::Xoshiro256& rng,
                                        std::optional<std::uint32_t> hint_ms) {
  const std::uint64_t cap = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, policy.max_backoff.count()));
  std::uint64_t base = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, policy.initial_backoff.count()));
  // Saturating doubling: attempt 1 sleeps ~initial, attempt k sleeps
  // ~initial * 2^(k-1), never past max_backoff.
  const std::uint32_t doublings = attempt == 0 ? 0 : attempt - 1;
  for (std::uint32_t i = 0; i < doublings && base < cap; ++i) base *= 2;
  base = std::min(base, cap);
  // Jitter uniformly in [ceil(base/2), base]: decorrelates retry storms
  // across clients while staying deterministic for a given PRNG state.
  const std::uint64_t lo = (base + 1) / 2;
  std::uint64_t ms = lo + rng.below(base - lo + 1);
  // A server-provided retry-after hint is a floor, never a shortener.
  if (hint_ms.has_value()) ms = std::max<std::uint64_t>(ms, *hint_ms);
  return std::chrono::milliseconds(ms);
}

Result<JobHandle> submit_with_retry(Server& server, const Request& req,
                                    const JobOptions& jopts,
                                    const RetryPolicy& policy) {
  util::Xoshiro256 rng(policy.seed);
  const std::uint32_t attempts =
      std::max<std::uint32_t>(1, policy.max_attempts);
  for (std::uint32_t attempt = 1;; ++attempt) {
    Result<JobHandle> r = server.submit(req, jopts);
    if (r.ok()) return r;
    const std::optional<std::uint32_t> hint = retry_after_ms_hint(r.status());
    // Only shed responses (kUnavailable with a hint) are retryable;
    // validation errors, budget rejections, and a draining server fail
    // the same way on every attempt.
    if (!hint.has_value() || attempt >= attempts) return r;
    std::this_thread::sleep_for(retry_backoff(policy, attempt, rng, hint));
  }
}

}  // namespace obliv::serve
