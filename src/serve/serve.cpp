#include "serve/serve.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <deque>
#include <string>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "algo/gep.hpp"
#include "algo/listrank.hpp"
#include "algo/scan.hpp"
#include "algo/sort.hpp"
#include "algo/transpose.hpp"
#include "sched/views.hpp"
#include "util/bits.hpp"

namespace obliv::serve {

namespace {

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

Status invalid(const std::string& what) {
  return Status::error(ErrorCode::kInvalidArgument, what);
}

/// A view is well-formed when it is empty or carries real memory.
template <class T>
bool view_ok(const sched::NatRef<T>& r) {
  return r.size() == 0 || r.raw() != nullptr;
}

}  // namespace

std::string_view family_name(Family f) {
  switch (f) {
    case Family::kScan: return "scan";
    case Family::kSort: return "sort";
    case Family::kFft: return "fft";
    case Family::kTranspose: return "transpose";
    case Family::kGep: return "gep";
    case Family::kListRank: return "listrank";
    case Family::kSpmdv: return "spmdv";
  }
  return "unknown";
}

Family family_of(const Request& req) {
  return std::visit(
      Overloaded{
          [](const ScanRequest&) { return Family::kScan; },
          [](const SortRequest&) { return Family::kSort; },
          [](const FftRequest&) { return Family::kFft; },
          [](const TransposeRequest&) { return Family::kTranspose; },
          [](const GepRequest&) { return Family::kGep; },
          [](const ListRankRequest&) { return Family::kListRank; },
          [](const SpmdvRequest&) { return Family::kSpmdv; },
      },
      req);
}

Status validate(const Request& req) {
  return std::visit(
      Overloaded{
          [](const ScanRequest& r) {
            if (!view_ok(r.data)) return invalid("scan: null data view");
            return Status();
          },
          [](const SortRequest& r) {
            if (!view_ok(r.keys)) return invalid("sort: null key view");
            return Status();
          },
          [](const FftRequest& r) {
            if (!view_ok(r.data)) return invalid("fft: null data view");
            if (r.data.size() != 0 && !util::is_pow2(r.data.size())) {
              return invalid("fft: size must be a power of two, got " +
                             std::to_string(r.data.size()));
            }
            return Status();
          },
          [](const TransposeRequest& r) {
            if (!view_ok(r.in) || !view_ok(r.out)) {
              return invalid("transpose: null matrix view");
            }
            if (r.n == 0) return Status();
            if (!util::is_pow2(r.n)) {
              return invalid("transpose: side must be a power of two, got " +
                             std::to_string(r.n));
            }
            if (r.in.size() < r.n * r.n || r.out.size() < r.n * r.n) {
              return invalid("transpose: views shorter than n*n");
            }
            if (r.in.raw() == r.out.raw()) {
              return invalid("transpose: in and out may not alias");
            }
            return Status();
          },
          [](const GepRequest& r) {
            if (!view_ok(r.matrix)) return invalid("gep: null matrix view");
            if (r.n != 0 && r.matrix.size() < r.n * r.n) {
              return invalid("gep: view shorter than n*n");
            }
            return Status();
          },
          [](const ListRankRequest& r) {
            if (!view_ok(r.succ) || !view_ok(r.pred) || !view_ok(r.dist)) {
              return invalid("listrank: null view");
            }
            if (r.succ.size() != r.pred.size() ||
                r.succ.size() != r.dist.size()) {
              return invalid("listrank: succ/pred/dist lengths differ");
            }
            return Status();
          },
          [](const SpmdvRequest& r) {
            if (!view_ok(r.av) || !view_ok(r.a0) || !view_ok(r.x) ||
                !view_ok(r.y)) {
              return invalid("spmdv: null view");
            }
            const std::uint64_t n = r.y.size();
            if (n == 0) return Status();
            if (r.a0.size() != n + 1) {
              return invalid("spmdv: a0 must hold y.size()+1 offsets");
            }
            if (r.x.size() < n) {
              return invalid("spmdv: x shorter than the row count");
            }
            // Cheap endpoint checks; per-row monotonicity is the caller's
            // contract (validating it would read the whole offset array).
            if (r.a0.load(0) != 0 || r.a0.load(n) > r.av.size()) {
              return invalid("spmdv: a0 endpoints inconsistent with av");
            }
            return Status();
          },
      },
      req);
}

std::uint64_t space_estimate_words(const Request& req) {
  return std::visit(
      Overloaded{
          [](const ScanRequest& r) -> std::uint64_t {
            return 2 * r.data.size();
          },
          [](const SortRequest& r) -> std::uint64_t {
            return 4 * r.keys.size();
          },
          [](const FftRequest& r) -> std::uint64_t {
            return 6 * r.data.size();  // 3n complex elements, 2 words each
          },
          [](const TransposeRequest& r) -> std::uint64_t {
            return 3 * r.n * r.n;
          },
          [](const GepRequest& r) -> std::uint64_t { return r.n * r.n; },
          [](const ListRankRequest& r) -> std::uint64_t {
            return 8 * r.succ.size();
          },
          [](const SpmdvRequest& r) -> std::uint64_t {
            return 4 * r.y.size() + 2 * r.av.size();
          },
      },
      req);
}

namespace {

/// Runs the validated request on the shared executor.  Zero-size requests
/// are a no-op by definition (nothing to compute, nothing to write).
void execute_request(sched::NativeExecutor& ex, const Request& req) {
  std::visit(
      Overloaded{
          [&](const ScanRequest& r) {
            if (r.data.size() != 0) algo::mo_prefix_sum(ex, r.data);
          },
          [&](const SortRequest& r) {
            if (r.keys.size() != 0) algo::spms_sort(ex, r.keys);
          },
          [&](const FftRequest& r) {
            if (r.data.size() != 0) algo::mo_fft(ex, r.data);
          },
          [&](const TransposeRequest& r) {
            if (r.n != 0) algo::mo_transpose(ex, r.in, r.out, r.n);
          },
          [&](const GepRequest& r) {
            if (r.n != 0) {
              using Mat = sched::MatView<sched::NatRef<double>>;
              algo::igep<algo::FloydWarshallInstance>(
                  ex, Mat::full(r.matrix, r.n, r.n));
            }
          },
          [&](const ListRankRequest& r) {
            if (r.succ.size() != 0) {
              algo::mo_list_rank(ex, r.succ, r.pred, r.dist);
            }
          },
          [&](const SpmdvRequest& r) {
            if (r.y.size() != 0) algo::mo_spmdv(ex, r.av, r.a0, r.x, r.y);
          },
      },
      req);
}

}  // namespace

// ---------------------------------------------------------------------------
// Core
// ---------------------------------------------------------------------------

namespace detail {

struct Core : std::enable_shared_from_this<Core> {
  /// One waiting job: everything needed to run it once admitted.
  struct Entry {
    std::shared_ptr<JobState> st;
    Request req;
    std::uint64_t submit_ns = 0;  ///< tracer clock at submit (0 = untraced)
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
  };

  /// One admitted job: a heap-held sibling task tree on the shared pool.
  /// The pool only moves the Task* around; the Entry payload rides along.
  struct Job : sched::Task {
    Job(Core* c, Entry e)
        : Task(&Job::run_static), core(c), entry(std::move(e)) {}

    static void run_static(sched::Task* t) {
      static_cast<Job*>(t)->run_job();
    }

    void run_job() {
      JobState& st = *entry.st;
      obs::Tracer* tracer = core->tracer_;
      std::uint64_t begin_ns = 0;
      if constexpr (obs::kTracingCompiledIn) {
        if (tracer != nullptr) {
          begin_ns = tracer->now();
          const int wid = core->pool_->this_worker_id();
          const std::uint32_t ring =
              static_cast<std::uint32_t>(wid < 0 ? 0 : wid) %
              tracer->ring_count();
          const std::uint64_t wait_ns =
              begin_ns >= entry.submit_ns ? begin_ns - entry.submit_ns : 0;
          tracer->emit(ring, obs::EventKind::kJobBegin,
                       static_cast<std::uint8_t>(st.family), obs::kServeLane,
                       st.seq, wait_ns, 0);
          if (core->wait_hist_ != nullptr) core->wait_hist_->record(wait_ns);
        }
      }
      // Per-job fault isolation: a failing job surfaces a typed Status and
      // leaves the server and its sibling jobs untouched.
      Status result;
      try {
        execute_request(core->ex_, entry.req);
      } catch (const Error& e) {
        result = Status::error(e.code(), e.what());
      } catch (const std::bad_alloc&) {
        result = Status::error(ErrorCode::kResourceExhausted,
                               "job allocation failed");
      } catch (const std::exception& e) {
        result = Status::error(ErrorCode::kInternal,
                               std::string("job raised: ") + e.what());
      }
      if constexpr (obs::kTracingCompiledIn) {
        if (tracer != nullptr) {
          const std::uint64_t end_ns = tracer->now();
          const int wid = core->pool_->this_worker_id();
          const std::uint32_t ring =
              static_cast<std::uint32_t>(wid < 0 ? 0 : wid) %
              tracer->ring_count();
          const std::uint64_t run_ns =
              end_ns >= begin_ns ? end_ns - begin_ns : 0;
          tracer->emit(ring, obs::EventKind::kJobEnd,
                       static_cast<std::uint8_t>(st.family), obs::kServeLane,
                       st.seq, run_ns,
                       static_cast<std::uint64_t>(result.code()));
          if (core->run_hist_ != nullptr) core->run_hist_->record(run_ns);
        }
      }
      if (result.ok()) {
        core->completed_ok_.fetch_add(1, std::memory_order_relaxed);
      } else {
        core->failed_.fetch_add(1, std::memory_order_relaxed);
      }
      complete(*entry.st, std::move(result));
      // The dispatcher reaps this Job (and releases its space) after the
      // pool's completion handshake; `this` stays valid until then.
    }

    Core* core;
    Entry entry;
  };

  explicit Core(const ServerOptions& opts)
      : opts_(opts),
        ex_(opts.threads, opts.sequential_grain_words,
            sched::SchedMode::kWorkSteal),
        pool_(ex_.steal_pool()) {
    if (pool_ == nullptr) {
      // Unreachable with an explicit kWorkSteal request; guard anyway.
      throw Error(ErrorCode::kInternal,
                  "serve requires the work-stealing backend");
    }
  }

  ~Core() { shutdown(); }

  /// Flips a job's (done, status) exactly once and wakes its waiters.
  static void complete(JobState& st, Status status) {
    {
      std::lock_guard<std::mutex> lk(st.mu);
      assert(!st.done);
      st.done = true;
      st.status = std::move(status);
    }
    st.cv.notify_all();
  }

  void start_dispatcher() {
    dispatcher_ = std::thread([self = shared_from_this()] {
      struct ServiceRoot : sched::Task {
        explicit ServiceRoot(Core* c) : Task(&ServiceRoot::run_static),
                                        core(c) {}
        static void run_static(sched::Task* t) {
          static_cast<ServiceRoot*>(t)->core->dispatch();
        }
        Core* core;
      } root(self.get());
      // One run_root for the server's lifetime: the dispatcher holds the
      // pool's external-entry slot (worker 0) and forks every admitted job
      // from inside it, so jobs are siblings and nested constructs take
      // the mutex-free worker path.
      self->pool_->run_root(root);
    });
  }

  Result<JobHandle> submit(const Request& req, const JobOptions& jopts) {
    const Status v = validate(req);
    if (!v.ok()) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return v;
    }
    const std::uint64_t est = space_estimate_words(req);
    if (est > opts_.space_budget_words) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::error(
          ErrorCode::kResourceExhausted,
          "request working set (" + std::to_string(est) +
              " words) exceeds the server space budget (" +
              std::to_string(opts_.space_budget_words) + ")");
    }
    auto st = std::make_shared<JobState>();
    st->family = family_of(req);
    st->est_words = est;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopping_) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return Status::error(ErrorCode::kUnavailable,
                             "server is draining; submit rejected");
      }
      if (queue_.size() >= opts_.queue_capacity) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return Status::error(
            ErrorCode::kResourceExhausted,
            "admission queue full (" +
                std::to_string(opts_.queue_capacity) + " waiting jobs)");
      }
      st->seq = next_seq_++;
      Entry e;
      e.st = st;
      e.req = req;
      if constexpr (obs::kTracingCompiledIn) {
        if (tracer_ != nullptr) e.submit_ns = tracer_->now();
      }
      if (jopts.deadline.has_value()) {
        e.has_deadline = true;
        e.deadline = *jopts.deadline;
      }
      queue_.push_back(std::move(e));
      queue_peak_ = std::max(queue_peak_, queue_.size());
      submitted_.fetch_add(1, std::memory_order_relaxed);
    }
    cv_.notify_all();
    return JobHandle(shared_from_this(), std::move(st));
  }

  bool cancel(const std::shared_ptr<JobState>& st) {
    std::unique_lock<std::mutex> lk(mu_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->st == st) {
        queue_.erase(it);
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        lk.unlock();
        complete(*st, Status::error(ErrorCode::kCancelled,
                                    "cancelled before admission"));
        return true;
      }
    }
    return false;  // already admitted (or already complete)
  }

  void shutdown() {
    std::call_once(shutdown_once_, [this] {
      {
        std::lock_guard<std::mutex> lk(mu_);
        stopping_ = true;
      }
      cv_.notify_all();
      if (dispatcher_.joinable()) dispatcher_.join();
      publish_counters();
    });
  }

  ServerStats stats() const {
    ServerStats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.completed_ok = completed_ok_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.cancelled = cancelled_.load(std::memory_order_relaxed);
    s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
    s.space_budget_words = opts_.space_budget_words;
    std::lock_guard<std::mutex> lk(mu_);
    s.space_peak_words = space_peak_;
    s.queue_peak = queue_peak_;
    return s;
  }

  void set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    wait_hist_ = nullptr;
    run_hist_ = nullptr;
    ex_.set_tracer(tracer);
    if constexpr (obs::kTracingCompiledIn) {
      if (tracer != nullptr) {
        tracer->name_lane(obs::kServeLane, "serve jobs");
        // Pre-resolve histogram handles single-threaded; workers only
        // touch record(), which is a few relaxed atomics.
        wait_hist_ = &tracer->counters().histogram("serve.job.wait_ns");
        run_hist_ = &tracer->counters().histogram("serve.job.run_ns");
      }
    }
  }

  // ---- dispatcher ---------------------------------------------------------

  void dispatch() {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      sweep_deadlines_locked();
      admit_locked();
      if (!inflight_.empty()) {
        Job* front = inflight_.front().get();
        lk.unlock();
        // Help execute: the dispatcher drains its own deque (the admitted
        // jobs) and steals while it waits, so progress never depends on
        // spawned workers existing (this container may have one core).
        pool_->join(front);
        lk.lock();
        reap_locked();
        continue;
      }
      if (queue_.empty()) {
        if (stopping_) break;
        cv_.wait(lk);
        continue;
      }
      // Unreachable: with nothing in flight admit_locked() always takes
      // the queue head (any accepted estimate fits an empty budget).
      assert(false && "serve dispatcher: queued job not admissible");
    }
  }

  /// Completes (without running) every queued job whose start deadline has
  /// passed.  Called with mu_ held.
  void sweep_deadlines_locked() {
    if (queue_.empty()) return;
    const auto now = std::chrono::steady_clock::now();
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (it->has_deadline && it->deadline <= now) {
        std::shared_ptr<JobState> st = std::move(it->st);
        it = queue_.erase(it);
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
        complete(*st, Status::error(ErrorCode::kDeadlineExceeded,
                                    "deadline passed before the job could "
                                    "start"));
      } else {
        ++it;
      }
    }
  }

  /// FIFO head-only admission: admits while the head's estimate fits the
  /// remaining budget.  No overtaking, so a large job is never starved by
  /// small ones arriving behind it.  Called with mu_ held.
  void admit_locked() {
    while (!queue_.empty()) {
      const std::uint64_t est = queue_.front().st->est_words;
      if (used_words_ + est > opts_.space_budget_words) break;
      Entry e = std::move(queue_.front());
      queue_.pop_front();
      used_words_ += est;
      space_peak_ = std::max(space_peak_, used_words_);
      auto job = std::make_unique<Job>(this, std::move(e));
      Job* raw = job.get();
      inflight_.push_back(std::move(job));
      if constexpr (obs::kTracingCompiledIn) {
        if (tracer_ != nullptr) {
          // Ring 0 is the dispatcher's own (it holds the pool's worker-0
          // slot for the server's lifetime).
          tracer_->emit(0 % tracer_->ring_count(), obs::EventKind::kJobAdmit,
                        static_cast<std::uint8_t>(raw->entry.st->family),
                        obs::kServeLane, raw->entry.st->seq, est,
                        used_words_);
        }
      }
      pool_->fork(raw);
    }
  }

  /// Releases the space of every finished job.  Conservative (space is
  /// held until the dispatcher notices completion), which keeps the
  /// "combined estimates never exceed the budget" invariant exact.
  /// Called with mu_ held.
  void reap_locked() {
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      if ((*it)->finished()) {
        used_words_ -= (*it)->entry.st->est_words;
        it = inflight_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Publishes aggregate counters into the tracer.  Single-threaded: runs
  /// after the dispatcher has joined (CounterRegistry is not thread-safe).
  void publish_counters() {
    if constexpr (obs::kTracingCompiledIn) {
      if (tracer_ == nullptr) return;
      obs::CounterRegistry& c = tracer_->counters();
      c.set("serve.jobs_submitted",
            submitted_.load(std::memory_order_relaxed));
      c.set("serve.jobs_completed_ok",
            completed_ok_.load(std::memory_order_relaxed));
      c.set("serve.jobs_failed", failed_.load(std::memory_order_relaxed));
      c.set("serve.jobs_rejected", rejected_.load(std::memory_order_relaxed));
      c.set("serve.jobs_cancelled",
            cancelled_.load(std::memory_order_relaxed));
      c.set("serve.jobs_deadline_exceeded",
            deadline_exceeded_.load(std::memory_order_relaxed));
      c.set("serve.space_budget_words", opts_.space_budget_words);
      c.set("serve.space_peak_words", space_peak_);
      c.set("serve.queue_peak", queue_peak_);
    }
  }

  // ---- state --------------------------------------------------------------

  const ServerOptions opts_;
  sched::NativeExecutor ex_;
  sched::WorkStealingPool* pool_;

  obs::Tracer* tracer_ = nullptr;
  obs::Histogram* wait_hist_ = nullptr;
  obs::Histogram* run_hist_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< wakes the idle dispatcher
  bool stopping_ = false;
  std::deque<Entry> queue_;
  std::deque<std::unique_ptr<Job>> inflight_;
  std::uint64_t used_words_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t space_peak_ = 0;
  std::uint64_t queue_peak_ = 0;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_ok_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};

  std::once_flag shutdown_once_;
  std::thread dispatcher_;
};

}  // namespace detail

// ---------------------------------------------------------------------------
// JobHandle / Server
// ---------------------------------------------------------------------------

Status JobHandle::wait() const {
  if (st_ == nullptr) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "wait() on an empty JobHandle");
  }
  std::unique_lock<std::mutex> lk(st_->mu);
  st_->cv.wait(lk, [this] { return st_->done; });
  return st_->status;
}

bool JobHandle::cancel() {
  if (core_ == nullptr || st_ == nullptr) return false;
  return core_->cancel(st_);
}

Server::Server(ServerOptions opts)
    : core_(std::make_shared<detail::Core>(opts)) {
  core_->start_dispatcher();
}

Result<Server> Server::make(ServerOptions opts) noexcept {
  try {
    return Server(std::move(opts));
  } catch (const Error& e) {
    return Status::error(e.code(), e.what());
  } catch (const std::bad_alloc&) {
    return Status::error(ErrorCode::kResourceExhausted,
                         "server setup allocation failed");
  } catch (const std::system_error& e) {
    return Status::error(ErrorCode::kResourceExhausted,
                         std::string("dispatcher spawn failed: ") + e.what());
  } catch (const std::exception& e) {
    return Status::error(ErrorCode::kInternal,
                         std::string("server setup raised: ") + e.what());
  }
}

Server::~Server() {
  if (core_ != nullptr) core_->shutdown();
}

Result<JobHandle> Server::submit(const Request& req,
                                 const JobOptions& jopts) {
  return core_->submit(req, jopts);
}

void Server::shutdown() { core_->shutdown(); }

ServerStats Server::stats() const { return core_->stats(); }

unsigned Server::threads() const { return core_->ex_.threads(); }

const ServerOptions& Server::options() const { return core_->opts_; }

void Server::set_tracer(obs::Tracer* tracer) { core_->set_tracer(tracer); }

void Server::set_fault_plan(fault::FaultPlan* plan) {
  core_->ex_.set_fault_plan(plan);
}

}  // namespace obliv::serve
