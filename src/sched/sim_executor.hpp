// SimExecutor: the deterministic HM-model executor.
//
// This is the reference implementation of the paper's run-time scheduler.
// It executes an MO algorithm cooperatively on the calling thread while
// simulating:
//   * which core executes each piece of work (per the CGC / SB / CGC=>SB
//     anchoring rules of Section III),
//   * the resulting per-level cache misses (through hm::CacheSim), and
//   * work and span (critical path) of the schedule, from which parallel
//     steps on p cores follow by Brent's principle.
//
// Determinism is what makes the theorems checkable: two runs of the same
// algorithm on the same machine produce identical miss counts.
//
// Approximation note (documented in DESIGN.md): parallel siblings are
// *executed* sequentially in depth-first order while being *accounted* in
// parallel.  Under SB anchoring each task's working set fits its anchor
// cache, so its level-i misses are its compulsory input/output transfers,
// which DFS order reproduces; interleaving effects appear only below the
// anchor level and do not change the asymptotic shapes the benches verify.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "fault/status.hpp"
#include "hm/cache_sim.hpp"
#include "hm/config.hpp"
#include "hm/psim.hpp"
#include "hm/trace.hpp"
#include "obs/trace.hpp"
#include "sched/hints.hpp"
#include "sched/metrics.hpp"

namespace obliv::sched {

template <class T>
class SimRef;
template <class T>
class SimBuf;

/// Scheduling-policy knobs, used by the ablation benches.
struct SimPolicy {
  /// When true (paper behaviour), CGC chunk boundaries are rounded to B_1
  /// block boundaries to avoid ping-ponging.
  bool respect_block_boundaries = true;
  /// When true, SB / CGC=>SB anchoring is replaced by the "proportionate
  /// slice" strategy the paper argues against in Section II: every task is
  /// assigned round-robin to an L1 cache (i.e. a core), so higher-level
  /// caches are shared only incidentally.
  bool slice_mode = false;
  /// When true, CGC=>SB anchors subtasks at the smallest *fitting* level
  /// only (t = i), ignoring the parallelism term j of Section III-C's
  /// t = max(i, j) rule.  With few subtasks this strands the cores below
  /// unused anchor caches (ablated in bench_sched_ablation).
  bool cgcsb_fit_only = false;
  /// Cache-simulation engine: serial oracle or the sharded replay engine
  /// (hm/psim.hpp).  kAuto resolves per run() against OBLIV_PSIM and the
  /// host core count; counters and traces are byte-identical either way.
  hm::PsimMode psim = hm::PsimMode::kAuto;
  /// Sharded engine epoch grain: buffered accesses that make the buffer
  /// flush-eligible at a sync point (0 = ShardedCacheSim::kDefaultEpochGrain;
  /// the mid-construct hard cap is kHardCapFactor times this).  Fuzzed by
  /// tests/test_psim_fuzz.cpp to randomize epoch boundaries.
  std::uint64_t psim_epoch_grain = 0;
};

/// The canonical trace record now lives in hm/trace.hpp (the hm layer's
/// replay engine consumes streams without depending on sched); re-exported
/// here so existing benches/tests keep compiling unchanged.
using TraceEntry = hm::TraceEntry;

class SimExecutor {
 public:
  /// Validating constructor (the embedded hm::CacheSim re-checks `cfg`);
  /// throws obliv::Error on a malformed machine.  Prefer make() on
  /// untrusted input.
  explicit SimExecutor(hm::MachineConfig cfg, SimPolicy policy = {});

  /// Non-throwing companion: kInvalidConfig/kUnsupported for bad machines,
  /// kResourceExhausted when simulator tables cannot be allocated
  /// (including injected fault::InjectSite::kAllocSim failures).
  static Result<SimExecutor> make(hm::MachineConfig cfg,
                                  SimPolicy policy = {}) noexcept;

  const hm::MachineConfig& config() const { return cfg_; }
  hm::CacheSim& cache_sim() { return cache_; }

  // ---- Storage -----------------------------------------------------------

  /// Allocates an instrumented buffer of `n` elements in the simulated
  /// address space (aligned to the largest block size).
  template <class T>
  SimBuf<T> make_buf(std::size_t n);

  /// Instrumented element-wise copy src -> dst (equal sizes): the batched
  /// equivalent of `for i: dst.store(i, src.load(i))`, with identical
  /// counters, work, and span.  Groups are split at every B_1 boundary of
  /// either stream, so each group touches one source and one destination
  /// block; the per-element loop alternates between exactly those two
  /// blocks, which collapses to the same install order and final recency
  /// order as the group's two batched calls (DESIGN.md, "Run batching").
  template <class T>
  void copy(SimRef<T> dst, SimRef<T> src);

  /// Words (8-byte units) occupied by one T in the simulated address space.
  template <class T>
  static constexpr std::uint64_t words_per() {
    return (sizeof(T) + 7) / 8;
  }

  // ---- Raw accounting hooks (called by SimRef) ----------------------------

  /// Records a memory access of `words` words at simulated address `addr`
  /// by the current core and charges one unit of work/span per word.
  /// Inline so the CacheSim L0 fast path reaches into SimRef::load/store.
  /// A single batched call over `words` words is equivalent, in every
  /// observable counter, to per-element calls covering the same range:
  /// work/span charge `words` either way, and the cache walk collapses
  /// repeat touches of a B_1 block exactly (see hm/cache_sim.hpp).
  void access(std::uint64_t addr, std::uint32_t words, bool write) {
    if constexpr (obs::kTracingCompiledIn) {
      // Access-run-length distribution (how effective PR 3's run batching
      // is for this workload); recorded at capture time so serial and
      // sharded replay produce identical registries.
      if (tracer_ != nullptr) [[unlikely]] {
        hist_access_words_->record(words);
      }
    }
    if (trace_ != nullptr) [[unlikely]] {
      trace_->push_back(TraceEntry{addr, words,
                                   static_cast<std::uint8_t>(ctx_.core),
                                   static_cast<std::uint8_t>(write)});
    }
    if (psim_buf_ != nullptr) [[unlikely]] {
      // Sharded engine: buffer the access (with the obs context a live
      // emission would have used) instead of simulating it now.  ts is
      // work_ *before* tick, matching when cache_.access would emit.
      psim_buf_->push_back(hm::PsimAccess{
          addr, words, static_cast<std::uint8_t>(ctx_.core),
          static_cast<std::uint8_t>(write), work_,
          tracer_ != nullptr ? tracer_->current_task() : 0});
      if (psim_buf_->size() >= psim_cap_) psim_->flush();
      tick(words);
      return;
    }
    cache_.access(ctx_.core, addr, words, write);
    tick(words);
  }

  /// Appends every subsequent access to `out` (nullptr stops recording).
  /// MachineConfig caps cores at 64, so the core always fits TraceEntry.
  void set_trace(std::vector<TraceEntry>* out) { trace_ = out; }

  /// Attaches an obs::Tracer (nullptr detaches): every hint dispatch,
  /// anchoring decision, and task begin/end is emitted as a typed event,
  /// cache misses are attributed to the anchored task (via
  /// hm::CacheSim::set_tracer), the tracer's clock becomes this executor's
  /// logical work counter (so event streams are deterministic and
  /// goldenable), and run() publishes RunMetrics plus scheduler counters
  /// into the tracer's CounterRegistry.  Export lanes are named after the
  /// machine (cores and caches).  The tracer must outlive the runs.
  void set_tracer(obs::Tracer* tracer);

  /// Charges `n` units of pure computation (no memory traffic).
  void tick(std::uint64_t n) {
    work_ += n;
    span_ += n;
  }

  // ---- Root entry ---------------------------------------------------------

  /// Runs `body` as the root task with the given space bound, anchored at
  /// the smallest cache level that fits it (or at the memory level), and
  /// returns the metrics of the run.  Resets counters first.
  RunMetrics run(std::uint64_t space_words, const std::function<void()>& body);

  /// Non-throwing counterpart of run(): catches escaping exceptions
  /// (injected allocation faults, workload errors) and returns them as a
  /// typed Status -- kResourceExhausted for std::bad_alloc, the carried
  /// code for obliv::Error, kInternal otherwise.  On error the simulator's
  /// counters are whatever the partial run left; call run()/try_run()
  /// again to reset and re-measure.
  Result<RunMetrics> try_run(std::uint64_t space_words,
                             const std::function<void()>& body) noexcept;

  /// Metrics of the last completed run().
  RunMetrics metrics() const;

  // ---- CGC (Section III-A) -------------------------------------------------

  /// Parallel for over [lo, hi) under the CGC hint.  `words_per_iter` is the
  /// number of contiguous words one iteration scans (used to round segment
  /// boundaries to B_1 blocks); `body(a, b)` processes iterations [a, b).
  void cgc_pfor(std::uint64_t lo, std::uint64_t hi,
                std::uint64_t words_per_iter,
                const std::function<void(std::uint64_t, std::uint64_t)>& body);

  /// Convenience: per-index body.
  void cgc_pfor_each(std::uint64_t lo, std::uint64_t hi,
                     std::uint64_t words_per_iter,
                     const std::function<void(std::uint64_t)>& body);

  // ---- SB (Section III-B) ---------------------------------------------------

  /// Forks `tasks` in parallel under the SB hint.  Each task is anchored at
  /// the least-loaded cache at the smallest level that fits its space bound
  /// under the current shadow; tasks whose bound exceeds C_{i-1} queue at the
  /// current anchor itself and serialize.
  void sb_parallel(std::vector<SbTask> tasks);

  /// Two-task convenience (the typical binary fork of I-GEP / SpM-DV).
  void sb_parallel2(std::uint64_t space1, const std::function<void()>& f1,
                    std::uint64_t space2, const std::function<void()>& f2);

  /// Runs a single task sequentially but re-anchored per its space bound
  /// (used for the serial recursive calls of I-GEP's function A).
  void sb_seq(std::uint64_t space_words, const std::function<void()>& body);

  // ---- CGC=>SB (Section III-C) ----------------------------------------------

  /// `count` equal-space subtasks, each touching `space_words` words;
  /// distributed evenly across the level-t caches under the current shadow,
  /// t = max(i, j) per Section III-C.  `body(k)` runs subtask k.
  void cgc_sb_pfor(std::uint64_t count, std::uint64_t space_words,
                   const std::function<void(std::uint64_t)>& body);

  // ---- Introspection (used by tests) ---------------------------------------

  std::uint32_t current_core() const { return ctx_.core; }
  std::uint32_t current_anchor_level() const { return ctx_.anchor_level; }
  std::uint32_t current_anchor_index() const { return ctx_.anchor_idx; }
  std::uint64_t work() const { return work_; }
  std::uint64_t span() const { return span_; }

 private:
  struct Ctx {
    std::uint32_t anchor_level;  ///< 1..h; h == memory (whole machine)
    std::uint32_t anchor_idx;    ///< cache index at anchor_level (0 if memory)
    std::uint32_t core;          ///< core executing sequential code
  };

  std::uint32_t cores_under_ctx() const;
  std::uint32_t first_core_under_ctx() const;

  // ---- obs emission helpers (no-ops when tracing is compiled out) ---------

  /// Routes a scheduler event to the tracer -- directly in serial mode, or
  /// deferred at the current buffer position when the sharded engine is
  /// buffering, so the flush interleaves it exactly where live emission
  /// would have placed it.  Caller must have checked tracer_ != nullptr.
  void emit_sched(obs::EventKind kind, std::uint8_t detail, std::uint32_t tid,
                  std::uint64_t a, std::uint64_t b, std::uint64_t c) {
    if constexpr (obs::kTracingCompiledIn) {
      if (psim_buf_ != nullptr) {
        psim_->defer_sched_event(
            obs::Event{tracer_->now(), a, b, c, tid, kind, detail});
      } else {
        tracer_->emit(0, kind, detail, tid, a, b, c);
      }
    }
  }

  /// Flushes the sharded engine's buffer at a shared-level sync point
  /// (construct end) once it has reached the epoch grain.
  void maybe_flush_psim() {
    if (psim_buf_ != nullptr && psim_buf_->size() >= psim_grain_) {
      psim_->flush();
    }
  }

  /// Records a hint dispatch (detail = static_cast<uint8_t>(Hint)).
  /// Histogram handles (hist_*) are resolved once per set_tracer();
  /// CounterRegistry::clear() zeroes histograms in place, so the cached
  /// pointers stay valid across Tracer::clear() between runs.
  void trace_hint(Hint hint, std::uint64_t a, std::uint64_t b) {
    if constexpr (obs::kTracingCompiledIn) {
      if (tracer_ != nullptr) {
        switch (hint) {
          case Hint::kCgc: ++tally_.cgc; break;
          case Hint::kSb: ++tally_.sb; break;
          case Hint::kCgcSb: ++tally_.cgcsb; break;
        }
        emit_sched(obs::EventKind::kHintDispatch,
                   static_cast<std::uint8_t>(hint), ctx_.core, a, b,
                   next_task_id_ + 1);
      }
    }
  }

  /// Records an anchoring decision for the task run_child will create next
  /// (task id next_task_id_ + 1 -- the sim is single-threaded, so the pair
  /// is adjacent and unambiguous in the stream).
  void trace_anchor(obs::AnchorReason reason, std::uint64_t space_words,
                    std::uint32_t level, std::uint32_t idx) {
    if constexpr (obs::kTracingCompiledIn) {
      if (tracer_ != nullptr) {
        if (reason == obs::AnchorReason::kSbQueued) ++tally_.sb_queued;
        hist_anchor_space_->record(space_words);
        emit_sched(obs::EventKind::kAnchor, static_cast<std::uint8_t>(reason),
                   obs::cache_lane(level, idx), space_words, level,
                   next_task_id_ + 1);
      }
    }
  }

  /// Number of level-`t` caches under the current anchor's shadow and the
  /// index of the first one.
  std::pair<std::uint32_t, std::uint32_t> caches_under_ctx(
      std::uint32_t t) const;
  /// Capacity of a level (memory level == +inf).
  std::uint64_t capacity_of(std::uint32_t level) const;

  /// Runs `fn` with context switched to (level, idx) and its first core.
  /// Returns the span consumed by fn (work accumulates globally).
  std::uint64_t run_child(std::uint32_t level, std::uint32_t idx,
                          const std::function<void()>& fn,
                          std::uint64_t span_base);

  hm::MachineConfig cfg_;
  SimPolicy policy_;
  hm::CacheSim cache_;
  // Sharded replay engine (hm/psim.hpp), created lazily on the first run()
  // that resolves to kSharded.  psim_buf_ is non-null exactly while such a
  // run is buffering; it aliases psim_->buffer(), which is stable across
  // flushes.
  std::unique_ptr<hm::ShardedCacheSim> psim_;
  std::vector<hm::PsimAccess>* psim_buf_ = nullptr;
  std::uint64_t psim_grain_ = 0;  ///< sync-point flush threshold (entries)
  std::uint64_t psim_cap_ = 0;    ///< mid-construct hard cap (entries)
  Ctx ctx_;
  std::uint64_t work_ = 0;
  std::uint64_t span_ = 0;
  std::uint64_t addr_top_ = 0;
  std::vector<TraceEntry>* trace_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  // Distribution metrics, registered by set_tracer() (null iff tracer_ is):
  // per-CGC-segment iteration grains and per-anchor space bounds.
  obs::Histogram* hist_cgc_grain_ = nullptr;
  obs::Histogram* hist_anchor_space_ = nullptr;
  obs::Histogram* hist_access_words_ = nullptr;
  std::uint64_t next_task_id_ = 0;  // task ids for obs attribution
  // Scheduler tallies published to the tracer's CounterRegistry at the end
  // of run(); plain integers so decision paths never do string lookups.
  struct SchedTally {
    std::uint64_t cgc = 0, sb = 0, cgcsb = 0, sb_queued = 0;
    std::vector<std::uint64_t> anchors_per_level;  // index level-1
  } tally_;
  std::uint32_t rr_counter_ = 0;  // round-robin cursor for slice mode
  // cache_load_[level-1][idx]: accumulated work anchored at that cache,
  // used for the SB "least loaded" rule.
  std::vector<std::vector<std::uint64_t>> cache_load_;
};

/// Non-owning instrumented view of `n` elements of T.
///
/// All element access is explicit (`load` / `store`) so that both the
/// simulated and the native backends present the same interface to
/// algorithm templates.
template <class T>
class SimRef {
 public:
  using value_type = T;

  SimRef() = default;
  SimRef(SimExecutor* ex, T* data, std::uint64_t addr, std::size_t n)
      : ex_(ex), data_(data), addr_(addr), n_(n) {}

  T load(std::size_t i) const {
    assert(i < n_);
    ex_->access(addr_ + i * W, W, /*write=*/false);
    return data_[i];
  }

  void store(std::size_t i, const T& v) const {
    assert(i < n_);
    ex_->access(addr_ + i * W, W, /*write=*/true);
    data_[i] = v;
  }

  // Batched range accesses.  One simulator call covers the whole run, which
  // charges the same work/span and produces the same cache counters as
  // per-element calls over the range (hm::CacheSim::access_run), but pays
  // the call overhead once.  Use them where an algorithm touches
  // consecutive elements back-to-back with nothing in between.

  /// Reads elements [i, i + len) into `out`.
  void load_run(std::size_t i, std::size_t len, T* out) const {
    assert(i + len <= n_);
    if (len == 0) return;
    ex_->access(addr_ + i * W, static_cast<std::uint32_t>(len * W),
                /*write=*/false);
    std::copy(data_ + i, data_ + i + len, out);
  }

  /// Writes `src[0 .. len)` to elements [i, i + len).
  void store_run(std::size_t i, std::size_t len, const T* src) const {
    assert(i + len <= n_);
    if (len == 0) return;
    ex_->access(addr_ + i * W, static_cast<std::uint32_t>(len * W),
                /*write=*/true);
    std::copy(src, src + len, data_ + i);
  }

  /// Adjacent pair read -- the contraction-tree access pattern.
  std::pair<T, T> load2(std::size_t i) const {
    assert(i + 1 < n_);
    ex_->access(addr_ + i * W, 2 * W, /*write=*/false);
    return {data_[i], data_[i + 1]};
  }

  /// Read-modify-write without double-charging the address computation.
  template <class F>
  void update(std::size_t i, F&& f) const {
    assert(i < n_);
    ex_->access(addr_ + i * W, W, /*write=*/true);
    f(data_[i]);
  }

  SimRef slice(std::size_t off, std::size_t len) const {
    assert(off + len <= n_);
    return SimRef(ex_, data_ + off, addr_ + off * W, len);
  }

  std::size_t size() const { return n_; }
  std::uint64_t addr() const { return addr_; }
  /// Raw (un-instrumented) pointer, for test assertions only.
  T* raw() const { return data_; }

 private:
  static constexpr std::uint64_t W = (sizeof(T) + 7) / 8;
  SimExecutor* ex_ = nullptr;
  T* data_ = nullptr;
  std::uint64_t addr_ = 0;
  std::size_t n_ = 0;
};

/// Owning instrumented buffer.
template <class T>
class SimBuf {
 public:
  SimBuf() = default;
  SimBuf(SimExecutor* ex, std::uint64_t addr, std::size_t n)
      : ex_(ex), addr_(addr), v_(n) {}

  SimRef<T> ref() { return SimRef<T>(ex_, v_.data(), addr_, v_.size()); }
  std::size_t size() const { return v_.size(); }
  /// Raw storage, for initialization/checking outside the measured region.
  std::vector<T>& raw() { return v_; }
  const std::vector<T>& raw() const { return v_; }
  std::uint64_t addr() const { return addr_; }

 private:
  SimExecutor* ex_ = nullptr;
  std::uint64_t addr_ = 0;
  std::vector<T> v_;
};

template <class T>
SimBuf<T> SimExecutor::make_buf(std::size_t n) {
  fault::maybe_fail_alloc(fault::InjectSite::kAllocBuf);
  const std::uint64_t align =
      cfg_.block(cfg_.cache_levels());  // largest block size
  addr_top_ = (addr_top_ + align - 1) / align * align;
  const std::uint64_t addr = addr_top_;
  addr_top_ += n * words_per<T>();
  return SimBuf<T>(this, addr, n);
}

template <class T>
void SimExecutor::copy(SimRef<T> dst, SimRef<T> src) {
  assert(dst.size() == src.size());
  const std::uint64_t n = src.size();
  const std::uint64_t W = words_per<T>();
  const std::uint64_t b1 = cfg_.block(1);
  std::uint64_t i = 0;
  while (i < n) {
    const std::uint64_t sa = src.addr() + i * W;
    const std::uint64_t da = dst.addr() + i * W;
    // Elements whose first word stays inside the current B_1 block of the
    // respective stream (at least one, so progress is guaranteed even for
    // elements wider than a block).
    const std::uint64_t ks = (b1 - sa % b1 + W - 1) / W;
    const std::uint64_t kd = (b1 - da % b1 + W - 1) / W;
    const std::uint64_t k =
        std::max<std::uint64_t>(1, std::min({n - i, ks, kd}));
    access(sa, static_cast<std::uint32_t>(k * W), /*write=*/false);
    access(da, static_cast<std::uint32_t>(k * W), /*write=*/true);
    std::copy(src.raw() + i, src.raw() + i + k, dst.raw() + i);
    i += k;
  }
}

}  // namespace obliv::sched
