#include "sched/sim_executor.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "util/bits.hpp"

namespace obliv::sched {

SimExecutor::SimExecutor(hm::MachineConfig cfg, SimPolicy policy)
    : cfg_(std::move(cfg)), policy_(policy), cache_(cfg_) {
  ctx_ = Ctx{cfg_.h(), 0, 0};
  cache_load_.resize(cfg_.cache_levels());
  for (std::uint32_t lvl = 1; lvl <= cfg_.cache_levels(); ++lvl) {
    cache_load_[lvl - 1].assign(cfg_.caches_at(lvl), 0);
  }
}

Result<SimExecutor> SimExecutor::make(hm::MachineConfig cfg,
                                      SimPolicy policy) noexcept {
  try {
    return SimExecutor(std::move(cfg), policy);
  } catch (const Error& e) {
    return Status::error(e.code(), e.what());
  } catch (const std::bad_alloc&) {
    return Status::error(ErrorCode::kResourceExhausted,
                         "allocation failed while building SimExecutor");
  } catch (const std::exception& e) {
    return Status::error(ErrorCode::kInternal, e.what());
  }
}

void SimExecutor::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  cache_.set_tracer(tracer);
  hist_cgc_grain_ = nullptr;
  hist_anchor_space_ = nullptr;
  hist_access_words_ = nullptr;
  if constexpr (obs::kTracingCompiledIn) {
    if (tracer != nullptr) {
      hist_cgc_grain_ = &tracer->counters().histogram("sim.grain.cgc_iters");
      hist_anchor_space_ =
          &tracer->counters().histogram("sim.anchor.space_words");
      hist_access_words_ =
          &tracer->counters().histogram("sim.access.run_words");
      tracer->set_logical_clock(&work_);
      for (std::uint32_t c = 0; c < cfg_.cores(); ++c) {
        tracer->name_lane(c, "core " + std::to_string(c));
      }
      for (std::uint32_t lvl = 1; lvl <= cfg_.cache_levels(); ++lvl) {
        for (std::uint32_t i = 0; i < cfg_.caches_at(lvl); ++i) {
          tracer->name_lane(obs::cache_lane(lvl, i),
                            "L" + std::to_string(lvl) + " cache " +
                                std::to_string(i));
        }
      }
    }
  }
}

std::uint32_t SimExecutor::cores_under_ctx() const {
  if (ctx_.anchor_level > cfg_.cache_levels()) return cfg_.cores();
  return cfg_.cores_under(ctx_.anchor_level);
}

std::uint32_t SimExecutor::first_core_under_ctx() const {
  if (ctx_.anchor_level > cfg_.cache_levels()) return 0;
  return cfg_.first_core_under(ctx_.anchor_idx, ctx_.anchor_level);
}

std::pair<std::uint32_t, std::uint32_t> SimExecutor::caches_under_ctx(
    std::uint32_t t) const {
  if (ctx_.anchor_level > cfg_.cache_levels()) {
    return {cfg_.caches_at(t), 0};
  }
  assert(t <= ctx_.anchor_level);
  const std::uint32_t per =
      cfg_.cores_under(ctx_.anchor_level) / cfg_.cores_under(t);
  return {per, ctx_.anchor_idx * per};
}

std::uint64_t SimExecutor::capacity_of(std::uint32_t level) const {
  if (level > cfg_.cache_levels()) return ~0ull;
  return cfg_.capacity(level);
}

RunMetrics SimExecutor::run(std::uint64_t space_words,
                            const std::function<void()>& body) {
  cache_.clear();
  work_ = 0;
  span_ = 0;
  rr_counter_ = 0;
  next_task_id_ = 0;
  for (auto& row : cache_load_) std::fill(row.begin(), row.end(), 0);
  // Engine selection is per run: OBLIV_PSIM can flip between runs, and a
  // failed try_run leaves psim_buf_ set -- begin_run below resets it all.
  psim_buf_ = nullptr;
  if (hm::resolve_psim_mode(policy_.psim) == hm::PsimMode::kSharded) {
    if (psim_ == nullptr) {
      psim_ = std::make_unique<hm::ShardedCacheSim>(cache_);
    }
    psim_->begin_run(tracer_, &work_);
    psim_buf_ = &psim_->buffer();
    psim_grain_ = policy_.psim_epoch_grain != 0
                      ? policy_.psim_epoch_grain
                      : hm::ShardedCacheSim::kDefaultEpochGrain;
    psim_cap_ = psim_grain_ * hm::ShardedCacheSim::kHardCapFactor;
  }
  const std::uint32_t lvl = cfg_.smallest_level_fitting(space_words);
  ctx_ = Ctx{lvl, 0, 0};
  if constexpr (obs::kTracingCompiledIn) {
    if (tracer_ != nullptr) {
      tally_ = SchedTally{};
      tally_.anchors_per_level.assign(cfg_.h(), 0);
      tracer_->set_task(0, lvl, 0);  // the root task is id 0
      emit_sched(obs::EventKind::kTaskBegin, 0, /*tid=*/0, /*a=*/0,
                 /*b=*/lvl, /*c=*/0);
    }
  }
  body();
  if constexpr (obs::kTracingCompiledIn) {
    if (tracer_ != nullptr) {
      emit_sched(obs::EventKind::kTaskEnd, 0, /*tid=*/0, /*a=*/0,
                 /*b=*/span_, /*c=*/0);
    }
  }
  if (psim_buf_ != nullptr) {
    psim_->flush();
    psim_buf_ = nullptr;
  }
  ctx_ = Ctx{cfg_.h(), 0, 0};
  RunMetrics m = metrics();
  if constexpr (obs::kTracingCompiledIn) {
    if (tracer_ != nullptr) {
      obs::CounterRegistry& reg = tracer_->counters();
      metrics_to_counters(m, reg);
      reg.set("sched.tasks", next_task_id_);
      reg.set("sched.hint.cgc", tally_.cgc);
      reg.set("sched.hint.sb", tally_.sb);
      reg.set("sched.hint.cgcsb", tally_.cgcsb);
      reg.set("sched.sb.queued", tally_.sb_queued);
      for (std::size_t i = 0; i < tally_.anchors_per_level.size(); ++i) {
        reg.set("sched.anchor.L" + std::to_string(i + 1),
                tally_.anchors_per_level[i]);
      }
      // Epoch stats only when the opt-in epoch lane is on: the default
      // export must stay byte-identical to a serial run.
      if (psim_ != nullptr && psim_->epoch_trace_enabled()) {
        reg.set("psim.epochs", psim_->epochs());
        reg.set("psim.fallback_epochs", psim_->fallback_epochs());
      }
    }
  }
  return m;
}

Result<RunMetrics> SimExecutor::try_run(
    std::uint64_t space_words, const std::function<void()>& body) noexcept {
  try {
    return run(space_words, body);
  } catch (const Error& e) {
    return Status::error(e.code(), e.what());
  } catch (const std::bad_alloc&) {
    return Status::error(ErrorCode::kResourceExhausted,
                         "allocation failed during simulated run");
  } catch (const std::exception& e) {
    return Status::error(ErrorCode::kInternal, e.what());
  }
}

RunMetrics SimExecutor::metrics() const {
  RunMetrics m;
  m.work = work_;
  m.span = span_;
  for (std::uint32_t lvl = 1; lvl <= cfg_.cache_levels(); ++lvl) {
    m.level_max_misses.push_back(cache_.level_max_misses(lvl));
    m.level_total_misses.push_back(cache_.level_total_misses(lvl));
  }
  m.pingpong = cache_.pingpong_events();
  return m;
}

std::uint64_t SimExecutor::run_child(std::uint32_t level, std::uint32_t idx,
                                     const std::function<void()>& fn,
                                     std::uint64_t span_base) {
  const Ctx saved = ctx_;
  const std::uint64_t saved_span = span_;
  span_ = span_base;
  std::uint32_t core = 0;
  if (level <= cfg_.cache_levels()) {
    core = cfg_.first_core_under(idx, level);
  }
  ctx_ = Ctx{level, idx, core};
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  if constexpr (obs::kTracingCompiledIn) {
    if (tracer_ != nullptr) {
      id = ++next_task_id_;
      parent = tracer_->current_task();
      if (level - 1 < tally_.anchors_per_level.size()) {
        ++tally_.anchors_per_level[level - 1];
      }
      tracer_->set_task(id, level, idx);
      emit_sched(obs::EventKind::kTaskBegin, 0, core, id, level, parent);
    }
  }
  fn();
  const std::uint64_t end = span_;
  if constexpr (obs::kTracingCompiledIn) {
    if (tracer_ != nullptr) {
      emit_sched(obs::EventKind::kTaskEnd, 0, core, id, end - span_base,
                 parent);
      tracer_->set_task(parent, saved.anchor_level, saved.anchor_idx);
    }
  }
  ctx_ = saved;
  span_ = saved_span;
  return end;
}

void SimExecutor::cgc_pfor(
    std::uint64_t lo, std::uint64_t hi, std::uint64_t words_per_iter,
    const std::function<void(std::uint64_t, std::uint64_t)>& body) {
  if (hi <= lo) return;
  const std::uint64_t t = hi - lo;
  const std::uint32_t P = cores_under_ctx();
  const std::uint32_t first_core = first_core_under_ctx();
  const std::uint64_t wpi = std::max<std::uint64_t>(1, words_per_iter);

  std::uint64_t base_len;
  if (policy_.respect_block_boundaries) {
    // Each segment must scan at least B_1 words even if cores idle, and
    // segment boundaries land on B_1 block boundaries (Section III-A).
    const std::uint64_t iters_per_block =
        std::max<std::uint64_t>(1, util::ceil_div(cfg_.block(1), wpi));
    const std::uint64_t chunks =
        std::max<std::uint64_t>(1,
                                std::min<std::uint64_t>(
                                    P, util::ceil_div(t, iters_per_block)));
    base_len = util::ceil_div(util::ceil_div(t, chunks), iters_per_block) *
               iters_per_block;
  } else {
    const std::uint64_t chunks = std::min<std::uint64_t>(P, t);
    base_len = util::ceil_div(t, chunks);
  }

  trace_hint(Hint::kCgc, t, base_len);
  const std::uint64_t span_base = span_;
  std::uint64_t max_end = span_base;
  std::uint32_t j = 0;
  for (std::uint64_t start = lo; start < hi; start += base_len, ++j) {
    const std::uint64_t end_i = std::min(hi, start + base_len);
    const std::uint32_t core = first_core + (j % P);
    if constexpr (obs::kTracingCompiledIn) {
      if (tracer_ != nullptr) hist_cgc_grain_->record(end_i - start);
    }
    // Each segment is anchored at the L1 cache of its core.
    trace_anchor(obs::AnchorReason::kCgcSegment, (end_i - start) * wpi, 1,
                 core);
    const std::uint64_t end =
        run_child(1, core, [&] { body(start, end_i); }, span_base);
    max_end = std::max(max_end, end);
  }
  span_ = max_end;
  // A CGC construct end is a shared-level sync point: eligible epoch cut.
  maybe_flush_psim();
}

void SimExecutor::cgc_pfor_each(
    std::uint64_t lo, std::uint64_t hi, std::uint64_t words_per_iter,
    const std::function<void(std::uint64_t)>& body) {
  cgc_pfor(lo, hi, words_per_iter,
           [&](std::uint64_t a, std::uint64_t b) {
             for (std::uint64_t k = a; k < b; ++k) body(k);
           });
}

void SimExecutor::sb_parallel(std::vector<SbTask> tasks) {
  if (tasks.empty()) return;
  trace_hint(Hint::kSb, tasks.size(), 0);
  const std::uint32_t parent_level = ctx_.anchor_level;
  const std::uint64_t span_base = span_;
  std::uint64_t max_end = span_base;
  // Per-assigned-cache running end time: tasks mapped to the same cache
  // queue behind each other (the Q(lambda) of Section III-B).
  std::unordered_map<std::uint64_t, std::uint64_t> ends;

  for (SbTask& task : tasks) {
    std::uint32_t lvl, idx;
    obs::AnchorReason reason;
    if (policy_.slice_mode) {
      // Baseline: ignore space bounds, round-robin tasks over cores.
      const std::uint32_t P = cores_under_ctx();
      lvl = 1;
      idx = first_core_under_ctx() + (rr_counter_++ % P);
      reason = obs::AnchorReason::kSlice;
    } else {
      const std::uint32_t fit = cfg_.smallest_level_fitting(task.space_words);
      if (parent_level >= 2 && fit <= parent_level - 1 &&
          fit <= cfg_.cache_levels()) {
        // Least-loaded cache at the smallest fitting level under the shadow.
        auto [count, first] = caches_under_ctx(fit);
        std::uint32_t best = first;
        for (std::uint32_t c = first; c < first + count; ++c) {
          if (cache_load_[fit - 1][c] < cache_load_[fit - 1][best]) best = c;
        }
        lvl = fit;
        idx = best;
        reason = obs::AnchorReason::kSbFit;
      } else {
        // Too big for any cache strictly below the anchor: queue at the
        // anchor itself.
        lvl = parent_level;
        idx = ctx_.anchor_idx;
        reason = obs::AnchorReason::kSbQueued;
      }
    }
    const std::uint64_t key = (static_cast<std::uint64_t>(lvl) << 32) | idx;
    auto it = ends.find(key);
    const std::uint64_t start = (it == ends.end()) ? span_base : it->second;
    const std::uint64_t w0 = work_;
    trace_anchor(reason, task.space_words, lvl, idx);
    const std::uint64_t end = run_child(lvl, idx, task.body, start);
    if (lvl <= cfg_.cache_levels()) {
      cache_load_[lvl - 1][idx] += work_ - w0;
    }
    ends[key] = end;
    max_end = std::max(max_end, end);
  }
  span_ = max_end;
  // An SB join is a shared-level sync point: eligible epoch cut.
  maybe_flush_psim();
}

void SimExecutor::sb_parallel2(std::uint64_t space1,
                               const std::function<void()>& f1,
                               std::uint64_t space2,
                               const std::function<void()>& f2) {
  std::vector<SbTask> tasks;
  tasks.push_back(SbTask{space1, f1});
  tasks.push_back(SbTask{space2, f2});
  sb_parallel(std::move(tasks));
}

void SimExecutor::sb_seq(std::uint64_t space_words,
                         const std::function<void()>& body) {
  std::uint32_t lvl, idx;
  obs::AnchorReason reason;
  const std::uint32_t parent_level = ctx_.anchor_level;
  const std::uint32_t fit = cfg_.smallest_level_fitting(space_words);
  trace_hint(Hint::kSb, 1, space_words);
  if (!policy_.slice_mode && parent_level >= 2 && fit <= parent_level - 1 &&
      fit <= cfg_.cache_levels()) {
    auto [count, first] = caches_under_ctx(fit);
    std::uint32_t best = first;
    for (std::uint32_t c = first; c < first + count; ++c) {
      if (cache_load_[fit - 1][c] < cache_load_[fit - 1][best]) best = c;
    }
    lvl = fit;
    idx = best;
    reason = obs::AnchorReason::kSbFit;
  } else {
    lvl = parent_level;
    idx = ctx_.anchor_idx;
    reason = obs::AnchorReason::kSbQueued;
  }
  const std::uint64_t w0 = work_;
  trace_anchor(reason, space_words, lvl, idx);
  const std::uint64_t end = run_child(lvl, idx, body, span_);
  if (lvl <= cfg_.cache_levels()) cache_load_[lvl - 1][idx] += work_ - w0;
  span_ = end;
  maybe_flush_psim();
}

void SimExecutor::cgc_sb_pfor(
    std::uint64_t count, std::uint64_t space_words,
    const std::function<void(std::uint64_t)>& body) {
  if (count == 0) return;
  const std::uint32_t k = ctx_.anchor_level;
  trace_hint(Hint::kCgcSb, count, space_words);

  if (policy_.slice_mode) {
    // Baseline: contiguous distribution over cores, ignoring space bounds.
    const std::uint32_t P = cores_under_ctx();
    const std::uint32_t first_core = first_core_under_ctx();
    const std::uint64_t per = util::ceil_div(count, P);
    const std::uint64_t span_base = span_;
    std::uint64_t max_end = span_base;
    for (std::uint32_t c = 0; c < P; ++c) {
      std::uint64_t local = span_base;
      for (std::uint64_t s = c * per; s < std::min(count, (c + 1) * per);
           ++s) {
        trace_anchor(obs::AnchorReason::kSlice, space_words, 1,
                     first_core + c);
        local = run_child(1, first_core + c, [&] { body(s); }, local);
      }
      max_end = std::max(max_end, local);
    }
    span_ = max_end;
    maybe_flush_psim();
    return;
  }

  // i: smallest level whose caches fit one subtask.
  const std::uint32_t i_fit = cfg_.smallest_level_fitting(space_words);
  // j: smallest level with at most `count` caches under the shadow.
  std::uint32_t j = 1;
  const std::uint32_t j_cap = std::min<std::uint32_t>(k, cfg_.cache_levels());
  while (j < j_cap && caches_under_ctx(j).first > count) ++j;

  // Section III-C: t = max(i, j).  The fit-only ablation drops the j term.
  std::uint32_t t = policy_.cgcsb_fit_only ? i_fit : std::max(i_fit, j);
  std::uint32_t q, first;
  if (t >= k || t > cfg_.cache_levels()) {
    // Subtasks as large as (or larger than) the anchor: they queue at the
    // anchor itself and serialize.
    t = k;
    q = 1;
    first = ctx_.anchor_idx;
  } else {
    std::tie(q, first) = caches_under_ctx(t);
  }

  const std::uint64_t per = util::ceil_div(count, q);
  const std::uint64_t span_base = span_;
  std::uint64_t max_end = span_base;
  for (std::uint32_t c = 0; c < q; ++c) {
    std::uint64_t local = span_base;
    const std::uint64_t s_lo = c * per;
    const std::uint64_t s_hi = std::min<std::uint64_t>(count, (c + 1) * per);
    for (std::uint64_t s = s_lo; s < s_hi; ++s) {
      const std::uint64_t w0 = work_;
      trace_anchor(obs::AnchorReason::kCgcSbSpread, space_words, t, first + c);
      local = run_child(t, first + c, [&] { body(s); }, local);
      if (t <= cfg_.cache_levels()) {
        cache_load_[t - 1][first + c] += work_ - w0;
      }
    }
    max_end = std::max(max_end, local);
  }
  span_ = max_end;
  // A CGC=>SB spread end is a shared-level sync point: eligible epoch cut.
  maybe_flush_psim();
}

}  // namespace obliv::sched
