// NativeExecutor: runs MO algorithms with real threads on the host machine.
//
// The same algorithm templates that run on SimExecutor (for exact HM-model
// metrics) run here for wall-clock measurements, demonstrating that the
// hint-based schedule is executable on a real multicore.  The executor is
// itself multicore-oblivious: it only uses the number of worker threads (a
// run-time resource, not an algorithm parameter) and treats space-bound
// hints as fork cut-offs -- a task whose space bound is below a
// grain threshold runs sequentially, which is the native analogue of
// anchoring at a private cache.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/hints.hpp"

namespace obliv::sched {

template <class T>
class NatRef;
template <class T>
class NatBuf;

/// A simple shared-queue fork-join pool.  Waiting threads help execute
/// pending tasks, so nested parallelism cannot deadlock.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned threads() const { return workers_.size() + 1; }

  /// Runs all `tasks`, potentially in parallel; returns when all complete.
  void run_all(std::vector<std::function<void()>> tasks);

 private:
  struct Group;
  struct Item {
    std::function<void()> fn;
    Group* group;
  };

  void worker_loop();
  bool try_run_one();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  bool stop_ = false;
};

class NativeExecutor {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency().
  explicit NativeExecutor(unsigned threads = 0,
                          std::uint64_t sequential_grain_words = 1 << 12);

  unsigned threads() const { return pool_.threads(); }

  template <class T>
  NatBuf<T> make_buf(std::size_t n);

  // Same interface as SimExecutor so algorithms are written once. ----------

  void cgc_pfor(std::uint64_t lo, std::uint64_t hi,
                std::uint64_t words_per_iter,
                const std::function<void(std::uint64_t, std::uint64_t)>& body);

  void cgc_pfor_each(std::uint64_t lo, std::uint64_t hi,
                     std::uint64_t words_per_iter,
                     const std::function<void(std::uint64_t)>& body);

  void sb_parallel(std::vector<SbTask> tasks);

  void sb_parallel2(std::uint64_t space1, const std::function<void()>& f1,
                    std::uint64_t space2, const std::function<void()>& f2);

  void sb_seq(std::uint64_t space_words, const std::function<void()>& body) {
    body();
  }

  void cgc_sb_pfor(std::uint64_t count, std::uint64_t space_words,
                   const std::function<void(std::uint64_t)>& body);

  void tick(std::uint64_t) {}

 private:
  ThreadPool pool_;
  std::uint64_t grain_;
};

/// Un-instrumented counterpart of SimRef: load/store compile to plain
/// element access.
template <class T>
class NatRef {
 public:
  using value_type = T;

  NatRef() = default;
  NatRef(T* data, std::size_t n) : data_(data), n_(n) {}

  T load(std::size_t i) const { return data_[i]; }
  void store(std::size_t i, const T& v) const { data_[i] = v; }
  template <class F>
  void update(std::size_t i, F&& f) const {
    f(data_[i]);
  }

  NatRef slice(std::size_t off, std::size_t len) const {
    return NatRef(data_ + off, len);
  }

  std::size_t size() const { return n_; }
  T* raw() const { return data_; }

 private:
  T* data_ = nullptr;
  std::size_t n_ = 0;
};

template <class T>
class NatBuf {
 public:
  NatBuf() = default;
  explicit NatBuf(std::size_t n) : v_(n) {}

  NatRef<T> ref() { return NatRef<T>(v_.data(), v_.size()); }
  std::size_t size() const { return v_.size(); }
  std::vector<T>& raw() { return v_; }
  const std::vector<T>& raw() const { return v_; }

 private:
  std::vector<T> v_;
};

template <class T>
NatBuf<T> NativeExecutor::make_buf(std::size_t n) {
  return NatBuf<T>(n);
}

}  // namespace obliv::sched
