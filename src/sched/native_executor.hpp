// NativeExecutor: runs MO algorithms with real threads on the host machine.
//
// The same algorithm templates that run on SimExecutor (for exact HM-model
// metrics) run here for wall-clock measurements, demonstrating that the
// hint-based schedule is executable on a real multicore.  The executor is
// itself multicore-oblivious: it only uses the number of worker threads (a
// run-time resource, not an algorithm parameter) and treats space-bound
// hints as *steal cut-offs* -- a task whose space bound is below the grain
// threshold is never made stealable and runs on the forking core, which is
// the native analogue of anchoring at a private cache.
//
// Two scheduler backends share the public interface:
//
//   * WorkStealingPool (default) -- one Chase-Lev deque per worker; the
//     owner forks/joins through its own deque under relaxed atomics, idle
//     workers steal FIFO and *block* when the machine is saturated.  CGC
//     loops use lazy binary splitting: a range peels grain-sized chunks
//     sequentially and only splits in half when the local deque has been
//     emptied by thieves.  Forked tasks live on the forking frame's stack,
//     so dispatch performs no heap allocation.
//   * SharedQueuePool -- the original single mutex + condvar queue with one
//     heap-allocated std::function per task and eager pre-chunking.  Kept
//     as the measured baseline (bench_wallclock `sched=sharedq` rows).
//
// Select with the constructor argument or OBLIV_SCHED=sharedq|steal.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "fault/status.hpp"
#include "obs/trace.hpp"
#include "sched/cancel.hpp"
#include "sched/hints.hpp"
#include "sched/ws_deque.hpp"
#include "util/simd.hpp"

namespace obliv::sched {

/// Best-effort: pin the calling thread to core `core % hardware cores`.
/// Returns false when the platform has no affinity API or the call fails.
bool pin_current_thread(unsigned core) noexcept;

/// True when the OBLIV_PIN environment variable asks for worker pinning
/// (any value except "0"/"off").  Off by default: pinning is a measurement
/// aid, not a throughput win, and it is rude in shared containers.
bool pinning_requested() noexcept;

template <class T>
class NatRef;
template <class T>
class NatBuf;

/// A stealable unit of work.  Instances live on the stack of the forking
/// function (structured fork/join: the parent joins every child before its
/// frame dies), so scheduling a Task moves one pointer -- no allocation, no
/// std::function, no virtual dispatch (a plain function pointer selects the
/// concrete body).
class Task {
 public:
  using RunFn = void (*)(Task*);

  explicit Task(RunFn run_fn) : run_(run_fn) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  void run() { run_(this); }
  bool finished() const {
    return state_.load(std::memory_order_acquire) == kDone;
  }

  /// The cancellation token governing this task's tree, or nullptr.  Set
  /// once at the tree root (the serve layer sets it per job before
  /// forking); fork() propagates the forking thread's current token into
  /// token-less children, so the whole tree shares one token without
  /// per-task bookkeeping.  Poisoning never skips a task: a poisoned
  /// task still runs (its body no-ops at the next check) so every join
  /// completes and the fork/join structure stays intact.
  CancelToken* cancel_token() const { return token_; }
  void set_cancel_token(CancelToken* tok) { token_ = tok; }

  // Completion / sleeping-joiner handshake, folded into one atomic word so
  // the finisher never touches the Task after completion is visible (the
  // joiner may pop its stack frame the instant it observes kDone).  The
  // joiner CASes kRunning -> kAwaited before sleeping; the finisher's
  // exchange to kDone atomically publishes completion *and* reads whether a
  // joiner registered.  The RMWs totally order the two: either the CAS came
  // first (exchange returns kAwaited -> wake the joiner) or the exchange
  // came first (the CAS fails, the joiner sees kDone and never sleeps).
  // Tasks nobody sleeps on -- the vast majority -- complete silently.
  void mark_awaited() {
    std::uint8_t expected = kRunning;
    state_.compare_exchange_strong(expected, kAwaited,
                                   std::memory_order_seq_cst);
  }
  /// Publishes completion; true if a joiner is (or may be) asleep on it.
  /// The Task may be destroyed by its joiner as soon as this returns.
  bool finish_and_check_awaited() {
    return state_.exchange(kDone, std::memory_order_seq_cst) == kAwaited;
  }

 private:
  static constexpr std::uint8_t kRunning = 0, kAwaited = 1, kDone = 2;
  RunFn run_;
  CancelToken* token_ = nullptr;
  std::atomic<std::uint8_t> state_{kRunning};
};

/// Work-stealing fork/join pool.  The constructing program's calling thread
/// participates as worker 0 whenever it enters through run_root(); the pool
/// spawns threads-1 std::threads for the remaining slots.
class WorkStealingPool {
 public:
  explicit WorkStealingPool(unsigned threads);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  unsigned threads() const { return nworkers_; }

  /// True when the spawned workers pin themselves to cores (OBLIV_PIN set
  /// on a platform with an affinity API).  The calling thread -- worker 0
  /// -- is never touched; measurement harnesses pin it themselves via
  /// pin_current_thread() so the pool cannot hijack a caller's affinity.
  bool pinned() const { return pinned_; }

  /// Runs `root` on the calling thread, registering it as worker 0 if it is
  /// not already a pool worker.  Concurrent external callers serialize.
  void run_root(Task& root);

  /// Pushes `t` onto the current worker's deque (caller must be inside
  /// run_root or a worker).  `t` must outlive the matching join().
  void fork(Task* t);

  /// Blocks until `t` completes, draining the local deque and stealing
  /// while it waits; sleeps (no spin-yield) only when there is nothing to
  /// help with.
  void join(Task* t);

  /// Like join(), but gives up when `deadline` passes or `quit()` turns
  /// true at an idle point (quit is polled between tasks, never mid-task,
  /// and may be empty).  Returns t->finished(); on false the caller is
  /// still responsible for eventually joining `t` to completion.  Built
  /// for layered schedulers whose dispatcher multiplexes watchdog duties
  /// (deadline sweeps, re-admission after a cancel freed budget) with
  /// helping the pool: the serve dispatcher is the only current caller.
  bool join_interruptible(Task* t,
                          std::chrono::steady_clock::time_point deadline,
                          const std::function<bool()>& quit);

  /// Wakes every blocked worker/joiner so a pending join_interruptible
  /// re-polls its quit predicate.  Safe from any thread.
  void kick();

  /// True when the current worker's deque has been emptied by thieves --
  /// the lazy-splitting signal that more parallelism is profitable.
  bool local_deque_empty() const;

  /// Worker slot of the calling thread on *this* pool, or -1 when the
  /// caller is not bound to it (an external thread outside run_root).
  /// Lets layered emitters (obliv::serve) target the calling worker's
  /// single-producer trace ring without widening the tracer API.
  int this_worker_id() const;

  /// Convenience used by tests and sb_parallel: fork-join a task vector.
  void run_all(std::vector<std::function<void()>> tasks);

  /// Attaches an obs::Tracer (nullptr detaches): task spawn / steal /
  /// complete events with the deque depth at each spawn, one ring per
  /// worker (ring index = worker id modulo the tracer's ring count -- give
  /// the Tracer threads() rings for no aliasing).  Timestamps come from
  /// steady_clock, so native traces are not deterministic.  Attach and
  /// detach only while the pool is quiescent (no run_root in flight).
  ///
  /// Also registers the pool's distribution metrics: the victim-scan
  /// latency of successful steals and the iteration count of each forked
  /// loop half.  Registration happens here (single-threaded) so workers
  /// only ever touch the pre-resolved Histogram pointers, whose record()
  /// is a handful of relaxed atomics.  Like fault_plan_ below, the tracer
  /// and histogram pointers are atomic because idle workers keep polling
  /// try_steal() (which peeks at the tracer) even with no root task in
  /// flight -- "quiescent" never means "no reader".
  void set_tracer(obs::Tracer* tracer) {
    obs::Histogram* steal = nullptr;
    obs::Histogram* grain = nullptr;
    if constexpr (obs::kTracingCompiledIn) {
      if (tracer != nullptr) {
        steal = &tracer->counters().histogram("sched.steal.scan_ns");
        grain = &tracer->counters().histogram("sched.fork.grain_iters");
      }
    }
    steal_hist_.store(steal, std::memory_order_release);
    grain_hist_.store(grain, std::memory_order_release);
    tracer_.store(tracer, std::memory_order_release);
  }

  /// Histogram of iterations per forked loop half (null iff no tracer);
  /// recorded by the lazy-splitting loop driver.
  obs::Histogram* fork_grain_hist() const {
    return grain_hist_.load(std::memory_order_acquire);
  }

  /// Attaches a fault::FaultPlan (nullptr detaches) that perturbs
  /// steal-victim selection (kStealVictim), inverts the pop-vs-steal help
  /// order (kPopOrder), stalls workers before tasks (kWorkerStall), and
  /// drops fork wake-ups (kWakeDrop -- legal per the fork() comment: a
  /// wake-up accelerates parallelism but is never needed for progress;
  /// completion notifies are exempt).  Every injection leaves the pool in a
  /// state some legal schedule could reach, so results must be unchanged --
  /// that is the property tests/test_fault_fuzz.cpp checks.  The pointer is
  /// atomic because idle workers keep polling try_steal() even with no root
  /// task in flight; still attach only between run_root calls so every task
  /// of a run sees one plan.
  void set_fault_plan(fault::FaultPlan* plan) {
    fault_plan_.store(fault::enabled(plan), std::memory_order_release);
  }

 private:
  struct Worker {
    WsDeque<Task*> deque;
    std::uint64_t rng;  // victim-selection state, owner-only
  };

  void worker_main(unsigned id);
  void execute(Task* t);
  Task* try_steal(unsigned self);
  // Acquire pairs with the release in set_fault_plan: a worker that sees
  // the pointer must also see the plan's constructor writes (seed, site
  // probabilities), since idle pollers can observe it mid-attach.
  fault::FaultPlan* plan() const {
    return fault_plan_.load(std::memory_order_acquire);
  }
  /// Current tracer; acquire pairs with the release in set_tracer so a
  /// worker that sees the pointer also sees the registered histograms.
  obs::Tracer* tracer() const {
    return tracer_.load(std::memory_order_acquire);
  }
  /// Ring owned by worker `id` under tracer `tr` (pre-loaded by the
  /// caller so one emission site does a single atomic read).
  static std::uint32_t ring_for(unsigned id, const obs::Tracer* tr) {
    return static_cast<std::uint32_t>(id % tr->ring_count());
  }
  bool have_stealable() const;
  void notify(bool everyone);
  template <class Pred>
  void idle_block(Pred quit_early);
  template <class Pred>
  void idle_block_until(std::chrono::steady_clock::time_point deadline,
                        Pred quit_early);

  unsigned nworkers_;
  unsigned ncores_;  // hardware_concurrency, >= 1; see notify()
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex root_mu_;  // serializes external (non-worker) entrants

  // Eventcount for blocking idle workers and joiners.
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<int> sleepers_{0};
  std::atomic<bool> stop_{false};
  std::atomic<obs::Tracer*> tracer_{nullptr};
  std::atomic<obs::Histogram*> steal_hist_{nullptr};
  std::atomic<obs::Histogram*> grain_hist_{nullptr};
  std::atomic<fault::FaultPlan*> fault_plan_{nullptr};
  bool pinned_ = false;
};

/// The original shared-queue fork-join pool (single mutex + condition
/// variable, spin-yield join).  Retained as the benchmark baseline; see the
/// header comment.
class SharedQueuePool {
 public:
  explicit SharedQueuePool(unsigned threads);
  ~SharedQueuePool();

  SharedQueuePool(const SharedQueuePool&) = delete;
  SharedQueuePool& operator=(const SharedQueuePool&) = delete;

  unsigned threads() const { return workers_.size() + 1; }

  /// Runs all `tasks`, potentially in parallel; returns when all complete.
  void run_all(std::vector<std::function<void()>> tasks);

 private:
  struct Group;
  struct Item {
    std::function<void()> fn;
    Group* group;
  };

  void worker_loop();
  bool try_run_one();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  bool stop_ = false;
};

/// Which fork/join substrate NativeExecutor schedules on.
enum class SchedMode {
  kAuto,         ///< OBLIV_SCHED env var; defaults to work stealing
  kWorkSteal,    ///< per-worker deques, lazy splitting (default)
  kSharedQueue,  ///< legacy global-queue baseline
};

class NativeExecutor {
 public:
  /// Largest accepted worker-thread request.  Each worker costs a kernel
  /// thread plus a deque; beyond this the request is a config error, not a
  /// resource to attempt (and fail half-way through) allocating.
  static constexpr unsigned kMaxThreads = 4096;

  /// threads == 0 selects std::thread::hardware_concurrency().  Throws
  /// obliv::Error on absurd thread counts (> kMaxThreads) and propagates
  /// allocation / thread-spawn failures; prefer make() on untrusted input.
  explicit NativeExecutor(unsigned threads = 0,
                          std::uint64_t sequential_grain_words = 1 << 12,
                          SchedMode mode = SchedMode::kAuto);

  /// Non-throwing companion: kUnsupported for threads > kMaxThreads,
  /// kResourceExhausted when pool setup fails (thread spawn or allocation,
  /// including injected failures at fault::InjectSite::kAllocSetup -- the
  /// partially-built pool is torn down cleanly first; see the
  /// WorkStealingPool constructor).
  static Result<NativeExecutor> make(unsigned threads = 0,
                                     std::uint64_t sequential_grain_words =
                                         1 << 12,
                                     SchedMode mode = SchedMode::kAuto) noexcept;

  unsigned threads() const {
    return ws_ ? ws_->threads() : sq_->threads();
  }

  /// True when scheduling on the work-stealing backend.
  bool work_stealing() const { return ws_ != nullptr; }

  /// The underlying work-stealing pool, or nullptr on the shared-queue
  /// baseline.  The serve layer schedules jobs as sibling task trees
  /// directly on the pool (fork/join from inside one long-lived root);
  /// algorithm code never needs this.
  WorkStealingPool* steal_pool() { return ws_.get(); }

  /// Steal cut-off grain (words): tasks whose space bound is below this
  /// run inline on the forking core.  Exposed so layered schedulers can
  /// size admission estimates consistently with the executor.
  std::uint64_t sequential_grain_words() const { return grain_; }

  /// True when the pool's spawned workers are core-pinned (OBLIV_PIN; see
  /// WorkStealingPool::pinned).  Always false on the shared-queue baseline.
  bool pinned() const { return ws_ ? ws_->pinned() : false; }

  template <class T>
  NatBuf<T> make_buf(std::size_t n);

  template <class T>
  void copy(NatRef<T> dst, NatRef<T> src);

  // Same interface as SimExecutor so algorithms are written once. ----------

  void cgc_pfor(std::uint64_t lo, std::uint64_t hi,
                std::uint64_t words_per_iter,
                const std::function<void(std::uint64_t, std::uint64_t)>& body);

  void cgc_pfor_each(std::uint64_t lo, std::uint64_t hi,
                     std::uint64_t words_per_iter,
                     const std::function<void(std::uint64_t)>& body);

  void sb_parallel(std::vector<SbTask> tasks);

  void sb_parallel2(std::uint64_t space1, const std::function<void()>& f1,
                    std::uint64_t space2, const std::function<void()>& f2);

  void sb_seq(std::uint64_t space_words, const std::function<void()>& body) {
    if (detail::cancel_pending()) return;
    body();
  }

  void cgc_sb_pfor(std::uint64_t count, std::uint64_t space_words,
                   const std::function<void(std::uint64_t)>& body);

  void tick(std::uint64_t) {}

  /// Forwards to the work-stealing pool (see WorkStealingPool::set_tracer)
  /// and names one export lane per worker.  The shared-queue baseline emits
  /// no events; the call is a no-op there.
  void set_tracer(obs::Tracer* tracer) {
    if (!ws_) return;
    ws_->set_tracer(tracer);
    if constexpr (obs::kTracingCompiledIn) {
      if (tracer != nullptr) {
        for (unsigned i = 0; i < ws_->threads(); ++i) {
          tracer->name_lane(i, "worker " + std::to_string(i));
        }
      }
    }
  }

  /// Forwards to the work-stealing pool (see WorkStealingPool::
  /// set_fault_plan); a no-op on the shared-queue baseline.
  void set_fault_plan(fault::FaultPlan* plan) {
    if (ws_) ws_->set_fault_plan(plan);
  }

 private:
  std::unique_ptr<WorkStealingPool> ws_;
  std::unique_ptr<SharedQueuePool> sq_;
  std::uint64_t grain_;
};

/// Un-instrumented counterpart of SimRef: load/store compile to plain
/// element access.
template <class T>
class NatRef {
 public:
  using value_type = T;

  /// Opts into sched::is_direct_ref_v: load/store here ARE plain memory
  /// access, so algorithm leaves may replace them with simd:: kernels.
  static constexpr bool kDirectMemory = true;

  NatRef() = default;
  NatRef(T* data, std::size_t n) : data_(data), n_(n) {}

  T load(std::size_t i) const { return data_[i]; }
  void store(std::size_t i, const T& v) const { data_[i] = v; }
  template <class F>
  void update(std::size_t i, F&& f) const {
    f(data_[i]);
  }

  // Batched counterparts of SimRef's run accessors (bulk copies here).
  void load_run(std::size_t i, std::size_t len, T* out) const {
    if constexpr (std::is_trivially_copyable_v<T>) {
      simd::copy_elems(data_ + i, out, len);
    } else {
      std::copy(data_ + i, data_ + i + len, out);
    }
  }
  void store_run(std::size_t i, std::size_t len, const T* src) const {
    if constexpr (std::is_trivially_copyable_v<T>) {
      simd::copy_elems(src, data_ + i, len);
    } else {
      std::copy(src, src + len, data_ + i);
    }
  }
  std::pair<T, T> load2(std::size_t i) const { return {data_[i], data_[i + 1]}; }

  NatRef slice(std::size_t off, std::size_t len) const {
    return NatRef(data_ + off, len);
  }

  std::size_t size() const { return n_; }
  T* raw() const { return data_; }

 private:
  T* data_ = nullptr;
  std::size_t n_ = 0;
};

template <class T>
class NatBuf {
 public:
  NatBuf() = default;
  explicit NatBuf(std::size_t n) : v_(n) {}

  NatRef<T> ref() { return NatRef<T>(v_.data(), v_.size()); }
  std::size_t size() const { return v_.size(); }
  std::vector<T>& raw() { return v_; }
  const std::vector<T>& raw() const { return v_; }

 private:
  std::vector<T> v_;
};

template <class T>
NatBuf<T> NativeExecutor::make_buf(std::size_t n) {
  fault::maybe_fail_alloc(fault::InjectSite::kAllocBuf);
  return NatBuf<T>(n);
}

/// Native counterpart of SimExecutor::copy: a bulk memory copy.
template <class T>
void NativeExecutor::copy(NatRef<T> dst, NatRef<T> src) {
  if constexpr (std::is_trivially_copyable_v<T>) {
    simd::copy_elems(src.raw(), dst.raw(), src.size());
  } else {
    std::copy(src.raw(), src.raw() + src.size(), dst.raw());
  }
}

}  // namespace obliv::sched
