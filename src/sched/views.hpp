// Backend-agnostic matrix view over any vector-ref type (SimRef / NatRef).
//
// Recursive algorithms (I-GEP, MO-FFT) operate on submatrices of a row-major
// array; MatView carries the origin, leading dimension, and extent so that
// quadrant decomposition is O(1) and all element traffic flows through the
// underlying ref's instrumented load/store.
#pragma once

#include <cassert>
#include <cstddef>

namespace obliv::sched {

template <class Ref>
class MatView {
 public:
  using value_type = typename Ref::value_type;

  MatView() = default;

  /// Views `rows` x `cols` elements of row-major `data` with leading
  /// dimension `ld`, starting at element (r0, c0).
  MatView(Ref data, std::size_t ld, std::size_t r0, std::size_t c0,
          std::size_t rows, std::size_t cols)
      : data_(data), ld_(ld), r0_(r0), c0_(c0), rows_(rows), cols_(cols) {
    assert((r0 + rows == 0 || (r0 + rows - 1) * ld + (c0 + cols) <=
                                  data.size() + c0) &&
           "view exceeds storage");
  }

  /// Whole-matrix convenience: n x n over an n*n ref.
  static MatView full(Ref data, std::size_t rows, std::size_t cols) {
    return MatView(data, cols, 0, 0, rows, cols);
  }

  value_type load(std::size_t i, std::size_t j) const {
    assert(i < rows_ && j < cols_);
    return data_.load((r0_ + i) * ld_ + (c0_ + j));
  }

  void store(std::size_t i, std::size_t j, const value_type& v) const {
    assert(i < rows_ && j < cols_);
    data_.store((r0_ + i) * ld_ + (c0_ + j), v);
  }

  /// Submatrix rooted at (i, j) of extent rr x cc.
  MatView sub(std::size_t i, std::size_t j, std::size_t rr,
              std::size_t cc) const {
    assert(i + rr <= rows_ && j + cc <= cols_);
    return MatView(data_, ld_, r0_ + i, c0_ + j, rr, cc);
  }

  /// Quadrant (qi, qj) of an even-sized view; qi, qj in {0, 1}.
  /// quad(0,0)=X11, quad(0,1)=X12, quad(1,0)=X21, quad(1,1)=X22 in the
  /// paper's notation.
  MatView quad(int qi, int qj) const {
    const std::size_t hr = rows_ / 2, hc = cols_ / 2;
    return sub(qi ? hr : 0, qj ? hc : 0, hr, hc);
  }

  /// One row as a 1-D ref-like slice (valid because storage is row-major).
  Ref row(std::size_t i) const {
    assert(i < rows_);
    return data_.slice((r0_ + i) * ld_ + c0_, cols_);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t ld() const { return ld_; }

  /// True iff this view aliases exactly the same region as `o`.
  bool same_region(const MatView& o) const {
    return r0_ == o.r0_ && c0_ == o.c0_ && rows_ == o.rows_ &&
           cols_ == o.cols_ && ld_ == o.ld_;
  }

 private:
  Ref data_;
  std::size_t ld_ = 0;
  std::size_t r0_ = 0, c0_ = 0;
  std::size_t rows_ = 0, cols_ = 0;
};

}  // namespace obliv::sched
