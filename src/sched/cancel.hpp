// Cooperative, tree-scoped cancellation for the native executors.
//
// A CancelToken is owned by whoever roots a task tree (the serve layer
// attaches one per job; direct callers may install one around an executor
// construct with ScopedCancelToken).  Poisoning the token does NOT throw
// or unwind: every CGC/SB anchor point, fork, and loop-driver iteration in
// the native executor checks the current token and turns the remaining
// work into a no-op.  The fork/join *structure* is preserved — already
// forked tasks still run (as empty shells) and every join completes — so
// a poisoned tree drains off the pool without touching sibling trees.
// The promptness bound is one fork/anchor interval: a running leaf
// finishes its current sequential grain before the next check fires.
//
// Why skip-work instead of exceptions: the executor's loop drivers run
// the lower half of a split inline while the upper half sits forked in a
// Chase-Lev deque.  Throwing from the inline half would skip the join of
// the forked half, leaving a stack-resident Task reachable from other
// workers' steal loops after its frame died.  Cooperative no-op bodies
// keep the schedule legal under the same chaos plans PR 5 fuzzes.
//
// Memory model: poison() publishes with a release CAS, poisoned() reads
// with an acquire load, so any writes made by the canceller before
// poisoning are visible to leaves that observe the poison.  The first
// poison wins; later calls (cancel racing the deadline watchdog) are
// no-ops and report false.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace obliv::sched {

class CancelToken {
 public:
  /// Why the tree was poisoned.  Values are stable: the serve layer maps
  /// them onto ErrorCode (kCancelled / kDeadlineExceeded) and the obs
  /// layer records them in kJobCancel event payloads.
  enum class Reason : std::uint8_t {
    kNone = 0,      ///< live
    kCancelled = 1, ///< explicit cancel() by the owner
    kDeadline = 2,  ///< deadline watchdog expired the tree mid-run
  };

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Poison the tree.  First caller wins and returns true; the losing
  /// reason is dropped.  `now_ns` (steady-clock ns) is stamped so the
  /// serve layer can histogram poison-to-completion latency; pass 0 to
  /// let the token read the clock itself.
  bool poison(Reason reason, std::uint64_t now_ns = 0) noexcept {
    if (now_ns == 0) {
      now_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count());
      if (now_ns == 0) now_ns = 1;
    }
    // Stamp the timestamp first (first-wins), then publish the state with
    // a release CAS: an acquire load of state_ that observes the poison
    // also observes the winner's timestamp.
    std::uint64_t expected_ns = 0;
    poison_ns_.compare_exchange_strong(expected_ns, now_ns,
                                       std::memory_order_relaxed);
    std::uint8_t expected = 0;
    return state_.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(reason),
        std::memory_order_acq_rel, std::memory_order_acquire);
  }

  /// True once any poison() landed (acquire).
  bool poisoned() const noexcept {
    return state_.load(std::memory_order_acquire) != 0;
  }

  /// The winning poison reason, kNone while live.
  Reason reason() const noexcept {
    return static_cast<Reason>(state_.load(std::memory_order_acquire));
  }

  /// Steady-clock ns stamped by the winning poison(); 0 while live.
  std::uint64_t poison_ns() const noexcept {
    return poison_ns_.load(std::memory_order_relaxed);
  }

  /// Arm a running deadline (steady-clock ns).  Once the instant passes,
  /// the next cancel_pending() check on any thread executing the tree
  /// self-poisons with kDeadline.  This is what makes deadline
  /// enforcement independent of the dispatcher: a dispatcher helping
  /// execute a long job is swallowed by a nested blocking join and cannot
  /// sweep, but the workers inside the tree keep hitting check sites.
  /// Arm before the tree starts; 0 means no deadline.
  void arm_deadline(std::uint64_t steady_ns) noexcept {
    deadline_ns_.store(steady_ns, std::memory_order_relaxed);
  }

  /// Self-poison if an armed deadline has passed.  One relaxed load when
  /// no deadline is armed; the clock is read only when one is.
  bool check_deadline() noexcept {
    const std::uint64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d == 0) return false;
    const std::uint64_t now = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    if (now < d) return false;
    poison(Reason::kDeadline, now == 0 ? 1 : now);
    return true;
  }

  /// Re-arm a token for reuse (only legal once the poisoned tree has
  /// fully joined; the serve layer never reuses tokens, tests may).
  void reset() noexcept {
    state_.store(0, std::memory_order_relaxed);
    poison_ns_.store(0, std::memory_order_relaxed);
    deadline_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint8_t> state_{0};
  std::atomic<std::uint64_t> poison_ns_{0};
  std::atomic<std::uint64_t> deadline_ns_{0};
};

namespace detail {
// The token governing the task tree the calling thread is currently
// executing, or nullptr outside any cancellable tree.  WorkStealingPool
// installs a task's token around run() and forked tasks inherit the
// forking thread's token, so one set_cancel_token() at the tree root
// covers every stolen descendant.  Defined in native_executor.cpp.
extern thread_local CancelToken* tls_cancel_token;

/// Hot-path check used at fork/anchor/loop-driver sites: one TLS read
/// plus, only when a token is installed, one acquire load — and, only
/// when a deadline is armed, a clock read that self-poisons on expiry.
inline bool cancel_pending() noexcept {
  CancelToken* tok = tls_cancel_token;
  if (tok == nullptr) return false;
  if (tok->poisoned()) return true;
  return tok->check_deadline();
}
}  // namespace detail

/// The token governing the calling thread's current task tree (nullptr
/// outside any cancellable tree).
inline CancelToken* current_cancel_token() noexcept {
  return detail::tls_cancel_token;
}

/// RAII installer for direct (non-serve) callers: installs `tok` as the
/// calling thread's current token so executor constructs entered from
/// this scope — and every task they fork — observe it.
class ScopedCancelToken {
 public:
  explicit ScopedCancelToken(CancelToken* tok) noexcept
      : saved_(detail::tls_cancel_token) {
    detail::tls_cancel_token = tok;
  }
  ~ScopedCancelToken() { detail::tls_cancel_token = saved_; }
  ScopedCancelToken(const ScopedCancelToken&) = delete;
  ScopedCancelToken& operator=(const ScopedCancelToken&) = delete;

 private:
  CancelToken* saved_;
};

}  // namespace obliv::sched
