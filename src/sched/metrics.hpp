// Work/span and cache metrics reported by the simulated executor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace obliv::sched {

/// Parallel-time and cache-complexity measurements for one algorithm run.
///
/// `work` counts unit operations; `span` is the critical path under the
/// schedule the executor produced.  `parallel_steps(p)` applies Brent's
/// principle (T_p = W/p + S), which is exactly how the paper's theorems
/// compose per-level running times.
struct RunMetrics {
  std::uint64_t work = 0;
  std::uint64_t span = 0;
  /// level_max_misses[i] is the max, over the q_{i+1} caches of level i+1,
  /// of blocks read into that cache (the paper's per-level cache complexity).
  std::vector<std::uint64_t> level_max_misses;
  std::vector<std::uint64_t> level_total_misses;
  std::uint64_t pingpong = 0;

  double parallel_steps(std::uint32_t p) const {
    return static_cast<double>(work) / p + static_cast<double>(span);
  }
};

}  // namespace obliv::sched
