// Work/span and cache metrics reported by the simulated executor.
//
// RunMetrics stays the compact end-of-run aggregate the tests and benches
// consume; the obs subsystem (src/obs/trace.hpp) subsumes it -- a Tracer's
// CounterRegistry carries the same values as named counters (via
// metrics_to_counters below) next to the scheduler counters RunMetrics never
// had (hint dispatches, per-level anchor histogram), and the event rings
// record the individual decisions behind the aggregates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace obliv::sched {

/// Parallel-time and cache-complexity measurements for one algorithm run.
///
/// `work` counts unit operations; `span` is the critical path under the
/// schedule the executor produced.  `parallel_steps(p)` applies Brent's
/// principle (T_p = W/p + S), which is exactly how the paper's theorems
/// compose per-level running times.
struct RunMetrics {
  std::uint64_t work = 0;
  std::uint64_t span = 0;
  /// level_max_misses[i] is the max, over the q_{i+1} caches of level i+1,
  /// of blocks read into that cache (the paper's per-level cache complexity).
  std::vector<std::uint64_t> level_max_misses;
  std::vector<std::uint64_t> level_total_misses;
  std::uint64_t pingpong = 0;

  double parallel_steps(std::uint32_t p) const {
    return static_cast<double>(work) / p + static_cast<double>(span);
  }
};

/// Publishes a RunMetrics into a counter registry under the "run." prefix:
/// run.work, run.span, run.pingpong, run.L<i>.max_misses,
/// run.L<i>.total_misses.  The registry keeps whatever other counters the
/// executors added, so the exported set is a strict superset of RunMetrics.
inline void metrics_to_counters(const RunMetrics& m,
                                obs::CounterRegistry& reg) {
  reg.set("run.work", m.work);
  reg.set("run.span", m.span);
  reg.set("run.pingpong", m.pingpong);
  for (std::size_t i = 0; i < m.level_max_misses.size(); ++i) {
    const std::string lvl = "run.L" + std::to_string(i + 1);
    reg.set(lvl + ".max_misses", m.level_max_misses[i]);
    reg.set(lvl + ".total_misses", m.level_total_misses[i]);
  }
}

}  // namespace obliv::sched
