// Chase-Lev work-stealing deque over a growable circular array.
//
// One deque per worker: the owner pushes and pops at the *bottom* (LIFO, so
// the hot fork/join path stays in-cache and needs no CAS in the common
// case), thieves steal from the *top* (FIFO, so they take the oldest --
// largest -- pending range task).  The element type is a plain pointer:
// tasks live on the forking thread's stack (structured fork/join guarantees
// the parent's frame outlives the child), so the deque never owns or
// allocates task storage.
//
// Memory orders follow Le, Pop, Cocchi & Shpeisman, "Correct and Efficient
// Work-Stealing for Weak Memory Models" (PPoPP'13), with the Dekker-style
// seq_cst fences expressed as seq_cst accesses on `top_`/`bottom_` so the
// synchronization is visible to ThreadSanitizer exactly as written.
//
// Grown buffers are retired, not freed, until the deque is destroyed: a
// thief that loaded the old array pointer may still read a slot from it,
// and the subsequent CAS on `top_` decides whether that read was valid.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace obliv::sched {

template <class T>
class WsDeque {
  static_assert(std::is_pointer_v<T>, "WsDeque stores task pointers");

 public:
  explicit WsDeque(std::size_t capacity = 256)
      : buf_(new Buffer(capacity)) {}

  WsDeque(const WsDeque&) = delete;
  WsDeque& operator=(const WsDeque&) = delete;

  ~WsDeque() { delete buf_.load(std::memory_order_relaxed); }

  /// Owner only.  Makes `x` visible to thieves.
  void push_bottom(T x) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* a = buf_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(a->mask)) a = grow(a, b, t);
    a->at(b).store(x, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only.  Returns nullptr when the deque is empty (or a thief won
  /// the race for the last element).
  T pop_bottom() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* a = buf_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    T x = nullptr;
    if (t <= b) {
      x = a->at(b).load(std::memory_order_relaxed);
      if (t == b) {
        // Last element: race the thieves through a CAS on top_.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          x = nullptr;
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return x;
  }

  /// Any thread.  Returns nullptr when empty or when the CAS race is lost;
  /// callers treat both as "try another victim".
  T steal_top() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Buffer* a = buf_.load(std::memory_order_acquire);
    T x = a->at(t).load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return x;
  }

  /// Approximate; exact when called by the owner between its own ops.
  bool empty() const {
    return bottom_.load(std::memory_order_relaxed) <=
           top_.load(std::memory_order_relaxed);
  }

  /// Approximate depth (same caveat as empty()); used by obs tracing to
  /// record the deque pressure at each spawn.
  std::size_t approx_size() const {
    const std::int64_t d = bottom_.load(std::memory_order_relaxed) -
                           top_.load(std::memory_order_relaxed);
    return d > 0 ? static_cast<std::size_t>(d) : 0;
  }

 private:
  struct Buffer {
    explicit Buffer(std::size_t capacity)
        : mask(capacity - 1), slots(new std::atomic<T>[capacity]) {}
    std::atomic<T>& at(std::int64_t i) {
      return slots[static_cast<std::size_t>(i) & mask];
    }
    const std::size_t mask;  // capacity - 1; capacity is a power of two
    std::unique_ptr<std::atomic<T>[]> slots;
  };

  Buffer* grow(Buffer* old, std::int64_t b, std::int64_t t) {
    auto* bigger = new Buffer(2 * (old->mask + 1));
    for (std::int64_t i = t; i < b; ++i) {
      bigger->at(i).store(old->at(i).load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    }
    buf_.store(bigger, std::memory_order_release);
    retired_.emplace_back(old);  // in-flight thieves may still read it
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buf_;
  std::vector<std::unique_ptr<Buffer>> retired_;  // owner-only
};

}  // namespace obliv::sched
