// Scheduler-hint vocabulary of Section III.
//
// An MO algorithm names no machine parameters, but annotates its parallel
// constructs with one of three hints that the run-time scheduler interprets:
//
//   * CGC      -- coarse-grained contiguous: a parallel for loop over a
//                 contiguous index range is split into contiguous,
//                 B_1-boundary-respecting segments, one per core under the
//                 shadow of the current anchor (Section III-A).
//   * SB       -- space-bound: a recursively forked task carries an upper
//                 bound on the space it touches; the scheduler anchors it at
//                 the smallest cache that fits it under the parent's shadow
//                 (Section III-B).
//   * CGC=>SB  -- m equal-space subtasks are spread evenly across the caches
//                 of level t = max(i, j), where i is the smallest level whose
//                 caches fit one subtask and j the smallest level with at
//                 most m caches under the shadow (Section III-C).
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>

namespace obliv::sched {

/// Marker trait: true only for Ref types that are plain views of host
/// memory, i.e. where bypassing load()/store() with a raw-pointer kernel
/// changes nothing observable.  NatRef opts in with a
/// `static constexpr bool kDirectMemory = true` member.  SimRef and NoRef
/// also expose raw() (for test plumbing), but every element access there
/// *is* the model -- cache-miss counters and D-BSP message accounting --
/// so they must never match.  Duck-typing on raw() would be a correctness
/// bug, hence the explicit opt-in.
template <class Ref, class = void>
struct is_direct_ref : std::false_type {};
template <class Ref>
struct is_direct_ref<Ref, std::enable_if_t<Ref::kDirectMemory>>
    : std::true_type {};
template <class Ref>
inline constexpr bool is_direct_ref_v = is_direct_ref<Ref>::value;

enum class Hint : std::uint8_t {
  kCgc,      ///< coarse-grained contiguous
  kSb,       ///< space-bound
  kCgcSb,    ///< CGC on SB
};

/// A space-bound-annotated task: the algorithm promises the body touches at
/// most `space_words` words of distinct data (the S(n) lines in the paper's
/// pseudocode, e.g. S(n) = 3n for MO-FFT).
struct SbTask {
  std::uint64_t space_words = 0;
  std::function<void()> body;
};

}  // namespace obliv::sched
