#include "sched/native_executor.hpp"

#include <algorithm>
#include <cassert>

#include "util/bits.hpp"

namespace obliv::sched {

struct ThreadPool::Group {
  std::atomic<std::size_t> pending{0};
};

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  // The calling thread participates, so spawn threads-1 workers.
  for (unsigned i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    item.fn();
    item.group->pending.fetch_sub(1, std::memory_order_acq_rel);
  }
}

bool ThreadPool::try_run_one() {
  Item item;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    item = std::move(queue_.front());
    queue_.pop_front();
  }
  item.fn();
  item.group->pending.fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1) {
    tasks[0]();
    return;
  }
  Group group;
  group.pending.store(tasks.size() - 1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 1; i < tasks.size(); ++i) {
      queue_.push_back(Item{std::move(tasks[i]), &group});
    }
  }
  cv_.notify_all();
  tasks[0]();  // run the first task inline
  // Help-first waiting: execute pending items (possibly from unrelated
  // groups -- they only shorten the wait) until our group drains.
  while (group.pending.load(std::memory_order_acquire) != 0) {
    if (!try_run_one()) std::this_thread::yield();
  }
}

NativeExecutor::NativeExecutor(unsigned threads,
                               std::uint64_t sequential_grain_words)
    : pool_(threads == 0 ? std::max(1u, std::thread::hardware_concurrency())
                         : threads),
      grain_(std::max<std::uint64_t>(1, sequential_grain_words)) {}

void NativeExecutor::cgc_pfor(
    std::uint64_t lo, std::uint64_t hi, std::uint64_t words_per_iter,
    const std::function<void(std::uint64_t, std::uint64_t)>& body) {
  if (hi <= lo) return;
  const std::uint64_t t = hi - lo;
  const std::uint64_t wpi = std::max<std::uint64_t>(1, words_per_iter);
  // Keep segments at or above the grain so fork overhead stays negligible --
  // the native analogue of the B_1 lower bound on CGC segment length.
  const std::uint64_t min_iters = std::max<std::uint64_t>(1, grain_ / wpi);
  const std::uint64_t chunks = std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(pool_.threads(), util::ceil_div(t, min_iters)));
  if (chunks == 1) {
    body(lo, hi);
    return;
  }
  const std::uint64_t base_len = util::ceil_div(t, chunks);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(chunks);
  for (std::uint64_t start = lo; start < hi; start += base_len) {
    const std::uint64_t end = std::min(hi, start + base_len);
    tasks.push_back([&body, start, end] { body(start, end); });
  }
  pool_.run_all(std::move(tasks));
}

void NativeExecutor::cgc_pfor_each(
    std::uint64_t lo, std::uint64_t hi, std::uint64_t words_per_iter,
    const std::function<void(std::uint64_t)>& body) {
  cgc_pfor(lo, hi, words_per_iter, [&](std::uint64_t a, std::uint64_t b) {
    for (std::uint64_t k = a; k < b; ++k) body(k);
  });
}

void NativeExecutor::sb_parallel(std::vector<SbTask> tasks) {
  if (tasks.empty()) return;
  // Space bound as fork cut-off: small tasks are not worth forking.
  bool all_small = true;
  for (const auto& task : tasks) {
    if (task.space_words > grain_) {
      all_small = false;
      break;
    }
  }
  if (all_small || pool_.threads() == 1) {
    for (auto& task : tasks) task.body();
    return;
  }
  std::vector<std::function<void()>> fns;
  fns.reserve(tasks.size());
  for (auto& task : tasks) fns.push_back(std::move(task.body));
  pool_.run_all(std::move(fns));
}

void NativeExecutor::sb_parallel2(std::uint64_t space1,
                                  const std::function<void()>& f1,
                                  std::uint64_t space2,
                                  const std::function<void()>& f2) {
  std::vector<SbTask> tasks;
  tasks.push_back(SbTask{space1, f1});
  tasks.push_back(SbTask{space2, f2});
  sb_parallel(std::move(tasks));
}

void NativeExecutor::cgc_sb_pfor(
    std::uint64_t count, std::uint64_t space_words,
    const std::function<void(std::uint64_t)>& body) {
  if (count == 0) return;
  if (space_words <= grain_ || pool_.threads() == 1) {
    // Batch subtasks per thread to keep fork overhead sublinear.
    const std::uint64_t chunks =
        std::min<std::uint64_t>(pool_.threads(), count);
    const std::uint64_t per = util::ceil_div(count, chunks);
    std::vector<std::function<void()>> tasks;
    for (std::uint64_t c = 0; c < chunks; ++c) {
      const std::uint64_t s_lo = c * per;
      const std::uint64_t s_hi = std::min(count, (c + 1) * per);
      if (s_lo >= s_hi) break;
      tasks.push_back([&body, s_lo, s_hi] {
        for (std::uint64_t s = s_lo; s < s_hi; ++s) body(s);
      });
    }
    pool_.run_all(std::move(tasks));
    return;
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(count);
  for (std::uint64_t s = 0; s < count; ++s) {
    tasks.push_back([&body, s] { body(s); });
  }
  pool_.run_all(std::move(tasks));
}

}  // namespace obliv::sched
