#include "sched/native_executor.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <system_error>

#include "util/bits.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace obliv::sched {

namespace detail {
// See cancel.hpp: the token of the task tree the thread is currently
// executing.  Installed by WorkStealingPool::execute() around each task
// body and by ScopedCancelToken for direct callers.
thread_local CancelToken* tls_cancel_token = nullptr;
}  // namespace detail

bool pin_current_thread(unsigned core) noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  const unsigned ncpu = std::max(1u, std::thread::hardware_concurrency());
  CPU_SET(core % ncpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

bool pinning_requested() noexcept {
  const char* env = std::getenv("OBLIV_PIN");
  if (env == nullptr || *env == '\0') return false;
  return std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0;
}

namespace {
constexpr bool kAffinitySupported =
#if defined(__linux__)
    true;
#else
    false;
#endif
}  // namespace

// ---------------------------------------------------------------------------
// WorkStealingPool
// ---------------------------------------------------------------------------

namespace {

/// Which pool (if any) the current thread belongs to, and its worker slot.
/// Workers register permanently; an external caller claims slot 0 for the
/// duration of a run_root() and restores the previous binding afterwards,
/// so nested executors (a task that builds its own NativeExecutor) unwind
/// correctly.
struct TlsBinding {
  WorkStealingPool* pool = nullptr;
  unsigned id = 0;
};
thread_local TlsBinding tls_binding;

std::uint64_t splitmix64(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

WorkStealingPool::WorkStealingPool(unsigned threads)
    : nworkers_(threads == 0 ? 1 : threads),
      ncores_(std::max(1u, std::thread::hardware_concurrency())),
      pinned_(pinning_requested() && kAffinitySupported) {
  workers_.reserve(nworkers_);
  for (unsigned i = 0; i < nworkers_; ++i) {
    fault::maybe_fail_alloc(fault::InjectSite::kAllocSetup);
    workers_.push_back(std::make_unique<Worker>());
    workers_[i]->rng = 0x853c49e6748fea9bull + i;
  }
  threads_.reserve(nworkers_ > 0 ? nworkers_ - 1 : 0);
  try {
    for (unsigned i = 1; i < nworkers_; ++i) {
      fault::maybe_fail_alloc(fault::InjectSite::kAllocSetup);
      threads_.emplace_back([this, i] { worker_main(i); });
    }
  } catch (...) {
    // A mid-loop spawn failure (std::system_error, bad_alloc, or an
    // injected kAllocSetup fault) must not leak the already-running
    // workers: joinable std::threads terminate the process on destruction.
    // Tear down exactly like the destructor, then rethrow so make() can
    // surface kResourceExhausted.
    stop_.store(true, std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> lk(idle_mu_);
      epoch_.fetch_add(1, std::memory_order_relaxed);
    }
    idle_cv_.notify_all();
    for (auto& t : threads_) t.join();
    threads_.clear();
    throw;
  }
}

WorkStealingPool::~WorkStealingPool() {
  stop_.store(true, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lk(idle_mu_);
    epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  idle_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkStealingPool::run_root(Task& root) {
  if (tls_binding.pool == this) {
    // Nested entry from a worker (or a recursive root call): already bound.
    root.run();
    return;
  }
  std::lock_guard<std::mutex> lk(root_mu_);
  const TlsBinding saved = tls_binding;
  tls_binding = TlsBinding{this, 0};
  struct Restore {
    const TlsBinding saved;
    ~Restore() { tls_binding = saved; }
  } restore{saved};
  root.run();
  // Structured fork/join: every task forked by root was joined before it
  // returned, so slot 0's deque is empty again.
  assert(workers_[0]->deque.empty());
}

void WorkStealingPool::fork(Task* t) {
  assert(tls_binding.pool == this);
  // Tree-scoped cancellation: a token-less child inherits the forking
  // thread's current token, so one set_cancel_token() at the tree root
  // covers every descendant -- including tasks forked by thieves that
  // stole part of the tree.  Forking is itself a poison check site: the
  // kCancelPoison fault delivers an adversarial poison exactly here, the
  // moment a new task becomes stealable, which is the worst point for a
  // cancel to land (the child must still run, as a no-op, so its join
  // completes).
  if (t->cancel_token() == nullptr) {
    t->set_cancel_token(detail::tls_cancel_token);
  }
  if (CancelToken* tok = t->cancel_token()) {
    if (fault::inject(plan(), fault::InjectSite::kCancelPoison)) {
      tok->poison(CancelToken::Reason::kCancelled);
    }
  }
  workers_[tls_binding.id]->deque.push_bottom(t);
  if constexpr (obs::kTracingCompiledIn) {
    if (obs::Tracer* tr = tracer()) {
      const unsigned id = tls_binding.id;
      tr->emit(ring_for(id, tr), obs::EventKind::kTaskSpawn, 0, id,
               reinterpret_cast<std::uintptr_t>(t),
               workers_[id]->deque.approx_size(), 0);
    }
  }
  // Wake at most a single helper; if it forks in turn it wakes the next
  // one, so the pool ramps up as a wake chain instead of a thundering herd
  // (one futex wake per fork instead of nworkers-1).  Wake-ups are purely a
  // parallelism accelerator, never needed for progress: an unstolen fork is
  // popped back by its owner at join, and a worker about to sleep re-checks
  // for stealable work after registering as a sleeper (the Dekker pairing
  // in notify()/idle_block()).  notify() therefore also skips the wake when
  // as many workers are already awake as the machine has cores --
  // oversubscribed thieves cannot add parallelism, only preemption.
  //
  // That progress argument is exactly why kWakeDrop is a *legal* fault:
  // dropping this accelerator wake-up models a lost futex wake / unlucky
  // preemption, and the schedule that results is one the pool could have
  // produced anyway.
  if (fault::inject(plan(), fault::InjectSite::kWakeDrop)) return;
  notify(/*everyone=*/false);
}

bool WorkStealingPool::local_deque_empty() const {
  assert(tls_binding.pool == this);
  return workers_[tls_binding.id]->deque.empty();
}

int WorkStealingPool::this_worker_id() const {
  return tls_binding.pool == this ? static_cast<int>(tls_binding.id) : -1;
}

void WorkStealingPool::execute(Task* t) {
  if (fault::FaultPlan* p = fault::enabled(plan())) {
    // Simulated preemption: hold the task hostage for a bounded window
    // before running it.  Joiners sleep on the task's state word, not on a
    // timeout, so a stalled task delays but never deadlocks them.  A
    // poisoned tree is exempt: stalling work that exists only to unwind
    // would inflate the cancellation promptness bound for no coverage.
    if (p->should(fault::InjectSite::kWorkerStall) &&
        !(t->cancel_token() != nullptr && t->cancel_token()->poisoned())) {
      const std::uint32_t us = p->stall_us();
      if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
    }
  }
  // Install the task's token as this thread's current one so anchor-point
  // checks and forked children observe it; restore before completion is
  // published (`t` may be dead past the exchange below).
  CancelToken* const saved_tok = detail::tls_cancel_token;
  detail::tls_cancel_token = t->cancel_token();
  t->run();
  detail::tls_cancel_token = saved_tok;
  // Emit before publishing completion: `t` may be dead past the exchange.
  if constexpr (obs::kTracingCompiledIn) {
    if (obs::Tracer* tr = tracer()) {
      const unsigned id = tls_binding.id;
      tr->emit(ring_for(id, tr), obs::EventKind::kTaskComplete, 0, id,
               reinterpret_cast<std::uintptr_t>(t), 0, 0);
    }
  }
  // Single RMW: publish completion and learn whether a joiner sleeps on it
  // (see the Task handshake comment).  `t` may be dead past this line.
  if (t->finish_and_check_awaited()) notify(/*everyone=*/true);
}

Task* WorkStealingPool::try_steal(unsigned self) {
  const unsigned n = nworkers_;
  if (n <= 1) return nullptr;
  // Victim-scan latency of a *successful* steal, recorded into the tracer's
  // steal histogram; the clock read is paid only with a tracer attached.
  std::chrono::steady_clock::time_point scan_t0;
  if constexpr (obs::kTracingCompiledIn) {
    if (tracer() != nullptr) scan_t0 = std::chrono::steady_clock::now();
  }
  unsigned v = static_cast<unsigned>(splitmix64(workers_[self]->rng) % n);
  if (fault::FaultPlan* p = fault::enabled(plan())) {
    // Adversarial victim selection: start the scan at a plan-chosen worker
    // instead of the owner's PRNG.  Any starting point yields a legal
    // schedule -- the scan still visits every victim once.
    if (p->should(fault::InjectSite::kStealVictim)) {
      v = p->pick(fault::InjectSite::kStealVictim, n);
    }
  }
  for (unsigned k = 0; k < n; ++k, ++v) {
    if (v >= n) v = 0;
    if (v == self) continue;
    if (Task* t = workers_[v]->deque.steal_top()) {
      // Steal-victim selection is the second adversarial poison point: a
      // cancel that lands the instant a task migrates to another worker.
      // The stolen task still executes (its body no-ops once poisoned) so
      // the owner's join always completes.
      if (CancelToken* tok = t->cancel_token()) {
        if (fault::FaultPlan* p = fault::enabled(plan())) {
          if (p->should(fault::InjectSite::kCancelPoison)) {
            tok->poison(CancelToken::Reason::kCancelled);
          }
        }
      }
      if constexpr (obs::kTracingCompiledIn) {
        if (obs::Tracer* tr = tracer()) {
          // Histogram re-loaded (not derived from tr): a detach between
          // the two reads must yield null here, never a stale pointer.
          if (obs::Histogram* h =
                  steal_hist_.load(std::memory_order_acquire)) {
            h->record(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - scan_t0)
                    .count()));
          }
          tr->emit(ring_for(self, tr), obs::EventKind::kTaskSteal, 0, self,
                   reinterpret_cast<std::uintptr_t>(t), v, 0);
        }
      }
      return t;
    }
  }
  return nullptr;
}

bool WorkStealingPool::have_stealable() const {
  for (const auto& w : workers_) {
    if (!w->deque.empty()) return true;
  }
  return false;
}

void WorkStealingPool::notify(bool everyone) {
  // Dekker pairing with idle_block(), expressed through seq_cst RMWs on
  // sleepers_ (not fences -- GCC's TSan does not model fences): either this
  // RMW observes the sleeper's increment and we notify, or the sleeper's
  // increment reads-from this RMW's release sequence and its work re-check
  // below sees the push/done-flag made visible before it.
  const int asleep = sleepers_.fetch_add(0, std::memory_order_seq_cst);
  if (asleep == 0) return;
  // Saturation gate (fork wake-ups only; completions must always reach
  // their sleeping joiner): with >= ncores workers already awake, waking
  // another cannot increase parallelism -- it would only preempt a running
  // worker to steal from it.  Skipping is safe per the fork() comment.
  if (!everyone &&
      nworkers_ - static_cast<unsigned>(asleep) >= ncores_) {
    return;
  }
  {
    std::lock_guard<std::mutex> lk(idle_mu_);
    epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  if (everyone) {
    idle_cv_.notify_all();
  } else {
    idle_cv_.notify_one();
  }
}

template <class Pred>
void WorkStealingPool::idle_block(Pred quit_early) {
  sleepers_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::unique_lock<std::mutex> lk(idle_mu_);
    const std::uint64_t seen = epoch_.load(std::memory_order_relaxed);
    // Re-check after registering as a sleeper: any producer that missed us
    // in notify_work() made its work visible before our fence, so we see
    // it here and skip the wait.
    if (!quit_early() && !stop_.load(std::memory_order_relaxed)) {
      idle_cv_.wait(lk, [&] {
        return epoch_.load(std::memory_order_relaxed) != seen ||
               stop_.load(std::memory_order_relaxed);
      });
    }
  }
  sleepers_.fetch_sub(1, std::memory_order_relaxed);
}

template <class Pred>
void WorkStealingPool::idle_block_until(
    std::chrono::steady_clock::time_point deadline, Pred quit_early) {
  sleepers_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::unique_lock<std::mutex> lk(idle_mu_);
    const std::uint64_t seen = epoch_.load(std::memory_order_relaxed);
    if (!quit_early() && !stop_.load(std::memory_order_relaxed)) {
      idle_cv_.wait_until(lk, deadline, [&] {
        return epoch_.load(std::memory_order_relaxed) != seen ||
               stop_.load(std::memory_order_relaxed);
      });
    }
  }
  sleepers_.fetch_sub(1, std::memory_order_relaxed);
}

void WorkStealingPool::join(Task* t) {
  assert(tls_binding.pool == this);
  const unsigned self = tls_binding.id;
  auto& deque = workers_[self]->deque;
  while (!t->finished()) {
    // Help first: drain our own deque (descendants of the current frame),
    // then steal; block only when the whole machine is out of work.  The
    // kPopOrder fault inverts that preference for one round -- stealing
    // (FIFO, coarse tasks) before popping (LIFO, own descendants) is the
    // schedule a busy-stolen pool produces naturally, just made frequent.
    if (fault::inject(plan(), fault::InjectSite::kPopOrder)) {
      if (Task* s = try_steal(self)) {
        execute(s);
        continue;
      }
    }
    if (Task* w = deque.pop_bottom()) {
      execute(w);
      continue;
    }
    if (Task* s = try_steal(self)) {
      execute(s);
      continue;
    }
    t->mark_awaited();
    idle_block([&] { return t->finished() || have_stealable(); });
  }
}

bool WorkStealingPool::join_interruptible(
    Task* t, std::chrono::steady_clock::time_point deadline,
    const std::function<bool()>& quit) {
  assert(tls_binding.pool == this);
  const unsigned self = tls_binding.id;
  auto& deque = workers_[self]->deque;
  const auto interrupted = [&] {
    return (quit && quit()) || std::chrono::steady_clock::now() >= deadline;
  };
  while (!t->finished()) {
    // Same help loop as join(), but the quit predicate and deadline are
    // re-polled between tasks so a dispatcher parked here can resume its
    // watchdog/admission duties without waiting for `t`.
    if (interrupted()) return t->finished();
    if (fault::inject(plan(), fault::InjectSite::kPopOrder)) {
      if (Task* s = try_steal(self)) {
        execute(s);
        continue;
      }
    }
    if (Task* w = deque.pop_bottom()) {
      execute(w);
      continue;
    }
    if (Task* s = try_steal(self)) {
      execute(s);
      continue;
    }
    t->mark_awaited();
    idle_block_until(deadline, [&] {
      return t->finished() || have_stealable() || (quit && quit());
    });
  }
  return true;
}

void WorkStealingPool::kick() {
  {
    std::lock_guard<std::mutex> lk(idle_mu_);
    epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  idle_cv_.notify_all();
}

void WorkStealingPool::worker_main(unsigned id) {
  // Round-robin core pinning for the scaling protocol: worker i on core
  // i % ncores, the same layout bench_wallclock pins the caller (worker 0)
  // to.  Best-effort -- a failed syscall leaves the thread floating.
  if (pinned_) pin_current_thread(id);
  tls_binding = TlsBinding{this, id};
  auto& deque = workers_[id]->deque;
  for (;;) {
    if (fault::inject(plan(), fault::InjectSite::kPopOrder)) {
      if (Task* s = try_steal(id)) {
        execute(s);
        continue;
      }
    }
    if (Task* w = deque.pop_bottom()) {
      execute(w);
      continue;
    }
    if (Task* s = try_steal(id)) {
      execute(s);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    idle_block([&] { return have_stealable(); });
  }
}

namespace {

/// Stack-resident task wrapping a borrowed std::function.  Forking one
/// moves a pointer; nothing is copied or allocated.
struct FnTask : Task {
  explicit FnTask(const std::function<void()>* f)
      : Task(&FnTask::invoke), fn(f) {}
  // Poison check at the leaf boundary: a cancelled tree's forked bodies
  // become no-ops, but the task itself still completes so joins drain.
  static void invoke(Task* t) {
    if (detail::cancel_pending()) return;
    (*static_cast<FnTask*>(t)->fn)();
  }
  const std::function<void()>* fn;
};

/// Binary fork/join over tasks[lo, hi): forks the upper half, recurses into
/// the lower, joins.  Stack depth is O(log n); every frame's forked task
/// outlives its join.
void run_all_rec(WorkStealingPool& pool,
                 const std::vector<std::function<void()>>& tasks,
                 std::size_t lo, std::size_t hi) {
  if (detail::cancel_pending()) return;
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    struct HalfTask : Task {
      HalfTask(WorkStealingPool& p,
               const std::vector<std::function<void()>>& ts, std::size_t l,
               std::size_t h)
          : Task(&HalfTask::invoke), pool(&p), tasks(&ts), lo_(l), hi_(h) {}
      static void invoke(Task* t) {
        auto* h = static_cast<HalfTask*>(t);
        run_all_rec(*h->pool, *h->tasks, h->lo_, h->hi_);
      }
      WorkStealingPool* pool;
      const std::vector<std::function<void()>>* tasks;
      std::size_t lo_, hi_;
    } upper(pool, tasks, mid, hi);
    pool.fork(&upper);
    run_all_rec(pool, tasks, lo, mid);
    pool.join(&upper);
    return;
  }
  if (hi > lo) tasks[lo]();
}

}  // namespace

void WorkStealingPool::run_all(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1 || nworkers_ == 1) {
    for (auto& t : tasks) t();
    return;
  }
  struct RootTask : Task {
    RootTask(WorkStealingPool& p, const std::vector<std::function<void()>>& ts)
        : Task(&RootTask::invoke), pool(&p), tasks(&ts) {}
    static void invoke(Task* t) {
      auto* r = static_cast<RootTask*>(t);
      run_all_rec(*r->pool, *r->tasks, 0, r->tasks->size());
    }
    WorkStealingPool* pool;
    const std::vector<std::function<void()>>* tasks;
  } root(*this, tasks);
  run_root(root);
}

// ---------------------------------------------------------------------------
// SharedQueuePool (legacy baseline; behavior preserved from the original
// ThreadPool so bench_wallclock measures the pre-rewrite scheduler)
// ---------------------------------------------------------------------------

struct SharedQueuePool::Group {
  std::atomic<std::size_t> pending{0};
};

SharedQueuePool::SharedQueuePool(unsigned threads) {
  if (threads == 0) threads = 1;
  // The calling thread participates, so spawn threads-1 workers.
  for (unsigned i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SharedQueuePool::~SharedQueuePool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void SharedQueuePool::worker_loop() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    item.fn();
    item.group->pending.fetch_sub(1, std::memory_order_acq_rel);
  }
}

bool SharedQueuePool::try_run_one() {
  Item item;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    item = std::move(queue_.front());
    queue_.pop_front();
  }
  item.fn();
  item.group->pending.fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

void SharedQueuePool::run_all(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1) {
    tasks[0]();
    return;
  }
  Group group;
  group.pending.store(tasks.size() - 1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 1; i < tasks.size(); ++i) {
      queue_.push_back(Item{std::move(tasks[i]), &group});
    }
  }
  cv_.notify_all();
  tasks[0]();  // run the first task inline
  // Help-first waiting: execute pending items (possibly from unrelated
  // groups -- they only shorten the wait) until our group drains.
  while (group.pending.load(std::memory_order_acquire) != 0) {
    if (!try_run_one()) std::this_thread::yield();
  }
}

// ---------------------------------------------------------------------------
// NativeExecutor
// ---------------------------------------------------------------------------

namespace {

using RangeBody = std::function<void(std::uint64_t, std::uint64_t)>;

/// Lazy binary splitting (the parlay idiom): peel grain-sized chunks off a
/// range sequentially, and only when the local deque has been emptied by
/// thieves split the remainder in half and expose the upper half.  Forked
/// halves live on this frame's stack; recursion depth is O(log(range/floor)).
///
/// `floor` is the smallest half worth exposing.  Without it the empty-deque
/// signal degenerates: a *stolen* range always starts with an empty thief
/// deque, so every steal would immediately re-split, fragmenting the loop
/// all the way down to `grain` no matter how many workers exist.  The call
/// sites set floor ~ range/(8*threads), which caps a loop at ~16*threads
/// leaf tasks -- 8x finer than eager per-thread chunking (ample slack for
/// rebalancing) but bounded fork/notify overhead.
void range_run(WorkStealingPool& pool, const RangeBody& body, std::uint64_t lo,
               std::uint64_t hi, std::uint64_t grain, std::uint64_t floor);

struct RangeTask : Task {
  RangeTask(WorkStealingPool& p, const RangeBody& b, std::uint64_t l,
            std::uint64_t h, std::uint64_t g, std::uint64_t f)
      : Task(&RangeTask::invoke),
        pool(&p),
        body(&b),
        lo(l),
        hi(h),
        grain(g),
        floor(f) {}
  static void invoke(Task* t) {
    auto* r = static_cast<RangeTask*>(t);
    range_run(*r->pool, *r->body, r->lo, r->hi, r->grain, r->floor);
  }
  WorkStealingPool* pool;
  const RangeBody* body;
  std::uint64_t lo, hi, grain, floor;
};

void range_run(WorkStealingPool& pool, const RangeBody& body, std::uint64_t lo,
               std::uint64_t hi, std::uint64_t grain, std::uint64_t floor) {
  for (;;) {
    // Poison check once per grain: the promptness bound for cancellation
    // is therefore one sequential grain of leaf work (plus whatever chunk
    // is already in flight on other workers -- each of which does this
    // same check).  This covers freshly stolen RangeTasks too: their
    // invoke() lands here before touching the body.
    if (detail::cancel_pending()) return;
    if (hi - lo <= grain) {
      body(lo, hi);
      return;
    }
    if (hi - lo >= 2 * floor && pool.local_deque_empty()) {
      // A thief (or an idle worker) drained us: expose the upper half.  The
      // split point rounds down to a vector-stride multiple (relative to
      // lo) so stolen halves start lane-aligned for the simd:: kernels;
      // floor >= kMaxLaneWords guarantees the rounded half is non-empty.
      const std::uint64_t mid =
          lo + ((hi - lo) / 2 & ~std::uint64_t{simd::kMaxLaneWords - 1});
      RangeTask upper(pool, body, mid, hi, grain, floor);
      if constexpr (obs::kTracingCompiledIn) {
        if (obs::Histogram* h = pool.fork_grain_hist()) h->record(hi - mid);
      }
      pool.fork(&upper);
      range_run(pool, body, lo, mid, grain, floor);
      pool.join(&upper);
      return;
    }
    // Parallel slack already queued (or the remainder is below the split
    // floor): run one grain and re-check demand.
    body(lo, lo + grain);
    lo += grain;
  }
}

/// Smallest stealable half for a loop of `total` iterations: fine enough for
/// 8x over-decomposition per *core*, never finer than the CGC grain.  The
/// divisor is clamped by hardware_concurrency: requesting more threads than
/// cores cannot raise real parallelism, only the number of leaves each
/// oversubscribed thief fragments off (every steal = futex wake + context
/// switch on a saturated machine), so extra decomposition slack for them is
/// pure overhead.
std::uint64_t split_floor(std::uint64_t total, std::uint64_t grain,
                          unsigned threads) {
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const unsigned effective = std::min(threads, cores);
  // Never expose a half narrower than one vector stride: a leaf below
  // simd::kMaxLaneWords iterations is pure tail for the SIMD kernels.
  return std::max<std::uint64_t>(std::max<std::uint64_t>(grain, simd::kMaxLaneWords),
                                 total / (8ull * effective));
}

}  // namespace

NativeExecutor::NativeExecutor(unsigned threads,
                               std::uint64_t sequential_grain_words,
                               SchedMode mode)
    : grain_(std::max<std::uint64_t>(1, sequential_grain_words)) {
  if (threads > kMaxThreads) {
    throw Error(ErrorCode::kUnsupported,
                "NativeExecutor: " + std::to_string(threads) +
                    " worker threads requested; the implementation caps at " +
                    std::to_string(kMaxThreads));
  }
  const unsigned t = threads == 0
                         ? std::max(1u, std::thread::hardware_concurrency())
                         : threads;
  if (mode == SchedMode::kAuto) {
    const char* env = std::getenv("OBLIV_SCHED");
    mode = (env != nullptr && std::strcmp(env, "sharedq") == 0)
               ? SchedMode::kSharedQueue
               : SchedMode::kWorkSteal;
  }
  if (mode == SchedMode::kSharedQueue) {
    sq_ = std::make_unique<SharedQueuePool>(t);
  } else {
    ws_ = std::make_unique<WorkStealingPool>(t);
  }
}

Result<NativeExecutor> NativeExecutor::make(unsigned threads,
                                            std::uint64_t sequential_grain_words,
                                            SchedMode mode) noexcept {
  try {
    return NativeExecutor(threads, sequential_grain_words, mode);
  } catch (const Error& e) {
    return Status::error(e.code(), e.what());
  } catch (const std::bad_alloc&) {
    return Status::error(ErrorCode::kResourceExhausted,
                         "allocation failed during executor setup");
  } catch (const std::system_error& e) {
    return Status::error(ErrorCode::kResourceExhausted,
                         std::string("thread spawn failed: ") + e.what());
  } catch (const std::exception& e) {
    return Status::error(ErrorCode::kInternal, e.what());
  }
}

void NativeExecutor::cgc_pfor(
    std::uint64_t lo, std::uint64_t hi, std::uint64_t words_per_iter,
    const std::function<void(std::uint64_t, std::uint64_t)>& body) {
  if (hi <= lo) return;
  // CGC anchor point: a poisoned tree issues no further loop work.
  if (detail::cancel_pending()) return;
  const std::uint64_t t = hi - lo;
  const std::uint64_t wpi = std::max<std::uint64_t>(1, words_per_iter);
  // Keep segments at or above the grain so fork overhead stays negligible --
  // the native analogue of the B_1 lower bound on CGC segment length.  The
  // lane clamp keeps every leaf at least one vector stride wide so the
  // simd:: kernels never degenerate to all-tail chunks.
  const std::uint64_t min_iters = std::max<std::uint64_t>(
      simd::kMaxLaneWords, grain_ / wpi);
  if (threads() == 1 || t <= min_iters) {
    body(lo, hi);  // single chunk: no queue round-trip, no task storage
    return;
  }
  if (sq_) {
    const std::uint64_t chunks = std::max<std::uint64_t>(
        1,
        std::min<std::uint64_t>(sq_->threads(), util::ceil_div(t, min_iters)));
    if (chunks == 1) {
      body(lo, hi);
      return;
    }
    const std::uint64_t base_len = util::ceil_div(t, chunks);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(chunks);
    for (std::uint64_t start = lo; start < hi; start += base_len) {
      const std::uint64_t end = std::min(hi, start + base_len);
      tasks.push_back([&body, start, end] { body(start, end); });
    }
    sq_->run_all(std::move(tasks));
    return;
  }
  RangeTask root(*ws_, body, lo, hi, min_iters,
                 split_floor(t, min_iters, ws_->threads()));
  ws_->run_root(root);
}

void NativeExecutor::cgc_pfor_each(
    std::uint64_t lo, std::uint64_t hi, std::uint64_t words_per_iter,
    const std::function<void(std::uint64_t)>& body) {
  cgc_pfor(lo, hi, words_per_iter, [&body](std::uint64_t a, std::uint64_t b) {
    for (std::uint64_t k = a; k < b; ++k) body(k);
  });
}

void NativeExecutor::sb_parallel(std::vector<SbTask> tasks) {
  if (tasks.empty()) return;
  if (detail::cancel_pending()) return;
  // Space bound as steal cut-off: small tasks are not worth forking.
  bool all_small = true;
  for (const auto& task : tasks) {
    if (task.space_words > grain_) {
      all_small = false;
      break;
    }
  }
  if (all_small || threads() == 1) {
    for (auto& task : tasks) task.body();
    return;
  }
  if (sq_) {
    std::vector<std::function<void()>> fns;
    fns.reserve(tasks.size());
    for (auto& task : tasks) fns.push_back(std::move(task.body));
    sq_->run_all(std::move(fns));
    return;
  }
  // Fork every above-grain task (LIFO join order); below-grain tasks run on
  // the forking core -- they are anchored at the private cache and never
  // made stealable.  Linear recursion keeps each forked Task alive on the
  // stack until its join; sb_parallel fan-outs are small (quadrant forks).
  struct SbRun : Task {
    SbRun(WorkStealingPool& p, std::vector<SbTask>& ts, std::uint64_t g)
        : Task(&SbRun::invoke), pool(&p), tasks(&ts), grain(g) {}
    static void invoke(Task* t) {
      auto* r = static_cast<SbRun*>(t);
      r->run_from(0);
    }
    void run_from(std::size_t i) {
      if (i == tasks->size()) return;
      // SB anchor point: poisoned trees stop issuing bodies but keep the
      // fork/join ladder intact (already-forked FnTasks no-op themselves).
      if (detail::cancel_pending()) return;
      SbTask& cur = (*tasks)[i];
      if (cur.space_words > grain) {
        FnTask forked(&cur.body);
        pool->fork(&forked);
        run_from(i + 1);
        pool->join(&forked);
      } else {
        cur.body();
        run_from(i + 1);
      }
    }
    WorkStealingPool* pool;
    std::vector<SbTask>* tasks;
    std::uint64_t grain;
  } root(*ws_, tasks, grain_);
  ws_->run_root(root);
}

void NativeExecutor::sb_parallel2(std::uint64_t space1,
                                  const std::function<void()>& f1,
                                  std::uint64_t space2,
                                  const std::function<void()>& f2) {
  if (detail::cancel_pending()) return;
  if (threads() == 1 || (space1 <= grain_ && space2 <= grain_)) {
    f1();
    f2();
    return;
  }
  if (sq_) {
    std::vector<SbTask> tasks;
    tasks.push_back(SbTask{space1, f1});
    tasks.push_back(SbTask{space2, f2});
    sb_parallel(std::move(tasks));
    return;
  }
  // The recursive fork/join hot path: one stack Task, zero allocations.
  struct Pair2 : Task {
    Pair2(WorkStealingPool& p, const std::function<void()>& a,
          const std::function<void()>& b, bool fork_second)
        : Task(&Pair2::invoke), pool(&p), fa(&a), fb(&b), fork_b(fork_second) {}
    static void invoke(Task* t) {
      auto* r = static_cast<Pair2*>(t);
      if (detail::cancel_pending()) return;
      const std::function<void()>& forked = r->fork_b ? *r->fb : *r->fa;
      const std::function<void()>& inline_fn = r->fork_b ? *r->fa : *r->fb;
      FnTask child(&forked);
      r->pool->fork(&child);
      // Re-check after the fork: kCancelPoison may have landed exactly
      // there, and skipping the inline half keeps both halves symmetric
      // under poison (the forked FnTask no-ops on its own).
      if (!detail::cancel_pending()) inline_fn();
      r->pool->join(&child);
    }
    WorkStealingPool* pool;
    const std::function<void()>* fa;
    const std::function<void()>* fb;
    bool fork_b;
  // Fork whichever side is above the grain (prefer the second so the first
  // runs in program order on this core); a below-grain sibling stays local.
  } root(*ws_, f1, f2, /*fork_second=*/space2 > grain_);
  ws_->run_root(root);
}

void NativeExecutor::cgc_sb_pfor(
    std::uint64_t count, std::uint64_t space_words,
    const std::function<void(std::uint64_t)>& body) {
  if (count == 0) return;
  if (detail::cancel_pending()) return;
  // CGC=>SB: `count` equal subtasks of `space_words` each.  Natively the
  // space bound sets the steal granularity -- at least ceil(grain/space)
  // subtasks per stealable unit, so a batch always covers one private
  // cache's worth of data (the anchoring analogue).
  const std::uint64_t per_unit =
      std::max<std::uint64_t>(1, grain_ / std::max<std::uint64_t>(1, space_words));
  if (threads() == 1 || count <= per_unit) {
    for (std::uint64_t s = 0; s < count; ++s) body(s);
    return;
  }
  if (sq_) {
    if (space_words <= grain_) {
      // Batch subtasks per thread to keep fork overhead sublinear.
      const std::uint64_t chunks =
          std::min<std::uint64_t>(sq_->threads(), count);
      const std::uint64_t per = util::ceil_div(count, chunks);
      std::vector<std::function<void()>> tasks;
      for (std::uint64_t c = 0; c < chunks; ++c) {
        const std::uint64_t s_lo = c * per;
        const std::uint64_t s_hi = std::min(count, (c + 1) * per);
        if (s_lo >= s_hi) break;
        tasks.push_back([&body, s_lo, s_hi] {
          for (std::uint64_t s = s_lo; s < s_hi; ++s) body(s);
        });
      }
      sq_->run_all(std::move(tasks));
      return;
    }
    std::vector<std::function<void()>> tasks;
    tasks.reserve(count);
    for (std::uint64_t s = 0; s < count; ++s) {
      tasks.push_back([&body, s] { body(s); });
    }
    sq_->run_all(std::move(tasks));
    return;
  }
  const RangeBody range_body = [&body](std::uint64_t a, std::uint64_t b) {
    for (std::uint64_t s = a; s < b; ++s) body(s);
  };
  RangeTask root(*ws_, range_body, 0, count, per_unit,
                 split_floor(count, per_unit, ws_->threads()));
  ws_->run_root(root);
}

}  // namespace obliv::sched
