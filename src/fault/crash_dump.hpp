// Crash-safe post-mortem flush of the obs flight recorder.
//
// The obs::Tracer's per-worker rings are a flight recorder: they always hold
// the last ~64K scheduling/cache events.  This module makes that recorder
// survive the crash it was recording: install_crash_handler() registers
// signal handlers (SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT) and a
// std::terminate handler that serialize the registered tracer's rings and
// counters to `obliv_crash_trace.json` before the process dies, so a wedged
// fuzz seed or a scheduler bug leaves evidence instead of an empty core.
//
// The flush path is async-signal-safe by construction: no allocation, no
// stdio, no std::string -- events are formatted into a stack buffer with
// hand-rolled integer conversion and written with write(2).  The output is
// a strict subset of the Chrome trace_event JSON schema the regular
// exporter emits (instant events with the same arg names), so the same
// tooling loads both, and -- because formatting is integer-only and ring
// order is fixed -- a flush of a logical-clock tracer is byte-deterministic
// (goldened in tests/test_fault_fuzz.cpp).
//
// Caveats, by design: the handler reads rings other threads may still be
// writing (a flight recorder is torn by nature -- individual events may be
// mid-overwrite, which the loader tolerates), and only ONE tracer can be
// registered per process.  flush_crash_trace() is also callable directly,
// which is how the golden test pins the format.
#pragma once

#include "obs/trace.hpp"

namespace obliv::fault {

/// Registers `tracer` for post-mortem flushing to `path` and installs the
/// fatal-signal + terminate handlers (first call only; later calls just
/// swap the tracer/path).  `tracer` must outlive the registration; nullptr
/// is allowed and makes the handlers flush nothing.
void install_crash_handler(const obs::Tracer* tracer,
                           const char* path = "obliv_crash_trace.json");

/// Deregisters the tracer and restores the previously-installed signal
/// dispositions.  Safe to call when nothing is installed.
void uninstall_crash_handler() noexcept;

/// Serializes the registered tracer to the registered path right now
/// (async-signal-safe; no allocation).  Returns false when no tracer is
/// registered or the file cannot be written.  Idempotent per registration:
/// concurrent/re-entrant calls flush once.
bool flush_crash_trace() noexcept;

/// Re-arms the once-only flush latch (between runs of a long-lived process
/// or between test cases).
void rearm_crash_flush() noexcept;

}  // namespace obliv::fault
