// Deterministic, seed-driven fault injection.
//
// The paper's correctness claims (Theorems 1-10) hold for *any* legal
// schedule the hint-driven scheduler may produce.  This layer turns that
// from an assumption into a tested property: a FaultPlan is a seeded source
// of adversarial scheduling decisions and resource failures that the
// executors consult at fixed injection points --
//
//   * kStealVictim  -- WorkStealingPool::try_steal starts its victim scan at
//                      a plan-chosen worker instead of the owner's PRNG;
//   * kPopOrder     -- join()/worker_main() prefer stealing over popping the
//                      local deque for one round (inverts LIFO help order);
//   * kWorkerStall  -- a worker sleeps a plan-chosen window before running a
//                      task (simulated preemption / delayed wake-up);
//   * kWakeDrop     -- fork() skips its notify_one (legal: wake-ups are a
//                      parallelism accelerator, never needed for progress --
//                      see the Dekker pairing notes in native_executor.cpp);
//   * kAllocSim / kAllocBuf / kAllocSetup -- chosen allocations (cache-sim
//                      tables, executor buffers, scheduler setup) throw
//                      std::bad_alloc, which the typed `make()` entry points
//                      surface as ErrorCode::kResourceExhausted;
//   * kCancelPoison  -- the current tree's sched::CancelToken is poisoned at
//                      a fork or steal point, the two moments a cancel can
//                      land most adversarially (the tree must still join
//                      cleanly and report kCancelled);
//   * kWatchdogStall -- the serve dispatcher sleeps a plan-chosen window
//                      before its deadline sweep (a lagging watchdog must
//                      delay, never corrupt, deadline enforcement).
//
// Determinism: decision i of a plan is a pure function of (seed, i); the
// decision stream is drawn from an atomic counter, so a single-threaded
// consumer (the simulator) replays byte-identically, and concurrent
// consumers (pool workers) see a fixed decision *sequence* whose assignment
// to workers races exactly like any chaos schedule.  Reproduce a failing
// fuzz case with OBLIV_FAULT_SEED=<n> (tests/test_fault_fuzz.cpp).
//
// Cost: compile out with -DOBLIV_FAULTS=OFF (OBLIV_FAULT_INJECTION=0) --
// every hook sits under `if constexpr (fault::kFaultsCompiledIn)` via
// enabled()/inject(), so the OFF build carries zero overhead (not even a
// null check); bench_wallclock --fault-off-check measures the residual
// cost of the ON-but-inactive configuration.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <optional>
#include <string_view>

#ifndef OBLIV_FAULT_INJECTION
#define OBLIV_FAULT_INJECTION 1
#endif

namespace obliv::fault {

inline constexpr bool kFaultsCompiledIn = OBLIV_FAULT_INJECTION != 0;

enum class InjectSite : std::uint8_t {
  kStealVictim = 0,  ///< perturb steal-victim selection
  kPopOrder,         ///< invert pop-vs-steal preference for one round
  kWorkerStall,      ///< stall a worker before it runs a task
  kWakeDrop,         ///< drop a fork's (non-essential) wake-up
  kAllocSim,         ///< fail a cache-sim table allocation
  kAllocBuf,         ///< fail an executor buffer allocation
  kAllocSetup,       ///< fail a scheduler setup allocation / thread spawn
  kCancelPoison,     ///< poison the current tree's CancelToken at a fork
                     ///< or steal point (adversarial cancel delivery)
  kWatchdogStall,    ///< delay the serve dispatcher's deadline sweep
  kCount
};

inline constexpr std::size_t kInjectSites =
    static_cast<std::size_t>(InjectSite::kCount);

inline std::string_view inject_site_name(InjectSite site) {
  switch (site) {
    case InjectSite::kStealVictim: return "steal_victim";
    case InjectSite::kPopOrder: return "pop_order";
    case InjectSite::kWorkerStall: return "worker_stall";
    case InjectSite::kWakeDrop: return "wake_drop";
    case InjectSite::kAllocSim: return "alloc_sim";
    case InjectSite::kAllocBuf: return "alloc_buf";
    case InjectSite::kAllocSetup: return "alloc_setup";
    case InjectSite::kCancelPoison: return "cancel_poison";
    case InjectSite::kWatchdogStall: return "watchdog_stall";
    case InjectSite::kCount: break;
  }
  return "unknown";
}

/// Per-site injection probabilities in 1/65536 units (integer so a plan's
/// decisions stay integer-only and platform-independent), plus the stall
/// window bound.
struct FaultOptions {
  std::uint16_t p[kInjectSites] = {};  ///< indexed by InjectSite
  std::uint32_t max_stall_us = 0;      ///< upper bound for kWorkerStall sleeps

  /// Schedule chaos for the fuzz harness: frequent victim perturbation and
  /// pop-order inversion, occasional stalls and dropped wake-ups, *no*
  /// allocation failures (those would abort a run that must complete).
  static FaultOptions chaos() {
    FaultOptions o;
    o.p[static_cast<std::size_t>(InjectSite::kStealVictim)] = 32768;  // 50%
    o.p[static_cast<std::size_t>(InjectSite::kPopOrder)] = 16384;     // 25%
    o.p[static_cast<std::size_t>(InjectSite::kWorkerStall)] = 1311;   // ~2%
    o.p[static_cast<std::size_t>(InjectSite::kWakeDrop)] = 16384;     // 25%
    o.max_stall_us = 200;
    return o;
  }

  /// chaos() plus the cancellation-specific sites: occasional adversarial
  /// poison delivery at fork/steal points and frequent watchdog-sweep
  /// delays.  Used by the cancel storms and the chaos soak; kept out of
  /// chaos() because an injected poison changes the *result* (kCancelled),
  /// which the bit-identical-output fuzz harness must never see.
  static FaultOptions cancel_chaos() {
    FaultOptions o = chaos();
    o.p[static_cast<std::size_t>(InjectSite::kCancelPoison)] = 328;      // ~0.5%
    o.p[static_cast<std::size_t>(InjectSite::kWatchdogStall)] = 16384;   // 25%
    return o;
  }

  /// Heavy allocation-failure pressure for error-path tests; no schedule
  /// chaos so failures are attributable.
  static FaultOptions alloc_storm(std::uint16_t per64k = 65535) {
    FaultOptions o;
    o.p[static_cast<std::size_t>(InjectSite::kAllocSim)] = per64k;
    o.p[static_cast<std::size_t>(InjectSite::kAllocBuf)] = per64k;
    o.p[static_cast<std::size_t>(InjectSite::kAllocSetup)] = per64k;
    return o;
  }

  /// All probabilities zero: hooks run but never inject, and a zeroed site
  /// costs only the probability load + branch (no PRNG draw) -- the same
  /// order of cost as the detached production state.  Used by
  /// bench_wallclock --fault-off-check to bound the hook overhead.
  static FaultOptions inert() { return FaultOptions{}; }
};

/// A seeded fault plan: the injection-point registry plus the PRNG that
/// decides, per consulted site, whether (and how) to inject.  Thread-safe;
/// the decision stream is a pure function of the seed and the consumption
/// index.
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed, FaultOptions opt = FaultOptions::chaos())
      : seed_(seed), opt_(opt) {
    for (auto& c : injected_) c.store(0, std::memory_order_relaxed);
  }

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  std::uint64_t seed() const noexcept { return seed_; }
  const FaultOptions& options() const noexcept { return opt_; }

  /// Draws the next decision for `site`; true = inject here.
  bool should(InjectSite site) noexcept {
    const std::uint16_t p = opt_.p[static_cast<std::size_t>(site)];
    if (p == 0) {
      // Early-out without touching the shared decision counter: spinning
      // thieves consult kStealVictim on every failed attempt, and an
      // atomic RMW there makes even an inert plan measurably slow (the
      // --fault-off-check guardrail caught +50% on steal-heavy loads).
      return false;
    }
    const bool hit = (draw(site) & 0xffff) < p;
    if (hit) {
      injected_[static_cast<std::size_t>(site)].fetch_add(
          1, std::memory_order_relaxed);
    }
    return hit;
  }

  /// Uniform draw in [0, bound) for sites that need a choice, not a coin
  /// (victim index, stall length).  bound must be > 0.
  std::uint32_t pick(InjectSite site, std::uint32_t bound) noexcept {
    return static_cast<std::uint32_t>(draw(site) % bound);
  }

  /// Stall window for kWorkerStall, in microseconds (0 when stalls are
  /// configured off).
  std::uint32_t stall_us() noexcept {
    if (opt_.max_stall_us == 0) return 0;
    return pick(InjectSite::kWorkerStall, opt_.max_stall_us) + 1;
  }

  /// Decisions drawn / injections performed so far (diagnostics; relaxed).
  std::uint64_t decisions() const noexcept {
    return ctr_.load(std::memory_order_relaxed);
  }
  std::uint64_t injected(InjectSite site) const noexcept {
    return injected_[static_cast<std::size_t>(site)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t injected_total() const noexcept {
    std::uint64_t n = 0;
    for (const auto& c : injected_) n += c.load(std::memory_order_relaxed);
    return n;
  }

 private:
  std::uint64_t draw(InjectSite site) noexcept {
    // splitmix64 over (seed, index, site): decision i is reproducible from
    // the seed alone.
    std::uint64_t z = seed_ ^
                      (ctr_.fetch_add(1, std::memory_order_relaxed) *
                       0x9e3779b97f4a7c15ull) ^
                      (static_cast<std::uint64_t>(site) << 56);
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  std::uint64_t seed_;
  FaultOptions opt_;
  std::atomic<std::uint64_t> ctr_{0};
  std::array<std::atomic<std::uint64_t>, kInjectSites> injected_{};
};

/// Folds the compile-time gate into pointer form: returns `plan` when fault
/// injection is compiled in, a constant nullptr (dead-coding every hook)
/// when it is not.
inline FaultPlan* enabled(FaultPlan* plan) noexcept {
  if constexpr (kFaultsCompiledIn) {
    return plan;
  } else {
    (void)plan;
    return nullptr;
  }
}

/// One-line biased coin: false unless faults are compiled in, `plan` is
/// attached, and the plan decides to inject at `site`.
inline bool inject(FaultPlan* plan, InjectSite site) noexcept {
  if (FaultPlan* p = enabled(plan)) return p->should(site);
  return false;
}

// ---------------------------------------------------------------------------
// Process-global plan (allocation sites)
// ---------------------------------------------------------------------------
//
// Scheduler chaos is wired explicitly (set_fault_plan on the pool, like
// set_tracer), but allocation sites live deep inside constructors and
// templates where threading a plan pointer through every signature would
// distort the API.  Those consult the process-global plan installed by
// ScopedFaultPlan instead.

inline std::atomic<FaultPlan*>& global_plan_slot() noexcept {
  static std::atomic<FaultPlan*> slot{nullptr};
  return slot;
}

inline FaultPlan* active_plan() noexcept {
  if constexpr (kFaultsCompiledIn) {
    return global_plan_slot().load(std::memory_order_acquire);
  } else {
    return nullptr;
  }
}

/// RAII installer for the process-global plan (restores the previous one, so
/// scopes nest).
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan* plan) noexcept
      : prev_(global_plan_slot().exchange(plan, std::memory_order_acq_rel)) {}
  ~ScopedFaultPlan() {
    global_plan_slot().store(prev_, std::memory_order_release);
  }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

 private:
  FaultPlan* prev_;
};

/// Allocation injection point: throws std::bad_alloc when the active global
/// plan says so.  Callers are the typed `make()` entry points (or code paths
/// reached only from them), which translate the throw into
/// ErrorCode::kResourceExhausted.
inline void maybe_fail_alloc(InjectSite site) {
  if (FaultPlan* p = enabled(active_plan())) {
    if (p->should(site)) throw std::bad_alloc();
  }
}

/// OBLIV_FAULT_SEED=<n> from the environment (the reproduction knob printed
/// by the fuzz harness on failure); nullopt when unset or unparsable.
inline std::optional<std::uint64_t> seed_from_env() {
  const char* env = std::getenv("OBLIV_FAULT_SEED");
  if (env == nullptr || *env == '\0') return std::nullopt;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 0);
  if (end == env || (end != nullptr && *end != '\0')) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

}  // namespace obliv::fault
