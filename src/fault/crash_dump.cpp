#include "fault/crash_dump.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <exception>

namespace obliv::fault {

namespace {

// Registration state.  The tracer pointer and path are written only from
// install/uninstall (normal context) and read from the handler; the latch
// makes the flush once-only even when several threads crash at once.
std::atomic<const obs::Tracer*> g_tracer{nullptr};
char g_path[512] = "obliv_crash_trace.json";
std::atomic<bool> g_flushed{false};
bool g_installed = false;

constexpr int kSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT};
struct sigaction g_old_actions[sizeof(kSignals) / sizeof(kSignals[0])];
std::terminate_handler g_old_terminate = nullptr;

/// Buffered async-signal-safe writer: hand-rolled formatting into a stack
/// buffer, flushed with write(2).  No allocation, no stdio, no locale.
class SafeWriter {
 public:
  explicit SafeWriter(int fd) : fd_(fd) {}
  ~SafeWriter() { flush(); }

  void put(const char* s, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      if (len_ == sizeof(buf_)) flush();
      buf_[len_++] = s[i];
    }
  }
  void str(const char* s) { put(s, std::strlen(s)); }
  void sv(std::string_view s) { put(s.data(), s.size()); }

  void u64(std::uint64_t v) {
    char tmp[20];
    int n = 0;
    do {
      tmp[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) {
      const char c = tmp[--n];
      put(&c, 1);
    }
  }

  bool flush() {
    std::size_t off = 0;
    while (off < len_) {
      const ssize_t w = ::write(fd_, buf_ + off, len_ - off);
      if (w < 0) {
        if (errno == EINTR) continue;
        ok_ = false;
        break;
      }
      off += static_cast<std::size_t>(w);
    }
    len_ = 0;
    return ok_;
  }

  bool ok() const { return ok_; }

 private:
  int fd_;
  char buf_[8192];
  std::size_t len_ = 0;
  bool ok_ = true;
};

void write_event(SafeWriter& w, const obs::Event& e, bool first) {
  if (!first) w.str(",\n");
  w.str("{\"name\":\"");
  w.sv(obs::event_name(e.kind));
  w.str("\",\"ph\":\"i\",\"ts\":");
  w.u64(e.ts);
  w.str(",\"pid\":1,\"tid\":");
  w.u64(e.tid);
  w.str(",\"s\":\"t\",\"args\":{\"detail\":");
  w.u64(e.detail);
  w.str(",\"a\":");
  w.u64(e.a);
  w.str(",\"b\":");
  w.u64(e.b);
  w.str(",\"c\":");
  w.u64(e.c);
  w.str("}}");
}

/// The flush body; factored out so both the handler and the public
/// entry share it.  Signal-safe throughout.
bool flush_locked(const obs::Tracer* tracer) {
  const int fd = ::open(g_path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return false;
  SafeWriter w(fd);
  w.str("{\"traceEvents\":[\n");
  bool first = true;
  for (std::uint32_t r = 0; r < tracer->ring_count(); ++r) {
    tracer->ring(r).for_each([&](const obs::Event& e) {
      write_event(w, e, first);
      first = false;
    });
  }
  w.str("\n],\n\"crash\":{\"rings\":");
  w.u64(tracer->ring_count());
  w.str(",\"events_pushed\":");
  w.u64(tracer->events_pushed());
  w.str(",\"events_dropped\":");
  w.u64(tracer->events_dropped());
  w.str("},\n\"counters\":{");
  bool cfirst = true;
  tracer->counters().for_each([&](const std::string& name, std::uint64_t v) {
    if (!cfirst) w.str(",");
    cfirst = false;
    w.str("\"");
    w.put(name.data(), name.size());
    w.str("\":");
    w.u64(v);
  });
  w.str("}}\n");
  const bool ok = w.flush() && w.ok();
  ::close(fd);
  return ok;
}

void crash_signal_handler(int sig) {
  flush_crash_trace();
  // Restore the default disposition and re-raise so the process still dies
  // with the original signal (core dumps, wait statuses, and CI reporting
  // all keep working).
  signal(sig, SIG_DFL);
  raise(sig);
}

[[noreturn]] void crash_terminate_handler() {
  flush_crash_trace();
  if (g_old_terminate != nullptr) g_old_terminate();
  ::abort();
}

}  // namespace

void install_crash_handler(const obs::Tracer* tracer, const char* path) {
  if (path != nullptr) {
    std::strncpy(g_path, path, sizeof(g_path) - 1);
    g_path[sizeof(g_path) - 1] = '\0';
  }
  g_tracer.store(tracer, std::memory_order_release);
  g_flushed.store(false, std::memory_order_release);
  if (g_installed) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &crash_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  for (std::size_t i = 0; i < sizeof(kSignals) / sizeof(kSignals[0]); ++i) {
    sigaction(kSignals[i], &sa, &g_old_actions[i]);
  }
  g_old_terminate = std::set_terminate(&crash_terminate_handler);
  g_installed = true;
}

void uninstall_crash_handler() noexcept {
  g_tracer.store(nullptr, std::memory_order_release);
  if (!g_installed) return;
  for (std::size_t i = 0; i < sizeof(kSignals) / sizeof(kSignals[0]); ++i) {
    sigaction(kSignals[i], &g_old_actions[i], nullptr);
  }
  std::set_terminate(g_old_terminate);
  g_old_terminate = nullptr;
  g_installed = false;
}

bool flush_crash_trace() noexcept {
  const obs::Tracer* tracer = g_tracer.load(std::memory_order_acquire);
  if (tracer == nullptr) return false;
  if (g_flushed.exchange(true, std::memory_order_acq_rel)) return false;
  return flush_locked(tracer);
}

void rearm_crash_flush() noexcept {
  g_flushed.store(false, std::memory_order_release);
}

}  // namespace obliv::fault
