// Typed error model for every public entry point of the library.
//
// The paper's theorems assume a *legal* HM machine description and a
// well-formed program; nothing in the theory says what happens when a user
// hands the system a hostile config (non-monotone cache sizes, zero block
// length, absurd fan-outs) or the environment fails an allocation.  Before
// this layer existed those paths ended in an assert, a std::terminate, or --
// worse -- silent UB.  Every public constructor now has a non-throwing
// `make()` companion returning Result<T>, and the legacy throwing paths
// throw obliv::Error (which derives std::invalid_argument, so existing
// EXPECT_THROW call sites keep working) instead of tripping raw asserts.
//
// Style notes: Status/Result are deliberately tiny value types -- no
// std::expected (C++23) in a C++20 build, no exception machinery required
// to *consume* them.  Result<T>::value() on an error throws the stored
// error, which keeps test code terse while production code branches on
// ok().
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace obliv {

enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kInvalidConfig,       ///< machine/fold description violates the model
  kInvalidArgument,     ///< non-config argument out of range
  kUnsupported,         ///< legal input outside implementation limits (>64
                        ///< cores, absurd thread counts)
  kResourceExhausted,   ///< allocation or thread-spawn failure
  kInternal,            ///< invariant breach that is a library bug
  kCancelled,           ///< job cancelled by its owner (queued or mid-run;
                        ///< a mid-run cancel leaves output buffers in an
                        ///< unspecified state)
  kDeadlineExceeded,    ///< job deadline passed (before start, or mid-run
                        ///< via the watchdog poison -- output buffers
                        ///< unspecified in the latter case)
  kUnavailable,         ///< server is draining or shedding under overload
                        ///< (shed responses carry a retry-after hint; see
                        ///< serve::retry_after_ms_hint)
};

inline std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidConfig: return "invalid_config";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kResourceExhausted: return "resource_exhausted";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kUnavailable: return "unavailable";
  }
  return "unknown";
}

/// The typed exception thrown by legacy (constructor) entry points.  Derives
/// std::invalid_argument so pre-existing catch/EXPECT_THROW sites that named
/// the standard type continue to compile and pass unchanged.
class Error : public std::invalid_argument {
 public:
  Error(ErrorCode code, const std::string& message)
      : std::invalid_argument(message), code_(code) {}

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// Success-or-error value.  Default-constructed Status is success.
class Status {
 public:
  Status() = default;

  static Status error(ErrorCode code, std::string message) {
    Status s;
    s.code_ = code;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const noexcept { return code_ == ErrorCode::kOk; }
  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  std::string to_string() const {
    if (ok()) return "ok";
    return std::string(error_code_name(code_)) + ": " + message_;
  }

  /// Bridges to the legacy throwing paths.
  void throw_if_error() const {
    if (!ok()) throw Error(code_, message_);
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Holds either a T or the Status explaining why there is none.
template <class T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::error(ErrorCode::kInternal,
                              "Result constructed from an ok Status");
    }
  }

  bool ok() const noexcept { return value_.has_value(); }
  const Status& status() const noexcept { return status_; }

  /// Access to the held value; throws the stored error when there is none
  /// (convenient in tests; production code checks ok() first).
  T& value() & {
    status_.throw_if_error();
    return *value_;
  }
  const T& value() const& {
    status_.throw_if_error();
    return *value_;
  }
  T&& value() && {
    status_.throw_if_error();
    return std::move(*value_);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // ok iff value_ holds
};

}  // namespace obliv
