// MO-LR: multicore-oblivious list ranking (paper, Section VI-A, Figure 6,
// Theorem 7).
//
// A linked list of n nodes is stored as arrays: succ[v] / pred[v] are node
// indices (kNil at the ends).  The rank of a node is its distance from the
// end of the list.  MO-LR contracts the list by removing an independent set
// S (computed by MO-IS via deterministic coin flipping [21]), recurses on
// the contracted list down to constant size, and extends ranks back to S.
//
// All inter-node communication ("what is my successor's color / rank?") is
// done with O(1) sorts and scans per step -- the mo_pull primitive below --
// scheduled CGC=>SB (inside SPMS) and CGC, exactly as the paper prescribes;
// pointer-chasing random access never happens outside the constant-size
// base case.
//
// Substitution note (DESIGN.md): Figure 6 iterates over the O(log log n)
// color classes, inserting duplicate records to block neighbors.  We apply
// deterministic coin flipping three times (the paper itself suggests k
// applications to reduce the log log n factor), after which the number of
// colors is at most 8 for any feasible n, and select S as the local color
// minima -- one CGC pass, guaranteed independent, and a constant fraction
// (>= n / 14) of the nodes.  This keeps every bound shape of Theorem 7
// while avoiding the duplicate-record machinery.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "algo/scan.hpp"
#include "algo/sort.hpp"
#include "sched/cancel.hpp"

namespace obliv::algo {

inline constexpr std::uint64_t kNil = ~0ull;

namespace detail {

/// Sort-based communication record: carries the value being routed.
struct PullRec {
  std::uint64_t key;
  std::uint64_t src;
  std::uint64_t val;
  bool operator<(const PullRec& o) const {
    return key != o.key ? key < o.key : src < o.src;
  }
};

}  // namespace detail

/// out[v] = field[target[v]] for every v with target[v] != kNil, else
/// out[v] = dflt.  Implemented with two SPMS sorts and three CGC scans (the
/// "O(1) sorts and scans" pattern of Section VI); field reads happen in
/// sorted key order, so they form a near-sequential sweep.
template <class Exec, class RefU64>
void mo_pull(Exec& ex, RefU64 target, RefU64 field, RefU64 out,
             std::uint64_t dflt) {
  using detail::PullRec;
  const std::uint64_t n = target.size();
  if (n == 0) return;
  auto recs_buf = ex.template make_buf<PullRec>(n);
  auto recs = recs_buf.ref();
  ex.cgc_pfor_each(0, n, 3, [&](std::uint64_t v) {
    recs.store(v, PullRec{target.load(v), v, 0});
  });
  spms_sort(ex, recs);
  ex.cgc_pfor_each(0, n, 3, [&](std::uint64_t r) {
    PullRec rec = recs.load(r);
    rec.val = rec.key == kNil ? dflt : field.load(rec.key);
    // Re-key by source so the second sort routes the value home.
    rec.key = rec.src;
    recs.store(r, rec);
  });
  spms_sort(ex, recs);
  ex.cgc_pfor_each(0, n, 3, [&](std::uint64_t r) {
    const PullRec rec = recs.load(r);
    assert(rec.key == r);
    out.store(r, rec.val);
  });
}

namespace detail {

/// Three-field routing record: one sort round-trip delivers three pulled
/// fields at once (used by the contraction step, where the same target
/// array serves several pulls -- a constant-factor saving over three
/// separate mo_pull calls).
struct PullRec3 {
  std::uint64_t key;
  std::uint64_t src;
  std::uint64_t val[3];
  bool operator<(const PullRec3& o) const {
    return key != o.key ? key < o.key : src < o.src;
  }
};

}  // namespace detail

/// Batched pull: out_k[v] = field_k[target[v]] for k = 0, 1, 2 (dflt_k when
/// target[v] == kNil).  Two SPMS sorts total, like mo_pull.
template <class Exec, class RefU64>
void mo_pull3(Exec& ex, RefU64 target, RefU64 f0, RefU64 f1, RefU64 f2,
              RefU64 o0, RefU64 o1, RefU64 o2, std::uint64_t d0,
              std::uint64_t d1, std::uint64_t d2) {
  using detail::PullRec3;
  const std::uint64_t n = target.size();
  if (n == 0) return;
  auto recs_buf = ex.template make_buf<PullRec3>(n);
  auto recs = recs_buf.ref();
  ex.cgc_pfor_each(0, n, 5, [&](std::uint64_t v) {
    recs.store(v, PullRec3{target.load(v), v, {0, 0, 0}});
  });
  spms_sort(ex, recs);
  ex.cgc_pfor_each(0, n, 5, [&](std::uint64_t r) {
    PullRec3 rec = recs.load(r);
    if (rec.key == kNil) {
      rec.val[0] = d0;
      rec.val[1] = d1;
      rec.val[2] = d2;
    } else {
      rec.val[0] = f0.load(rec.key);
      rec.val[1] = f1.load(rec.key);
      rec.val[2] = f2.load(rec.key);
    }
    rec.key = rec.src;
    recs.store(r, rec);
  });
  spms_sort(ex, recs);
  ex.cgc_pfor_each(0, n, 5, [&](std::uint64_t r) {
    const PullRec3 rec = recs.load(r);
    assert(rec.key == r);
    o0.store(r, rec.val[0]);
    o1.store(r, rec.val[1]);
    o2.store(r, rec.val[2]);
  });
}

namespace detail {

/// One deterministic coin-flipping step [21]: given a coloring where
/// adjacent nodes differ, produce a (1 + log k)-bit coloring that still
/// differs across each list edge.  scolor[v] = color of succ(v) (kNil ends
/// handled by the caller's pull default).
template <class Exec, class RefU64>
void dcf_step(Exec& ex, RefU64 color, RefU64 scolor, RefU64 succ) {
  const std::uint64_t n = color.size();
  ex.cgc_pfor_each(0, n, 1, [&](std::uint64_t v) {
    const std::uint64_t c = color.load(v);
    std::uint64_t k = 0, bit;
    if (succ.load(v) == kNil) {
      bit = c & 1;  // tail: encode (0, own bit 0); cannot collide with pred
    } else {
      const std::uint64_t diff = c ^ scolor.load(v);
      assert(diff != 0 && "adjacent nodes must have distinct colors");
      k = static_cast<std::uint64_t>(__builtin_ctzll(diff));
      bit = (c >> k) & 1;
    }
    color.store(v, 2 * k + bit);
    ex.tick(2);
  });
}

constexpr std::uint64_t kLrBase = 64;

/// Sequential base case: walk backward from the tail accumulating weighted
/// distances.
template <class Exec, class RefU64>
void lr_base(Exec& ex, RefU64 succ, RefU64 pred, RefU64 len, RefU64 dist) {
  // The only data-dependent serial walk in the tree: when the enclosing
  // job is poisoned the parallel contraction phases above were skipped,
  // so succ/pred are unspecified here -- the walk could assert or cycle.
  // Poison is permanent, so garbage inputs imply the check fires.
  if (sched::detail::cancel_pending()) return;
  const std::uint64_t n = succ.size();
  std::uint64_t tail = kNil;
  for (std::uint64_t v = 0; v < n; ++v) {
    if (succ.load(v) == kNil) {
      tail = v;
      break;
    }
  }
  assert(tail != kNil && "list must have a tail");
  std::uint64_t u = tail;
  dist.store(u, 0);
  while (pred.load(u) != kNil) {
    const std::uint64_t p = pred.load(u);
    dist.store(p, dist.load(u) + len.load(p));
    u = p;
  }
  (void)ex;
}

template <class Exec, class RefU64>
void lr_rec(Exec& ex, RefU64 succ, RefU64 pred, RefU64 len, RefU64 dist,
            int dcf_rounds) {
  const std::uint64_t n = succ.size();
  if (n <= kLrBase) {
    lr_base(ex, succ, pred, len, dist);
    return;
  }

  // ---- MO-IS: k-fold deterministic coin flipping (paper footnote 4:
  // k applications shrink the color count to O(log^(k) n)), then local
  // color minima. ----
  auto color_buf = ex.template make_buf<std::uint64_t>(n);
  auto scol_buf = ex.template make_buf<std::uint64_t>(n);
  auto pcol_buf = ex.template make_buf<std::uint64_t>(n);
  auto color = color_buf.ref(), scol = scol_buf.ref(), pcol = pcol_buf.ref();
  ex.cgc_pfor_each(0, n, 1, [&](std::uint64_t v) { color.store(v, v); });
  for (int round = 0; round < dcf_rounds; ++round) {
    mo_pull(ex, succ, color, scol, kNil);
    dcf_step(ex, color, scol, succ);
  }
  mo_pull(ex, succ, color, scol, kNil);
  mo_pull(ex, pred, color, pcol, kNil);
  auto in_s_buf = ex.template make_buf<std::uint64_t>(n);
  auto in_s = in_s_buf.ref();
  ex.cgc_pfor_each(0, n, 1, [&](std::uint64_t v) {
    const bool interior = succ.load(v) != kNil && pred.load(v) != kNil;
    const std::uint64_t c = color.load(v);
    in_s.store(v, interior && c < scol.load(v) && c < pcol.load(v) ? 1 : 0);
  });

  // ---- Contract: splice S out of the list. ----
  auto ins_s_buf = ex.template make_buf<std::uint64_t>(n);   // inS[succ[v]]
  auto succ2_buf = ex.template make_buf<std::uint64_t>(n);   // succ[succ[v]]
  auto lens_buf = ex.template make_buf<std::uint64_t>(n);    // len[succ[v]]
  auto ins_p_buf = ex.template make_buf<std::uint64_t>(n);   // inS[pred[v]]
  auto pred2_buf = ex.template make_buf<std::uint64_t>(n);   // pred[pred[v]]
  auto ins_s = ins_s_buf.ref(), succ2 = succ2_buf.ref(),
       lens = lens_buf.ref(), ins_p = ins_p_buf.ref(),
       pred2 = pred2_buf.ref();
  // Batched: one routed sort pair per direction instead of three/two.
  mo_pull3(ex, succ, in_s, succ, len, ins_s, succ2, lens, 0, kNil, 0);
  mo_pull3(ex, pred, in_s, pred, pred, ins_p, pred2, pred2, 0, kNil, kNil);

  auto nsucc_buf = ex.template make_buf<std::uint64_t>(n);
  auto npred_buf = ex.template make_buf<std::uint64_t>(n);
  auto nlen_buf = ex.template make_buf<std::uint64_t>(n);
  auto nsucc = nsucc_buf.ref(), npred = npred_buf.ref(), nlen = nlen_buf.ref();
  ex.cgc_pfor_each(0, n, 3, [&](std::uint64_t v) {
    std::uint64_t s = succ.load(v), p = pred.load(v), l = len.load(v);
    if (in_s.load(v) == 0) {
      if (s != kNil && ins_s.load(v)) {
        l += lens.load(v);  // absorb the removed successor's edge
        s = succ2.load(v);
      }
      if (p != kNil && ins_p.load(v)) p = pred2.load(v);
    }
    nsucc.store(v, s);
    npred.store(v, p);
    nlen.store(v, l);
  });

  // ---- Compact survivors with a prefix sum. ----
  auto alive_buf = ex.template make_buf<std::uint64_t>(n);
  auto alive = alive_buf.ref();
  ex.cgc_pfor_each(0, n, 1, [&](std::uint64_t v) {
    alive.store(v, in_s.load(v) ? 0 : 1);
  });
  mo_prefix_sum(ex, alive);  // inclusive: newid[v] = alive[v] - 1 if alive
  const std::uint64_t n2 = alive.load(n - 1);
  assert(n2 < n && "independent set must be non-empty");

  auto old2new_buf = ex.template make_buf<std::uint64_t>(n);
  auto new2old_buf = ex.template make_buf<std::uint64_t>(n2);
  auto old2new = old2new_buf.ref(), new2old = new2old_buf.ref();
  ex.cgc_pfor_each(0, n, 2, [&](std::uint64_t v) {
    if (in_s.load(v)) {
      old2new.store(v, kNil);
    } else {
      const std::uint64_t id = alive.load(v) - 1;
      old2new.store(v, id);
      new2old.store(id, v);
    }
  });

  // Remap spliced pointers to compacted ids (pulls through old2new).
  auto msucc_buf = ex.template make_buf<std::uint64_t>(n);
  auto mpred_buf = ex.template make_buf<std::uint64_t>(n);
  auto msucc = msucc_buf.ref(), mpred = mpred_buf.ref();
  mo_pull(ex, nsucc, old2new, msucc, kNil);
  mo_pull(ex, npred, old2new, mpred, kNil);

  auto ssucc_buf = ex.template make_buf<std::uint64_t>(n2);
  auto spred_buf = ex.template make_buf<std::uint64_t>(n2);
  auto slen_buf = ex.template make_buf<std::uint64_t>(n2);
  auto sdist_buf = ex.template make_buf<std::uint64_t>(n2);
  auto ssucc = ssucc_buf.ref(), spred = spred_buf.ref(),
       slen = slen_buf.ref(), sdist = sdist_buf.ref();
  ex.cgc_pfor_each(0, n2, 4, [&](std::uint64_t s) {
    const std::uint64_t v = new2old.load(s);
    ssucc.store(s, msucc.load(v));
    spred.store(s, mpred.load(v));
    slen.store(s, nlen.load(v));
  });

  // ---- Recurse on the contracted list. ----
  lr_rec(ex, ssucc, spred, slen, sdist, dcf_rounds);

  // ---- Expand: survivors copy back, removed nodes read their successor. ----
  ex.cgc_pfor_each(0, n2, 2, [&](std::uint64_t s) {
    dist.store(new2old.load(s), sdist.load(s));
  });
  auto dist_s_buf = ex.template make_buf<std::uint64_t>(n);
  auto dist_s = dist_s_buf.ref();
  mo_pull(ex, succ, dist, dist_s, 0);
  ex.cgc_pfor_each(0, n, 2, [&](std::uint64_t v) {
    if (in_s.load(v)) dist.store(v, dist_s.load(v) + len.load(v));
  });
}

}  // namespace detail

/// MO-LR: fills dist[v] with the weighted distance from v to the tail of
/// the list (len[v] = weight of the edge v -> succ[v]).  `dcf_rounds` is
/// the number of deterministic-coin-flipping applications per contraction
/// level (>= 2; the paper's footnote-4 knob).
template <class Exec, class RefU64>
void mo_list_rank_weighted(Exec& ex, RefU64 succ, RefU64 pred, RefU64 len,
                           RefU64 dist, int dcf_rounds = 3) {
  detail::lr_rec(ex, succ, pred, len, dist, dcf_rounds);
}

/// MO-LR with unit weights: dist[v] = number of nodes after v.
template <class Exec, class RefU64>
void mo_list_rank(Exec& ex, RefU64 succ, RefU64 pred, RefU64 dist,
                  int dcf_rounds = 3) {
  const std::uint64_t n = succ.size();
  auto len_buf = ex.template make_buf<std::uint64_t>(n);
  auto len = len_buf.ref();
  ex.cgc_pfor_each(0, n, 1, [&](std::uint64_t v) { len.store(v, 1); });
  mo_list_rank_weighted(ex, succ, pred, len, dist, dcf_rounds);
}

/// Sequential pointer-chasing baseline (the memory-unfriendly classic):
/// O(n) work but one random access per hop and zero parallelism.
template <class Exec, class RefU64>
void list_rank_sequential(Exec& ex, RefU64 succ, RefU64 pred, RefU64 dist) {
  const std::uint64_t n = succ.size();
  std::uint64_t tail = kNil;
  for (std::uint64_t v = 0; v < n; ++v) {
    if (succ.load(v) == kNil) {
      tail = v;
      break;
    }
  }
  assert(tail != kNil);
  std::uint64_t u = tail, d = 0;
  dist.store(u, 0);
  while (pred.load(u) != kNil) {
    u = pred.load(u);
    dist.store(u, ++d);
  }
  (void)ex;
}

}  // namespace obliv::algo
