// MO-FFT: multicore-oblivious in-place FFT (paper, Figure 3 and Theorem 2).
//
// The algorithm is the HM adaptation of the cache-oblivious FFT of Frigo et
// al. [1] / the network-oblivious FFT of Bilardi et al. [4]: the length-n
// input is viewed as an n1 x n2 matrix (n1 = 2^ceil(k/2), n2 = 2^floor(k/2)),
// and the DFT decomposes into column FFTs, twiddle scaling and row FFTs,
// with MO-MT transposes turning column work into contiguous row work.
//
// Scheduler hints exactly as in Figure 3: the data-rearrangement steps are
// CGC (constant critical pathlength each), and the two batches of recursive
// sub-FFTs are CGC=>SB with space bound S(m) = 3m (the recursion's matrix
// scratch is at most 2m complex elements plus the input row).
//
// Theorem 2: O((n/p + B_1) log n) parallel steps and
// O((n/(q_i B_i)) log_{C_i} n) level-i cache misses, both optimal.
#pragma once

#include <cassert>
#include <cmath>
#include <complex>
#include <cstdint>
#include <numbers>
#include <vector>

#include "algo/transpose.hpp"
#include "sched/views.hpp"
#include "util/bits.hpp"

namespace obliv::algo {

using cplx = std::complex<double>;

namespace detail {

/// Direct O(m^2) DFT used at the recursion base (m is a small constant, so
/// this does not affect asymptotics).  Convention: Y[f] = sum_t x[t] *
/// exp(-2*pi*i*f*t/m).
template <class Exec, class Ref>
void dft_base(Exec& ex, Ref x) {
  const std::uint64_t m = x.size();
  cplx in[8], out[8];
  assert(m <= 8);
  for (std::uint64_t t = 0; t < m; ++t) in[t] = x.load(t);
  for (std::uint64_t f = 0; f < m; ++f) {
    cplx acc{0.0, 0.0};
    for (std::uint64_t t = 0; t < m; ++t) {
      const double ang = -2.0 * std::numbers::pi *
                         static_cast<double>((f * t) % m) /
                         static_cast<double>(m);
      acc += in[t] * std::polar(1.0, ang);
      ex.tick(4);
    }
    out[f] = acc;
  }
  for (std::uint64_t f = 0; f < m; ++f) x.store(f, out[f]);
}

}  // namespace detail

/// MO-FFT.  In-place DFT of `x` (size a power of two), convention
/// Y[f] = sum_t x[t] exp(-2 pi i f t / n).  Space bound S(n) = 3n elements.
template <class Exec, class Ref>
void mo_fft(Exec& ex, Ref x) {
  const std::uint64_t n = x.size();
  assert(util::is_pow2(n));
  constexpr std::uint64_t W = (sizeof(cplx) + 7) / 8;  // 2 words per element

  // Line 1: small-constant base case.
  if (n <= 8) {
    detail::dft_base(ex, x);
    return;
  }

  // Line 2: n1 = 2^ceil(k/2), n2 = 2^floor(k/2).
  const unsigned k = util::ilog2(n);
  const std::uint64_t n1 = std::uint64_t{1} << ((k + 1) / 2);
  const std::uint64_t n2 = std::uint64_t{1} << (k / 2);

  auto abuf = ex.template make_buf<cplx>(n1 * n1);
  auto A = sched::MatView<Ref>::full(abuf.ref(), n1, n1);

  // Line 3 [CGC]: A[i][j] := X[i*n2 + j] for i < n1, j < n2.
  ex.cgc_pfor(0, n, W, [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t z = lo; z < hi; ++z) {
      A.store(z / n2, z % n2, x.load(z));
    }
  });

  // Line 4 [CGC]: MO-MT(A, n1).
  mo_transpose_inplace(ex, A);

  // Line 5 [CGC=>SB]: FFT each of the first n2 rows (length n1).
  ex.cgc_sb_pfor(n2, 3 * n1 * W, [&](std::uint64_t i) {
    mo_fft(ex, A.row(i));
  });

  // Line 6 [CGC]: twiddle the first n entries: entry (b, c) of the n2 x n1
  // region is scaled by w_n^{b*c}.
  ex.cgc_pfor(0, n, W, [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t z = lo; z < hi; ++z) {
      const std::uint64_t b = z / n1, c = z % n1;
      const double ang = -2.0 * std::numbers::pi *
                         static_cast<double>((b * c) % n) /
                         static_cast<double>(n);
      A.store(b, c, A.load(b, c) * std::polar(1.0, ang));
      ex.tick(8);
    }
  });

  // Line 7 [CGC]: MO-MT(A, n1).
  mo_transpose_inplace(ex, A);

  // Line 8 [CGC=>SB]: FFT each of the n1 rows restricted to length n2.
  ex.cgc_sb_pfor(n1, 3 * n2 * W, [&](std::uint64_t i) {
    mo_fft(ex, A.row(i).slice(0, n2));
  });

  // Line 9 [CGC]: MO-MT(A, n1).
  mo_transpose_inplace(ex, A);

  // Line 10 [CGC]: copy the first n entries of A back into X.
  ex.cgc_pfor(0, n, W, [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t z = lo; z < hi; ++z) {
      x.store(z, A.load(z / n1, z % n1));
    }
  });
}

/// Inverse DFT via the conjugation identity (used by examples/tests).
template <class Exec, class Ref>
void mo_ifft(Exec& ex, Ref x) {
  const std::uint64_t n = x.size();
  constexpr std::uint64_t W = (sizeof(cplx) + 7) / 8;
  ex.cgc_pfor(0, n, W, [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t z = lo; z < hi; ++z) x.store(z, std::conj(x.load(z)));
  });
  mo_fft(ex, x);
  ex.cgc_pfor(0, n, W, [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t z = lo; z < hi; ++z) {
      x.store(z, std::conj(x.load(z)) / static_cast<double>(n));
    }
  });
}

// ---------------------------------------------------------------------------
// Baselines.
// ---------------------------------------------------------------------------

/// Iterative radix-2 Cooley-Tukey (bit-reversal + log n butterfly passes).
/// Cache-aware codes block this; unblocked it incurs Theta((n/B) log n)
/// misses once n exceeds the cache -- the baseline curve for bench_fft.
template <class Exec, class Ref>
void iterative_fft(Exec& ex, Ref x) {
  const std::uint64_t n = x.size();
  assert(util::is_pow2(n));
  const unsigned k = util::ilog2(n);
  constexpr std::uint64_t W = (sizeof(cplx) + 7) / 8;
  ex.cgc_pfor_each(0, n, W, [&](std::uint64_t z) {
    const std::uint64_t r = util::reverse_bits(z, k);
    if (r > z) {
      const cplx a = x.load(z);
      x.store(z, x.load(r));
      x.store(r, a);
    }
  });
  for (std::uint64_t len = 2; len <= n; len <<= 1) {
    const std::uint64_t half = len / 2;
    ex.cgc_pfor_each(0, n / 2, 2 * W, [&](std::uint64_t t) {
      const std::uint64_t blk = t / half, off = t % half;
      const std::uint64_t base = blk * len + off;
      const double ang = -2.0 * std::numbers::pi *
                         static_cast<double>(off) / static_cast<double>(len);
      const cplx w = std::polar(1.0, ang);
      const cplx a = x.load(base);
      const cplx b = x.load(base + half) * w;
      x.store(base, a + b);
      x.store(base + half, a - b);
      ex.tick(8);
    });
  }
}

/// Plain O(n^2) reference DFT on host vectors, for correctness tests.
inline std::vector<cplx> naive_dft(const std::vector<cplx>& x) {
  const std::uint64_t n = x.size();
  std::vector<cplx> y(n);
  for (std::uint64_t f = 0; f < n; ++f) {
    cplx acc{0.0, 0.0};
    for (std::uint64_t t = 0; t < n; ++t) {
      const double ang = -2.0 * std::numbers::pi *
                         static_cast<double>((f * t) % n) /
                         static_cast<double>(n);
      acc += x[t] * std::polar(1.0, ang);
    }
    y[f] = acc;
  }
  return y;
}

}  // namespace obliv::algo
