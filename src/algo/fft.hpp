// MO-FFT: multicore-oblivious in-place FFT (paper, Figure 3 and Theorem 2).
//
// The algorithm is the HM adaptation of the cache-oblivious FFT of Frigo et
// al. [1] / the network-oblivious FFT of Bilardi et al. [4]: the length-n
// input is viewed as an n1 x n2 matrix (n1 = 2^ceil(k/2), n2 = 2^floor(k/2)),
// and the DFT decomposes into column FFTs, twiddle scaling and row FFTs,
// with MO-MT transposes turning column work into contiguous row work.
//
// Scheduler hints exactly as in Figure 3: the data-rearrangement steps are
// CGC (constant critical pathlength each), and the two batches of recursive
// sub-FFTs are CGC=>SB with space bound S(m) = 3m (the recursion's matrix
// scratch is at most 2m complex elements plus the input row).
//
// Theorem 2: O((n/p + B_1) log n) parallel steps and
// O((n/(q_i B_i)) log_{C_i} n) level-i cache misses, both optimal.
#pragma once

#include <cassert>
#include <cmath>
#include <complex>
#include <cstdint>
#include <numbers>
#include <vector>

#include "algo/transpose.hpp"
#include "sched/hints.hpp"
#include "sched/views.hpp"
#include "util/bits.hpp"
#include "util/simd.hpp"

namespace obliv::algo {

using cplx = std::complex<double>;

namespace detail {

/// Native refs over complex<double> may take the split re/im simd kernels.
template <class Ref>
inline constexpr bool fft_kernel_v =
    sched::is_direct_ref_v<Ref> &&
    std::is_same_v<typename Ref::value_type, cplx>;

/// Direct O(m^2) DFT used at the recursion base (m is a small constant, so
/// this does not affect asymptotics).  Convention: Y[f] = sum_t x[t] *
/// exp(-2*pi*i*f*t/m).
template <class Exec, class Ref>
void dft_base(Exec& ex, Ref x) {
  const std::uint64_t m = x.size();
  cplx in[8], out[8];
  assert(m <= 8);
  if constexpr (fft_kernel_v<Ref>) {
    if (simd::use_kernels()) {
      // Split re/im base case; the kernel uses the same twiddle expression
      // and accumulation order, so the result is bit-identical.
      double re_in[8] = {}, im_in[8] = {}, re_out[8], im_out[8];
      const double* xs = reinterpret_cast<const double*>(x.raw());
      for (std::uint64_t t = 0; t < m; ++t) {
        re_in[t] = xs[2 * t];
        im_in[t] = xs[2 * t + 1];
      }
      simd::dft_pow2_f64(re_in, im_in, re_out, im_out,
                         static_cast<unsigned>(m));
      double* xd = reinterpret_cast<double*>(x.raw());
      for (std::uint64_t f = 0; f < m; ++f) {
        xd[2 * f] = re_out[f];
        xd[2 * f + 1] = im_out[f];
      }
      return;
    }
  }
  for (std::uint64_t t = 0; t < m; ++t) in[t] = x.load(t);
  for (std::uint64_t f = 0; f < m; ++f) {
    cplx acc{0.0, 0.0};
    for (std::uint64_t t = 0; t < m; ++t) {
      const double ang = -2.0 * std::numbers::pi *
                         static_cast<double>((f * t) % m) /
                         static_cast<double>(m);
      acc += in[t] * std::polar(1.0, ang);
      ex.tick(4);
    }
    out[f] = acc;
  }
  for (std::uint64_t f = 0; f < m; ++f) x.store(f, out[f]);
}

}  // namespace detail

/// MO-FFT.  In-place DFT of `x` (size a power of two), convention
/// Y[f] = sum_t x[t] exp(-2 pi i f t / n).  Space bound S(n) = 3n elements.
template <class Exec, class Ref>
void mo_fft(Exec& ex, Ref x) {
  const std::uint64_t n = x.size();
  assert(util::is_pow2(n));
  constexpr std::uint64_t W = (sizeof(cplx) + 7) / 8;  // 2 words per element

  // Line 1: small-constant base case.
  if (n <= 8) {
    detail::dft_base(ex, x);
    return;
  }

  // Line 2: n1 = 2^ceil(k/2), n2 = 2^floor(k/2).
  const unsigned k = util::ilog2(n);
  const std::uint64_t n1 = std::uint64_t{1} << ((k + 1) / 2);
  const std::uint64_t n2 = std::uint64_t{1} << (k / 2);

  auto abuf = ex.template make_buf<cplx>(n1 * n1);
  auto A = sched::MatView<Ref>::full(abuf.ref(), n1, n1);

  // Line 3 [CGC]: A[i][j] := X[i*n2 + j] for i < n1, j < n2.
  ex.cgc_pfor(0, n, W, [&](std::uint64_t lo, std::uint64_t hi) {
    if constexpr (detail::fft_kernel_v<Ref>) {
      if (simd::use_kernels()) {
        // Row i of the n1 x n2 region is the contiguous run
        // x[i*n2 .. (i+1)*n2) landing at A + i*n1; move per-segment.
        cplx* a0 = A.row(0).raw();
        const cplx* xs = x.raw();
        std::uint64_t z = lo;
        while (z < hi) {
          const std::uint64_t i = z / n2, j = z % n2;
          const std::uint64_t cnt = std::min(hi - z, n2 - j);
          simd::copy_elems(xs + z, a0 + i * n1 + j, cnt);
          z += cnt;
        }
        return;
      }
    }
    for (std::uint64_t z = lo; z < hi; ++z) {
      A.store(z / n2, z % n2, x.load(z));
    }
  });

  // Line 4 [CGC]: MO-MT(A, n1).
  mo_transpose_inplace(ex, A);

  // Line 5 [CGC=>SB]: FFT each of the first n2 rows (length n1).
  ex.cgc_sb_pfor(n2, 3 * n1 * W, [&](std::uint64_t i) {
    mo_fft(ex, A.row(i));
  });

  // Line 6 [CGC]: twiddle the first n entries: entry (b, c) of the n2 x n1
  // region is scaled by w_n^{b*c}.
  ex.cgc_pfor(0, n, W, [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t z = lo; z < hi; ++z) {
      const std::uint64_t b = z / n1, c = z % n1;
      const double ang = -2.0 * std::numbers::pi *
                         static_cast<double>((b * c) % n) /
                         static_cast<double>(n);
      A.store(b, c, A.load(b, c) * std::polar(1.0, ang));
      ex.tick(8);
    }
  });

  // Line 7 [CGC]: MO-MT(A, n1).
  mo_transpose_inplace(ex, A);

  // Line 8 [CGC=>SB]: FFT each of the n1 rows restricted to length n2.
  ex.cgc_sb_pfor(n1, 3 * n2 * W, [&](std::uint64_t i) {
    mo_fft(ex, A.row(i).slice(0, n2));
  });

  // Line 9 [CGC]: MO-MT(A, n1).
  mo_transpose_inplace(ex, A);

  // Line 10 [CGC]: copy the first n entries of A back into X.
  ex.cgc_pfor(0, n, W, [&](std::uint64_t lo, std::uint64_t hi) {
    if constexpr (detail::fft_kernel_v<Ref>) {
      if (simd::use_kernels()) {
        // A's leading dimension is n1, so element (z/n1, z%n1) sits at flat
        // offset z: the copy-back is one contiguous run.
        simd::copy_elems(A.row(0).raw() + lo, x.raw() + lo, hi - lo);
        return;
      }
    }
    for (std::uint64_t z = lo; z < hi; ++z) {
      x.store(z, A.load(z / n1, z % n1));
    }
  });
}

/// Inverse DFT via the conjugation identity (used by examples/tests).
template <class Exec, class Ref>
void mo_ifft(Exec& ex, Ref x) {
  const std::uint64_t n = x.size();
  constexpr std::uint64_t W = (sizeof(cplx) + 7) / 8;
  ex.cgc_pfor(0, n, W, [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t z = lo; z < hi; ++z) x.store(z, std::conj(x.load(z)));
  });
  mo_fft(ex, x);
  ex.cgc_pfor(0, n, W, [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t z = lo; z < hi; ++z) {
      x.store(z, std::conj(x.load(z)) / static_cast<double>(n));
    }
  });
}

// ---------------------------------------------------------------------------
// Baselines.
// ---------------------------------------------------------------------------

/// Iterative radix-2 Cooley-Tukey (bit-reversal + log n butterfly passes).
/// Cache-aware codes block this; unblocked it incurs Theta((n/B) log n)
/// misses once n exceeds the cache -- the baseline curve for bench_fft.
template <class Exec, class Ref>
void iterative_fft(Exec& ex, Ref x) {
  const std::uint64_t n = x.size();
  assert(util::is_pow2(n));
  const unsigned k = util::ilog2(n);
  constexpr std::uint64_t W = (sizeof(cplx) + 7) / 8;
  ex.cgc_pfor_each(0, n, W, [&](std::uint64_t z) {
    const std::uint64_t r = util::reverse_bits(z, k);
    if (r > z) {
      const cplx a = x.load(z);
      x.store(z, x.load(r));
      x.store(r, a);
    }
  });
  if constexpr (detail::fft_kernel_v<Ref>) {
    if (simd::use_kernels()) {
      // Native fast path: deinterleave once into split re/im arrays,
      // precompute each pass's twiddles with the same polar(1, -2*pi*off/len)
      // expression, and run every pass through the vector butterflies.
      // Finite-input results are bit-identical to the generic loop below.
      auto rebuf = ex.template make_buf<double>(n);
      auto imbuf = ex.template make_buf<double>(n);
      auto wrbuf = ex.template make_buf<double>(n / 2);
      auto wibuf = ex.template make_buf<double>(n / 2);
      double* re = rebuf.ref().raw();
      double* im = imbuf.ref().raw();
      double* wre = wrbuf.ref().raw();
      double* wim = wibuf.ref().raw();
      double* xd = reinterpret_cast<double*>(x.raw());
      ex.cgc_pfor(0, n, W, [&](std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t z = lo; z < hi; ++z) {
          re[z] = xd[2 * z];
          im[z] = xd[2 * z + 1];
        }
      });
      for (std::uint64_t len = 2; len <= n; len <<= 1) {
        const std::uint64_t half = len / 2;
        for (std::uint64_t off = 0; off < half; ++off) {
          const double ang = -2.0 * std::numbers::pi *
                             static_cast<double>(off) /
                             static_cast<double>(len);
          wre[off] = std::cos(ang);
          wim[off] = std::sin(ang);
        }
        // Butterfly t = (blk, off) touches re/im[blk*len + off] and its
        // partner at +half; a contiguous t-range decomposes into per-block
        // off-segments, each one kernel call.
        ex.cgc_pfor(0, n / 2, 2 * W, [&](std::uint64_t lo, std::uint64_t hi) {
          std::uint64_t t = lo;
          while (t < hi) {
            const std::uint64_t blk = t / half, off = t % half;
            const std::uint64_t cnt = std::min(hi - t, half - off);
            const std::uint64_t base = blk * len + off;
            simd::butterfly_f64(re + base, im + base, re + base + half,
                                im + base + half, wre + off, wim + off, cnt);
            t += cnt;
          }
        });
      }
      ex.cgc_pfor(0, n, W, [&](std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t z = lo; z < hi; ++z) {
          xd[2 * z] = re[z];
          xd[2 * z + 1] = im[z];
        }
      });
      return;
    }
  }
  for (std::uint64_t len = 2; len <= n; len <<= 1) {
    const std::uint64_t half = len / 2;
    ex.cgc_pfor_each(0, n / 2, 2 * W, [&](std::uint64_t t) {
      const std::uint64_t blk = t / half, off = t % half;
      const std::uint64_t base = blk * len + off;
      const double ang = -2.0 * std::numbers::pi *
                         static_cast<double>(off) / static_cast<double>(len);
      const cplx w = std::polar(1.0, ang);
      const cplx a = x.load(base);
      const cplx b = x.load(base + half) * w;
      x.store(base, a + b);
      x.store(base + half, a - b);
      ex.tick(8);
    });
  }
}

/// Plain O(n^2) reference DFT on host vectors, for correctness tests.
inline std::vector<cplx> naive_dft(const std::vector<cplx>& x) {
  const std::uint64_t n = x.size();
  std::vector<cplx> y(n);
  for (std::uint64_t f = 0; f < n; ++f) {
    cplx acc{0.0, 0.0};
    for (std::uint64_t t = 0; t < n; ++t) {
      const double ang = -2.0 * std::numbers::pi *
                         static_cast<double>((f * t) % n) /
                         static_cast<double>(n);
      acc += x[t] * std::polar(1.0, ang);
    }
    y[f] = acc;
  }
  return y;
}

}  // namespace obliv::algo
