// MO-MT: multicore-oblivious matrix transposition (paper, Figure 2 and
// Theorem 1), plus the baselines it is compared against.
//
// MO-MT routes the transposition through an intermediate array I laid out in
// bit-interleaved (Z-Morton) order:
//
//   step 1 [CGC]:  I[z]           := A[beta^{-1}(z)]   (Morton gather)
//   step 2 [CGC]:  A^T[i*n + j]   := I[beta(j, i)]     (Morton scatter)
//
// Both steps are flat CGC pfors with O(1) work per index, so the critical
// pathlength is the CGC minimum-segment bound O(B_1) -- constant in n --
// which a parallelization of the recursive cache-oblivious transposition
// cannot achieve (it needs Theta(log n) depth).  Per Theorem 1 the level-i
// cache misses are O(n^2/(q_i B_i) + B_i) given tall caches.
#pragma once

#include <algorithm>
#include <cassert>
#include <complex>
#include <cstdint>
#include <type_traits>

#include "sched/hints.hpp"
#include "sched/views.hpp"
#include "util/bits.hpp"
#include "util/simd.hpp"

namespace obliv::algo {

namespace detail {

/// Native leaf for the two Morton passes: indices are computed scalar into
/// a small block, the element movement is one contiguous-store gather per
/// block.  IndexFn maps a flat z to the source offset.
template <class IndexFn>
void gather_tile_f64(const double* src, double* dst, std::uint64_t lo,
                     std::uint64_t hi, IndexFn&& index_of) {
  constexpr std::uint64_t kBlk = 256;  // index staging fits in L1
  std::uint64_t idx[kBlk];
  for (std::uint64_t z0 = lo; z0 < hi; z0 += kBlk) {
    const std::uint64_t cnt = std::min(kBlk, hi - z0);
    for (std::uint64_t k = 0; k < cnt; ++k) idx[k] = index_of(z0 + k);
    simd::gather_f64(src, idx, dst + z0, cnt);
  }
}

template <class Ref>
inline constexpr bool transpose_kernel_v =
    sched::is_direct_ref_v<Ref> &&
    (std::is_same_v<typename Ref::value_type, double> ||
     std::is_same_v<typename Ref::value_type, std::complex<double>>);

/// Type-dispatched tile gather: complex<double> elements move as two-word
/// units (reinterpreting complex<double>* as double* is sanctioned by the
/// standard's array-compatibility guarantee for std::complex).
template <class T, class IndexFn>
void gather_tile(const T* src, T* dst, std::uint64_t lo, std::uint64_t hi,
                 IndexFn&& index_of) {
  if constexpr (std::is_same_v<T, double>) {
    gather_tile_f64(src, dst, lo, hi, index_of);
  } else {
    constexpr std::uint64_t kBlk = 256;
    std::uint64_t idx[kBlk];
    const double* s = reinterpret_cast<const double*>(src);
    double* d = reinterpret_cast<double*>(dst);
    for (std::uint64_t z0 = lo; z0 < hi; z0 += kBlk) {
      const std::uint64_t cnt = std::min(kBlk, hi - z0);
      for (std::uint64_t k = 0; k < cnt; ++k) idx[k] = index_of(z0 + k);
      simd::gather_2f64(s, idx, d + 2 * z0, cnt);
    }
  }
}

}  // namespace detail

/// MO-MT.  `a` is an n x n row-major input, `out` receives the transpose
/// (row-major).  n must be a power of two (the bit-interleaving map requires
/// equal index widths).  Space bound: 3 n^2.
template <class Exec, class Ref>
void mo_transpose(Exec& ex, Ref a, Ref out, std::uint64_t n) {
  assert(util::is_pow2(n));
  assert(a.size() >= n * n && out.size() >= n * n);
  using T = typename Ref::value_type;
  constexpr std::uint64_t W = (sizeof(T) + 7) / 8;

  auto ibuf = ex.template make_buf<T>(n * n);
  auto I = ibuf.ref();

  // Step 1 [CGC]: gather A into bit-interleaved order.
  ex.cgc_pfor(0, n * n, W, [&](std::uint64_t lo, std::uint64_t hi) {
    if constexpr (detail::transpose_kernel_v<Ref>) {
      if (simd::use_kernels()) {
        detail::gather_tile(a.raw(), I.raw(), lo, hi, [n](std::uint64_t z) {
          const auto [i, j] = util::deinterleave_bits(z);
          return i * n + j;
        });
        return;
      }
    }
    for (std::uint64_t z = lo; z < hi; ++z) {
      const auto [i, j] = util::deinterleave_bits(z);
      I.store(z, a.load(i * n + j));
    }
  });

  // Step 2 [CGC]: scatter out of bit-interleaved order, transposed.
  ex.cgc_pfor(0, n * n, W, [&](std::uint64_t lo, std::uint64_t hi) {
    if constexpr (detail::transpose_kernel_v<Ref>) {
      if (simd::use_kernels()) {
        detail::gather_tile(I.raw(), out.raw(), lo, hi,
                            [n](std::uint64_t z) {
                              return util::interleave_bits(z % n, z / n);
                            });
        return;
      }
    }
    for (std::uint64_t z = lo; z < hi; ++z) {
      const std::uint64_t i = z / n, j = z % n;
      out.store(z, I.load(util::interleave_bits(j, i)));
    }
  });
}

/// In-place transposition of a square MatView via MO-MT semantics is not
/// needed by MO-FFT; MO-FFT transposes the full backing matrix.  This
/// overload transposes view `m` (must be square, power-of-two side, and
/// contiguous: ld == cols) into itself using a scratch buffer.
template <class Exec, class Ref>
void mo_transpose_inplace(Exec& ex, sched::MatView<Ref> m) {
  const std::uint64_t n = m.rows();
  assert(m.cols() == n && util::is_pow2(n));
  using T = typename Ref::value_type;
  constexpr std::uint64_t W = (sizeof(T) + 7) / 8;

  auto ibuf = ex.template make_buf<T>(n * n);
  auto I = ibuf.ref();

  ex.cgc_pfor(0, n * n, W, [&](std::uint64_t lo, std::uint64_t hi) {
    if constexpr (detail::transpose_kernel_v<Ref>) {
      if (simd::use_kernels()) {
        const std::uint64_t ld = m.ld();
        detail::gather_tile(m.row(0).raw(), I.raw(), lo, hi,
                            [ld](std::uint64_t z) {
                              const auto [i, j] = util::deinterleave_bits(z);
                              return i * ld + j;
                            });
        return;
      }
    }
    for (std::uint64_t z = lo; z < hi; ++z) {
      const auto [i, j] = util::deinterleave_bits(z);
      I.store(z, m.load(i, j));
    }
  });
  ex.cgc_pfor(0, n * n, W, [&](std::uint64_t lo, std::uint64_t hi) {
    if constexpr (detail::transpose_kernel_v<Ref>) {
      if (simd::use_kernels()) {
        // Inverse direction: the *destination* walks (i, j) row-major while
        // the source is Morton-ordered, so stores are only contiguous when
        // the view itself is (ld == n, which mo_fft's full views are).
        if (m.ld() == n) {
          detail::gather_tile(I.raw(), m.row(0).raw(), lo, hi,
                              [n](std::uint64_t z) {
                                return util::interleave_bits(z % n, z / n);
                              });
          return;
        }
      }
    }
    for (std::uint64_t z = lo; z < hi; ++z) {
      const std::uint64_t i = z / n, j = z % n;
      m.store(i, j, I.load(util::interleave_bits(j, i)));
    }
  });
}

// ---------------------------------------------------------------------------
// Baselines for bench_mt.
// ---------------------------------------------------------------------------

/// Naive parallel transposition: out[i][j] = a[j][i] by rows.  Strided reads
/// incur Theta(n^2) misses per level when n exceeds the cache (no B_i
/// divisor) -- the curve MO-MT is compared against.
template <class Exec, class Ref>
void naive_transpose(Exec& ex, Ref a, Ref out, std::uint64_t n) {
  using T = typename Ref::value_type;
  constexpr std::uint64_t W = (sizeof(T) + 7) / 8;
  ex.cgc_pfor(0, n * n, W, [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t z = lo; z < hi; ++z) {
      const std::uint64_t i = z / n, j = z % n;
      out.store(z, a.load(j * n + i));
    }
  });
}

/// Parallelized recursive cache-oblivious transposition [1]: optimal misses
/// but Theta(log n) critical pathlength (the span comparison of Theorem 1).
/// Scheduled under SB: each recursive quadrant pair is a space-bounded fork.
template <class Exec, class Ref>
void recursive_transpose_helper(Exec& ex, sched::MatView<Ref> src,
                                sched::MatView<Ref> dst) {
  using T = typename Ref::value_type;
  const std::uint64_t r = src.rows(), c = src.cols();
  if (r * c <= 64) {
    for (std::uint64_t i = 0; i < r; ++i) {
      for (std::uint64_t j = 0; j < c; ++j) {
        dst.store(j, i, src.load(i, j));
      }
    }
    return;
  }
  const std::uint64_t space = 2 * (r / 2) * (c / 2) * ((sizeof(T) + 7) / 8);
  if (r >= c) {
    auto top = src.sub(0, 0, r / 2, c);
    auto bot = src.sub(r / 2, 0, r - r / 2, c);
    ex.sb_parallel2(
        space, [&] { recursive_transpose_helper(ex, top,
                                                dst.sub(0, 0, c, r / 2)); },
        space, [&] {
          recursive_transpose_helper(ex, bot, dst.sub(0, r / 2, c, r - r / 2));
        });
  } else {
    auto left = src.sub(0, 0, r, c / 2);
    auto right = src.sub(0, c / 2, r, c - c / 2);
    ex.sb_parallel2(
        space, [&] { recursive_transpose_helper(ex, left,
                                                dst.sub(0, 0, c / 2, r)); },
        space, [&] {
          recursive_transpose_helper(ex, right, dst.sub(c / 2, 0, c - c / 2, r));
        });
  }
}

template <class Exec, class Ref>
void recursive_transpose(Exec& ex, Ref a, Ref out, std::uint64_t n) {
  recursive_transpose_helper(ex, sched::MatView<Ref>::full(a, n, n),
                             sched::MatView<Ref>::full(out, n, n));
}

}  // namespace obliv::algo
