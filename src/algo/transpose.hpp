// MO-MT: multicore-oblivious matrix transposition (paper, Figure 2 and
// Theorem 1), plus the baselines it is compared against.
//
// MO-MT routes the transposition through an intermediate array I laid out in
// bit-interleaved (Z-Morton) order:
//
//   step 1 [CGC]:  I[z]           := A[beta^{-1}(z)]   (Morton gather)
//   step 2 [CGC]:  A^T[i*n + j]   := I[beta(j, i)]     (Morton scatter)
//
// Both steps are flat CGC pfors with O(1) work per index, so the critical
// pathlength is the CGC minimum-segment bound O(B_1) -- constant in n --
// which a parallelization of the recursive cache-oblivious transposition
// cannot achieve (it needs Theta(log n) depth).  Per Theorem 1 the level-i
// cache misses are O(n^2/(q_i B_i) + B_i) given tall caches.
#pragma once

#include <cassert>
#include <cstdint>

#include "sched/views.hpp"
#include "util/bits.hpp"

namespace obliv::algo {

/// MO-MT.  `a` is an n x n row-major input, `out` receives the transpose
/// (row-major).  n must be a power of two (the bit-interleaving map requires
/// equal index widths).  Space bound: 3 n^2.
template <class Exec, class Ref>
void mo_transpose(Exec& ex, Ref a, Ref out, std::uint64_t n) {
  assert(util::is_pow2(n));
  assert(a.size() >= n * n && out.size() >= n * n);
  using T = typename Ref::value_type;
  constexpr std::uint64_t W = (sizeof(T) + 7) / 8;

  auto ibuf = ex.template make_buf<T>(n * n);
  auto I = ibuf.ref();

  // Step 1 [CGC]: gather A into bit-interleaved order.
  ex.cgc_pfor(0, n * n, W, [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t z = lo; z < hi; ++z) {
      const auto [i, j] = util::deinterleave_bits(z);
      I.store(z, a.load(i * n + j));
    }
  });

  // Step 2 [CGC]: scatter out of bit-interleaved order, transposed.
  ex.cgc_pfor(0, n * n, W, [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t z = lo; z < hi; ++z) {
      const std::uint64_t i = z / n, j = z % n;
      out.store(z, I.load(util::interleave_bits(j, i)));
    }
  });
}

/// In-place transposition of a square MatView via MO-MT semantics is not
/// needed by MO-FFT; MO-FFT transposes the full backing matrix.  This
/// overload transposes view `m` (must be square, power-of-two side, and
/// contiguous: ld == cols) into itself using a scratch buffer.
template <class Exec, class Ref>
void mo_transpose_inplace(Exec& ex, sched::MatView<Ref> m) {
  const std::uint64_t n = m.rows();
  assert(m.cols() == n && util::is_pow2(n));
  using T = typename Ref::value_type;
  constexpr std::uint64_t W = (sizeof(T) + 7) / 8;

  auto ibuf = ex.template make_buf<T>(n * n);
  auto I = ibuf.ref();

  ex.cgc_pfor(0, n * n, W, [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t z = lo; z < hi; ++z) {
      const auto [i, j] = util::deinterleave_bits(z);
      I.store(z, m.load(i, j));
    }
  });
  ex.cgc_pfor(0, n * n, W, [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t z = lo; z < hi; ++z) {
      const std::uint64_t i = z / n, j = z % n;
      m.store(i, j, I.load(util::interleave_bits(j, i)));
    }
  });
}

// ---------------------------------------------------------------------------
// Baselines for bench_mt.
// ---------------------------------------------------------------------------

/// Naive parallel transposition: out[i][j] = a[j][i] by rows.  Strided reads
/// incur Theta(n^2) misses per level when n exceeds the cache (no B_i
/// divisor) -- the curve MO-MT is compared against.
template <class Exec, class Ref>
void naive_transpose(Exec& ex, Ref a, Ref out, std::uint64_t n) {
  using T = typename Ref::value_type;
  constexpr std::uint64_t W = (sizeof(T) + 7) / 8;
  ex.cgc_pfor(0, n * n, W, [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t z = lo; z < hi; ++z) {
      const std::uint64_t i = z / n, j = z % n;
      out.store(z, a.load(j * n + i));
    }
  });
}

/// Parallelized recursive cache-oblivious transposition [1]: optimal misses
/// but Theta(log n) critical pathlength (the span comparison of Theorem 1).
/// Scheduled under SB: each recursive quadrant pair is a space-bounded fork.
template <class Exec, class Ref>
void recursive_transpose_helper(Exec& ex, sched::MatView<Ref> src,
                                sched::MatView<Ref> dst) {
  using T = typename Ref::value_type;
  const std::uint64_t r = src.rows(), c = src.cols();
  if (r * c <= 64) {
    for (std::uint64_t i = 0; i < r; ++i) {
      for (std::uint64_t j = 0; j < c; ++j) {
        dst.store(j, i, src.load(i, j));
      }
    }
    return;
  }
  const std::uint64_t space = 2 * (r / 2) * (c / 2) * ((sizeof(T) + 7) / 8);
  if (r >= c) {
    auto top = src.sub(0, 0, r / 2, c);
    auto bot = src.sub(r / 2, 0, r - r / 2, c);
    ex.sb_parallel2(
        space, [&] { recursive_transpose_helper(ex, top,
                                                dst.sub(0, 0, c, r / 2)); },
        space, [&] {
          recursive_transpose_helper(ex, bot, dst.sub(0, r / 2, c, r - r / 2));
        });
  } else {
    auto left = src.sub(0, 0, r, c / 2);
    auto right = src.sub(0, c / 2, r, c - c / 2);
    ex.sb_parallel2(
        space, [&] { recursive_transpose_helper(ex, left,
                                                dst.sub(0, 0, c / 2, r)); },
        space, [&] {
          recursive_transpose_helper(ex, right, dst.sub(c / 2, 0, c - c / 2, r));
        });
  }
}

template <class Exec, class Ref>
void recursive_transpose(Exec& ex, Ref a, Ref out, std::uint64_t n) {
  recursive_transpose_helper(ex, sched::MatView<Ref>::full(a, n, n),
                             sched::MatView<Ref>::full(out, n, n));
}

}  // namespace obliv::algo
