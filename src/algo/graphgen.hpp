// Workload generators for the SpM-DV and graph experiments: sparse matrices
// whose support graphs satisfy edge separator theorems, and the separator
// tree reordering Theorem 4 assumes.
//
//   * 2-D grid (mesh) graphs satisfy an n^(1/2)-edge separator theorem
//     (eps = 1/2), with the separator realized by alternating-axis geometric
//     bisection -- the same recursive cuts define the separator-tree order.
//   * Trees satisfy an O(1)-edge separator theorem via centroid edges
//     (eps = 0); we implement centroid-edge decomposition for the order.
//   * A random (expander-like) matrix deliberately violates every separator
//     theorem -- the negative control for the Theorem 4 bench.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "algo/spmdv.hpp"
#include "util/rng.hpp"

namespace obliv::algo {

/// Assembles a SparseMatrix from (row, col, val) triples (duplicates summed).
inline SparseMatrix matrix_from_triples(
    std::uint64_t n, std::vector<std::tuple<std::uint64_t, std::uint64_t,
                                            double>> triples) {
  std::sort(triples.begin(), triples.end(),
            [](const auto& a, const auto& b) {
              return std::make_pair(std::get<0>(a), std::get<1>(a)) <
                     std::make_pair(std::get<0>(b), std::get<1>(b));
            });
  SparseMatrix m;
  m.n = n;
  m.a0.assign(n + 1, 0);
  for (std::size_t t = 0; t < triples.size(); ++t) {
    const auto& [i, j, v] = triples[t];
    const bool dup = t > 0 && std::get<0>(triples[t - 1]) == i &&
                     std::get<1>(triples[t - 1]) == j;
    if (dup) {
      m.av.back().val += v;
    } else {
      m.av.push_back(SpmEntry{j, v});
      m.a0[i + 1]++;
    }
  }
  for (std::uint64_t i = 0; i < n; ++i) m.a0[i + 1] += m.a0[i];
  return m;
}

/// Applies permutation `order` (order[new_index] = old_index) to rows and
/// columns of `m` symmetrically.
inline SparseMatrix permute_matrix(const SparseMatrix& m,
                                   const std::vector<std::uint64_t>& order) {
  std::vector<std::uint64_t> inv(m.n);
  for (std::uint64_t p = 0; p < m.n; ++p) inv[order[p]] = p;
  std::vector<std::tuple<std::uint64_t, std::uint64_t, double>> triples;
  triples.reserve(m.nnz());
  for (std::uint64_t i = 0; i < m.n; ++i) {
    for (std::uint64_t t = m.a0[i]; t < m.a0[i + 1]; ++t) {
      triples.emplace_back(inv[i], inv[m.av[t].col], m.av[t].val);
    }
  }
  return matrix_from_triples(m.n, std::move(triples));
}

// ---------------------------------------------------------------------------
// 2-D grid graphs (eps = 1/2).
// ---------------------------------------------------------------------------

/// side x side 5-point mesh: diagonal plus 4-neighbor couplings, random
/// values.  Vertex id = r * side + c (row-major).
inline SparseMatrix grid_matrix(std::uint64_t side, std::uint64_t seed = 1) {
  util::Xoshiro256 rng(seed);
  const std::uint64_t n = side * side;
  std::vector<std::tuple<std::uint64_t, std::uint64_t, double>> triples;
  triples.reserve(5 * n);
  for (std::uint64_t r = 0; r < side; ++r) {
    for (std::uint64_t c = 0; c < side; ++c) {
      const std::uint64_t u = r * side + c;
      triples.emplace_back(u, u, 4.0 + rng.uniform());
      auto couple = [&](std::uint64_t v) {
        const double w = -1.0 + 0.1 * rng.uniform();
        triples.emplace_back(u, v, w);
      };
      if (r + 1 < side) couple((r + 1) * side + c);
      if (r > 0) couple((r - 1) * side + c);
      if (c + 1 < side) couple(r * side + c + 1);
      if (c > 0) couple(r * side + c - 1);
    }
  }
  return matrix_from_triples(n, std::move(triples));
}

namespace detail {

inline void grid_bisect(std::uint64_t side, std::uint64_t r0, std::uint64_t c0,
                        std::uint64_t h, std::uint64_t w,
                        std::vector<std::uint64_t>& out) {
  if (h == 0 || w == 0) return;
  if (h * w == 1) {
    out.push_back(r0 * side + c0);
    return;
  }
  // Cut the longer axis: the crossing edges number min(h, w) <= sqrt(area),
  // realizing the n^(1/2)-edge separator theorem.
  if (h >= w) {
    grid_bisect(side, r0, c0, h / 2, w, out);
    grid_bisect(side, r0 + h / 2, c0, h - h / 2, w, out);
  } else {
    grid_bisect(side, r0, c0, h, w / 2, out);
    grid_bisect(side, r0, c0 + w / 2, h, w - w / 2, out);
  }
}

}  // namespace detail

/// Separator-tree (recursive geometric bisection) vertex order for the grid:
/// order[new_index] = old (row-major) vertex id.
inline std::vector<std::uint64_t> grid_separator_order(std::uint64_t side) {
  std::vector<std::uint64_t> out;
  out.reserve(side * side);
  detail::grid_bisect(side, 0, 0, side, side, out);
  return out;
}

/// grid_matrix reordered by its separator tree -- the Theorem 4 input.
inline SparseMatrix grid_matrix_reordered(std::uint64_t side,
                                          std::uint64_t seed = 1) {
  return permute_matrix(grid_matrix(side, seed), grid_separator_order(side));
}

// ---------------------------------------------------------------------------
// Random trees (eps = 0: O(1) edge separators via centroid edges).
// ---------------------------------------------------------------------------

/// Random tree on n vertices (random attachment), as adjacency + diagonal.
inline SparseMatrix tree_matrix(std::uint64_t n, std::uint64_t seed = 1,
                                std::vector<std::uint64_t>* parent_out =
                                    nullptr) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> parent(n, 0);
  std::vector<std::tuple<std::uint64_t, std::uint64_t, double>> triples;
  triples.reserve(3 * n);
  for (std::uint64_t u = 0; u < n; ++u) {
    triples.emplace_back(u, u, 2.0 + rng.uniform());
    if (u == 0) continue;
    const std::uint64_t p = rng.below(u);
    parent[u] = p;
    const double w = -0.5 + 0.1 * rng.uniform();
    triples.emplace_back(u, p, w);
    triples.emplace_back(p, u, w);
  }
  if (parent_out) *parent_out = std::move(parent);
  return matrix_from_triples(n, std::move(triples));
}

namespace detail {

struct TreeSep {
  const std::vector<std::vector<std::uint32_t>>& adj;
  std::vector<char> removed;
  std::vector<std::uint32_t> size;
  std::vector<std::uint64_t> out;

  std::uint32_t compute_sizes(std::uint32_t u, std::uint32_t parent) {
    std::uint32_t s = 1;
    for (std::uint32_t v : adj[u]) {
      if (v == parent || removed[v]) continue;
      s += compute_sizes(v, u);
    }
    size[u] = s;
    return s;
  }

  /// Finds the centroid of the component containing u.
  std::uint32_t centroid(std::uint32_t u) {
    const std::uint32_t total = compute_sizes(u, u);
    std::uint32_t cur = u, parent = u;
    for (;;) {
      std::uint32_t heavy = cur;
      for (std::uint32_t v : adj[cur]) {
        if (v == parent || removed[v]) continue;
        if (size[v] * 2 > total) {
          heavy = v;
          break;
        }
      }
      if (heavy == cur) return cur;
      parent = cur;
      cur = heavy;
    }
  }

  void decompose(std::uint32_t u) {
    const std::uint32_t c = centroid(u);
    // Emit the centroid's subcomponents contiguously; the centroid itself
    // separates them with O(deg) = separator edges.
    removed[c] = 1;
    out.push_back(c);
    for (std::uint32_t v : adj[c]) {
      if (!removed[v]) decompose(v);
    }
  }
};

}  // namespace detail

/// Centroid-decomposition vertex order for a tree given parent links.
inline std::vector<std::uint64_t> tree_separator_order(
    const std::vector<std::uint64_t>& parent) {
  const std::uint64_t n = parent.size();
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (std::uint64_t u = 1; u < n; ++u) {
    adj[u].push_back(static_cast<std::uint32_t>(parent[u]));
    adj[parent[u]].push_back(static_cast<std::uint32_t>(u));
  }
  detail::TreeSep sep{adj, std::vector<char>(n, 0),
                      std::vector<std::uint32_t>(n, 0), {}};
  sep.out.reserve(n);
  if (n > 0) sep.decompose(0);
  return sep.out;
}

/// tree_matrix reordered by centroid decomposition.
inline SparseMatrix tree_matrix_reordered(std::uint64_t n,
                                          std::uint64_t seed = 1) {
  std::vector<std::uint64_t> parent;
  SparseMatrix m = tree_matrix(n, seed, &parent);
  return permute_matrix(m, tree_separator_order(parent));
}

// ---------------------------------------------------------------------------
// Negative control: random sparse matrix (no separator structure).
// ---------------------------------------------------------------------------

/// n x n matrix with `per_row` uniformly random off-diagonals per row plus
/// the diagonal: support graph is expander-like, violating every
/// n^eps-separator theorem with eps < 1.
inline SparseMatrix random_matrix(std::uint64_t n, std::uint64_t per_row = 4,
                                  std::uint64_t seed = 1) {
  util::Xoshiro256 rng(seed);
  std::vector<std::tuple<std::uint64_t, std::uint64_t, double>> triples;
  triples.reserve(n * (per_row + 1));
  for (std::uint64_t i = 0; i < n; ++i) {
    triples.emplace_back(i, i, 4.0);
    for (std::uint64_t t = 0; t < per_row; ++t) {
      std::uint64_t j = rng.below(n);
      triples.emplace_back(i, j, rng.uniform() - 0.5);
    }
  }
  return matrix_from_triples(n, std::move(triples));
}

}  // namespace obliv::algo
