// SPMS-structure sorting (paper, Section III-C and Theorem 3).
//
// The paper schedules SPMS (Sample-Partition-Merge Sort of Cole &
// Ramachandran [15]) with the same hint pattern as MO-FFT: an original
// problem of size n is decomposed by a constant number of CGC-scheduled
// "BP" computations (prefix sums, gathers, scatters) into ~sqrt(n)
// independent subproblems, and solved by two rounds of CGC=>SB recursion on
// subproblems of size ~sqrt(n).
//
// We implement that exact structure:
//   round 1 [CGC=>SB]: sort ceil(n/c) chunks of size c = ceil(sqrt(n));
//   BP [CGC]: regular sampling (a constant number of samples per chunk),
//             one recursive sort of the Theta(sqrt n) sample, splitter
//             selection, per-chunk merge-scan bucket counting, a prefix-sum
//             over the count matrix, and a scatter;
//   round 2 [CGC=>SB]: sort each bucket.
//
// Substitution note (DESIGN.md): true SPMS guarantees Theta(sqrt n) buckets
// deterministically via a more intricate sample-merge step ([15] was
// unpublished at the paper's writing).  Regular sampling gives the same
// guarantee with high probability on non-adversarial inputs -- which is what
// the Theorem 3 bench sweeps use -- while correctness here is unconditional
// (oversized buckets simply recurse further).
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "algo/scan.hpp"
#include "sched/hints.hpp"
#include "util/bits.hpp"
#include "util/simd.hpp"

namespace obliv::algo {

namespace detail {

constexpr std::uint64_t kSortBase = 64;
constexpr std::uint64_t kSamplesPerChunk = 4;

/// Native refs over trivially-copyable keys may take the partition-rank /
/// bulk-copy leaves (binary searches on the already-sorted chunks replace
/// the merge-scan; both produce identical counts and a stable scatter).
template <class Ref>
inline constexpr bool sort_kernel_v =
    sched::is_direct_ref_v<Ref> &&
    std::is_trivially_copyable_v<typename Ref::value_type>;

/// Constant-size base case: load, sort locally, store.
template <class Exec, class Ref>
void sort_base(Exec& ex, Ref v) {
  using T = typename Ref::value_type;
  const std::uint64_t n = v.size();
  assert(n <= kSortBase);
  T local[kSortBase];
  // Batched runs: the loads (and the stores) are back-to-back accesses to
  // consecutive elements, the exact shape load_run/store_run collapse.
  v.load_run(0, n, local);
  std::sort(local, local + n);
  ex.tick(n * (util::ilog2(n | 1) + 1));
  v.store_run(0, n, local);
}

}  // namespace detail

template <class Exec, class Ref>
void mergesort_baseline(Exec& ex, Ref v);

/// SPMS-structure multicore-oblivious sort (ascending, by operator<).
/// In-place on `v`.  Space bound: O(n) auxiliary (output + count matrix).
template <class Exec, class Ref>
void spms_sort(Exec& ex, Ref v) {
  using T = typename Ref::value_type;
  constexpr std::uint64_t W = (sizeof(T) + 7) / 8;
  const std::uint64_t n = v.size();
  if (n <= detail::kSortBase) {
    detail::sort_base(ex, v);
    return;
  }

  // Chunk geometry: k chunks of size c ~ sqrt(n).
  const std::uint64_t c = static_cast<std::uint64_t>(std::max<double>(
      2.0, std::ceil(std::sqrt(static_cast<double>(n)))));
  const std::uint64_t k = util::ceil_div(n, c);
  auto chunk_lo = [&](std::uint64_t i) { return i * c; };
  auto chunk_len = [&](std::uint64_t i) {
    return std::min(c, n - i * c);
  };

  // ---- Round 1 [CGC=>SB]: sort each chunk recursively. ----
  ex.cgc_sb_pfor(k, 2 * c * W, [&](std::uint64_t i) {
    spms_sort(ex, v.slice(chunk_lo(i), chunk_len(i)));
  });

  // ---- BP step A [CGC]: regular sampling, constant samples per chunk. ----
  const std::uint64_t spc =
      std::min<std::uint64_t>(detail::kSamplesPerChunk, c);
  const std::uint64_t m = k * spc;
  auto sample_buf = ex.template make_buf<T>(m);
  auto samples = sample_buf.ref();
  ex.cgc_pfor_each(0, m, W, [&](std::uint64_t s) {
    const std::uint64_t i = s / spc, j = s % spc;
    const std::uint64_t len = chunk_len(i);
    // Evenly spaced positions within the sorted chunk.
    const std::uint64_t pos = (j * len + len / 2) / spc;
    samples.store(s, v.load(chunk_lo(i) + std::min(pos, len - 1)));
  });

  // ---- Recursive sample sort (size Theta(sqrt n)). ----
  spms_sort(ex, samples);

  // ---- BP step B [CGC]: splitters = every (m/k)-th sample. ----
  const std::uint64_t nbuckets = k;
  auto splitter_buf = ex.template make_buf<T>(nbuckets - 1);
  auto splitters = splitter_buf.ref();
  ex.cgc_pfor_each(0, nbuckets - 1, W, [&](std::uint64_t b) {
    splitters.store(b, samples.load(((b + 1) * m) / nbuckets));
  });

  // ---- BP step C [CGC]: per-chunk merge-scan bucket counting. ----
  auto counts_buf = ex.template make_buf<std::uint64_t>(k * nbuckets);
  auto counts = counts_buf.ref();
  ex.cgc_pfor(0, k * nbuckets, 1,
              [&](std::uint64_t lo, std::uint64_t hi) {
                for (std::uint64_t z = lo; z < hi; ++z) counts.store(z, 0);
              });
  ex.cgc_pfor_each(0, k, c * W, [&](std::uint64_t i) {
    if constexpr (detail::sort_kernel_v<Ref> &&
                  sched::is_direct_ref_v<decltype(splitters)>) {
      // Size floor: nbuckets lower_bounds only beat one linear merge-scan
      // when buckets average at least a lane stride of elements.  In the
      // balanced sqrt(n) geometry (nbuckets ~ chunk len) they do not, and
      // the generic scan is the faster leaf.  The rule is size-based and
      // mode-independent, so counts are identical either way.
      if (simd::use_kernels() &&
          chunk_len(i) >= nbuckets * simd::kMaxLaneWords) {
        // Partition-rank scan: the chunk is sorted (round 1), so bucket b
        // holds rank(splitter[b]) - rank(splitter[b-1]) elements, where
        // rank is lower_bound -- the same `e < splitter` predicate the
        // merge-scan below advances on.
        const T* ch = v.raw() + chunk_lo(i);
        const std::uint64_t len = chunk_len(i);
        const T* sp = splitters.raw();
        std::uint64_t prev = 0;
        for (std::uint64_t b = 0; b + 1 < nbuckets; ++b) {
          const std::uint64_t r = static_cast<std::uint64_t>(
              std::lower_bound(ch + prev, ch + len, sp[b]) - ch);
          counts.store(i * nbuckets + b, r - prev);
          prev = r;
        }
        counts.store(i * nbuckets + (nbuckets - 1), len - prev);
        return;
      }
    }
    std::uint64_t b = 0;
    std::uint64_t run = 0;
    T next_split = b + 1 < nbuckets ? splitters.load(b) : T{};
    const std::uint64_t len = chunk_len(i);
    for (std::uint64_t t = 0; t < len; ++t) {
      const T e = v.load(chunk_lo(i) + t);
      while (b + 1 < nbuckets && !(e < next_split)) {
        counts.update(i * nbuckets + b, [&](std::uint64_t& x) { x += run; });
        run = 0;
        ++b;
        if (b + 1 < nbuckets) next_split = splitters.load(b);
      }
      ++run;
    }
    counts.update(i * nbuckets + b, [&](std::uint64_t& x) { x += run; });
  });

  // ---- BP step D [CGC]: bucket-major offsets via prefix sum. ----
  auto flat_buf = ex.template make_buf<std::uint64_t>(k * nbuckets);
  auto flat = flat_buf.ref();
  ex.cgc_pfor(0, k * nbuckets, 1, [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t z = lo; z < hi; ++z) {
      const std::uint64_t b = z / k, i = z % k;
      flat.store(z, counts.load(i * nbuckets + b));
    }
  });
  mo_prefix_sum(ex, flat);  // inclusive; start(b,i) = flat[b*k+i] - count

  // ---- BP step E [CGC]: scatter chunks into bucketed output. ----
  auto out_buf = ex.template make_buf<T>(n);
  auto out = out_buf.ref();
  ex.cgc_pfor_each(0, k, c * W, [&](std::uint64_t i) {
    if constexpr (detail::sort_kernel_v<Ref> &&
                  sched::is_direct_ref_v<decltype(splitters)> &&
                  sched::is_direct_ref_v<decltype(out)>) {
      // Same size floor as step C: bulk copies of ~1-element runs lose to
      // the cursor loop; placement is identical either way.
      if (simd::use_kernels() &&
          chunk_len(i) >= nbuckets * simd::kMaxLaneWords) {
        // Bulk scatter: each bucket's share of the sorted chunk is one
        // contiguous run; move it with a single copy (stable, identical
        // placement to the cursor loop below).
        const T* ch = v.raw() + chunk_lo(i);
        T* op = out.raw();
        const std::uint64_t len = chunk_len(i);
        const T* sp = splitters.raw();
        std::uint64_t prev = 0;
        for (std::uint64_t b = 0; b < nbuckets && prev < len; ++b) {
          const std::uint64_t r =
              b + 1 < nbuckets
                  ? static_cast<std::uint64_t>(
                        std::lower_bound(ch + prev, ch + len, sp[b]) - ch)
                  : len;
          if (r > prev) {
            const std::uint64_t start =
                flat.load(b * k + i) - counts.load(i * nbuckets + b);
            simd::copy_elems(ch + prev, op + start, r - prev);
            prev = r;
          }
        }
        return;
      }
    }
    std::uint64_t b = 0;
    T next_split = b + 1 < nbuckets ? splitters.load(b) : T{};
    const std::uint64_t len = chunk_len(i);
    std::uint64_t pos = 0;  // running output cursor within current bucket
    bool pos_valid = false;
    for (std::uint64_t t = 0; t < len; ++t) {
      const T e = v.load(chunk_lo(i) + t);
      while (b + 1 < nbuckets && !(e < next_split)) {
        ++b;
        pos_valid = false;
        if (b + 1 < nbuckets) next_split = splitters.load(b);
      }
      if (!pos_valid) {
        const std::uint64_t z = b * k + i;
        pos = flat.load(z) - counts.load(i * nbuckets + b);
        pos_valid = true;
      }
      out.store(pos++, e);
    }
  });

  // ---- Round 2 [CGC=>SB]: sort each bucket. ----
  // Bucket b occupies [flat[b*k + k-1] - size_b, flat[b*k + k-1]).
  // Space bound: buckets are Theta(sqrt n) w.h.p.; pass the observed max so
  // the scheduler anchors correctly even on skewed inputs.
  std::vector<std::uint64_t> bucket_hi(nbuckets), bucket_lo(nbuckets);
  {
    std::uint64_t prev = 0;
    for (std::uint64_t b = 0; b < nbuckets; ++b) {
      const std::uint64_t hi = flat.load(b * k + (k - 1));
      bucket_lo[b] = prev;
      bucket_hi[b] = hi;
      prev = hi;
    }
  }
  std::uint64_t max_bucket = 1;
  for (std::uint64_t b = 0; b < nbuckets; ++b) {
    max_bucket = std::max(max_bucket, bucket_hi[b] - bucket_lo[b]);
  }
  ex.cgc_sb_pfor(nbuckets, 2 * max_bucket * W, [&](std::uint64_t b) {
    const std::uint64_t lo = bucket_lo[b], hi = bucket_hi[b];
    if (hi <= lo) return;
    if (hi - lo == n) {
      // Degenerate splitters (heavy key duplication) put everything in one
      // bucket; recursing would not shrink the problem.  The data is a
      // concatenation of sorted chunks -- merge them instead.
      mergesort_baseline(ex, out.slice(lo, hi - lo));
    } else {
      spms_sort(ex, out.slice(lo, hi - lo));
    }
  });

  // ---- Copy back [CGC]. ----
  ex.cgc_pfor(0, n, W, [&](std::uint64_t lo, std::uint64_t hi) {
    ex.copy(v.slice(lo, hi - lo), out.slice(lo, hi - lo));
  });
}

// ---------------------------------------------------------------------------
// Baseline: binary mergesort under SB (optimal work, Theta((n/B) log(n/C))
// misses -- log base 2 instead of base C -- and a sequential final merge).
// ---------------------------------------------------------------------------

namespace detail {

template <class Exec, class Ref>
void merge_into(Exec& ex, Ref a, Ref b, Ref out) {
  using T = typename Ref::value_type;
  std::uint64_t i = 0, j = 0, o = 0;
  const std::uint64_t na = a.size(), nb = b.size();
  while (i < na && j < nb) {
    const T x = a.load(i), y = b.load(j);
    if (y < x) {
      out.store(o++, y);
      ++j;
    } else {
      out.store(o++, x);
      ++i;
    }
  }
  if constexpr (sort_kernel_v<Ref>) {
    if (simd::use_kernels()) {
      // Bulk-drain the exhausted side's remainder.
      if (i < na) simd::copy_elems(a.raw() + i, out.raw() + o, na - i);
      if (j < nb) simd::copy_elems(b.raw() + j, out.raw() + o, nb - j);
      (void)ex;
      return;
    }
  }
  while (i < na) out.store(o++, a.load(i++));
  while (j < nb) out.store(o++, b.load(j++));
  (void)ex;
}

template <class Exec, class Ref>
void mergesort_rec(Exec& ex, Ref v, Ref tmp) {
  using T = typename Ref::value_type;
  constexpr std::uint64_t W = (sizeof(T) + 7) / 8;
  const std::uint64_t n = v.size();
  if (n <= kSortBase) {
    sort_base(ex, v);
    return;
  }
  const std::uint64_t half = n / 2;
  ex.sb_parallel2(
      2 * half * W, [&] { mergesort_rec(ex, v.slice(0, half),
                                        tmp.slice(0, half)); },
      2 * (n - half) * W, [&] {
        mergesort_rec(ex, v.slice(half, n - half), tmp.slice(half, n - half));
      });
  merge_into(ex, v.slice(0, half), v.slice(half, n - half), tmp);
  ex.cgc_pfor(0, n, W, [&](std::uint64_t lo, std::uint64_t hi) {
    ex.copy(v.slice(lo, hi - lo), tmp.slice(lo, hi - lo));
  });
}

}  // namespace detail

/// Binary mergesort baseline (for bench_sort comparisons).
template <class Exec, class Ref>
void mergesort_baseline(Exec& ex, Ref v) {
  using T = typename Ref::value_type;
  auto tmp = ex.template make_buf<T>(v.size());
  detail::mergesort_rec(ex, v, tmp.ref());
}

}  // namespace obliv::algo
