// The Gaussian Elimination Paradigm (GEP) and its cache-oblivious recursive
// implementation I-GEP under the SB scheduler (paper, Section V, Figure 5,
// the appendix pseudocode, and Theorem 5).
//
// GEP is the triple loop of Figure 5: for each update triple <i,j,k> in
// Sigma_f (in k-major order), x[i,j] <- f(x[i,j], x[i,k], x[k,j], x[k,k]).
// Instances include Floyd-Warshall APSP, Gaussian elimination / LU without
// pivoting, and matrix multiplication.
//
// I-GEP solves the same problem with four mutually recursive functions
// A, B, C, D that differ in how much the parameter matrices
// X = x[I,J], U = x[I,K], V = x[K,J], W = x[K,K] overlap:
//   A: I = J = K (all overlap)    B: K = I    C: K = J    D: all disjoint.
// The less the overlap, the more recursive calls can run in parallel.  Every
// recursive call is annotated with its space bound (S_A(m) = m^2,
// S_B = S_C = 2 m^2, S_D = 4 m^2) and forked under the SB hint, which is
// what Theorem 5 requires: O(n^3/(q_i B_i sqrt(C_i))) level-i misses and
// O(n^3/p) parallel steps.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sched/hints.hpp"
#include "sched/views.hpp"
#include "util/simd.hpp"

namespace obliv::algo {

/// Half-open index interval [lo, hi).
struct Interval {
  std::uint64_t lo = 0, hi = 0;
  std::uint64_t len() const { return hi - lo; }
  Interval low_half() const { return {lo, lo + len() / 2}; }
  Interval high_half() const { return {lo + len() / 2, hi}; }
  bool operator==(const Interval&) const = default;
};

// A GEP instance supplies:
//   using value_type = T;
//   static T f(T y, T u, T v, T w);
//   static bool in_sigma(u64 i, u64 j, u64 k);
//   static bool intersects(Interval I, Interval J, Interval K);
// `intersects` may be conservative (returning true is always safe); exact
// pruning only speeds things up.

/// Floyd-Warshall all-pairs shortest paths: Sigma_f = all triples,
/// f(y,u,v,w) = min(y, u + v).
struct FloydWarshallInstance {
  using value_type = double;
  static double f(double y, double u, double v, double /*w*/) {
    const double cand = u + v;
    return cand < y ? cand : y;
  }
  static bool in_sigma(std::uint64_t, std::uint64_t, std::uint64_t) {
    return true;
  }
  static bool intersects(Interval, Interval, Interval) { return true; }
  // Native row kernel: the j-range of Sigma_f at fixed (i, k), and the
  // vectorized row update over it (y = row i, v = row k, u = x[i][k]).
  static Interval sigma_j(std::uint64_t, std::uint64_t, Interval J) {
    return J;
  }
  static void row_kernel(double* y, const double* v, double u, double /*w*/,
                         std::size_t n) {
    simd::fw_min_f64(y, v, u, n);
  }
};

/// Gaussian elimination / LU decomposition without pivoting:
/// Sigma_f = { <i,j,k> : i > k and j > k }, f(y,u,v,w) = y - (u/w) * v.
struct GaussianInstance {
  using value_type = double;
  static double f(double y, double u, double v, double w) {
    return y - (u / w) * v;
  }
  static bool in_sigma(std::uint64_t i, std::uint64_t j, std::uint64_t k) {
    return i > k && j > k;
  }
  static bool intersects(Interval I, Interval J, Interval K) {
    // exists i in I, j in J, k in K with i > k, j > k.
    return I.hi > K.lo + 1 && J.hi > K.lo + 1;
  }
  static Interval sigma_j(std::uint64_t i, std::uint64_t k, Interval J) {
    if (i <= k) return {J.lo, J.lo};
    return {std::max(J.lo, k + 1), std::max(J.lo, J.hi)};
  }
  static void row_kernel(double* y, const double* v, double u, double w,
                         std::size_t n) {
    // f divides u/w once per row; the generic loop divides per element but
    // with identical operands, so every element's bits match.
    simd::gauss_update_f64(y, v, u / w, n);
  }
};

/// Matrix multiplication embedded in a 2n x 2n GEP matrix laid out as
/// [[ *, B ], [ A, C ]]: updates { i in [n,2n), j in [n,2n), k in [0,n) }
/// with f(y,u,v,w) = y + u * v compute C += A * B.
struct MatMulEmbedInstance {
  using value_type = double;
  // `half` must be set (per run) to n; kept as a static for simplicity --
  // tests set it before running.
  static inline std::uint64_t half = 0;
  static double f(double y, double u, double v, double /*w*/) {
    return y + u * v;
  }
  static bool in_sigma(std::uint64_t i, std::uint64_t j, std::uint64_t k) {
    return i >= half && j >= half && k < half;
  }
  static bool intersects(Interval I, Interval J, Interval K) {
    return I.hi > half && J.hi > half && K.lo < half;
  }
  static Interval sigma_j(std::uint64_t i, std::uint64_t k, Interval J) {
    if (i < half || k >= half) return {J.lo, J.lo};
    return {std::max(J.lo, half), std::max(J.lo, J.hi)};
  }
  static void row_kernel(double* y, const double* v, double u, double /*w*/,
                         std::size_t n) {
    simd::axpy_f64(y, v, u, n);
  }
};

/// Table-I recursive call orders for function D.  Schedule D issues the
/// eight subcalls as two k-major rounds of four; schedule D* permutes the
/// calls *within* each round (each X quadrant still updated exactly once
/// per round, each (quadrant, k) pair exactly once overall) so that
/// consecutive subtasks assigned to the same cache share operand quadrants.
/// Work and depth are identical -- exactly the property the trace analyzer
/// verifies (equal work, equal span) -- only the miss profile differs.
enum class GepSchedule : std::uint8_t { kD, kDstar };

namespace detail {

enum class GepFn : std::uint8_t { kA, kB, kC, kD };

inline GepFn classify(const Interval& I, const Interval& J,
                      const Interval& K) {
  if (I == K && J == K) return GepFn::kA;
  if (K == I) return GepFn::kB;
  if (K == J) return GepFn::kC;
  return GepFn::kD;
}

/// Space bound (in elements == words for double) of a GEP function call on
/// an m x m block, per the appendix: A: m^2, B/C: 2m^2, D: 4m^2.
inline std::uint64_t gep_space(GepFn fn, std::uint64_t m) {
  switch (fn) {
    case GepFn::kA:
      return m * m;
    case GepFn::kB:
    case GepFn::kC:
      return 2 * m * m;
    case GepFn::kD:
      return 4 * m * m;
  }
  return 4 * m * m;
}

/// True when the instance exposes the native row-kernel hooks and the ref is
/// plain double memory -- the only combination the simd leaves may take.
template <class Inst, class Ref>
inline constexpr bool gep_row_kernel_v =
    sched::is_direct_ref_v<Ref> &&
    std::is_same_v<typename Ref::value_type, double> &&
    requires(double* y, const double* v, double u, double w, std::size_t n,
             std::uint64_t i, std::uint64_t k, Interval J) {
      Inst::row_kernel(y, v, u, w, n);
      Inst::sigma_j(i, k, J);
    };

/// Sequential base case: the Figure-5 triple loop restricted to the tile
/// I x J x K.  Equivalent to full recursion for instances satisfying the
/// I-GEP correctness conditions.
template <class Inst, class Ref>
void gep_base(sched::MatView<Ref> x, Interval I, Interval J, Interval K) {
  if constexpr (gep_row_kernel_v<Inst, Ref>) {
    // Gated on vector_active(), not use_kernels(): the row kernels pay an
    // out-of-line dispatch per (k, i) row, which only pays off when real
    // lanes amortize it.  Scalar mode (== an OBLIV_SIMD=OFF build) keeps
    // the generic triple loop -- results are bit-identical either way
    // (same per-element arithmetic and order; goldened in
    // test_simd_kernels.cpp), so this is purely a speed decision.
    if (simd::vector_active()) {
      for (std::uint64_t k = K.lo; k < K.hi; ++k) {
        const double* v = x.row(k).raw();
        for (std::uint64_t i = I.lo; i < I.hi; ++i) {
          const Interval js = Inst::sigma_j(i, k, J);
          if (js.lo >= js.hi) continue;
          double* y = x.row(i).raw();
          auto run = [&](std::uint64_t jlo, std::uint64_t jhi) {
            if (jlo >= jhi) return;
            Inst::row_kernel(y + jlo, v + jlo, x.load(i, k), x.load(k, k),
                             jhi - jlo);
          };
          if (k >= js.lo && k < js.hi) {
            // The j == k store rewrites x[i][k] = u (and x[k][k] = w when
            // i == k), so split the row there and reload the scalars.
            run(js.lo, k);
            x.store(i, k, Inst::f(x.load(i, k), x.load(i, k), x.load(k, k),
                                  x.load(k, k)));
            run(k + 1, js.hi);
          } else {
            run(js.lo, js.hi);
          }
        }
      }
      return;
    }
  }
  for (std::uint64_t k = K.lo; k < K.hi; ++k) {
    for (std::uint64_t i = I.lo; i < I.hi; ++i) {
      for (std::uint64_t j = J.lo; j < J.hi; ++j) {
        if (!Inst::in_sigma(i, j, k)) continue;
        x.store(i, j, Inst::f(x.load(i, j), x.load(i, k), x.load(k, j),
                              x.load(k, k)));
      }
    }
  }
}

/// One child call of the recursion, identified by which half of each of the
/// three intervals it covers (a = X-row half, b = X-column half, c = K half).
struct Child {
  int a, b, c;
};

template <class Inst, class Exec, class Ref>
void gep_rec(Exec& ex, sched::MatView<Ref> x, Interval I, Interval J,
             Interval K, std::uint64_t base_cutoff,
             GepSchedule sched = GepSchedule::kD) {
  if (!Inst::intersects(I, J, K)) return;
  const std::uint64_t m = I.len();
  assert(J.len() == m && K.len() == m);
  if (m <= base_cutoff) {
    gep_base<Inst>(x, I, J, K);
    return;
  }
  const Interval Ih[2] = {I.low_half(), I.high_half()};
  const Interval Jh[2] = {J.low_half(), J.high_half()};
  const Interval Kh[2] = {K.low_half(), K.high_half()};

  auto recurse = [&](Child ch) {
    gep_rec<Inst>(ex, x, Ih[ch.a], Jh[ch.b], Kh[ch.c], base_cutoff, sched);
  };
  auto seq = [&](Child ch) {
    const GepFn fn = classify(Ih[ch.a], Jh[ch.b], Kh[ch.c]);
    ex.sb_seq(gep_space(fn, m / 2), [&, ch] { recurse(ch); });
  };
  auto par = [&](std::initializer_list<Child> children) {
    std::vector<sched::SbTask> tasks;
    for (Child ch : children) {
      const GepFn fn = classify(Ih[ch.a], Jh[ch.b], Kh[ch.c]);
      tasks.push_back(
          sched::SbTask{gep_space(fn, m / 2), [&, ch] { recurse(ch); }});
    }
    ex.sb_parallel(std::move(tasks));
  };

  switch (classify(I, J, K)) {
    case GepFn::kA:
      // Appendix, function A.
      seq({0, 0, 0});
      par({{0, 1, 0}, {1, 0, 0}});
      seq({1, 1, 0});
      seq({1, 1, 1});
      par({{1, 0, 1}, {0, 1, 1}});
      seq({0, 0, 1});
      break;
    case GepFn::kB:
      // Appendix, function B.
      par({{0, 0, 0}, {0, 1, 0}});
      par({{1, 0, 0}, {1, 1, 0}});
      par({{1, 0, 1}, {1, 1, 1}});
      par({{0, 0, 1}, {0, 1, 1}});
      break;
    case GepFn::kC:
      // Appendix, function C.
      par({{0, 0, 0}, {1, 0, 0}});
      par({{0, 1, 0}, {1, 1, 0}});
      par({{0, 1, 1}, {1, 1, 1}});
      par({{0, 0, 1}, {1, 0, 1}});
      break;
    case GepFn::kD:
      // Appendix, function D: two rounds of four parallel calls, in the
      // Table-I order selected by `sched` (D = k-major; D* = the
      // within-round permutation).
      if (sched == GepSchedule::kDstar) {
        par({{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0}});
        par({{0, 0, 1}, {0, 1, 0}, {1, 0, 0}, {1, 1, 1}});
      } else {
        par({{0, 0, 0}, {0, 1, 0}, {1, 0, 0}, {1, 1, 0}});
        par({{0, 0, 1}, {0, 1, 1}, {1, 0, 1}, {1, 1, 1}});
      }
      break;
  }
}

}  // namespace detail

// Re-exported for modules that share the recursion taxonomy (no/ngep.hpp).
using detail::classify;
using detail::GepFn;

/// I-GEP: runs the instance's GEP computation on the n x n matrix viewed by
/// `x` under the SB scheduler.  n must be a power of two.
/// `base_cutoff` is the constant tile side at which recursion bottoms out
/// (any constant preserves obliviousness and the asymptotic bounds).
template <class Inst, class Exec, class Ref>
void igep(Exec& ex, sched::MatView<Ref> x, std::uint64_t base_cutoff = 8,
          GepSchedule sched = GepSchedule::kD) {
  const std::uint64_t n = x.rows();
  assert(x.cols() == n);
  const Interval all{0, n};
  ex.sb_seq(n * n, [&] {
    detail::gep_rec<Inst>(ex, x, all, all, all, base_cutoff, sched);
  });
}

/// Reference: the Figure-5 triple loop, parallelized over rows with CGC (the
/// "classic GEP" baseline: Theta(n^3 / B_i) misses -- no sqrt(C_i) factor).
template <class Inst, class Exec, class Ref>
void gep_loop(Exec& ex, sched::MatView<Ref> x) {
  const std::uint64_t n = x.rows();
  for (std::uint64_t k = 0; k < n; ++k) {
    ex.cgc_pfor_each(0, n, n, [&](std::uint64_t i) {
      for (std::uint64_t j = 0; j < n; ++j) {
        if (!Inst::in_sigma(i, j, k)) continue;
        x.store(i, j, Inst::f(x.load(i, j), x.load(i, k), x.load(k, j),
                              x.load(k, k)));
      }
    });
  }
}

/// Strictly sequential Figure-5 loop on host memory (correctness oracle).
template <class Inst, class T>
void gep_reference(std::vector<T>& x, std::uint64_t n) {
  for (std::uint64_t k = 0; k < n; ++k) {
    for (std::uint64_t i = 0; i < n; ++i) {
      for (std::uint64_t j = 0; j < n; ++j) {
        if (!Inst::in_sigma(i, j, k)) continue;
        x[i * n + j] =
            Inst::f(x[i * n + j], x[i * n + k], x[k * n + j], x[k * n + k]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Matrix multiplication as a direct invocation of I-GEP's function D.
// ---------------------------------------------------------------------------

namespace detail {

template <class Exec, class Ref>
void matmul_rec(Exec& ex, sched::MatView<Ref> c, sched::MatView<Ref> a,
                sched::MatView<Ref> b, std::uint64_t base_cutoff) {
  const std::uint64_t m = c.rows();
  if (m <= base_cutoff) {
    if constexpr (sched::is_direct_ref_v<Ref> &&
                  std::is_same_v<typename Ref::value_type, double>) {
      // vector_active(), not use_kernels(): see gep_base -- the axpy rows
      // only beat the inlined triple loop when lanes are real.
      if (simd::vector_active()) {
        // c is disjoint from a and b, so a(i,k) is loop-invariant per row.
        for (std::uint64_t k = 0; k < m; ++k) {
          const double* bk = b.row(k).raw();
          for (std::uint64_t i = 0; i < m; ++i) {
            simd::axpy_f64(c.row(i).raw(), bk, a.load(i, k), m);
          }
        }
        return;
      }
    }
    for (std::uint64_t k = 0; k < m; ++k) {
      for (std::uint64_t i = 0; i < m; ++i) {
        for (std::uint64_t j = 0; j < m; ++j) {
          c.store(i, j, c.load(i, j) + a.load(i, k) * b.load(k, j));
        }
      }
    }
    return;
  }
  const std::uint64_t space = 4 * (m / 2) * (m / 2);
  auto round = [&](int kq) {
    std::vector<sched::SbTask> tasks;
    for (int i = 0; i < 2; ++i) {
      for (int j = 0; j < 2; ++j) {
        tasks.push_back(sched::SbTask{space, [&, i, j, kq] {
                                        matmul_rec(ex, c.quad(i, j),
                                                   a.quad(i, kq),
                                                   b.quad(kq, j), base_cutoff);
                                      }});
      }
    }
    ex.sb_parallel(std::move(tasks));
  };
  round(0);  // round 1: the four k=low-half products
  round(1);  // round 2: the four k=high-half products
}

}  // namespace detail

/// C += A * B by I-GEP function D (all matrices disjoint), under SB.
/// Same bounds as Theorem 5.
template <class Exec, class Ref>
void mo_matmul(Exec& ex, sched::MatView<Ref> c, sched::MatView<Ref> a,
               sched::MatView<Ref> b, std::uint64_t base_cutoff = 8) {
  const std::uint64_t n = c.rows();
  ex.sb_seq(4 * n * n, [&] { detail::matmul_rec(ex, c, a, b, base_cutoff); });
}

}  // namespace obliv::algo
