// MO-SpM-DV: multicore-oblivious sparse-matrix dense-vector multiplication
// (paper, Figure 4 and Theorem 4).
//
// The matrix is stored in the paper's row-major pair representation:
// A_v is the list of <column, value> pairs in lexicographic <row, column>
// order, and A_0[i] is the offset of row i in A_v (A_0[n] = nnz).
//
// The algorithm recursively halves the row range [k1, k2]; each half is a
// CGC=>SB subtask with space bound S(m) = 4m (its slice of y, A_0, a
// proportional slice of A_v and the x window).  Theorem 4: if A satisfies an
// n^eps-edge separator theorem and is reordered by its separator tree, the
// level-i misses are O((n/q_i)(1/B_i + 1/C_i^(1-eps))) -- i.e. nearly a
// scan, because out-of-window reads of x are bounded by the separator size.
#pragma once

#include <cassert>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "sched/hints.hpp"
#include "util/simd.hpp"

namespace obliv::algo {

/// One stored nonzero: column index and value (the <j, a> pairs of Fig 4).
struct SpmEntry {
  std::uint64_t col;
  double val;
};

/// Host-side sparse matrix in the paper's (A_v, A_0) representation.
struct SparseMatrix {
  std::uint64_t n = 0;
  std::vector<SpmEntry> av;       // nnz entries, row-major
  std::vector<std::uint64_t> a0;  // n + 1 offsets

  std::uint64_t nnz() const { return av.size(); }

  /// Structural sanity: offsets monotone, columns in range and sorted
  /// within each row.
  bool valid() const {
    if (a0.size() != n + 1 || a0[0] != 0 || a0[n] != av.size()) return false;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (a0[i] > a0[i + 1]) return false;
      for (std::uint64_t t = a0[i]; t < a0[i + 1]; ++t) {
        if (av[t].col >= n) return false;
        if (t > a0[i] && av[t - 1].col >= av[t].col) return false;
      }
    }
    return true;
  }
};

namespace detail {

/// Native leaves may take the strided dot kernel: plain-memory refs over the
/// SpmEntry / double layouts.  NOTE: the kernel's 4-accumulator reduction
/// order differs from the serial loop below, so kernel results are
/// bit-identical across kAuto/kScalar but not to the kGeneric path (tests
/// compare spmdv across modes with a tolerance, not bitwise).
template <class EntryRef, class VecRef>
inline constexpr bool spmdv_kernel_v =
    sched::is_direct_ref_v<EntryRef> && sched::is_direct_ref_v<VecRef> &&
    std::is_same_v<typename EntryRef::value_type, SpmEntry> &&
    std::is_same_v<typename VecRef::value_type, double>;

static_assert(sizeof(SpmEntry) == 16, "strided dot assumes 2-word entries");

template <class Exec, class EntryRef, class OffRef, class VecRef>
void spmdv_rec(Exec& ex, EntryRef av, OffRef a0, VecRef x, VecRef y,
               std::uint64_t k1, std::uint64_t k2) {
  if (k1 == k2) {
    // Lines 1-3 of Figure 4: one dot product.
    const std::uint64_t lo = a0.load(k1), hi = a0.load(k1 + 1);
    if constexpr (spmdv_kernel_v<EntryRef, VecRef>) {
      // Size floor: rows shorter than two lane strides (separator-reordered
      // grid rows average ~4 nonzeros) are cheaper in the inline serial
      // loop than through the out-of-line 4-accumulator kernel.  The rule
      // is size-based and mode-independent, so kAuto/kScalar stay
      // bit-identical (short rows: serial order in both; long rows: the
      // shared 4-accumulator order in both).
      if (simd::use_kernels() && hi - lo >= 2 * simd::kMaxLaneWords) {
        const SpmEntry* e = av.raw() + lo;
        y.store(k1,
                simd::dot_strided_f64(&e->col, &e->val, 2, x.raw(), hi - lo));
        return;
      }
    }
    double acc = 0;
    for (std::uint64_t t = lo; t < hi; ++t) {
      const SpmEntry e = av.load(t);
      acc += e.val * x.load(e.col);
      ex.tick(2);
    }
    y.store(k1, acc);
    return;
  }
  const std::uint64_t k = (k1 + k2) / 2;
  // Line 6 [CGC=>SB]: two parallel recursive calls, space bound S(m) = 4m.
  const std::uint64_t m_half = (k2 - k1 + 1 + 1) / 2;
  ex.cgc_sb_pfor(2, 4 * m_half, [&](std::uint64_t which) {
    if (which == 0) {
      spmdv_rec(ex, av, a0, x, y, k1, k);
    } else {
      spmdv_rec(ex, av, a0, x, y, k + 1, k2);
    }
  });
}

}  // namespace detail

/// y = A x via MO-SpM-DV.  `av`, `a0`, `x`, `y` are refs with the layouts of
/// SparseMatrix; n = y.size() rows.
template <class Exec, class EntryRef, class OffRef, class VecRef>
void mo_spmdv(Exec& ex, EntryRef av, OffRef a0, VecRef x, VecRef y) {
  const std::uint64_t n = y.size();
  if (n == 0) return;
  ex.sb_seq(4 * n, [&] { detail::spmdv_rec(ex, av, a0, x, y, 0, n - 1); });
}

/// Baseline: flat CGC row loop, no recursive space-bound anchoring (every
/// row is an L1-anchored segment regardless of locality structure).
template <class Exec, class EntryRef, class OffRef, class VecRef>
void spmdv_flat(Exec& ex, EntryRef av, OffRef a0, VecRef x, VecRef y) {
  const std::uint64_t n = y.size();
  const std::uint64_t avg = n ? (av.size() + n - 1) / n : 1;
  ex.cgc_pfor_each(0, n, 2 * avg + 2, [&](std::uint64_t i) {
    double acc = 0;
    const std::uint64_t lo = a0.load(i), hi = a0.load(i + 1);
    for (std::uint64_t t = lo; t < hi; ++t) {
      const SpmEntry e = av.load(t);
      acc += e.val * x.load(e.col);
      ex.tick(2);
    }
    y.store(i, acc);
  });
}

/// Host reference.
inline std::vector<double> spmdv_reference(const SparseMatrix& a,
                                           const std::vector<double>& x) {
  std::vector<double> y(a.n, 0.0);
  for (std::uint64_t i = 0; i < a.n; ++i) {
    for (std::uint64_t t = a.a0[i]; t < a.a0[i + 1]; ++t) {
      y[i] += a.av[t].val * x[a.av[t].col];
    }
  }
  return y;
}

}  // namespace obliv::algo
