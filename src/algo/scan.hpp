// CGC-scheduled scans (prefix sums) -- Section III-A.
//
// The paper states that scans on an input of size n can be scheduled with
// CGC in O(B_1 log n) parallel steps with Theta(n/(q_i B_i)) level-i cache
// misses (Table II row "Prefix sum").  We implement the classic recursive
// pairwise-contraction scan: each level is one CGC pfor over a geometrically
// shrinking array, so the span telescopes to O((n/p) + B_1 log n) and misses
// to a constant number of scans of n words.
//
// The algorithm is multicore-oblivious: it names no machine parameters;
// chunking is done by the CGC scheduler.
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>

#include "sched/hints.hpp"
#include "util/simd.hpp"

namespace obliv::algo {

/// Tag type for addition, in place of an opaque `a + b` lambda.  Scans and
/// reductions recognize it (is_add_op_v) and replace their native leaf
/// loops with the simd:: pair-sum / expand kernels; any other Op keeps the
/// generic element loop.  Semantically identical to the lambda it replaces.
template <class T>
struct AddOp {
  constexpr T operator()(const T& a, const T& b) const { return a + b; }
};

namespace detail {

template <class Op>
struct is_add_op : std::false_type {};
template <class T>
struct is_add_op<AddOp<T>> : std::true_type {};

/// Native leaves may vectorize iff the ref is plain memory AND the op is
/// the recognized addition tag AND the element type has a kernel.
template <class Ref, class Op>
inline constexpr bool scan_kernel_v =
    sched::is_direct_ref_v<Ref> && is_add_op<Op>::value &&
    (std::is_same_v<typename Ref::value_type, double> ||
     std::is_same_v<typename Ref::value_type, std::uint64_t>);

inline void pair_sum_kernel(const double* s, double* d, std::size_t n) {
  simd::pair_sum_f64(s, d, n);
}
inline void pair_sum_kernel(const std::uint64_t* s, std::uint64_t* d,
                            std::size_t n) {
  simd::pair_sum_u64(s, d, n);
}
inline void scan_expand_kernel(const double* t, double* v, std::size_t lo,
                               std::size_t hi) {
  simd::scan_expand_f64(t, v, lo, hi);
}
inline void scan_expand_kernel(const std::uint64_t* t, std::uint64_t* v,
                               std::size_t lo, std::size_t hi) {
  simd::scan_expand_u64(t, v, lo, hi);
}

}  // namespace detail

/// In-place inclusive scan of `v` under `op` (associative).
/// `scratch` must have size >= v.size() / 2; pass a ref into a buffer
/// allocated from the same executor.  Recursion depth is O(log n); each
/// level runs two CGC pfors.
template <class Exec, class Ref, class Op>
void mo_scan_inclusive(Exec& ex, Ref v, Ref scratch, Op op) {
  using T = typename Ref::value_type;
  const std::uint64_t n = v.size();
  if (n <= 1) return;
  if (n == 2) {
    const T a = v.load(0);
    v.store(1, op(a, v.load(1)));
    return;
  }
  const std::uint64_t half = n / 2;

  // Contract: t[i] = v[2i] (+) v[2i+1].  The pair load is one batched
  // access -- the two per-element loads are back-to-back and contiguous,
  // so the collapsed B_1-block stream (hence every counter) is unchanged.
  ex.cgc_pfor(0, half, 2 * sizeof(T) / 8,
              [&](std::uint64_t lo, std::uint64_t hi) {
                if constexpr (detail::scan_kernel_v<Ref, Op>) {
                  if (simd::use_kernels()) {
                    detail::pair_sum_kernel(v.raw() + 2 * lo,
                                            scratch.raw() + lo, hi - lo);
                    return;
                  }
                }
                for (std::uint64_t i = lo; i < hi; ++i) {
                  const auto [a, b] = v.load2(2 * i);
                  scratch.store(i, op(a, b));
                }
              });

  mo_scan_inclusive(ex, scratch.slice(0, half), scratch.slice(half, half / 2),
                    op);

  // Expand: v[2i] = t[i-1] (+) v[2i], v[2i+1] = t[i].  Kept per-element:
  // batching this loop would reorder accesses across the t and v streams,
  // and on deep hierarchies the leftover recency shuffle at chunk
  // boundaries shifts later eviction victims -- the golden-counter test
  // catches it.  Only order-preserving merges are exact (DESIGN.md).
  ex.cgc_pfor(0, half, 2 * sizeof(T) / 8,
              [&](std::uint64_t lo, std::uint64_t hi) {
                if constexpr (detail::scan_kernel_v<Ref, Op>) {
                  if (simd::use_kernels()) {
                    std::uint64_t i0 = lo;
                    if (i0 == 0) {  // i = 0 writes only v[1] = t[0]
                      v.store(1, scratch.load(0));
                      i0 = 1;
                    }
                    detail::scan_expand_kernel(scratch.raw(), v.raw(), i0, hi);
                    return;
                  }
                }
                for (std::uint64_t i = lo; i < hi; ++i) {
                  if (i > 0) {
                    v.store(2 * i, op(scratch.load(i - 1), v.load(2 * i)));
                  }
                  v.store(2 * i + 1, scratch.load(i));
                }
              });
  if (n % 2 == 1) {
    v.store(n - 1, op(v.load(n - 2), v.load(n - 1)));
  }
}

/// Convenience wrapper that allocates scratch from the executor.
/// Space bound: 2n (input plus contraction tree).
template <class Exec, class Ref, class Op>
void mo_scan(Exec& ex, Ref v, Op op) {
  using T = typename Ref::value_type;
  auto scratch = ex.template make_buf<T>(v.size());
  mo_scan_inclusive(ex, v, scratch.ref(), op);
}

/// Inclusive prefix sum specialization (AddOp engages the native simd
/// leaves; every other backend sees the same `a + b`).
template <class Exec, class Ref>
void mo_prefix_sum(Exec& ex, Ref v) {
  using T = typename Ref::value_type;
  mo_scan(ex, v, AddOp<T>{});
}

/// Parallel reduction under `op`; returns the total.  One CGC pass per
/// contraction level.
template <class Exec, class Ref, class Op>
typename Ref::value_type mo_reduce(Exec& ex, Ref v, Op op) {
  using T = typename Ref::value_type;
  const std::uint64_t n = v.size();
  if (n == 0) return T{};
  if (n == 1) return v.load(0);
  auto scratch_buf = ex.template make_buf<T>((n + 1) / 2);
  auto scratch = scratch_buf.ref();
  const std::uint64_t half = n / 2;
  ex.cgc_pfor(0, half, 2 * sizeof(T) / 8,
              [&](std::uint64_t lo, std::uint64_t hi) {
                if constexpr (detail::scan_kernel_v<Ref, Op>) {
                  if (simd::use_kernels()) {
                    detail::pair_sum_kernel(v.raw() + 2 * lo,
                                            scratch.raw() + lo, hi - lo);
                    return;
                  }
                }
                for (std::uint64_t i = lo; i < hi; ++i) {
                  const auto [a, b] = v.load2(2 * i);
                  scratch.store(i, op(a, b));
                }
              });
  if (n % 2 == 1) scratch.store(half, v.load(n - 1));
  return mo_reduce(ex, scratch.slice(0, (n + 1) / 2), op);
}

}  // namespace obliv::algo
