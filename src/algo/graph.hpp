// Graph algorithms of Section VI: Euler tour, tree computations (rooting,
// vertex depth, subtree size) and connected components (Theorem 8).
//
// All of them follow the paper's recipe: the only primitives are SPMS sorts
// (CGC=>SB), CGC scans, and MO-LR -- "O(1) sorts and scans" per step, with
// graphs contracted recursively.  Arcs are packed (src << 32 | dst) into
// 64-bit words so the sort primitive applies directly.
//
// Connected components implements min-neighbor hooking with 2-cycle
// breaking and pointer jumping (the PRAM CREW algorithm of Chin, Lam & Chen
// [25], adapted to sorted arc lists as in [22], [23]): every round each
// non-isolated supervertex merges with at least one neighbor, so
// O(log n) contraction rounds suffice.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "algo/listrank.hpp"
#include "algo/scan.hpp"
#include "algo/sort.hpp"
#include "util/bits.hpp"

namespace obliv::algo {

/// Packs an arc; vertex ids must be < 2^32.
inline constexpr std::uint64_t pack_arc(std::uint64_t u, std::uint64_t v) {
  return (u << 32) | v;
}
inline constexpr std::uint64_t arc_src(std::uint64_t a) { return a >> 32; }
inline constexpr std::uint64_t arc_dst(std::uint64_t a) {
  return a & 0xffffffffull;
}

/// Host-side undirected edge list.
struct EdgeList {
  std::uint64_t n = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
};

// ---------------------------------------------------------------------------
// Euler tour on trees.
// ---------------------------------------------------------------------------

/// Result of the Euler-tour tree computations, all derived from two
/// applications of MO-LR on the tour list.
struct TreeFunctions {
  std::vector<std::uint64_t> parent;        // parent[root] = root
  std::vector<std::int64_t> depth;          // depth[root] = 0
  std::vector<std::uint64_t> subtree_size;  // subtree_size[root] = n
  std::vector<std::uint64_t> preorder;      // traversal numbering; root = 0
};

/// Computes parent / depth / subtree size of every vertex of the tree
/// `edges` (n-1 undirected edges) rooted at `root`, via an Euler tour and
/// list ranking.  Host-facing API: takes and returns host vectors; all
/// measured work runs through the executor.
template <class Exec>
TreeFunctions mo_tree_functions(Exec& ex, const EdgeList& tree,
                                std::uint64_t root) {
  const std::uint64_t n = tree.n;
  TreeFunctions out;
  out.parent.assign(n, root);
  out.depth.assign(n, 0);
  out.subtree_size.assign(n, 1);
  out.preorder.assign(n, 0);
  if (n <= 1 || tree.edges.empty()) {
    if (n >= 1) {
      out.parent[root] = root;
      out.subtree_size[root] = n;
    }
    return out;
  }
  const std::uint64_t m = 2 * tree.edges.size();

  // Arc array, sorted by (src, dst) -- this groups each vertex's arcs.
  auto arcs_buf = ex.template make_buf<std::uint64_t>(m);
  auto arcs = arcs_buf.ref();
  for (std::uint64_t e = 0; e < tree.edges.size(); ++e) {
    arcs_buf.raw()[2 * e] = pack_arc(tree.edges[e].first, tree.edges[e].second);
    arcs_buf.raw()[2 * e + 1] =
        pack_arc(tree.edges[e].second, tree.edges[e].first);
  }
  spms_sort(ex, arcs);

  // first_arc[v]: index of v's first outgoing arc (kNil if none -- cannot
  // happen in a connected tree).
  auto first_buf = ex.template make_buf<std::uint64_t>(n);
  auto first = first_buf.ref();
  ex.cgc_pfor_each(0, n, 1, [&](std::uint64_t v) { first.store(v, kNil); });
  ex.cgc_pfor_each(0, m, 1, [&](std::uint64_t a) {
    const std::uint64_t s = arc_src(arcs.load(a));
    if (a == 0 || arc_src(arcs.load(a - 1)) != s) first.store(s, a);
  });

  // twin[a]: index of the reversed arc, found by sorting (reversed, index)
  // records -- position j of the sorted records aligns with arc j.
  struct TwinRec {
    std::uint64_t key, idx;
    bool operator<(const TwinRec& o) const { return key < o.key; }
  };
  auto twin_rec_buf = ex.template make_buf<TwinRec>(m);
  auto twin_recs = twin_rec_buf.ref();
  ex.cgc_pfor_each(0, m, 2, [&](std::uint64_t a) {
    const std::uint64_t arc = arcs.load(a);
    twin_recs.store(a, TwinRec{pack_arc(arc_dst(arc), arc_src(arc)), a});
  });
  spms_sort(ex, twin_recs);
  auto twin_buf = ex.template make_buf<std::uint64_t>(m);
  auto twin = twin_buf.ref();
  ex.cgc_pfor_each(0, m, 1, [&](std::uint64_t a) {
    twin.store(a, twin_recs.load(a).idx);
  });

  // Euler tour successor: succ[a] = arc after twin(a) around its source.
  auto succ_buf = ex.template make_buf<std::uint64_t>(m);
  auto succ = succ_buf.ref();
  ex.cgc_pfor_each(0, m, 2, [&](std::uint64_t a) {
    const std::uint64_t t = twin.load(a);
    const std::uint64_t v = arc_src(arcs.load(t));
    std::uint64_t nxt;
    if (t + 1 < m && arc_src(arcs.load(t + 1)) == v) {
      nxt = t + 1;
    } else {
      nxt = first.load(v);
    }
    succ.store(a, nxt);
  });
  // Break the circuit into a list starting at the root's first arc.
  const std::uint64_t start = first.load(root);
  ex.cgc_pfor_each(0, m, 1, [&](std::uint64_t a) {
    if (succ.load(a) == start) succ.store(a, kNil);
  });

  // pred[] by routing (succ[a] -> a) through a sort.
  struct PredRec {
    std::uint64_t key, idx;
    bool operator<(const PredRec& o) const {
      return key != o.key ? key < o.key : idx < o.idx;
    }
  };
  auto pred_rec_buf = ex.template make_buf<PredRec>(m);
  auto pred_recs = pred_rec_buf.ref();
  ex.cgc_pfor_each(0, m, 2, [&](std::uint64_t a) {
    pred_recs.store(a, PredRec{succ.load(a), a});
  });
  spms_sort(ex, pred_recs);
  auto pred_buf = ex.template make_buf<std::uint64_t>(m);
  auto pred = pred_buf.ref();
  ex.cgc_pfor_each(0, m, 1, [&](std::uint64_t a) { pred.store(a, kNil); });
  ex.cgc_pfor_each(0, m, 2, [&](std::uint64_t r) {
    const PredRec rec = pred_recs.load(r);
    if (rec.key != kNil) pred.store(rec.key, rec.idx);
  });

  // Unit-weight ranks give tour positions; +-1 weights give depths.
  auto rank_buf = ex.template make_buf<std::uint64_t>(m);
  auto rank = rank_buf.ref();
  mo_list_rank(ex, succ, pred, rank);  // rank = arcs after a in the tour
  auto pos = [&](std::uint64_t a) { return (m - 1) - rank.load(a); };

  // Forward arc (parent -> child) iff it precedes its twin on the tour.
  auto fwd_buf = ex.template make_buf<std::uint64_t>(m);
  auto fwd = fwd_buf.ref();
  ex.cgc_pfor_each(0, m, 2, [&](std::uint64_t a) {
    fwd.store(a, rank.load(a) > rank.load(twin.load(a)) ? 1 : 0);
  });

  // Weighted ranks with +1 on forward arcs, -1 (mod 2^64) on backward arcs.
  auto wlen_buf = ex.template make_buf<std::uint64_t>(m);
  auto wdist_buf = ex.template make_buf<std::uint64_t>(m);
  auto wlen = wlen_buf.ref(), wdist = wdist_buf.ref();
  ex.cgc_pfor_each(0, m, 1, [&](std::uint64_t a) {
    wlen.store(a, fwd.load(a) ? 1 : ~0ull);
  });
  mo_list_rank_weighted(ex, succ, pred, wlen, wdist);

  // Extract per-vertex results from the forward arcs.
  ex.cgc_pfor_each(0, m, 4, [&](std::uint64_t a) {
    if (!fwd.load(a)) return;
    const std::uint64_t arc = arcs.load(a);
    const std::uint64_t p = arc_src(arc), c = arc_dst(arc);
    out.parent[c] = p;
    // Inclusive prefix of the +-1 weights through arc a.  The weighted dist
    // excludes the tour's last arc (always backward, weight -1), and the
    // +-1 weights sum to zero overall, so:
    //   prefix(a) = 0 - (dist(a) - len(a) + (-1)) = -dist(a) + len(a) + 1.
    const std::int64_t inclusive = static_cast<std::int64_t>(
        0 - wdist.load(a) + wlen.load(a) + 1);
    out.depth[c] = inclusive;
    out.subtree_size[c] = (pos(twin.load(a)) - pos(a) + 1) / 2;
    // Traversal (preorder) numbering: v is first visited at its forward
    // arc; forward arcs in the prefix = (prefix length + signed prefix)/2.
    out.preorder[c] =
        (pos(a) + 1 + static_cast<std::uint64_t>(inclusive)) / 2;
  });
  out.parent[root] = root;
  out.depth[root] = 0;
  out.subtree_size[root] = n;
  out.preorder[root] = 0;
  return out;
}

// ---------------------------------------------------------------------------
// Connected components.
// ---------------------------------------------------------------------------

/// MO connected components: returns comp[v] = smallest-rooted representative
/// found by hooking; vertices in the same component share a label.
template <class Exec>
std::vector<std::uint64_t> mo_connected_components(Exec& ex,
                                                   const EdgeList& g) {
  const std::uint64_t n = g.n;
  auto comp_buf = ex.template make_buf<std::uint64_t>(n);
  auto comp = comp_buf.ref();
  ex.cgc_pfor_each(0, n, 1, [&](std::uint64_t v) { comp.store(v, v); });
  if (g.edges.empty() || n == 0) return comp_buf.raw();

  // Current arc multiset (both directions), shrinking across rounds.
  std::vector<std::uint64_t> host_arcs;
  host_arcs.reserve(2 * g.edges.size());
  for (auto [u, v] : g.edges) {
    if (u == v) continue;
    host_arcs.push_back(pack_arc(u, v));
    host_arcs.push_back(pack_arc(v, u));
  }

  const std::uint64_t max_rounds = 2 * util::ceil_log2(n | 1) + 4;
  for (std::uint64_t round = 0;
       !host_arcs.empty() && round < max_rounds; ++round) {
    const std::uint64_t m = host_arcs.size();
    auto arcs_buf = ex.template make_buf<std::uint64_t>(m);
    arcs_buf.raw() = host_arcs;
    auto arcs = arcs_buf.ref();
    spms_sort(ex, arcs);

    // Hook: parent[v] = min neighbor (first arc of each src group).
    auto parent_buf = ex.template make_buf<std::uint64_t>(n);
    auto parent = parent_buf.ref();
    ex.cgc_pfor_each(0, n, 1,
                     [&](std::uint64_t v) { parent.store(v, v); });
    ex.cgc_pfor_each(0, m, 1, [&](std::uint64_t a) {
      const std::uint64_t arc = arcs.load(a);
      const std::uint64_t s = arc_src(arc);
      if (a == 0 || arc_src(arcs.load(a - 1)) != s) {
        parent.store(s, arc_dst(arc));
      }
    });

    // Break the unique 2-cycle of each pseudo-tree at its minimum.
    auto pp_buf = ex.template make_buf<std::uint64_t>(n);
    auto pp = pp_buf.ref();
    mo_pull(ex, parent, parent, pp, kNil);
    ex.cgc_pfor_each(0, n, 2, [&](std::uint64_t v) {
      // In a 2-cycle (u <-> v), the smaller endpoint becomes the root; the
      // larger keeps pointing at it.
      if (pp.load(v) == v && v < parent.load(v)) parent.store(v, v);
    });

    // Pointer jumping to the roots (doubling; early exit on fixpoint).
    for (std::uint64_t it = 0; it <= util::ceil_log2(n | 1); ++it) {
      mo_pull(ex, parent, parent, pp, kNil);
      bool changed = false;
      ex.cgc_pfor_each(0, n, 2, [&](std::uint64_t v) {
        if (parent.load(v) != pp.load(v)) {
          parent.store(v, pp.load(v));
          changed = true;
        }
      });
      if (!changed) break;
    }

    // Fold this round's hooks into the global labels.
    auto newcomp_buf = ex.template make_buf<std::uint64_t>(n);
    auto newcomp = newcomp_buf.ref();
    mo_pull(ex, comp, parent, newcomp, kNil);
    ex.cgc_pfor_each(0, n, 2, [&](std::uint64_t v) {
      comp.store(v, newcomp.load(v));
    });

    // Contract: relabel arc endpoints by their roots, drop self-loops,
    // sort and deduplicate.
    auto src_buf = ex.template make_buf<std::uint64_t>(m);
    auto dst_buf = ex.template make_buf<std::uint64_t>(m);
    auto nsrc_buf = ex.template make_buf<std::uint64_t>(m);
    auto ndst_buf = ex.template make_buf<std::uint64_t>(m);
    auto src = src_buf.ref(), dst = dst_buf.ref(), nsrc = nsrc_buf.ref(),
         ndst = ndst_buf.ref();
    ex.cgc_pfor_each(0, m, 2, [&](std::uint64_t a) {
      const std::uint64_t arc = arcs.load(a);
      src.store(a, arc_src(arc));
      dst.store(a, arc_dst(arc));
    });
    mo_pull(ex, src, parent, nsrc, kNil);
    mo_pull(ex, dst, parent, ndst, kNil);
    ex.cgc_pfor_each(0, m, 2, [&](std::uint64_t a) {
      arcs.store(a, pack_arc(nsrc.load(a), ndst.load(a)));
    });
    spms_sort(ex, arcs);
    // Dedupe + self-loop removal back onto the host for the next round.
    host_arcs.clear();
    for (std::uint64_t a = 0; a < m; ++a) {
      const std::uint64_t arc = arcs.load(a);
      if (arc_src(arc) == arc_dst(arc)) continue;
      if (!host_arcs.empty() && host_arcs.back() == arc) continue;
      host_arcs.push_back(arc);
    }
  }
  assert(host_arcs.empty() && "hooking must converge within 2 log n rounds");

  // Final label smoothing: components hooked across rounds may need one
  // last jump chain (labels compose across rounds).
  auto tmp_buf = ex.template make_buf<std::uint64_t>(n);
  auto tmp = tmp_buf.ref();
  for (std::uint64_t it = 0; it <= util::ceil_log2(n | 1); ++it) {
    mo_pull(ex, comp, comp, tmp, kNil);
    bool changed = false;
    ex.cgc_pfor_each(0, n, 2, [&](std::uint64_t v) {
      if (comp.load(v) != tmp.load(v)) {
        comp.store(v, tmp.load(v));
        changed = true;
      }
    });
    if (!changed) break;
  }
  return comp_buf.raw();
}

/// Sequential BFS baseline (correctness oracle, zero parallelism).
inline std::vector<std::uint64_t> cc_bfs_reference(const EdgeList& g) {
  std::vector<std::vector<std::uint32_t>> adj(g.n);
  for (auto [u, v] : g.edges) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  std::vector<std::uint64_t> comp(g.n, kNil);
  std::vector<std::uint32_t> stack;
  for (std::uint64_t s = 0; s < g.n; ++s) {
    if (comp[s] != kNil) continue;
    comp[s] = s;
    stack.push_back(static_cast<std::uint32_t>(s));
    while (!stack.empty()) {
      const std::uint32_t u = stack.back();
      stack.pop_back();
      for (std::uint32_t v : adj[u]) {
        if (comp[v] == kNil) {
          comp[v] = s;
          stack.push_back(v);
        }
      }
    }
  }
  return comp;
}

}  // namespace obliv::algo
