// Fixed-width text table printer used by the benchmark harness to emit the
// rows/series corresponding to the paper's Table I, Table II and theorem
// validation sweeps in a uniform, diff-friendly format.
#pragma once

#include <cstdio>
#include <iosfwd>
#include <string>
#include <vector>

namespace obliv::util {

/// Accumulates rows of string cells and prints them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; the number of cells must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each value with snprintf-style conversions.
  static std::string fmt(double v, const char* spec = "%.3g");
  static std::string fmt(std::uint64_t v);
  static std::string fmt(std::int64_t v);

  /// Renders the table (header, rule, rows) to `os`.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace obliv::util
