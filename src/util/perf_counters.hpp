// Hardware performance counters for native-executor runs (Linux
// perf_event).  The HM simulator gives exact model misses; this gives the
// *real* machine's cache-miss counts for the same algorithm, closing the
// loop between the model and a laptop multicore.
//
// perf_event access is frequently restricted (containers, hardened
// kernels): everything here degrades gracefully -- `available()` reports
// false and readings come back as nullopt -- so tests and benches never
// fail merely because counters are locked down.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace obliv::util {

/// Counter kinds we know how to program.
enum class PerfEvent : std::uint8_t {
  kCacheMisses,      // PERF_COUNT_HW_CACHE_MISSES (LLC misses)
  kCacheReferences,  // PERF_COUNT_HW_CACHE_REFERENCES
  kL1DReadMisses,    // L1-dcache read misses
  kInstructions,     // retired instructions
  kCycles,           // CPU cycles (with kInstructions gives IPC)
};

/// A group of hardware counters measured over a code region.
///
///   PerfCounterGroup g({PerfEvent::kCacheMisses});
///   if (g.available()) { g.start(); work(); g.stop(); g.value(0); }
class PerfCounterGroup {
 public:
  explicit PerfCounterGroup(std::vector<PerfEvent> events);
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  /// True iff every requested counter opened successfully.
  bool available() const { return available_; }

  /// Why counters are unavailable (empty when available).
  const std::string& error() const { return error_; }

  void start();
  void stop();

  /// Reading of the idx-th requested event for the last start/stop window;
  /// nullopt when unavailable.
  std::optional<std::uint64_t> value(std::size_t idx) const;

 private:
  std::vector<int> fds_;
  std::vector<std::uint64_t> values_;
  bool available_ = false;
  std::string error_;
};

}  // namespace obliv::util
