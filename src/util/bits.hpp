// Bit-manipulation helpers used throughout the library.
//
// The MO-MT matrix-transposition algorithm (paper, Fig. 2) relies on the
// bit-interleaved index map beta(i, j): the pair of indices is mapped to a
// single linear position by interleaving the binary representations of i and
// j.  The paper assumes beta and its inverse are computable in constant time
// by hardware; here we provide portable O(1)-word implementations based on
// the classic Morton-code spread/compact tricks.
#pragma once

#include <cstdint>
#include <cassert>
#include <bit>
#include <cstddef>
#include <utility>

namespace obliv::util {

/// Spreads the low 32 bits of `x` so that bit k of the input lands in bit 2k
/// of the output (zero bits interleaved between consecutive input bits).
constexpr std::uint64_t spread_bits(std::uint64_t x) noexcept {
  x &= 0xffffffffull;
  x = (x | (x << 16)) & 0x0000ffff0000ffffull;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffull;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0full;
  x = (x | (x << 2)) & 0x3333333333333333ull;
  x = (x | (x << 1)) & 0x5555555555555555ull;
  return x;
}

/// Inverse of spread_bits: collects every other bit (bits 0,2,4,...) of `x`
/// into the low 32 bits of the result.
constexpr std::uint64_t compact_bits(std::uint64_t x) noexcept {
  x &= 0x5555555555555555ull;
  x = (x | (x >> 1)) & 0x3333333333333333ull;
  x = (x | (x >> 2)) & 0x0f0f0f0f0f0f0f0full;
  x = (x | (x >> 4)) & 0x00ff00ff00ff00ffull;
  x = (x | (x >> 8)) & 0x0000ffff0000ffffull;
  x = (x | (x >> 16)) & 0x00000000ffffffffull;
  return x;
}

/// beta(i, j): bit-interleaved (Morton / Z-order) linear index of the pair
/// (i, j).  Bit k of `i` lands at bit 2k+1, bit k of `j` at bit 2k, so rows
/// are the "major" coordinate, matching the row-major dispersal argument in
/// the proof of Theorem 1.
constexpr std::uint64_t interleave_bits(std::uint64_t i, std::uint64_t j) noexcept {
  return (spread_bits(i) << 1) | spread_bits(j);
}

/// beta^{-1}: recovers the ordered pair (i, j) from a bit-interleaved index.
constexpr std::pair<std::uint64_t, std::uint64_t>
deinterleave_bits(std::uint64_t z) noexcept {
  return {compact_bits(z >> 1), compact_bits(z)};
}

/// True iff `x` is a (positive) power of two.
constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)); requires x > 0.
constexpr unsigned ilog2(std::uint64_t x) noexcept {
  return 63u - static_cast<unsigned>(std::countl_zero(x | 1));
}

/// ceil(log2(x)); requires x > 0.  ceil_log2(1) == 0.
constexpr unsigned ceil_log2(std::uint64_t x) noexcept {
  return x <= 1 ? 0u : ilog2(x - 1) + 1u;
}

/// Smallest power of two >= x.
constexpr std::uint64_t ceil_pow2(std::uint64_t x) noexcept {
  return x <= 1 ? 1 : (std::uint64_t{1} << ceil_log2(x));
}

/// Largest power of two <= x; requires x > 0.
constexpr std::uint64_t floor_pow2(std::uint64_t x) noexcept {
  return std::uint64_t{1} << ilog2(x);
}

/// Integer ceiling division.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Reverses the low `bits` bits of `x` (used by iterative FFT baselines).
constexpr std::uint64_t reverse_bits(std::uint64_t x, unsigned bits) noexcept {
  std::uint64_t r = 0;
  for (unsigned k = 0; k < bits; ++k) {
    r = (r << 1) | ((x >> k) & 1u);
  }
  return r;
}

}  // namespace obliv::util
