#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdint>
#include <ostream>

namespace obliv::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, const char* spec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, spec, v);
  return buf;
}

std::string Table::fmt(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

std::string Table::fmt(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      for (std::size_t k = row[c].size(); k < width[c]; ++k) os << ' ';
    }
    os << " |\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-");
    for (std::size_t k = 0; k < width[c]; ++k) os << '-';
  }
  os << "-|\n";
  for (const auto& row : rows_) emit(row);
}

}  // namespace obliv::util
