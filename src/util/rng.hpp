// Deterministic, fast pseudo-random number generation (xoshiro256**).
//
// All workload generators in tests and benchmarks draw from this generator so
// that every experiment is reproducible from its seed.
#pragma once

#include <cstdint>
#include <limits>

namespace obliv::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Satisfies the UniformRandomBitGenerator requirements.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& word : state_) {
      z += 0x9e3779b97f4a7c15ull;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      word = x ^ (x >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); bound must be > 0.  Uses Lemire's
  /// multiply-shift rejection-free approximation (bias negligible for the
  /// bounds used in this library).
  std::uint64_t below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace obliv::util
