// Vector implementations of the SIMD-layer kernels (simd.hpp).
//
// Built on GNU vector extensions (4 x f64 = 256-bit lanes).  On x86-64 the
// build adds -mavx2 to this TU when the compiler supports it (see
// src/CMakeLists.txt); the dispatcher then requires AVX2 at runtime via
// cpuid before routing here.  Without -mavx2 the same source lowers to
// 128-bit pairs -- still vectorized, no runtime requirement beyond the
// baseline ISA.  Compilers without the extensions (or OBLIV_SIMD=OFF
// builds) compile this TU down to forwarding stubs and the dispatcher
// never selects it.
//
// All memory access goes through simd::load_u / simd::store_u (memcpy):
// no alignment assumptions, no strict-aliasing casts.  Every loop steps in
// whole lanes and hands the tail to the scalar fallback, whose arithmetic
// is element-for-element identical (both TUs build with -ffp-contract=off).
#include "util/simd.hpp"

#if OBLIV_SIMD_ENABLED && (defined(__GNUC__) || defined(__clang__))
#define OBLIV_SIMD_VEC 1
#else
#define OBLIV_SIMD_VEC 0
#endif

#if OBLIV_SIMD_VEC && defined(__AVX2__)
#include <immintrin.h>
#endif

namespace obliv::simd::vec {

#if OBLIV_SIMD_VEC

namespace {

typedef double f64x4 __attribute__((vector_size(32), may_alias));
typedef std::uint64_t u64x4 __attribute__((vector_size(32), may_alias));
// Comparisons on f64x4 yield a signed 64-bit mask vector.
typedef long long i64x4 __attribute__((vector_size(32), may_alias));

#if defined(__clang__)
#define OBLIV_SHUF(a, b, i0, i1, i2, i3) \
  __builtin_shufflevector(a, b, i0, i1, i2, i3)
#else
#define OBLIV_SHUF(a, b, i0, i1, i2, i3) \
  __builtin_shuffle(a, b, u64x4{i0, i1, i2, i3})
#endif

inline f64x4 splat(double s) { return f64x4{s, s, s, s}; }

// Branchless blend: lane l gets a[l] where mask[l] is all-ones, b[l] where
// zero.  Avoids relying on vector ?: support across compiler versions.
inline f64x4 blend(i64x4 mask, f64x4 a, f64x4 b) {
  const i64x4 ab = reinterpret_cast<i64x4&>(a);
  const i64x4 bb = reinterpret_cast<i64x4&>(b);
  i64x4 r = (ab & mask) | (bb & ~mask);
  return reinterpret_cast<f64x4&>(r);
}

// dst[l] = x[idx[l]] for 4 lanes.
inline f64x4 gather4(const double* x, u64x4 idx) {
#if defined(__AVX2__)
  const __m256i iv = reinterpret_cast<__m256i&>(idx);
  __m256d g = _mm256_i64gather_pd(x, iv, 8);
  return reinterpret_cast<f64x4&>(g);
#else
  return f64x4{x[idx[0]], x[idx[1]], x[idx[2]], x[idx[3]]};
#endif
}

}  // namespace

bool available() noexcept { return true; }

bool requires_avx2() noexcept {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

void copy_bytes(const void* src, void* dst, std::size_t n) noexcept {
  std::memcpy(dst, src, n);  // libc memcpy is already the widest copy
}

void pair_sum_f64(const double* src, double* dst, std::size_t pairs) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= pairs; i += 4) {
    const f64x4 a = load_u<f64x4>(src + 2 * i);      // pairs i, i+1
    const f64x4 b = load_u<f64x4>(src + 2 * i + 4);  // pairs i+2, i+3
    const f64x4 ev = OBLIV_SHUF(a, b, 0, 2, 4, 6);
    const f64x4 od = OBLIV_SHUF(a, b, 1, 3, 5, 7);
    store_u(dst + i, ev + od);
  }
  scalar::pair_sum_f64(src + 2 * i, dst + i, pairs - i);
}

void pair_sum_u64(const std::uint64_t* src, std::uint64_t* dst,
                  std::size_t pairs) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= pairs; i += 4) {
    const u64x4 a = load_u<u64x4>(src + 2 * i);
    const u64x4 b = load_u<u64x4>(src + 2 * i + 4);
    const u64x4 ev = OBLIV_SHUF(a, b, 0, 2, 4, 6);
    const u64x4 od = OBLIV_SHUF(a, b, 1, 3, 5, 7);
    store_u(dst + i, ev + od);
  }
  scalar::pair_sum_u64(src + 2 * i, dst + i, pairs - i);
}

void scan_expand_f64(const double* t, double* v, std::size_t i_lo,
                     std::size_t i_hi) noexcept {
  std::size_t i = i_lo;
  for (; i + 4 <= i_hi; i += 4) {
    const f64x4 tp = load_u<f64x4>(t + i - 1);  // t[i-1 .. i+2]
    const f64x4 tc = load_u<f64x4>(t + i);      // t[i   .. i+3]
    const f64x4 va = load_u<f64x4>(v + 2 * i);
    const f64x4 vb = load_u<f64x4>(v + 2 * i + 4);
    const f64x4 ev = OBLIV_SHUF(va, vb, 0, 2, 4, 6) + tp;
    const f64x4 lo = OBLIV_SHUF(ev, tc, 0, 4, 1, 5);  // e0 t0 e1 t1
    const f64x4 hi = OBLIV_SHUF(ev, tc, 2, 6, 3, 7);  // e2 t2 e3 t3
    store_u(v + 2 * i, lo);
    store_u(v + 2 * i + 4, hi);
  }
  scalar::scan_expand_f64(t, v, i, i_hi);
}

void scan_expand_u64(const std::uint64_t* t, std::uint64_t* v,
                     std::size_t i_lo, std::size_t i_hi) noexcept {
  std::size_t i = i_lo;
  for (; i + 4 <= i_hi; i += 4) {
    const u64x4 tp = load_u<u64x4>(t + i - 1);
    const u64x4 tc = load_u<u64x4>(t + i);
    const u64x4 va = load_u<u64x4>(v + 2 * i);
    const u64x4 vb = load_u<u64x4>(v + 2 * i + 4);
    const u64x4 ev = OBLIV_SHUF(va, vb, 0, 2, 4, 6) + tp;
    const u64x4 lo = OBLIV_SHUF(ev, tc, 0, 4, 1, 5);
    const u64x4 hi = OBLIV_SHUF(ev, tc, 2, 6, 3, 7);
    store_u(v + 2 * i, lo);
    store_u(v + 2 * i + 4, hi);
  }
  scalar::scan_expand_u64(t, v, i, i_hi);
}

void butterfly_f64(double* ra, double* ia, double* rb, double* ib,
                   const double* wre, const double* wim,
                   std::size_t n) noexcept {
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const f64x4 ar = load_u<f64x4>(ra + j), ai = load_u<f64x4>(ia + j);
    const f64x4 xr = load_u<f64x4>(rb + j), xi = load_u<f64x4>(ib + j);
    const f64x4 wr = load_u<f64x4>(wre + j), wi = load_u<f64x4>(wim + j);
    const f64x4 br = xr * wr - xi * wi;
    const f64x4 bi = xr * wi + xi * wr;
    store_u(ra + j, ar + br);
    store_u(ia + j, ai + bi);
    store_u(rb + j, ar - br);
    store_u(ib + j, ai - bi);
  }
  if (j < n) {
    scalar::butterfly_f64(ra + j, ia + j, rb + j, ib + j, wre + j, wim + j,
                          n - j);
  }
}

namespace {
// f-major twiddle tables W[t][f] = w[(f*t) % m] so the f loop vectorizes
// with contiguous loads; built once per m from the shared expression.
struct DftTab {
  double re[8][8];
  double im[8][8];
};
DftTab make_tab(unsigned m) {
  DftTab tab{};
  double wr[8], wi[8];
  simd::detail::dft_twiddles(wr, wi, m);
  for (unsigned t = 0; t < m; ++t) {
    for (unsigned f = 0; f < m; ++f) {
      tab.re[t][f] = wr[(f * t) % m];
      tab.im[t][f] = wi[(f * t) % m];
    }
  }
  return tab;
}
}  // namespace

void dft_pow2_f64(const double* re_in, const double* im_in, double* re_out,
                  double* im_out, unsigned m) noexcept {
  if (m < 4) {
    scalar::dft_pow2_f64(re_in, im_in, re_out, im_out, m);
    return;
  }
  static const DftTab tab4 = make_tab(4);
  static const DftTab tab8 = make_tab(8);
  const DftTab& tab = m == 4 ? tab4 : tab8;
  for (unsigned f0 = 0; f0 < m; f0 += 4) {
    f64x4 ar = splat(0.0), ai = splat(0.0);
    for (unsigned t = 0; t < m; ++t) {
      const f64x4 wr = load_u<f64x4>(&tab.re[t][f0]);
      const f64x4 wi = load_u<f64x4>(&tab.im[t][f0]);
      const f64x4 br = splat(re_in[t]), bi = splat(im_in[t]);
      ar += br * wr - bi * wi;
      ai += br * wi + bi * wr;
    }
    store_u(re_out + f0, ar);
    store_u(im_out + f0, ai);
  }
}

void fw_min_f64(double* y, const double* v, double u, std::size_t n) noexcept {
  const f64x4 uv = splat(u);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const f64x4 vv = load_u<f64x4>(v + j);
    const f64x4 yy = load_u<f64x4>(y + j);
    const f64x4 cand = uv + vv;
    const i64x4 lt = cand < yy;  // all-ones where cand is smaller
    store_u(y + j, blend(lt, cand, yy));
  }
  scalar::fw_min_f64(y + j, v + j, u, n - j);
}

void gauss_update_f64(double* y, const double* v, double f,
                      std::size_t n) noexcept {
  const f64x4 fv = splat(f);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const f64x4 vv = load_u<f64x4>(v + j);
    const f64x4 yy = load_u<f64x4>(y + j);
    store_u(y + j, yy - fv * vv);
  }
  scalar::gauss_update_f64(y + j, v + j, f, n - j);
}

void axpy_f64(double* y, const double* v, double a, std::size_t n) noexcept {
  const f64x4 av = splat(a);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const f64x4 vv = load_u<f64x4>(v + j);
    const f64x4 yy = load_u<f64x4>(y + j);
    store_u(y + j, yy + av * vv);
  }
  scalar::axpy_f64(y + j, v + j, a, n - j);
}

double dot_strided_f64(const std::uint64_t* cols, const double* vals,
                       std::size_t stride_words, const double* x,
                       std::size_t n) noexcept {
  f64x4 acc = splat(0.0);
  const std::size_t groups = n / 4;
  if (stride_words == 2) {
    // AoS entries {u64 col; f64 val}: deinterleave 4 entries (8 words) per
    // step straight from the entry stream.
    for (std::size_t g = 0; g < groups; ++g) {
      const std::uint64_t* p = cols + 8 * g;
      const u64x4 w0 = load_u<u64x4>(p);      // c0 v0 c1 v1
      const u64x4 w1 = load_u<u64x4>(p + 4);  // c2 v2 c3 v3
      const u64x4 ci = OBLIV_SHUF(w0, w1, 0, 2, 4, 6);
      u64x4 vb = OBLIV_SHUF(w0, w1, 1, 3, 5, 7);
      acc += reinterpret_cast<f64x4&>(vb) * gather4(x, ci);
    }
  } else {
    for (std::size_t g = 0; g < groups; ++g) {
      const std::size_t i = 4 * g * stride_words;
      const u64x4 ci = {cols[i], cols[i + stride_words],
                        cols[i + 2 * stride_words], cols[i + 3 * stride_words]};
      const f64x4 vv = {vals[i], vals[i + stride_words],
                        vals[i + 2 * stride_words],
                        vals[i + 3 * stride_words]};
      acc += vv * gather4(x, ci);
    }
  }
  double s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
  for (std::size_t i = 4 * groups; i < n; ++i) {
    const std::size_t k = i * stride_words;
    s += vals[k] * x[cols[k]];
  }
  return s;
}

void gather_f64(const double* base, const std::uint64_t* idx, double* dst,
                std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store_u(dst + i, gather4(base, load_u<u64x4>(idx + i)));
  }
  scalar::gather_f64(base, idx + i, dst + i, n - i);
}

void gather_2f64(const double* base, const std::uint64_t* idx, double* dst,
                 std::size_t n) noexcept {
  // Pure data movement at 16 bytes per element: one two-lane vector move
  // each, same element order as the scalar fallback.
  typedef double f64x2 __attribute__((vector_size(16), may_alias));
  for (std::size_t i = 0; i < n; ++i) {
    store_u(dst + 2 * i, load_u<f64x2>(base + 2 * idx[i]));
  }
}

#undef OBLIV_SHUF

#else  // !OBLIV_SIMD_VEC: forwarding stubs, never selected by the dispatcher.

bool available() noexcept { return false; }
bool requires_avx2() noexcept { return false; }
void copy_bytes(const void* src, void* dst, std::size_t n) noexcept {
  scalar::copy_bytes(src, dst, n);
}
void pair_sum_f64(const double* src, double* dst, std::size_t pairs) noexcept {
  scalar::pair_sum_f64(src, dst, pairs);
}
void pair_sum_u64(const std::uint64_t* src, std::uint64_t* dst,
                  std::size_t pairs) noexcept {
  scalar::pair_sum_u64(src, dst, pairs);
}
void scan_expand_f64(const double* t, double* v, std::size_t i_lo,
                     std::size_t i_hi) noexcept {
  scalar::scan_expand_f64(t, v, i_lo, i_hi);
}
void scan_expand_u64(const std::uint64_t* t, std::uint64_t* v,
                     std::size_t i_lo, std::size_t i_hi) noexcept {
  scalar::scan_expand_u64(t, v, i_lo, i_hi);
}
void butterfly_f64(double* ra, double* ia, double* rb, double* ib,
                   const double* wre, const double* wim,
                   std::size_t n) noexcept {
  scalar::butterfly_f64(ra, ia, rb, ib, wre, wim, n);
}
void dft_pow2_f64(const double* re_in, const double* im_in, double* re_out,
                  double* im_out, unsigned m) noexcept {
  scalar::dft_pow2_f64(re_in, im_in, re_out, im_out, m);
}
void fw_min_f64(double* y, const double* v, double u, std::size_t n) noexcept {
  scalar::fw_min_f64(y, v, u, n);
}
void gauss_update_f64(double* y, const double* v, double f,
                      std::size_t n) noexcept {
  scalar::gauss_update_f64(y, v, f, n);
}
void axpy_f64(double* y, const double* v, double a, std::size_t n) noexcept {
  scalar::axpy_f64(y, v, a, n);
}
double dot_strided_f64(const std::uint64_t* cols, const double* vals,
                       std::size_t stride_words, const double* x,
                       std::size_t n) noexcept {
  return scalar::dot_strided_f64(cols, vals, stride_words, x, n);
}
void gather_f64(const double* base, const std::uint64_t* idx, double* dst,
                std::size_t n) noexcept {
  scalar::gather_f64(base, idx, dst, n);
}
void gather_2f64(const double* base, const std::uint64_t* idx, double* dst,
                 std::size_t n) noexcept {
  scalar::gather_2f64(base, idx, dst, n);
}

#endif  // OBLIV_SIMD_VEC

}  // namespace obliv::simd::vec
