// Portable SIMD layer for native-path leaf kernels.
//
// The algorithm templates are shared by three backends (sim / native / NO);
// only the *native* backend touches plain memory, so only the native backend
// may take these kernels -- the sim path's golden counters depend on the
// exact per-element access sequence and must stay bit-identical.  Callers
// gate on `sched::is_direct_ref_v<Ref>` (an explicit marker, not duck
// typing) plus `simd::use_kernels()`.
//
// Contract: every dispatcher below has THREE semantically layered
// implementations --
//
//   * a vector implementation (GNU vector extensions, 256-bit lanes when the
//     translation unit is built with AVX2, 128-bit lowering otherwise),
//   * a scalar fallback that is BIT-IDENTICAL to the vector path on every
//     input (elementwise kernels are trivially so; the one reduction,
//     `dot_strided_f64`, fixes a 4-accumulator combine order that both
//     implementations share), and
//   * the caller's pre-existing generic loop (`Mode::kGeneric` skips the
//     kernels entirely), kept as the reference semantics.
//
// Both kernel TUs are compiled with -ffp-contract=off so FMA contraction
// cannot split the vector and scalar paths apart.  `OBLIV_SIMD=OFF`
// (-DOBLIV_SIMD_ENABLED=0) compiles the vector TU down to stubs; the scalar
// fallback always exists, so native results are identical under ON and OFF.
//
// Tail policy: vector bodies step in full lanes and finish with the scalar
// fallback over the remainder -- tails are never masked loads, so no kernel
// reads or writes a single byte outside [ptr, ptr+n).  All vector memory
// access goes through load_u/store_u (memcpy), which makes alignment and
// strict aliasing a non-issue by construction; callers may pass pointers
// with any alignment.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#ifndef OBLIV_SIMD_ENABLED
#define OBLIV_SIMD_ENABLED 1
#endif

namespace obliv::simd {

// Widest lane width (in 8-byte words) any build of the kernels may use.
// Scheduler granularity floors align to this so leaves are never smaller
// than one vector stride.
inline constexpr unsigned kMaxLaneWords = 4;

inline constexpr bool kSimdCompiledIn = OBLIV_SIMD_ENABLED != 0;

// Runtime kernel mode.  kAuto selects the vector path when the build and
// the CPU support it; kScalar forces the bit-identical scalar fallback
// (exactly what an OBLIV_SIMD=OFF build runs); kGeneric makes
// use_kernels() false so callers keep their pre-kernel generic loops --
// the benches use it to measure the refactor against the old code without
// a second binary.
enum class Mode : unsigned char { kAuto, kScalar, kGeneric };

namespace detail {
extern std::atomic<Mode> g_mode;
// True when the vector TU was compiled with real vector support and the
// host CPU can execute it (cached cpuid probe).
bool vector_supported() noexcept;
// DFT base-case twiddles w[j] = polar(1, -2*pi*j/m) for j < m (m <= 8),
// split into re/im -- the exact expression the generic dft_base uses, so
// table-driven kernels stay bit-identical to it.  Shared by the scalar
// and vector TUs.
void dft_twiddles(double* wr, double* wi, unsigned m) noexcept;
}  // namespace detail

inline Mode mode() noexcept {
  return detail::g_mode.load(std::memory_order_relaxed);
}
inline void set_mode(Mode m) noexcept {
  detail::g_mode.store(m, std::memory_order_relaxed);
}

// RAII mode override for tests/benches.
class ScopedMode {
 public:
  explicit ScopedMode(Mode m) : prev_(mode()) { set_mode(m); }
  ~ScopedMode() { set_mode(prev_); }
  ScopedMode(const ScopedMode&) = delete;
  ScopedMode& operator=(const ScopedMode&) = delete;

 private:
  Mode prev_;
};

inline bool use_kernels() noexcept { return mode() != Mode::kGeneric; }
inline bool vector_active() noexcept {
  return kSimdCompiledIn && mode() == Mode::kAuto && detail::vector_supported();
}
// Lane width (doubles per step) the dispatchers currently use.
unsigned lane_width() noexcept;
// "avx2", "vec128", or "scalar" -- for bench/JSON provenance.
const char* active_isa() noexcept;

// Unaligned load/store through memcpy: the only way the kernel TUs touch
// memory.  V is a (vector or scalar) value type, P the pointee type.
template <class V, class P>
inline V load_u(const P* p) noexcept {
  V v;
  std::memcpy(&v, p, sizeof(V));
  return v;
}
template <class V, class P>
inline void store_u(P* p, V v) noexcept {
  std::memcpy(p, &v, sizeof(V));
}

// ---- kernels -------------------------------------------------------------
// Dispatchers (vector when vector_active(), scalar fallback otherwise).
// Unless noted, source and destination ranges must not partially overlap
// (exact overlap, dst == src, is fine for the in-place update kernels).

// memcpy-shaped bulk copy (trivially copyable payloads; run views, tiles,
// sort base-case load/store).
void copy_bytes(const void* src, void* dst, std::size_t n) noexcept;

// Scan contract step: dst[i] = src[2i] + src[2i+1], i in [0, pairs).
void pair_sum_f64(const double* src, double* dst, std::size_t pairs) noexcept;
void pair_sum_u64(const std::uint64_t* src, std::uint64_t* dst,
                  std::size_t pairs) noexcept;

// Scan expand step for i in [i_lo, i_hi), requires i_lo >= 1:
//   v[2i] = t[i-1] + v[2i];  v[2i+1] = t[i]
// (the caller handles i == 0, whose first half is the identity).
void scan_expand_f64(const double* t, double* v, std::size_t i_lo,
                     std::size_t i_hi) noexcept;
void scan_expand_u64(const std::uint64_t* t, std::uint64_t* v,
                     std::size_t i_lo, std::size_t i_hi) noexcept;

// Radix-2 FFT butterflies over split re/im streams, a- and b-halves
// passed separately so callers can run any sub-range of a block:
//   b = (rb[j], ib[j]) * (wre[j], wim[j])
//   (ra[j], ia[j]) = a + b;  (rb[j], ib[j]) = a - b     for j in [0, n)
// with the complex product expanded as (br*wr - bi*wi, br*wi + bi*wr).
void butterfly_f64(double* ra, double* ia, double* rb, double* ib,
                   const double* wre, const double* wim,
                   std::size_t n) noexcept;

// O(m^2) DFT base case over split re/im, m in {1,2,4,8}; out[f] =
// sum_t in[t] * W[(f*t) % m] accumulated in ascending t order.  The
// twiddle table W is built internally with the same expression the
// generic path uses (polar(1, -2*pi*j/m)).
void dft_pow2_f64(const double* re_in, const double* im_in, double* re_out,
                  double* im_out, unsigned m) noexcept;

// GEP row updates over a contiguous j-range (y = row i, v = row k):
//   Floyd-Warshall:  y[j] = (u + v[j] < y[j]) ? u + v[j] : y[j]
//   Gaussian:        y[j] = y[j] - f * v[j]     (f = u / w, divided once)
//   matmul embed:    y[j] = y[j] + a * v[j]
// y and v may be the same pointer (i == k rows) but must not partially
// overlap.
void fw_min_f64(double* y, const double* v, double u, std::size_t n) noexcept;
void gauss_update_f64(double* y, const double* v, double f,
                      std::size_t n) noexcept;
void axpy_f64(double* y, const double* v, double a, std::size_t n) noexcept;

// SPMDV row kernel over AoS entries {u64 col; f64 val} addressed as two
// strided streams (stride in 8-byte words, i.e. 2 for SpmEntry):
//   acc[l] += vals[i*stride] * x[cols[i*stride]]   (lane l = i % 4)
// over full groups of 4, combined as ((acc0+acc1)+(acc2+acc3)), then the
// tail added sequentially.  Scalar and vector paths share this exact
// order, so the result is bit-identical across modes (but NOT to a plain
// serial loop -- the generic path keeps its own accumulator).
// CONTRACT: when stride_words == 2 the two streams must be the SAME
// interleaved entry array (vals == reinterpret_cast<const double*>(cols) + 1)
// -- the vector path deinterleaves one combined load.
double dot_strided_f64(const std::uint64_t* cols, const double* vals,
                       std::size_t stride_words, const double* x,
                       std::size_t n) noexcept;

// Contiguous-store gather: dst[i] = base[idx[i]] (Morton transpose tiles).
void gather_f64(const double* base, const std::uint64_t* idx, double* dst,
                std::size_t n) noexcept;

// Two-word-element variant for complex<double> tiles (base/dst viewed as
// doubles): dst[2i..2i+1] = base[2*idx[i] .. 2*idx[i]+1].
void gather_2f64(const double* base, const std::uint64_t* idx, double* dst,
                 std::size_t n) noexcept;

// ---- fixed implementations (for parity tests and the bench ratio rows) --
// scalar:: is the guaranteed-correct fallback; vec:: is the vector path
// (forwards to scalar:: when the build has no vector support -- check
// vec::available()).
namespace scalar {
void copy_bytes(const void* src, void* dst, std::size_t n) noexcept;
void pair_sum_f64(const double* src, double* dst, std::size_t pairs) noexcept;
void pair_sum_u64(const std::uint64_t* src, std::uint64_t* dst,
                  std::size_t pairs) noexcept;
void scan_expand_f64(const double* t, double* v, std::size_t i_lo,
                     std::size_t i_hi) noexcept;
void scan_expand_u64(const std::uint64_t* t, std::uint64_t* v,
                     std::size_t i_lo, std::size_t i_hi) noexcept;
void butterfly_f64(double* ra, double* ia, double* rb, double* ib,
                   const double* wre, const double* wim,
                   std::size_t n) noexcept;
void dft_pow2_f64(const double* re_in, const double* im_in, double* re_out,
                  double* im_out, unsigned m) noexcept;
void fw_min_f64(double* y, const double* v, double u, std::size_t n) noexcept;
void gauss_update_f64(double* y, const double* v, double f,
                      std::size_t n) noexcept;
void axpy_f64(double* y, const double* v, double a, std::size_t n) noexcept;
double dot_strided_f64(const std::uint64_t* cols, const double* vals,
                       std::size_t stride_words, const double* x,
                       std::size_t n) noexcept;
void gather_f64(const double* base, const std::uint64_t* idx, double* dst,
                std::size_t n) noexcept;
void gather_2f64(const double* base, const std::uint64_t* idx, double* dst,
                 std::size_t n) noexcept;
}  // namespace scalar

namespace vec {
bool available() noexcept;          // TU has real vector codegen
bool requires_avx2() noexcept;      // TU was built with -mavx2
void copy_bytes(const void* src, void* dst, std::size_t n) noexcept;
void pair_sum_f64(const double* src, double* dst, std::size_t pairs) noexcept;
void pair_sum_u64(const std::uint64_t* src, std::uint64_t* dst,
                  std::size_t pairs) noexcept;
void scan_expand_f64(const double* t, double* v, std::size_t i_lo,
                     std::size_t i_hi) noexcept;
void scan_expand_u64(const std::uint64_t* t, std::uint64_t* v,
                     std::size_t i_lo, std::size_t i_hi) noexcept;
void butterfly_f64(double* ra, double* ia, double* rb, double* ib,
                   const double* wre, const double* wim,
                   std::size_t n) noexcept;
void dft_pow2_f64(const double* re_in, const double* im_in, double* re_out,
                  double* im_out, unsigned m) noexcept;
void fw_min_f64(double* y, const double* v, double u, std::size_t n) noexcept;
void gauss_update_f64(double* y, const double* v, double f,
                      std::size_t n) noexcept;
void axpy_f64(double* y, const double* v, double a, std::size_t n) noexcept;
double dot_strided_f64(const std::uint64_t* cols, const double* vals,
                       std::size_t stride_words, const double* x,
                       std::size_t n) noexcept;
void gather_f64(const double* base, const std::uint64_t* idx, double* dst,
                std::size_t n) noexcept;
void gather_2f64(const double* base, const std::uint64_t* idx, double* dst,
                 std::size_t n) noexcept;
}  // namespace vec

// Typed convenience over copy_bytes for run views / tile rows.
template <class T>
inline void copy_elems(const T* src, T* dst, std::size_t n) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  copy_bytes(src, dst, n * sizeof(T));
}

}  // namespace obliv::simd
