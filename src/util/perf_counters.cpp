#include "util/perf_counters.hpp"

#include <cerrno>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace obliv::util {

#if defined(__linux__)

namespace {

int open_event(PerfEvent ev) {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.inherit = 1;  // count child threads (the NativeExecutor pool)
  switch (ev) {
    case PerfEvent::kCacheMisses:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_CACHE_MISSES;
      break;
    case PerfEvent::kCacheReferences:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_CACHE_REFERENCES;
      break;
    case PerfEvent::kL1DReadMisses:
      attr.type = PERF_TYPE_HW_CACHE;
      attr.config = PERF_COUNT_HW_CACHE_L1D |
                    (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                    (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
      break;
    case PerfEvent::kInstructions:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_INSTRUCTIONS;
      break;
    case PerfEvent::kCycles:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_CPU_CYCLES;
      break;
  }
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

}  // namespace

PerfCounterGroup::PerfCounterGroup(std::vector<PerfEvent> events) {
  available_ = true;
  for (PerfEvent ev : events) {
    const int fd = open_event(ev);
    if (fd < 0) {
      available_ = false;
      error_ = std::string("perf_event_open failed: ") + std::strerror(errno);
      break;
    }
    fds_.push_back(fd);
  }
  if (!available_) {
    for (int fd : fds_) close(fd);
    fds_.clear();
  }
  values_.assign(events.size(), 0);
}

PerfCounterGroup::~PerfCounterGroup() {
  for (int fd : fds_) close(fd);
}

void PerfCounterGroup::start() {
  for (int fd : fds_) {
    ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

void PerfCounterGroup::stop() {
  for (std::size_t i = 0; i < fds_.size(); ++i) {
    ioctl(fds_[i], PERF_EVENT_IOC_DISABLE, 0);
    std::uint64_t v = 0;
    if (read(fds_[i], &v, sizeof(v)) == sizeof(v)) values_[i] = v;
  }
}

std::optional<std::uint64_t> PerfCounterGroup::value(std::size_t idx) const {
  if (!available_ || idx >= values_.size()) return std::nullopt;
  return values_[idx];
}

#else  // !__linux__

PerfCounterGroup::PerfCounterGroup(std::vector<PerfEvent> events) {
  available_ = false;
  error_ = "perf counters require Linux";
  values_.assign(events.size(), 0);
}

PerfCounterGroup::~PerfCounterGroup() = default;
void PerfCounterGroup::start() {}
void PerfCounterGroup::stop() {}

std::optional<std::uint64_t> PerfCounterGroup::value(std::size_t) const {
  return std::nullopt;
}

#endif

}  // namespace obliv::util
