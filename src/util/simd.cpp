// Scalar fallbacks + runtime dispatch for the SIMD layer (simd.hpp).
//
// This TU is compiled with -ffp-contract=off (see src/CMakeLists.txt) so
// the fallback arithmetic cannot be FMA-contracted away from the vector
// TU's results -- the ON/OFF golden test in test_simd_kernels.cpp depends
// on scalar:: and vec:: being bit-identical.
#include "util/simd.hpp"

#include <cmath>
#include <numbers>

namespace obliv::simd {

namespace detail {
std::atomic<Mode> g_mode{Mode::kAuto};

void dft_twiddles(double* wr, double* wi, unsigned m) noexcept {
  for (unsigned j = 0; j < m; ++j) {
    // Matches algo::detail::dft_base: polar(1.0, -2*pi*j/m); the rho = 1.0
    // scale inside std::polar is exact, so cos/sin give the same bits.
    const double ang = -2.0 * std::numbers::pi * static_cast<double>(j) /
                       static_cast<double>(m);
    wr[j] = std::cos(ang);
    wi[j] = std::sin(ang);
  }
}

bool vector_supported() noexcept {
  static const bool ok = [] {
    if (!vec::available()) return false;
#if defined(__x86_64__) || defined(__i386__)
    if (vec::requires_avx2()) return __builtin_cpu_supports("avx2") != 0;
#endif
    return true;
  }();
  return ok;
}
}  // namespace detail

unsigned lane_width() noexcept { return vector_active() ? kMaxLaneWords : 1; }

const char* active_isa() noexcept {
  if (!vector_active()) return "scalar";
  return vec::requires_avx2() ? "avx2" : "vec128";
}

namespace scalar {

void copy_bytes(const void* src, void* dst, std::size_t n) noexcept {
  std::memcpy(dst, src, n);
}

void pair_sum_f64(const double* src, double* dst, std::size_t pairs) noexcept {
  for (std::size_t i = 0; i < pairs; ++i) dst[i] = src[2 * i] + src[2 * i + 1];
}

void pair_sum_u64(const std::uint64_t* src, std::uint64_t* dst,
                  std::size_t pairs) noexcept {
  for (std::size_t i = 0; i < pairs; ++i) dst[i] = src[2 * i] + src[2 * i + 1];
}

void scan_expand_f64(const double* t, double* v, std::size_t i_lo,
                     std::size_t i_hi) noexcept {
  for (std::size_t i = i_lo; i < i_hi; ++i) {
    v[2 * i] = t[i - 1] + v[2 * i];
    v[2 * i + 1] = t[i];
  }
}

void scan_expand_u64(const std::uint64_t* t, std::uint64_t* v,
                     std::size_t i_lo, std::size_t i_hi) noexcept {
  for (std::size_t i = i_lo; i < i_hi; ++i) {
    v[2 * i] = t[i - 1] + v[2 * i];
    v[2 * i + 1] = t[i];
  }
}

void butterfly_f64(double* ra, double* ia, double* rb, double* ib,
                   const double* wre, const double* wim,
                   std::size_t n) noexcept {
  for (std::size_t j = 0; j < n; ++j) {
    const double ar = ra[j], ai = ia[j];
    const double xr = rb[j], xi = ib[j];
    const double br = xr * wre[j] - xi * wim[j];
    const double bi = xr * wim[j] + xi * wre[j];
    ra[j] = ar + br;
    ia[j] = ai + bi;
    rb[j] = ar - br;
    ib[j] = ai - bi;
  }
}

void dft_pow2_f64(const double* re_in, const double* im_in, double* re_out,
                  double* im_out, unsigned m) noexcept {
  // Same twiddle expression as the generic path: polar(1, -2*pi*j/m).
  double wr[8], wi[8];
  detail::dft_twiddles(wr, wi, m);
  for (unsigned f = 0; f < m; ++f) {
    double ar = 0.0, ai = 0.0;
    for (unsigned t = 0; t < m; ++t) {
      const unsigned j = (f * t) % m;
      // complex acc += in * w with libstdc++'s finite-path product order.
      const double pr = re_in[t] * wr[j] - im_in[t] * wi[j];
      const double pi = re_in[t] * wi[j] + im_in[t] * wr[j];
      ar += pr;
      ai += pi;
    }
    re_out[f] = ar;
    im_out[f] = ai;
  }
}

void fw_min_f64(double* y, const double* v, double u, std::size_t n) noexcept {
  for (std::size_t j = 0; j < n; ++j) {
    const double cand = u + v[j];
    y[j] = cand < y[j] ? cand : y[j];
  }
}

void gauss_update_f64(double* y, const double* v, double f,
                      std::size_t n) noexcept {
  for (std::size_t j = 0; j < n; ++j) y[j] = y[j] - f * v[j];
}

void axpy_f64(double* y, const double* v, double a, std::size_t n) noexcept {
  for (std::size_t j = 0; j < n; ++j) y[j] = y[j] + a * v[j];
}

double dot_strided_f64(const std::uint64_t* cols, const double* vals,
                       std::size_t stride_words, const double* x,
                       std::size_t n) noexcept {
  // Mirrors the vector path exactly: 4 independent accumulators over full
  // groups, combined pairwise, then a sequential tail.
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  const std::size_t groups = n / 4;
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t l = 0; l < 4; ++l) {
      const std::size_t i = (4 * g + l) * stride_words;
      acc[l] += vals[i] * x[cols[i]];
    }
  }
  double s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
  for (std::size_t i = 4 * groups; i < n; ++i) {
    const std::size_t k = i * stride_words;
    s += vals[k] * x[cols[k]];
  }
  return s;
}

void gather_f64(const double* base, const std::uint64_t* idx, double* dst,
                std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = base[idx[i]];
}

void gather_2f64(const double* base, const std::uint64_t* idx, double* dst,
                 std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    dst[2 * i] = base[2 * idx[i]];
    dst[2 * i + 1] = base[2 * idx[i] + 1];
  }
}

}  // namespace scalar

// ---- dispatchers ---------------------------------------------------------

#define OBLIV_SIMD_DISPATCH(call) \
  (vector_active() ? vec::call : scalar::call)

void copy_bytes(const void* src, void* dst, std::size_t n) noexcept {
  OBLIV_SIMD_DISPATCH(copy_bytes(src, dst, n));
}
void pair_sum_f64(const double* src, double* dst, std::size_t pairs) noexcept {
  OBLIV_SIMD_DISPATCH(pair_sum_f64(src, dst, pairs));
}
void pair_sum_u64(const std::uint64_t* src, std::uint64_t* dst,
                  std::size_t pairs) noexcept {
  OBLIV_SIMD_DISPATCH(pair_sum_u64(src, dst, pairs));
}
void scan_expand_f64(const double* t, double* v, std::size_t i_lo,
                     std::size_t i_hi) noexcept {
  OBLIV_SIMD_DISPATCH(scan_expand_f64(t, v, i_lo, i_hi));
}
void scan_expand_u64(const std::uint64_t* t, std::uint64_t* v,
                     std::size_t i_lo, std::size_t i_hi) noexcept {
  OBLIV_SIMD_DISPATCH(scan_expand_u64(t, v, i_lo, i_hi));
}
void butterfly_f64(double* ra, double* ia, double* rb, double* ib,
                   const double* wre, const double* wim,
                   std::size_t n) noexcept {
  OBLIV_SIMD_DISPATCH(butterfly_f64(ra, ia, rb, ib, wre, wim, n));
}
void dft_pow2_f64(const double* re_in, const double* im_in, double* re_out,
                  double* im_out, unsigned m) noexcept {
  OBLIV_SIMD_DISPATCH(dft_pow2_f64(re_in, im_in, re_out, im_out, m));
}
void fw_min_f64(double* y, const double* v, double u, std::size_t n) noexcept {
  OBLIV_SIMD_DISPATCH(fw_min_f64(y, v, u, n));
}
void gauss_update_f64(double* y, const double* v, double f,
                      std::size_t n) noexcept {
  OBLIV_SIMD_DISPATCH(gauss_update_f64(y, v, f, n));
}
void axpy_f64(double* y, const double* v, double a, std::size_t n) noexcept {
  OBLIV_SIMD_DISPATCH(axpy_f64(y, v, a, n));
}
double dot_strided_f64(const std::uint64_t* cols, const double* vals,
                       std::size_t stride_words, const double* x,
                       std::size_t n) noexcept {
  return OBLIV_SIMD_DISPATCH(dot_strided_f64(cols, vals, stride_words, x, n));
}
void gather_f64(const double* base, const std::uint64_t* idx, double* dst,
                std::size_t n) noexcept {
  OBLIV_SIMD_DISPATCH(gather_f64(base, idx, dst, n));
}
void gather_2f64(const double* base, const std::uint64_t* idx, double* dst,
                 std::size_t n) noexcept {
  OBLIV_SIMD_DISPATCH(gather_2f64(base, idx, dst, n));
}

#undef OBLIV_SIMD_DISPATCH

}  // namespace obliv::simd
