// Small statistics helpers used by the benchmark harness to compare measured
// complexity curves against the closed-form bounds stated in the paper.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace obliv::util {

/// Least-squares fit of y = a * x^slope over positive samples, computed in
/// log-log space.  Returns the slope; this is how benches check that, e.g.,
/// measured GEP cache misses grow like n^3 (slope ~ 3 in an n-sweep).
double loglog_slope(std::span<const double> x, std::span<const double> y);

/// Geometric mean of the point-wise ratios y[i] / model[i].  A bound "holds
/// in shape" when this is O(1) across the sweep and the ratio spread is small.
double geomean_ratio(std::span<const double> y, std::span<const double> model);

/// max(ratio) / min(ratio) over the sweep: flatness of measured/model.
double ratio_spread(std::span<const double> y, std::span<const double> model);

/// Simple running summary (min / max / mean) of a sample stream.
struct Summary {
  double min = 0, max = 0, mean = 0;
  std::size_t count = 0;
};

Summary summarize(std::span<const double> xs);

}  // namespace obliv::util
