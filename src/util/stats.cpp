#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace obliv::util {

double loglog_slope(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  std::size_t n = 0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0 || y[i] <= 0) continue;
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) return 0.0;
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (static_cast<double>(n) * sxy - sx * sy) / denom;
}

double geomean_ratio(std::span<const double> y, std::span<const double> model) {
  assert(y.size() == model.size());
  double acc = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] <= 0 || model[i] <= 0) continue;
    acc += std::log(y[i] / model[i]);
    ++n;
  }
  return n == 0 ? 0.0 : std::exp(acc / static_cast<double>(n));
}

double ratio_spread(std::span<const double> y, std::span<const double> model) {
  assert(y.size() == model.size());
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] <= 0 || model[i] <= 0) continue;
    const double r = y[i] / model[i];
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  if (hi == 0) return 0.0;
  return hi / lo;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  double total = 0;
  for (double v : xs) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    total += v;
  }
  s.count = xs.size();
  s.mean = total / static_cast<double>(xs.size());
  return s;
}

}  // namespace obliv::util
