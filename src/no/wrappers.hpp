// NO-LR and NO connected components (paper, Section VI-B, Theorems 9 & 10).
//
// The paper derives these by adapting the MO algorithms: nodes are evenly
// distributed among the PEs and every step is O(1) sorts and scans.  We
// realize exactly that by running the MO algorithm templates on NoExecutor:
// the block-distributed buffers give the even distribution, CGC pfors become
// superstep-fenced PE loops, and SPMS's CGC=>SB recursion maps to recursive
// PE-group splitting.  The declared remote accesses reproduce the sort-and-
// scan communication pattern that Theorems 9 and 10 bound.
#pragma once

#include <cstdint>
#include <vector>

#include "algo/graph.hpp"
#include "algo/listrank.hpp"
#include "no/executor.hpp"
#include "no/machine.hpp"

namespace obliv::no {

/// NO-LR on M(mach.pes()): ranks of a linked list given as host succ/pred
/// arrays; returns dist-from-end per node.
inline std::vector<std::uint64_t> no_list_rank(
    NoMachine& mach, const std::vector<std::uint64_t>& succ,
    const std::vector<std::uint64_t>& pred) {
  NoExecutor ex(&mach);
  const std::uint64_t n = succ.size();
  auto sb = ex.make_buf<std::uint64_t>(n);
  auto pb = ex.make_buf<std::uint64_t>(n);
  auto db = ex.make_buf<std::uint64_t>(n);
  sb.raw() = succ;
  pb.raw() = pred;
  algo::mo_list_rank(ex, sb.ref(), pb.ref(), db.ref());
  mach.end_superstep();
  return db.raw();
}

/// NO connected components on M(mach.pes()).
inline std::vector<std::uint64_t> no_connected_components(
    NoMachine& mach, const algo::EdgeList& g) {
  NoExecutor ex(&mach);
  auto comp = algo::mo_connected_components(ex, g);
  mach.end_superstep();
  return comp;
}

/// NO prefix sum (Table II row 1) on M(mach.pes()).
inline std::vector<std::uint64_t> no_prefix_sum(
    NoMachine& mach, const std::vector<std::uint64_t>& xs) {
  NoExecutor ex(&mach);
  auto buf = ex.make_buf<std::uint64_t>(xs.size());
  buf.raw() = xs;
  algo::mo_prefix_sum(ex, buf.ref());
  mach.end_superstep();
  return buf.raw();
}

}  // namespace obliv::no
