#include "no/machine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "util/bits.hpp"

namespace obliv::no {

DbspConfig DbspConfig::mesh_like(std::uint32_t P) {
  DbspConfig cfg;
  cfg.P = P;
  const unsigned levels = util::ilog2(std::uint64_t{P} | 1);
  for (unsigned i = 0; i < std::max(1u, levels); ++i) {
    const double cluster = static_cast<double>(P) / double(1u << i);
    cfg.g.push_back(std::sqrt(cluster));
    cfg.B.push_back(std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::sqrt(cluster))));
  }
  return cfg;
}

namespace {

/// Typed validation of an M(p, B) / D-BSP machine description.  Every
/// violation below was previously an assert (compiled out of release
/// builds) followed by a division by zero in send()/end_superstep().
Status validate_machine(std::uint64_t n_pes,
                        const std::vector<FoldConfig>& folds,
                        const DbspConfig& dbsp) {
  auto fail = [](const std::string& msg) {
    return Status::error(ErrorCode::kInvalidConfig, "NoMachine: " + msg);
  };
  if (n_pes == 0) return fail("at least one processing element is required");
  for (std::size_t f = 0; f < folds.size(); ++f) {
    const std::string at = "fold " + std::to_string(f) + ": ";
    if (folds[f].p == 0) return fail(at + "p must be positive");
    if (folds[f].p > n_pes) {
      return fail(at + "p = " + std::to_string(folds[f].p) +
                  " exceeds the number of PEs (" + std::to_string(n_pes) +
                  ")");
    }
    if (folds[f].block == 0) return fail(at + "block size must be positive");
  }
  if (dbsp.P > 0) {
    if (dbsp.P > n_pes) return fail("D-BSP P exceeds the number of PEs");
    if (dbsp.g.empty() || dbsp.g.size() != dbsp.B.size()) {
      return fail("D-BSP g and B must be non-empty and equal-length");
    }
    for (std::size_t i = 0; i < dbsp.B.size(); ++i) {
      if (dbsp.B[i] == 0) return fail("D-BSP block sizes must be positive");
    }
  }
  return Status();
}

}  // namespace

NoMachine::NoMachine(std::uint64_t n_pes, std::vector<FoldConfig> folds,
                     DbspConfig dbsp)
    : n_(n_pes), folds_(std::move(folds)), dbsp_(std::move(dbsp)) {
  validate_machine(n_, folds_, dbsp_).throw_if_error();
  states_.resize(folds_.size());
  for (std::size_t f = 0; f < folds_.size(); ++f) {
    states_[f].ops.assign(folds_[f].p, 0);
  }
  dbsp_worst_level_ =
      dbsp_.g.empty() ? 0 : static_cast<std::uint32_t>(dbsp_.g.size()) - 1;
}

Result<NoMachine> NoMachine::make(std::uint64_t n_pes,
                                  std::vector<FoldConfig> folds,
                                  DbspConfig dbsp) noexcept {
  try {
    return NoMachine(n_pes, std::move(folds), std::move(dbsp));
  } catch (const Error& e) {
    return Status::error(e.code(), e.what());
  } catch (const std::bad_alloc&) {
    return Status::error(ErrorCode::kResourceExhausted,
                         "allocation failed while building NoMachine");
  } catch (const std::exception& e) {
    return Status::error(ErrorCode::kInternal, e.what());
  }
}

void NoMachine::send(std::uint64_t src_pe, std::uint64_t dst_pe,
                     std::uint64_t words) {
  assert(src_pe < n_ && dst_pe < n_);
  if (src_pe == dst_pe || words == 0) return;
  superstep_dirty_ = true;
  total_words_ += words;
  step_words_ += words;
  for (std::size_t f = 0; f < folds_.size(); ++f) {
    const std::uint32_t p = folds_[f].p;
    const std::uint64_t per = n_ / p;  // consecutive PEs per processor
    const std::uint64_t sp = std::min<std::uint64_t>(src_pe / per, p - 1);
    const std::uint64_t dp = std::min<std::uint64_t>(dst_pe / per, p - 1);
    if (sp == dp) continue;
    states_[f].out_words[(sp << 32) | dp] += words;
    states_[f].touched.insert(static_cast<std::uint32_t>(sp));
    states_[f].touched.insert(static_cast<std::uint32_t>(dp));
  }
  if (dbsp_.P > 0) {
    const std::uint64_t per = n_ / dbsp_.P;
    const std::uint64_t sp = std::min<std::uint64_t>(src_pe / per,
                                                     dbsp_.P - 1);
    const std::uint64_t dp = std::min<std::uint64_t>(dst_pe / per,
                                                     dbsp_.P - 1);
    if (sp != dp) {
      dbsp_words_[(sp << 32) | dp] += words;
      dbsp_touched_.insert(static_cast<std::uint32_t>(sp));
      dbsp_touched_.insert(static_cast<std::uint32_t>(dp));
      // Cluster level i has clusters of P / 2^i processors; the message
      // needs the smallest i (largest cluster) with sp, dp in one cluster.
      std::uint32_t level = static_cast<std::uint32_t>(dbsp_.g.size()) - 1;
      while (level > 0 &&
             (sp / (dbsp_.P >> level)) != (dp / (dbsp_.P >> level))) {
        --level;
      }
      dbsp_worst_level_ = std::min(dbsp_worst_level_, level);
    }
  }
}

void NoMachine::compute(std::uint64_t pe, std::uint64_t ops) {
  assert(pe < n_);
  if (ops == 0) return;
  superstep_dirty_ = true;
  for (std::size_t f = 0; f < folds_.size(); ++f) {
    const std::uint32_t p = folds_[f].p;
    const std::uint64_t per = n_ / p;
    const std::uint64_t proc = std::min<std::uint64_t>(pe / per, p - 1);
    states_[f].ops[proc] += ops;
    states_[f].touched.insert(static_cast<std::uint32_t>(proc));
  }
  if (dbsp_.P > 0) {
    const std::uint64_t per = n_ / dbsp_.P;
    dbsp_touched_.insert(static_cast<std::uint32_t>(
        std::min<std::uint64_t>(pe / per, dbsp_.P - 1)));
  }
}

void NoMachine::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  hist_superstep_words_ = nullptr;
  if constexpr (obs::kTracingCompiledIn) {
    if (tracer != nullptr) {
      tracer->set_logical_clock(&total_words_);
      tracer->name_lane(obs::kSuperstepLane, "supersteps");
      hist_superstep_words_ =
          &tracer->counters().histogram("no.superstep.words");
    }
  }
}

void NoMachine::end_superstep() {
  if (!superstep_dirty_) return;
  ++supersteps_;
  std::uint64_t fold0_h = 0;
  for (std::size_t f = 0; f < folds_.size(); ++f) {
    FoldState& st = states_[f];
    const std::uint32_t p = folds_[f].p;
    const std::uint64_t B = folds_[f].block;
    std::vector<std::uint64_t> out_blocks(p, 0), in_blocks(p, 0);
    for (const auto& [key, words] : st.out_words) {
      const std::uint64_t sp = key >> 32, dp = key & 0xffffffffull;
      const std::uint64_t blocks = util::ceil_div(words, B);
      out_blocks[sp] += blocks;
      in_blocks[dp] += blocks;
    }
    std::uint64_t h = 0;
    for (std::uint32_t r = 0; r < p; ++r) {
      h = std::max({h, out_blocks[r], in_blocks[r]});
    }
    if (f == 0) fold0_h = h;
    st.comm_total += h;
    std::uint64_t w = 0;
    for (std::uint32_t r = 0; r < p; ++r) w = std::max(w, st.ops[r]);
    st.comp_total += w;
    st.out_words.clear();
    std::fill(st.ops.begin(), st.ops.end(), 0);
  }
  if (dbsp_.P > 0 && !dbsp_words_.empty()) {
    const std::uint32_t lvl = dbsp_worst_level_;
    const std::uint64_t B = dbsp_.B[lvl];
    std::vector<std::uint64_t> out_blocks(dbsp_.P, 0), in_blocks(dbsp_.P, 0);
    for (const auto& [key, words] : dbsp_words_) {
      const std::uint64_t sp = key >> 32, dp = key & 0xffffffffull;
      const std::uint64_t blocks = util::ceil_div(words, B);
      out_blocks[sp] += blocks;
      in_blocks[dp] += blocks;
    }
    std::uint64_t h = 0;
    for (std::uint32_t r = 0; r < dbsp_.P; ++r) {
      h = std::max({h, out_blocks[r], in_blocks[r]});
    }
    dbsp_time_ += static_cast<double>(h) * dbsp_.g[lvl];
    dbsp_words_.clear();
  }
  dbsp_worst_level_ =
      dbsp_.g.empty() ? 0 : static_cast<std::uint32_t>(dbsp_.g.size()) - 1;
  if constexpr (obs::kTracingCompiledIn) {
    if (tracer_ != nullptr) {
      hist_superstep_words_->record(step_words_);
      tracer_->emit(0, obs::EventKind::kSuperstep, 0, obs::kSuperstepLane,
                    supersteps_ - 1, step_words_, fold0_h);
    }
  }
  step_words_ = 0;
  superstep_dirty_ = false;
}

template <class T>
T NoMachine::combine_branches(
    const std::vector<T>& deltas,
    const std::vector<std::unordered_set<std::uint32_t>>& procs) {
  // Parallel branches run simultaneously, but branches folded onto the same
  // processor time-share it.  Attribute each branch's cost to every
  // processor it touched and charge the busiest processor: disjoint
  // branches combine by max, co-located ones add.  (Attributing the full
  // branch delta to each touched processor is an upper bound for branches
  // that straddle processors.)
  std::unordered_map<std::uint32_t, T> per_proc;
  T best{};
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    if (procs[i].empty()) continue;
    for (std::uint32_t q : procs[i]) {
      T& v = per_proc[q];
      v += deltas[i];
      best = std::max(best, v);
    }
  }
  return best;
}

void NoMachine::parallel_begin() {
  end_superstep();
  ParFrame f;
  f.branch_comm.resize(states_.size());
  f.branch_comp.resize(states_.size());
  f.branch_procs.resize(states_.size());
  for (auto& st : states_) {
    f.base_comm.push_back(st.comm_total);
    f.base_comp.push_back(st.comp_total);
    f.outer_touched.push_back(std::move(st.touched));
    st.touched.clear();
  }
  f.base_dbsp = dbsp_time_;
  f.outer_dbsp_touched = std::move(dbsp_touched_);
  dbsp_touched_.clear();
  f.base_steps = supersteps_;
  par_stack_.push_back(std::move(f));
}

void NoMachine::parallel_next() {
  end_superstep();
  ParFrame& f = par_stack_.back();
  for (std::size_t i = 0; i < states_.size(); ++i) {
    f.branch_comm[i].push_back(states_[i].comm_total - f.base_comm[i]);
    f.branch_comp[i].push_back(states_[i].comp_total - f.base_comp[i]);
    f.branch_procs[i].push_back(std::move(states_[i].touched));
    states_[i].touched.clear();
    states_[i].comm_total = f.base_comm[i];
    states_[i].comp_total = f.base_comp[i];
  }
  f.branch_dbsp.push_back(dbsp_time_ - f.base_dbsp);
  f.branch_dbsp_procs.push_back(std::move(dbsp_touched_));
  dbsp_touched_.clear();
  dbsp_time_ = f.base_dbsp;
  f.best_steps = std::max(f.best_steps, supersteps_ - f.base_steps);
  supersteps_ = f.base_steps;
}

void NoMachine::parallel_end() {
  ParFrame& f = par_stack_.back();
  for (std::size_t i = 0; i < states_.size(); ++i) {
    states_[i].comm_total =
        f.base_comm[i] + combine_branches(f.branch_comm[i], f.branch_procs[i]);
    states_[i].comp_total =
        f.base_comp[i] + combine_branches(f.branch_comp[i], f.branch_procs[i]);
    // The enclosing context's branch (if any) has touched everything the
    // inner branches touched.
    states_[i].touched = std::move(f.outer_touched[i]);
    for (const auto& s : f.branch_procs[i]) {
      states_[i].touched.insert(s.begin(), s.end());
    }
  }
  dbsp_time_ =
      f.base_dbsp + combine_branches(f.branch_dbsp, f.branch_dbsp_procs);
  dbsp_touched_ = std::move(f.outer_dbsp_touched);
  for (const auto& s : f.branch_dbsp_procs) {
    dbsp_touched_.insert(s.begin(), s.end());
  }
  // Branches on disjoint PEs run their supersteps in lockstep: max.
  supersteps_ = f.base_steps + f.best_steps;
  par_stack_.pop_back();
}

std::uint64_t NoMachine::communication(std::size_t idx) const {
  return states_.at(idx).comm_total;
}

std::uint64_t NoMachine::computation(std::size_t idx) const {
  return states_.at(idx).comp_total;
}

void NoMachine::reset() {
  for (auto& st : states_) {
    st.out_words.clear();
    std::fill(st.ops.begin(), st.ops.end(), 0);
    st.comm_total = 0;
    st.comp_total = 0;
    st.touched.clear();
  }
  dbsp_words_.clear();
  dbsp_touched_.clear();
  par_stack_.clear();
  dbsp_time_ = 0;
  dbsp_worst_level_ =
      dbsp_.g.empty() ? 0 : static_cast<std::uint32_t>(dbsp_.g.size()) - 1;
  supersteps_ = 0;
  total_words_ = 0;
  step_words_ = 0;
  superstep_dirty_ = false;
}

}  // namespace obliv::no
