// NoExecutor: runs the *same* algorithm templates as SimExecutor /
// NativeExecutor, but on the M(N) message-passing model.
//
// This realizes the paper's closing observation -- that MO and NO
// algorithms are two faces of one oblivious design: data lives in
// block-distributed arrays (N/p-consecutive-PEs folding), every remote
// load/store is declared as a message to NoMachine, and each parallel
// construct is one (or more) supersteps.  Running MO-LR or MO-CC through
// this executor yields exactly the NO-LR / NO-CC adaptations of Section
// VI-B: nodes evenly distributed among PEs, communication dominated by the
// O(1) sorts and scans per contraction step.
//
// The executor tracks a PE-group context (the message-passing analogue of
// an anchor's shadow): CGC pfors split their range over the group's PEs,
// and SB / CGC=>SB forks narrow the group recursively.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "no/machine.hpp"
#include "sched/hints.hpp"
#include "util/bits.hpp"

namespace obliv::no {

template <class T>
class NoRef;
template <class T>
class NoBuf;

class NoExecutor {
 public:
  explicit NoExecutor(NoMachine* machine)
      : mach_(machine), group_lo_(0), group_hi_(machine->pes()),
        cur_pe_(0) {}

  NoMachine& machine() { return *mach_; }
  std::uint64_t pes() const { return mach_->pes(); }
  std::uint64_t current_pe() const { return cur_pe_; }

  template <class T>
  NoBuf<T> make_buf(std::size_t n);

  /// Element-wise copy (counterpart of SimExecutor::copy).  Per-element on
  /// this model: every element's read and write owes its own message.
  template <class T>
  void copy(NoRef<T> dst, NoRef<T> src) {
    assert(dst.size() == src.size());
    for (std::size_t i = 0; i < src.size(); ++i) dst.store(i, src.load(i));
  }

  void tick(std::uint64_t n) { mach_->compute(cur_pe_, n); }

  /// Called by NoRef on every element access: local accesses cost compute
  /// only; remote ones are declared messages (a read pulls the value from
  /// the owner, a write pushes it).
  void access_at(std::uint64_t owner_pe, std::uint32_t words, bool write) {
    if (owner_pe != cur_pe_) {
      if (write) {
        mach_->send(cur_pe_, owner_pe, words);
      } else {
        mach_->send(owner_pe, cur_pe_, words);
      }
    }
    mach_->compute(cur_pe_, words);
  }

  // ---- Exec interface (same shape as SimExecutor) -------------------------

  void cgc_pfor(std::uint64_t lo, std::uint64_t hi,
                std::uint64_t words_per_iter,
                const std::function<void(std::uint64_t, std::uint64_t)>& body) {
    if (hi <= lo) return;
    mach_->end_superstep();
    const std::uint64_t t = hi - lo;
    const std::uint64_t group = group_hi_ - group_lo_;
    const std::uint64_t chunks = std::min<std::uint64_t>(group, t);
    const std::uint64_t len = util::ceil_div(t, chunks);
    const std::uint64_t saved = cur_pe_;
    std::uint64_t j = 0;
    for (std::uint64_t start = lo; start < hi; start += len, ++j) {
      cur_pe_ = group_lo_ + (j % group);
      body(start, std::min(hi, start + len));
    }
    cur_pe_ = saved;
    mach_->end_superstep();
  }

  void cgc_pfor_each(std::uint64_t lo, std::uint64_t hi,
                     std::uint64_t words_per_iter,
                     const std::function<void(std::uint64_t)>& body) {
    cgc_pfor(lo, hi, words_per_iter,
             [&](std::uint64_t a, std::uint64_t b) {
               for (std::uint64_t k = a; k < b; ++k) body(k);
             });
  }

  void sb_parallel(std::vector<sched::SbTask> tasks) {
    run_group_tasks(tasks.size(), [&](std::uint64_t k) { tasks[k].body(); });
  }

  void sb_parallel2(std::uint64_t s1, const std::function<void()>& f1,
                    std::uint64_t s2, const std::function<void()>& f2) {
    std::vector<sched::SbTask> tasks;
    tasks.push_back(sched::SbTask{s1, f1});
    tasks.push_back(sched::SbTask{s2, f2});
    sb_parallel(std::move(tasks));
  }

  void sb_seq(std::uint64_t, const std::function<void()>& body) { body(); }

  void cgc_sb_pfor(std::uint64_t count, std::uint64_t,
                   const std::function<void(std::uint64_t)>& body) {
    run_group_tasks(count, body);
  }

 private:
  /// Splits the current PE group into min(count, group) subgroups; tasks
  /// mapped to the same subgroup serialize, disjoint subgroups run in
  /// parallel (accounted by max via NoMachine's parallel frames).
  void run_group_tasks(std::uint64_t count,
                       const std::function<void(std::uint64_t)>& body) {
    if (count == 0) return;
    const std::uint64_t lo = group_lo_, hi = group_hi_;
    const std::uint64_t group = hi - lo;
    const std::uint64_t subgroups = std::min<std::uint64_t>(group, count);
    const std::uint64_t per = group / subgroups;
    const std::uint64_t saved_pe = cur_pe_;
    mach_->parallel_begin();
    for (std::uint64_t s = 0; s < subgroups; ++s) {
      group_lo_ = lo + s * per;
      group_hi_ = (s + 1 == subgroups) ? hi : lo + (s + 1) * per;
      cur_pe_ = group_lo_;
      for (std::uint64_t k = s; k < count; k += subgroups) body(k);
      mach_->parallel_next();
    }
    mach_->parallel_end();
    group_lo_ = lo;
    group_hi_ = hi;
    cur_pe_ = saved_pe;
  }

  NoMachine* mach_;
  std::uint64_t group_lo_, group_hi_;
  std::uint64_t cur_pe_;
  std::uint64_t addr_top_ = 0;

  template <class T>
  friend class NoBuf;
};

/// Block-distributed array view: element i of an n-element buffer created by
/// PE group [g_lo, g_hi) lives at PE g_lo + i * (g_hi - g_lo) / n.
template <class T>
class NoRef {
 public:
  using value_type = T;

  NoRef() = default;
  NoRef(NoExecutor* ex, T* data, std::size_t n, std::uint64_t g_lo,
        std::uint64_t g_span, std::uint64_t off0, std::size_t n0)
      : ex_(ex), data_(data), n_(n), g_lo_(g_lo), g_span_(g_span),
        off0_(off0), n0_(n0) {}

  T load(std::size_t i) const {
    assert(i < n_);
    ex_->access_at(owner(i), W, false);
    return data_[i];
  }

  void store(std::size_t i, const T& v) const {
    assert(i < n_);
    ex_->access_at(owner(i), W, true);
    data_[i] = v;
  }

  template <class F>
  void update(std::size_t i, F&& f) const {
    assert(i < n_);
    ex_->access_at(owner(i), W, true);
    f(data_[i]);
  }

  // Batched accessors, per-element here: consecutive elements may live on
  // different PEs, so each one still declares its own message.  Message and
  // compute counters are bit-identical to the unbatched loop.
  void load_run(std::size_t i, std::size_t len, T* out) const {
    for (std::size_t k = 0; k < len; ++k) out[k] = load(i + k);
  }
  void store_run(std::size_t i, std::size_t len, const T* src) const {
    for (std::size_t k = 0; k < len; ++k) store(i + k, src[k]);
  }
  std::pair<T, T> load2(std::size_t i) const {
    const T a = load(i);
    return {a, load(i + 1)};
  }

  NoRef slice(std::size_t off, std::size_t len) const {
    assert(off + len <= n_);
    return NoRef(ex_, data_ + off, len, g_lo_, g_span_, off0_ + off, n0_);
  }

  std::size_t size() const { return n_; }
  T* raw() const { return data_; }

  /// Owner PE of element i (relative to the original buffer's layout).
  std::uint64_t owner(std::size_t i) const {
    return g_lo_ + ((off0_ + i) * g_span_) / n0_;
  }

 private:
  static constexpr std::uint64_t W = (sizeof(T) + 7) / 8;
  NoExecutor* ex_ = nullptr;
  T* data_ = nullptr;
  std::size_t n_ = 0;
  std::uint64_t g_lo_ = 0, g_span_ = 1;
  std::uint64_t off0_ = 0;  // offset of this slice in the original buffer
  std::size_t n0_ = 1;      // original buffer length
};

template <class T>
class NoBuf {
 public:
  NoBuf() = default;
  NoBuf(NoExecutor* ex, std::size_t n, std::uint64_t g_lo,
        std::uint64_t g_span)
      : ex_(ex), v_(n), g_lo_(g_lo), g_span_(g_span) {}

  NoRef<T> ref() {
    return NoRef<T>(ex_, v_.data(), v_.size(), g_lo_, g_span_, 0,
                    std::max<std::size_t>(1, v_.size()));
  }
  std::size_t size() const { return v_.size(); }
  std::vector<T>& raw() { return v_; }
  const std::vector<T>& raw() const { return v_; }

 private:
  NoExecutor* ex_ = nullptr;
  std::vector<T> v_;
  std::uint64_t g_lo_ = 0, g_span_ = 1;
};

template <class T>
NoBuf<T> NoExecutor::make_buf(std::size_t n) {
  return NoBuf<T>(this, n, group_lo_, group_hi_ - group_lo_);
}

}  // namespace obliv::no
