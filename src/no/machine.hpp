// The network-oblivious machine models of Section IV.
//
// An NO algorithm is specified for M(N): a complete network of N processing
// elements executing synchronous supersteps.  Its complexity is evaluated on
// M(p, B) for p <= N processors and block size B: each processor simulates
// N/p consecutive PEs, and the communication complexity is the sum over
// supersteps of the maximum number of B-word blocks any processor sends or
// receives in that superstep.  The computation complexity is the analogous
// sum of per-processor operation maxima.
//
// NoMachine is a pure accounting engine: algorithms perform their own data
// movement on host memory and *declare* every PE-to-PE transfer with
// send(); the engine folds the traffic onto any number of (p, B)
// configurations simultaneously, and onto a D-BSP(P, g, B) cost model
// (Bilardi et al. [18]): each superstep is labeled with the smallest
// cluster granularity containing all of its messages and charged
// h_s * g_{i_s} with block size B_{i_s}.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fault/status.hpp"
#include "obs/trace.hpp"

namespace obliv::no {

/// One folding M(p, B) under which complexity is measured.
struct FoldConfig {
  std::uint32_t p;
  std::uint64_t block;
};

/// D-BSP(P, g, B) parameters: g[i] and B[i] for cluster levels
/// i = 0..log2(P)-1 (level i has 2^i clusters of P/2^i processors).
struct DbspConfig {
  std::uint32_t P = 0;  ///< 0 disables D-BSP accounting
  std::vector<double> g;
  std::vector<std::uint64_t> B;

  /// A conventional instance: g_i ~ sqrt(cluster size) (mesh-like costs),
  /// B_i halving with i.
  static DbspConfig mesh_like(std::uint32_t P);
};

class NoMachine {
 public:
  /// Validating constructor; throws obliv::Error when the machine is
  /// degenerate (0 PEs, a fold with p == 0 / p > n_pes / block == 0, or an
  /// inconsistent D-BSP description) -- each of those used to be a
  /// release-mode division by zero.  Prefer make() on untrusted input.
  NoMachine(std::uint64_t n_pes, std::vector<FoldConfig> folds,
            DbspConfig dbsp = {});

  /// Non-throwing companion returning the machine or a typed error
  /// (kInvalidConfig for degenerate descriptions).
  static Result<NoMachine> make(std::uint64_t n_pes,
                                std::vector<FoldConfig> folds,
                                DbspConfig dbsp = {}) noexcept;

  std::uint64_t pes() const { return n_; }
  const std::vector<FoldConfig>& folds() const { return folds_; }

  /// Declares that PE `src` sends `words` words to PE `dst` in the current
  /// superstep.  src == dst is free (local) and ignored.
  void send(std::uint64_t src_pe, std::uint64_t dst_pe, std::uint64_t words);

  /// Declares `ops` units of local computation at `pe`.
  void compute(std::uint64_t pe, std::uint64_t ops);

  /// Closes the current superstep and accumulates its costs.
  void end_superstep();

  /// Parallel-branch accounting: branches running on *disjoint* PE groups
  /// execute simultaneously in the real machine, so their costs combine by
  /// max, not sum.  Usage:
  ///   parallel_begin();
  ///   for each branch { run branch; parallel_next(); }
  ///   parallel_end();
  /// Nesting is allowed.  Each call fences the current superstep.
  void parallel_begin();
  void parallel_next();
  void parallel_end();

  /// Sum over supersteps of max-per-processor blocks sent/received, under
  /// fold `idx`.
  std::uint64_t communication(std::size_t idx) const;

  /// Sum over supersteps of max-per-processor operations, under fold `idx`.
  std::uint64_t computation(std::size_t idx) const;

  /// D-BSP communication time (0 if disabled).
  double dbsp_time() const { return dbsp_time_; }

  std::uint64_t supersteps() const { return supersteps_; }
  std::uint64_t total_message_words() const { return total_words_; }

  /// Attaches an obs::Tracer (nullptr detaches): every superstep close
  /// emits a kSuperstep event on lane obs::kSuperstepLane carrying the
  /// superstep index, its message words, and the fold-0 per-processor block
  /// maximum h.  The clock becomes the cumulative message-word counter, so
  /// NO traces are deterministic like the sim's.
  void set_tracer(obs::Tracer* tracer);

  void reset();

 private:
  struct FoldState {
    // Per-superstep scratch, keyed by (src_proc << 32 | dst_proc).
    std::unordered_map<std::uint64_t, std::uint64_t> out_words;
    std::vector<std::uint64_t> ops;  // per processor, current superstep
    std::uint64_t comm_total = 0;
    std::uint64_t comp_total = 0;
    // Processors touched since the innermost parallel_begin/next; used to
    // decide whether sibling branches really run on disjoint processors
    // under this fold.
    std::unordered_set<std::uint32_t> touched;
  };

  struct ParFrame {
    std::vector<std::uint64_t> base_comm, base_comp;
    // Per fold: deltas of each completed branch and the processors each
    // branch touched.  Combined at parallel_end: max when branches are on
    // pairwise-disjoint processors (true simultaneity), sum otherwise.
    std::vector<std::vector<std::uint64_t>> branch_comm, branch_comp;
    std::vector<std::vector<std::unordered_set<std::uint32_t>>> branch_procs;
    double base_dbsp = 0;
    std::vector<double> branch_dbsp;
    std::vector<std::unordered_set<std::uint32_t>> branch_dbsp_procs;
    std::uint64_t base_steps = 0, best_steps = 0;
    // Touched-sets of the enclosing context, restored (plus all branch
    // activity) at parallel_end so nested frames see inner activity.
    std::vector<std::unordered_set<std::uint32_t>> outer_touched;
    std::unordered_set<std::uint32_t> outer_dbsp_touched;
  };

  /// Combines branch deltas: max if the touched sets are pairwise disjoint,
  /// sum otherwise.
  template <class T>
  static T combine_branches(
      const std::vector<T>& deltas,
      const std::vector<std::unordered_set<std::uint32_t>>& procs);

  std::uint64_t n_;
  std::vector<FoldConfig> folds_;
  std::vector<FoldState> states_;
  std::vector<ParFrame> par_stack_;
  DbspConfig dbsp_;
  // D-BSP per-superstep scratch (under p = dbsp_.P folding).
  std::unordered_map<std::uint64_t, std::uint64_t> dbsp_words_;
  std::unordered_set<std::uint32_t> dbsp_touched_;
  std::uint32_t dbsp_worst_level_ = 0;  // largest cluster needed (level idx)
  double dbsp_time_ = 0;
  std::uint64_t supersteps_ = 0;
  std::uint64_t total_words_ = 0;
  std::uint64_t step_words_ = 0;  // words declared in the open superstep
  bool superstep_dirty_ = false;
  obs::Tracer* tracer_ = nullptr;
  // Per-superstep message-volume distribution, registered by set_tracer()
  // (null iff tracer_ is).
  obs::Histogram* hist_superstep_words_ = nullptr;
};

}  // namespace obliv::no
