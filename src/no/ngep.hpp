// N-GEP: the network-oblivious Gaussian Elimination Paradigm (paper,
// Section V-B, Table I, Theorem 6).
//
// N-GEP inherits I-GEP's recursive structure (functions A, B, C and D*),
// designed for M(n^2 / log^2 n).  The four operand blocks of a call are
// block-distributed over the call's PE group; each recursion round first
// redistributes the children's operand quadrants to their subgroups (one
// superstep -- overlapping sources aggregate, which is exactly how D's
// quadrant duplication shows up as extra traffic), runs the children in
// parallel on disjoint subgroups, and moves the X quadrants back.
//
// D* reorders D's eight recursive calls (Table I) so that no U or V
// quadrant is needed by two children of the same round; it is equivalent to
// D exactly for *commutative* GEP computations:
//   f(f(y,u1,v1,w1),u2,v2,w2) = f(f(y,u2,v2,w2),u1,v1,w1).
// Both orders are implemented so bench_ngep can reproduce Table I's
// communication contrast, and tests demonstrate the commutativity
// requirement with a non-commutative instance.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

#include "algo/gep.hpp"
#include "no/machine.hpp"
#include "util/simd.hpp"

namespace obliv::no {

/// Declares the messages that move a `words`-word block from an even
/// distribution over PEs [s_lo, s_lo + s_q) to an even distribution over
/// [d_lo, d_lo + d_q).
inline void move_block(NoMachine& mach, std::uint64_t words,
                       std::uint64_t s_lo, std::uint64_t s_q,
                       std::uint64_t d_lo, std::uint64_t d_q) {
  if (words == 0) return;
  std::uint64_t i = 0;
  while (i < words) {
    const std::uint64_t sk = i * s_q / words;
    const std::uint64_t dk = i * d_q / words;
    const std::uint64_t s_next = ((sk + 1) * words + s_q - 1) / s_q;
    const std::uint64_t d_next = ((dk + 1) * words + d_q - 1) / d_q;
    const std::uint64_t nxt = std::min({words, s_next, d_next});
    mach.send(s_lo + sk, d_lo + dk, nxt - i);
    i = nxt;
  }
}

namespace detail {

using algo::Interval;
using Child = std::array<int, 3>;  // (a, b, k) half-selectors
using Round = std::vector<Child>;

inline const std::vector<Round>& schedule_a() {
  static const std::vector<Round> s = {
      {{0, 0, 0}}, {{0, 1, 0}, {1, 0, 0}}, {{1, 1, 0}},
      {{1, 1, 1}}, {{1, 0, 1}, {0, 1, 1}}, {{0, 0, 1}}};
  return s;
}
inline const std::vector<Round>& schedule_b() {
  static const std::vector<Round> s = {{{0, 0, 0}, {0, 1, 0}},
                                       {{1, 0, 0}, {1, 1, 0}},
                                       {{1, 0, 1}, {1, 1, 1}},
                                       {{0, 0, 1}, {0, 1, 1}}};
  return s;
}
inline const std::vector<Round>& schedule_c() {
  static const std::vector<Round> s = {{{0, 0, 0}, {1, 0, 0}},
                                       {{0, 1, 0}, {1, 1, 0}},
                                       {{0, 1, 1}, {1, 1, 1}},
                                       {{0, 0, 1}, {1, 0, 1}}};
  return s;
}
/// I-GEP's D: both rounds fix one K half; U and V quadrants are each used
/// by two children of a round (the duplication Table I highlights).
inline const std::vector<Round>& schedule_d() {
  static const std::vector<Round> s = {
      {{0, 0, 0}, {0, 1, 0}, {1, 0, 0}, {1, 1, 0}},
      {{0, 0, 1}, {0, 1, 1}, {1, 0, 1}, {1, 1, 1}}};
  return s;
}
/// N-GEP's D* (Table I): every U and V quadrant appears exactly once per
/// round; valid only for commutative GEP computations.
inline const std::vector<Round>& schedule_dstar() {
  static const std::vector<Round> s = {
      {{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0}},
      {{0, 0, 1}, {0, 1, 0}, {1, 0, 0}, {1, 1, 1}}};
  return s;
}

/// Instances exposing the native row-kernel hooks (algo/gep.hpp) vectorize
/// the host-side base case too; message/compute accounting is outside the
/// loop and unchanged.
template <class Inst>
inline constexpr bool ngep_row_kernel_v =
    std::is_same_v<typename Inst::value_type, double> &&
    requires(double* y, const double* v, double u, double w, std::size_t n,
             std::uint64_t i, std::uint64_t k, Interval J) {
      Inst::row_kernel(y, v, u, w, n);
      Inst::sigma_j(i, k, J);
    };

/// Host-side tile base case (Figure 5 restricted to I x J x K).
template <class Inst>
void ngep_base(std::vector<double>& x, std::uint64_t n, Interval I,
               Interval J, Interval K) {
  if constexpr (ngep_row_kernel_v<Inst>) {
    // vector_active(), not use_kernels(): see algo::detail::gep_base -- the
    // per-row dispatch only pays for itself when lanes are real; scalar
    // mode keeps the (bit-identical) generic triple loop.
    if (simd::vector_active()) {
      for (std::uint64_t k = K.lo; k < K.hi; ++k) {
        const double* v = x.data() + k * n;
        for (std::uint64_t i = I.lo; i < I.hi; ++i) {
          const Interval js = Inst::sigma_j(i, k, J);
          if (js.lo >= js.hi) continue;
          double* y = x.data() + i * n;
          auto run = [&](std::uint64_t jlo, std::uint64_t jhi) {
            if (jlo >= jhi) return;
            Inst::row_kernel(y + jlo, v + jlo, x[i * n + k], x[k * n + k],
                             jhi - jlo);
          };
          if (k >= js.lo && k < js.hi) {
            // The j == k store rewrites x[i][k] (and x[k][k] when i == k);
            // split there and reload the scalars.
            run(js.lo, k);
            x[i * n + k] = Inst::f(x[i * n + k], x[i * n + k], x[k * n + k],
                                   x[k * n + k]);
            run(k + 1, js.hi);
          } else {
            run(js.lo, js.hi);
          }
        }
      }
      return;
    }
  }
  for (std::uint64_t k = K.lo; k < K.hi; ++k) {
    for (std::uint64_t i = I.lo; i < I.hi; ++i) {
      for (std::uint64_t j = J.lo; j < J.hi; ++j) {
        if (!Inst::in_sigma(i, j, k)) continue;
        x[i * n + j] = Inst::f(x[i * n + j], x[i * n + k], x[k * n + j],
                               x[k * n + k]);
      }
    }
  }
}

/// Distinct operand blocks of a call on (I, J, K): X=(I,J), U=(I,K),
/// V=(K,J), W=(K,K), deduplicated by region.
inline std::vector<std::pair<Interval, Interval>> operand_blocks(
    Interval I, Interval J, Interval K) {
  std::vector<std::pair<Interval, Interval>> blocks = {
      {I, J}, {I, K}, {K, J}, {K, K}};
  std::vector<std::pair<Interval, Interval>> out;
  for (const auto& b : blocks) {
    bool dup = false;
    for (const auto& o : out) {
      if (o.first == b.first && o.second == b.second) dup = true;
    }
    if (!dup) out.push_back(b);
  }
  return out;
}

/// A child's operand quadrant together with its *home quarter*: each operand
/// matrix of a call is quadtree-distributed over the call's PE group, so
/// quadrant (r, c) of any operand lives on quarter 2r + c.  Duplicate
/// regions (overlapping operands of A/B/C) are emitted once.
struct QuadBlock {
  Interval rows, cols;
  int home;     // quarter index 0..3
  bool is_x;    // the X quadrant must be written back after the child
};

inline std::vector<QuadBlock> child_blocks(const Interval Ih[2],
                                           const Interval Jh[2],
                                           const Interval Kh[2], int a, int b,
                                           int k) {
  const QuadBlock cand[4] = {
      {Ih[a], Jh[b], 2 * a + b, true},    // X
      {Ih[a], Kh[k], 2 * a + k, false},   // U
      {Kh[k], Jh[b], 2 * k + b, false},   // V
      {Kh[k], Kh[k], 3 * k, false},       // W
  };
  std::vector<QuadBlock> out;
  for (const QuadBlock& c : cand) {
    bool dup = false;
    for (auto& o : out) {
      if (o.rows == c.rows && o.cols == c.cols) {
        o.is_x = o.is_x || c.is_x;
        dup = true;
      }
    }
    if (!dup) out.push_back(c);
  }
  return out;
}

template <class Inst>
void ngep_rec(NoMachine& mach, std::vector<double>& x, std::uint64_t n,
              Interval I, Interval J, Interval K, std::uint64_t g_lo,
              std::uint64_t g_q, bool use_dstar,
              std::uint64_t base_cutoff) {
  if (!Inst::intersects(I, J, K)) return;
  const std::uint64_t m = I.len();
  if (m <= base_cutoff || g_q == 1) {
    // Leaf: gather the distinct operand blocks to the group leader,
    // compute locally, scatter X back.
    const std::uint64_t bw = m * m;
    if (g_q > 1) {
      for (const auto& blk : operand_blocks(I, J, K)) {
        (void)blk;
        move_block(mach, bw, g_lo, g_q, g_lo, 1);
      }
      mach.end_superstep();
    }
    ngep_base<Inst>(x, n, I, J, K);
    mach.compute(g_lo, m * m * K.len());
    if (g_q > 1) {
      move_block(mach, bw, g_lo, 1, g_lo, g_q);
      mach.end_superstep();
    }
    return;
  }

  const Interval Ih[2] = {I.low_half(), I.high_half()};
  const Interval Jh[2] = {J.low_half(), J.high_half()};
  const Interval Kh[2] = {K.low_half(), K.high_half()};

  const algo::GepFn fn = algo::classify(I, J, K);
  const std::vector<Round>* sched = nullptr;
  switch (fn) {
    case algo::GepFn::kA: sched = &schedule_a(); break;
    case algo::GepFn::kB: sched = &schedule_b(); break;
    case algo::GepFn::kC: sched = &schedule_c(); break;
    case algo::GepFn::kD:
      sched = use_dstar ? &schedule_dstar() : &schedule_d();
      break;
  }

  const std::uint64_t half_words = (m / 2) * (m / 2);
  // Home quarters of the quadtree layout (valid when g_q >= 4; smaller
  // groups degrade to even distribution over the whole group).
  const bool quartered = g_q >= 4;
  const std::uint64_t q4 = g_q / 4;
  auto home_lo = [&](int h) {
    return quartered ? g_lo + std::uint64_t(h) * q4 : g_lo;
  };
  auto home_q = [&](int h) {
    if (!quartered) return g_q;
    return (h == 3) ? g_q - 3 * q4 : q4;
  };

  for (const Round& round : *sched) {
    const std::uint64_t cnt = round.size();
    const std::uint64_t subgroups = std::min<std::uint64_t>(g_q, cnt);
    const std::uint64_t per = g_q / subgroups;
    auto sub_lo = [&](std::uint64_t s) { return g_lo + s * per; };
    auto sub_q = [&](std::uint64_t s) {
      return (s + 1 == subgroups) ? g_q - s * per : per;
    };

    // Redistribute operand quadrants from their home quarters to the
    // executing subgroups: one superstep.  In I-GEP's D order, U and V
    // quadrants are needed by two children of the round, so their home
    // quarters send twice -- the duplication Table I highlights; D*'s
    // round uses each U/V quadrant once.
    for (std::uint64_t c = 0; c < cnt; ++c) {
      const auto [a, b, k] = round[c];
      const std::uint64_t s = c % subgroups;
      for (const QuadBlock& blk : child_blocks(Ih, Jh, Kh, a, b, k)) {
        move_block(mach, half_words, home_lo(blk.home), home_q(blk.home),
                   sub_lo(s), sub_q(s));
      }
    }
    mach.end_superstep();

    // Children of the round run in parallel on disjoint subgroups.
    mach.parallel_begin();
    for (std::uint64_t s = 0; s < subgroups; ++s) {
      for (std::uint64_t c = s; c < cnt; c += subgroups) {
        const auto [a, b, k] = round[c];
        ngep_rec<Inst>(mach, x, n, Ih[a], Jh[b], Kh[k], sub_lo(s), sub_q(s),
                       use_dstar, base_cutoff);
      }
      mach.parallel_next();
    }
    mach.parallel_end();

    // Updated X quadrants return to their home quarters.
    for (std::uint64_t c = 0; c < cnt; ++c) {
      const auto [a, b, k] = round[c];
      const std::uint64_t s = c % subgroups;
      move_block(mach, half_words, sub_lo(s), sub_q(s), home_lo(2 * a + b),
                 home_q(2 * a + b));
    }
    mach.end_superstep();
  }
}

}  // namespace detail

/// Runs the instance's GEP computation on the n x n host matrix `x` as
/// N-GEP on M(mach.pes()), with D* (use_dstar) or I-GEP's D ordering.
template <class Inst>
void n_gep(NoMachine& mach, std::vector<double>& x, std::uint64_t n,
           bool use_dstar = true, std::uint64_t base_cutoff = 4) {
  const algo::Interval all{0, n};
  detail::ngep_rec<Inst>(mach, x, n, all, all, all, 0, mach.pes(), use_dstar,
                         base_cutoff);
}

}  // namespace obliv::no
