// NO matrix transposition [4]: on M(n^2), PE (i, j) holds A[i][j] and sends
// it to PE (j, i) in a single superstep.  On M(p, B) the communication
// complexity is Theta(n^2 / (B p)) (Table II), because the off-diagonal
// processor blocks exchange their full contents in aggregated blocks.
#pragma once

#include <cstdint>
#include <vector>

#include "no/machine.hpp"

namespace obliv::no {

/// Transposes the n x n row-major matrix `a` into `out` on M(n^2).
/// `mach` must have exactly n * n PEs.
inline void no_transpose(NoMachine& mach, const std::vector<double>& a,
                         std::vector<double>& out, std::uint64_t n) {
  out.resize(n * n);
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      const std::uint64_t src = i * n + j, dst = j * n + i;
      mach.send(src, dst, 1);
      mach.compute(src, 1);
      out[dst] = a[src];
    }
  }
  mach.end_superstep();
}

}  // namespace obliv::no
