// NO-FFT [4]: the network-oblivious FFT on M(n), adapted to supersteps.
//
// PE t holds element t of the input.  A length-m range decomposes as an
// m1 x m2 matrix; each of the three transposes is one superstep permuting
// elements among the range's PEs, sub-FFTs recurse on contiguous PE
// subranges (parallel, disjoint -> accounted by max), and the twiddle step
// is local computation.  Communication on M(p, B) is
// Theta((n / (p B)) log_{n/p} n) (Table II).
#pragma once

#include <cassert>
#include <cmath>
#include <complex>
#include <cstdint>
#include <numbers>
#include <vector>

#include "no/machine.hpp"
#include "util/bits.hpp"

namespace obliv::no {

using cplx = std::complex<double>;

namespace detail {

constexpr std::uint64_t kCplxWords = 2;

inline void no_fft_rec(NoMachine& mach, std::vector<cplx>& x,
                       std::uint64_t lo, std::uint64_t len) {
  if (len <= 8) {
    // Gather the range to PE lo, compute the O(len^2) DFT locally, scatter.
    for (std::uint64_t t = 1; t < len; ++t) {
      mach.send(lo + t, lo, kCplxWords);
    }
    mach.end_superstep();
    std::vector<cplx> in(x.begin() + lo, x.begin() + lo + len);
    for (std::uint64_t f = 0; f < len; ++f) {
      cplx acc{0, 0};
      for (std::uint64_t t = 0; t < len; ++t) {
        acc += in[t] * std::polar(1.0, -2.0 * std::numbers::pi *
                                           double((f * t) % len) /
                                           double(len));
      }
      x[lo + f] = acc;
    }
    mach.compute(lo, 4 * len * len);
    for (std::uint64_t t = 1; t < len; ++t) {
      mach.send(lo, lo + t, kCplxWords);
    }
    mach.end_superstep();
    return;
  }

  const unsigned k = util::ilog2(len);
  const std::uint64_t n1 = std::uint64_t{1} << ((k + 1) / 2);
  const std::uint64_t n2 = std::uint64_t{1} << (k / 2);

  auto permute = [&](auto&& dst_of) {
    std::vector<cplx> tmp(len);
    for (std::uint64_t t = 0; t < len; ++t) {
      const std::uint64_t d = dst_of(t);
      tmp[d] = x[lo + t];
      mach.send(lo + t, lo + d, kCplxWords);
    }
    std::copy(tmp.begin(), tmp.end(), x.begin() + lo);
    mach.end_superstep();
  };

  // Transpose n1 x n2 -> n2 x n1.
  permute([&](std::uint64_t t) {
    const std::uint64_t a = t / n2, b = t % n2;
    return b * n1 + a;
  });

  // n2 parallel sub-FFTs of length n1 on disjoint contiguous subranges.
  mach.parallel_begin();
  for (std::uint64_t b = 0; b < n2; ++b) {
    no_fft_rec(mach, x, lo + b * n1, n1);
    mach.parallel_next();
  }
  mach.parallel_end();

  // Twiddle: element (b, c) *= w_len^{bc}; purely local.
  for (std::uint64_t t = 0; t < len; ++t) {
    const std::uint64_t b = t / n1, c = t % n1;
    x[lo + t] *= std::polar(1.0, -2.0 * std::numbers::pi *
                                     double((b * c) % len) / double(len));
    mach.compute(lo + t, 8);
  }
  mach.end_superstep();

  // Transpose back n2 x n1 -> n1 x n2.
  permute([&](std::uint64_t t) {
    const std::uint64_t b = t / n1, c = t % n1;
    return c * n2 + b;
  });

  // n1 parallel sub-FFTs of length n2.
  mach.parallel_begin();
  for (std::uint64_t c = 0; c < n1; ++c) {
    no_fft_rec(mach, x, lo + c * n2, n2);
    mach.parallel_next();
  }
  mach.parallel_end();

  // Final transpose: out[d * n1 + c] = F[c * n2 + d].
  permute([&](std::uint64_t t) {
    const std::uint64_t c = t / n2, d = t % n2;
    return d * n1 + c;
  });
}

}  // namespace detail

/// In-place NO DFT of `x` (power-of-two length) on M(x.size()).
inline void no_fft(NoMachine& mach, std::vector<cplx>& x) {
  assert(util::is_pow2(x.size()) && mach.pes() >= x.size());
  detail::no_fft_rec(mach, x, 0, x.size());
}

}  // namespace obliv::no
