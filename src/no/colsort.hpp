// NO sorting via Leighton's columnsort -- the basis of the network-oblivious
// sorting algorithm of [4] (reviewed in Section IV; the paper notes its
// computation complexity is suboptimal by a polylog factor, which [13]
// removes by specifying the algorithm on M(n^(1-eps))).
//
// We instantiate the M(n^(1-eps)) variant with eps such that one column
// lives on one PE: the r x s matrix (column-major, r rows, s columns,
// r >= 2(s-1)^2) assigns column j to PE j.  The four column-sort steps are
// then purely local computation, and all communication happens in the three
// fixed permutations (transpose, untranspose, half-shift) -- giving the
// Theta(n/(pB)) communication of Table II's sorting row.
//
// The shift phase uses one extra column (PE s), per Leighton's original
// formulation, with -inf/+inf sentinels.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "no/machine.hpp"
#include "util/bits.hpp"

namespace obliv::no {

/// Geometry chosen for a columnsort run.
struct ColsortShape {
  std::uint64_t r = 0;       ///< rows (column length)
  std::uint64_t s = 0;       ///< columns == PEs used for data
  std::uint64_t padded = 0;  ///< r * s >= n
};

/// Picks the largest s (power of two) with r = ceil(n/s) rounded up so that
/// r >= 2 (s-1)^2 and r * s >= n.
inline ColsortShape colsort_shape(std::uint64_t n) {
  ColsortShape shape;
  std::uint64_t s = 1;
  while (true) {
    const std::uint64_t s2 = s * 2;
    const std::uint64_t r2 = util::ceil_div(n, s2);
    if (s2 > 1 && r2 < 2 * (s2 - 1) * (s2 - 1)) break;
    s = s2;
    if (s >= n) break;
  }
  shape.s = s;
  shape.r = std::max<std::uint64_t>(1, util::ceil_div(n, s));
  // Ensure the validity condition holds after rounding r up.
  if (s > 1 && shape.r < 2 * (s - 1) * (s - 1)) {
    shape.r = 2 * (s - 1) * (s - 1);
  }
  shape.padded = shape.r * shape.s;
  return shape;
}

namespace detail {

/// Sorts every column locally (column j on PE j): computation only.
template <class T>
void sort_columns(NoMachine& mach, std::vector<T>& m, std::uint64_t r,
                  std::uint64_t s, std::uint64_t words_per) {
  for (std::uint64_t j = 0; j < s; ++j) {
    std::sort(m.begin() + j * r, m.begin() + (j + 1) * r);
    mach.compute(j, r * (util::ilog2(r | 1) + 1) * words_per);
  }
  mach.end_superstep();
}

/// Applies a global position permutation (column-major linear indices):
/// new[dst_of(k)] = old[k], declaring PE-to-PE sends.
template <class T, class F>
void permute(NoMachine& mach, std::vector<T>& m, std::uint64_t r,
             std::uint64_t words_per, F&& dst_of) {
  std::vector<T> tmp(m.size());
  for (std::uint64_t k = 0; k < m.size(); ++k) {
    const std::uint64_t d = dst_of(k);
    tmp[d] = m[k];
    mach.send(k / r, d / r, words_per);
  }
  m.swap(tmp);
  mach.end_superstep();
}

}  // namespace detail

/// Sorts `data` ascending on M(mach.pes()); mach must have at least
/// shape.s + 1 PEs for colsort_shape(data.size()).  `lowest` / `highest`
/// are sentinels strictly outside the key range.
template <class T>
void no_columnsort(NoMachine& mach, std::vector<T>& data, T lowest,
                   T highest) {
  const std::uint64_t n = data.size();
  if (n <= 1) return;
  const ColsortShape shape = colsort_shape(n);
  const std::uint64_t r = shape.r, s = shape.s;
  assert(mach.pes() >= s + 1);
  constexpr std::uint64_t W = (sizeof(T) + 7) / 8;

  // Pad to r*s with +inf sentinels (removed at the end).
  std::vector<T> m(data);
  m.resize(shape.padded, highest);

  // Steps 1-2: sort columns; "transpose": element at column-major rank k
  // moves to the cell whose row-major rank is k, i.e. cell
  // (row k/s, col k%s) = column-major index (k%s)*r + k/s.
  detail::sort_columns(mach, m, r, s, W);
  detail::permute(mach, m, r, W, [&](std::uint64_t k) {
    return (k % s) * r + (k / s);
  });

  // Steps 3-4: sort columns; "untranspose" (inverse of step 2): the element
  // in cell (i, j) returns to column-major rank i*s + j.
  detail::sort_columns(mach, m, r, s, W);
  detail::permute(mach, m, r, W, [&](std::uint64_t k) {
    const std::uint64_t i = k % r, j = k / r;
    return i * s + j;
  });

  // Step 5: sort columns.
  detail::sort_columns(mach, m, r, s, W);

  // Steps 6-8: shift down by r/2 into s+1 columns, sort, unshift.
  const std::uint64_t h = r / 2;
  std::vector<T> wide((s + 1) * r, lowest);
  for (std::uint64_t k = 0; k < s * r; ++k) {
    const std::uint64_t d = k + h;
    wide[d] = m[k];
    mach.send(k / r, d / r, W);
  }
  for (std::uint64_t t = s * r + h; t < (s + 1) * r; ++t) wide[t] = highest;
  mach.end_superstep();
  detail::sort_columns(mach, wide, r, s + 1, W);
  for (std::uint64_t k = 0; k < s * r; ++k) {
    const std::uint64_t src = k + h;
    m[k] = wide[src];
    mach.send(src / r, k / r, W);
  }
  mach.end_superstep();

  // Matrix is sorted in column-major order; drop padding.
  m.resize(n);
  data.swap(m);
}

}  // namespace obliv::no
