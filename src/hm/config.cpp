#include "hm/config.hpp"

#include <limits>
#include <sstream>
#include <utility>

#include "util/bits.hpp"

namespace obliv::hm {

namespace {

/// Saturating product of the fan-ins of levels[0..i]; absurd fan-outs must
/// not wrap a 32-bit accumulator back into the accepted range (a 2^16 x
/// 2^16 fan-out pair used to alias to 0 cores and slip past validation).
std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a != 0 && b > std::numeric_limits<std::uint64_t>::max() / a) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return a * b;
}

}  // namespace

MachineConfig::MachineConfig(std::string name, std::vector<LevelSpec> levels)
    : name_(std::move(name)), levels_(std::move(levels)) {
  validate_status().throw_if_error();
  // Post-validation the fan-in product is <= 64, so 32-bit arithmetic below
  // is exact.
  cores_under_.resize(levels_.size());
  std::uint32_t acc = 1;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    acc *= levels_[i].fanin;
    cores_under_[i] = acc;
  }
  cores_ = levels_.empty() ? 1 : cores_under_.back();
}

Result<MachineConfig> MachineConfig::make(std::string name,
                                          std::vector<LevelSpec> levels)
    noexcept {
  try {
    return MachineConfig(std::move(name), std::move(levels));
  } catch (const Error& e) {
    return Status::error(e.code(), e.what());
  } catch (const std::bad_alloc&) {
    return Status::error(ErrorCode::kResourceExhausted,
                         "allocation failed while building MachineConfig");
  } catch (const std::exception& e) {
    return Status::error(ErrorCode::kInternal, e.what());
  }
}

std::uint32_t MachineConfig::caches_at(std::uint32_t level) const {
  return cores_ / cores_under(level);
}

std::uint32_t MachineConfig::cores_under(std::uint32_t level) const {
  return cores_under_.at(level - 1);
}

std::uint32_t MachineConfig::smallest_level_fitting(std::uint64_t words) const {
  for (std::uint32_t i = 1; i <= cache_levels(); ++i) {
    if (capacity(i) >= words) return i;
  }
  return h();
}

void MachineConfig::validate() const { validate_status().throw_if_error(); }

Status MachineConfig::validate_status() const {
  auto fail = [&](ErrorCode code, const std::string& msg) {
    return Status::error(code, "MachineConfig '" + name_ + "': " + msg);
  };
  if (levels_.empty()) {
    return fail(ErrorCode::kInvalidConfig,
                "at least one cache level is required");
  }
  if (levels_.front().fanin != 1) {
    return fail(ErrorCode::kInvalidConfig,
                "p_1 must be 1 (private L1 per core)");
  }
  std::uint64_t cores = 1;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    const LevelSpec& lv = levels_[i];
    std::ostringstream at;
    at << "level " << (i + 1) << ": ";
    if (lv.fanin == 0) {
      return fail(ErrorCode::kInvalidConfig, at.str() + "fanin must be positive");
    }
    cores = sat_mul(cores, lv.fanin);
    if (lv.capacity_words == 0 || lv.block_words == 0) {
      return fail(ErrorCode::kInvalidConfig,
                  at.str() + "capacity and block size must be positive");
    }
    if (lv.block_words > lv.capacity_words) {
      return fail(ErrorCode::kInvalidConfig, at.str() + "block larger than cache");
    }
    if (lv.capacity_words / lv.block_words < lv.block_words) {
      // Division form of C_i >= B_i^2: immune to B_i^2 overflowing 64 bits.
      return fail(ErrorCode::kInvalidConfig,
                  at.str() + "tall-cache assumption C_i >= B_i^2 violated");
    }
    if (i > 0) {
      const LevelSpec& below = levels_[i - 1];
      // C_i >= c_i * p_i * C_{i-1} with c_i >= 1 (the paper's inclusivity /
      // cache-growth constraint), checked with a saturating product so huge
      // fan-ins cannot wrap past it.
      if (lv.capacity_words <
          sat_mul(lv.fanin, below.capacity_words)) {
        return fail(ErrorCode::kInvalidConfig,
                    at.str() +
                        "cache growth constraint C_i >= p_i * C_{i-1} violated");
      }
      if (lv.block_words < below.block_words) {
        return fail(ErrorCode::kInvalidConfig,
                    at.str() + "block sizes must be non-decreasing with level");
      }
    }
  }
  if (cores > 64) {
    // The coherence model keeps one 64-bit sharer bitmask per B_1 block
    // (hm/cache_sim.hpp); silently aliasing core 64 onto core 0 would
    // corrupt ping-pong and invalidation counts.
    std::ostringstream p;
    if (cores == std::numeric_limits<std::uint64_t>::max()) {
      p << "> 2^64";
    } else {
      p << cores;
    }
    return fail(ErrorCode::kUnsupported,
                "more than 64 cores is unsupported: the coherence sharer set "
                "is a 64-bit bitmask (got p = " + p.str() + ")");
  }
  return Status();
}

std::string MachineConfig::describe() const {
  std::ostringstream os;
  os << name_ << ": h=" << h() << ", p=" << cores();
  for (std::uint32_t i = 1; i <= cache_levels(); ++i) {
    os << " | L" << i << " q=" << caches_at(i) << " C=" << capacity(i)
       << "w B=" << block(i) << "w";
  }
  return os.str();
}

MachineConfig MachineConfig::sequential(std::uint64_t capacity_words,
                                        std::uint64_t block_words) {
  return MachineConfig("sequential",
                       {LevelSpec{capacity_words, block_words, 1}});
}

MachineConfig MachineConfig::shared_l2(std::uint32_t cores) {
  // L1: 2K words (16 KiB of doubles) private; L2: grows with core count so
  // the C_2 >= p_2 C_1 constraint holds with headroom (c_2 = 16).
  const std::uint64_t c1 = 2048, b1 = 8;
  const std::uint64_t c2 = 16ull * cores * c1, b2 = 16;
  return MachineConfig("shared_l2",
                       {LevelSpec{c1, b1, 1}, LevelSpec{c2, b2, cores}});
}

MachineConfig MachineConfig::three_level(std::uint32_t l2_fanin,
                                         std::uint32_t l3_fanin) {
  const std::uint64_t c1 = 1024, b1 = 8;
  const std::uint64_t c2 = 8ull * l2_fanin * c1, b2 = 16;
  const std::uint64_t c3 = 8ull * l3_fanin * c2, b3 = 16;
  return MachineConfig("three_level", {LevelSpec{c1, b1, 1},
                                       LevelSpec{c2, b2, l2_fanin},
                                       LevelSpec{c3, b3, l3_fanin}});
}

MachineConfig MachineConfig::figure1() {
  // The h=5 machine sketched in Figure 1: fanins (1, 2, 2, 2) -> 8 cores.
  const std::uint64_t b = 8;
  return MachineConfig("figure1", {LevelSpec{512, b, 1},
                                   LevelSpec{4096, b, 2},
                                   LevelSpec{32768, 16, 2},
                                   LevelSpec{262144, 16, 2}});
}

}  // namespace obliv::hm
