#include "hm/config.hpp"

#include <sstream>
#include <stdexcept>

#include "util/bits.hpp"

namespace obliv::hm {

MachineConfig::MachineConfig(std::string name, std::vector<LevelSpec> levels)
    : name_(std::move(name)), levels_(std::move(levels)) {
  cores_under_.resize(levels_.size());
  std::uint32_t acc = 1;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    acc *= levels_[i].fanin;
    cores_under_[i] = acc;
  }
  cores_ = levels_.empty() ? 1 : cores_under_.back();
  validate();
}

std::uint32_t MachineConfig::caches_at(std::uint32_t level) const {
  return cores_ / cores_under(level);
}

std::uint32_t MachineConfig::cores_under(std::uint32_t level) const {
  return cores_under_.at(level - 1);
}

std::uint32_t MachineConfig::smallest_level_fitting(std::uint64_t words) const {
  for (std::uint32_t i = 1; i <= cache_levels(); ++i) {
    if (capacity(i) >= words) return i;
  }
  return h();
}

void MachineConfig::validate() const {
  auto fail = [&](const std::string& msg) {
    throw std::invalid_argument("MachineConfig '" + name_ + "': " + msg);
  };
  if (levels_.empty()) fail("at least one cache level is required");
  if (levels_.front().fanin != 1) fail("p_1 must be 1 (private L1 per core)");
  if (cores_ > 64) {
    // The coherence model keeps one 64-bit sharer bitmask per B_1 block
    // (hm/cache_sim.hpp); silently aliasing core 64 onto core 0 would
    // corrupt ping-pong and invalidation counts.
    fail("more than 64 cores is unsupported: the coherence sharer set is a "
         "64-bit bitmask (got p = " +
         std::to_string(cores_) + ")");
  }
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    const LevelSpec& lv = levels_[i];
    std::ostringstream at;
    at << "level " << (i + 1) << ": ";
    if (lv.capacity_words == 0 || lv.block_words == 0) {
      fail(at.str() + "capacity and block size must be positive");
    }
    if (lv.block_words > lv.capacity_words) {
      fail(at.str() + "block larger than cache");
    }
    if (lv.capacity_words < lv.block_words * lv.block_words) {
      fail(at.str() + "tall-cache assumption C_i >= B_i^2 violated");
    }
    if (i > 0) {
      const LevelSpec& below = levels_[i - 1];
      if (lv.fanin == 0) fail(at.str() + "fanin must be positive");
      // C_i >= c_i * p_i * C_{i-1} with c_i >= 1.
      if (lv.capacity_words < static_cast<std::uint64_t>(lv.fanin) *
                                  below.capacity_words) {
        fail(at.str() + "cache growth constraint C_i >= p_i * C_{i-1} violated");
      }
      if (lv.block_words < below.block_words) {
        fail(at.str() + "block sizes must be non-decreasing with level");
      }
    }
  }
}

std::string MachineConfig::describe() const {
  std::ostringstream os;
  os << name_ << ": h=" << h() << ", p=" << cores();
  for (std::uint32_t i = 1; i <= cache_levels(); ++i) {
    os << " | L" << i << " q=" << caches_at(i) << " C=" << capacity(i)
       << "w B=" << block(i) << "w";
  }
  return os.str();
}

MachineConfig MachineConfig::sequential(std::uint64_t capacity_words,
                                        std::uint64_t block_words) {
  return MachineConfig("sequential",
                       {LevelSpec{capacity_words, block_words, 1}});
}

MachineConfig MachineConfig::shared_l2(std::uint32_t cores) {
  // L1: 2K words (16 KiB of doubles) private; L2: grows with core count so
  // the C_2 >= p_2 C_1 constraint holds with headroom (c_2 = 16).
  const std::uint64_t c1 = 2048, b1 = 8;
  const std::uint64_t c2 = 16ull * cores * c1, b2 = 16;
  return MachineConfig("shared_l2",
                       {LevelSpec{c1, b1, 1}, LevelSpec{c2, b2, cores}});
}

MachineConfig MachineConfig::three_level(std::uint32_t l2_fanin,
                                         std::uint32_t l3_fanin) {
  const std::uint64_t c1 = 1024, b1 = 8;
  const std::uint64_t c2 = 8ull * l2_fanin * c1, b2 = 16;
  const std::uint64_t c3 = 8ull * l3_fanin * c2, b3 = 16;
  return MachineConfig("three_level", {LevelSpec{c1, b1, 1},
                                       LevelSpec{c2, b2, l2_fanin},
                                       LevelSpec{c3, b3, l3_fanin}});
}

MachineConfig MachineConfig::figure1() {
  // The h=5 machine sketched in Figure 1: fanins (1, 2, 2, 2) -> 8 cores.
  const std::uint64_t b = 8;
  return MachineConfig("figure1", {LevelSpec{512, b, 1},
                                   LevelSpec{4096, b, 2},
                                   LevelSpec{32768, 16, 2},
                                   LevelSpec{262144, 16, 2}});
}

}  // namespace obliv::hm
