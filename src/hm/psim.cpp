#include "hm/psim.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <functional>

#include "sched/native_executor.hpp"

namespace obliv::hm {

ShardedCacheSim::ShardedCacheSim(CacheSim& sim, unsigned threads)
    : sim_(sim),
      threads_(threads == 0 ? psim_threads_from_env() : threads),
      b1_(sim.b1_),
      b1_shift_(sim.b1_shift_) {
  // One shard per simulated core; extra host threads cannot help.
  threads_ = std::min<unsigned>(
      std::max(1u, threads_), std::max(1u, sim_.config().cores()));
  if (threads_ > 1) {
    pool_ = std::make_unique<sched::WorkStealingPool>(threads_);
  }
  shards_.resize(sim_.config().cores());
  if (const char* env = std::getenv("OBLIV_PSIM_TRACE")) {
    epoch_trace_ = env[0] != '\0' && env[0] != '0';
  }
}

ShardedCacheSim::~ShardedCacheSim() = default;

void ShardedCacheSim::begin_run(obs::Tracer* tracer,
                                const std::uint64_t* run_clock) {
  tracer_ = tracer;
  run_clock_ = run_clock;
  buf_.clear();
  sched_events_.clear();
  sched_cursor_ = 0;
  epochs_ = 0;
  fallback_epochs_ = 0;
  reset_epoch_state();
  if constexpr (obs::kTracingCompiledIn) {
    if (tracer_ != nullptr && epoch_trace_) {
      tracer_->name_lane(obs::kPsimEpochLane, "psim epochs");
    }
  }
}

void ShardedCacheSim::defer_sched_event(const obs::Event& ev) {
  sched_events_.push_back(DeferredSched{buf_.size(), ev});
}

void ShardedCacheSim::reset_epoch_state() {
  for (Shard& sh : shards_) {
    sh.seqs.clear();
    sh.events.clear();
    sh.accesses = 0;
    sh.cursor = 0;
  }
  active_.clear();
  written_.clear();
}

void ShardedCacheSim::drain_sched(std::uint64_t upto) {
  if constexpr (obs::kTracingCompiledIn) {
    while (sched_cursor_ < sched_events_.size() &&
           sched_events_[sched_cursor_].seq <= upto) {
      tracer_->emit_prestamped(0, sched_events_[sched_cursor_++].ev);
    }
  }
}

void ShardedCacheSim::flush() {
  const std::size_t n = buf_.size();
  if (n > 0) {
    ++epochs_;
    // A 1-worker engine replays serially without even analyzing: the merge
    // machinery cannot win without concurrency, and skipping the analysis
    // and bucketing passes is what keeps the single-thread overhead inside
    // the <= 5% --psim-off-check budget.  Bucketing is also skipped for
    // conflicted epochs: the conflict check walks buf_ directly, so the
    // per-core seq lists are only needed once the parallel path is chosen.
    const bool parallel_ok =
        threads_ > 1 && sim_.multicore_ && epoch_conflict_free();
    if (parallel_ok) {
      bucket_epoch();
      run_shards();
      merge_epoch();
    } else {
      ++fallback_epochs_;
      fallback_epoch();
    }
    emit_epoch_mark(!parallel_ok);
  }
  drain_sched(n);  // events recorded after the last access
  buf_.clear();
  sched_events_.clear();
  sched_cursor_ = 0;
  reset_epoch_state();
}

void ShardedCacheSim::replay(const TraceEntry* entries, std::size_t n,
                             std::size_t epoch_entries) {
  if (epoch_entries == 0) epoch_entries = 1;
  if ((threads_ <= 1 || !sim_.multicore_) && tracer_ == nullptr) {
    // Degenerate engine (1 worker, or a machine with no private caches to
    // shard): every epoch would fall back anyway, so stream straight
    // through the serial simulator without buffering at all.  This
    // pass-through is the path bench_simrate --psim-off-check pins to the
    // <= 5% budget, and what makes PsimMode::kAuto safe on 1-core hosts.
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEntry& t = entries[i];
      sim_.access(t.core, t.addr, t.words, t.write != 0);
    }
    const std::uint64_t chunks = (n + epoch_entries - 1) / epoch_entries;
    epochs_ += chunks;
    fallback_epochs_ += chunks;
    return;
  }
  for (std::size_t off = 0; off < n; off += epoch_entries) {
    const std::size_t len = std::min(epoch_entries, n - off);
    buf_.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      const TraceEntry& t = entries[off + i];
      buf_.push_back(PsimAccess{t.addr, t.words, t.core, t.write, 0, 0});
    }
    flush();
  }
}

void ShardedCacheSim::bucket_epoch() {
  for (std::uint32_t i = 0; i < buf_.size(); ++i) {
    Shard& sh = shards_[buf_[i].core];
    if (sh.seqs.empty()) active_.push_back(buf_[i].core);
    sh.seqs.push_back(i);
  }
}

bool ShardedCacheSim::epoch_conflict_free() {
  touched_.clear();
  written_.clear();
  for (const PsimAccess& e : buf_) {
    std::uint64_t first, last;
    block_range(e, first, last);
    const std::uint64_t me = 1ull << e.core;
    for (std::uint64_t b = first; b <= last; ++b) {
      if (touched_.needs_grow()) touched_.rehash_now();
      std::size_t slot;
      TouchMasks* m = touched_.find_or_slot(b, slot);
      if (m == nullptr) {
        TouchMasks fresh;
        (e.write ? fresh.w : fresh.r) = me;
        touched_.insert_at(slot, b, fresh);
        if (e.write) written_.push_back(b);
        continue;
      }
      if (e.write) {
        if (m->w == 0) written_.push_back(b);
        m->w |= me;
      } else {
        m->r |= me;
      }
      // Condition 1: a written block touched by more than one core this
      // epoch would order-couple the shards.
      const std::uint64_t t = m->w | m->r;
      if (m->w != 0 && (t & (t - 1)) != 0) return false;
    }
  }
  // Condition 2: a block written this epoch that other L1s still share
  // from before the epoch would be invalidated mid-epoch by the serial
  // simulator, perturbing those L1s' occupancy.  (This also guarantees
  // conflict-free epochs produce zero ping-pongs/invalidations: every
  // write's sharer mask is a subset of {writer} at write time.)
  for (std::uint64_t b : written_) {
    const TouchMasks* m = touched_.find(b);
    if (const std::uint64_t* s = sim_.sharers_.find(b)) {
      if ((*s & ~m->w) != 0) return false;
    }
  }
  return true;
}

void ShardedCacheSim::run_shards() {
  if (active_.size() == 1) {
    run_shard(active_[0]);
    return;
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(active_.size());
  for (std::uint32_t core : active_) {
    tasks.push_back([this, core] { run_shard(core); });
  }
  pool_->run_all(std::move(tasks));
}

void ShardedCacheSim::run_shard(std::uint32_t core) {
  Shard& sh = shards_[core];
  for (std::uint32_t seq : sh.seqs) {
    const PsimAccess& e = buf_[seq];
    sh.accesses += e.words > 0 ? e.words : 1;
    std::uint64_t first, last;
    block_range(e, first, last);
    for (std::uint64_t b = first; b <= last; ++b) {
      shard_touch(core, b, e.write != 0, seq, sh);
    }
  }
}

// The private-cache half of CacheSim::touch_block, verbatim semantics:
// L0 probe with deferred LRU rotation, reverse-order settle, L1 touch +
// install, hit/miss/eviction counting, and L0 drop of the victim.  Every
// shared-level side effect becomes a ShardEvent instead.  (The inline
// 2-way fast path of access_run is subsumed: for slots 0/1 it performs
// the same rotation and counting as the probe loop here.)
void ShardedCacheSim::shard_touch(std::uint32_t core, std::uint64_t blk,
                                  bool write, std::uint32_t seq, Shard& sh) {
  CacheSim::L0Entry* set = &sim_.l0_[core * CacheSim::kL0Ways];
  CacheCounters& c1 = sim_.counters1_[core];
  LruCache& l1 = sim_.caches_[0][core];
  for (std::uint32_t k = 0; k < CacheSim::kL0Ways; ++k) {
    if (set[k].block != blk) continue;
    if (write && !set[k].exclusive) {
      sh.events.push_back(ShardEvent{blk, ~0ull, seq, kEvWriteTouch, 1});
      set[k].exclusive = true;
    }
    if (k != 0) {
      const CacheSim::L0Entry hit = set[k];
      for (std::uint32_t j = k; j > 0; --j) set[j] = set[j - 1];
      set[0] = hit;
      sim_.l0_dirty_[core] = 1;
    }
    ++c1.hits;
    return;
  }
  if (sim_.l0_dirty_[core]) {
    sim_.l0_dirty_[core] = 0;
    for (std::uint32_t k = CacheSim::kL0Ways; k-- > 0;) {
      if (set[k].block != ~0ull) l1.touch_known(set[k].node);
    }
  }
  if (write) {
    // Serial would coherence_write here; condition 2 guarantees no other
    // sharers, so the only effect is mask = {core}, applied at merge.
    sh.events.push_back(ShardEvent{blk, ~0ull, seq, kEvWriteTouch, 1});
  }
  const bool hit = l1.touch(blk);
  for (std::uint32_t j = CacheSim::kL0Ways - 1; j > 0; --j) {
    set[j] = set[j - 1];
  }
  // A write made the block exclusive (mask becomes exactly {core} at
  // merge); a read may gain co-sharers, same as the serial path.
  set[0] = CacheSim::L0Entry{blk, l1.last_node(), write};
  if (hit) {
    ++c1.hits;
    return;
  }
  ++c1.misses;
  const std::uint64_t victim = l1.last_evicted();
  sh.events.push_back(ShardEvent{blk, victim, seq, kEvMiss,
                                 static_cast<std::uint8_t>(write)});
  if (victim != ~0ull) {
    ++c1.evictions;
    sim_.l0_drop(core, victim);
    // The victim's sharer-mask bit clears at merge (kEvMiss).
  }
}

void ShardedCacheSim::walk_upper(std::uint32_t core, std::uint64_t blk,
                                 std::uint64_t* memo, std::uint64_t ts,
                                 std::uint64_t task) {
  const std::uint64_t word0 = blk * b1_;
  const std::uint32_t L = sim_.cfg_.cache_levels();
  for (std::uint32_t lvl = 2; lvl <= L; ++lvl) {
    const std::uint64_t b = sim_.block_of(word0, lvl);
    const std::uint32_t idx = sim_.cache_idx_[lvl - 1][core];
    CacheCounters& ctr = sim_.counters_[lvl - 1][idx];
    if (memo != nullptr) {
      if (memo[lvl - 1] == b) {
        ++ctr.hits;
        return;
      }
      memo[lvl - 1] = b;
    }
    LruCache& cache = sim_.caches_[lvl - 1][idx];
    if (cache.touch(b)) {
      ++ctr.hits;
      return;
    }
    ++ctr.misses;
    if constexpr (obs::kTracingCompiledIn) {
      if (tracer_ != nullptr) {
        tracer_->emit_prestamped(
            0, obs::Event{ts, b, cache.last_evicted(), task,
                          obs::cache_lane(lvl, idx), obs::EventKind::kMiss,
                          static_cast<std::uint8_t>(lvl)});
      }
    }
    if (cache.last_evicted() != ~0ull) ++ctr.evictions;
  }
}

void ShardedCacheSim::merge_epoch() {
  const std::uint32_t L = sim_.cfg_.cache_levels();
  memo_.assign(L, ~0ull);
  for (std::uint32_t core : active_) {
    sim_.accesses_ += shards_[core].accesses;
  }
  const bool tracing = obs::kTracingCompiledIn && tracer_ != nullptr;
  for (std::size_t k = 0; k < buf_.size(); ++k) {
    drain_sched(k);
    const PsimAccess& e = buf_[k];
    Shard& sh = shards_[e.core];
    if (sh.cursor >= sh.events.size() || sh.events[sh.cursor].seq != k) {
      continue;  // entry k stayed entirely inside the private caches
    }
    std::uint64_t first, last;
    block_range(e, first, last);
    std::uint64_t* memo = nullptr;
    if (first != last) {
      // Serial resets its run memo at the top of every multi-block
      // access_blocks call; single-block accesses pass nullptr.
      std::fill(memo_.begin(), memo_.end(), ~0ull);
      memo = memo_.data();
    }
    const std::uint64_t me = 1ull << e.core;
    while (sh.cursor < sh.events.size() && sh.events[sh.cursor].seq == k) {
      const ShardEvent& ev = sh.events[sh.cursor++];
      if (ev.kind == kEvWriteTouch) {
        // coherence_write with provably no other sharers: mask = {core},
        // no ping-pong, no invalidation.
        std::uint64_t& mask = sim_.sharers_.get(ev.blk);
        assert((mask & ~me) == 0);
        mask = me;
        continue;
      }
      if (tracing) {
        tracer_->emit_prestamped(
            0, obs::Event{e.ts, ev.blk, ev.victim, e.task,
                          obs::cache_lane(1, e.core), obs::EventKind::kMiss,
                          1});
      }
      if (ev.victim != ~0ull) {
        if (std::uint64_t* m = sim_.sharers_.find(ev.victim)) {
          *m &= ~me;
        }
      }
      if (!ev.write) {
        std::uint64_t& mask = sim_.sharers_.get(ev.blk);
        // Gaining a second sharer revokes the sole owner's L0 exclusivity.
        // Mutating another core's L0 here is safe: shards have joined, and
        // within this epoch no shard write consults that stale exclusive
        // bit (it would be a condition-1 conflict).
        if (mask != 0 && mask != me && (mask & (mask - 1)) == 0) {
          const std::uint32_t w =
              static_cast<std::uint32_t>(std::countr_zero(mask));
          CacheSim::L0Entry* ws = &sim_.l0_[w * CacheSim::kL0Ways];
          for (std::uint32_t j = 0; j < CacheSim::kL0Ways; ++j) {
            if (ws[j].block == ev.blk) ws[j].exclusive = false;
          }
        }
        mask |= me;
      }
      walk_upper(e.core, ev.blk, memo, e.ts, e.task);
    }
  }
}

void ShardedCacheSim::fallback_epoch() {
  if constexpr (obs::kTracingCompiledIn) {
    if (tracer_ != nullptr) {
      // Replay through the oracle with the tracer's clock pointed at each
      // entry's captured timestamp and task context, so the emitted events
      // are byte-identical to live emission; restore afterwards.
      const std::uint64_t saved_task = tracer_->current_task();
      const std::uint32_t saved_lvl = tracer_->current_anchor_level();
      const std::uint32_t saved_idx = tracer_->current_anchor_index();
      std::uint64_t tmp_ts = 0;
      tracer_->set_logical_clock(&tmp_ts);
      for (std::size_t k = 0; k < buf_.size(); ++k) {
        drain_sched(k);
        const PsimAccess& e = buf_[k];
        tmp_ts = e.ts;
        tracer_->set_task(e.task, saved_lvl, saved_idx);
        sim_.access(e.core, e.addr, e.words, e.write != 0);
      }
      tracer_->set_logical_clock(run_clock_);
      tracer_->set_task(saved_task, saved_lvl, saved_idx);
      return;
    }
  }
  for (const PsimAccess& e : buf_) {
    sim_.access(e.core, e.addr, e.words, e.write != 0);
  }
}

void ShardedCacheSim::emit_epoch_mark(bool fallback) {
  if constexpr (obs::kTracingCompiledIn) {
    if (tracer_ == nullptr || !epoch_trace_) return;
    // active_ is only populated on the parallel path now; recount from the
    // buffer so fallback epochs report their core count too (this pass
    // only runs with the opt-in OBLIV_PSIM_TRACE lane enabled).
    std::uint64_t cores = 0;
    for (const PsimAccess& e : buf_) cores |= 1ull << e.core;
    const std::uint64_t ts = buf_.empty() ? 0 : buf_.back().ts;
    tracer_->emit_prestamped(
        0, obs::Event{ts, epochs_ - 1, buf_.size(), fallback ? 1ull : 0ull,
                      obs::kPsimEpochLane, obs::EventKind::kEpoch,
                      static_cast<std::uint8_t>(std::popcount(cores))});
  }
}

}  // namespace obliv::hm
