#include "hm/cache_sim.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "fault/fault.hpp"

namespace obliv::hm {

LruCache::LruCache(std::size_t lines)
    : lines_(lines), map_(std::min<std::size_t>(lines, 32768)) {
  assert(lines_ > 0);
}

bool LruCache::touch(std::uint64_t block) {
  last_evicted_ = ~0ull;
  if (map_.needs_grow()) {
    // Rehash before probing so the insert slot stays valid, then refresh
    // the node backpointers the rehash invalidated.
    map_.rehash_now();
    map_.for_each(
        [&](std::size_t slot, std::uint32_t val) {
          nodes_[val].slot = static_cast<std::uint32_t>(slot);
        });
  }
  std::size_t slot;
  if (const std::uint32_t* v = map_.find_or_slot(block, slot)) {
    const std::uint32_t idx = *v;
    last_node_ = idx;
    if (head_ != idx) {
      unlink(idx);
      push_front(idx);
    }
    return true;
  }
  std::uint32_t idx;
  if (map_.size() >= lines_) {
    // Evict the LRU block and reuse its node.  The victim's tombstone
    // cannot shorten our insert cluster, but `slot` stays valid: probes
    // step over tombstones, and `slot` precedes the cluster's first empty.
    idx = tail_;
    last_evicted_ = nodes_[idx].block;
    map_.erase_at(nodes_[idx].slot);
    unlink(idx);
  } else if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(Node{});
  }
  nodes_[idx].block = block;
  nodes_[idx].slot =
      static_cast<std::uint32_t>(map_.insert_at(slot, block, idx));
  last_node_ = idx;
  push_front(idx);
  return false;
}

bool LruCache::erase(std::uint64_t block) {
  const std::uint32_t* v = map_.find(block);
  if (v == nullptr) return false;
  const std::uint32_t idx = *v;
  unlink(idx);
  free_.push_back(idx);
  map_.erase_at(nodes_[idx].slot);
  return true;
}

void LruCache::clear() {
  map_.clear();
  nodes_.clear();
  free_.clear();
  head_ = tail_ = kNil;
  last_evicted_ = ~0ull;
}

CacheSim::CacheSim(MachineConfig cfg) : cfg_(std::move(cfg)) {
  // A MachineConfig that came through the validating ctor is fine, but a
  // default-constructed (empty) or aggregate-mutated one would make the
  // level-table loops below index out of bounds -- reject it here.
  cfg_.validate();
  fault::maybe_fail_alloc(fault::InjectSite::kAllocSim);
  const std::uint32_t L = cfg_.cache_levels();
  multicore_ = cfg_.cores() > 1;
  caches_.reserve(L);
  counters_.resize(L);
  cache_idx_.resize(L);
  shift_.resize(L);
  for (std::uint32_t lvl = 1; lvl <= L; ++lvl) {
    const std::size_t lines = std::max<std::uint64_t>(
        1, cfg_.capacity(lvl) / cfg_.block(lvl));
    std::vector<LruCache> row;
    row.reserve(cfg_.caches_at(lvl));
    for (std::uint32_t c = 0; c < cfg_.caches_at(lvl); ++c) {
      row.emplace_back(lines);
    }
    caches_.push_back(std::move(row));
    counters_[lvl - 1].resize(cfg_.caches_at(lvl));
    cache_idx_[lvl - 1].resize(cfg_.cores());
    for (std::uint32_t c = 0; c < cfg_.cores(); ++c) {
      cache_idx_[lvl - 1][c] = cfg_.cache_of(c, lvl);
    }
    const std::uint64_t b = cfg_.block(lvl);
    shift_[lvl - 1] = std::has_single_bit(b)
                          ? static_cast<std::uint8_t>(std::countr_zero(b))
                          : kNoShift;
  }
  l0_.assign(std::size_t(cfg_.cores()) * kL0Ways, L0Entry{});
  l0_dirty_.assign(cfg_.cores(), 0);
  run_memo_.assign(L, ~0ull);
  b1_ = cfg_.block(1);
  b1_shift_ = shift_[0];
  counters1_ = counters_[0].data();
}

Result<CacheSim> CacheSim::make(MachineConfig cfg) noexcept {
  try {
    return CacheSim(std::move(cfg));
  } catch (const Error& e) {
    return Status::error(e.code(), e.what());
  } catch (const std::bad_alloc&) {
    return Status::error(ErrorCode::kResourceExhausted,
                         "allocation failed while building CacheSim tables");
  } catch (const std::exception& e) {
    return Status::error(ErrorCode::kInternal, e.what());
  }
}

void CacheSim::coherence_write(std::uint32_t core, std::uint64_t blk1) {
  std::uint64_t& mask = sharers_.get(blk1);
  const std::uint64_t me = 1ull << core;
  std::uint64_t others = mask & ~me;
  if (others != 0) {
    ++pingpong_;
    if constexpr (obs::kTracingCompiledIn) {
      if (tracer_ != nullptr) {
        tracer_->emit_attributed(obs::EventKind::kPingPong, 0, core, blk1,
                                 others);
      }
    }
    do {
      // p_1 == 1 (validated), so core c's L1 is caches_[0][c].
      const std::uint32_t c =
          static_cast<std::uint32_t>(std::countr_zero(others));
      others &= others - 1;
      if (caches_[0][c].erase(blk1)) ++counters_[0][c].invalidations;
      l0_drop(c, blk1);
    } while (others != 0);
  }
  mask = me;
}

void CacheSim::l0_drop(std::uint32_t core, std::uint64_t blk1) {
  L0Entry* set = &l0_[core * kL0Ways];
  for (std::uint32_t k = 0; k < kL0Ways; ++k) {
    if (set[k].block == blk1) {
      set[k].block = ~0ull;
      return;
    }
  }
}

void CacheSim::touch_block(std::uint32_t core, std::uint64_t blk1, bool write,
                           std::uint64_t* run_memo) {
  L0Entry* set = &l0_[core * kL0Ways];
  CacheCounters& c1 = counters1_[core];
  LruCache& l1 = caches_[0][core];
  // L0 filter probe: a slot hit is an exact L1 hit.  The LRU-list move is
  // deferred (see L0Entry); the slot just rotates to the front.  Reads need
  // no sharer update (the core's bit is already set); only a write to a
  // possibly-shared block probes.
  for (std::uint32_t k = 0; k < kL0Ways; ++k) {
    if (set[k].block != blk1) continue;
    if (write && !set[k].exclusive) {
      coherence_write(core, blk1);
      set[k].exclusive = true;
    }
    if (k != 0) {
      const L0Entry hit = set[k];
      for (std::uint32_t j = k; j > 0; --j) set[j] = set[j - 1];
      set[0] = hit;
      l0_dirty_[core] = 1;
    }
    ++c1.hits;
    return;
  }
  // Slow path.  First settle the deferred LRU moves so the list is in
  // exact recency order before any eviction decision below.
  if (l0_dirty_[core]) {
    l0_dirty_[core] = 0;
    for (std::uint32_t k = kL0Ways; k-- > 0;) {
      if (set[k].block != ~0ull) l1.touch_known(set[k].node);
    }
  }
  if (multicore_ && write) coherence_write(core, blk1);
  const bool hit = l1.touch(blk1);
  // Either way blk1 is now MRU in the L1; record it at L0 slot 0.
  for (std::uint32_t j = kL0Ways - 1; j > 0; --j) set[j] = set[j - 1];
  // After a write the sharer mask is exactly {core}; after a read other
  // sharers may exist, so exclusivity is only assumed when it is free.
  set[0] = L0Entry{blk1, l1.last_node(), write || !multicore_};
  if (hit) {
    ++c1.hits;
    return;
  }
  ++c1.misses;
  if constexpr (obs::kTracingCompiledIn) {
    if (tracer_ != nullptr) {
      tracer_->emit_attributed(obs::EventKind::kMiss, 1,
                               obs::cache_lane(1, core), blk1,
                               l1.last_evicted());
    }
  }
  if (l1.last_evicted() != obs::kNoEviction) {
    ++c1.evictions;
    l0_drop(core, l1.last_evicted());
    if (multicore_) {
      // Keep the sharer table in sync with L1 contents.
      if (std::uint64_t* m = sharers_.find(l1.last_evicted())) {
        *m &= ~(1ull << core);
      }
    }
  }
  if (multicore_ && !write) {
    std::uint64_t& mask = sharers_.get(blk1);
    const std::uint64_t me = 1ull << core;
    // Gaining a second sharer invalidates the sole owner's L0 exclusivity
    // (its next write must ping-pong us out).
    if (mask != 0 && mask != me && (mask & (mask - 1)) == 0) {
      const std::uint32_t w =
          static_cast<std::uint32_t>(std::countr_zero(mask));
      L0Entry* ws = &l0_[w * kL0Ways];
      for (std::uint32_t k = 0; k < kL0Ways; ++k) {
        if (ws[k].block == blk1) ws[k].exclusive = false;
      }
    }
    mask |= me;
  }

  // Walk the upper levels until a hit.
  const std::uint64_t word0 = blk1 * b1_;
  const std::uint32_t L = cfg_.cache_levels();
  for (std::uint32_t lvl = 2; lvl <= L; ++lvl) {
    const std::uint64_t blk = block_of(word0, lvl);
    const std::uint32_t idx = cache_idx_[lvl - 1][core];
    CacheCounters& ctr = counters_[lvl - 1][idx];
    if (run_memo != nullptr) {
      if (run_memo[lvl - 1] == blk) {
        // Touched earlier in this run with nothing since at this level:
        // still present and MRU, so this is a hit with no LRU movement.
        ++ctr.hits;
        return;
      }
      run_memo[lvl - 1] = blk;
    }
    LruCache& cache = caches_[lvl - 1][idx];
    if (cache.touch(blk)) {
      ++ctr.hits;
      return;
    }
    ++ctr.misses;
    if constexpr (obs::kTracingCompiledIn) {
      if (tracer_ != nullptr) {
        tracer_->emit_attributed(obs::EventKind::kMiss,
                                 static_cast<std::uint8_t>(lvl),
                                 obs::cache_lane(lvl, idx), blk,
                                 cache.last_evicted());
      }
    }
    if (cache.last_evicted() != obs::kNoEviction) ++ctr.evictions;
  }
}

void CacheSim::access_blocks(std::uint32_t core, std::uint64_t first,
                             std::uint64_t last, bool write) {
  assert(core < cfg_.cores());
  if (first == last) {
    touch_block(core, first, write, nullptr);
    return;
  }
  std::fill(run_memo_.begin(), run_memo_.end(), ~0ull);
  for (std::uint64_t b = first; b <= last; ++b) {
    touch_block(core, b, write, run_memo_.data());
  }
}

const CacheCounters& CacheSim::counters(std::uint32_t level,
                                        std::uint32_t idx) const {
  return counters_.at(level - 1).at(idx);
}

std::uint64_t CacheSim::level_max_transfers(std::uint32_t level) const {
  std::uint64_t best = 0;
  for (const auto& c : counters_.at(level - 1)) {
    best = std::max(best, c.misses + c.evictions);
  }
  return best;
}

std::uint64_t CacheSim::level_max_misses(std::uint32_t level) const {
  std::uint64_t best = 0;
  for (const auto& c : counters_.at(level - 1)) {
    best = std::max(best, c.misses);
  }
  return best;
}

std::uint64_t CacheSim::level_total_misses(std::uint32_t level) const {
  std::uint64_t sum = 0;
  for (const auto& c : counters_.at(level - 1)) sum += c.misses;
  return sum;
}

void CacheSim::reset_stats() {
  for (auto& row : counters_) {
    std::fill(row.begin(), row.end(), CacheCounters{});
  }
  pingpong_ = 0;
  accesses_ = 0;
}

void CacheSim::clear() {
  reset_stats();
  for (auto& row : caches_) {
    for (auto& c : row) c.clear();
  }
  std::fill(l0_.begin(), l0_.end(), L0Entry{});
  std::fill(l0_dirty_.begin(), l0_dirty_.end(), 0);
  sharers_.clear();
}

}  // namespace obliv::hm
