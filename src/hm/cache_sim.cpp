#include "hm/cache_sim.hpp"

#include <algorithm>
#include <cassert>

namespace obliv::hm {

LruCache::LruCache(std::size_t lines) : lines_(lines) {
  assert(lines_ > 0);
  map_.reserve(lines_ * 2);
}

void LruCache::unlink(std::uint32_t idx) {
  Node& n = nodes_[idx];
  if (n.prev != kNil) {
    nodes_[n.prev].next = n.next;
  } else {
    head_ = n.next;
  }
  if (n.next != kNil) {
    nodes_[n.next].prev = n.prev;
  } else {
    tail_ = n.prev;
  }
}

void LruCache::push_front(std::uint32_t idx) {
  Node& n = nodes_[idx];
  n.prev = kNil;
  n.next = head_;
  if (head_ != kNil) nodes_[head_].prev = idx;
  head_ = idx;
  if (tail_ == kNil) tail_ = idx;
}

bool LruCache::touch(std::uint64_t block) {
  last_evicted_ = ~0ull;
  auto it = map_.find(block);
  if (it != map_.end()) {
    const std::uint32_t idx = it->second;
    if (head_ != idx) {
      unlink(idx);
      push_front(idx);
    }
    return true;
  }
  std::uint32_t idx;
  if (map_.size() >= lines_) {
    // Evict the LRU block and reuse its node.
    idx = tail_;
    last_evicted_ = nodes_[idx].block;
    map_.erase(nodes_[idx].block);
    unlink(idx);
  } else if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(Node{});
  }
  nodes_[idx].block = block;
  push_front(idx);
  map_.emplace(block, idx);
  return false;
}

bool LruCache::erase(std::uint64_t block) {
  auto it = map_.find(block);
  if (it == map_.end()) return false;
  const std::uint32_t idx = it->second;
  unlink(idx);
  free_.push_back(idx);
  map_.erase(it);
  return true;
}

void LruCache::clear() {
  map_.clear();
  nodes_.clear();
  free_.clear();
  head_ = tail_ = kNil;
  last_evicted_ = ~0ull;
}

CacheSim::CacheSim(MachineConfig cfg) : cfg_(std::move(cfg)) {
  const std::uint32_t L = cfg_.cache_levels();
  caches_.reserve(L);
  counters_.resize(L);
  for (std::uint32_t lvl = 1; lvl <= L; ++lvl) {
    const std::size_t lines = std::max<std::uint64_t>(
        1, cfg_.capacity(lvl) / cfg_.block(lvl));
    std::vector<LruCache> row;
    row.reserve(cfg_.caches_at(lvl));
    for (std::uint32_t c = 0; c < cfg_.caches_at(lvl); ++c) {
      row.emplace_back(lines);
    }
    caches_.push_back(std::move(row));
    counters_[lvl - 1].resize(cfg_.caches_at(lvl));
  }
}

void CacheSim::access(std::uint32_t core, std::uint64_t addr,
                      std::uint32_t words, bool write) {
  assert(core < cfg_.cores());
  const std::uint64_t b1 = cfg_.block(1);
  const std::uint64_t first = addr / b1;
  const std::uint64_t last = (addr + std::max<std::uint32_t>(words, 1) - 1) / b1;
  const std::uint32_t L = cfg_.cache_levels();
  for (std::uint64_t blk1 = first; blk1 <= last; ++blk1) {
    ++accesses_;
    const std::uint64_t word0 = blk1 * b1;
    // Coherence at B_1 granularity: a write invalidates other sharers.
    if (cfg_.cores() > 1) {
      auto& sharers = l1_sharers_[blk1];
      const std::uint64_t me = 1ull << (core % 64);
      if (write && (sharers & ~me) != 0) {
        ++pingpong_;
        for (std::uint32_t c = 0; c < cfg_.cores(); ++c) {
          if (c == core) continue;
          if (sharers & (1ull << (c % 64))) {
            if (caches_[0][cfg_.cache_of(c, 1)].erase(blk1)) {
              ++counters_[0][cfg_.cache_of(c, 1)].invalidations;
            }
          }
        }
        sharers = me;
      } else {
        sharers |= me;
      }
    }
    // Walk up the hierarchy until a hit.
    for (std::uint32_t lvl = 1; lvl <= L; ++lvl) {
      const std::uint64_t blk = word0 / cfg_.block(lvl);
      const std::uint32_t idx = cfg_.cache_of(core, lvl);
      LruCache& cache = caches_[lvl - 1][idx];
      CacheCounters& ctr = counters_[lvl - 1][idx];
      if (cache.touch(blk)) {
        ++ctr.hits;
        break;
      }
      ++ctr.misses;
      if (cache.last_evicted() != ~0ull) {
        ++ctr.evictions;
        if (lvl == 1) {
          // Keep the sharer map in sync with L1 contents.
          auto it = l1_sharers_.find(cache.last_evicted());
          if (it != l1_sharers_.end()) {
            it->second &= ~(1ull << (core % 64));
            if (it->second == 0) l1_sharers_.erase(it);
          }
        }
      }
    }
  }
}

const CacheCounters& CacheSim::counters(std::uint32_t level,
                                        std::uint32_t idx) const {
  return counters_.at(level - 1).at(idx);
}

std::uint64_t CacheSim::level_max_transfers(std::uint32_t level) const {
  std::uint64_t best = 0;
  for (const auto& c : counters_.at(level - 1)) {
    best = std::max(best, c.misses + c.evictions);
  }
  return best;
}

std::uint64_t CacheSim::level_max_misses(std::uint32_t level) const {
  std::uint64_t best = 0;
  for (const auto& c : counters_.at(level - 1)) {
    best = std::max(best, c.misses);
  }
  return best;
}

std::uint64_t CacheSim::level_total_misses(std::uint32_t level) const {
  std::uint64_t sum = 0;
  for (const auto& c : counters_.at(level - 1)) sum += c.misses;
  return sum;
}

void CacheSim::reset_stats() {
  for (auto& row : counters_) {
    std::fill(row.begin(), row.end(), CacheCounters{});
  }
  pingpong_ = 0;
  accesses_ = 0;
}

void CacheSim::clear() {
  reset_stats();
  for (auto& row : caches_) {
    for (auto& c : row) c.clear();
  }
  l1_sharers_.clear();
}

}  // namespace obliv::hm
