// Multi-level cache simulator for the HM model.
//
// Cache complexity in the paper is defined as the maximum number of block
// transfers into and out of any single level-i cache (Section II).  This
// simulator measures exactly that: every memory access by a core walks the
// hierarchy of fully-associative LRU caches on the core's path (its private
// L1, the L2 it shares, ...), counting a miss at each level where the block
// is absent.  Fully-associative LRU is the standard "ideal cache" of the
// cache-oblivious literature [1], which the HM analyses assume.
//
// The simulator also models the ping-ponging discussed in Section III: the
// coherence granularity is B_1, and a write to a block resident in another
// core's L1 invalidates it there and counts a ping-pong event.  The CGC
// scheduler's B_1-respecting chunking exists precisely to avoid these events
// (ablated in bench_sched_ablation).
//
// Implementation (PR 3): this is the hot path of every Table II / Theorem
// bench, so it is built for throughput while keeping every observable
// counter bit-identical to the reference semantics above (enforced by
// tests/test_golden_counters.cpp):
//
//   * LruCache keys blocks through an open-addressing flat table
//     (hm/flat_table.hpp) into an intrusive doubly-linked LRU list -- exact
//     fully-associative LRU, ~one probe per touch.
//   * Coherence is O(1) per access: the sharer set is a 64-bit mask in an
//     epoch-tagged flat table (MachineConfig rejects > 64 cores), writers
//     that are the sole sharer skip the invalidation scan entirely, and
//     invalidations iterate set bits, not all cores.
//   * A per-core "L0" filter (one block tag per core) short-circuits
//     repeated touches of a core's most-recently-used B_1 block -- the
//     common sequential-access case -- into a single compare.  L1 hit
//     counters are still credited; see DESIGN.md for why this is exact.
//   * access_run() walks a whole run of B_1 blocks per call, memoising the
//     last block touched per upper level within the run, so batched range
//     accesses (SimRef::load_run / store_run) pay one hierarchy walk per
//     *distinct* upper-level block instead of one probe per B_1 block.
#pragma once

#include <cstdint>
#include <vector>

#include "hm/config.hpp"
#include "hm/flat_table.hpp"
#include "obs/trace.hpp"

namespace obliv::hm {

/// Fully-associative LRU cache over abstract block ids.
class LruCache {
 public:
  explicit LruCache(std::size_t lines);

  /// Accesses `block`; returns true on hit.  On a miss the block is
  /// installed, evicting the least-recently-used block if full.
  /// `evicted` receives the victim block id (valid when the return of
  /// `evicted_valid()` is true after the call).
  bool touch(std::uint64_t block);

  /// LRU move for a block whose node index is already known (from
  /// last_node() at install/hit time) -- no hash probe.
  void touch_known(std::uint32_t idx) {
    if (head_ != idx) {
      unlink(idx);
      push_front(idx);
    }
  }

  /// Node index of the block hit or installed by the most recent touch().
  std::uint32_t last_node() const { return last_node_; }

  /// Removes `block` if present (coherence invalidation); returns true if
  /// it was present.
  bool erase(std::uint64_t block);

  bool contains(std::uint64_t block) const {
    return map_.find(block) != nullptr;
  }

  /// Block id evicted by the most recent touch(), or obs::kNoEviction if
  /// none (the same sentinel flows into kMiss.b unchanged, which is what
  /// lets the trace analyzer count evictions without a private protocol).
  std::uint64_t last_evicted() const { return last_evicted_; }

  void clear();

  std::size_t size() const { return map_.size(); }
  std::size_t lines() const { return lines_; }

 private:
  struct Node {
    std::uint64_t block;
    std::uint32_t prev, next;
    std::uint32_t slot;  ///< backpointer into map_ for O(1) erase
  };
  static constexpr std::uint32_t kNil = 0xffffffffu;

  void unlink(std::uint32_t idx) {
    Node& n = nodes_[idx];
    if (n.prev != kNil) {
      nodes_[n.prev].next = n.next;
    } else {
      head_ = n.next;
    }
    if (n.next != kNil) {
      nodes_[n.next].prev = n.prev;
    } else {
      tail_ = n.prev;
    }
  }

  void push_front(std::uint32_t idx) {
    Node& n = nodes_[idx];
    n.prev = kNil;
    n.next = head_;
    if (head_ != kNil) nodes_[head_].prev = idx;
    head_ = idx;
    if (tail_ == kNil) tail_ = idx;
  }

  std::size_t lines_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;
  FlatTable<std::uint32_t> map_;
  std::uint32_t head_ = kNil, tail_ = kNil;
  std::uint32_t last_node_ = kNil;
  std::uint64_t last_evicted_ = ~0ull;
};

/// Per-cache transfer counters.
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;       ///< blocks transferred *into* the cache
  std::uint64_t evictions = 0;    ///< blocks transferred *out of* the cache
  std::uint64_t invalidations = 0;  ///< coherence-induced removals (L1 only)
};

/// The whole-hierarchy simulator.
class CacheSim {
 public:
  /// Validating constructor; re-checks `cfg` (a default-constructed or
  /// hand-mutated MachineConfig would otherwise index empty level tables)
  /// and throws obliv::Error on violation.  Prefer make() on untrusted
  /// input.
  explicit CacheSim(MachineConfig cfg);

  /// Non-throwing companion: validates the config and builds the simulator,
  /// returning kInvalidConfig/kUnsupported for bad machines and
  /// kResourceExhausted when table allocation fails (including injected
  /// failures at fault::InjectSite::kAllocSim).
  static Result<CacheSim> make(MachineConfig cfg) noexcept;

  // counters1_ points into counters_[0]; moves keep vector heap buffers so
  // the pointer survives, but copies would leave it dangling.
  CacheSim(const CacheSim&) = delete;
  CacheSim& operator=(const CacheSim&) = delete;
  CacheSim(CacheSim&&) = default;
  CacheSim& operator=(CacheSim&&) = default;

  /// Simulates core `core` touching `words` consecutive words starting at
  /// word address `addr` (read if !write).  Equivalent to access_run().
  void access(std::uint32_t core, std::uint64_t addr, std::uint32_t words,
              bool write) {
    access_run(core, addr, words, write);
  }

  /// Batched entry point: simulates the whole run of B_1 blocks covered by
  /// [addr, addr + words) in one call.  Observable counters are identical
  /// to per-word access() calls over the same range collapsed at B_1
  /// granularity (each covered block is touched exactly once per call).
  ///
  /// The body here is the L0 fast path, inlined into callers: a repeat
  /// touch of the core's most recent B_1 block (and, for writes, one it
  /// holds exclusively) is a single compare + two counter increments.
  /// Everything else tail-calls the out-of-line slow path.
  void access_run(std::uint32_t core, std::uint64_t addr, std::uint32_t words,
                  bool write) {
    accesses_ += words > 0 ? words : 1;
    const std::uint64_t end = addr + (words > 1 ? words - 1 : 0);
    std::uint64_t first, last;
    if (b1_shift_ != kNoShift) {
      first = addr >> b1_shift_;
      last = end >> b1_shift_;
    } else {
      first = addr / b1_;
      last = end / b1_;
    }
    if (first == last) {
      L0Entry* set = &l0_[core * kL0Ways];
      if (set[0].block == first && (!write || set[0].exclusive)) {
        ++counters1_[core].hits;
        return;
      }
      // Second way inline: two interleaved streams (one loaded, one stored)
      // alternate between slots 0 and 1 on every access.
      if (set[1].block == first && (!write || set[1].exclusive)) {
        const L0Entry hit = set[1];
        set[1] = set[0];
        set[0] = hit;
        l0_dirty_[core] = 1;  // LRU move deferred until the next slow path
        ++counters1_[core].hits;
        return;
      }
    }
    access_blocks(core, first, last, write);
  }

  const MachineConfig& config() const { return cfg_; }

  /// Counters of cache `idx` at 1-based `level`.
  const CacheCounters& counters(std::uint32_t level, std::uint32_t idx) const;

  /// The paper's per-level cache complexity: max over the q_i caches at
  /// `level` of (misses + evictions).
  std::uint64_t level_max_transfers(std::uint32_t level) const;

  /// Max over caches at `level` of misses only (block reads).
  std::uint64_t level_max_misses(std::uint32_t level) const;

  /// Sum of misses over all caches at `level`.
  std::uint64_t level_total_misses(std::uint32_t level) const;

  /// Number of coherence ping-pong events (write hitting a B_1 block held
  /// by other L1s).
  std::uint64_t pingpong_events() const { return pingpong_; }

  /// Total simulated word accesses (the workload-invariant throughput
  /// numerator: a batched access_run over `words` words counts `words`,
  /// exactly like per-word calls over the same range would).
  std::uint64_t total_accesses() const { return accesses_; }

  /// Attaches an event tracer (nullptr detaches).  Misses, evictions and
  /// ping-pongs are then emitted as obs events attributed to the tracer's
  /// current task context; the L0/L1 hit fast paths never emit, so the
  /// traced slowdown is bounded by the miss rate.  Emission sits behind
  /// `if constexpr (obs::kTracingCompiledIn)`, so an OBLIV_TRACING=OFF
  /// build pays nothing.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Zeroes all counters but keeps cache contents (warm restart).
  void reset_stats();

  /// Empties every cache and zeroes counters (cold restart).
  void clear();

 private:
  // The sharded replay engine (hm/psim.hpp) replicates the private L0/L1
  // paths on worker threads and replays shared-level effects through the
  // same internal state, so it needs full access.
  friend class ShardedCacheSim;

  /// One slot of a core's L0 filter: a B_1 block known to be resident in
  /// the core's private L1 at LRU node `node`.  `exclusive` means the
  /// sharer mask is known to be exactly this core, so even writes need no
  /// coherence probe.  Each core owns kL0Ways slots kept in MRU order, and
  /// slots are cleared whenever their block leaves the L1 (eviction or
  /// invalidation), so a slot hit is always an exact L1 hit.  The slots
  /// are, by construction, the core's kL0Ways most recently used distinct
  /// blocks, so the L1's LRU-list moves for slot hits are *deferred*: list
  /// order among the top-kL0Ways blocks cannot affect an eviction decision
  /// until the next install, and the slow path settles the deferred order
  /// (flush, in slot order) before it touches the L1 -- reproducing
  /// exactly the list an eager implementation would have.  Multiple ways
  /// matter because the MO kernels interleave 2-3 sequential streams
  /// (e.g. scan reads v[2i], v[2i+1] and writes t[i]), which would thrash
  /// a single-entry filter every access.
  struct L0Entry {
    std::uint64_t block = ~0ull;
    std::uint32_t node = 0;
    bool exclusive = false;
  };
  static constexpr std::uint32_t kL0Ways = 4;

  /// Out-of-line slow path of access_run(): touches blocks [first, last].
  void access_blocks(std::uint32_t core, std::uint64_t first,
                     std::uint64_t last, bool write);

  /// One B_1-block touch: L0 filter, coherence, hierarchy walk.
  /// `run_memo` (one slot per level, ~0 = none) carries the last block
  /// touched per upper level within the current access_run() call; pass
  /// nullptr for single-block accesses.
  void touch_block(std::uint32_t core, std::uint64_t blk1, bool write,
                   std::uint64_t* run_memo);

  /// Write-path coherence: invalidate other sharers (counting one
  /// ping-pong if any existed) and make `core` the sole sharer.
  void coherence_write(std::uint32_t core, std::uint64_t blk1);

  /// Clears `blk1` from `core`'s L0 set if present (block left the L1).
  void l0_drop(std::uint32_t core, std::uint64_t blk1);

  /// Block id of `word` at `level` (1-based).
  std::uint64_t block_of(std::uint64_t word, std::uint32_t level) const {
    const std::uint8_t s = shift_[level - 1];
    return s != kNoShift ? word >> s : word / cfg_.block(level);
  }

  static constexpr std::uint8_t kNoShift = 0xff;

  MachineConfig cfg_;
  bool multicore_ = false;
  // Hot copies for the inline fast path: B_1 and its log2 (or kNoShift),
  // and the raw row of L1 counters (counters_[0].data(); vectors never
  // resize after construction, and moves keep heap buffers, so the pointer
  // stays valid -- copying is deleted below to keep that true).
  std::uint64_t b1_ = 1;
  std::uint8_t b1_shift_ = 0;
  CacheCounters* counters1_ = nullptr;
  // caches_[level-1][idx]
  std::vector<std::vector<LruCache>> caches_;
  std::vector<std::vector<CacheCounters>> counters_;
  // cache_idx_[level-1][core]: cfg_.cache_of(core, level), precomputed.
  std::vector<std::vector<std::uint32_t>> cache_idx_;
  // log2(B_i) when B_i is a power of two, else kNoShift.
  std::vector<std::uint8_t> shift_;
  // l0_[core * kL0Ways + k]: core's L0 filter slots in MRU order.
  std::vector<L0Entry> l0_;
  // l0_dirty_[core]: nonzero when L0 slot order has diverged from the L1's
  // LRU-list order (moves deferred by L0 hits; settled before any install).
  std::vector<std::uint8_t> l0_dirty_;
  // Scratch for access_run(): last block touched per level in the current
  // run (index level-1; ~0 = none).  Member to avoid per-call allocation.
  std::vector<std::uint64_t> run_memo_;
  SharerTable sharers_;
  std::uint64_t pingpong_ = 0;
  std::uint64_t accesses_ = 0;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace obliv::hm
