// Multi-level cache simulator for the HM model.
//
// Cache complexity in the paper is defined as the maximum number of block
// transfers into and out of any single level-i cache (Section II).  This
// simulator measures exactly that: every memory access by a core walks the
// hierarchy of fully-associative LRU caches on the core's path (its private
// L1, the L2 it shares, ...), counting a miss at each level where the block
// is absent.  Fully-associative LRU is the standard "ideal cache" of the
// cache-oblivious literature [1], which the HM analyses assume.
//
// The simulator also models the ping-ponging discussed in Section III: the
// coherence granularity is B_1, and a write to a block resident in another
// core's L1 invalidates it there and counts a ping-pong event.  The CGC
// scheduler's B_1-respecting chunking exists precisely to avoid these events
// (ablated in bench_sched_ablation).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hm/config.hpp"

namespace obliv::hm {

/// Fully-associative LRU cache over abstract block ids.
class LruCache {
 public:
  explicit LruCache(std::size_t lines);

  /// Accesses `block`; returns true on hit.  On a miss the block is
  /// installed, evicting the least-recently-used block if full.
  /// `evicted` receives the victim block id (valid when the return of
  /// `evicted_valid()` is true after the call).
  bool touch(std::uint64_t block);

  /// Removes `block` if present (coherence invalidation); returns true if
  /// it was present.
  bool erase(std::uint64_t block);

  bool contains(std::uint64_t block) const { return map_.count(block) != 0; }

  /// Block id evicted by the most recent touch(), or UINT64_MAX if none.
  std::uint64_t last_evicted() const { return last_evicted_; }

  void clear();

  std::size_t size() const { return map_.size(); }
  std::size_t lines() const { return lines_; }

 private:
  struct Node {
    std::uint64_t block;
    std::uint32_t prev, next;
  };
  static constexpr std::uint32_t kNil = 0xffffffffu;

  void unlink(std::uint32_t idx);
  void push_front(std::uint32_t idx);

  std::size_t lines_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;
  std::unordered_map<std::uint64_t, std::uint32_t> map_;
  std::uint32_t head_ = kNil, tail_ = kNil;
  std::uint64_t last_evicted_ = ~0ull;
};

/// Per-cache transfer counters.
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;       ///< blocks transferred *into* the cache
  std::uint64_t evictions = 0;    ///< blocks transferred *out of* the cache
  std::uint64_t invalidations = 0;  ///< coherence-induced removals (L1 only)
};

/// The whole-hierarchy simulator.
class CacheSim {
 public:
  explicit CacheSim(MachineConfig cfg);

  /// Simulates core `core` touching `words` consecutive words starting at
  /// word address `addr` (read if !write).
  void access(std::uint32_t core, std::uint64_t addr, std::uint32_t words,
              bool write);

  const MachineConfig& config() const { return cfg_; }

  /// Counters of cache `idx` at 1-based `level`.
  const CacheCounters& counters(std::uint32_t level, std::uint32_t idx) const;

  /// The paper's per-level cache complexity: max over the q_i caches at
  /// `level` of (misses + evictions).
  std::uint64_t level_max_transfers(std::uint32_t level) const;

  /// Max over caches at `level` of misses only (block reads).
  std::uint64_t level_max_misses(std::uint32_t level) const;

  /// Sum of misses over all caches at `level`.
  std::uint64_t level_total_misses(std::uint32_t level) const;

  /// Number of coherence ping-pong events (write hitting a B_1 block held
  /// by other L1s).
  std::uint64_t pingpong_events() const { return pingpong_; }

  std::uint64_t total_accesses() const { return accesses_; }

  /// Zeroes all counters but keeps cache contents (warm restart).
  void reset_stats();

  /// Empties every cache and zeroes counters (cold restart).
  void clear();

 private:
  MachineConfig cfg_;
  // caches_[level-1][idx]
  std::vector<std::vector<LruCache>> caches_;
  std::vector<std::vector<CacheCounters>> counters_;
  // Sharer bitmask per B_1 block, for the coherence model (supports up to
  // 64 cores, enough for every preset).
  std::unordered_map<std::uint64_t, std::uint64_t> l1_sharers_;
  std::uint64_t pingpong_ = 0;
  std::uint64_t accesses_ = 0;
};

}  // namespace obliv::hm
