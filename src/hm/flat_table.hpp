// Open-addressing hash tables for the cache simulator's hot path.
//
// The simulator does one hash probe per cache level per simulated block
// touch, so table speed is simulator speed.  Both tables here are linear-
// probing, power-of-two flat tables with one control byte per slot (empty /
// tombstone / 7-bit key fingerprint), so a probe is one byte compare plus,
// on fingerprint match, one key compare -- no pointer chasing, no
// allocation per entry, and the control bytes of a cluster share cache
// lines.  Keys are 64-bit block ids, bucketed by their low bits (see
// bucket_of for why identity beats a scattering hash here).
//
//   * FlatTable<V>   -- generic map used by LruCache (block -> node index).
//     Deletions (coherence invalidations) leave tombstones; the table
//     rehashes in place when live + tombstone load crosses 7/8 and doubles
//     when the live load alone justifies it.
//   * SharerTable    -- block -> 64-bit sharer mask for the coherence
//     model, with *epoch-tagged* slots: clear() is O(1) (bump the epoch;
//     stale slots are treated as absent and reclaimed lazily on insert or
//     rehash).  CacheSim::clear() runs once per SimExecutor::run(), so this
//     keeps warm-table memory across runs without paying a sweep.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

namespace obliv::hm {

/// Bucket index for `key` in a table of `mask + 1` (power-of-two) slots:
/// one Fibonacci multiply, bucket from the top bits.  A single multiply is
/// the latency sweet spot for the probe's critical path: a full finalizer
/// (splitmix64) costs ~3x in dependent ops for no measurable collision
/// win, while identity indexing (key & mask) collapses under the
/// power-of-two-strided block ids the benches generate (per-core
/// partitions and matrix tiles alias into the same buckets, degrading
/// probes into long tombstone-ridden clusters).
inline std::size_t bucket_of(std::uint64_t key, std::size_t mask) {
  return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ull) >> 32) & mask;
}

/// 7-bit fingerprint from a different bit window of the same multiply.
inline std::uint8_t fingerprint_of(std::uint64_t key) {
  return static_cast<std::uint8_t>((key * 0x9e3779b97f4a7c15ull) >> 57);
}

inline std::size_t pow2_at_least(std::size_t n) {
  std::size_t c = 16;
  while (c < n) c <<= 1;
  return c;
}

/// Linear-probing flat hash map from uint64 keys to V, with tombstone
/// deletion.  V must be trivially copyable.
template <class V>
class FlatTable {
  static constexpr std::uint8_t kEmpty = 0x80;
  static constexpr std::uint8_t kTomb = 0x81;

 public:
  /// `expected` sizes the initial table so the steady state (e.g. a full
  /// LRU cache) does not rehash.
  explicit FlatTable(std::size_t expected = 0) { init(capacity_for(expected)); }

  std::size_t size() const { return size_; }

  V* find(std::uint64_t key) {
    std::size_t i = bucket_of(key, mask_);
    const std::uint8_t fp = fingerprint_of(key);
    for (;;) {
      const std::uint8_t c = ctrl_[i];
      if (c == fp && slots_[i].key == key) return &slots_[i].val;
      if (c == kEmpty) return nullptr;
      i = (i + 1) & mask_;
    }
  }

  const V* find(std::uint64_t key) const {
    return const_cast<FlatTable*>(this)->find(key);
  }

  /// Single-pass lookup for the hot miss path: on a hit returns the value
  /// pointer; on a miss returns nullptr and sets `slot` to the position a
  /// subsequent insert_at(slot, key, v) must use.  Call reserve_one()
  /// first so the cluster cannot overflow.
  V* find_or_slot(std::uint64_t key, std::size_t& slot) {
    std::size_t i = bucket_of(key, mask_);
    const std::uint8_t fp = fingerprint_of(key);
    std::size_t insert = kNoSlot;
    for (;;) {
      const std::uint8_t c = ctrl_[i];
      if (c == fp && slots_[i].key == key) return &slots_[i].val;
      if (c == kEmpty) {
        slot = (insert != kNoSlot) ? insert : i;
        return nullptr;
      }
      if (c == kTomb && insert == kNoSlot) insert = i;
      i = (i + 1) & mask_;
    }
  }

  /// Inserts `key` (absent) at `slot` obtained from find_or_slot(); returns
  /// the slot actually used.
  std::size_t insert_at(std::size_t slot, std::uint64_t key, V v) {
    if (ctrl_[slot] == kTomb) --tombs_;
    ctrl_[slot] = fingerprint_of(key);
    slots_[slot].key = key;
    slots_[slot].val = v;
    ++size_;
    return slot;
  }

  /// O(1) erase of the entry known to live at `slot` (from insert_at or
  /// a caller-maintained backpointer).
  void erase_at(std::size_t slot) {
    ctrl_[slot] = kTomb;
    ++tombs_;
    --size_;
  }

  /// True when the next insert would cross the load threshold; the caller
  /// should rehash_now() and refresh any stored slot positions.
  bool needs_grow() const {
    return (size_ + tombs_ + 1) * 8 >= capacity() * 7;
  }

  /// Rehashes (in place if mostly tombstones, doubling if genuinely full).
  /// Invalidates every slot position previously returned.
  void rehash_now() {
    rehash((size_ + 1) * 8 >= capacity() * 3 ? capacity() * 2 : capacity());
  }

  /// Calls f(slot, value) for every live entry.
  template <class F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < capacity(); ++i) {
      if (ctrl_[i] < kEmpty) f(i, slots_[i].val);
    }
  }

  /// Inserts `key` (which must NOT be present) with value `v`.
  void insert_new(std::uint64_t key, V v) {
    if ((size_ + tombs_ + 1) * 8 >= capacity() * 7) {
      // Mostly-tombstone tables rehash in place; genuinely full ones double.
      rehash((size_ + 1) * 8 >= capacity() * 3 ? capacity() * 2 : capacity());
    }
    std::size_t i = bucket_of(key, mask_);
    while (ctrl_[i] < kEmpty) i = (i + 1) & mask_;  // live slot -> keep going
    if (ctrl_[i] == kTomb) --tombs_;
    ctrl_[i] = fingerprint_of(key);
    slots_[i].key = key;
    slots_[i].val = v;
    ++size_;
  }

  bool erase(std::uint64_t key) {
    std::size_t i = bucket_of(key, mask_);
    const std::uint8_t fp = fingerprint_of(key);
    for (;;) {
      const std::uint8_t c = ctrl_[i];
      if (c == fp && slots_[i].key == key) {
        ctrl_[i] = kTomb;
        ++tombs_;
        --size_;
        return true;
      }
      if (c == kEmpty) return false;
      i = (i + 1) & mask_;
    }
  }

  void clear() {
    std::memset(ctrl_.data(), kEmpty, ctrl_.size());
    size_ = 0;
    tombs_ = 0;
  }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  struct Slot {
    std::uint64_t key;
    V val;
  };
  static constexpr std::size_t kNoSlot = ~std::size_t(0);

  static std::size_t capacity_for(std::size_t expected) {
    return pow2_at_least(expected * 2);
  }

  void init(std::size_t cap) {
    ctrl_.assign(cap, kEmpty);
    slots_.resize(cap);
    mask_ = cap - 1;
    size_ = 0;
    tombs_ = 0;
  }

  void rehash(std::size_t cap) {
    std::vector<std::uint8_t> old_ctrl = std::move(ctrl_);
    std::vector<Slot> old_slots = std::move(slots_);
    init(cap);
    for (std::size_t i = 0; i < old_ctrl.size(); ++i) {
      if (old_ctrl[i] < kEmpty) insert_new(old_slots[i].key, old_slots[i].val);
    }
  }

  std::vector<std::uint8_t> ctrl_;
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::size_t tombs_ = 0;
};

/// Block id -> 64-bit L1 sharer mask, with epoch-tagged slots.
///
/// A slot whose epoch differs from the table's current epoch, or whose mask
/// is zero (all sharers evicted), is logically absent and reusable; probes
/// step over it like a tombstone.  Rehashing drops dead slots, so the table
/// footprint tracks the number of blocks *currently resident in some L1*,
/// not the number of blocks ever touched.
class SharerTable {
  static constexpr std::uint8_t kEmpty = 0x80;

 public:
  SharerTable() { init(256); }

  /// Mask reference for `blk`, zero-initialised if absent this epoch.
  std::uint64_t& get(std::uint64_t blk) {
    if ((live_ + 1) * 8 >= capacity() * 7) maybe_grow();
    std::size_t i = bucket_of(blk, mask_);
    const std::uint8_t fp = fingerprint_of(blk);
    std::size_t reuse = kNoSlot;
    for (;;) {
      const std::uint8_t c = ctrl_[i];
      if (c == fp && slots_[i].key == blk) {
        Slot& s = slots_[i];
        if (s.epoch != epoch_) {
          s.epoch = epoch_;
          s.mask = 0;
        }
        return s.mask;
      }
      if (c == kEmpty) break;
      if (reuse == kNoSlot && c != kEmpty && dead(slots_[i])) reuse = i;
      i = (i + 1) & mask_;
    }
    if (reuse != kNoSlot) {
      i = reuse;  // recycle a dead slot inside the cluster
    } else {
      ++live_;
    }
    ctrl_[i] = fingerprint_of(blk);
    slots_[i] = Slot{blk, 0, epoch_};
    return slots_[i].mask;
  }

  /// Mask pointer if `blk` has a current-epoch entry, else nullptr.  Used
  /// by the eviction path, which must not create entries.
  std::uint64_t* find(std::uint64_t blk) {
    std::size_t i = bucket_of(blk, mask_);
    const std::uint8_t fp = fingerprint_of(blk);
    for (;;) {
      const std::uint8_t c = ctrl_[i];
      if (c == fp && slots_[i].key == blk) {
        return slots_[i].epoch == epoch_ ? &slots_[i].mask : nullptr;
      }
      if (c == kEmpty) return nullptr;
      i = (i + 1) & mask_;
    }
  }

  /// O(1) logical clear: every existing slot becomes stale.
  void clear() { ++epoch_; }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  struct Slot {
    std::uint64_t key;
    std::uint64_t mask;
    std::uint64_t epoch;
  };
  static constexpr std::size_t kNoSlot = ~std::size_t(0);

  bool dead(const Slot& s) const { return s.epoch != epoch_ || s.mask == 0; }

  void init(std::size_t cap) {
    ctrl_.assign(cap, kEmpty);
    slots_.resize(cap);
    mask_ = cap - 1;
    live_ = 0;
  }

  void maybe_grow() {
    // Count genuinely live entries; grow only if they justify it, else
    // rehash in place to shed dead slots.
    std::size_t alive = 0;
    for (std::size_t i = 0; i < capacity(); ++i) {
      if (ctrl_[i] != kEmpty && !dead(slots_[i])) ++alive;
    }
    const std::size_t cap =
        (alive + 1) * 8 >= capacity() * 3 ? capacity() * 2 : capacity();
    std::vector<std::uint8_t> old_ctrl = std::move(ctrl_);
    std::vector<Slot> old_slots = std::move(slots_);
    init(cap);
    for (std::size_t i = 0; i < old_ctrl.size(); ++i) {
      if (old_ctrl[i] == kEmpty) continue;
      const Slot& s = old_slots[i];
      if (s.epoch != epoch_ || s.mask == 0) continue;
      // Re-probe for the new home (keys are unique; slots are fresh).
      std::size_t j = bucket_of(s.key, mask_);
      while (ctrl_[j] != kEmpty) j = (j + 1) & mask_;
      ctrl_[j] = fingerprint_of(s.key);
      slots_[j] = s;
      ++live_;
    }
  }

  std::vector<std::uint8_t> ctrl_;
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t live_ = 0;
  std::uint64_t epoch_ = 1;
};

}  // namespace obliv::hm
