// The HM (hierarchical multi-level multicore) machine model of Section II.
//
// An HM machine with h levels has cores P_1..P_p at the bottom, caches at
// levels 1..h-1 of finite but increasing size, and an arbitrarily large
// shared memory at level h.  Level-i has q_i caches, each of capacity C_i
// words with block (cache-line) length B_i words; p_i consecutive
// level-(i-1) caches share one level-i cache.  The paper's structural
// constraints are enforced by MachineConfig::validate():
//
//   * p_1 = 1                      (each core has a private L1)
//   * p_h = 1                      (a single cache at level h-1, below memory)
//   * C_i >= c_i * p_i * C_{i-1}   (cache growth; c_i >= 1)
//   * C_i >= B_i^2                 (tall cache, assumed by all theorems)
//
// All sizes are in *words* (one word = one element of a unit-size array);
// workloads measured by the simulator use word-granular addresses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/status.hpp"

namespace obliv::hm {

/// Parameters of one cache level.
struct LevelSpec {
  std::uint64_t capacity_words = 0;  ///< C_i: cache size in words.
  std::uint64_t block_words = 0;     ///< B_i: block transfer size in words.
  std::uint32_t fanin = 1;           ///< p_i: level-(i-1) caches sharing one
                                     ///< level-i cache (p_1 == 1 by model).
};

/// Full description of an HM machine.  `levels[k]` describes cache level
/// k+1; the shared memory at level h is implicit (infinite, above the last
/// cache level).
class MachineConfig {
 public:
  MachineConfig() = default;

  /// Validating constructor; throws obliv::Error (an std::invalid_argument)
  /// on any structural violation.  Prefer make() on untrusted input.
  MachineConfig(std::string name, std::vector<LevelSpec> levels);

  /// Non-throwing companion: returns the validated config or the typed
  /// error explaining the violation.  This is the entry point for
  /// user-supplied (potentially hostile) machine descriptions -- no
  /// assert or abort is reachable through it.
  static Result<MachineConfig> make(std::string name,
                                    std::vector<LevelSpec> levels) noexcept;

  /// Number of cache levels (h - 1 in the paper's numbering).
  std::uint32_t cache_levels() const {
    return static_cast<std::uint32_t>(levels_.size());
  }

  /// h: cache levels plus the shared-memory level.
  std::uint32_t h() const { return cache_levels() + 1; }

  /// p: total number of cores, prod_{i=1..h-1} p_i.
  std::uint32_t cores() const { return cores_; }

  /// q_i: number of caches at 1-based level `level`.
  std::uint32_t caches_at(std::uint32_t level) const;

  /// p'_i: number of cores under (subtended by) any one level-`level` cache.
  std::uint32_t cores_under(std::uint32_t level) const;

  /// C_i in words, 1-based level.
  std::uint64_t capacity(std::uint32_t level) const {
    return levels_[level - 1].capacity_words;
  }

  /// B_i in words, 1-based level.
  std::uint64_t block(std::uint32_t level) const {
    return levels_[level - 1].block_words;
  }

  /// Index of the level-`level` cache above core `core` (the cache whose
  /// shadow contains the core).
  std::uint32_t cache_of(std::uint32_t core, std::uint32_t level) const {
    return core / cores_under(level);
  }

  /// First core in the shadow of cache `idx` at 1-based `level`.
  std::uint32_t first_core_under(std::uint32_t idx, std::uint32_t level) const {
    return idx * cores_under(level);
  }

  /// Smallest 1-based cache level whose capacity is >= `words`; returns
  /// h() (the memory level) when no cache is large enough.
  std::uint32_t smallest_level_fitting(std::uint64_t words) const;

  const std::string& name() const { return name_; }
  const std::vector<LevelSpec>& levels() const { return levels_; }

  /// Checks all structural constraints of Section II; throws obliv::Error
  /// (derives std::invalid_argument) with a diagnostic on violation.
  void validate() const;

  /// Non-throwing validation: ErrorCode::kInvalidConfig for structural
  /// violations, kUnsupported for machines outside implementation limits
  /// (e.g. > 64 cores -- the coherence sharer set is a 64-bit bitmask).
  /// Fan-out products are checked in 64-bit with saturation, so absurd
  /// p_i values cannot wrap a 32-bit core count back into range.
  Status validate_status() const;

  /// One-line human-readable description (printed by bench headers).
  std::string describe() const;

  // ---- Presets used across tests, benches and examples. ----

  /// h=2: a single core with one cache -- the sequential cache-oblivious
  /// (ideal cache) model as a degenerate HM machine.
  static MachineConfig sequential(std::uint64_t capacity_words = 1 << 14,
                                  std::uint64_t block_words = 8);

  /// h=3: `cores` cores with private L1s sharing one L2 (the multicore model
  /// of Blelloch et al. [10] that HM extends).
  static MachineConfig shared_l2(std::uint32_t cores = 8);

  /// h=4: 16 cores, private L1, L2 shared by 4, one L3 shared by all.
  static MachineConfig three_level(std::uint32_t l2_fanin = 4,
                                   std::uint32_t l3_fanin = 4);

  /// h=5: the Figure-1 shape -- 8 cores, fanins (1, 2, 2, 2).
  static MachineConfig figure1();

 private:
  std::string name_;
  std::vector<LevelSpec> levels_;
  std::vector<std::uint32_t> cores_under_;  // p'_i, 1-based via index i-1
  std::uint32_t cores_ = 1;
};

}  // namespace obliv::hm
