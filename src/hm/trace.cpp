#include "hm/trace.hpp"

#include <cstdlib>
#include <cstring>
#include <thread>

namespace obliv::hm {

PsimMode resolve_psim_mode(PsimMode requested) {
  if (requested != PsimMode::kAuto) return requested;
  if (const char* env = std::getenv("OBLIV_PSIM")) {
    if (std::strcmp(env, "sharded") == 0) return PsimMode::kSharded;
    if (std::strcmp(env, "serial") == 0) return PsimMode::kSerial;
    // Unrecognized values fall through to the hardware default rather than
    // silently picking a fixed engine.
  }
  return std::thread::hardware_concurrency() > 1 ? PsimMode::kSharded
                                                 : PsimMode::kSerial;
}

unsigned psim_threads_from_env() {
  if (const char* env = std::getenv("OBLIV_PSIM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? hc : 1;
}

std::uint64_t psim_seed_from_env(std::uint64_t fallback) {
  if (const char* env = std::getenv("OBLIV_PSIM_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return fallback;
}

}  // namespace obliv::hm
