// Sharded parallel cache simulation with an epoch-ordered merge (PR 6).
//
// The HM model's own structure makes the simulator parallelizable without
// giving up bit-exact determinism: between shared-level synchronization
// points, distinct private caches evolve independently.  The serial
// SimExecutor executes parallel siblings sequentially in DFS order, so its
// access stream is a concatenation of contiguous per-core runs; within any
// contiguous chunk of that stream ("epoch"), each core's subsequence only
// touches the core's own L0 filter and L1 cache -- unless a coherence
// interaction couples two cores.  The engine exploits exactly that:
//
//   1. Accesses are buffered instead of simulated; the buffer is cut into
//      epochs at construct boundaries (SB/CGC anchoring returns, NO
//      superstep-like sync points) or at a size cap.  ANY contiguous
//      partition is correct -- the epoch analysis below decides per epoch
//      whether the parallel path is exact, and falls back otherwise.
//   2. Epoch analysis (serial, one pass): build writer/reader core masks
//      per covered B_1 block.  The epoch is conflict-FREE iff (a) no block
//      is written by one core and touched by another within the epoch, and
//      (b) no block written this epoch has stale sharers from *before* the
//      epoch in other L1s (a serial run would invalidate them mid-epoch,
//      perturbing L1 occupancy).  Conflict-free epochs provably produce
//      zero ping-pongs and zero invalidations.
//   3. Shard replay (parallel): one task per active core on a
//      work-stealing pool replays the core's subsequence against ONLY its
//      private L0 set, l0_dirty flag, L1 LruCache, and L1 counters --
//      all disjoint arrays indexed by core, so there are no data races --
//      replicating CacheSim::touch_block's private-path semantics
//      instruction for instruction.  Shared-level effects (sharer-mask
//      updates, upper-level walks, miss events) are not applied; instead
//      each L1 miss / coherence-relevant write is recorded as a queue
//      entry keyed by the access's epoch sequence number.
//   4. Epoch-ordered merge (serial): walk the epoch's accesses in original
//      trace order -- which IS the canonical (epoch, core, seq) order,
//      since each core's queue drains monotonically -- and apply each
//      queued event against the shared sharer table and upper-level
//      caches exactly as the serial simulator would have, including the
//      run-memoised upper walk and deferred obs-event emission.
//
// Shard outputs depend only on the private start state and the core's own
// subsequence, never on thread scheduling, so counters AND obs traces are
// byte-identical to the serial oracle (tests/test_psim_fuzz.cpp gates
// this; `OBLIV_PSIM=serial` keeps the oracle selectable at runtime).
//
// With 1 worker the engine degrades each epoch to pure serial fallback and
// skips the analysis pass entirely, so the single-thread overhead is just
// the buffering (guardrail: bench_simrate --psim-off-check, budget <= 5%).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "hm/cache_sim.hpp"
#include "hm/flat_table.hpp"
#include "hm/trace.hpp"
#include "obs/trace.hpp"

namespace obliv::sched {
class WorkStealingPool;
}

namespace obliv::hm {

/// The sharded replay engine.  Wraps a CacheSim (which stays the single
/// source of truth for all counters and cache state) and simulates
/// buffered access streams epoch by epoch.  Not reentrant; one engine per
/// simulator.
class ShardedCacheSim {
 public:
  /// `threads` = 0 picks psim_threads_from_env(); the count is capped at
  /// the simulated machine's core count (one shard per simulated core).
  explicit ShardedCacheSim(CacheSim& sim, unsigned threads = 0);
  ~ShardedCacheSim();
  ShardedCacheSim(const ShardedCacheSim&) = delete;
  ShardedCacheSim& operator=(const ShardedCacheSim&) = delete;

  unsigned threads() const { return threads_; }

  /// Default flush-eligibility threshold at a sync point, and the hard cap
  /// after which the buffer is flushed mid-construct (bounds memory; any
  /// cut point is correct, see the header comment).
  static constexpr std::size_t kDefaultEpochGrain = 4096;
  static constexpr std::size_t kHardCapFactor = 64;

  // ---- Buffered-access API (SimExecutor integration) ----------------------

  /// The access buffer the executor appends to.  Stable across flushes.
  std::vector<PsimAccess>& buffer() { return buf_; }

  /// Resets per-run state and captures the obs context: `run_clock` is the
  /// executor's logical clock the tracer must be re-pointed at after any
  /// fallback replay (nullptr when replaying outside an executor).
  void begin_run(obs::Tracer* tracer, const std::uint64_t* run_clock);

  /// Defers a fully-formed scheduler event (timestamp already stamped) to
  /// be interleaved at its recorded position in the access stream: an
  /// event captured when the buffer held k accesses is emitted before the
  /// k-th access's own cache events, reproducing live emission order.
  void defer_sched_event(const obs::Event& ev);

  /// Simulates everything buffered so far as one epoch and empties the
  /// buffer.  Counters and (if a tracer is attached) trace events are
  /// byte-identical to having called sim.access() per entry.
  void flush();

  // ---- Raw replay API (benches / tests) -----------------------------------

  /// Replays a captured trace, cutting it into epochs of `epoch_entries`
  /// accesses.  Does not clear the simulator first (mirrors a plain
  /// access() replay loop).
  void replay(const TraceEntry* entries, std::size_t n,
              std::size_t epoch_entries = kDefaultEpochGrain *
                                          kHardCapFactor);

  // ---- Introspection ------------------------------------------------------

  std::uint64_t epochs() const { return epochs_; }
  std::uint64_t fallback_epochs() const { return fallback_epochs_; }
  /// True when OBLIV_PSIM_TRACE=1 enabled the opt-in per-epoch obs lane.
  bool epoch_trace_enabled() const { return epoch_trace_; }

 private:
  /// Shared-level effect recorded by a shard, keyed by the epoch sequence
  /// number of the access that produced it.  kEvWriteTouch = the serial
  /// path would call coherence_write here (no other sharers exist in a
  /// conflict-free epoch, so the merge just sets the mask).  kEvMiss = an
  /// L1 miss installing `blk` and evicting `victim` (~0 = none); the merge
  /// replays the sharer bookkeeping and the upper-level walk.
  struct ShardEvent {
    std::uint64_t blk;
    std::uint64_t victim;
    std::uint32_t seq;
    std::uint8_t kind;
    std::uint8_t write;
  };
  static constexpr std::uint8_t kEvWriteTouch = 0;
  static constexpr std::uint8_t kEvMiss = 1;

  struct Shard {
    std::vector<std::uint32_t> seqs;    ///< this core's entries, in order
    std::vector<ShardEvent> events;     ///< produced in seq order
    std::uint64_t accesses = 0;         ///< local word-access tally
    std::size_t cursor = 0;             ///< merge progress
  };

  struct TouchMasks {
    std::uint64_t w = 0;  ///< cores that wrote the block this epoch
    std::uint64_t r = 0;  ///< cores that read the block this epoch
  };

  struct DeferredSched {
    std::uint64_t seq;
    obs::Event ev;
  };

  void block_range(const PsimAccess& e, std::uint64_t& first,
                   std::uint64_t& last) const {
    const std::uint64_t end = e.addr + (e.words > 1 ? e.words - 1 : 0);
    if (b1_shift_ != 0xff) {
      first = e.addr >> b1_shift_;
      last = end >> b1_shift_;
    } else {
      first = e.addr / b1_;
      last = end / b1_;
    }
  }

  void bucket_epoch();
  bool epoch_conflict_free();
  void run_shards();
  void run_shard(std::uint32_t core);
  void shard_touch(std::uint32_t core, std::uint64_t blk, bool write,
                   std::uint32_t seq, Shard& sh);
  void merge_epoch();
  void fallback_epoch();
  void drain_sched(std::uint64_t upto);
  void walk_upper(std::uint32_t core, std::uint64_t blk, std::uint64_t* memo,
                  std::uint64_t ts, std::uint64_t task);
  void emit_epoch_mark(bool fallback);
  void reset_epoch_state();

  CacheSim& sim_;
  unsigned threads_;
  std::uint64_t b1_;
  std::uint8_t b1_shift_;
  bool epoch_trace_ = false;  // OBLIV_PSIM_TRACE=1: per-epoch lane events
  std::unique_ptr<sched::WorkStealingPool> pool_;

  std::vector<PsimAccess> buf_;
  std::vector<DeferredSched> sched_events_;
  std::size_t sched_cursor_ = 0;
  std::vector<Shard> shards_;           // indexed by simulated core
  std::vector<std::uint32_t> active_;   // cores with entries this epoch
  FlatTable<TouchMasks> touched_;       // per-epoch block -> masks
  std::vector<std::uint64_t> written_;  // blocks with a writer this epoch
  std::vector<std::uint64_t> memo_;     // upper-level run memo scratch

  obs::Tracer* tracer_ = nullptr;
  const std::uint64_t* run_clock_ = nullptr;
  std::uint64_t epochs_ = 0;
  std::uint64_t fallback_epochs_ = 0;
};

}  // namespace obliv::hm
