// First-class access-trace types for the HM simulator (PR 6).
//
// bench_simrate introduced trace capture ad hoc; the sharded replay engine
// (hm/psim.hpp) promotes it into the hm layer proper so both the scheduler
// (sched/sim_executor.hpp re-exports TraceEntry) and the benches consume
// one canonical stream format without the hm layer depending on sched.
//
// Also home to the OBLIV_PSIM environment plumbing: the runtime switch
// between the serial oracle simulator and the sharded engine, the worker
// count, and the fuzz-reproduction seed.
#pragma once

#include <cstdint>

namespace obliv::hm {

/// One recorded memory access: the arguments SimExecutor::access passed to
/// the cache simulator.  Benches capture a workload's trace once and replay
/// it against different simulator implementations (bench_simrate);
/// MachineConfig caps cores at 64, so the core always fits a byte.
struct TraceEntry {
  std::uint64_t addr;
  std::uint32_t words;
  std::uint8_t core;
  std::uint8_t write;
};

/// A buffered access awaiting sharded simulation: the TraceEntry fields
/// plus the obs context captured at issue time (the executor's logical
/// work clock and the anchored task id), so deferred replay can emit
/// byte-identical trace events.
struct PsimAccess {
  std::uint64_t addr;
  std::uint32_t words;
  std::uint8_t core;
  std::uint8_t write;
  std::uint64_t ts;
  std::uint64_t task;
};

/// Which cache-simulation engine a SimExecutor run uses.
enum class PsimMode : std::uint8_t {
  kAuto = 0,  ///< OBLIV_PSIM env var, else sharded iff the host has >1 core
  kSerial,    ///< the serial oracle (hm::CacheSim directly)
  kSharded,   ///< sharded L1 replay with epoch-ordered merge (hm/psim.hpp)
};

/// Resolves kAuto against `OBLIV_PSIM=serial|sharded` and, failing that,
/// the host: a 1-core host defaults to serial (the sharded engine cannot
/// win there and would only pay buffering overhead).  Explicit requests
/// pass through unchanged.
PsimMode resolve_psim_mode(PsimMode requested);

/// Worker count for the sharded engine: `OBLIV_PSIM_THREADS=N` if set and
/// positive, else hardware_concurrency (min 1).
unsigned psim_threads_from_env();

/// Fuzz-seed override: `OBLIV_PSIM_SEED=<n>` if set, else `fallback`.
/// Mirrors fault::seed_from_env so failures print a one-variable repro.
std::uint64_t psim_seed_from_env(std::uint64_t fallback);

}  // namespace obliv::hm
