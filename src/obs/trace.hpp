// obs: structured tracing + metrics for all three execution layers.
//
// The paper's contribution is *where* the scheduler anchors CGC / SB /
// CGC=>SB tasks and *which* cache level absorbs each miss; RunMetrics only
// reports end-of-run aggregates.  This subsystem records the individual
// decisions as typed events:
//
//   * NativeExecutor / WorkStealingPool: task spawn / steal / complete and
//     deque depth per worker (src/sched/native_executor.*);
//   * SimExecutor: hint dispatches and anchoring decisions -- which cache a
//     task was anchored at and under which rule (src/sched/sim_executor.*);
//   * hm::CacheSim: per-level miss / eviction / ping-pong events attributed
//     to the task anchored when they happened (src/hm/cache_sim.*);
//   * no::NoMachine: superstep closes with their communication volume.
//
// Events land in fixed-capacity per-worker ring buffers (flight-recorder
// style: single producer per ring, oldest events overwritten, total/drop
// counts kept) and export to Chrome trace_event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev.  A CounterRegistry holds
// named aggregate counters (it subsumes sched/metrics.hpp's RunMetrics --
// see metrics_to_counters) and exports as Chrome "C" events.
//
// Determinism: on the simulated layers the Tracer's clock is the executor's
// logical work counter and every ring has exactly one producer, so two runs
// of the same workload produce byte-identical exports
// (tests/test_trace_golden.cpp).  On the native layer timestamps come from
// steady_clock and are inherently non-deterministic.
//
// Cost: compile out with -DOBLIV_TRACING=OFF (OBLIV_OBS_TRACING=0) -- every
// emission site sits under `if constexpr (obs::kTracingCompiledIn)`, so the
// disabled build carries provably zero overhead (not even a branch).  When
// compiled in but no tracer is attached (the default), hot paths pay one
// pointer compare; bench_wallclock --trace measures the attached-tracer
// overhead (recorded in EXPERIMENTS.md, budget <= 5%).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

#ifndef OBLIV_OBS_TRACING
#define OBLIV_OBS_TRACING 1
#endif

namespace obliv::obs {

inline constexpr bool kTracingCompiledIn = OBLIV_OBS_TRACING != 0;

enum class EventKind : std::uint8_t {
  kTaskSpawn = 0,   ///< native fork: a=task id, b=deque depth after push
  kTaskSteal,       ///< native steal: a=task id, b=victim worker
  kTaskComplete,    ///< native completion: a=task id
  kHintDispatch,    ///< sim: detail=Hint, a=range length / task count
  kAnchor,          ///< sim anchoring decision: detail=AnchorReason,
                    ///< a=space words, b=anchor level, c=task id
  kTaskBegin,       ///< sim run_child enter: a=task id, b=level, c=parent id
  kTaskEnd,         ///< sim run_child exit: a=task id, b=span consumed
  kMiss,            ///< cache miss: detail=level, a=block, b=evicted block
                    ///< (kNoEviction = none), c=anchored task id
  kPingPong,        ///< coherence invalidation: a=block, c=anchored task id
  kSuperstep,       ///< NO superstep close: a=index, b=words, c=fold-0 h
  kEpoch,           ///< psim epoch close (opt-in via OBLIV_PSIM_TRACE=1):
                    ///< a=epoch index, b=buffered accesses, c=1 if the
                    ///< epoch fell back to serial replay; detail=cores
                    ///< active in the epoch
  kJobAdmit,        ///< serve admission: a=job seq, b=space est words,
                    ///< c=total admitted words after; detail=Family
  kJobBegin,        ///< serve job body start on a worker: a=job seq,
                    ///< b=queue wait ns; detail=Family
  kJobEnd,          ///< serve job body end: a=job seq, b=run ns,
                    ///< c=ErrorCode of the result; detail=Family
  kJobCancel,       ///< serve job poisoned mid-run (cancel or deadline):
                    ///< a=job seq, b=poison-to-completion latency ns,
                    ///< c=CancelToken::Reason; detail=Family
  kJobShed,         ///< serve admission shed under overload: a=job seq
                    ///< (0: never assigned), b=queue-wait p99 ns at the
                    ///< shed decision, c=retry-after hint ms; detail=Family
};

/// Sentinel for kMiss.b: the miss installed into a free line, nothing was
/// evicted.  Shared by the cache simulator (producer) and the trace
/// analyzer (consumer) so eviction attribution never drifts.
inline constexpr std::uint64_t kNoEviction = ~std::uint64_t(0);

/// Why an anchoring decision picked its cache (detail byte of kAnchor).
enum class AnchorReason : std::uint8_t {
  kSbFit = 0,       ///< SB: least-loaded cache at smallest fitting level
  kSbQueued,        ///< SB: no cache below the parent fits; queued at anchor
  kSlice,           ///< ablation: round-robin "proportionate slice"
  kCgcSegment,      ///< CGC: contiguous segment anchored at a core's L1
  kCgcSbSpread,     ///< CGC=>SB: subtask spread over level-t caches
};

/// One trace record.  Meaning of a/b/c depends on `kind` (see EventKind).
struct Event {
  std::uint64_t ts = 0;  ///< logical work units (sim) or ns (native)
  std::uint64_t a = 0, b = 0, c = 0;
  std::uint32_t tid = 0;  ///< export lane: worker, core, or cache id
  EventKind kind = EventKind::kTaskSpawn;
  std::uint8_t detail = 0;
};

/// Fixed-capacity single-producer event ring (flight recorder).  The owner
/// worker is the only writer; readers (the exporter) run after the workload
/// has quiesced, so no synchronization is needed or provided.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = kDefaultCapacity)
      : buf_(capacity == 0 ? 1 : capacity) {}

  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  void push(const Event& e) {
    buf_[pushed_ % buf_.size()] = e;
    ++pushed_;
  }

  std::uint64_t pushed() const { return pushed_; }
  std::uint64_t dropped() const {
    return pushed_ > buf_.size() ? pushed_ - buf_.size() : 0;
  }
  std::size_t retained() const {
    return pushed_ < buf_.size() ? static_cast<std::size_t>(pushed_)
                                 : buf_.size();
  }
  void clear() { pushed_ = 0; }

  /// Visits retained events oldest-to-newest.
  template <class F>
  void for_each(F&& f) const {
    const std::uint64_t n = retained();
    const std::uint64_t start = pushed_ - n;
    for (std::uint64_t i = 0; i < n; ++i) {
      f(buf_[(start + i) % buf_.size()]);
    }
  }

 private:
  std::vector<Event> buf_;
  std::uint64_t pushed_ = 0;
};

/// Named aggregate counters with deterministic (insertion) order.  Subsumes
/// sched/metrics.hpp: metrics_to_counters() maps a RunMetrics into named
/// entries, and the executors add scheduler counters RunMetrics never had
/// (hint dispatch counts, anchor histogram per level, steals, ...).
///
/// Besides plain counters the registry holds named log-scale Histograms
/// (obs/histogram.hpp) for distribution-shaped metrics: task grain sizes,
/// steal latencies, superstep volumes.  Histograms live in a deque so the
/// Histogram& handed back by histogram() stays valid across later
/// registrations (emission sites cache the pointer per run).
class CounterRegistry {
 public:
  std::uint64_t& counter(std::string_view name) {
    for (auto& [n, v] : items_) {
      if (n == name) return v;
    }
    items_.emplace_back(std::string(name), 0);
    return items_.back().second;
  }

  void add(std::string_view name, std::uint64_t delta) {
    counter(name) += delta;
  }
  void set(std::string_view name, std::uint64_t value) {
    counter(name) = value;
  }
  std::uint64_t value(std::string_view name) const {
    for (const auto& [n, v] : items_) {
      if (n == name) return v;
    }
    return 0;
  }

  /// Returns (registering on first use) the histogram named `name`.  The
  /// reference is stable for the registry's lifetime; clear() invalidates.
  Histogram& histogram(std::string_view name) {
    for (auto& h : hists_) {
      if (h.name == name) return h.hist;
    }
    hists_.emplace_back(std::string(name));
    return hists_.back().hist;
  }
  const Histogram* find_histogram(std::string_view name) const {
    for (const auto& h : hists_) {
      if (h.name == name) return &h.hist;
    }
    return nullptr;
  }

  /// Drops all plain counters and zeroes histograms *in place*:
  /// registrations (and therefore Histogram& handles cached by emission
  /// sites) stay valid across clear(), mirroring how lane names persist on
  /// Tracer::clear().
  void clear() {
    items_.clear();
    for (auto& h : hists_) h.hist.clear();
  }
  std::size_t size() const { return items_.size(); }
  std::size_t histogram_count() const { return hists_.size(); }

  template <class F>
  void for_each(F&& f) const {
    for (const auto& [n, v] : items_) f(n, v);
  }

  /// Visits histograms in registration order: f(name, histogram).
  template <class F>
  void for_each_histogram(F&& f) const {
    for (const auto& h : hists_) f(h.name, h.hist);
  }

 private:
  struct NamedHist {
    explicit NamedHist(std::string n) : name(std::move(n)) {}
    std::string name;
    Histogram hist;
  };

  std::vector<std::pair<std::string, std::uint64_t>> items_;
  // deque: Histogram is non-movable (atomics) and handed out by reference.
  std::deque<NamedHist> hists_;
};

/// The per-run trace collector: one ring per producer (sim layers use ring
/// 0; the native pool uses one ring per worker), a clock source, the
/// current-task attribution context, and the counter registry.
///
/// Attach with the owning executor's set_tracer(); nullptr detaches.  The
/// executor keeps ownership of nothing -- the Tracer must outlive the runs
/// it records.
class Tracer {
 public:
  explicit Tracer(std::uint32_t rings = 1,
                  std::size_t capacity = TraceRing::kDefaultCapacity)
      : epoch_(std::chrono::steady_clock::now()) {
    rings_.reserve(rings == 0 ? 1 : rings);
    for (std::uint32_t i = 0; i < (rings == 0 ? 1 : rings); ++i) {
      rings_.emplace_back(capacity);
    }
  }

  // ---- Clock --------------------------------------------------------------

  /// Points the clock at a monotone logical counter (the sim executor's
  /// work counter) for deterministic timestamps; nullptr reverts to
  /// steady_clock nanoseconds since construction.
  void set_logical_clock(const std::uint64_t* counter) { clock_ = counter; }

  std::uint64_t now() const {
    if (clock_ != nullptr) return *clock_;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  // ---- Attribution context (simulated layers) -----------------------------

  /// Current task + anchor, stamped onto kMiss / kPingPong events so cache
  /// traffic is attributable to the scheduling decision that caused it.
  void set_task(std::uint64_t task_id, std::uint32_t anchor_level,
                std::uint32_t anchor_idx) {
    task_id_ = task_id;
    anchor_level_ = anchor_level;
    anchor_idx_ = anchor_idx;
  }
  std::uint64_t current_task() const { return task_id_; }
  std::uint32_t current_anchor_level() const { return anchor_level_; }
  std::uint32_t current_anchor_index() const { return anchor_idx_; }

  // ---- Emission -----------------------------------------------------------

  /// Suppresses event recording while keeping the tracer attached (counters
  /// and histograms still accumulate).  This is the "metrics-only" mode the
  /// `bench_wallclock --hist-off-check` guardrail measures: histogram sites
  /// fire, ring traffic does not.
  void set_events_enabled(bool enabled) { events_enabled_ = enabled; }
  bool events_enabled() const { return events_enabled_; }

  /// Appends an event to `ring` (must be owned by the calling thread).
  void emit(std::uint32_t ring, EventKind kind, std::uint8_t detail,
            std::uint32_t tid, std::uint64_t a, std::uint64_t b,
            std::uint64_t c) {
    if (!events_enabled_) return;
    Event e;
    e.ts = now();
    e.a = a;
    e.b = b;
    e.c = c;
    e.tid = tid;
    e.kind = kind;
    e.detail = detail;
    rings_[ring].push(e);
  }

  /// Cache-layer convenience: stamps the current task id into `c`.
  void emit_attributed(EventKind kind, std::uint8_t detail, std::uint32_t tid,
                       std::uint64_t a, std::uint64_t b) {
    emit(0, kind, detail, tid, a, b, task_id_);
  }

  /// Deferred-emission entry point (hm/psim.hpp): appends a fully-formed
  /// event -- timestamp and attribution already stamped at capture time --
  /// so replay that happens after the fact can reproduce the exact stream
  /// a live emitter would have produced.
  void emit_prestamped(std::uint32_t ring, const Event& e) {
    if (!events_enabled_) return;
    rings_[ring].push(e);
  }

  // ---- Export lanes -------------------------------------------------------

  /// Registers a human-readable name for an export lane (Chrome tid); the
  /// exporter writes them as thread_name metadata events.
  void name_lane(std::uint32_t tid, std::string name) {
    for (auto& [t, n] : lane_names_) {
      if (t == tid) {
        n = std::move(name);
        return;
      }
    }
    lane_names_.emplace_back(tid, std::move(name));
  }

  // ---- Access -------------------------------------------------------------

  std::uint32_t ring_count() const {
    return static_cast<std::uint32_t>(rings_.size());
  }
  const TraceRing& ring(std::uint32_t i) const { return rings_[i]; }
  TraceRing& ring(std::uint32_t i) { return rings_[i]; }

  CounterRegistry& counters() { return counters_; }
  const CounterRegistry& counters() const { return counters_; }

  const std::vector<std::pair<std::uint32_t, std::string>>& lane_names()
      const {
    return lane_names_;
  }

  /// Total events ever pushed / overwritten across all rings.
  std::uint64_t events_pushed() const {
    std::uint64_t n = 0;
    for (const auto& r : rings_) n += r.pushed();
    return n;
  }
  std::uint64_t events_dropped() const {
    std::uint64_t n = 0;
    for (const auto& r : rings_) n += r.dropped();
    return n;
  }

  /// Empties every ring and the counter registry (lane names persist).
  void clear() {
    for (auto& r : rings_) r.clear();
    counters_.clear();
  }

 private:
  std::vector<TraceRing> rings_;
  CounterRegistry counters_;
  std::vector<std::pair<std::uint32_t, std::string>> lane_names_;
  const std::uint64_t* clock_ = nullptr;
  std::chrono::steady_clock::time_point epoch_;
  std::uint64_t task_id_ = 0;
  std::uint32_t anchor_level_ = 0;
  std::uint32_t anchor_idx_ = 0;
  bool events_enabled_ = true;
};

/// Export-lane (Chrome tid) convention shared by the emitters: cores use
/// their own index (0..63); the cache at (level, idx) uses 100*level + idx
/// (idx < 64 < 100, so lanes never collide); NO superstep events use
/// kSuperstepLane.
inline constexpr std::uint32_t cache_lane(std::uint32_t level,
                                          std::uint32_t idx) {
  return 100 * level + idx;
}
inline constexpr std::uint32_t kSuperstepLane = 90;
inline constexpr std::uint32_t kPsimEpochLane = 91;
inline constexpr std::uint32_t kServeLane = 92;

/// Serializes the tracer's events as Chrome trace_event JSON (the "JSON
/// array format" chrome://tracing and Perfetto load).  Deterministic: ring
/// order, then event order within each ring; integers only.
std::string chrome_trace_json(const Tracer& tracer);

/// Writes chrome_trace_json() to `path`; returns false (and warns on
/// stderr) on I/O failure.  If any ring overwrote events (flight-recorder
/// drops) a warning naming the per-ring counts goes to stderr -- the
/// exported stream is truncated and span analysis will refuse it.
bool write_chrome_trace(const std::string& path, const Tracer& tracer);

/// Resolves the shared trace-output convention used by every bench binary,
/// examples/quickstart, and the obliv-trace CLI: an explicit
/// `--trace-out=<path>` argument wins, else the OBLIV_TRACE_OUT environment
/// variable, else `fallback` (empty = tracing stays off).  Lives here
/// rather than bench/common.hpp so non-bench binaries resolve the flag
/// identically.
std::string resolve_trace_out(int argc, char** argv,
                              std::string_view fallback = {});

/// Human-readable names used by the exporter (and tests).
std::string_view event_name(EventKind kind);
std::string_view anchor_reason_name(AnchorReason reason);
std::string_view hint_name(std::uint8_t hint);

}  // namespace obliv::obs
