// Fixed-bucket log-scale histogram counters (obs subsystem).
//
// The registry's plain counters answer "how many / how much total"; the
// serving-layer questions ("what does a p99 steal look like?  how skewed
// are task grains?") need distributions.  Histogram is built for the same
// constraints as the rest of obs:
//
//   * Deterministic on the simulated layers: buckets are fixed powers of
//     two, recording and quantile extraction are integer-only, so two runs
//     of the same workload produce byte-identical exports.
//   * Cheap and thread-safe on the native layer: record() is a relaxed
//     atomic increment per field (no locks, no allocation), so per-worker
//     emission sites (steal latencies, forked loop grains) can share one
//     histogram without synchronizing.  Relaxed ordering is enough because
//     readers (the exporter, the report) run after the workload quiesced.
//
// Bucket b holds values v with std::bit_width(v) == b, i.e. bucket 0 is
// exactly {0} and bucket b >= 1 covers [2^(b-1), 2^b - 1].  Quantiles are
// *upper bounds*: percentile(p) returns the smallest bucket upper edge at
// or below which at least ceil(p% * count) recorded values fall, clamped
// to the exact observed min/max.  That makes p50/p90/p99 conservative
// (never under-reported) and, being pure integer arithmetic, goldenable.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>

namespace obliv::obs {

class Histogram {
 public:
  /// 65 buckets: bit_width of a uint64_t is 0..64.
  static constexpr std::uint32_t kBuckets = 65;

  Histogram() = default;

  // Relaxed-atomic fields are not copyable; the registry stores histograms
  // in a deque and hands out stable references instead.
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  static constexpr std::uint32_t bucket_of(std::uint64_t v) {
    return static_cast<std::uint32_t>(std::bit_width(v));
  }

  /// Lower/upper value edges of bucket `b` (inclusive).
  static constexpr std::uint64_t bucket_lo(std::uint32_t b) {
    return b == 0 ? 0 : std::uint64_t(1) << (b - 1);
  }
  static constexpr std::uint64_t bucket_hi(std::uint32_t b) {
    return b == 0 ? 0
           : b >= 64 ? ~std::uint64_t(0)
                     : (std::uint64_t(1) << b) - 1;
  }

  void record(std::uint64_t v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    update_min(v);
    update_max(v);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min() const {
    const std::uint64_t m = min_.load(std::memory_order_relaxed);
    return count() == 0 ? 0 : m;
  }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::uint32_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Mean rounded down (integer-only, so exports stay deterministic).
  std::uint64_t mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0 : sum() / n;
  }

  /// Deterministic quantile upper bound: the smallest bucket upper edge
  /// such that at least ceil(pct% of count) values are <= it, clamped to
  /// [min, max].  pct in [0, 100].
  std::uint64_t percentile(std::uint32_t pct) const {
    const std::uint64_t n = count();
    if (n == 0) return 0;
    const std::uint64_t rank =
        std::max<std::uint64_t>(1, (n * pct + 99) / 100);
    std::uint64_t cum = 0;
    for (std::uint32_t b = 0; b < kBuckets; ++b) {
      cum += bucket(b);
      if (cum >= rank) {
        return std::clamp(bucket_hi(b), min(), max());
      }
    }
    return max();
  }

  void clear() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(~std::uint64_t(0), std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void update_min(std::uint64_t v) {
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void update_max(std::uint64_t v) {
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t(0)};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace obliv::obs
