#include "obs/analysis.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <unordered_map>

namespace obliv::obs {

namespace {

void append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

// ---------------------------------------------------------------------------
// Chrome JSON parsing (the exporter's own format: one event per line)
// ---------------------------------------------------------------------------

/// Finds `"key":<uint>` inside `obj` and parses the integer; returns
/// `fallback` when the key is absent.
std::uint64_t field_u64(std::string_view obj, std::string_view key,
                        std::uint64_t fallback = 0) {
  std::string pat = "\"" + std::string(key) + "\":";
  const std::size_t at = obj.find(pat);
  if (at == std::string_view::npos) return fallback;
  std::size_t i = at + pat.size();
  std::uint64_t v = 0;
  bool any = false;
  while (i < obj.size() && obj[i] >= '0' && obj[i] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(obj[i] - '0');
    ++i;
    any = true;
  }
  return any ? v : fallback;
}

/// Maps an exported event name (kind name plus optional ".<detail>" suffix)
/// back to its EventKind; false when the name is not one of ours.
bool kind_of_name(std::string_view name, EventKind& kind) {
  static constexpr EventKind kAll[] = {
      EventKind::kTaskSpawn, EventKind::kTaskSteal, EventKind::kTaskComplete,
      EventKind::kHintDispatch, EventKind::kAnchor, EventKind::kTaskBegin,
      EventKind::kTaskEnd, EventKind::kMiss, EventKind::kPingPong,
      EventKind::kSuperstep, EventKind::kEpoch, EventKind::kJobAdmit,
      EventKind::kJobBegin, EventKind::kJobEnd};
  for (EventKind k : kAll) {
    const std::string_view base = event_name(k);
    if (name == base ||
        (name.size() > base.size() && name.substr(0, base.size()) == base &&
         name[base.size()] == '.')) {
      kind = k;
      return true;
    }
  }
  return false;
}

}  // namespace

Result<TraceData> parse_chrome_trace(std::string_view json) {
  if (json.find("\"traceEvents\"") == std::string_view::npos) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "not a chrome trace: no traceEvents key");
  }
  TraceData data;
  std::size_t pos = 0;
  while (pos < json.size()) {
    std::size_t eol = json.find('\n', pos);
    if (eol == std::string_view::npos) eol = json.size();
    const std::string_view line = json.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.find("\"ph\":\"i\"") == std::string_view::npos) continue;
    constexpr std::string_view kName = "{\"name\":\"";
    const std::size_t ns = line.find(kName);
    if (ns == std::string_view::npos) continue;
    const std::size_t ne = line.find('"', ns + kName.size());
    if (ne == std::string_view::npos) continue;
    const std::string_view name = line.substr(ns + kName.size(),
                                              ne - ns - kName.size());
    EventKind kind;
    if (!kind_of_name(name, kind)) continue;
    Event e;
    e.kind = kind;
    e.tid = static_cast<std::uint32_t>(field_u64(line, "tid"));
    e.ts = field_u64(line, "ts");
    e.a = field_u64(line, "a");
    e.b = field_u64(line, "b");
    e.c = field_u64(line, "c");
    e.detail = static_cast<std::uint8_t>(field_u64(line, "detail"));
    data.events.push_back(e);
  }
  const std::size_t other = json.rfind("\"otherData\":");
  if (other == std::string_view::npos) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "not a chrome trace: no otherData block");
  }
  const std::string_view tail = json.substr(other);
  data.dropped_events = field_u64(tail, "dropped_events");
  // Per-ring stats (absent in traces exported before they existed).
  std::size_t rpos = tail.find("\"rings\":[");
  if (rpos != std::string_view::npos) {
    rpos += 9;
    while (rpos < tail.size() && tail[rpos] == '{') {
      std::size_t rend = tail.find('}', rpos);
      if (rend == std::string_view::npos) break;
      const std::string_view obj = tail.substr(rpos, rend - rpos + 1);
      data.rings.push_back(
          RingStat{field_u64(obj, "pushed"), field_u64(obj, "dropped")});
      rpos = rend + 1;
      if (rpos < tail.size() && tail[rpos] == ',') ++rpos;
    }
  }
  return data;
}

TraceData capture_trace(const Tracer& tracer) {
  TraceData data;
  for (std::uint32_t r = 0; r < tracer.ring_count(); ++r) {
    tracer.ring(r).for_each(
        [&](const Event& e) { data.events.push_back(e); });
    data.rings.push_back(
        RingStat{tracer.ring(r).pushed(), tracer.ring(r).dropped()});
  }
  data.dropped_events = tracer.events_dropped();
  return data;
}

// ---------------------------------------------------------------------------
// DAG reconstruction + span recomputation
// ---------------------------------------------------------------------------

namespace {

struct PendingAnchor {
  std::uint8_t reason = 0;
  std::uint32_t level = 0;
  std::uint32_t idx = 0;
  std::uint64_t space_words = 0;
};

/// Builder state for one run (root task begin .. root task end).
struct RunBuilder {
  std::vector<TaskStats> tasks;
  std::vector<std::uint64_t> child_incl;  ///< per task: sum children work_incl
  std::vector<std::uint64_t> stack;       ///< open task ids
  std::vector<std::uint64_t> finish_order;
  std::unordered_map<std::uint64_t, PendingAnchor> pending_anchor;
  std::uint32_t levels = 0;

  TaskStats& task(std::uint64_t id) { return tasks[id]; }

  void ensure_level(TaskStats& t, std::uint32_t level) {
    if (t.misses.size() < level) {
      t.misses.resize(level, 0);
      t.evictions.resize(level, 0);
    }
    levels = std::max(levels, level);
  }
};

/// Recomputes one finished task's span under both weightings, applying the
/// executor's per-construct composition rules to the (already finalized)
/// children.
void compute_task_span(RunBuilder& b, TaskStats& t,
                       const std::vector<std::uint64_t>& weights) {
  std::uint64_t excl_mem = t.work_excl;
  for (std::size_t l = 0; l < t.misses.size() && l < weights.size(); ++l) {
    excl_mem += weights[l] * t.misses[l];
  }
  t.span = t.work_excl;
  t.span_mem = excl_mem;
  if (t.children.empty()) return;

  // Children are in creation order; construct k owns those with id in
  // [constructs[k].first_child, constructs[k+1].first_child).
  std::size_t ci = 0;
  for (std::size_t k = 0; k < t.constructs.size(); ++k) {
    const std::uint64_t next_fc = (k + 1 < t.constructs.size())
                                      ? t.constructs[k + 1].first_child
                                      : ~std::uint64_t(0);
    const std::uint8_t hint = t.constructs[k].hint;
    std::uint64_t contrib = 0, contrib_mem = 0;
    // SB / CGC=>SB: tasks assigned to the same anchor cache queue behind
    // each other -- sum spans per anchor key, take the max across keys.
    // CGC: every segment starts at the construct's span base (even when
    // segments share a core) -- plain max over children.
    std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> keyed;
    while (ci < t.children.size() && t.children[ci] < next_fc) {
      const TaskStats& c = b.task(t.children[ci]);
      if (hint == 0) {  // CGC
        contrib = std::max(contrib, c.span);
        contrib_mem = std::max(contrib_mem, c.span_mem);
      } else {  // SB or CGC=>SB
        const std::uint64_t key =
            c.has_anchor ? ((std::uint64_t(c.anchor_level) << 32) |
                            c.anchor_idx)
                         : (~std::uint64_t(0) - c.id);  // unkeyed: own lane
        auto& acc = keyed[key];
        acc.first += c.span;
        acc.second += c.span_mem;
      }
      ++ci;
    }
    for (const auto& [key, acc] : keyed) {
      contrib = std::max(contrib, acc.first);
      contrib_mem = std::max(contrib_mem, acc.second);
    }
    t.span += contrib;
    t.span_mem += contrib_mem;
  }
  // Children outside any construct would mean a hint event was lost; the
  // drop gate makes that impossible, but account them sequentially rather
  // than silently under-counting the critical path.
  for (; ci < t.children.size(); ++ci) {
    t.span += b.task(t.children[ci]).span;
    t.span_mem += b.task(t.children[ci]).span_mem;
  }
}

RunAnalysis finalize_run(RunBuilder& b, const AnalysisOptions& opts) {
  RunAnalysis run;
  run.levels = b.levels;
  run.miss_weights = opts.miss_weights;
  if (run.miss_weights.empty()) {
    std::uint64_t w = 4;  // weight_l = 4^l synthetic cost model
    for (std::uint32_t l = 1; l <= b.levels; ++l, w *= 4) {
      run.miss_weights.push_back(w);
    }
  }
  // Children finish before their parents, so finish order is a valid
  // bottom-up evaluation order for the span recurrences.
  for (std::uint64_t id : b.finish_order) {
    compute_task_span(b, b.task(id), run.miss_weights);
  }

  run.tasks = std::move(b.tasks);
  const TaskStats& root = run.tasks[0];
  run.work = root.work_incl;
  run.span = root.span;
  run.recorded_span = root.recorded_span;
  run.mem_span = root.span_mem;

  run.total_misses.assign(run.levels, 0);
  run.total_evictions.assign(run.levels, 0);
  run.rollup_reason.assign(RunAnalysis::kReasonCount, {});
  for (auto& row : run.rollup_reason) row.assign(run.levels, {});
  for (const TaskStats& t : run.tasks) {
    run.max_depth = std::max(run.max_depth, t.depth);
    if (t.span != t.recorded_span) ++run.span_mismatches;
    if (t.depth >= run.rollup_depth.size()) {
      run.rollup_depth.resize(t.depth + 1);
    }
    auto& drow = run.rollup_depth[t.depth];
    if (drow.size() < run.levels) drow.resize(run.levels);
    const std::uint32_t reason =
        t.has_anchor ? t.anchor_reason : RunAnalysis::kReasonRoot;
    auto& rrow = run.rollup_reason[std::min<std::uint32_t>(
        reason, RunAnalysis::kReasonCount - 1)];
    for (std::size_t l = 0; l < run.levels; ++l) {
      const std::uint64_t m = l < t.misses.size() ? t.misses[l] : 0;
      const std::uint64_t e = l < t.evictions.size() ? t.evictions[l] : 0;
      run.total_misses[l] += m;
      run.total_evictions[l] += e;
      drow[l].misses += m;
      drow[l].evictions += e;
      ++drow[l].tasks;
      rrow[l].misses += m;
      rrow[l].evictions += e;
      ++rrow[l].tasks;
    }
    if (run.levels == 0) {
      // Still count tasks in the depth rollup when no cache events exist.
      if (drow.empty()) drow.resize(1);
      ++drow[0].tasks;
    }
  }
  run.span_matches_recorded = run.span_mismatches == 0;

  run.mem_work = run.work;
  for (std::size_t l = 0; l < run.levels; ++l) {
    run.mem_work += run.miss_weights[l] * run.total_misses[l];
  }
  auto ratio = [](std::uint64_t w, std::uint64_t s) {
    if (s == 0) return w == 0 ? 1.0 : static_cast<double>(w);
    return static_cast<double>(w) / static_cast<double>(s);
  };
  run.parallelism = ratio(run.work, run.span);
  run.mem_parallelism = ratio(run.mem_work, run.mem_span);

  for (std::uint32_t p : opts.speedup_p) {
    if (p == 0) continue;
    SpeedupRow row;
    row.p = p;
    const double w = static_cast<double>(run.work);
    const double wm = static_cast<double>(run.mem_work);
    const double tp = w / p + static_cast<double>(run.span);
    const double tpm = wm / p + static_cast<double>(run.mem_span);
    row.predicted_speedup = tp > 0 ? w / tp : 1.0;
    row.predicted_speedup_mem = tpm > 0 ? wm / tpm : 1.0;
    run.speedups.push_back(row);
  }
  return run;
}

}  // namespace

Result<std::vector<RunAnalysis>> analyze(const TraceData& trace,
                                         const AnalysisOptions& opts) {
  std::uint64_t dropped = trace.dropped_events;
  for (const RingStat& r : trace.rings) {
    if (trace.dropped_events == 0) dropped += r.dropped;
  }
  if (dropped > 0) {
    return Status::error(
        ErrorCode::kInvalidArgument,
        "trace is truncated (flight-recorder rings dropped " +
            std::to_string(dropped) +
            " events); span analysis needs a complete stream -- enlarge the "
            "ring (Tracer capacity) and re-record");
  }

  std::vector<RunAnalysis> runs;
  RunBuilder b;
  for (const Event& e : trace.events) {
    switch (e.kind) {
      case EventKind::kTaskBegin: {
        if (b.stack.empty()) {
          if (e.a != 0) {
            return Status::error(ErrorCode::kInvalidArgument,
                                 "broken nesting: first task of a run has "
                                 "id " + std::to_string(e.a));
          }
          b = RunBuilder{};
        }
        const std::uint64_t id = e.a;
        if (id != b.tasks.size()) {
          return Status::error(ErrorCode::kInvalidArgument,
                               "non-dense task id " + std::to_string(id));
        }
        TaskStats t;
        t.id = id;
        t.parent = e.c;
        t.level = static_cast<std::uint32_t>(e.b);
        t.depth = static_cast<std::uint32_t>(b.stack.size());
        t.begin_ts = e.ts;
        if (auto it = b.pending_anchor.find(id);
            it != b.pending_anchor.end()) {
          t.has_anchor = true;
          t.anchor_reason = it->second.reason;
          t.anchor_level = it->second.level;
          t.anchor_idx = it->second.idx;
          t.space_words = it->second.space_words;
          b.pending_anchor.erase(it);
        }
        if (!b.stack.empty()) {
          b.task(b.stack.back()).children.push_back(id);
        }
        b.tasks.push_back(std::move(t));
        b.child_incl.push_back(0);
        b.stack.push_back(id);
        break;
      }
      case EventKind::kTaskEnd: {
        if (b.stack.empty() || b.stack.back() != e.a) {
          return Status::error(ErrorCode::kInvalidArgument,
                               "broken nesting: end of task " +
                                   std::to_string(e.a) +
                                   " does not match the open task");
        }
        TaskStats& t = b.task(e.a);
        t.end_ts = e.ts;
        t.recorded_span = e.b;
        t.work_incl = t.end_ts - t.begin_ts;
        t.work_excl = t.work_incl - b.child_incl[t.id];
        b.finish_order.push_back(t.id);
        b.stack.pop_back();
        if (!b.stack.empty()) {
          b.child_incl[b.stack.back()] += t.work_incl;
        } else {
          runs.push_back(finalize_run(b, opts));
          b = RunBuilder{};
        }
        break;
      }
      case EventKind::kHintDispatch: {
        if (!b.stack.empty()) {
          b.task(b.stack.back())
              .constructs.push_back(
                  TaskStats::Construct{e.detail, e.a, e.c});
        }
        break;
      }
      case EventKind::kAnchor: {
        PendingAnchor pa;
        pa.reason = e.detail;
        pa.level = static_cast<std::uint32_t>(e.b);
        pa.idx = e.tid - 100 * pa.level;  // inverse of cache_lane()
        pa.space_words = e.a;
        b.pending_anchor[e.c] = pa;
        break;
      }
      case EventKind::kMiss: {
        if (e.c < b.tasks.size() && e.detail >= 1) {
          TaskStats& t = b.task(e.c);
          b.ensure_level(t, e.detail);
          ++t.misses[e.detail - 1];
          if (e.b != kNoEviction) ++t.evictions[e.detail - 1];
        }
        break;
      }
      case EventKind::kPingPong: {
        if (e.c < b.tasks.size()) ++b.task(e.c).pingpongs;
        break;
      }
      default:
        // Native-layer and NO/psim events carry no DAG structure.
        break;
    }
  }
  if (!b.stack.empty()) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "trace ends with " + std::to_string(b.stack.size()) +
                             " unfinished tasks (partial run)");
  }
  if (runs.empty()) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "trace contains no task begin/end events (was the "
                         "tracer attached to a SimExecutor?)");
  }
  return runs;
}

Result<std::vector<RunAnalysis>> analyze_tracer(const Tracer& tracer,
                                                const AnalysisOptions& opts) {
  return analyze(capture_trace(tracer), opts);
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

std::string render_report(const RunAnalysis& run, std::string_view title) {
  std::string out;
  append(out, "== span report: %.*s ==\n", static_cast<int>(title.size()),
         title.data());
  append(out, "tasks %zu  max depth %u  cache levels %u\n", run.tasks.size(),
         run.max_depth, run.levels);
  append(out,
         "work %" PRIu64 "  span %" PRIu64 "  parallelism %.3f\n",
         run.work, run.span, run.parallelism);
  if (run.span_matches_recorded) {
    append(out,
           "span check: recomputed == executor-recorded for all %zu tasks\n",
           run.tasks.size());
  } else {
    append(out,
           "span check: MISMATCH on %" PRIu64 " tasks (recomputed %" PRIu64
           " vs recorded %" PRIu64 ")\n",
           run.span_mismatches, run.span, run.recorded_span);
  }
  std::string wdesc;
  for (std::size_t l = 0; l < run.miss_weights.size(); ++l) {
    append(wdesc, "%sL%zu=%" PRIu64, l == 0 ? "" : ",", l + 1,
           run.miss_weights[l]);
  }
  append(out,
         "mem-weighted (miss weights %s): work %" PRIu64 "  span %" PRIu64
         "  parallelism %.3f\n",
         wdesc.empty() ? "none" : wdesc.c_str(), run.mem_work, run.mem_span,
         run.mem_parallelism);
  append(out, "predicted speedup (Brent: T_p = W/p + S):\n");
  append(out, "  %6s  %12s  %12s\n", "p", "work-clock", "mem-weighted");
  for (const SpeedupRow& row : run.speedups) {
    append(out, "  %6u  %12.3f  %12.3f\n", row.p, row.predicted_speedup,
           row.predicted_speedup_mem);
  }

  append(out, "miss attribution by recursion depth:\n");
  append(out, "  %5s  %6s", "depth", "tasks");
  for (std::uint32_t l = 1; l <= run.levels; ++l) {
    append(out, "  L%u.miss  L%u.evict", l, l);
  }
  out += "\n";
  for (std::size_t d = 0; d < run.rollup_depth.size(); ++d) {
    const auto& row = run.rollup_depth[d];
    if (row.empty()) continue;
    append(out, "  %5zu  %6" PRIu64, d, row[0].tasks);
    for (std::size_t l = 0; l < run.levels; ++l) {
      append(out, "  %7" PRIu64 "  %8" PRIu64, row[l].misses,
             row[l].evictions);
    }
    out += "\n";
  }

  for (std::uint32_t l = 1; l <= run.levels; ++l) {
    append(out, "miss attribution at L%u by anchor reason (phase):\n", l);
    for (std::uint32_t r = 0; r < RunAnalysis::kReasonCount; ++r) {
      const auto& row = run.rollup_reason[r];
      if (row.size() < l || row[l - 1].tasks == 0) continue;
      const std::string_view rname =
          r == RunAnalysis::kReasonRoot
              ? std::string_view("root")
              : anchor_reason_name(static_cast<AnchorReason>(r));
      append(out, "  %-20.*s  tasks %6" PRIu64 "  miss %8" PRIu64
                  "  evict %8" PRIu64 "\n",
             static_cast<int>(rname.size()), rname.data(), row[l - 1].tasks,
             row[l - 1].misses, row[l - 1].evictions);
    }
  }
  return out;
}

std::string render_histograms(const CounterRegistry& counters) {
  std::string out;
  counters.for_each_histogram([&](const std::string& n, const Histogram& h) {
    append(out,
           "%s: count=%" PRIu64 " sum=%" PRIu64 " mean=%" PRIu64
           " min=%" PRIu64 " max=%" PRIu64 " p50=%" PRIu64 " p90=%" PRIu64
           " p99=%" PRIu64 "\n",
           n.c_str(), h.count(), h.sum(), h.mean(), h.min(), h.max(),
           h.percentile(50), h.percentile(90), h.percentile(99));
  });
  return out;
}

}  // namespace obliv::obs
