#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

namespace obliv::obs {

std::string_view event_name(EventKind kind) {
  switch (kind) {
    case EventKind::kTaskSpawn: return "task.spawn";
    case EventKind::kTaskSteal: return "task.steal";
    case EventKind::kTaskComplete: return "task.complete";
    case EventKind::kHintDispatch: return "hint.dispatch";
    case EventKind::kAnchor: return "anchor";
    case EventKind::kTaskBegin: return "task.begin";
    case EventKind::kTaskEnd: return "task.end";
    case EventKind::kMiss: return "miss";
    case EventKind::kPingPong: return "pingpong";
    case EventKind::kSuperstep: return "superstep";
    case EventKind::kEpoch: return "psim.epoch";
    case EventKind::kJobAdmit: return "job.admit";
    case EventKind::kJobBegin: return "job.begin";
    case EventKind::kJobEnd: return "job.end";
    case EventKind::kJobCancel: return "job.cancel";
    case EventKind::kJobShed: return "job.shed";
  }
  return "unknown";
}

std::string_view anchor_reason_name(AnchorReason reason) {
  switch (reason) {
    case AnchorReason::kSbFit: return "sb-fit";
    case AnchorReason::kSbQueued: return "sb-queued-at-anchor";
    case AnchorReason::kSlice: return "slice";
    case AnchorReason::kCgcSegment: return "cgc-segment";
    case AnchorReason::kCgcSbSpread: return "cgcsb-spread";
  }
  return "unknown";
}

std::string_view hint_name(std::uint8_t hint) {
  // Mirrors sched::Hint (hints.hpp); taken as a raw byte so obs does not
  // depend on the scheduler headers.
  switch (hint) {
    case 0: return "CGC";
    case 1: return "SB";
    case 2: return "CGC=>SB";
  }
  return "?";
}

namespace {

void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

/// Emits one trace_event JSON object.  All sim events are instants ("i",
/// thread scope); names encode kind + detail so the timeline is readable
/// without expanding args.
void append_event(std::string& out, const Event& e, std::uint32_t pid,
                  bool& first) {
  if (!first) out += ",\n";
  first = false;
  std::string name(event_name(e.kind));
  switch (e.kind) {
    case EventKind::kMiss:
      name += ".L" + std::to_string(e.detail);
      break;
    case EventKind::kAnchor:
      name += ".";
      name += anchor_reason_name(static_cast<AnchorReason>(e.detail));
      break;
    case EventKind::kHintDispatch:
      name += ".";
      name += hint_name(e.detail);
      break;
    default:
      break;
  }
  append(out,
         "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%u,\"tid\":%u,"
         "\"ts\":%" PRIu64 ",\"args\":{\"a\":%" PRIu64 ",\"b\":%" PRIu64
         ",\"c\":%" PRIu64 ",\"detail\":%u}}",
         name.c_str(), pid, e.tid, e.ts, e.a, e.b, e.c, unsigned(e.detail));
}

}  // namespace

std::string chrome_trace_json(const Tracer& tracer) {
  std::string out;
  out.reserve(1 << 16);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  // Lane-name metadata first so viewers label rows before any event lands.
  for (const auto& [tid, name] : tracer.lane_names()) {
    if (!first) out += ",\n";
    first = false;
    append(out,
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%u,"
           "\"args\":{\"name\":\"%s\"}}",
           tid, name.c_str());
  }
  // Events: ring-major, oldest retained first -- a deterministic order for
  // deterministic producers (the sim layers write only ring 0).
  for (std::uint32_t r = 0; r < tracer.ring_count(); ++r) {
    tracer.ring(r).for_each(
        [&](const Event& e) { append_event(out, e, /*pid=*/0, first); });
  }
  // Counters as one batch of Chrome counter samples at the final timestamp
  // (registry order; values are end-of-run aggregates).
  std::uint64_t ts_end = 0;
  for (std::uint32_t r = 0; r < tracer.ring_count(); ++r) {
    tracer.ring(r).for_each(
        [&](const Event& e) { ts_end = std::max(ts_end, e.ts); });
  }
  tracer.counters().for_each([&](const std::string& n, std::uint64_t v) {
    if (!first) out += ",\n";
    first = false;
    append(out,
           "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":%" PRIu64
           ",\"args\":{\"value\":%" PRIu64 "}}",
           n.c_str(), ts_end, v);
  });
  // Histograms as multi-series counter samples: Chrome/Perfetto plot each
  // arg key as its own series under the histogram's name.
  tracer.counters().for_each_histogram(
      [&](const std::string& n, const Histogram& h) {
        if (!first) out += ",\n";
        first = false;
        append(out,
               "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":%"
               PRIu64 ",\"args\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
               ",\"min\":%" PRIu64 ",\"max\":%" PRIu64 ",\"p50\":%" PRIu64
               ",\"p90\":%" PRIu64 ",\"p99\":%" PRIu64 "}}",
               n.c_str(), ts_end, h.count(), h.sum(), h.min(), h.max(),
               h.percentile(50), h.percentile(90), h.percentile(99));
      });
  // otherData keeps the aggregate drop count first (older tooling keys on
  // it), then per-ring pushed/dropped so a truncated stream is diagnosable
  // per producer and machine-checkable by the analyzer.
  append(out, "\n],\"otherData\":{\"dropped_events\":%" PRIu64 ",\"rings\":[",
         tracer.events_dropped());
  for (std::uint32_t r = 0; r < tracer.ring_count(); ++r) {
    append(out, "%s{\"pushed\":%" PRIu64 ",\"dropped\":%" PRIu64 "}",
           r == 0 ? "" : ",", tracer.ring(r).pushed(),
           tracer.ring(r).dropped());
  }
  out += "]}}\n";
  return out;
}

bool write_chrome_trace(const std::string& path, const Tracer& tracer) {
  if (tracer.events_dropped() > 0) {
    std::cerr << "obs: warning: trace is truncated -- flight-recorder rings "
                 "overwrote "
              << tracer.events_dropped() << " events (";
    for (std::uint32_t r = 0; r < tracer.ring_count(); ++r) {
      if (tracer.ring(r).dropped() == 0) continue;
      std::cerr << "ring " << r << ": " << tracer.ring(r).dropped() << "/"
                << tracer.ring(r).pushed() << " ";
    }
    std::cerr << "); span analysis will refuse this trace\n";
  }
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    std::cerr << "obs: cannot write trace to " << path << "\n";
    return false;
  }
  const std::string json = chrome_trace_json(tracer);
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(f);
}

std::string resolve_trace_out(int argc, char** argv,
                              std::string_view fallback) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    constexpr std::string_view kFlag = "--trace-out=";
    if (arg.substr(0, kFlag.size()) == kFlag) {
      return std::string(arg.substr(kFlag.size()));
    }
  }
  if (const char* env = std::getenv("OBLIV_TRACE_OUT");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  return std::string(fallback);
}

}  // namespace obliv::obs
