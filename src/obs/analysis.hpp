// Trace analytics: work/span profiling over the recorded task DAG.
//
// PR 4's tracer records every scheduling decision the SimExecutor makes --
// task begin/end with parent ids, hint dispatches, anchoring decisions, and
// per-level misses attributed to the task that caused them.  This module
// consumes that stream and turns it into decision-grade numbers:
//
//   * per-task and total **work** (inclusive/exclusive, from the logical
//     work-clock timestamps; DFS nesting is exact because the simulating
//     executor is single-threaded),
//   * **span** (critical path) recomputed bottom-up from the DAG by
//     replaying the executor's composition rules per scheduling construct
//     (CGC: children start together, group span = max; SB and CGC=>SB:
//     tasks mapped to the same anchor cache queue behind each other, so
//     span sums per anchor and maxes across anchors; sb_seq chains), which
//     is cross-checked against the span the executor recorded,
//   * a second, **miss-weighted span**: each task's exclusive cost is
//     work + sum_l weight_l * misses_l(task), making the critical path
//     sensitive to where in the hierarchy each phase's misses land,
//   * **parallelism = work / span** and Brent-bound predicted speedups
//     T_p = W/p + S for p in {1, 2, 4, ..., 64} -- the 1-core container's
//     substitute for measured scaling curves (ROADMAP caveat), and
//   * per-recursion-depth and per-anchor-reason (algorithm phase) rollups
//     of the miss/eviction attribution, one table per cache level.
//
// Input is either a live Tracer or a trace exported by chrome_trace_json()
// (the CLI ingests the latter).  A trace whose flight-recorder rings
// overwrote events is *refused*: a truncated stream breaks the begin/end
// nesting and would silently produce a wrong span.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fault/status.hpp"
#include "obs/trace.hpp"

namespace obliv::obs {

// ---------------------------------------------------------------------------
// Parsed trace container
// ---------------------------------------------------------------------------

/// Per-ring flight-recorder stats carried in the trace's otherData.
struct RingStat {
  std::uint64_t pushed = 0;
  std::uint64_t dropped = 0;
};

/// A trace re-materialized from its Chrome JSON export (or captured live):
/// typed events in stream order plus the drop accounting the analyzer
/// gates on.
struct TraceData {
  std::vector<Event> events;
  std::vector<RingStat> rings;
  std::uint64_t dropped_events = 0;
};

/// Parses the Chrome trace_event JSON produced by chrome_trace_json().
/// Only instant events ("ph":"i") become Events; metadata and counter
/// samples are skipped.  kInvalidArgument on malformed input.
Result<TraceData> parse_chrome_trace(std::string_view json);

/// Snapshot of a live tracer in the same container (ring-major order,
/// matching the exporter).
TraceData capture_trace(const Tracer& tracer);

// ---------------------------------------------------------------------------
// Analysis results
// ---------------------------------------------------------------------------

struct AnalysisOptions {
  /// Per-level miss weight for the memory-weighted span; index level-1.
  /// Empty selects the default synthetic cost model weight_l = 4^l (each
  /// level is 4x as far as the previous one), sized to the deepest level
  /// observed in the trace.
  std::vector<std::uint64_t> miss_weights;
  /// Processor counts for the Brent-bound speedup table.
  std::vector<std::uint32_t> speedup_p = {1, 2, 4, 8, 16, 32, 64};
};

/// One reconstructed task (node of the DAG).  Ids are dense: the root of a
/// run is 0 and children number upward in creation order.
struct TaskStats {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint32_t level = 0;        ///< anchor level (kTaskBegin.b)
  std::uint32_t depth = 0;        ///< root = 0
  std::uint64_t begin_ts = 0, end_ts = 0;
  std::uint64_t work_incl = 0;    ///< end_ts - begin_ts
  std::uint64_t work_excl = 0;    ///< work_incl minus children's inclusive
  std::uint64_t recorded_span = 0;  ///< executor's kTaskEnd.b
  std::uint64_t span = 0;           ///< recomputed (work-clock weights)
  std::uint64_t span_mem = 0;       ///< recomputed, miss-weighted
  /// Anchor decision that created this task (root: has_anchor = false).
  bool has_anchor = false;
  std::uint8_t anchor_reason = 0;   ///< AnchorReason
  std::uint32_t anchor_level = 0;
  std::uint32_t anchor_idx = 0;
  std::uint64_t space_words = 0;
  std::uint64_t pingpongs = 0;
  std::vector<std::uint64_t> misses;     ///< per level, exclusive
  std::vector<std::uint64_t> evictions;  ///< per level, exclusive
  std::vector<std::uint64_t> children;   ///< ids, creation order
  /// Scheduling constructs this task dispatched, in order: children with
  /// id in [first_child, next construct's first_child) belong to it.
  struct Construct {
    std::uint8_t hint = 0;          ///< sched::Hint as raw byte
    std::uint64_t arg = 0;          ///< range length / task count
    std::uint64_t first_child = 0;  ///< id of the construct's first task
  };
  std::vector<Construct> constructs;
};

/// Rollup row: miss/eviction totals for one (cache level, key) cell.
struct AttributionCell {
  std::uint64_t tasks = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

/// One Brent-bound prediction row.
struct SpeedupRow {
  std::uint32_t p = 0;
  double predicted_speedup = 0;      ///< W / (W/p + S), work-clock span
  double predicted_speedup_mem = 0;  ///< same with miss-weighted W and S
};

/// Full analysis of one executor run (one root task).
struct RunAnalysis {
  std::uint64_t work = 0;          ///< total work (root inclusive)
  std::uint64_t span = 0;          ///< recomputed critical path
  std::uint64_t recorded_span = 0; ///< executor's own span (root kTaskEnd.b)
  std::uint64_t mem_work = 0;      ///< work + sum_l w_l * total misses_l
  std::uint64_t mem_span = 0;      ///< miss-weighted critical path
  double parallelism = 0;          ///< work / span
  double mem_parallelism = 0;      ///< mem_work / mem_span
  /// Recomputed per-task spans equal to the executor's recorded spans for
  /// every task (the analyzer's composition rules reproduce the scheduler
  /// exactly).  A false here is a bug in one of the two.
  bool span_matches_recorded = false;
  std::uint64_t span_mismatches = 0;
  std::uint32_t levels = 0;        ///< deepest cache level seen in misses
  std::uint32_t max_depth = 0;
  std::vector<std::uint64_t> miss_weights;        ///< weights used, per level
  std::vector<std::uint64_t> total_misses;        ///< per level
  std::vector<std::uint64_t> total_evictions;     ///< per level
  std::vector<TaskStats> tasks;                   ///< indexed by id
  std::vector<SpeedupRow> speedups;
  /// rollup_depth[d][l-1]: attribution for tasks at recursion depth d.
  std::vector<std::vector<AttributionCell>> rollup_depth;
  /// rollup_reason[r][l-1]: attribution keyed by AnchorReason r (the
  /// algorithm phase that anchored the task); index kReasonRoot = root.
  static constexpr std::uint32_t kReasonRoot = 5;
  static constexpr std::uint32_t kReasonCount = 6;
  std::vector<std::vector<AttributionCell>> rollup_reason;
};

/// Reconstructs the task DAG and computes every RunAnalysis in the trace
/// (one per root task; benches often run several workloads through one
/// tracer).  Refuses with kInvalidArgument if the trace dropped events or
/// if begin/end nesting is broken.
Result<std::vector<RunAnalysis>> analyze(const TraceData& trace,
                                         const AnalysisOptions& opts = {});

/// Convenience: capture + analyze a live tracer.
Result<std::vector<RunAnalysis>> analyze_tracer(const Tracer& tracer,
                                                const AnalysisOptions& opts =
                                                    {});

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

/// Renders one run's report as deterministic plain text: totals,
/// parallelism, the Brent speedup table, and the per-depth /
/// per-anchor-reason miss attribution tables.  `title` heads the report.
std::string render_report(const RunAnalysis& run, std::string_view title);

/// Renders the registry's histograms (count/sum/mean/min/max/p50/p90/p99),
/// one line per histogram, in registration order.  Empty string when the
/// registry has none.
std::string render_histograms(const CounterRegistry& counters);

}  // namespace obliv::obs
