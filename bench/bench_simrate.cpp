// Simulator-throughput bench: simulated word accesses per second.
//
// Every Table II / Theorem bench is bottlenecked by hm::CacheSim, not by
// the algorithms being measured, so regeneration time of the paper's
// results is a direct function of this number.
//
// Methodology (interference-robust on a noisy host):
//
//   1. Each workload's access stream is captured ONCE as a trace -- the raw
//      drivers (seq-read, run-read, part-rw) synthesize theirs, the paper
//      workloads (scan, MO-MT, SPMS sort, I-GEP) record the exact
//      (core, addr, words, write) stream the SimExecutor emits.
//   2. The trace is replayed through the current hm::CacheSim AND through
//      the vendored pre-optimization simulator (bench/baseline_sim.hpp),
//      with repetitions interleaved new/old/new/old in one process, so
//      ambient load perturbs both series equally.  The per-sim statistic is
//      the best of K reps (min time), the standard noise-robust choice for
//      a deterministic computation.  For the paper workloads the baseline
//      replays the UNBATCHED (word-at-a-time) expansion of the trace --
//      that is the stream the pre-PR views actually issued, since run
//      batching ships in the same PR as the simulator; the raw-* rows
//      compare both simulators on the identical call shape.
//   3. Before timing, both simulators' observable counters (misses,
//      evictions, invalidations, ping-pongs) are checked for equality on
//      their respective streams: the speedup only counts if the semantics
//      are identical.  (Counter equality across the batched/unbatched pair
//      is exactly the run-batching exactness claim of DESIGN.md.)
//
// The throughput numerator is simulated WORDS (sum of `words` over the
// trace), which is invariant to how the stream is chopped into calls; the
// "speedup" column is the like-for-like ratio the tentpole targets.  The
// stack-* rows additionally time the workloads end-to-end through the full
// SimExecutor stack (algorithm + scheduler + simulator), which is the cost
// the actual benches pay; they have no baseline counterpart in-process.
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "algo/gep.hpp"
#include "algo/scan.hpp"
#include "algo/sort.hpp"
#include "algo/transpose.hpp"
#include "bench/baseline_sim.hpp"
#include "bench/common.hpp"
#include "hm/cache_sim.hpp"
#include "hm/config.hpp"
#include "sched/sim_executor.hpp"
#include "sched/views.hpp"
#include "util/rng.hpp"

using namespace obliv;

namespace {

int g_reps = 9;  // dropped to 2 under --smoke

using Trace = std::vector<sched::TraceEntry>;

std::uint64_t trace_words(const Trace& t) {
  std::uint64_t w = 0;
  for (const auto& e : t) w += e.words > 0 ? e.words : 1;
  return w;
}

template <class Sim>
void replay(Sim& sim, const Trace& t) {
  sim.clear();
  for (const auto& e : t) sim.access(e.core, e.addr, e.words, e.write != 0);
}

/// Word-at-a-time expansion of a trace: every k-word range access becomes k
/// single-word accesses in address order.  All view element types here are
/// one word wide, so this is exactly the stream the pre-PR (unbatched)
/// SimRef layer issued for the same workload.
Trace unbatch(const Trace& t) {
  Trace out;
  out.reserve(t.size());
  for (const auto& e : t) {
    const std::uint32_t k = e.words > 0 ? e.words : 1;
    for (std::uint32_t w = 0; w < k; ++w) {
      out.push_back({e.addr + w, 1, e.core, e.write});
    }
  }
  return out;
}

/// Golden-set counter parity between the optimized simulator (on the
/// captured trace) and the baseline simulator (on its replay stream);
/// aborts the bench on any mismatch.
void check_parity(const hm::MachineConfig& cfg, const Trace& t,
                  const Trace& t_base, const std::string& name) {
  hm::CacheSim now(cfg);
  bench::BaselineCacheSim then(cfg);
  replay(now, t);
  replay(then, t_base);
  bool ok = now.pingpong_events() == then.pingpong_events();
  for (std::uint32_t lvl = 1; lvl <= cfg.cache_levels(); ++lvl) {
    for (std::uint32_t i = 0; i < cfg.caches_at(lvl); ++i) {
      const auto& a = now.counters(lvl, i);
      const auto& b = then.counters(lvl, i);
      ok = ok && a.misses == b.misses && a.evictions == b.evictions &&
           a.invalidations == b.invalidations;
    }
  }
  if (!ok) {
    std::cerr << "FATAL: counter mismatch vs baseline simulator on " << name
              << " / " << cfg.name() << "\n";
    std::exit(1);
  }
}

struct Row {
  std::string bench;
  hm::MachineConfig cfg;
  std::uint64_t n = 0;
  Trace trace;               ///< empty for stack-* rows
  Trace trace_base;          ///< baseline replay stream (empty: use `trace`)
  std::function<std::uint64_t()> stack_run;  ///< stack-* rows only
  std::vector<double> ns_new, ns_base;
  std::uint64_t words = 0;
};

std::vector<Row> plan;

/// `pre_pr_stream` selects the baseline's replay stream: the word-at-a-time
/// expansion for view-captured workload traces (what the unbatched pre-PR
/// views issued), or the identical trace for the raw call-shape rows.
void add_trace(std::string bench, const hm::MachineConfig& cfg,
               std::uint64_t n, Trace t, bool pre_pr_stream = false) {
  Row r;
  r.bench = std::move(bench);
  r.cfg = cfg;
  r.n = n;
  r.words = trace_words(t);
  if (pre_pr_stream) {
    r.trace_base = unbatch(t);
    assert(trace_words(r.trace_base) == r.words);
  }
  r.trace = std::move(t);
  plan.push_back(std::move(r));
}

// ---- Raw trace generators -------------------------------------------------

/// Sequential word-at-a-time read scan by core 0, the common case the L0
/// filter targets.
Trace make_seq(std::uint64_t n) {
  Trace t;
  t.reserve(n);
  for (std::uint64_t a = 0; a < n; ++a) t.push_back({a, 1, 0, 0});
  return t;
}

/// The same scan issued as 512-word batched range accesses (the shape
/// SimRef::load_run / executor copy produce).
Trace make_run(std::uint64_t n) {
  Trace t;
  t.reserve(n / 512);
  for (std::uint64_t a = 0; a < n; a += 512) t.push_back({a, 512, 0, 0});
  return t;
}

/// All cores scan disjoint partitions, writing every 4th word: exercises
/// the sharer table and the write fast path without ping-ponging.
Trace make_part(const hm::MachineConfig& cfg, std::uint64_t n) {
  Trace t;
  t.reserve(n);
  const std::uint32_t p = cfg.cores();
  const std::uint64_t per = n / p;
  for (std::uint32_t c = 0; c < p; ++c) {
    for (std::uint64_t a = 0; a < per; ++a) {
      t.push_back({c * per + a, 1, static_cast<std::uint8_t>(c),
                   static_cast<std::uint8_t>((a & 3) == 0)});
    }
  }
  return t;
}

// ---- Workload trace capture + stack rows ----------------------------------

void add_stack(std::string bench, const hm::MachineConfig& cfg,
               std::uint64_t n, std::function<std::uint64_t()> run) {
  Row r;
  r.bench = "stack-" + bench;
  r.cfg = cfg;
  r.n = n;
  r.stack_run = std::move(run);
  r.words = r.stack_run();  // warm-up; also fixes the numerator
  plan.push_back(std::move(r));
}

void add_scan(const hm::MachineConfig& cfg, std::uint64_t n) {
  auto ex = std::make_shared<sched::SimExecutor>(cfg);
  auto buf = std::make_shared<sched::SimBuf<std::int64_t>>(
      ex->make_buf<std::int64_t>(n));
  auto rep = [ex, buf, n] {
    for (std::size_t i = 0; i < n; ++i) buf->raw()[i] = std::int64_t(i & 7);
    ex->run(2 * n, [&] { algo::mo_prefix_sum(*ex, buf->ref()); });
    return ex->cache_sim().total_accesses();
  };
  Trace t;
  ex->set_trace(&t);
  rep();
  ex->set_trace(nullptr);
  add_trace("scan", cfg, n, std::move(t), /*pre_pr_stream=*/true);
  add_stack("scan", cfg, n, rep);
}

void add_transpose(const hm::MachineConfig& cfg, std::uint64_t n) {
  auto ex = std::make_shared<sched::SimExecutor>(cfg);
  auto a =
      std::make_shared<sched::SimBuf<double>>(ex->make_buf<double>(n * n));
  auto out =
      std::make_shared<sched::SimBuf<double>>(ex->make_buf<double>(n * n));
  for (std::size_t i = 0; i < n * n; ++i) a->raw()[i] = double(i);
  auto rep = [ex, a, out, n] {
    ex->run(3 * n * n,
            [&] { algo::mo_transpose(*ex, a->ref(), out->ref(), n); });
    return ex->cache_sim().total_accesses();
  };
  Trace t;
  ex->set_trace(&t);
  rep();
  ex->set_trace(nullptr);
  add_trace("mo-mt", cfg, n, std::move(t), /*pre_pr_stream=*/true);
  add_stack("mo-mt", cfg, n, rep);
}

void add_sort(const hm::MachineConfig& cfg, std::uint64_t n) {
  auto ex = std::make_shared<sched::SimExecutor>(cfg);
  auto buf = std::make_shared<sched::SimBuf<std::uint64_t>>(
      ex->make_buf<std::uint64_t>(n));
  auto rep = [ex, buf, n] {
    util::Xoshiro256 rng(4242);
    for (auto& v : buf->raw()) v = rng();
    ex->run(4 * n, [&] { algo::spms_sort(*ex, buf->ref()); });
    return ex->cache_sim().total_accesses();
  };
  Trace t;
  ex->set_trace(&t);
  rep();
  ex->set_trace(nullptr);
  add_trace("spms-sort", cfg, n, std::move(t), /*pre_pr_stream=*/true);
  add_stack("spms-sort", cfg, n, rep);
}

void add_gep(const hm::MachineConfig& cfg, std::uint64_t n) {
  auto ex = std::make_shared<sched::SimExecutor>(cfg);
  auto buf =
      std::make_shared<sched::SimBuf<double>>(ex->make_buf<double>(n * n));
  auto rep = [ex, buf, n] {
    util::Xoshiro256 rng(7);
    for (auto& v : buf->raw()) v = rng.uniform();
    using Mat = sched::MatView<sched::SimRef<double>>;
    ex->run(n * n, [&] {
      algo::igep<algo::FloydWarshallInstance>(*ex,
                                              Mat::full(buf->ref(), n, n));
    });
    return ex->cache_sim().total_accesses();
  };
  Trace t;
  ex->set_trace(&t);
  rep();
  ex->set_trace(nullptr);
  add_trace("igep", cfg, n, std::move(t), /*pre_pr_stream=*/true);
  add_stack("igep", cfg, n, rep);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke(argc, argv);
  if (smoke) g_reps = 2;
  bench::print_header("Simulator throughput (simulated word accesses/sec)");
  const std::uint64_t raw_n = smoke ? 1u << 16 : 1u << 20;
  const hm::MachineConfig cfgs[] = {hm::MachineConfig::shared_l2(4),
                                    hm::MachineConfig::figure1()};
  for (const auto& cfg : cfgs) {
    bench::print_machine(cfg);
    add_trace("raw-seq-read", cfg, raw_n, make_seq(raw_n));
    add_trace("raw-run-read", cfg, raw_n, make_run(raw_n));
    add_trace("raw-part-rw", cfg, raw_n, make_part(cfg, raw_n));
    add_scan(cfg, smoke ? 1u << 12 : 1u << 16);
    add_transpose(cfg, smoke ? 32 : 128);
    add_sort(cfg, smoke ? 1u << 10 : 1u << 14);
    add_gep(cfg, smoke ? 32 : 64);
  }

  // Counter-parity gate: the speedup claim only stands on identical
  // semantics.
  for (const auto& r : plan) {
    if (!r.trace.empty()) {
      check_parity(r.cfg, r.trace,
                   r.trace_base.empty() ? r.trace : r.trace_base, r.bench);
    }
  }

  // Timed phase.  Reps of every row are interleaved (rep r of all rows
  // before rep r+1 of any), and within a replay row the baseline and the
  // current simulator alternate back-to-back.
  std::vector<std::unique_ptr<hm::CacheSim>> sims_new;
  std::vector<std::unique_ptr<bench::BaselineCacheSim>> sims_base;
  for (const auto& r : plan) {
    sims_new.push_back(r.trace.empty()
                           ? nullptr
                           : std::make_unique<hm::CacheSim>(r.cfg));
    sims_base.push_back(r.trace.empty()
                            ? nullptr
                            : std::make_unique<bench::BaselineCacheSim>(r.cfg));
  }
  for (int r = 0; r < g_reps; ++r) {
    for (std::size_t i = 0; i < plan.size(); ++i) {
      Row& row = plan[i];
      if (row.trace.empty()) {
        row.ns_new.push_back(bench::time_once_ns([&] { row.stack_run(); }));
      } else {
        const Trace& tb =
            row.trace_base.empty() ? row.trace : row.trace_base;
        row.ns_base.push_back(
            bench::time_once_ns([&] { replay(*sims_base[i], tb); }));
        row.ns_new.push_back(
            bench::time_once_ns([&] { replay(*sims_new[i], row.trace); }));
      }
    }
  }

  bench::SimRateRecorder rec("BENCH_simrate.json");
  util::Table t({"bench", "config", "n", "words", "base Macc/s", "new Macc/s",
                 "speedup"});
  double logsum = 0, logsum_mo = 0;
  int cnt = 0, cnt_mo = 0;
  for (auto& row : plan) {
    const double best_new = *std::min_element(row.ns_new.begin(),
                                              row.ns_new.end());
    const double rate_new = double(row.words) / (best_new * 1e-9);
    double rate_base = 0, speedup = 0;
    if (!row.ns_base.empty()) {
      const double best_base = *std::min_element(row.ns_base.begin(),
                                                 row.ns_base.end());
      rate_base = double(row.words) / (best_base * 1e-9);
      speedup = rate_new / rate_base;
      logsum += std::log(speedup);
      ++cnt;
      if (row.bench != "raw-seq-read" && row.bench != "raw-run-read" &&
          row.bench != "raw-part-rw") {
        logsum_mo += std::log(speedup);
        ++cnt_mo;
      }
    }
    rec.add(row.bench, row.cfg.name(), row.n, row.words, rate_new, rate_base,
            speedup, g_reps);
    t.add_row({row.bench, row.cfg.name(), std::to_string(row.n),
               std::to_string(row.words),
               rate_base > 0 ? util::Table::fmt(rate_base / 1e6, "%.2f") : "-",
               util::Table::fmt(rate_new / 1e6, "%.2f"),
               speedup > 0 ? util::Table::fmt(speedup, "%.2fx") : "-"});
  }
  t.print(std::cout);
  std::cout << "counter parity vs baseline simulator: OK on all traces\n";
  std::cout << "geomean replay speedup: all "
            << util::Table::fmt(std::exp(logsum / cnt), "%.2f")
            << "x, Table-II workloads "
            << util::Table::fmt(std::exp(logsum_mo / cnt_mo), "%.2f") << "x\n";
  rec.write();
  return 0;
}
